package chainlog

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"chainlog/internal/workload"
)

// renderAnswer flattens an answer to a canonical string so two DBs can
// be compared byte-for-byte.
func renderAnswer(t *testing.T, ans *Answer) string {
	t.Helper()
	if len(ans.Vars) == 0 {
		return fmt.Sprintf("bool:%v", ans.True)
	}
	rows := make([]string, len(ans.Rows))
	for i, r := range ans.Rows {
		rows[i] = strings.Join(r, ",")
	}
	sort.Strings(rows)
	return strings.Join(ans.Vars, ",") + "\n" + strings.Join(rows, "\n")
}

// populateTemplate loads a diff template's rules and a deterministic
// random fact set into a fresh DB, and returns the concrete query texts
// (holes filled from the constant pool).
func populateTemplate(t *testing.T, tmpl diffTemplate, seed int64) (*DB, []string) {
	t.Helper()
	db := NewDB()
	if err := db.LoadProgram(tmpl.src); err != nil {
		t.Fatalf("%s: %v", tmpl.name, err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 120; i++ {
		b := tmpl.bases[rng.Intn(len(tmpl.bases))]
		args := make([]string, b.arity)
		for j := range args {
			args[j] = diffConsts[rng.Intn(len(diffConsts))]
		}
		db.Assert(b.pred, args...)
	}
	var queries []string
	for _, q := range tmpl.queries {
		queries = append(queries, fillHoles(q, []string{"c1", "c3"}))
	}
	return db, queries
}

// TestBinarySnapshotRoundTripQueries is the round-trip oracle: for every
// differential program family, a DB saved as a binary snapshot and
// reopened via the mmap path must produce byte-identical answers on the
// full query sweep.
func TestBinarySnapshotRoundTripQueries(t *testing.T) {
	for _, tmpl := range diffTemplates {
		t.Run(tmpl.name, func(t *testing.T) {
			db, queries := populateTemplate(t, tmpl, 7)
			path := filepath.Join(t.TempDir(), "facts.snap")
			if err := db.WriteSnapshot(path); err != nil {
				t.Fatalf("WriteSnapshot: %v", err)
			}
			ok, err := IsSnapshotFile(path)
			if err != nil || !ok {
				t.Fatalf("IsSnapshotFile = %v, %v", ok, err)
			}
			db2, err := OpenSnapshot(path)
			if err != nil {
				t.Fatalf("OpenSnapshot: %v", err)
			}
			defer db2.Close()
			if err := db2.LoadProgram(tmpl.src); err != nil {
				t.Fatalf("rules on snapshot DB: %v", err)
			}
			if got, want := db2.FactEpoch(), db.FactEpoch(); got != want {
				t.Errorf("fact epoch = %d, want %d", got, want)
			}
			for _, q := range queries {
				a1, err := db.Query(q)
				if err != nil {
					t.Fatalf("source %s: %v", q, err)
				}
				a2, err := db2.Query(q)
				if err != nil {
					t.Fatalf("snapshot %s: %v", q, err)
				}
				if r1, r2 := renderAnswer(t, a1), renderAnswer(t, a2); r1 != r2 {
					t.Errorf("%s diverges:\nsource:\n%s\nsnapshot:\n%s", q, r1, r2)
				}
			}
		})
	}
}

// TestBinarySnapshotMutableAfterOpen verifies a snapshot-backed DB is a
// full DB: mutations thaw the mapped relations transparently and
// queries see them.
func TestBinarySnapshotMutableAfterOpen(t *testing.T) {
	db, _ := populateTemplate(t, diffTemplates[0], 11) // tc over e
	path := filepath.Join(t.TempDir(), "facts.snap")
	if err := db.WriteSnapshot(path); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.LoadProgram(diffTemplates[0].src); err != nil {
		t.Fatal(err)
	}
	if !db2.Assert("e", "zz_new", "c0") {
		t.Fatal("assert on snapshot DB reported not-new")
	}
	ans, err := db2.Query("tc(zz_new, Y)")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range ans.Rows {
		if row[0] == "c0" {
			found = true
		}
	}
	if !found {
		t.Fatalf("asserted edge invisible through recursion: %v", ans.Rows)
	}
	if !db2.Retract("e", "zz_new", "c0") {
		t.Fatal("retract on snapshot DB failed")
	}
}

// TestRestoreFactsBinaryIntoLiveDB exercises the replica-bootstrap path:
// the stream is decoded into an existing DB, re-interned into its
// symbol table so rules and prepared plans keep working.
func TestRestoreFactsBinaryIntoLiveDB(t *testing.T) {
	src, queries := populateTemplate(t, diffTemplates[1], 3) // sg
	var buf bytes.Buffer
	epoch, err := src.SnapshotBinary(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	dst := NewDB()
	if err := dst.LoadProgram(diffTemplates[1].src); err != nil {
		t.Fatal(err)
	}
	// Pre-existing state that must be displaced, plus symbols interned in
	// a different order than the snapshot's dense ids.
	dst.Assert("up", "stale_x", "stale_y")
	if err := dst.RestoreFactsBinary(&buf, epoch+5); err != nil {
		t.Fatalf("RestoreFactsBinary: %v", err)
	}
	if dst.FactEpoch() != epoch+5 {
		t.Errorf("fact epoch = %d, want %d", dst.FactEpoch(), epoch+5)
	}
	for _, q := range queries {
		a1, err := src.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := dst.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if r1, r2 := renderAnswer(t, a1), renderAnswer(t, a2); r1 != r2 {
			t.Errorf("%s diverges after binary restore:\n%s\nvs\n%s", q, r1, r2)
		}
	}
	if ans, _ := dst.Query("sg(stale_x, Y)"); len(ans.Rows) != 0 {
		t.Error("stale pre-restore fact survived")
	}
}

// TestRestoreFactsAuto sniffs both formats.
func TestRestoreFactsAuto(t *testing.T) {
	src, _ := populateTemplate(t, diffTemplates[0], 5)
	var text, bin bytes.Buffer
	if _, err := src.SnapshotFacts(&text, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := src.SnapshotBinary(&bin, nil); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		data []byte
	}{{"text", text.Bytes()}, {"binary", bin.Bytes()}} {
		db := NewDB()
		if err := db.RestoreFactsAuto(bytes.NewReader(tc.data), 9); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if db.FactEpoch() != 9 {
			t.Errorf("%s: epoch = %d", tc.name, db.FactEpoch())
		}
		var d1, d2 bytes.Buffer
		if err := src.DumpFacts(&d1); err != nil {
			t.Fatal(err)
		}
		if err := db.DumpFacts(&d2); err != nil {
			t.Fatal(err)
		}
		if sortLines(d1.String()) != sortLines(d2.String()) {
			t.Errorf("%s: restored facts differ from source", tc.name)
		}
	}
}

func sortLines(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestSnapshotCorruptionRejectedAtOpen ensures OpenSnapshot never serves
// a damaged file.
func TestSnapshotCorruptionRejectedAtOpen(t *testing.T) {
	db, _ := populateTemplate(t, diffTemplates[0], 13)
	dir := t.TempDir()
	path := filepath.Join(dir, "facts.snap")
	if err := db.WriteSnapshot(path); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{9, 70, 100, len(img) / 2, len(img) - 2} {
		bad := append([]byte(nil), img...)
		bad[pos] ^= 0x10
		badPath := filepath.Join(dir, fmt.Sprintf("bad%d.snap", pos))
		if err := os.WriteFile(badPath, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenSnapshot(badPath); err == nil {
			t.Errorf("corrupted snapshot (flip at %d) opened", pos)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "trunc.snap"), img[:len(img)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSnapshot(filepath.Join(dir, "trunc.snap")); err == nil {
		t.Error("truncated snapshot opened")
	}
}

// TestIngestCSVMatchesAsserted loads a grid twice — streamed through the
// CSV bulk ingestor and fact-by-fact through Assert — and requires
// byte-identical recursive answers.
func TestIngestCSVMatchesAsserted(t *testing.T) {
	const w, h = 12, 9
	var csv bytes.Buffer
	n, err := workload.WriteCSV(&csv, workload.GridStream(w, h))
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate a few lines: ingestion must deduplicate like Assert.
	head := csv.String()
	csv.WriteString(strings.SplitN(head, "\n", 2)[0] + "\n")

	prog := "tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n"
	bulk := NewDB()
	if err := bulk.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	stats, err := bulk.IngestCSV(&csv, "edge")
	if err != nil {
		t.Fatalf("IngestCSV: %v", err)
	}
	if stats.Lines != n+1 || stats.Edges != n {
		t.Errorf("stats = %+v, want %d lines and %d distinct edges", stats, n+1, n)
	}

	ref := NewDB()
	if err := ref.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	for src, dst := range workload.GridStream(w, h) {
		ref.Assert("edge", src, dst)
	}
	for _, q := range []string{"tc(g0_0, Y)", "tc(X, g2_2)", "tc(g3_0, Y)"} {
		a1, err := bulk.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := ref.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if r1, r2 := renderAnswer(t, a1), renderAnswer(t, a2); r1 != r2 {
			t.Errorf("%s diverges between ingest and assert:\n%s\nvs\n%s", q, r1, r2)
		}
	}

	// Second ingest into the same relation must fail.
	if _, err := bulk.IngestCSV(strings.NewReader("a,b\n"), "edge"); err == nil {
		t.Error("double ingest accepted")
	}
	// Malformed input.
	if _, err := NewDB().IngestCSV(strings.NewReader("a,b,c\n"), "e2"); err == nil {
		t.Error("three-field line accepted")
	}
}

func TestIngestJSONL(t *testing.T) {
	db := NewDB()
	in := `{"src": "a", "dst": "b"}
{"src": "b", "dst": "c"}

{"src": "a", "dst": "b"}
`
	stats, err := db.IngestJSONL(strings.NewReader(in), "edge")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Lines != 3 || stats.Edges != 2 {
		t.Errorf("stats = %+v", stats)
	}
	if _, err := NewDB().IngestJSONL(strings.NewReader(`{"src": "a"}`), "e"); err == nil {
		t.Error("missing dst accepted")
	}
}

// TestIngestThenSnapshotRoundTrip chains the two new paths end to end:
// stream-ingest a power-law graph, snapshot it, reopen via mmap, verify
// equal answers.
func TestIngestThenSnapshotRoundTrip(t *testing.T) {
	var csv bytes.Buffer
	if _, err := workload.WriteCSV(&csv, workload.PowerLawStream(200, 1500, 42)); err != nil {
		t.Fatal(err)
	}
	prog := "tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n"
	db := NewDB()
	if err := db.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	if _, err := db.IngestCSV(bytes.NewReader(csv.Bytes()), "edge"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "pl.snap")
	if err := db.WriteSnapshot(path); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.LoadProgram(prog); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"tc(n0, Y)", "tc(n1, Y)", "tc(X, n0)"} {
		a1, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := db2.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if r1, r2 := renderAnswer(t, a1), renderAnswer(t, a2); r1 != r2 {
			t.Errorf("%s diverges:\n%s\nvs\n%s", q, r1, r2)
		}
	}
}
