package chainlog

import (
	"fmt"
	"reflect"
	"testing"

	"chainlog/internal/workload"
)

// batchNames returns the bound constants the SG batch tests run over,
// including a duplicate to exercise binding deduplication.
func batchNames() [][]string {
	var argSets [][]string
	for i := 1; i <= 24; i++ {
		argSets = append(argSets, []string{fmt.Sprintf("a%d", i)})
	}
	return append(argSets, []string{"a1"})
}

func newBatchSGDB(t testing.TB) *DB {
	t.Helper()
	db := NewDB()
	if err := db.LoadProgram(workload.SGProgram); err != nil {
		t.Fatal(err)
	}
	w := workload.SampleC(db.SymTab(), 64)
	db.SetStore(w.Store)
	return db
}

// TestRunBatchMatchesRun pins RunBatch to N individual Runs: same rows
// per binding, in input order, for the direct bf plan, the direct fb
// plan, the Section 4 plan, and a strategy that takes the generic
// per-vector route — sequentially and with a worker pool.
func TestRunBatchMatchesRun(t *testing.T) {
	for _, par := range []int{0, 4, -1} {
		par := par
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			db := newBatchSGDB(t)
			opts := Options{Parallelism: par}

			check := func(t *testing.T, query string, argSets [][]string, o Options) {
				t.Helper()
				p, err := db.Prepare(query, o)
				if err != nil {
					t.Fatal(err)
				}
				batch, err := p.RunBatch(argSets)
				if err != nil {
					t.Fatal(err)
				}
				if len(batch) != len(argSets) {
					t.Fatalf("got %d answers for %d arg sets", len(batch), len(argSets))
				}
				for i, args := range argSets {
					want, err := p.Run(args...)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(batch[i].Rows, want.Rows) {
						t.Fatalf("%s%v: batch rows %v, run rows %v", query, args, batch[i].Rows, want.Rows)
					}
					if batch[i].True != want.True {
						t.Fatalf("%s%v: batch True %v, run True %v", query, args, batch[i].True, want.True)
					}
				}
			}

			check(t, "sg(?, Y)", batchNames(), opts)
			check(t, "sg(X, ?)", batchNames(), opts)
			// Fully bound: Section 4 transformation route.
			check(t, "sg(?, ?)", [][]string{{"a1", "a2"}, {"a1", "a1"}, {"a3", "a7"}}, opts)
			// Generic per-vector route.
			check(t, "sg(?, Y)", batchNames()[:6], Options{Parallelism: par, Strategy: Seminaive})
		})
	}
}

// TestRunBatchSection4 exercises the batch route through the n-ary
// Section 4 transformation on the flight workload, where start terms are
// interned tuples.
func TestRunBatchSection4(t *testing.T) {
	db := NewDB()
	if err := db.LoadProgram(workload.FlightProgram); err != nil {
		t.Fatal(err)
	}
	f := workload.FlightDB(db.SymTab(), 10, 3, 1)
	db.SetStore(f.Store)
	p, err := db.Prepare("cnx(?, ?, D, AT)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	rel := f.Store.Relation("flight")
	var argSets [][]string
	for i := 0; i < rel.Len() && len(argSets) < 12; i++ {
		tup := rel.Tuple(i)
		argSets = append(argSets, []string{db.Name(tup[0]), db.Name(tup[1])})
	}
	batch, err := p.RunBatch(argSets)
	if err != nil {
		t.Fatal(err)
	}
	for i, args := range argSets {
		want, err := p.Run(args...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i].Rows, want.Rows) {
			t.Fatalf("cnx%v: batch %v, run %v", args, batch[i].Rows, want.Rows)
		}
	}
}

// TestRunBatchValidation pins the error paths: wrong parameter counts
// fail the whole batch up front, and an empty batch returns an empty
// answer slice.
func TestRunBatchValidation(t *testing.T) {
	db := newBatchSGDB(t)
	p, err := db.Prepare("sg(?, Y)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunBatch([][]string{{"a1"}, {"a2", "extra"}}); err == nil {
		t.Fatal("arity mismatch not rejected")
	}
	out, err := p.RunBatch(nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: out %v err %v", out, err)
	}
}

// TestQueryBatchMatchesQuery pins DB.QueryBatch to per-query evaluation:
// mixed templates, repeated shapes and base-predicate lookups all return
// exactly what DB.Query returns, in input order, with the caller's
// variable names restored.
func TestQueryBatchMatchesQuery(t *testing.T) {
	db := newBatchSGDB(t)
	queries := []string{
		"sg(a1, Y)",
		"sg(a2, Z)", // same template as above, different variable name
		"sg(X, a3)",
		"sg(a1, a2)",
		"flat(a1, Y)", // base predicate
		"sg(a1, Y)",   // exact repeat
	}
	batch, err := db.QueryBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("got %d answers for %d queries", len(batch), len(queries))
	}
	for i, q := range queries {
		want, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i].Rows, want.Rows) {
			t.Fatalf("%s: batch rows %v, query rows %v", q, batch[i].Rows, want.Rows)
		}
		if !reflect.DeepEqual(batch[i].Vars, want.Vars) {
			t.Fatalf("%s: batch vars %v, query vars %v", q, batch[i].Vars, want.Vars)
		}
		if batch[i].True != want.True {
			t.Fatalf("%s: batch True %v, query True %v", q, batch[i].True, want.True)
		}
	}
	// A parse error anywhere fails the batch.
	if _, err := db.QueryBatch([]string{"sg(a1, Y)", "not a query("}); err == nil {
		t.Fatal("parse error not propagated")
	}
}

// TestQueryBatchGroupsPlans pins the grouping contract: a batch of
// same-shaped queries compiles at most one plan per shape.
func TestQueryBatchGroupsPlans(t *testing.T) {
	db := newBatchSGDB(t)
	var queries []string
	for i := 1; i <= 16; i++ {
		queries = append(queries, fmt.Sprintf("sg(a%d, Y)", i))
	}
	if _, err := db.QueryBatch(queries); err != nil {
		t.Fatal(err)
	}
	stats := db.PlanCacheStats()
	if stats.Misses != 1 {
		t.Fatalf("expected one plan compilation for one shape, got %d misses", stats.Misses)
	}
}

// TestRunBatchConcurrent drives one prepared plan with overlapping
// RunBatch and Run calls from many goroutines: the documented
// concurrency contract (safe concurrent use of a Prepared) must extend
// to the batch route. Primarily meaningful under -race.
func TestRunBatchConcurrent(t *testing.T) {
	db := newBatchSGDB(t)
	p, err := db.Prepare("sg(?, Y)", Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	argSets := batchNames()
	want, err := p.RunBatch(argSets)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 5; i++ {
				if g%2 == 0 {
					got, err := p.RunBatch(argSets)
					if err != nil {
						done <- err
						return
					}
					for k := range got {
						if !reflect.DeepEqual(got[k].Rows, want[k].Rows) {
							done <- fmt.Errorf("binding %d: rows diverged under concurrency", k)
							return
						}
					}
				} else {
					if _, err := p.Run(argSets[i%len(argSets)]...); err != nil {
						done <- err
						return
					}
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
