package chainlog

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"chainlog/internal/automaton"
	"chainlog/internal/equations"
)

// Prepare compiles once; Run binds the placeholder to many constants and
// each run agrees with the one-shot Query API.
func TestPreparedBindMany(t *testing.T) {
	db := mustDB(t, sgSrc)
	sg, err := db.Prepare("sg(?, Y)", Options{})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if sg.NumParams() != 1 || !reflect.DeepEqual(sg.Vars(), []string{"Y"}) {
		t.Fatalf("template metadata: params=%d vars=%v", sg.NumParams(), sg.Vars())
	}
	for _, who := range []string{"john", "ann", "bob", "gp", "stranger"} {
		got, err := sg.Run(who)
		if err != nil {
			t.Fatalf("Run(%s): %v", who, err)
		}
		want, err := db.Query(fmt.Sprintf("sg(%s, Y)", who))
		if err != nil {
			t.Fatalf("Query(%s): %v", who, err)
		}
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Fatalf("Run(%s) = %v, Query = %v", who, got.Rows, want.Rows)
		}
	}
}

// The Section 4 route is rebindable too: one transformation, many bound
// tuples, including a template mixing '?' with literal constants.
func TestPreparedSection4(t *testing.T) {
	db := mustDB(t, flightSrc)
	cnx, err := db.Prepare("cnx(?, ?, D, AT)", Options{})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	cases := [][2]string{{"hel", "900"}, {"sto", "1100"}, {"par", "1400"}, {"sto", "930"}}
	for _, c := range cases {
		got, err := cnx.Run(c[0], c[1])
		if err != nil {
			t.Fatalf("Run(%v): %v", c, err)
		}
		want, err := db.Query(fmt.Sprintf("cnx(%s, %s, D, AT)", c[0], c[1]))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Fatalf("Run(%v) = %v, Query = %v", c, got.Rows, want.Rows)
		}
	}
	// Mixed template: first argument fixed, second a parameter.
	fromHel, err := db.Prepare("cnx(hel, ?, D, AT)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := fromHel.Run("900")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := db.Query("cnx(hel, 900, D, AT)")
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("mixed template: %v vs %v", got.Rows, want.Rows)
	}
}

// After the first Run, no equation transformation and no automaton
// compilation happens — the paper's "fixed automaton hierarchy driven by
// the bound constant", amortized across calls.
func TestPreparedZeroRecompilation(t *testing.T) {
	for _, tc := range []struct {
		name, query string
		args        [][]string
	}{
		{"direct-bf", "sg(?, Y)", [][]string{{"john"}, {"ann"}, {"bob"}, {"gp"}}},
		{"direct-fb", "sg(X, ?)", [][]string{{"john"}, {"ann"}, {"bob"}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			db := mustDB(t, sgSrc)
			p, err := db.Prepare(tc.query, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := p.Run(tc.args[0]...); err != nil {
				t.Fatal(err)
			}
			tBefore, cBefore := equations.TransformCount(), automaton.CompileCount()
			for _, args := range tc.args {
				if _, err := p.Run(args...); err != nil {
					t.Fatal(err)
				}
			}
			if tAfter := equations.TransformCount(); tAfter != tBefore {
				t.Fatalf("equation transforms ran during Run: %d -> %d", tBefore, tAfter)
			}
			if cAfter := automaton.CompileCount(); cAfter != cBefore {
				t.Fatalf("automaton compiles ran during Run: %d -> %d", cBefore, cAfter)
			}
		})
	}

	t.Run("section4", func(t *testing.T) {
		db := mustDB(t, flightSrc)
		p, err := db.Prepare("cnx(?, ?, D, AT)", Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run("hel", "900"); err != nil {
			t.Fatal(err)
		}
		tBefore, cBefore := equations.TransformCount(), automaton.CompileCount()
		for _, c := range [][2]string{{"sto", "1100"}, {"par", "1400"}, {"sto", "930"}, {"hel", "900"}} {
			if _, err := p.Run(c[0], c[1]); err != nil {
				t.Fatal(err)
			}
		}
		if tAfter := equations.TransformCount(); tAfter != tBefore {
			t.Fatalf("equation transforms ran during Run: %d -> %d", tBefore, tAfter)
		}
		if cAfter := automaton.CompileCount(); cAfter != cBefore {
			t.Fatalf("automaton compiles ran during Run: %d -> %d", cBefore, cAfter)
		}
	})
}

// Query/QueryOpts are wrappers over Prepare+Run: repeating a query shape
// with different constants hits the plan cache.
func TestQueryHitsPlanCache(t *testing.T) {
	db := mustDB(t, sgSrc)
	for _, who := range []string{"john", "ann", "bob"} {
		if _, err := db.Query(fmt.Sprintf("sg(%s, Y)", who)); err != nil {
			t.Fatal(err)
		}
	}
	st := db.PlanCacheStats()
	if st.Size != 1 {
		t.Fatalf("expected one cached plan, have %d", st.Size)
	}
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("expected 1 miss + 2 hits, have %+v", st)
	}
	// A different shape (repeated variable) must not share the plan.
	if _, err := db.Query("sg(X, X)"); err != nil {
		t.Fatal(err)
	}
	if st := db.PlanCacheStats(); st.Size != 2 {
		t.Fatalf("sg(X, X) should compile its own plan: %+v", st)
	}
}

// Mutations bump the DB epoch; stale plans recompile transparently and
// see the new facts.
func TestPreparedInvalidation(t *testing.T) {
	db := mustDB(t, `
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
edge(a, b).
`)
	tc, err := db.Prepare("tc(?, Y)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := tc.Run("a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ans.Rows, [][]string{{"b"}}) {
		t.Fatalf("before assert: %v", ans.Rows)
	}
	db.Assert("edge", "b", "c")
	ans, err = tc.Run("a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ans.Rows, [][]string{{"b"}, {"c"}}) {
		t.Fatalf("after assert: %v", ans.Rows)
	}
	// Loading more rules also invalidates.
	if err := db.LoadProgram("edge(c, d)."); err != nil {
		t.Fatal(err)
	}
	ans, err = tc.Run("a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ans.Rows, [][]string{{"b"}, {"c"}, {"d"}}) {
		t.Fatalf("after load: %v", ans.Rows)
	}
}

// N goroutines run the same Prepared against distinct constants; run
// with -race. Covers both the direct route and the Section 4 route
// (whose evaluation interns tuple terms concurrently).
func TestPreparedConcurrentRuns(t *testing.T) {
	db := mustDB(t, sgSrc)
	sg, err := db.Prepare("sg(?, Y)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	people := []string{"john", "ann", "bob", "gp", "p1", "p2"}
	want := make(map[string][][]string)
	for _, who := range people {
		ans, err := sg.Run(who)
		if err != nil {
			t.Fatal(err)
		}
		want[who] = ans.Rows
	}

	const goroutines = 16
	const repeats = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < repeats; i++ {
				who := people[(g+i)%len(people)]
				ans, err := sg.Run(who)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(ans.Rows, want[who]) {
					errs <- fmt.Errorf("goroutine %d: Run(%s) = %v, want %v", g, who, ans.Rows, want[who])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPreparedConcurrentSection4(t *testing.T) {
	db := mustDB(t, flightSrc)
	cnx, err := db.Prepare("cnx(?, ?, D, AT)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := [][2]string{{"hel", "900"}, {"sto", "1100"}, {"par", "1400"}, {"sto", "930"}}
	want := make([][][]string, len(cases))
	for i, c := range cases {
		ans, err := cnx.Run(c[0], c[1])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ans.Rows
	}
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				k := (g + i) % len(cases)
				ans, err := cnx.Run(cases[k][0], cases[k][1])
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(ans.Rows, want[k]) {
					errs <- fmt.Errorf("Run(%v) = %v, want %v", cases[k], ans.Rows, want[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Concurrent one-shot queries exercise the plan cache itself (racing
// builders, shared cached plans) rather than a single Prepared handle.
func TestConcurrentQueryPlanCache(t *testing.T) {
	db := mustDB(t, sgSrc)
	want, err := db.Query("sg(john, Y)")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				ans, err := db.Query("sg(john, Y)")
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(ans.Rows, want.Rows) {
					errs <- fmt.Errorf("got %v want %v", ans.Rows, want.Rows)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Every strategy round-trips through its CLI name.
func TestStrategyStringRoundTrip(t *testing.T) {
	all := Strategies()
	if len(all) != 10 {
		t.Fatalf("expected 10 strategies, have %d", len(all))
	}
	for _, s := range all {
		got, err := ParseStrategy(s.String())
		if err != nil {
			t.Fatalf("ParseStrategy(%q): %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("round trip %v -> %q -> %v", s, s.String(), got)
		}
	}
}

// Prepared plans work for every strategy, agreeing with one-shot queries.
func TestPreparedAllStrategies(t *testing.T) {
	for _, s := range []Strategy{Chain, Naive, Seminaive, Magic, Counting, ReverseCounting, HenschenNaqvi, QSQNet} {
		t.Run(s.String(), func(t *testing.T) {
			db := mustDB(t, sgSrc)
			p, err := db.Prepare("sg(?, Y)", Options{Strategy: s})
			if err != nil {
				t.Fatalf("Prepare: %v", err)
			}
			ans, err := p.Run("john")
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !reflect.DeepEqual(ans.Rows, sgJohnWant) {
				t.Fatalf("got %v want %v", ans.Rows, sgJohnWant)
			}
		})
	}
	// Hunt needs a regular equation.
	db := mustDB(t, `
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
edge(a, b). edge(b, c).
`)
	p, err := db.Prepare("tc(?, Y)", Options{Strategy: Hunt})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := p.Run("a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ans.Rows, [][]string{{"b"}, {"c"}}) {
		t.Fatalf("hunt prepared: %v", ans.Rows)
	}
}

func TestPreparedErrors(t *testing.T) {
	db := mustDB(t, sgSrc)
	// Wrong parameter count.
	sg, err := db.Prepare("sg(?, Y)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sg.Run("john", "ann"); err == nil {
		t.Error("excess parameters accepted")
	}
	if _, err := sg.Run(); err == nil {
		t.Error("missing parameters accepted")
	}
	// '?' outside a template.
	if _, err := db.Query("sg(?, Y)"); err == nil {
		t.Error("'?' placeholder accepted by Query")
	}
	// Strategy constraints surface at Prepare time.
	if _, err := db.Prepare("sg(X, Y)", Options{Strategy: Counting}); err == nil {
		t.Error("counting accepted an ff template")
	}
	if _, err := db.Prepare("sg(?, Y)", Options{Strategy: Hunt}); err == nil {
		t.Error("hunt accepted a nonregular equation")
	}
}

// One-shot queries that compile on a plan-cache miss still charge the
// compilation's store access to the answer (the Hunt preconstruction
// scan is the extreme case); cached prepared runs report only their own
// retrievals, with the scan exposed via CompileStats.
func TestHuntOneShotStatsIncludePreconstruction(t *testing.T) {
	db := mustDB(t, `
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
edge(a, b). edge(b, c). edge(c, d).
`)
	ans, err := db.QueryOpts("tc(a, Y)", Options{Strategy: Hunt})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Stats.FactsConsulted == 0 {
		t.Fatalf("one-shot hunt query reported zero facts consulted: %+v", ans.Stats)
	}
	p, err := db.Prepare("tc(?, Y)", Options{Strategy: Hunt})
	if err != nil {
		t.Fatal(err)
	}
	facts, lookups := p.CompileStats()
	if facts == 0 || lookups == 0 {
		t.Fatalf("CompileStats = (%d, %d), want preconstruction cost", facts, lookups)
	}
}

// A fully bound template answers True/False per parameter vector.
func TestPreparedBooleanTemplate(t *testing.T) {
	db := mustDB(t, sgSrc)
	p, err := db.Prepare("sg(?, ?)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	yes, err := p.Run("john", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if !yes.True {
		t.Error("sg(john, bob) should hold")
	}
	no, err := p.Run("john", "gp")
	if err != nil {
		t.Fatal(err)
	}
	if no.True {
		t.Error("sg(john, gp) should not hold")
	}
}
