//go:build race

package chainlog

// raceEnabled reports that the race detector is active: its
// instrumentation allocates, so zero-allocation assertions are skipped.
const raceEnabled = true
