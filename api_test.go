package chainlog

import (
	"reflect"
	"testing"
)

func mustDB(t *testing.T, src string) *DB {
	t.Helper()
	db := NewDB()
	if err := db.LoadProgram(src); err != nil {
		t.Fatalf("LoadProgram: %v", err)
	}
	return db
}

const sgSrc = `
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).

up(john, p1).   up(ann, p1).   up(bob, p2).
up(p1, gp).     up(p2, gp).
flat(gp, gp).   flat(p1, p1).  flat(p2, p2).
down(gp, p1).   down(gp, p2).
down(p1, john). down(p1, ann). down(p2, bob).
`

// Same generation of john: john and ann share parent p1; bob shares
// grandparent gp.
var sgJohnWant = [][]string{{"ann"}, {"bob"}, {"john"}}

func TestQuerySameGenerationAllStrategies(t *testing.T) {
	for _, strat := range []Strategy{Chain, Naive, Seminaive, Magic, Counting, ReverseCounting, HenschenNaqvi} {
		t.Run(strat.String(), func(t *testing.T) {
			db := mustDB(t, sgSrc)
			ans, err := db.QueryOpts("sg(john, Y)", Options{Strategy: strat})
			if err != nil {
				t.Fatalf("query: %v", err)
			}
			if !reflect.DeepEqual(ans.Rows, sgJohnWant) {
				t.Fatalf("strategy %v: got %v want %v", strat, ans.Rows, sgJohnWant)
			}
			if !ans.Stats.Converged {
				t.Fatalf("strategy %v did not converge", strat)
			}
		})
	}
}

func TestQueryInverseAndBoolean(t *testing.T) {
	db := mustDB(t, sgSrc)
	// fb query: who is in john's generation set... inverse direction.
	ans, err := db.Query("sg(X, john)")
	if err != nil {
		t.Fatalf("fb query: %v", err)
	}
	if !reflect.DeepEqual(ans.Rows, sgJohnWant) {
		// the sample data is symmetric, so the inverse answer matches
		t.Fatalf("fb: got %v want %v", ans.Rows, sgJohnWant)
	}
	// bb query routes through Section 4 (both bindings used).
	ans, err = db.Query("sg(john, bob)")
	if err != nil {
		t.Fatalf("bb query: %v", err)
	}
	if !ans.True {
		t.Fatal("sg(john, bob) should hold")
	}
	ans, err = db.Query("sg(john, gp)")
	if err != nil {
		t.Fatalf("bb query: %v", err)
	}
	if ans.True {
		t.Fatal("sg(john, gp) should not hold")
	}
}

func TestQueryAllPairs(t *testing.T) {
	db := mustDB(t, `
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
edge(a, b). edge(b, c).
`)
	ans, err := db.Query("tc(X, Y)")
	if err != nil {
		t.Fatalf("ff query: %v", err)
	}
	want := [][]string{{"a", "b"}, {"a", "c"}, {"b", "c"}}
	if !reflect.DeepEqual(ans.Rows, want) {
		t.Fatalf("got %v want %v", ans.Rows, want)
	}
}

func TestBaseQuery(t *testing.T) {
	db := mustDB(t, `edge(a, b). edge(a, c).`)
	ans, err := db.Query("edge(a, Y)")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"b"}, {"c"}}
	if !reflect.DeepEqual(ans.Rows, want) {
		t.Fatalf("got %v want %v", ans.Rows, want)
	}
}

func TestFlightSection4(t *testing.T) {
	db := mustDB(t, `
cnx(S, DT, D, AT) :- flight(S, DT, D, AT).
cnx(S, DT, D, AT) :- flight(S, DT, D1, AT1), AT1 < DT1, is_deptime(DT1), cnx(D1, DT1, D, AT).

flight(hel, 900, sto, 1000).
flight(sto, 1100, par, 1300).
flight(par, 1400, nyc, 2000).
flight(sto, 930, osl, 1030).
is_deptime(900). is_deptime(1100). is_deptime(1400). is_deptime(930).
`)
	ans, err := db.Query("cnx(hel, 900, D, AT)")
	if err != nil {
		t.Fatalf("cnx query: %v", err)
	}
	want := [][]string{{"nyc", "2000"}, {"par", "1300"}, {"sto", "1000"}}
	if !reflect.DeepEqual(ans.Rows, want) {
		t.Fatalf("got %v want %v", ans.Rows, want)
	}
	// sto departure 930 is before arrival 1000: osl must NOT be reachable.
	for _, r := range ans.Rows {
		if r[0] == "osl" {
			t.Fatal("osl should not be reachable after arriving 1000")
		}
	}
	// Agreement with seminaive.
	sn, err := db.QueryOpts("cnx(hel, 900, D, AT)", Options{Strategy: Seminaive})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sn.Rows, ans.Rows) {
		t.Fatalf("seminaive disagreement: %v vs %v", sn.Rows, ans.Rows)
	}
}

func TestHuntRegular(t *testing.T) {
	db := mustDB(t, `
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
edge(a, b). edge(b, c). edge(c, d). edge(x, y).
`)
	ans, err := db.QueryOpts("tc(a, Y)", Options{Strategy: Hunt})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"b"}, {"c"}, {"d"}}
	if !reflect.DeepEqual(ans.Rows, want) {
		t.Fatalf("got %v want %v", ans.Rows, want)
	}
}
