package chainlog_test

import (
	"fmt"
	"log"

	"chainlog"
)

// The paper's same-generation query, evaluated with the default
// graph-traversal strategy.
func ExampleDB_Query() {
	db := chainlog.NewDB()
	err := db.LoadProgram(`
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).

		up(john, carol). up(ann, carol). flat(carol, carol).
		down(carol, john). down(carol, ann).
	`)
	if err != nil {
		log.Fatal(err)
	}
	ans, err := db.Query("sg(john, Y)")
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range ans.Rows {
		fmt.Println(row[0])
	}
	// Output:
	// ann
	// john
}

// Compile once, bind many: a parameterized query is prepared into a
// fixed plan and run for several bound constants.
func ExampleDB_Prepare() {
	db := chainlog.NewDB()
	err := db.LoadProgram(`
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).

		up(john, carol). up(ann, carol). flat(carol, carol).
		down(carol, john). down(carol, ann).
	`)
	if err != nil {
		log.Fatal(err)
	}
	sg, err := db.Prepare("sg(?, Y)", chainlog.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, who := range []string{"john", "ann"} {
		ans, err := sg.Run(who)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(who, "->", ans.Rows)
	}
	// Output:
	// john -> [[ann] [john]]
	// ann -> [[ann] [john]]
}

// Selecting a comparison strategy per query.
func ExampleDB_QueryOpts() {
	db := chainlog.NewDB()
	err := db.LoadProgram(`
		tc(X, Y) :- edge(X, Y).
		tc(X, Z) :- edge(X, Y), tc(Y, Z).
		edge(a, b). edge(b, c).
	`)
	if err != nil {
		log.Fatal(err)
	}
	ans, err := db.QueryOpts("tc(a, Y)", chainlog.Options{Strategy: chainlog.Magic})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ans.Rows)
	// Output:
	// [[b] [c]]
}

// Fully bound queries report truth, routing both bindings through the
// Section 4 transformation.
func ExampleDB_Query_boolean() {
	db := chainlog.NewDB()
	err := db.LoadProgram(`
		tc(X, Y) :- edge(X, Y).
		tc(X, Z) :- edge(X, Y), tc(Y, Z).
		edge(a, b). edge(b, c).
	`)
	if err != nil {
		log.Fatal(err)
	}
	yes, _ := db.Query("tc(a, c)")
	no, _ := db.Query("tc(c, a)")
	fmt.Println(yes.True, no.True)
	// Output:
	// true false
}

// Classifying a program per Section 2 of the paper.
func ExampleDB_Classify() {
	db := chainlog.NewDB()
	err := db.LoadProgram(`
		sg(X, Y) :- flat(X, Y).
		sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
	`)
	if err != nil {
		log.Fatal(err)
	}
	c := db.Classify()
	fmt.Printf("recursive=%v linear=%v binaryChain=%v regular=%v\n",
		c.Recursive, c.Linear, c.BinaryChain, c.Regular)
	// Output:
	// recursive=true linear=true binaryChain=true regular=false
}
