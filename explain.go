package chainlog

import (
	"fmt"
	"strings"

	"chainlog/internal/adorn"
	"chainlog/internal/automaton"
	"chainlog/internal/binchain"
	"chainlog/internal/equations"
	"chainlog/internal/parser"
)

// Explain renders the compiled form of the program, and — when a query is
// given — the compilation route that query would take: the Lemma 1
// equation system and its automaton for direct binary-chain queries, or
// the adorned program and generated binary-chain program for queries
// routed through the Section 4 transformation.
func (db *DB) Explain(query string) (string, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var b strings.Builder
	info := db.analysisLocked()

	if info.BinaryChainProgram() {
		sys, err := equations.Transform(db.prog)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "Lemma 1 equation system (%d loop iterations):\n%s\n", sys.Iterations, sys.Render())
		if query != "" {
			q, err := parser.ParseQuery(query, db.st)
			if err != nil {
				return "", err
			}
			if e, ok := sys.EquationFor(q.Pred); ok && (q.Adornment() == "bf" || q.Adornment() == "fb" || q.Adornment() == "ff") {
				fmt.Fprintf(&b, "automaton M(e_%s):\n%s\n", q.Pred, automaton.Compile(e).String())
				return b.String(), nil
			}
		}
	}

	if query == "" {
		return b.String(), nil
	}
	q, err := parser.ParseQuery(query, db.st)
	if err != nil {
		return "", err
	}
	if !info.Derived[q.Pred] {
		fmt.Fprintf(&b, "%s is an extensional predicate; the query is a direct index lookup.\n", q.Pred)
		return b.String(), nil
	}

	// Section 4 route.
	ap, err := adorn.Adorn(db.prog, q)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "adorned program (query %s):\n%s", ap.Query, ap.Render())
	if err := ap.ChainCheck(); err != nil {
		fmt.Fprintf(&b, "NOT a chain program: %v\n", err)
		return b.String(), nil
	}
	tr, err := binchain.FromAdorned(ap, db.store)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "\nbinary-chain program:\n%s", tr.Describe())
	sys, err := equations.Transform(tr.Program)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "\nequations:\n%s", sys.Render())
	return b.String(), nil
}
