package chainlog

import (
	"fmt"
	"strings"

	"chainlog/internal/adorn"
	"chainlog/internal/analysis"
	"chainlog/internal/ast"
	"chainlog/internal/automaton"
	"chainlog/internal/binchain"
	"chainlog/internal/equations"
	"chainlog/internal/parser"
)

// Explain renders the compiled form of the program, and — when a query is
// given — the compilation route that query would take: the Lemma 1
// equation system and its automaton for direct binary-chain queries, or
// the adorned program and generated binary-chain program for queries
// routed through the Section 4 transformation. Derived-predicate queries
// additionally get a "plan choice" section showing the cost-based
// optimizer's decision: the chosen strategy, its estimated cost, and the
// rejected alternatives. Explain uses default options (Auto strategy);
// use ExplainOpts to see how pinned options change the choice.
func (db *DB) Explain(query string) (string, error) {
	return db.ExplainOpts(query, Options{})
}

// ExplainOpts is Explain under explicit options. A pinned
// Options.Strategy is reported as such: the optimizer is bypassed
// entirely, not merely outvoted.
func (db *DB) ExplainOpts(query string, opts Options) (string, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var b strings.Builder
	info := db.analysisLocked()

	var q ast.Query
	if query != "" {
		var err error
		q, err = parser.ParseQuery(query, db.st)
		if err != nil {
			return "", err
		}
	}

	if err := db.explainRouteLocked(&b, info, query, q); err != nil {
		return "", err
	}

	if query != "" && info.Derived[q.Pred] {
		b.WriteString("\nplan choice:\n")
		// The binding pattern drives every strategy decision (it decides
		// whether bindings can prune at all), so it is part of the record.
		fmt.Fprintf(&b, "adornment: %s\n", q.Adornment())
		if opts.Strategy != Auto {
			fmt.Fprintf(&b, "strategy %s pinned by Options.Strategy (optimizer bypassed)\n", opts.Strategy)
		} else if opts.Strict {
			b.WriteString("chain route required by Options.Strict (optimizer bypassed)\n")
		} else {
			tmpl, _ := templateize(q)
			b.WriteString(db.optimizeLocked(tmpl, opts, nil).Describe())
			b.WriteByte('\n')
		}
	}
	return b.String(), nil
}

// explainRouteLocked renders the compilation-route portion of Explain.
// The caller must hold db.mu (shared suffices) and have parsed q from
// query when query is non-empty.
func (db *DB) explainRouteLocked(b *strings.Builder, info *analysis.Info, query string, q ast.Query) error {
	if info.BinaryChainProgram() {
		sys, err := equations.Transform(db.prog)
		if err != nil {
			return err
		}
		fmt.Fprintf(b, "Lemma 1 equation system (%d loop iterations):\n%s\n", sys.Iterations, sys.Render())
		if query != "" {
			if e, ok := sys.EquationFor(q.Pred); ok && (q.Adornment() == "bf" || q.Adornment() == "fb" || q.Adornment() == "ff") {
				fmt.Fprintf(b, "automaton M(e_%s):\n%s\n", q.Pred, automaton.Compile(e).String())
				return nil
			}
		}
	}

	if query == "" {
		return nil
	}
	if !info.Derived[q.Pred] {
		fmt.Fprintf(b, "%s is an extensional predicate; the query is a direct index lookup.\n", q.Pred)
		return nil
	}

	// Section 4 route.
	ap, err := adorn.Adorn(db.prog, q)
	if err != nil {
		// Outside the adorned linear class (e.g. nonlinear recursion):
		// magic and the Section 4 transformation are unavailable, but the
		// general strategies still evaluate the query, so explain reports
		// the rejection instead of failing.
		fmt.Fprintf(b, "adorned program unavailable: %v\n", err)
		return nil
	}
	fmt.Fprintf(b, "adorned program (query %s):\n%s", ap.Query, ap.Render())
	if err := ap.ChainCheck(); err != nil {
		fmt.Fprintf(b, "NOT a chain program: %v\n", err)
		return nil
	}
	tr, err := binchain.FromAdorned(ap, db.store)
	if err != nil {
		return err
	}
	fmt.Fprintf(b, "\nbinary-chain program:\n%s", tr.Describe())
	sys, err := equations.Transform(tr.Program)
	if err != nil {
		return err
	}
	fmt.Fprintf(b, "\nequations:\n%s", sys.Render())
	return nil
}
