#!/usr/bin/env bash
# bench.sh runs the benchmark suite and emits a machine-readable JSON
# report (ns/op, B/op, allocs/op and custom metrics per benchmark), so
# the perf trajectory is diffable across PRs: check the output in as
# BENCH_<pr>.json.
#
# Usage:
#   scripts/bench.sh [out.json]
#
# Environment:
#   BENCH_PATTERN  benchmark regexp (default: the paper-table suites)
#   BENCHTIME      go test -benchtime value (default 1s; CI smoke uses 10ms)
set -euo pipefail
cd "$(dirname "$0")/.."

PATTERN="${BENCH_PATTERN:-BenchmarkTable1|BenchmarkFig7|BenchmarkFig8|BenchmarkTheorem3|BenchmarkTheorem4|BenchmarkPrepared|BenchmarkFlight}"
BENCHTIME="${BENCHTIME:-1s}"
OUT="${1:-BENCH.json}"

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" . \
  | tee /dev/stderr \
  | go run ./cmd/benchjson > "$OUT"
echo "wrote $OUT" >&2
