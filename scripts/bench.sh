#!/usr/bin/env bash
# bench.sh runs the benchmark suite and emits a machine-readable JSON
# report (ns/op, B/op, allocs/op and custom metrics per benchmark), so
# the perf trajectory is diffable across PRs: check the output in as
# BENCH_<pr>.json. The CI regression gate diffs a fresh report against
# the newest checked-in baseline with `benchjson -compare`.
#
# Usage:
#   scripts/bench.sh [-count N] [out.json]
#
#   -count N   run each benchmark N times (go test -count); the JSON then
#              holds N records per benchmark and compare mode averages
#              them, damping scheduler noise in the CI gate.
#
# Environment:
#   BENCH_PATTERN  benchmark regexp (default: the paper-table suites)
#   BENCHTIME      go test -benchtime value (default 1s; CI smoke uses 10ms)
#
# set -o pipefail makes the pipeline below propagate a go test failure
# (compile error, panicking benchmark) instead of reporting benchjson's
# exit status; set -e then aborts the script with it.
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT=1
if [ "${1:-}" = "-count" ]; then
  COUNT="${2:?scripts/bench.sh: -count needs a value}"
  shift 2
fi

PATTERN="${BENCH_PATTERN:-BenchmarkTable1|BenchmarkFig7|BenchmarkFig8|BenchmarkTheorem3|BenchmarkTheorem4|BenchmarkPrepared|BenchmarkFlight|BenchmarkBatch|BenchmarkParallel|BenchmarkAdjOverlay|BenchmarkPlanChoice|BenchmarkMaterializedApply}"
BENCHTIME="${BENCHTIME:-1s}"
OUT="${1:-BENCH.json}"

# BenchmarkPrepared also matches BenchmarkPreparedAssertThenRun, the
# live-update benchmark pair; ./internal/edb contributes the CSR
# overlay-vs-rebuild microbenchmark.
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" . ./internal/edb \
  | tee /dev/stderr \
  | go run ./cmd/benchjson > "$OUT"
echo "wrote $OUT" >&2
