#!/usr/bin/env bash
# e2e.sh — end-to-end smoke of chainlogd: boot the daemon on the serving
# example program, drive a scripted query/assert/retract/delta session
# over HTTP, check every answer, scrape /metrics (plan-cache hits must
# survive fact churn with no recompiles), check /v1/explain surfaces the
# cost-based optimizer's plan choice, drive a cardinality-drift burst
# that must re-optimize the served plan exactly once without a
# recompile, then SIGTERM and assert a clean drain. Non-zero exit on
# any mismatch.
#
# Usage:
#   scripts/e2e.sh                 # build + boot + smoke + drain
#   E2E_EXTERNAL=http://host:port scripts/e2e.sh
#                                  # smoke an already-running daemon
#                                  # (e.g. inside the Docker image);
#                                  # boot/drain phases are skipped.
#
# Environment:
#   E2E_PORT     port for the locally booted daemon (default 8091)
#   CHAINLOGD    prebuilt binary to boot (default: go build ./cmd/chainlogd)
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${E2E_PORT:-8091}"
BASE="${E2E_EXTERNAL:-http://127.0.0.1:$PORT}"
TMP="$(mktemp -d)"
PID=""
FAILURES=0

cleanup() {
  if [ -n "$PID" ] && kill -0 "$PID" 2>/dev/null; then
    kill -9 "$PID" 2>/dev/null || true
  fi
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
  echo "e2e: FAIL: $*" >&2
  FAILURES=$((FAILURES + 1))
}

# post <path> <json-body> -> body on stdout; status in $STATUS
post() {
  local path="$1" body="$2"
  STATUS=$(curl -sS -o "$TMP/resp" -w '%{http_code}' -X POST \
    -H 'Content-Type: application/json' -d "$body" "$BASE$path")
  cat "$TMP/resp"
}

get() {
  local path="$1"
  STATUS=$(curl -sS -o "$TMP/resp" -w '%{http_code}' "$BASE$path")
  cat "$TMP/resp"
}

# expect <label> <want-status> <grep-fixed-string>
expect() {
  local label="$1" want_status="$2" want="$3"
  if [ "$STATUS" != "$want_status" ]; then
    fail "$label: status $STATUS, want $want_status ($(cat "$TMP/resp"))"
    return
  fi
  if [ -n "$want" ] && ! grep -qF -- "$want" "$TMP/resp"; then
    fail "$label: response $(cat "$TMP/resp") missing $want"
    return
  fi
  echo "e2e: ok: $label"
}

if [ -z "${E2E_EXTERNAL:-}" ]; then
  BIN="${CHAINLOGD:-}"
  if [ -z "$BIN" ]; then
    echo "e2e: building chainlogd" >&2
    go build -o "$TMP/chainlogd" ./cmd/chainlogd
    BIN="$TMP/chainlogd"
  fi
  "$BIN" -program examples/serving/family.dl -addr "127.0.0.1:$PORT" \
    -drain-timeout 10s >"$TMP/daemon.log" 2>&1 &
  PID=$!
  echo "e2e: booted chainlogd pid $PID on port $PORT" >&2
fi

# Wait for readiness.
for i in $(seq 1 100); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if [ "$i" = 100 ]; then
    echo "e2e: daemon never became healthy" >&2
    [ -n "$PID" ] && cat "$TMP/daemon.log" >&2
    exit 1
  fi
  sleep 0.1
done

get /healthz >/dev/null
expect "healthz" 200 '"status":"ok"'

# 1. Baseline queries: prepared template, batch, one-shot, boolean.
post /v1/query '{"template": "ancestor(?, Y)", "args": ["bart"]}' >/dev/null
expect "template query" 200 '"rows":[["abe"],["homer"],["orville"]]'

post /v1/query '{"template": "ancestor(?, Y)", "batch": [["bart"], ["homer"]]}' >/dev/null
expect "batch query" 200 '"rows":[["abe"],["orville"]]'

post /v1/query '{"query": "ancestor(X, abe)"}' >/dev/null
expect "one-shot inverse query" 200 '"rows":[["bart"],["homer"],["lisa"],["maggie"]]'

post /v1/query '{"query": "ancestor(bart, orville)"}' >/dev/null
expect "boolean query" 200 '"true":true'

# 2. Assert a new fact; the same plan must serve the new answer.
post /v1/assert '{"facts": [{"pred": "parent", "args": ["orville", "eve"]}]}' >/dev/null
expect "assert" 200 '"asserted":1'

post /v1/query '{"template": "ancestor(?, Y)", "args": ["bart"]}' >/dev/null
expect "query after assert" 200 '"rows":[["abe"],["eve"],["homer"],["orville"]]'

# 3. Retract it again; the answer must revert.
post /v1/retract '{"facts": [{"pred": "parent", "args": ["orville", "eve"]}]}' >/dev/null
expect "retract" 200 '"retracted":1'

post /v1/query '{"template": "ancestor(?, Y)", "args": ["bart"]}' >/dev/null
expect "query after retract" 200 '"rows":[["abe"],["homer"],["orville"]]'

# 4. Ordered delta: assert two, retract one — the insert-then-delete
# pair cancels, so the reported counts are the net single assert and
# the epoch moves exactly once.
post /v1/delta '{"ops": [
  {"op": "assert",  "pred": "parent", "args": ["orville", "zeke"]},
  {"op": "assert",  "pred": "parent", "args": ["orville", "gone"]},
  {"op": "retract", "pred": "parent", "args": ["orville", "gone"]}
]}' >/dev/null
expect "delta" 200 '"asserted":1,"retracted":0'

post /v1/query '{"template": "ancestor(?, Y)", "args": ["bart"]}' >/dev/null
expect "query after delta" 200 '"rows":[["abe"],["homer"],["orville"],["zeke"]]'

# 5. Malformed bodies are client errors, not 500s.
post /v1/query '{"nope": 1}' >/dev/null
expect "unknown field" 400 '"error"'
post /v1/query 'not json' >/dev/null
expect "non-JSON body" 400 '"error"'

# 6. Explain: the compilation route plus the cost-based optimizer's
# decision — chosen strategy with its estimated cost, and the costed
# alternatives it rejected.
get '/v1/explain?query=ancestor(bart,%20Y)' >/dev/null
expect "explain" 200 'equation system'
expect "explain plan choice" 200 'plan choice:'
expect "explain chosen strategy" 200 'chosen: '
expect "explain plan cost" 200 'estimated cost'
if ! grep -qF 'rejected: ' "$TMP/resp"; then
  fail "explain lists no rejected alternatives: $(cat "$TMP/resp")"
else
  echo "e2e: ok: explain lists rejected alternatives"
fi

# 7. Metrics: the template plan must have compiled exactly once and been
# reused across the fact churn above.
get /metrics >"$TMP/metrics"
expect "metrics scrape" 200 'chainlogd_requests_total'
if ! grep -q '^chainlogd_plan_compiles_total 1$' "$TMP/metrics"; then
  fail "plan compiled more than once across fact churn: $(grep '^chainlogd_plan_compiles_total' "$TMP/metrics")"
else
  echo "e2e: ok: single plan compile across fact churn"
fi
HITS=$(grep '^chainlogd_plan_cache_hits_total' "$TMP/metrics" | awk '{print $2}')
if [ -z "$HITS" ] || [ "$HITS" -lt 3 ]; then
  fail "plan-cache hits $HITS, want >= 3"
else
  echo "e2e: ok: plan-cache hits = $HITS across fact churn"
fi

# 8. Plan re-optimization end to end. The template plan's route was
# costed against boot-time cardinalities; a delta burst that grows the
# parent relation far past the drift floor (>= 8 tuples and >= 25%)
# must make the very next run of that plan re-choose its route —
# exactly once, with no plan recompile, and with the answer unchanged.
# The burst facts hang off fresh constants so no ancestor of bart is
# added.
REOPT0=$(grep '^chainlog_plan_reoptimizations_total' "$TMP/metrics" | awk '{print $2}')
if [ -z "$REOPT0" ]; then
  fail "metrics missing chainlog_plan_reoptimizations_total"
  REOPT0=0
fi
BURST='{"ops": ['
for i in $(seq 0 11); do
  BURST="$BURST{\"op\": \"assert\", \"pred\": \"parent\", \"args\": [\"cousin$i\", \"greataunt$i\"]},"
done
BURST="${BURST%,}]}"
post /v1/delta "$BURST" >/dev/null
expect "drift burst" 200 '"asserted":12'

post /v1/query '{"template": "ancestor(?, Y)", "args": ["bart"]}' >/dev/null
expect "query after drift burst" 200 '"rows":[["abe"],["homer"],["orville"],["zeke"]]'
get /metrics >"$TMP/metrics"
REOPT1=$(grep '^chainlog_plan_reoptimizations_total' "$TMP/metrics" | awk '{print $2}')
if [ "$((REOPT1 - REOPT0))" != 1 ]; then
  fail "drift burst: reoptimizations went $REOPT0 -> $REOPT1, want exactly one re-optimization"
else
  echo "e2e: ok: drift burst re-optimized the plan exactly once"
fi

# A second run sees the refreshed cardinalities and must not re-optimize
# again.
post /v1/query '{"template": "ancestor(?, Y)", "args": ["bart"]}' >/dev/null
expect "settled query after re-optimization" 200 '"rows":[["abe"],["homer"],["orville"],["zeke"]]'
get /metrics >"$TMP/metrics"
REOPT2=$(grep '^chainlog_plan_reoptimizations_total' "$TMP/metrics" | awk '{print $2}')
if [ "$REOPT2" != "$REOPT1" ]; then
  fail "settled plan re-optimized again: $REOPT1 -> $REOPT2"
else
  echo "e2e: ok: re-optimized plan is stable on the next run"
fi
# The re-optimization must not have recompiled anything in the serving
# registry (it re-costs inside the prepared handle).
if ! grep -q '^chainlogd_plan_compiles_total 1$' "$TMP/metrics"; then
  fail "re-optimization recompiled a registry plan: $(grep '^chainlogd_plan_compiles_total' "$TMP/metrics")"
else
  echo "e2e: ok: re-optimization reused the compiled plan"
fi

# 9. Deadline enforcement end to end: an absurd 1ms... the family graph
# is tiny, so instead check the contract with timeout_ms accepted and a
# normal answer returned (the heavy-traversal 504 path is pinned by unit
# tests).
post /v1/query '{"template": "ancestor(?, Y)", "args": ["bart"], "timeout_ms": 1000}' >/dev/null
expect "deadline-carrying query" 200 '"rows":'

# 10. Live view subscription: subscribe to /v1/watch, mutate, read the
# exact delta lines, then reconnect with the heartbeat cursor and check
# only the missed delta is replayed — no duplicates, no reset.
WATCH_URL="$BASE/v1/watch?template=ancestor(%3F,%20Y)&arg=bart"
: >"$TMP/watch1"
curl -sSN --max-time 20 "$WATCH_URL" >"$TMP/watch1" 2>/dev/null &
WATCH_PID=$!
watch_wait() { # watch_wait <file> <fixed-string> <label>
  local file="$1" want="$2" label="$3"
  for i in $(seq 1 100); do
    if grep -qF -- "$want" "$file" 2>/dev/null; then
      echo "e2e: ok: $label"
      return 0
    fi
    sleep 0.1
  done
  fail "$label: $(cat "$file" 2>/dev/null)"
  return 1
}
watch_wait "$TMP/watch1" '"reset":true' "watch reset line"
watch_wait "$TMP/watch1" '"rows":[["abe"],["homer"],["orville"],["zeke"]]' "watch snapshot rows"

post /v1/assert '{"facts": [{"pred": "parent", "args": ["orville", "watchkid"]}]}' >/dev/null
expect "watch-session assert" 200 '"asserted":1'
watch_wait "$TMP/watch1" '"added":[["watchkid"]]' "watch delta (added)"

post /v1/retract '{"facts": [{"pred": "parent", "args": ["orville", "watchkid"]}]}' >/dev/null
expect "watch-session retract" 200 '"retracted":1'
watch_wait "$TMP/watch1" '"removed":[["watchkid"]]' "watch delta (removed)"

HB=$(grep '"head":' "$TMP/watch1" | tail -1)
CURSOR=$(echo "$HB" | grep -o '"head":[0-9]*' | cut -d: -f2)
GEN=$(echo "$HB" | grep -o '"gen":[0-9]*' | cut -d: -f2)
kill "$WATCH_PID" 2>/dev/null || true
wait "$WATCH_PID" 2>/dev/null || true
if [ -z "$CURSOR" ] || [ -z "$GEN" ]; then
  fail "watch heartbeat carried no resume cursor: $HB"
else
  # Mutate while disconnected, then resume from the cursor.
  post /v1/assert '{"facts": [{"pred": "parent", "args": ["orville", "watchkid2"]}]}' >/dev/null
  expect "watch-offline assert" 200 '"asserted":1'
  curl -sSN --max-time 2 "$WATCH_URL&from=$CURSOR&gen=$GEN" >"$TMP/watch2" 2>/dev/null || true
  if ! grep -qF '"added":[["watchkid2"]]' "$TMP/watch2"; then
    fail "watch resume missed the offline delta: $(cat "$TMP/watch2")"
  elif grep -qF '"reset":true' "$TMP/watch2"; then
    fail "in-window watch resume forced a reset: $(cat "$TMP/watch2")"
  elif grep -qF '"added":[["watchkid"]]' "$TMP/watch2" || grep -qF '"removed"' "$TMP/watch2"; then
    fail "watch resume replayed already-delivered deltas: $(cat "$TMP/watch2")"
  else
    echo "e2e: ok: watch resume replayed exactly the missed delta"
  fi
  post /v1/retract '{"facts": [{"pred": "parent", "args": ["orville", "watchkid2"]}]}' >/dev/null
fi

if [ -z "${E2E_EXTERNAL:-}" ]; then
  # 11. Graceful drain: SIGTERM must exit 0 after finishing in-flight work.
  kill -TERM "$PID"
  RC=0
  wait "$PID" || RC=$?
  if [ "$RC" != 0 ]; then
    fail "SIGTERM exit code $RC, want 0"
    cat "$TMP/daemon.log" >&2
  elif ! grep -q 'drained cleanly' "$TMP/daemon.log"; then
    fail "daemon log missing clean-drain line"
    cat "$TMP/daemon.log" >&2
  else
    echo "e2e: ok: clean drain on SIGTERM"
  fi
  PID=""
fi

if [ "$FAILURES" -gt 0 ]; then
  echo "e2e: $FAILURES check(s) failed" >&2
  exit 1
fi
echo "e2e: all checks passed"
