#!/usr/bin/env bash
# cluster_e2e.sh — end-to-end exercise of the replication subsystem:
# boot a WAL-backed primary and two replicas, drive mixed query/mutation
# loadgen traffic AT A REPLICA with the read-your-writes check on
# (mutations bounce 403 to the primary, queries carry
# X-Chainlog-Min-Epoch and fail the run on any stale read), kill -9 one
# replica mid-run, restart it on its surviving WAL, and assert the whole
# cluster converges to the primary's epoch with byte-identical query
# answers. Then a fresh replica joins after the primary's log has been
# truncated by binary snapshots, forcing the 410 -> binary-snapshot
# bootstrap path, and must also converge byte-identically. Finishes with
# a manual failover: kill the primary, promote a replica, and write to
# it. Non-zero exit on any mismatch.
#
# Usage:
#   scripts/cluster_e2e.sh
#
# Environment:
#   CLUSTER_BASE_PORT   first of four consecutive ports (default 8094)
#   CLUSTER_LOAD_SECS   loadgen duration in seconds (default 6)
set -euo pipefail
cd "$(dirname "$0")/.."

BASE_PORT="${CLUSTER_BASE_PORT:-8094}"
LOAD_SECS="${CLUSTER_LOAD_SECS:-6}"
P_PORT=$BASE_PORT
R1_PORT=$((BASE_PORT + 1))
R2_PORT=$((BASE_PORT + 2))
R3_PORT=$((BASE_PORT + 3))
P_URL="http://127.0.0.1:$P_PORT"
R1_URL="http://127.0.0.1:$R1_PORT"
R2_URL="http://127.0.0.1:$R2_PORT"
R3_URL="http://127.0.0.1:$R3_PORT"
PROGRAM=examples/serving/family.dl

TMP="$(mktemp -d)"
P_PID="" R1_PID="" R2_PID="" R3_PID=""
FAILURES=0

cleanup() {
  for pid in "$P_PID" "$R1_PID" "$R2_PID" "$R3_PID"; do
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
      kill -9 "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
  echo "cluster-e2e: FAIL: $*" >&2
  FAILURES=$((FAILURES + 1))
}

ok() { echo "cluster-e2e: ok: $*"; }

echo "cluster-e2e: building chainlogd, chainlogctl, loadgen" >&2
go build -o "$TMP/chainlogd" ./cmd/chainlogd
go build -o "$TMP/chainlogctl" ./cmd/chainlogctl
go build -o "$TMP/loadgen" ./cmd/loadgen

# boot_node <name> <port> <wal-dir> [extra flags...]; prints the PID.
boot_node() {
  local name="$1" port="$2" wal="$3"
  shift 3
  "$TMP/chainlogd" -program "$PROGRAM" -addr "127.0.0.1:$port" \
    -wal-dir "$wal" -snapshot-bytes 65536 -drain-timeout 5s "$@" \
    >>"$TMP/$name.log" 2>&1 &
  echo $!
}

wait_healthy() {
  local url="$1" name="$2"
  for i in $(seq 1 100); do
    if curl -sf "$url/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "cluster-e2e: $name never became healthy" >&2
  cat "$TMP/$name.log" >&2
  exit 1
}

# fact_epoch <url> — extract the fact epoch from /v1/status.
fact_epoch() {
  curl -sf "$1/v1/status" | grep -o '"fact_epoch":[0-9]*' | head -1 | cut -d: -f2
}

# The primary writes binary columnar snapshots with tiny segment and
# snapshot thresholds, so the run's mutations rotate and truncate the
# log — the precondition for the late-joiner binary bootstrap below.
P_PID=$(boot_node primary "$P_PORT" "$TMP/wal-p" \
  -snapshot-format binary -segment-bytes 1024 -snapshot-bytes 2048)
wait_healthy "$P_URL" primary
R1_PID=$(boot_node replica1 "$R1_PORT" "$TMP/wal-r1" -role replica -primary "$P_URL")
R2_PID=$(boot_node replica2 "$R2_PORT" "$TMP/wal-r2" -role replica -primary "$P_URL")
wait_healthy "$R1_URL" replica1
wait_healthy "$R2_URL" replica2
ok "booted primary ($P_PID) + replicas ($R1_PID, $R2_PID)"

"$TMP/chainlogctl" status -nodes "$P_URL,$R1_URL,$R2_URL"

# Mixed traffic at replica1 with the read-your-writes check: every
# mutation 403s to the primary (a redirect), and every subsequent query
# must answer at or past the epoch that mutation returned. Any stale
# read or non-2xx final status fails the run.
"$TMP/loadgen" -addr "$R1_URL" -duration "${LOAD_SECS}s" -qps 80 \
  -template 'ancestor(?, Y)' -args bart,lisa,homer \
  -mutation-ratio 0.2 -min-epoch -fail-on-error \
  -out "$TMP/load.json" >"$TMP/loadgen.log" 2>&1 &
LOAD_PID=$!

# Mid-run: kill -9 replica2 (no drain, torn WAL tail is fair game),
# then restart it on the same WAL directory.
sleep 2
kill -9 "$R2_PID"
ok "killed replica2 (pid $R2_PID) mid-run"
sleep 1
R2_PID=$(boot_node replica2 "$R2_PORT" "$TMP/wal-r2" -role replica -primary "$P_URL")
wait_healthy "$R2_URL" replica2
ok "restarted replica2 (pid $R2_PID) on its WAL"

RC=0
wait "$LOAD_PID" || RC=$?
cat "$TMP/load.json"
if [ "$RC" != 0 ]; then
  fail "loadgen exited $RC (stale reads or failed requests)"
  cat "$TMP/loadgen.log" >&2
else
  ok "loadgen clean: no stale reads, no failed requests"
fi
if ! grep -q '"redirects": [1-9]' "$TMP/load.json"; then
  fail "loadgen never exercised the 403 -> primary redirect path"
else
  ok "mutations redirected to the primary"
fi

# Convergence: every node must reach the primary's final epoch.
WANT=$(fact_epoch "$P_URL")
for i in $(seq 1 100); do
  E1=$(fact_epoch "$R1_URL" || echo -1)
  E2=$(fact_epoch "$R2_URL" || echo -1)
  if [ "$E1" = "$WANT" ] && [ "$E2" = "$WANT" ]; then break; fi
  if [ "$i" = 100 ]; then
    fail "catch-up timeout: primary=$WANT replica1=$E1 replica2=$E2"
    "$TMP/chainlogctl" status -nodes "$P_URL,$R1_URL,$R2_URL" || true
  fi
  sleep 0.1
done
[ "$FAILURES" -eq 0 ] && ok "all nodes at epoch $WANT (replica2 caught up after kill -9)"

"$TMP/chainlogctl" status -nodes "$P_URL,$R1_URL,$R2_URL"

# Byte-identical answers across the cluster for a sweep of queries.
for q in 'ancestor(bart, Y)' 'ancestor(X, abe)' 'ancestor(homer, Y)' \
         'loadgen_edge(X, Y)'; do
  for node in p r1 r2; do
    url_var="${node^^}_URL"
    curl -sS -X POST -H 'Content-Type: application/json' \
      -d "{\"query\": \"$q\"}" "${!url_var}/v1/query" >"$TMP/ans-$node"
  done
  if ! cmp -s "$TMP/ans-p" "$TMP/ans-r1" || ! cmp -s "$TMP/ans-p" "$TMP/ans-r2"; then
    fail "answers diverge for '$q': primary=$(cat "$TMP/ans-p") r1=$(cat "$TMP/ans-r1") r2=$(cat "$TMP/ans-r2")"
  else
    ok "byte-identical answers for '$q'"
  fi
done

# Binary snapshot endpoint: the body must carry the snapshot magic.
curl -sf "$P_URL/v1/snapshot?format=binary" -o "$TMP/snap.bin"
if [ "$(head -c8 "$TMP/snap.bin")" != "CLOGSNP1" ]; then
  fail "/v1/snapshot?format=binary did not return a binary snapshot"
else
  ok "binary snapshot endpoint serves the columnar format"
fi

# chainlogctl bootstrap must install the primary's snapshot as a .bin
# file in a fresh WAL directory.
"$TMP/chainlogctl" bootstrap -from "$P_URL" -wal-dir "$TMP/wal-ctl"
if ! ls "$TMP/wal-ctl"/snap-*.bin >/dev/null 2>&1; then
  fail "chainlogctl bootstrap did not produce a binary snapshot ($(ls "$TMP/wal-ctl"))"
else
  ok "chainlogctl bootstrap installed a binary snapshot"
fi

# Late joiner: the primary's early segments are gone (truncated by its
# binary snapshots), so a fresh replica's replication request gets 410
# and it must bootstrap from the binary snapshot stream, then converge.
R3_PID=$(boot_node replica3 "$R3_PORT" "$TMP/wal-r3" \
  -role replica -primary "$P_URL" -snapshot-format binary)
wait_healthy "$R3_URL" replica3
WANT=$(fact_epoch "$P_URL")
for i in $(seq 1 100); do
  E3=$(fact_epoch "$R3_URL" || echo -1)
  if [ "$E3" = "$WANT" ]; then break; fi
  if [ "$i" = 100 ]; then
    fail "late joiner never converged: primary=$WANT replica3=$E3"
    tail -20 "$TMP/replica3.log" >&2 || true
  fi
  sleep 0.1
done
if ! grep -q "bootstrapped from" "$TMP/replica3.log"; then
  fail "late joiner did not take the snapshot bootstrap path"
else
  ok "late joiner bootstrapped from the primary's snapshot"
fi
if ! ls "$TMP/wal-r3"/snap-*.bin >/dev/null 2>&1; then
  fail "late joiner did not persist its bootstrap snapshot as binary"
else
  ok "late joiner persisted a binary bootstrap snapshot"
fi
for q in 'ancestor(bart, Y)' 'ancestor(X, abe)' 'loadgen_edge(X, Y)'; do
  curl -sS -X POST -H 'Content-Type: application/json' \
    -d "{\"query\": \"$q\"}" "$P_URL/v1/query" >"$TMP/ans-p"
  curl -sS -X POST -H 'Content-Type: application/json' \
    -d "{\"query\": \"$q\"}" "$R3_URL/v1/query" >"$TMP/ans-r3"
  if ! cmp -s "$TMP/ans-p" "$TMP/ans-r3"; then
    fail "late joiner diverges for '$q': primary=$(cat "$TMP/ans-p") r3=$(cat "$TMP/ans-r3")"
  else
    ok "late joiner byte-identical for '$q'"
  fi
done

# Manual failover: kill the primary, promote replica1, write to it.
kill -9 "$P_PID"
P_PID=""
"$TMP/chainlogctl" promote -node "$R1_URL"
ROLE=$(curl -sf "$R1_URL/v1/status" | grep -o '"role":"[a-z]*"')
if [ "$ROLE" != '"role":"primary"' ]; then
  fail "replica1 role after promote: $ROLE"
else
  ok "replica1 promoted"
fi
STATUS=$(curl -sS -o "$TMP/resp" -w '%{http_code}' -X POST \
  -H 'Content-Type: application/json' \
  -d '{"facts": [{"pred": "parent", "args": ["failover", "works"]}]}' \
  "$R1_URL/v1/assert")
if [ "$STATUS" != 200 ] || ! grep -q '"asserted":1' "$TMP/resp"; then
  fail "write after promote: status $STATUS, body $(cat "$TMP/resp")"
else
  ok "write accepted after failover"
fi

if [ "$FAILURES" -gt 0 ]; then
  echo "cluster-e2e: $FAILURES check(s) failed" >&2
  for log in primary replica1 replica2; do
    echo "--- $log.log ---" >&2
    tail -40 "$TMP/$log.log" >&2 || true
  done
  exit 1
fi
echo "cluster-e2e: all checks passed"
