package chainlog

import (
	"reflect"
	"testing"
)

const flightSrc = `
cnx(S, DT, D, AT) :- flight(S, DT, D, AT).
cnx(S, DT, D, AT) :- flight(S, DT, D1, AT1), AT1 < DT1, is_deptime(DT1), cnx(D1, DT1, D, AT).

flight(hel, 900, sto, 1000).
flight(sto, 1100, par, 1300).
flight(par, 1400, nyc, 2000).
flight(sto, 930, osl, 1030).
flight(osl, 1200, cdg, 1500).
is_deptime(900). is_deptime(1100). is_deptime(1400).
is_deptime(930). is_deptime(1200).
`

// agree evaluates the query with the chain strategy and with seminaive
// and requires identical rows.
func agree(t *testing.T, db *DB, query string) [][]string {
	t.Helper()
	chain, err := db.Query(query)
	if err != nil {
		t.Fatalf("chain %q: %v", query, err)
	}
	semi, err := db.QueryOpts(query, Options{Strategy: Seminaive})
	if err != nil {
		t.Fatalf("seminaive %q: %v", query, err)
	}
	if !reflect.DeepEqual(chain.Rows, semi.Rows) || chain.True != semi.True {
		t.Fatalf("%q: chain %v/%v vs seminaive %v/%v", query, chain.Rows, chain.True, semi.Rows, semi.True)
	}
	return chain.Rows
}

// Every binding pattern of the 4-ary flight query routes through the
// Section 4 transformation and must agree with bottom-up evaluation.
func TestFlightBindingPatterns(t *testing.T) {
	db := mustDB(t, flightSrc)
	queries := []string{
		"cnx(hel, 900, D, AT)",   // bbff — the paper's pattern
		"cnx(hel, DT, D, AT)",    // bfff
		"cnx(S, DT, nyc, AT)",    // ffbf — binding in the middle
		"cnx(S, DT, D, AT)",      // ffff — no bindings at all
		"cnx(hel, 900, nyc, AT)", // bbbf
		"cnx(S, 900, D, AT)",     // fbff
	}
	for _, q := range queries {
		rows := agree(t, db, q)
		_ = rows
	}
	// Fully bound.
	ans := agree(t, db, "cnx(hel, 900, nyc, 2000)")
	_ = ans
	full, err := db.Query("cnx(hel, 900, nyc, 2000)")
	if err != nil {
		t.Fatal(err)
	}
	if !full.True {
		t.Fatal("hel→sto→par→nyc connection not found")
	}
	neg, err := db.Query("cnx(hel, 900, osl, 1030)")
	if err != nil {
		t.Fatal(err)
	}
	if neg.True {
		t.Fatal("infeasible osl transfer accepted")
	}
}

// Ternary route program under various bindings.
func TestRouteBindingPatterns(t *testing.T) {
	db := mustDB(t, `
route(X, C, Y) :- ships(X, C, Y).
route(X, C, Y) :- ships(X, C, Z), route(Z, C, Y).

ships(d0, air, d1). ships(d1, air, d2). ships(d2, air, d0).
ships(d0, truck, d3). ships(d3, truck, d4).
ships(d4, truck, d0). ships(d2, truck, d3).
`)
	for _, q := range []string{
		"route(d0, air, Y)",
		"route(d0, truck, Y)",
		"route(X, air, d2)",
		"route(d0, C, d4)",
		"route(X, C, Y)",
	} {
		agree(t, db, q)
	}
}

// Repeated variables in a Section 4 query: route(X, C, X) asks for
// round trips.
func TestRepeatedVariableQuery(t *testing.T) {
	db := mustDB(t, `
route(X, C, Y) :- ships(X, C, Y).
route(X, C, Y) :- ships(X, C, Z), route(Z, C, Y).

ships(d0, air, d1). ships(d1, air, d0).
ships(d2, truck, d3).
`)
	ans := agree(t, db, "route(X, air, X)")
	want := [][]string{{"d0"}, {"d1"}}
	if !reflect.DeepEqual(ans, want) {
		t.Fatalf("round trips = %v, want %v", ans, want)
	}
}

// Strict mode surfaces the chain-condition rejection instead of falling
// back to magic sets.
func TestStrictModeSurfacesChainError(t *testing.T) {
	db := mustDB(t, flightSrc)
	if _, err := db.QueryOpts("cnx(hel, DT, D, AT)", Options{Strict: true}); err == nil {
		t.Fatal("strict mode accepted a non-chain binding pattern")
	}
	// Non-strict (default) answers correctly via the fallback.
	agree(t, db, "cnx(hel, DT, D, AT)")
}
