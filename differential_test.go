package chainlog

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strings"
	"testing"

	"chainlog/internal/ast"
	"chainlog/internal/naiveeval"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
)

// The differential oracle: random chain programs, random fact sets and
// random interleavings of Assert / Retract / Apply / Query are driven
// against both the chain engine (one-shot, prepared-reused-across-
// mutations, parallel, batch, streamed) and the textbook semi-naive
// reference in internal/naiveeval, which recomputes every answer from
// scratch. Any divergence is a bug in the engine's live-update path —
// exactly the class of bug the two-epoch refresh machinery could
// introduce silently.
//
// The same generator runs in two harnesses: FuzzDifferential consumes
// fuzz data as its decision stream (go test -fuzz=FuzzDifferential), and
// TestDifferentialSchedules replays a deterministic seed sweep on every
// plain `go test` run.

// chooser is the generator's decision source: a fuzzer byte stream or a
// seeded PRNG.
type chooser interface {
	intn(n int) int
}

type byteChooser struct {
	data []byte
	i    int
}

func (b *byteChooser) intn(n int) int {
	if n <= 1 {
		return 0
	}
	if b.i >= len(b.data) {
		return 0 // deterministic once the stream is exhausted
	}
	v := int(b.data[b.i])
	b.i++
	return v % n
}

type randChooser struct{ r *rand.Rand }

func (c randChooser) intn(n int) int { return c.r.Intn(n) }

// diffTemplate is one program family the generator can pick.
type diffTemplate struct {
	name string
	src  string
	// bases lists the mutable extensional predicates with their arities.
	bases []baseSpec
	// queries are query templates with '?' holes for bound constants.
	queries []string
}

type baseSpec struct {
	pred  string
	arity int
}

var diffTemplates = []diffTemplate{
	{
		name: "tc",
		src: `
tc(X, Y) :- e(X, Y).
tc(X, Z) :- e(X, Y), tc(Y, Z).
`,
		bases:   []baseSpec{{"e", 2}},
		queries: []string{"tc(?, Y)", "tc(X, ?)", "tc(X, Y)", "tc(?, ?)", "tc(X, X)"},
	},
	{
		name: "sg",
		src: `
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
`,
		bases:   []baseSpec{{"flat", 2}, {"up", 2}, {"down", 2}},
		queries: []string{"sg(?, Y)", "sg(X, ?)", "sg(X, Y)", "sg(?, ?)"},
	},
	{
		name: "nonregular",
		src: `
p(X, Y) :- a(X, Y).
p(X, Z) :- a(X, Y), p(Y, W), b(W, Z).
`,
		bases:   []baseSpec{{"a", 2}, {"b", 2}},
		queries: []string{"p(?, Y)", "p(X, ?)", "p(X, Y)", "p(?, ?)"},
	},
	{
		name: "mutual",
		src: `
p(X, Z) :- a(X, Y), q(Y, Z).
q(X, Y) :- b(X, Y).
q(X, Z) :- b(X, Y), p(Y, Z).
`,
		bases:   []baseSpec{{"a", 2}, {"b", 2}},
		queries: []string{"p(?, Y)", "q(?, Y)", "p(X, ?)", "q(X, Y)"},
	},
	{
		name: "nary",
		src: `
sg3(T, X, Y) :- flat3(T, X, Y).
sg3(T, X, Y) :- up3(T, X, X1), sg3(T, X1, Y1), down3(T, Y1, Y).
`,
		bases:   []baseSpec{{"flat3", 3}, {"up3", 3}, {"down3", 3}},
		queries: []string{"sg3(?, ?, Y)", "sg3(?, X, Y)"},
	},
}

// diffConsts is the constant pool; small enough that asserts collide
// with existing facts and retracts often hit.
var diffConsts = [...]string{"c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7"}

// forcedStrategy reads the CHAINLOG_FORCE_STRATEGY environment override:
// the strategy-matrix CI job sets it to pin every handle and one-shot of
// the differential suite to one strategy, so a strategy-specific
// regression fails in the job named after it. Unset means the schedule's
// usual mixed-surface coverage.
func forcedStrategy(t testing.TB) (Strategy, bool) {
	name := os.Getenv("CHAINLOG_FORCE_STRATEGY")
	if name == "" {
		return Auto, false
	}
	s, err := ParseStrategy(name)
	if err != nil {
		t.Fatalf("CHAINLOG_FORCE_STRATEGY: %v", err)
	}
	return s, true
}

// diffState is one differential run: the engine DB, the oracle's program
// ast and fact mirror, and the prepared handles that must survive every
// mutation of the schedule.
type diffState struct {
	t        testing.TB
	c        chooser
	db       *DB
	prog     *ast.Program
	facts    *naiveeval.Facts
	tmpl     diffTemplate
	prepared map[string]*Prepared // sequential handles, one per query template
	parallel map[string]*Prepared // Parallelism: 4 handles
	qsq      map[string]*Prepared // Strategy: QSQNet handles
	mutation int                  // mutations applied so far (for failure reports)

	// force pins every surface to one strategy (the strategy-matrix CI
	// job); forced reports whether the override is active.
	force  Strategy
	forced bool

	// The materialized handle under differential test: its maintained
	// answer is compared against a full oracle recompute after every
	// mutation, and a change-log subscriber mirror is replayed alongside.
	view        *Materialized
	viewText    string // concrete query text for the oracle
	mirror      map[string][]string
	mirrorEpoch uint64
	mirrorGen   uint64
}

func newDiffState(t testing.TB, c chooser) *diffState {
	tmpl := diffTemplates[c.intn(len(diffTemplates))]
	db := NewDB()
	if err := db.LoadProgram(tmpl.src); err != nil {
		t.Fatalf("template %s: %v", tmpl.name, err)
	}
	res, err := parser.Parse(tmpl.src, db.SymTab())
	if err != nil {
		t.Fatalf("template %s reparse: %v", tmpl.name, err)
	}
	s := &diffState{
		t:        t,
		c:        c,
		db:       db,
		prog:     res.Program,
		facts:    naiveeval.NewFacts(),
		tmpl:     tmpl,
		prepared: map[string]*Prepared{},
		parallel: map[string]*Prepared{},
		qsq:      map[string]*Prepared{},
	}
	s.force, s.forced = forcedStrategy(t)
	// The dedicated goal-directed handles pin QSQNet — except under a
	// strategy override, which owns every surface including these.
	qsqStrategy := QSQNet
	if s.forced {
		qsqStrategy = s.force
	}
	// Prepare every query template up front: these handles live through
	// the whole schedule, so each Run after a mutation exercises the
	// fact-epoch refresh path rather than a fresh compilation.
	for _, q := range tmpl.queries {
		if !strings.Contains(q, "?") {
			continue
		}
		p, err := db.Prepare(q, Options{Strategy: s.force})
		if err != nil {
			t.Fatalf("Prepare(%s): %v", q, err)
		}
		s.prepared[q] = p
		pp, err := db.Prepare(q, Options{Strategy: s.force, Parallelism: 4})
		if err != nil {
			t.Fatalf("Prepare(%s, par): %v", q, err)
		}
		s.parallel[q] = pp
		qp, err := db.Prepare(q, Options{Strategy: qsqStrategy})
		if err != nil {
			t.Fatalf("Prepare(%s, qsq): %v", q, err)
		}
		s.qsq[q] = qp
	}
	// Materialize one live view per schedule: a random query template
	// with random bindings, maintained differentially through every
	// mutation the schedule performs.
	vt := tmpl.queries[c.intn(len(tmpl.queries))]
	consts := make([]string, countHoles(vt))
	for i := range consts {
		consts[i] = diffConsts[c.intn(len(diffConsts))]
	}
	vp := s.prepared[vt]
	if vp == nil {
		p, err := db.Prepare(vt, Options{Strategy: s.force})
		if err != nil {
			t.Fatalf("Prepare(%s) for view: %v", vt, err)
		}
		vp = p
	}
	m, err := vp.Materialize(consts...)
	if err != nil {
		t.Fatalf("Materialize(%s): %v", vt, err)
	}
	s.view = m
	s.viewText = fillHoles(vt, consts)
	rows, epoch, gen := m.State()
	s.mirror = map[string][]string{}
	for _, r := range rows {
		s.mirror[rowKey(r)] = r
	}
	s.mirrorEpoch, s.mirrorGen = epoch, gen
	s.checkView()
	return s
}

// checkView compares the maintained answer set against a full oracle
// recompute and replays the change log into the subscriber mirror,
// which must converge to the same rows.
func (s *diffState) checkView() {
	s.t.Helper()
	rows, epoch := s.view.Snapshot()
	if len(rows) == 0 {
		rows = nil
	}
	wantRows, wantTrue := s.oracleRows(s.viewText)
	if len(s.view.Vars()) == 0 {
		if got := s.view.True(); got != wantTrue {
			s.t.Fatalf("after %d mutations (%s): view %s = %v, oracle %v",
				s.mutation, s.tmpl.name, s.viewText, got, wantTrue)
		}
	} else if !reflect.DeepEqual(rows, wantRows) {
		s.t.Fatalf("after %d mutations (%s): view %s\n got %v\nwant %v",
			s.mutation, s.tmpl.name, s.viewText, rows, wantRows)
	}
	if epoch != s.db.FactEpoch() {
		s.t.Fatalf("after %d mutations: view epoch %d, fact epoch %d",
			s.mutation, epoch, s.db.FactEpoch())
	}

	// Subscriber mirror: resume from the last cursor; a stale cursor
	// (recompute or ring overflow) resets from a fresh snapshot, exactly
	// as a /v1/watch client would.
	sets, ok := s.view.Changes(s.mirrorEpoch, s.mirrorGen)
	if !ok {
		fresh, e, g := s.view.State()
		s.mirror = map[string][]string{}
		for _, r := range fresh {
			s.mirror[rowKey(r)] = r
		}
		s.mirrorEpoch, s.mirrorGen = e, g
	} else {
		for _, cs := range sets {
			if cs.Epoch <= s.mirrorEpoch {
				s.t.Fatalf("change log out of order: %d after cursor %d", cs.Epoch, s.mirrorEpoch)
			}
			for _, r := range cs.Removed {
				k := rowKey(r)
				if _, present := s.mirror[k]; !present {
					s.t.Fatalf("change log removes absent row %v", r)
				}
				delete(s.mirror, k)
			}
			for _, r := range cs.Added {
				k := rowKey(r)
				if _, present := s.mirror[k]; present {
					s.t.Fatalf("change log adds duplicate row %v", r)
				}
				s.mirror[k] = r
			}
			s.mirrorEpoch = cs.Epoch
		}
		if s.mirrorEpoch < epoch {
			s.mirrorEpoch = epoch
		}
	}
	if len(s.mirror) != len(rows) {
		s.t.Fatalf("after %d mutations: mirror has %d rows, view %d", s.mutation, len(s.mirror), len(rows))
	}
	for _, r := range rows {
		if _, present := s.mirror[rowKey(r)]; !present {
			s.t.Fatalf("after %d mutations: mirror missing row %v", s.mutation, r)
		}
	}
}

// randomFact picks a base predicate and a constant vector.
func (s *diffState) randomFact() (string, []string) {
	b := s.tmpl.bases[s.c.intn(len(s.tmpl.bases))]
	args := make([]string, b.arity)
	for i := range args {
		args[i] = diffConsts[s.c.intn(len(diffConsts))]
	}
	return b.pred, args
}

func (s *diffState) internArgs(args []string) []symtab.Sym {
	syms := make([]symtab.Sym, len(args))
	for i, a := range args {
		syms[i] = s.db.Intern(a)
	}
	return syms
}

// assertOne mutates engine and oracle identically.
func (s *diffState) assertOne(pred string, args []string) {
	s.mutation++
	got := s.db.Assert(pred, args...)
	want := s.facts.Assert(pred, s.internArgs(args))
	if got != want {
		s.t.Fatalf("mutation %d: Assert(%s, %v) = %v, oracle %v", s.mutation, pred, args, got, want)
	}
	s.checkView()
}

func (s *diffState) retractOne(pred string, args []string) {
	s.mutation++
	got := s.db.Retract(pred, args...)
	want := s.facts.Retract(pred, s.internArgs(args))
	if got != want {
		s.t.Fatalf("mutation %d: Retract(%s, %v) = %v, oracle %v", s.mutation, pred, args, got, want)
	}
	s.checkView()
}

// applyBatch funnels several mutations through one Delta/Apply call.
// Because a delta may touch the same fact more than once (including
// assert-then-retract and retract-then-assert conflicts), the expected
// ApplyResult is the NET effect: per touched fact, presence before the
// delta versus presence after it.
func (s *diffState) applyBatch() {
	s.mutation++
	d := &Delta{}
	type presence struct{ before, after bool }
	touched := map[string]*presence{}
	n := 1 + s.c.intn(6)
	for i := 0; i < n; i++ {
		pred, args := s.randomFact()
		syms := s.internArgs(args)
		k := pred + "\x00" + fmt.Sprint(syms)
		if s.c.intn(3) == 0 {
			d.Retract(pred, args...)
			was := s.facts.Retract(pred, syms)
			if p := touched[k]; p != nil {
				p.after = false
			} else {
				touched[k] = &presence{before: was, after: false}
			}
		} else {
			d.Assert(pred, args...)
			wasNew := s.facts.Assert(pred, syms)
			if p := touched[k]; p != nil {
				p.after = true
			} else {
				touched[k] = &presence{before: !wasNew, after: true}
			}
		}
	}
	wantAsserted, wantRetracted := 0, 0
	for _, p := range touched {
		switch {
		case p.after && !p.before:
			wantAsserted++
		case p.before && !p.after:
			wantRetracted++
		}
	}
	epochBefore := s.db.FactEpoch()
	res := s.db.Apply(d)
	if res.Asserted != wantAsserted || res.Retracted != wantRetracted {
		s.t.Fatalf("mutation %d: Apply = %+v, oracle wants {%d %d}", s.mutation, res, wantAsserted, wantRetracted)
	}
	moved := s.db.FactEpoch() != epochBefore
	wantMove := wantAsserted+wantRetracted > 0
	if moved != wantMove {
		s.t.Fatalf("mutation %d: epoch moved=%v for net {%d %d}", s.mutation, moved, wantAsserted, wantRetracted)
	}
	s.checkView()
}

// fillHoles substitutes constants for '?' in a query template.
func fillHoles(tmpl string, consts []string) string {
	var b strings.Builder
	k := 0
	for _, r := range tmpl {
		if r == '?' {
			b.WriteString(consts[k])
			k++
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func countHoles(tmpl string) int { return strings.Count(tmpl, "?") }

// oracleRows computes the reference answer for a concrete query text and
// renders it in the engine's answer format (string rows, engine sort
// order, nil when empty).
func (s *diffState) oracleRows(text string) ([][]string, bool) {
	q, err := parser.ParseQuery(text, s.db.SymTab())
	if err != nil {
		s.t.Fatalf("oracle parse %q: %v", text, err)
	}
	rows := naiveeval.Answer(s.prog, s.facts, s.db.SymTab(), q)
	if len(freeVars(q)) == 0 {
		return nil, len(rows) > 0
	}
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		row := make([]string, len(r))
		for i, v := range r {
			row[i] = s.db.Name(v)
		}
		out = append(out, row)
	}
	sortRows(out)
	if len(out) == 0 {
		return nil, false
	}
	return out, false
}

// checkAnswer compares one engine answer against the oracle.
func (s *diffState) checkAnswer(how, text string, ans *Answer) {
	wantRows, wantTrue := s.oracleRows(text)
	if len(ans.Vars) == 0 {
		if ans.True != wantTrue {
			s.t.Fatalf("after %d mutations (%s): %s [%s] = %v, oracle %v", s.mutation, s.tmpl.name, text, how, ans.True, wantTrue)
		}
		return
	}
	gotRows := ans.Rows
	if len(gotRows) == 0 {
		gotRows = nil
	}
	if !reflect.DeepEqual(gotRows, wantRows) {
		s.t.Fatalf("after %d mutations (%s): %s [%s]\n got %v\nwant %v", s.mutation, s.tmpl.name, text, how, gotRows, wantRows)
	}
}

// query runs one randomly chosen query through one randomly chosen
// engine surface and compares it with the oracle.
func (s *diffState) query() {
	qt := s.tmpl.queries[s.c.intn(len(s.tmpl.queries))]
	nh := countHoles(qt)
	consts := make([]string, nh)
	for i := range consts {
		consts[i] = diffConsts[s.c.intn(len(diffConsts))]
	}
	text := fillHoles(qt, consts)

	p := s.prepared[qt]
	mode := s.c.intn(8)
	switch {
	case mode == 0 || p == nil:
		// One-shot through the plan cache.
		ans, err := s.db.QueryOpts(text, Options{Strategy: s.force})
		if err != nil {
			s.t.Fatalf("Query(%s): %v", text, err)
		}
		s.checkAnswer("one-shot", text, ans)
	case mode == 1:
		// The prepared handle created before any mutation.
		ans, err := p.Run(consts...)
		if err != nil {
			s.t.Fatalf("prepared Run(%s): %v", text, err)
		}
		s.checkAnswer("prepared", text, ans)
	case mode == 2:
		// Parallel traversal.
		ans, err := s.parallel[qt].Run(consts...)
		if err != nil {
			s.t.Fatalf("parallel Run(%s): %v", text, err)
		}
		s.checkAnswer("parallel", text, ans)
	case mode == 3:
		// Batch: this vector plus a couple of random ones, every answer
		// checked against its own oracle query.
		sets := [][]string{consts}
		for extra := s.c.intn(3); extra > 0; extra-- {
			more := make([]string, nh)
			for i := range more {
				more[i] = diffConsts[s.c.intn(len(diffConsts))]
			}
			sets = append(sets, more)
		}
		answers, err := p.RunBatch(sets)
		if err != nil {
			s.t.Fatalf("RunBatch(%s): %v", qt, err)
		}
		for i, ans := range answers {
			s.checkAnswer("batch", fillHoles(qt, sets[i]), ans)
		}
	case mode == 4:
		// Streamed rows re-materialized by hand. Fully bound templates
		// have no row stream (their result is the boolean Answer.True);
		// check those through Run instead.
		if len(p.Vars()) == 0 {
			ans, err := p.Run(consts...)
			if err != nil {
				s.t.Fatalf("prepared Run(%s): %v", text, err)
			}
			s.checkAnswer("prepared", text, ans)
			return
		}
		var rows [][]string
		err := p.RunSymsFunc(func(row []symtab.Sym) {
			out := make([]string, len(row))
			for i, v := range row {
				out[i] = s.db.Name(v)
			}
			rows = append(rows, out)
		}, s.internArgs(consts)...)
		if err != nil {
			s.t.Fatalf("RunSymsFunc(%s): %v", text, err)
		}
		sortRows(rows)
		wantRows, _ := s.oracleRows(text)
		if len(rows) == 0 {
			rows = nil
		}
		if !reflect.DeepEqual(rows, wantRows) {
			s.t.Fatalf("after %d mutations (%s): %s [stream]\n got %v\nwant %v", s.mutation, s.tmpl.name, text, rows, wantRows)
		}
	case mode == 5:
		// A cross-strategy one-shot: the bottom-up baselines, the
		// goal-directed net and Auto, so the fuzzer also proves the
		// cost-based optimizer can never change an answer, only a route.
		// Under a forced override the pin owns this surface too.
		strat := []Strategy{Seminaive, Magic, Auto, QSQNet}[s.c.intn(4)]
		if s.forced {
			strat = s.force
		}
		ans, err := s.db.QueryOpts(text, Options{Strategy: strat})
		if err != nil {
			s.t.Fatalf("QueryOpts(%s, %v): %v", text, strat, err)
		}
		s.checkAnswer(strat.String(), text, ans)
	case mode == 6:
		// The goal-directed prepared handle, alive since before any
		// mutation: its compiled net must survive fact churn in place.
		ans, err := s.qsq[qt].Run(consts...)
		if err != nil {
			s.t.Fatalf("qsq Run(%s): %v", text, err)
		}
		s.checkAnswer("qsq prepared", text, ans)
	default:
		// The goal-directed handle through the remaining surfaces: batch
		// and the streaming entry point (which falls back to the
		// materializing path for non-chain plans — the fallback is the
		// surface under test).
		qp := s.qsq[qt]
		if s.c.intn(2) == 0 {
			sets := [][]string{consts}
			for extra := s.c.intn(3); extra > 0; extra-- {
				more := make([]string, nh)
				for i := range more {
					more[i] = diffConsts[s.c.intn(len(diffConsts))]
				}
				sets = append(sets, more)
			}
			answers, err := qp.RunBatch(sets)
			if err != nil {
				s.t.Fatalf("qsq RunBatch(%s): %v", qt, err)
			}
			for i, ans := range answers {
				s.checkAnswer("qsq batch", fillHoles(qt, sets[i]), ans)
			}
			return
		}
		if len(qp.Vars()) == 0 {
			ans, err := qp.Run(consts...)
			if err != nil {
				s.t.Fatalf("qsq Run(%s): %v", text, err)
			}
			s.checkAnswer("qsq prepared", text, ans)
			return
		}
		var rows [][]string
		err := qp.RunSymsFunc(func(row []symtab.Sym) {
			out := make([]string, len(row))
			for i, v := range row {
				out[i] = s.db.Name(v)
			}
			rows = append(rows, out)
		}, s.internArgs(consts)...)
		if err != nil {
			s.t.Fatalf("qsq RunSymsFunc(%s): %v", text, err)
		}
		sortRows(rows)
		wantRows, _ := s.oracleRows(text)
		if len(rows) == 0 {
			rows = nil
		}
		if !reflect.DeepEqual(rows, wantRows) {
			s.t.Fatalf("after %d mutations (%s): %s [qsq stream]\n got %v\nwant %v", s.mutation, s.tmpl.name, text, rows, wantRows)
		}
	}
}

// step performs one schedule step.
func (s *diffState) step() {
	switch r := s.c.intn(10); {
	case r < 3: // 30%: single assert
		pred, args := s.randomFact()
		s.assertOne(pred, args)
	case r < 5: // 20%: single retract (often of a live fact)
		pred, args := s.randomFact()
		s.retractOne(pred, args)
	case r < 6: // 10%: batched delta
		s.applyBatch()
	default: // 40%: query + compare
		s.query()
	}
}

// runDifferential drives one full schedule from a decision source.
func runDifferential(t testing.TB, c chooser, steps int) {
	s := newDiffState(t, c)
	// Seed a few facts so early queries are not all empty.
	for i := 0; i < 4; i++ {
		pred, args := s.randomFact()
		s.assertOne(pred, args)
	}
	for i := 0; i < steps; i++ {
		s.step()
	}
	// The maintained view must agree with the oracle at the final state,
	// and Close must detach it cleanly.
	s.checkView()
	s.view.Close()
	if !s.view.Closed() || s.db.Views() != 0 {
		t.Fatalf("view not detached: closed=%v views=%d", s.view.Closed(), s.db.Views())
	}
	// Every prepared handle answers once more at the final state.
	for qt, p := range s.prepared {
		nh := countHoles(qt)
		consts := make([]string, nh)
		for i := range consts {
			consts[i] = diffConsts[s.c.intn(len(diffConsts))]
		}
		ans, err := p.Run(consts...)
		if err != nil {
			t.Fatalf("final Run(%s): %v", qt, err)
		}
		s.checkAnswer("final", fillHoles(qt, consts), ans)
	}
}

// TestDifferentialSchedules is the deterministic property suite: a seed
// sweep of the same generator the fuzzer drives, run on every plain
// `go test`, covering Assert/Retract/Apply interleavings against the
// naive reference on all program templates and all query surfaces.
func TestDifferentialSchedules(t *testing.T) {
	steps := 40
	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runDifferential(t, randChooser{rand.New(rand.NewSource(int64(seed)))}, steps)
		})
	}
}

// FuzzDifferential lets the fuzzer search the schedule space directly:
// the input bytes are the generator's decision stream. Run with
//
//	go test -run '^$' -fuzz '^FuzzDifferential$' -fuzztime 30s .
func FuzzDifferential(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte("assert-retract-query-assert-retract-query-!!"))
	for seed := 0; seed < 4; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		data := make([]byte, 96)
		r.Read(data)
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			t.Skip("schedule too long")
		}
		// Cap steps by the stream length so exhausted streams (which
		// repeat choice 0 forever) do not waste time on degenerate tails.
		steps := len(data)/2 + 4
		if steps > 64 {
			steps = 64
		}
		runDifferential(t, &byteChooser{data: data}, steps)
	})
}
