package chainlog

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"chainlog/internal/workload"
)

// The Load/Ingest benchmark family measures cold-start cost on a shared
// grid fixture: the same edge set written three ways (Datalog fact
// text, CSV, binary snapshot) so text parsing, bulk ingestion and
// mmap-open are directly comparable. Default size keeps CI smoke fast;
// LARGEGRAPH=1 switches to a ~10M-edge grid, the scale the binary
// snapshot format is for.

const loadProg = "tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n"

type loadFixture struct {
	textPath, csvPath, snapPath string
	w, h, edges                 int
	// probe queries: an EDB probe at the source corner and a recursive
	// query from the sink corner (whose reachable set is empty, so the
	// answer is correct recursion with O(1) work — the measurement stays
	// dominated by load, not traversal).
	probeQ, sinkQ string
}

var loadFix struct {
	once sync.Once
	f    *loadFixture
	err  error
}

func largeGraph() bool { return os.Getenv("LARGEGRAPH") == "1" }

func getLoadFixture(tb testing.TB) *loadFixture {
	tb.Helper()
	loadFix.once.Do(func() { loadFix.f, loadFix.err = buildLoadFixture() })
	if loadFix.err != nil {
		tb.Fatalf("building load fixture: %v", loadFix.err)
	}
	return loadFix.f
}

func buildLoadFixture() (*loadFixture, error) {
	w, h := 160, 160 // 50,880 edges
	if largeGraph() {
		w, h = 2240, 2240 // 10,030,720 edges
	}
	dir, err := os.MkdirTemp("", "chainlog-loadbench-")
	if err != nil {
		return nil, err
	}
	f := &loadFixture{
		textPath: filepath.Join(dir, "facts.dl"),
		csvPath:  filepath.Join(dir, "facts.csv"),
		snapPath: filepath.Join(dir, "facts.snap"),
		w:        w, h: h,
		probeQ: "edge(g0_0, Y)",
		sinkQ:  fmt.Sprintf("tc(g%d_%d, Y)", w-1, h-1),
	}
	// Fact text, streamed straight from the generator.
	tf, err := os.Create(f.textPath)
	if err != nil {
		return nil, err
	}
	tw := bufio.NewWriterSize(tf, 1<<20)
	for src, dst := range workload.GridStream(w, h) {
		fmt.Fprintf(tw, "edge(%s,%s).\n", src, dst)
		f.edges++
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	if err := tf.Close(); err != nil {
		return nil, err
	}
	// CSV.
	cf, err := os.Create(f.csvPath)
	if err != nil {
		return nil, err
	}
	if _, err := workload.WriteCSV(cf, workload.GridStream(w, h)); err != nil {
		return nil, err
	}
	if err := cf.Close(); err != nil {
		return nil, err
	}
	// Binary snapshot, via the ingestion path it ships with.
	db := NewDB()
	in, err := os.Open(f.csvPath)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	if _, err := db.IngestCSV(in, "edge"); err != nil {
		return nil, err
	}
	if err := db.WriteSnapshot(f.snapPath); err != nil {
		return nil, err
	}
	return f, nil
}

// loadText is the text cold-start path: read, parse, intern, insert.
func loadText(f *loadFixture) (*DB, error) {
	db := NewDB()
	if err := db.LoadProgram(loadProg); err != nil {
		return nil, err
	}
	src, err := os.Open(f.textPath)
	if err != nil {
		return nil, err
	}
	defer src.Close()
	if err := db.RestoreFactsAuto(src, 1); err != nil {
		return nil, err
	}
	return db, nil
}

// loadBinary is the mmap cold-start path.
func loadBinary(f *loadFixture) (*DB, error) {
	db, err := OpenSnapshot(f.snapPath)
	if err != nil {
		return nil, err
	}
	if err := db.LoadProgram(loadProg); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}

// firstAnswer drives the fixture's query pair and sanity-checks the
// results, returning an error on any wrong answer.
func firstAnswer(db *DB, f *loadFixture) error {
	ans, err := db.Query(f.probeQ)
	if err != nil {
		return err
	}
	if len(ans.Rows) != 2 {
		return fmt.Errorf("%s: %d rows, want 2", f.probeQ, len(ans.Rows))
	}
	ans, err = db.Query(f.sinkQ)
	if err != nil {
		return err
	}
	if len(ans.Rows) != 0 {
		return fmt.Errorf("%s: %d rows, want 0", f.sinkQ, len(ans.Rows))
	}
	return nil
}

func BenchmarkLoad(b *testing.B) {
	f := getLoadFixture(b)
	b.Run("text", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db, err := loadText(f)
			if err != nil {
				b.Fatal(err)
			}
			if err := firstAnswer(db, f); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db, err := loadBinary(f)
			if err != nil {
				b.Fatal(err)
			}
			if err := firstAnswer(db, f); err != nil {
				b.Fatal(err)
			}
			db.Close()
		}
	})
}

func BenchmarkIngest(b *testing.B) {
	f := getLoadFixture(b)
	b.Run("csv", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db := NewDB()
			in, err := os.Open(f.csvPath)
			if err != nil {
				b.Fatal(err)
			}
			stats, err := db.IngestCSV(in, "edge")
			in.Close()
			if err != nil {
				b.Fatal(err)
			}
			if stats.Edges != f.edges {
				b.Fatalf("ingested %d edges, want %d", stats.Edges, f.edges)
			}
		}
	})
	b.Run("snapshot_write", func(b *testing.B) {
		db, err := loadBinary(f)
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		out := filepath.Join(b.TempDir(), "out.snap")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.WriteSnapshot(out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDumpFacts tracks the text persist path (the satellite
// optimization: constants stream into the buffer without intermediate
// Render strings).
func BenchmarkDumpFacts(b *testing.B) {
	f := getLoadFixture(b)
	db, err := loadBinary(f)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer null.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.DumpFacts(null); err != nil {
			b.Fatal(err)
		}
	}
}

// TestLargeGraphSpeedup is the acceptance gate for the binary format:
// on a ≥10M-edge graph, mmap-open to first correct answer must be at
// least 20x faster than the text parse path. Run with LARGEGRAPH=1 (CI
// job largegraph); skipped otherwise — the ratio at toy sizes is noise.
func TestLargeGraphSpeedup(t *testing.T) {
	if !largeGraph() {
		t.Skip("set LARGEGRAPH=1 to run the 10M-edge speedup gate")
	}
	f := getLoadFixture(t)
	if f.edges < 10_000_000 {
		t.Fatalf("fixture has %d edges, want >= 10M", f.edges)
	}

	start := time.Now()
	dbText, err := loadText(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := firstAnswer(dbText, f); err != nil {
		t.Fatal(err)
	}
	textTime := time.Since(start)

	start = time.Now()
	dbBin, err := loadBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := firstAnswer(dbBin, f); err != nil {
		t.Fatal(err)
	}
	binTime := time.Since(start)
	defer dbBin.Close()

	ratio := float64(textTime) / float64(binTime)
	t.Logf("text load %v, binary open %v: %.1fx (%d edges)", textTime, binTime, ratio, f.edges)
	if ratio < 20 {
		t.Errorf("binary open is only %.1fx faster than text parse, want >= 20x", ratio)
	}
}
