module chainlog

go 1.24
