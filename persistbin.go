package chainlog

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"unsafe"

	"chainlog/internal/ast"
	"chainlog/internal/edb"
	"chainlog/internal/snapshot"
	"chainlog/internal/symtab"
)

// SnapshotMagic is the 8-byte prefix identifying a binary snapshot;
// callers sniff it to pick between the text and binary restore paths.
const SnapshotMagic = snapshot.Magic

// SnapshotBinary writes the extensional database as a binary columnar
// snapshot and returns the fact epoch the content captures, both under
// one read lock — the binary sibling of SnapshotFacts with the same
// begin-callback contract. The format is versioned, checksummed and
// mmap-able; see OpenSnapshot.
func (db *DB) SnapshotBinary(w io.Writer, begin func(epoch uint64)) (uint64, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if begin != nil {
		begin(db.factEpoch)
	}
	if err := snapshot.Write(w, db.st, db.store, db.factEpoch); err != nil {
		return 0, err
	}
	return db.factEpoch, nil
}

// WriteSnapshot writes a binary snapshot to path crash-safely, with the
// same temp-file + fsync + rename discipline as SaveFacts: a crash
// leaves either the old complete file or the new complete file, never a
// torn one.
func (db *DB) WriteSnapshot(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	bw := bufio.NewWriterSize(tmp, 1<<20)
	if _, err := db.SnapshotBinary(bw, nil); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// OpenSnapshot memory-maps the binary snapshot at path and returns a DB
// serving it with zero-copy cold start: after the one sequential
// checksum pass, the symbol table and every relation's CSR adjacency
// alias the mapping directly — no parsing, no interning, no index
// building, and the page cache (not the heap) holds the data. The fact
// epoch is the one the snapshot was taken at.
//
// Rules are loaded on top with LoadProgram as usual. The first mutation
// of a mapped relation transparently thaws it into ordinary heap form;
// reads never do. Call Close when the DB is no longer in use to release
// the mapping — not before, since live queries read through it.
func OpenSnapshot(path string) (*DB, error) {
	f, err := snapshot.Open(path)
	if err != nil {
		return nil, err
	}
	st, store, err := f.Build()
	if err != nil {
		f.Close()
		return nil, err
	}
	db := newDBAt(st, store, f.Epoch)
	db.snap = f
	return db, nil
}

// newDBAt assembles a DB around an existing symtab/store pair at the
// given fact epoch.
func newDBAt(st *symtab.Table, store *edb.Store, epoch uint64) *DB {
	if epoch == 0 {
		epoch = 1
	}
	return &DB{st: st, store: store, prog: &ast.Program{}, ruleEpoch: 1, factEpoch: epoch}
}

// Close releases resources a constructor attached to the DB — today the
// snapshot mapping behind OpenSnapshot. It is a no-op for DBs built any
// other way, and idempotent. The DB must not be used afterwards.
func (db *DB) Close() error {
	if db.snap == nil {
		return nil
	}
	s := db.snap
	db.snap = nil
	return s.Close()
}

// RestoreFactsBinary replaces the extensional database with the binary
// snapshot read from r and sets the fact epoch to epoch — the binary
// sibling of RestoreFacts, used when a replica bootstraps from a
// primary's binary snapshot stream. Unlike OpenSnapshot, the decoded
// facts are re-interned into the DB's existing symbol table (prepared
// plans and rules keep their symbols) and the store is heap-owned, so
// the input buffer is not retained.
func (db *DB) RestoreFactsBinary(r io.Reader, epoch uint64) error {
	data, err := readAligned(r)
	if err != nil {
		return err
	}
	snap, err := snapshot.Parse(data)
	if err != nil {
		return err
	}
	// Remap snapshot symbols into the live table. SymName copies, so the
	// table does not pin data.
	remap := make([]symtab.Sym, snap.SymCount+1)
	for i := 1; i <= snap.SymCount; i++ {
		remap[i] = db.st.Intern(snap.SymName(symtab.Sym(i)))
	}
	store := edb.NewStore(db.st)
	for i := range snap.Rels {
		rel := &snap.Rels[i]
		if rel.Arity == 2 {
			edges := make([][2]symtab.Sym, 0, rel.Count)
			for u := 0; u <= snap.SymCount; u++ {
				for _, v := range rel.FwdNbr[rel.FwdOff[u]:rel.FwdOff[u+1]] {
					edges = append(edges, [2]symtab.Sym{remap[u], remap[v]})
				}
			}
			if _, err := store.BuildBinary(rel.Name, edges); err != nil {
				return err
			}
			continue
		}
		flat := make([]symtab.Sym, len(rel.Flat))
		for j, s := range rel.Flat {
			flat[j] = remap[s]
		}
		if _, err := store.InstallFlat(rel.Name, rel.Arity, rel.Count, flat); err != nil {
			return err
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.store = store
	db.bumpRuleEpoch()
	db.factEpoch = epoch
	return nil
}

// RestoreFactsAuto restores from r in whichever snapshot format it
// holds, sniffing the binary magic and falling back to the text fact
// parser — the restore path for callers that accept either, like WAL
// recovery and replica bootstrap.
func (db *DB) RestoreFactsAuto(r io.Reader, epoch uint64) error {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(SnapshotMagic))
	if err != nil && len(head) == 0 {
		return fmt.Errorf("chainlog: empty snapshot: %w", err)
	}
	if len(head) == len(SnapshotMagic) && string(head) == SnapshotMagic {
		return db.RestoreFactsBinary(br, epoch)
	}
	return db.RestoreFacts(br, epoch)
}

// IsSnapshotFile reports whether the file at path begins with the
// binary snapshot magic.
func IsSnapshotFile(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	var head [len(SnapshotMagic)]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return false, nil
		}
		return false, err
	}
	return string(head[:]) == SnapshotMagic, nil
}

// readAligned reads all of r into 8-byte-aligned memory, which the
// snapshot parser's zero-copy section decoding requires.
func readAligned(r io.Reader) ([]byte, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return nil, nil
	}
	words := make([]uint64, (len(raw)+7)/8)
	buf := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(raw))
	copy(buf, raw)
	return buf, nil
}
