// Command loadgen is a closed-loop load generator for chainlogd: it
// drives a target QPS of mixed query and mutation traffic at a daemon,
// measures per-request latency, and writes a JSON summary. CI's
// load-smoke job runs it for a few seconds and fails the build on any
// transport error or unexpected status; it is equally usable by hand
// for capacity runs:
//
//	loadgen -addr http://127.0.0.1:8080 -duration 10s -qps 200 \
//	        -template 'ancestor(?, Y)' -args bart,lisa,homer \
//	        -mutation-ratio 0.1 -fail-on-error
//
// Pacing is open-loop per schedule but closed-loop per worker: request k
// fires no earlier than start + k/qps, claimed by a bounded worker pool,
// so a slow server shifts latency into the measurements instead of
// spawning unbounded goroutines.
//
// Against a replicated cluster, point -addr at a replica: mutations that
// come back 403 with an X-Chainlog-Primary header are re-issued at the
// primary (counted as redirects), and -min-epoch turns on the
// read-your-writes check — each worker remembers the epoch of its last
// successful mutation, sends it as X-Chainlog-Min-Epoch on queries, and
// counts any response whose X-Chainlog-Epoch is below it as a stale
// read. Stale reads fail the run under -fail-on-error.
//
// -watch N mixes N live-view subscribers into the run: each holds a
// GET /v1/watch stream for the template (bindings cycled across
// subscribers), consumes the answer deltas the mutation traffic
// produces, and reconnects with its (from, gen) cursor whenever the
// server's long-poll window closes. Watch transport or decode failures
// fail the run under -fail-on-error.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type summary struct {
	TargetQPS       float64        `json:"target_qps"`
	DurationSeconds float64        `json:"duration_s"`
	Requests        int            `json:"requests"`
	Queries         int            `json:"queries"`
	Mutations       int            `json:"mutations"`
	OK              int            `json:"ok"`
	Status          map[string]int `json:"status"`
	TransportErrors int            `json:"transport_errors"`
	StaleReads      int            `json:"stale_reads"`
	Redirects       int            `json:"redirects"`
	AchievedQPS     float64        `json:"achieved_qps"`
	LatencyMS       latencies      `json:"latency_ms"`

	WatchSubscribers int `json:"watch_subscribers,omitempty"`
	WatchLines       int `json:"watch_lines,omitempty"`
	WatchDeltas      int `json:"watch_deltas,omitempty"`
	WatchResets      int `json:"watch_resets,omitempty"`
	WatchReconnects  int `json:"watch_reconnects,omitempty"`
	WatchErrors      int `json:"watch_errors,omitempty"`
}

type latencies struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// workerState accumulates one worker's measurements; merged at the end,
// so the hot loop takes no locks.
type workerState struct {
	lats      []time.Duration
	status    map[int]int
	transport int
	queries   int
	mutations int
	lastEpoch uint64 // epoch of this worker's last successful mutation
	stale     int
	redirects int
}

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is main behind a fresh FlagSet returning the exit code, so tests
// can drive whole load runs in-process.
func run(argv []string) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "chainlogd base URL")
	duration := fs.Duration("duration", 10*time.Second, "how long to generate load")
	qps := fs.Float64("qps", 50, "target requests per second")
	concurrency := fs.Int("concurrency", 4, "worker pool size (max in-flight requests)")
	template := fs.String("template", "", "prepared-query template, e.g. 'ancestor(?, Y)'; required")
	argsList := fs.String("args", "", "comma-separated binding values cycled across query requests; required")
	mutationRatio := fs.Float64("mutation-ratio", 0, "fraction of requests that are fact mutations (0..1)")
	mutationPred := fs.String("mutation-pred", "loadgen_edge", "predicate used by generated assert/retract deltas")
	timeoutMS := fs.Int("timeout-ms", 0, "per-request evaluation deadline passed to the server (0 = server default)")
	out := fs.String("out", "", "write the JSON summary to this file (default stdout)")
	failOnError := fs.Bool("fail-on-error", false, "exit 1 on any transport error or unexpected status")
	allow429 := fs.Bool("allow-429", false, "with -fail-on-error, tolerate 429s (deliberate saturation probes)")
	minEpoch := fs.Bool("min-epoch", false, "send X-Chainlog-Min-Epoch on queries and count stale reads (read-your-writes check)")
	watchN := fs.Int("watch", 0, "concurrent GET /v1/watch subscribers held open for the whole run (0 = none)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if *template == "" || *argsList == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -template and -args are required")
		return 2
	}
	bindings := strings.Split(*argsList, ",")
	interval := time.Duration(float64(time.Second) / *qps)
	client := &http.Client{Timeout: 30 * time.Second}

	// Pre-render the query bodies (one per binding) and the two mutation
	// bodies; the hot loop only cycles indexes.
	queryBodies := make([][]byte, len(bindings))
	for i, b := range bindings {
		body, err := json.Marshal(map[string]any{
			"template": *template, "args": []string{strings.TrimSpace(b)}, "timeout_ms": *timeoutMS,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			return 2
		}
		queryBodies[i] = body
	}
	// Mutation m asserts key m/2 when m is even and retracts that same
	// key when m is odd, so the daemon sees real fact churn (insert then
	// delete of a present fact), not epoch-free no-ops. The sequence
	// counter is global across workers; out-of-order delivery just turns
	// the odd retract into a no-op occasionally, which is fine.
	var mutSeq atomic.Int64
	mutBody := func() []byte {
		m := mutSeq.Add(1) - 1
		op := "assert"
		if m%2 == 1 {
			op = "retract"
		}
		key := (m / 2) % 16
		body, _ := json.Marshal(map[string]any{"ops": []map[string]any{{
			"op": op, "pred": *mutationPred,
			"args": []string{fmt.Sprintf("lk%d", key), fmt.Sprintf("lv%d", key)},
		}}})
		return body
	}
	// Request k is a mutation when the running count of mutations owed
	// (k·ratio) gains a whole unit at k — exact for any ratio in (0, 1],
	// spreading mutations evenly through the run.
	isMutation := func(k int) bool {
		r := *mutationRatio
		if r <= 0 {
			return false
		}
		return int(float64(k+1)*r) > int(float64(k)*r)
	}

	start := time.Now()
	deadline := start.Add(*duration)
	var cursor atomic.Int64
	states := make([]*workerState, *concurrency)
	var wg sync.WaitGroup

	// Watch subscribers run for the whole schedule on their own
	// timeout-free client (the request/response client's timeout would
	// kill a healthy stream); the context deadline reels them in.
	watchStates := make([]*watchState, *watchN)
	if *watchN > 0 {
		wctx, wcancel := context.WithDeadline(context.Background(), deadline)
		defer wcancel()
		streamClient := &http.Client{}
		for i := range watchStates {
			ws := &watchState{}
			watchStates[i] = ws
			binding := strings.TrimSpace(bindings[i%len(bindings)])
			wg.Add(1)
			go func() {
				defer wg.Done()
				watchLoop(wctx, streamClient, *addr, *template, binding, ws)
			}()
		}
	}
	for w := 0; w < *concurrency; w++ {
		st := &workerState{status: make(map[int]int)}
		states[w] = st
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(cursor.Add(1)) - 1
				due := start.Add(time.Duration(k) * interval)
				if due.After(deadline) {
					return
				}
				if d := time.Until(due); d > 0 {
					time.Sleep(d)
				}
				var url string
				var body []byte
				mutation := isMutation(k)
				if mutation {
					st.mutations++
					url = *addr + "/v1/delta"
					body = mutBody()
				} else {
					st.queries++
					url = *addr + "/v1/query"
					body = queryBodies[k%len(queryBodies)]
				}
				req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
				if err != nil {
					st.transport++
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				var sentMin uint64
				if *minEpoch && !mutation && st.lastEpoch > 0 {
					sentMin = st.lastEpoch
					req.Header.Set("X-Chainlog-Min-Epoch", strconv.FormatUint(sentMin, 10))
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					st.transport++
					continue
				}
				// A replica refuses the write and names the primary;
				// re-issue there and measure the whole round trip.
				if mutation && resp.StatusCode == http.StatusForbidden {
					if primary := resp.Header.Get("X-Chainlog-Primary"); primary != "" {
						_, _ = io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						st.redirects++
						redo, rerr := http.NewRequest(http.MethodPost,
							strings.TrimRight(primary, "/")+"/v1/delta", bytes.NewReader(body))
						if rerr != nil {
							st.transport++
							continue
						}
						redo.Header.Set("Content-Type", "application/json")
						resp, err = client.Do(redo)
						if err != nil {
							st.transport++
							continue
						}
					}
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				st.lats = append(st.lats, time.Since(t0))
				st.status[resp.StatusCode]++
				if *minEpoch {
					if e, perr := strconv.ParseUint(resp.Header.Get("X-Chainlog-Epoch"), 10, 64); perr == nil {
						if mutation && resp.StatusCode < 300 && e > st.lastEpoch {
							st.lastEpoch = e
						} else if !mutation && sentMin > 0 && e < sentMin {
							st.stale++
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sum := summary{
		TargetQPS:       *qps,
		DurationSeconds: elapsed.Seconds(),
		Status:          make(map[string]int),
	}
	var all []time.Duration
	for _, st := range states {
		all = append(all, st.lats...)
		sum.TransportErrors += st.transport
		sum.Queries += st.queries
		sum.Mutations += st.mutations
		sum.StaleReads += st.stale
		sum.Redirects += st.redirects
		for code, n := range st.status {
			sum.Status[fmt.Sprint(code)] += n
			if code >= 200 && code < 300 {
				sum.OK += n
			}
		}
	}
	sum.WatchSubscribers = *watchN
	for _, ws := range watchStates {
		sum.WatchLines += ws.lines
		sum.WatchDeltas += ws.deltas
		sum.WatchResets += ws.resets
		sum.WatchReconnects += ws.reconnects
		sum.WatchErrors += ws.errors
	}
	sum.Requests = len(all) + sum.TransportErrors
	sum.AchievedQPS = float64(sum.Requests) / elapsed.Seconds()
	slices.Sort(all)
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return float64(all[i]) / float64(time.Millisecond)
	}
	sum.LatencyMS = latencies{P50: pct(0.50), P90: pct(0.90), P99: pct(0.99), Max: pct(1)}

	enc, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 2
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "loadgen: wrote %s\n", *out)
	} else {
		os.Stdout.Write(enc)
	}

	if *failOnError {
		bad := sum.TransportErrors + sum.StaleReads + sum.WatchErrors
		if *watchN > 0 && sum.WatchResets < *watchN {
			// Every subscriber must at least have received its initial
			// snapshot line.
			fmt.Fprintf(os.Stderr, "loadgen: %d watch subscriber(s) never saw a reset line\n",
				*watchN-sum.WatchResets)
			return 1
		}
		for code, n := range sum.Status {
			if strings.HasPrefix(code, "2") || (*allow429 && code == "429") {
				continue
			}
			bad += n
		}
		if bad > 0 || sum.OK == 0 {
			fmt.Fprintf(os.Stderr, "loadgen: %d failed request(s) (%d stale reads), %d ok\n",
				bad, sum.StaleReads, sum.OK)
			return 1
		}
	}
	return 0
}

// watchState accumulates one watch subscriber's stream counters.
type watchState struct {
	lines, deltas, resets, reconnects, errors int
}

// watchLoop holds one /v1/watch subscription open until ctx expires,
// reconnecting with the (from, gen) cursor from the last line whenever
// the server's long-poll window closes the stream.
func watchLoop(ctx context.Context, client *http.Client, addr, template, binding string, ws *watchState) {
	var from, gen uint64
	have := false
	for ctx.Err() == nil {
		v := url.Values{"template": {template}}
		if binding != "" {
			v.Add("arg", binding)
		}
		if have {
			v.Set("from", strconv.FormatUint(from, 10))
			v.Set("gen", strconv.FormatUint(gen, 10))
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/v1/watch?"+v.Encode(), nil)
		if err != nil {
			ws.errors++
			return
		}
		resp, err := client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			ws.errors++
			time.Sleep(100 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ws.errors++
			time.Sleep(100 * time.Millisecond)
			continue
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			var ln struct {
				Reset bool   `json:"reset"`
				Epoch uint64 `json:"epoch"`
				Gen   uint64 `json:"gen"`
				Head  uint64 `json:"head"`
			}
			if json.Unmarshal(sc.Bytes(), &ln) != nil {
				ws.errors++
				continue
			}
			ws.lines++
			switch {
			case ln.Reset:
				ws.resets++
				from, gen, have = ln.Epoch, ln.Gen, true
			case ln.Head > 0:
				from, gen, have = ln.Head, ln.Gen, true
			default:
				ws.deltas++
				from = ln.Epoch
			}
		}
		resp.Body.Close()
		if ctx.Err() == nil {
			ws.reconnects++
		}
	}
}
