package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"chainlog"
	"chainlog/internal/server"
)

// bootBackend serves the family program in-process for loadgen to hit.
func bootBackend(t *testing.T) *httptest.Server {
	t.Helper()
	db := chainlog.NewDB()
	if err := db.LoadProgram(`
		ancestor(X, Y) :- parent(X, Y).
		ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
		parent(bart, homer). parent(homer, abe).
	`); err != nil {
		t.Fatal(err)
	}
	s, err := server.New(server.Config{DB: db, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestRunFlagValidation(t *testing.T) {
	if rc := run([]string{}); rc != 2 {
		t.Fatalf("missing -template/-args: rc %d, want 2", rc)
	}
	if rc := run([]string{"-bogus-flag"}); rc != 2 {
		t.Fatalf("bad flag: rc %d, want 2", rc)
	}
}

// TestRunAgainstLiveServer drives a short mixed query/mutation load at
// an in-process daemon and checks the summary: all 2xx, correct
// query/mutation split, sane latency percentiles, exit 0 under
// -fail-on-error.
func TestRunAgainstLiveServer(t *testing.T) {
	ts := bootBackend(t)
	out := filepath.Join(t.TempDir(), "summary.json")
	rc := run([]string{
		"-addr", ts.URL,
		"-duration", "1s",
		"-qps", "100",
		"-concurrency", "4",
		"-template", "ancestor(?, Y)",
		"-args", "bart,homer",
		"-mutation-ratio", "0.2",
		"-timeout-ms", "500",
		"-fail-on-error",
		"-out", out,
	})
	if rc != 0 {
		t.Fatalf("run rc %d, want 0", rc)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var sum summary
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatalf("bad summary %s: %v", data, err)
	}
	if sum.Requests == 0 || sum.OK != sum.Requests || sum.TransportErrors != 0 {
		t.Fatalf("summary %+v: want all requests ok", sum)
	}
	if sum.Mutations == 0 || sum.Queries == 0 {
		t.Fatalf("summary %+v: want both queries and mutations", sum)
	}
	if sum.LatencyMS.P50 <= 0 || sum.LatencyMS.Max < sum.LatencyMS.P99 {
		t.Fatalf("latencies %+v look wrong", sum.LatencyMS)
	}
}

// TestRunFailOnErrorTripsOnDownServer pins the CI contract: transport
// errors make -fail-on-error exit nonzero.
func TestRunFailOnErrorTripsOnDownServer(t *testing.T) {
	ts := bootBackend(t)
	ts.Close() // nothing listening anymore
	rc := run([]string{
		"-addr", ts.URL,
		"-duration", "200ms",
		"-qps", "20",
		"-concurrency", "2",
		"-template", "ancestor(?, Y)",
		"-args", "bart",
		"-fail-on-error",
	})
	if rc != 1 {
		t.Fatalf("run against a dead server: rc %d, want 1", rc)
	}
}

// TestMutationScheduleExactRatio pins the mutation schedule to the
// requested proportion for awkward ratios (0.6 used to yield 100%).
func TestMutationScheduleExactRatio(t *testing.T) {
	for _, ratio := range []float64{0.1, 0.3, 0.5, 0.6, 0.9} {
		isMutation := func(k int) bool {
			return int(float64(k+1)*ratio) > int(float64(k)*ratio)
		}
		const n = 1000
		count := 0
		for k := 0; k < n; k++ {
			if isMutation(k) {
				count++
			}
		}
		if want := int(float64(n) * ratio); count < want-1 || count > want+1 {
			t.Errorf("ratio %.1f: %d/%d mutations, want ~%d", ratio, count, n, want)
		}
	}
}

// TestRunWithWatchers mixes watch subscribers into the run: mutation
// churn on the watched predicate must reach them as answer deltas, with
// no stream errors, and the summary reports the subscription counters.
func TestRunWithWatchers(t *testing.T) {
	ts := bootBackend(t)
	out := filepath.Join(t.TempDir(), "summary.json")
	rc := run([]string{
		"-addr", ts.URL,
		"-duration", "1s",
		"-qps", "100",
		"-concurrency", "4",
		"-template", "ancestor(?, Y)",
		"-args", "lk0",
		"-mutation-ratio", "0.5",
		"-mutation-pred", "parent",
		"-watch", "2",
		"-fail-on-error",
		"-out", out,
	})
	if rc != 0 {
		t.Fatalf("run rc %d, want 0", rc)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var sum summary
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatalf("bad summary %s: %v", data, err)
	}
	if sum.WatchSubscribers != 2 || sum.WatchResets < 2 {
		t.Fatalf("summary %+v: want 2 subscribers, each with an initial reset", sum)
	}
	if sum.WatchDeltas == 0 {
		t.Fatalf("summary %+v: watchers saw no answer deltas under churn on the watched cone", sum)
	}
	if sum.WatchErrors != 0 {
		t.Fatalf("summary %+v: watch stream errors", sum)
	}
}
