package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestPickBaselineNumeric(t *testing.T) {
	dir := t.TempDir()
	// BENCH_10 must beat BENCH_9 (lexicographically "BENCH_9.json" >
	// "BENCH_10.json", which is exactly the glob-order bug the numeric
	// picker exists to fix), and non-baseline files are ignored.
	for _, name := range []string{
		"BENCH_2.json", "BENCH_9.json", "BENCH_10.json",
		"BENCH_x.json", "BENCH_3.json.bak", "notes.md",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(dir, "BENCH_99.json"), 0o755); err != nil {
		t.Fatal(err) // a directory with a matching name must not win
	}
	got, err := pickBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_10.json"); got != want {
		t.Fatalf("pickBaseline = %q, want %q", got, want)
	}
}

func TestPickBaselineEmpty(t *testing.T) {
	if _, err := pickBaseline(t.TempDir()); err == nil {
		t.Fatal("want an error when no baseline exists")
	}
}

func TestPickBaselineSingle(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "BENCH_4.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := pickBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_4.json"); got != want {
		t.Fatalf("pickBaseline = %q, want %q", got, want)
	}
}
