// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so the repository's
// performance trajectory (BENCH_*.json files) can be diffed and plotted
// across PRs. scripts/bench.sh wires it up.
//
// Every benchmark line becomes one record with the benchmark name (the
// -cpus suffix stripped), the iteration count, and every reported
// metric — ns/op, B/op, allocs/op and custom b.ReportMetric units such
// as tuples/op or graphnodes. Runs made with `go test -count=N` emit N
// records per benchmark; consumers average them by name.
//
// Compare mode is the CI benchmark-regression gate:
//
//	benchjson -compare BENCH_3.json fresh.json -metric ns/op -threshold 0.25 -pattern 'Fig7|Table1'
//
// It averages each file's records by benchmark name, diffs the selected
// metric for every benchmark present in both files (filtered by
// -pattern), prints a delta table, and exits nonzero when any benchmark
// regressed by more than -threshold (a fraction: 0.25 = +25%).
// -threshold 0 demands the metric not grow at all — useful for
// deterministic metrics such as allocs/op.
//
// -baseline-dir DIR replaces -compare FILE with an automatic pick: the
// BENCH_<n>.json in DIR with the numerically largest <n>. Numeric, not
// lexicographic — BENCH_10 beats BENCH_9 — so the CI gate keeps tracking
// the newest checked-in baseline past single digits.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the top-level JSON document.
type Report struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	compare := flag.String("compare", "", "baseline JSON file: compare mode diffs it against the second positional file (or -new)")
	baselineDir := flag.String("baseline-dir", "", "compare mode with an automatic baseline: the numerically newest BENCH_<n>.json in this directory")
	newFile := flag.String("new", "", "fresh JSON file for compare mode (alternative to the positional argument)")
	metric := flag.String("metric", "ns/op", "metric to gate on in compare mode")
	threshold := flag.Float64("threshold", 0.25, "maximum allowed fractional regression (0.25 = +25%)")
	pattern := flag.String("pattern", "", "regexp restricting compared benchmark names (default: all)")
	flag.Parse()

	base := *compare
	if *baselineDir != "" {
		if base != "" {
			fmt.Fprintln(os.Stderr, "benchjson: -compare and -baseline-dir are mutually exclusive")
			os.Exit(2)
		}
		var err error
		if base, err = pickBaseline(*baselineDir); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		fmt.Printf("baseline: %s\n", base)
	}
	if base != "" {
		fresh := *newFile
		if fresh == "" {
			if flag.NArg() != 1 {
				fmt.Fprintln(os.Stderr, "benchjson: compare mode needs the fresh report as -new or a positional argument")
				os.Exit(2)
			}
			fresh = flag.Arg(0)
		}
		os.Exit(runCompare(base, fresh, *metric, *threshold, *pattern))
	}
	runEmit()
}

// benchBaselineRe matches checked-in baseline names, capturing the PR
// number.
var benchBaselineRe = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// pickBaseline returns the BENCH_<n>.json in dir with the largest
// numeric n. A lexicographic pick (shell glob order) would gate against
// BENCH_9 forever once BENCH_10 lands; this picker is what the CI
// regression gate uses.
func pickBaseline(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		m := benchBaselineRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil || n <= bestN {
			continue
		}
		best, bestN = e.Name(), n
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_<n>.json baseline in %s", dir)
	}
	return filepath.Join(dir, best), nil
}

// runEmit is the original mode: bench output on stdin, JSON on stdout.
func runEmit() {
	rep := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: []Benchmark{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if b, ok := parseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// runCompare diffs the metric between two reports and returns the
// process exit code: 0 clean, 1 regression past the threshold, 2 usage
// or input error.
func runCompare(basePath, freshPath, metric string, threshold float64, pattern string) int {
	var re *regexp.Regexp
	if pattern != "" {
		var err error
		if re, err = regexp.Compile(pattern); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: bad -pattern:", err)
			return 2
		}
	}
	base, err := loadAverages(basePath, metric)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	fresh, err := loadAverages(freshPath, metric)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}

	names := make([]string, 0, len(base))
	for name := range base {
		if _, ok := fresh[name]; !ok {
			continue
		}
		if re != nil && !re.MatchString(name) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmarks in common between", basePath, "and", freshPath)
		return 2
	}

	regressions := 0
	fmt.Printf("comparing %q (threshold +%.0f%%): %s -> %s\n", metric, threshold*100, basePath, freshPath)
	for _, name := range names {
		was, now := base[name], fresh[name]
		var delta float64
		if was != 0 {
			delta = now/was - 1
		} else if now != 0 {
			delta = 1 // metric appeared from zero: treat as full regression
		}
		status := "ok"
		if delta > threshold {
			status = "REGRESSION"
			regressions++
		}
		fmt.Printf("  %-60s %14.1f -> %14.1f  %+7.1f%%  %s\n", name, was, now, delta*100, status)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%% on %s\n", regressions, threshold*100, metric)
		return 1
	}
	fmt.Printf("no regressions beyond +%.0f%% across %d benchmarks\n", threshold*100, len(names))
	return 0
}

// loadAverages reads a report and averages the metric per benchmark
// name, folding the duplicate records a -count run emits.
func loadAverages(path, metric string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	sums := make(map[string]float64)
	counts := make(map[string]int)
	for _, b := range rep.Benchmarks {
		if v, ok := b.Metrics[metric]; ok {
			sums[b.Name] += v
			counts[b.Name]++
		}
	}
	out := make(map[string]float64, len(sums))
	for name, sum := range sums {
		out[name] = sum / float64(counts[name])
	}
	return out, nil
}

// parseLine recognizes benchmark result lines:
//
//	BenchmarkName/sub-8   1028   322912 ns/op   768.0 tuples/op   211409 B/op   717 allocs/op
func parseLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	// Name, iterations, then value/unit pairs.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       stripCPUSuffix(fields[0]),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// stripCPUSuffix removes the trailing -<gomaxprocs> the testing package
// appends to benchmark names, keeping names stable across machines.
func stripCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
