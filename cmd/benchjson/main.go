// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so the repository's
// performance trajectory (BENCH_*.json files) can be diffed and plotted
// across PRs. scripts/bench.sh wires it up.
//
// Every benchmark line becomes one record with the benchmark name (the
// -cpus suffix stripped), the iteration count, and every reported
// metric — ns/op, B/op, allocs/op and custom b.ReportMetric units such
// as tuples/op or graphnodes.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the top-level JSON document.
type Report struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: []Benchmark{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if b, ok := parseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine recognizes benchmark result lines:
//
//	BenchmarkName/sub-8   1028   322912 ns/op   768.0 tuples/op   211409 B/op   717 allocs/op
func parseLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	// Name, iterations, then value/unit pairs.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{
		Name:       stripCPUSuffix(fields[0]),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// stripCPUSuffix removes the trailing -<gomaxprocs> the testing package
// appends to benchmark names, keeping names stable across machines.
func stripCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
