// Command chainlog evaluates Datalog queries from the command line.
//
// Usage:
//
//	chainlog -program prog.dl [-facts facts.dl] -query 'sg(john, Y)' \
//	         [-strategy auto|chain|naive|seminaive|magic|counting|hn|hunt] \
//	         [-stats] [-explain] [-max-iterations N]
//
// The program file holds rules and (optionally) facts in the syntax
//
//	sg(X, Y) :- flat(X, Y).
//	sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
//	up(john, mary).
//
// With -explain the tool prints the Section 2 classification, the Lemma 1
// equation system and — for queries routed through the Section 4
// transformation — the generated binary-chain program, instead of
// evaluating the query.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"chainlog"
)

func main() {
	var err error
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "ingest":
			err = runIngest(os.Args[2:])
		case "gen":
			err = runGen(os.Args[2:])
		default:
			err = run()
		}
	} else {
		err = run()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "chainlog:", err)
		os.Exit(1)
	}
}

func run() error {
	programPath := flag.String("program", "", "path to the Datalog program (rules and facts)")
	factsPath := flag.String("facts", "", "optional path to an additional facts file")
	queryText := flag.String("query", "", "query literal, e.g. 'sg(john, Y)'")
	strategyName := flag.String("strategy", "auto", "evaluation strategy: auto (cost-based optimizer), chain, naive, seminaive, magic, counting, reverse-counting, hn, hunt")
	stats := flag.Bool("stats", false, "print evaluation statistics")
	explain := flag.Bool("explain", false, "print classification and compiled form instead of evaluating")
	maxIter := flag.Int("max-iterations", 0, "cap on main-loop iterations (0 = bounded only by the cyclic guard)")
	noGuard := flag.Bool("no-cyclic-guard", false, "disable the m*n cyclic termination bound")
	trace := flag.Bool("trace", false, "log the chain engine's traversal to stderr")
	interactive := flag.Bool("interactive", false, "read queries from stdin, one per line")
	flag.Parse()

	if *programPath == "" {
		return fmt.Errorf("-program is required")
	}
	// A binary -facts file becomes the DB via the zero-copy mmap path;
	// rules load on top. Text facts keep the original parse path.
	var db *chainlog.DB
	binFacts := false
	if *factsPath != "" {
		ok, err := chainlog.IsSnapshotFile(*factsPath)
		if err != nil {
			return err
		}
		binFacts = ok
	}
	if binFacts {
		var err error
		db, err = chainlog.OpenSnapshot(*factsPath)
		if err != nil {
			return fmt.Errorf("opening snapshot %s: %w", *factsPath, err)
		}
		defer db.Close()
	} else {
		db = chainlog.NewDB()
	}
	src, err := os.ReadFile(*programPath)
	if err != nil {
		return err
	}
	if err := db.LoadProgram(string(src)); err != nil {
		return fmt.Errorf("loading %s: %w", *programPath, err)
	}
	if *factsPath != "" && !binFacts {
		facts, err := os.ReadFile(*factsPath)
		if err != nil {
			return err
		}
		if err := db.LoadProgram(string(facts)); err != nil {
			return fmt.Errorf("loading %s: %w", *factsPath, err)
		}
	}

	if *explain {
		return printExplanation(db, *queryText)
	}
	strategy, err := chainlog.ParseStrategy(*strategyName)
	if err != nil {
		return err
	}
	opts := chainlog.Options{
		Strategy:           strategy,
		MaxIterations:      *maxIter,
		DisableCyclicGuard: *noGuard,
	}
	if *trace {
		opts.Trace = os.Stderr
		opts.TraceMaxNodes = 200
	}

	if *interactive {
		return repl(db, opts, *stats)
	}
	if *queryText == "" {
		return fmt.Errorf("-query is required")
	}
	return evalAndPrint(db, *queryText, opts, *stats)
}

func evalAndPrint(db *chainlog.DB, queryText string, opts chainlog.Options, stats bool) error {
	ans, err := db.QueryOpts(queryText, opts)
	if err != nil {
		return err
	}
	if len(ans.Vars) == 0 {
		fmt.Println(ans.True)
	} else {
		fmt.Println(strings.Join(ans.Vars, "\t"))
		for _, row := range ans.Rows {
			fmt.Println(strings.Join(row, "\t"))
		}
	}
	if stats {
		s := ans.Stats
		pc := db.PlanCacheStats()
		fmt.Fprintf(os.Stderr, "strategy=%v iterations=%d nodes=%d expansions=%d facts=%d lookups=%d firings=%d converged=%v plans=%d hit=%d miss=%d\n",
			s.Strategy, s.Iterations, s.Nodes, s.Expansions, s.FactsConsulted, s.Lookups, s.Firings, s.Converged,
			pc.Size, pc.Hits, pc.Misses)
	}
	return nil
}

// repl reads queries (or facts/rules terminated by '.') from stdin until
// EOF. Lines starting with '?' or containing no ':-' and ending in '?'
// are treated as queries; lines ending in '.' are asserted.
//
// Queries run through the DB's plan cache, so re-asking a query shape
// with different constants (sg(john, Y)? then sg(ann, Y)?) reuses the
// compiled plan instead of recompiling it; assertions bump the DB epoch
// and plans transparently recompile on next use. Run with -stats to
// watch the plans/hit/miss counters move.
func repl(db *chainlog.DB, opts chainlog.Options, stats bool) error {
	sc := bufio.NewScanner(os.Stdin)
	fmt.Fprintln(os.Stderr, "chainlog: enter queries like 'sg(john, Y)?' or assertions like 'up(a, b).'; ctrl-D to exit")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		switch {
		case strings.HasSuffix(line, "?"):
			if err := evalAndPrint(db, strings.TrimSuffix(line, "?"), opts, stats); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
		case strings.HasSuffix(line, "."):
			if err := db.LoadProgram(line); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
		default:
			if err := evalAndPrint(db, line, opts, stats); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
			}
		}
	}
	return sc.Err()
}

func printExplanation(db *chainlog.DB, queryText string) error {
	c := db.Classify()
	fmt.Printf("recursive:            %v\n", c.Recursive)
	fmt.Printf("linear:               %v\n", c.Linear)
	fmt.Printf("binary-chain:         %v\n", c.BinaryChain)
	fmt.Printf("regular:              %v\n", c.Regular)
	fmt.Printf("single-derived-body:  %v\n", c.SingleDerivedBody)
	fmt.Println()
	text, err := db.Explain(queryText)
	if err != nil {
		return err
	}
	fmt.Print(text)
	return nil
}
