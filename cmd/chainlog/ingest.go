package main

import (
	"flag"
	"fmt"
	"io"
	"iter"
	"os"
	"time"

	"chainlog"
	"chainlog/internal/workload"
)

// runIngest implements `chainlog ingest`: stream an edge file (CSV or
// JSONL) into a columnar store and write it out as a binary snapshot,
// ready for chainlog/chainlogd -facts or replica bootstrap.
func runIngest(args []string) error {
	fs := flag.NewFlagSet("chainlog ingest", flag.ContinueOnError)
	csvPath := fs.String("csv", "", "CSV edge file (src,dst per line; '-' for stdin)")
	jsonlPath := fs.String("jsonl", "", `JSONL edge file ({"src":...,"dst":...} per line; '-' for stdin)`)
	rel := fs.String("rel", "edge", "relation name to ingest into")
	out := fs.String("out", "", "output snapshot path (required)")
	quiet := fs.Bool("q", false, "suppress the summary line")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*csvPath == "") == (*jsonlPath == "") {
		return fmt.Errorf("ingest: exactly one of -csv or -jsonl is required")
	}
	if *out == "" {
		return fmt.Errorf("ingest: -out is required")
	}
	open := func(path string) (io.ReadCloser, error) {
		if path == "-" {
			return io.NopCloser(os.Stdin), nil
		}
		return os.Open(path)
	}
	db := chainlog.NewDB()
	start := time.Now()
	var stats chainlog.IngestStats
	var err error
	if *csvPath != "" {
		var r io.ReadCloser
		if r, err = open(*csvPath); err != nil {
			return err
		}
		stats, err = db.IngestCSV(r, *rel)
		r.Close()
	} else {
		var r io.ReadCloser
		if r, err = open(*jsonlPath); err != nil {
			return err
		}
		stats, err = db.IngestJSONL(r, *rel)
		r.Close()
	}
	if err != nil {
		return err
	}
	ingested := time.Since(start)
	if err := db.WriteSnapshot(*out); err != nil {
		return err
	}
	if !*quiet {
		info, _ := os.Stat(*out)
		size := int64(0)
		if info != nil {
			size = info.Size()
		}
		fmt.Fprintf(os.Stderr, "chainlog ingest: %d records -> %d %s edges in %v; snapshot %s (%d bytes, +%v)\n",
			stats.Lines, stats.Edges, *rel, ingested.Round(time.Millisecond), *out, size, time.Since(start)-ingested)
	}
	return nil
}

// runGen implements `chainlog gen`: emit a deterministic benchmark graph
// as CSV, the input format of `chainlog ingest`.
func runGen(args []string) error {
	fs := flag.NewFlagSet("chainlog gen", flag.ContinueOnError)
	kind := fs.String("kind", "grid", "graph family: grid or powerlaw")
	w := fs.Int("w", 100, "grid width")
	h := fs.Int("h", 100, "grid height")
	nodes := fs.Int("nodes", 1000, "powerlaw node count")
	edges := fs.Int("edges", 10000, "powerlaw edge count")
	seed := fs.Int64("seed", 1, "powerlaw seed")
	out := fs.String("out", "-", "output path ('-' for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var stream iter.Seq2[string, string]
	switch *kind {
	case "grid":
		stream = workload.GridStream(*w, *h)
	case "powerlaw":
		stream = workload.PowerLawStream(*nodes, *edges, *seed)
	default:
		return fmt.Errorf("gen: unknown -kind %q", *kind)
	}
	dst := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	n, err := workload.WriteCSV(dst, stream)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "chainlog gen: %d edges\n", n)
	return nil
}
