// Command benchtables regenerates the paper's evaluation tables and
// figures (see DESIGN.md for the experiment index and EXPERIMENTS.md for
// recorded paper-vs-measured results).
//
// Usage:
//
//	benchtables                 # run everything
//	benchtables -exp table1     # one experiment: table1, fig7, fig8,
//	                            # thm3, thm4, lemma1, fig1, flight,
//	                            # hunt, memo, horner
//	benchtables -sizes 64,128,256,512
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"chainlog/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1, fig7, fig8, thm3, thm4, lemma1, fig1, flight, hunt, memo, horner)")
	sizesFlag := flag.String("sizes", "64,128,256,512", "comma-separated size sweep")
	airports := flag.Int("airports", 40, "airports in the flight experiment")
	perAirport := flag.Int("flights", 6, "flights per airport in the flight experiment")
	flag.Parse()

	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(2)
	}

	w := os.Stdout
	switch *exp {
	case "all":
		err = experiments.All(w, sizes)
	case "table1":
		err = experiments.Table1(w, sizes)
	case "fig7":
		err = experiments.Fig7(w, sizes)
	case "fig8":
		err = experiments.Fig8(w)
	case "thm3":
		err = experiments.Thm3(w, sizes)
	case "thm4":
		err = experiments.Thm4(w)
	case "lemma1":
		err = experiments.Lemma1Example(w)
	case "fig1":
		err = experiments.Fig1(w)
	case "flight":
		err = experiments.Sec4Flight(w, *airports, *perAirport)
	case "hunt":
		err = experiments.AblationHunt(w)
	case "memo":
		err = experiments.AblationMemo(w, sizes)
	case "horner":
		err = experiments.AblationHorner(w)
	default:
		err = fmt.Errorf("unknown experiment %q", *exp)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("need at least two sizes, got %v", out)
	}
	return out, nil
}
