package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestRunRequiresProgram(t *testing.T) {
	if err := run(nil); err == nil || !strings.Contains(err.Error(), "-program is required") {
		t.Fatalf("want -program error, got %v", err)
	}
}

func TestRunMissingProgramFile(t *testing.T) {
	if err := run([]string{"-program", "/nonexistent/prog.dl"}); err == nil {
		t.Fatal("want error for missing program file")
	}
}

func TestRunBadProgram(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.dl")
	if err := os.WriteFile(path, []byte("this is not datalog :-"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-program", path}); err == nil || !strings.Contains(err.Error(), "loading") {
		t.Fatalf("want load error, got %v", err)
	}
}

// TestRunServeAndDrain drives the real boot/serve/drain cycle
// in-process: run() on a free port, a live query over HTTP, then
// SIGTERM to our own process (caught by run's NotifyContext) and a nil
// return — the daemon's clean-drain contract.
func TestRunServeAndDrain(t *testing.T) {
	dir := t.TempDir()
	prog := filepath.Join(dir, "prog.dl")
	if err := os.WriteFile(prog, []byte(`
		tc(X, Y) :- e(X, Y).
		tc(X, Z) :- e(X, Y), tc(Y, Z).
		e(a, b). e(b, c).
	`), 0o644); err != nil {
		t.Fatal(err)
	}

	// Reserve a free port, then hand it to the daemon.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	facts := filepath.Join(dir, "facts.dl")
	if err := os.WriteFile(facts, []byte("e(c, d).\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-program", prog, "-facts", facts, "-addr", addr, "-drain-timeout", "5s"})
	}()

	base := "http://" + addr
	healthy := false
	for i := 0; i < 100; i++ {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				healthy = true
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !healthy {
		t.Fatal("daemon never became healthy")
	}

	resp, err := http.Post(base+"/v1/query", "application/json",
		strings.NewReader(`{"template": "tc(?, Y)", "args": ["a"]}`))
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 256)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, body[:n])
	}
	// The -facts file contributed e(c, d), so tc(a, Y) = b, c, d.
	if want := `"rows":[["b"],["c"],["d"]]`; !strings.Contains(string(body[:n]), want) {
		t.Fatalf("query response %s missing %s", body[:n], want)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil (clean drain)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain within 10s of SIGTERM")
	}
}

func TestRunAddrInUse(t *testing.T) {
	dir := t.TempDir()
	prog := filepath.Join(dir, "prog.dl")
	if err := os.WriteFile(prog, []byte("e(a, b).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	err = run([]string{"-program", prog, "-addr", l.Addr().String()})
	if err == nil {
		t.Fatal("want bind error for occupied address")
	}
	if !strings.Contains(fmt.Sprint(err), "address already in use") {
		t.Logf("bind error (platform-specific): %v", err)
	}
}
