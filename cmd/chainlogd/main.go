// Command chainlogd serves a chainlog database over HTTP/JSON: a
// long-lived daemon that loads a Datalog program at startup, keeps a
// registry of compiled query plans (compile once, serve many), and
// exposes query, mutation, explain, health and metrics endpoints.
//
// Usage:
//
//	chainlogd -program prog.dl [-facts facts.dl] [-addr :8080] \
//	          [-max-inflight 64] [-default-timeout 5s] [-max-timeout 30s] \
//	          [-max-nodes 4194304] [-parallelism 0] [-drain-timeout 15s]
//
// Endpoints:
//
//	POST /v1/query    {"template": "tc(?, Y)", "args": ["a"]} — or
//	                  {"batch": [["a"],["b"]]} for batched bindings, or
//	                  {"query": "tc(a, Y)"} for one-shot literals
//	POST /v1/assert   {"facts": [{"pred": "e", "args": ["a","b"]}]}
//	POST /v1/retract  {"facts": [{"pred": "e", "args": ["a","b"]}]}
//	POST /v1/delta    {"ops": [{"op":"assert","pred":"e","args":["a","b"]},
//	                           {"op":"retract","pred":"e","args":["b","c"]}]}
//	GET  /v1/explain?query=tc(a,%20Y)
//	GET  /healthz     200 ok / 503 draining
//	GET  /metrics     Prometheus text exposition
//
// On SIGTERM or SIGINT the daemon stops accepting connections, flips
// /healthz to 503, waits up to -drain-timeout for in-flight requests,
// and exits 0 on a clean drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chainlog"
	"chainlog/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "chainlogd:", err)
		os.Exit(1)
	}
}

// run is main behind a fresh FlagSet, so tests can drive full
// boot/serve/drain cycles in-process.
func run(args []string) error {
	fs := flag.NewFlagSet("chainlogd", flag.ContinueOnError)
	programPath := fs.String("program", "", "path to the Datalog program (rules and facts); required")
	factsPath := fs.String("facts", "", "optional path to an additional facts file")
	addr := fs.String("addr", ":8080", "listen address")
	maxInFlight := fs.Int("max-inflight", 64, "bound on concurrently executing requests (excess gets 429)")
	defaultTimeout := fs.Duration("default-timeout", 5*time.Second, "evaluation deadline for requests that name none")
	maxTimeout := fs.Duration("max-timeout", 30*time.Second, "upper clamp on request-supplied timeout_ms")
	maxNodes := fs.Int("max-nodes", 4<<20, "admission cap on a query's interpretation-graph nodes (-1 = unlimited)")
	parallelism := fs.Int("parallelism", 0, "traversal worker pool per query (0 = sequential; -1 = GOMAXPROCS)")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second, "how long SIGTERM waits for in-flight requests")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *programPath == "" {
		return fmt.Errorf("-program is required")
	}
	db := chainlog.NewDB()
	src, err := os.ReadFile(*programPath)
	if err != nil {
		return err
	}
	if err := db.LoadProgram(string(src)); err != nil {
		return fmt.Errorf("loading %s: %w", *programPath, err)
	}
	if *factsPath != "" {
		facts, err := os.ReadFile(*factsPath)
		if err != nil {
			return err
		}
		if err := db.LoadProgram(string(facts)); err != nil {
			return fmt.Errorf("loading %s: %w", *factsPath, err)
		}
	}
	log.Printf("chainlogd: loaded %s (classification %+v)", *programPath, db.Classify())

	s, err := server.New(server.Config{
		DB:             db,
		MaxInFlight:    *maxInFlight,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
		MaxNodes:       *maxNodes,
		Parallelism:    *parallelism,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	return s.ListenAndServe(ctx, *addr, *drainTimeout)
}
