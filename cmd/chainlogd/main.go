// Command chainlogd serves a chainlog database over HTTP/JSON: a
// long-lived daemon that loads a Datalog program at startup, keeps a
// registry of compiled query plans (compile once, serve many), and
// exposes query, mutation, explain, health and metrics endpoints.
//
// Usage:
//
//	chainlogd -program prog.dl [-facts facts.dl|facts.snap] [-addr :8080] \
//	          [-max-inflight 64] [-default-timeout 5s] [-max-timeout 30s] \
//	          [-max-nodes 4194304] [-parallelism 0] [-drain-timeout 15s] \
//	          [-wal-dir DIR] [-fsync always|rotate] [-segment-bytes N] \
//	          [-snapshot-bytes N] [-snapshot-format text|binary] \
//	          [-role primary|replica] [-primary URL]
//
// -facts accepts either Datalog fact text or a columnar binary
// snapshot (detected by magic); a binary snapshot is memory-mapped, so
// a 100M-edge store is serving queries milliseconds after boot.
// -snapshot-format selects what the WAL's automatic snapshots and the
// replication bootstrap stream use; recovery auto-detects, so the
// setting can change between restarts.
//
// Endpoints:
//
//	POST /v1/query    {"template": "tc(?, Y)", "args": ["a"]} — or
//	                  {"batch": [["a"],["b"]]} for batched bindings, or
//	                  {"query": "tc(a, Y)"} for one-shot literals
//	POST /v1/assert   {"facts": [{"pred": "e", "args": ["a","b"]}]}
//	POST /v1/retract  {"facts": [{"pred": "e", "args": ["a","b"]}]}
//	POST /v1/delta    {"ops": [{"op":"assert","pred":"e","args":["a","b"]},
//	                           {"op":"retract","pred":"e","args":["b","c"]}]}
//	GET  /v1/explain?query=tc(a,%20Y)
//	GET  /v1/status   role, epochs, WAL and replication state (JSON)
//	GET  /v1/snapshot fact snapshot + X-Chainlog-Epoch (?format=binary
//	                  streams the columnar snapshot instead of text)
//	GET  /v1/replicate?from=E  NDJSON delta feed for replicas
//	GET  /v1/watch?template=tc(%3F,%20Y)&arg=a[&from=E&gen=G]
//	                  NDJSON live view of a prepared query: a reset line
//	                  with the full answer set, then epoch-stamped
//	                  added/removed deltas as facts mutate; heartbeats
//	                  carry the (from, gen) resume cursor. Served on any
//	                  role — replicas stream off their applied WAL tail.
//	POST /v1/promote  replica -> primary (manual failover)
//	GET  /healthz     200 ok / 503 draining
//	GET  /metrics     Prometheus text exposition
//
// With -wal-dir the daemon is durable: every applied mutation is
// appended to a segmented, CRC-framed write-ahead log before the
// response goes out, snapshots truncate the log, and boot recovers the
// fact store from the newest snapshot plus the log tail (tolerating a
// torn final record from a crash). With -role replica -primary URL the
// daemon rejects writes with 403 + an X-Chainlog-Primary redirect and
// keeps itself converged by tailing the primary's feed.
//
// On SIGTERM or SIGINT the daemon stops accepting connections, flips
// /healthz to 503, waits up to -drain-timeout for in-flight requests,
// and exits 0 on a clean drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chainlog"
	"chainlog/internal/server"
	"chainlog/internal/wal"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "chainlogd:", err)
		os.Exit(1)
	}
}

// run is main behind a fresh FlagSet, so tests can drive full
// boot/serve/drain cycles in-process.
func run(args []string) error {
	fs := flag.NewFlagSet("chainlogd", flag.ContinueOnError)
	programPath := fs.String("program", "", "path to the Datalog program (rules and facts); required")
	factsPath := fs.String("facts", "", "optional path to an additional facts file")
	addr := fs.String("addr", ":8080", "listen address")
	maxInFlight := fs.Int("max-inflight", 64, "bound on concurrently executing requests (excess gets 429)")
	defaultTimeout := fs.Duration("default-timeout", 5*time.Second, "evaluation deadline for requests that name none")
	maxTimeout := fs.Duration("max-timeout", 30*time.Second, "upper clamp on request-supplied timeout_ms")
	maxNodes := fs.Int("max-nodes", 4<<20, "admission cap on a query's interpretation-graph nodes (-1 = unlimited)")
	parallelism := fs.Int("parallelism", 0, "traversal worker pool per query (0 = sequential; -1 = GOMAXPROCS)")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second, "how long SIGTERM waits for in-flight requests")
	walDir := fs.String("wal-dir", "", "write-ahead-log directory; empty disables durability and replication")
	fsyncPolicy := fs.String("fsync", "always", "WAL fsync policy: \"always\" (per append) or \"rotate\" (segment boundaries only)")
	segmentBytes := fs.Int64("segment-bytes", 64<<20, "WAL segment rotation threshold")
	snapshotBytes := fs.Int64("snapshot-bytes", 8<<20, "WAL bytes between automatic snapshots (negative disables)")
	role := fs.String("role", "primary", "\"primary\" (accepts writes) or \"replica\" (tails -primary, read-only)")
	primaryURL := fs.String("primary", "", "primary base URL (required with -role replica)")
	snapshotFormat := fs.String("snapshot-format", "text", "format of WAL auto-snapshots: \"text\" or \"binary\"")
	watchLinger := fs.Duration("watch-linger", time.Minute, "how long a watched view outlives its last subscriber (negative closes immediately)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *programPath == "" {
		return fmt.Errorf("-program is required")
	}
	if *snapshotFormat != "text" && *snapshotFormat != "binary" {
		return fmt.Errorf("-snapshot-format must be \"text\" or \"binary\"")
	}
	// A binary -facts file (from `chainlog ingest` or a snapshot) boots
	// through the zero-copy mmap path: the daemon serves its first query
	// without parsing or index building. Text facts load as before.
	var db *chainlog.DB
	binFacts := false
	if *factsPath != "" {
		ok, err := chainlog.IsSnapshotFile(*factsPath)
		if err != nil {
			return err
		}
		binFacts = ok
	}
	if binFacts {
		var err error
		db, err = chainlog.OpenSnapshot(*factsPath)
		if err != nil {
			return fmt.Errorf("opening snapshot %s: %w", *factsPath, err)
		}
		defer db.Close()
		log.Printf("chainlogd: mapped binary snapshot %s (epoch %d)", *factsPath, db.FactEpoch())
	} else {
		db = chainlog.NewDB()
	}
	src, err := os.ReadFile(*programPath)
	if err != nil {
		return err
	}
	if err := db.LoadProgram(string(src)); err != nil {
		return fmt.Errorf("loading %s: %w", *programPath, err)
	}
	if *factsPath != "" && !binFacts {
		facts, err := os.ReadFile(*factsPath)
		if err != nil {
			return err
		}
		if err := db.LoadProgram(string(facts)); err != nil {
			return fmt.Errorf("loading %s: %w", *factsPath, err)
		}
	}
	log.Printf("chainlogd: loaded %s (classification %+v)", *programPath, db.Classify())

	var walLog *wal.Log
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsyncPolicy)
		if err != nil {
			return err
		}
		walLog, err = wal.Open(wal.Options{Dir: *walDir, SegmentBytes: *segmentBytes, Sync: policy})
		if err != nil {
			return fmt.Errorf("opening WAL %s: %w", *walDir, err)
		}
		defer walLog.Close()
		if err := recoverWAL(db, walLog); err != nil {
			return fmt.Errorf("recovering WAL %s: %w", *walDir, err)
		}
	}

	s, err := server.New(server.Config{
		DB:             db,
		MaxInFlight:    *maxInFlight,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
		MaxNodes:       *maxNodes,
		Parallelism:    *parallelism,
		WAL:            walLog,
		Role:           *role,
		PrimaryURL:     *primaryURL,
		SnapshotBytes:  *snapshotBytes,
		SnapshotFormat: *snapshotFormat,
		WatchLinger:    *watchLinger,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	return s.ListenAndServe(ctx, *addr, *drainTimeout)
}

// recoverWAL rebuilds the fact store from the WAL: restore the newest
// snapshot (replacing the boot-loaded facts — the snapshot captured the
// full store, boot facts included), then replay the log tail through
// the same idempotent ApplyAt path replicas use.
func recoverWAL(db *chainlog.DB, l *wal.Log) error {
	if path, epoch, ok := l.Snapshot(); ok {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		err = db.RestoreFactsAuto(f, epoch)
		f.Close()
		if err != nil {
			return fmt.Errorf("restoring snapshot %s: %w", path, err)
		}
		log.Printf("chainlogd: restored snapshot %s (epoch %d)", path, epoch)
	}
	replayed := 0
	err := l.ReadFrom(db.FactEpoch(), func(rec wal.Record) error {
		if _, ok := db.ApplyAt(server.DeltaOfOps(rec.Ops), rec.Epoch); ok {
			replayed++
		}
		return nil
	})
	if err != nil {
		return err
	}
	if replayed > 0 || l.LastEpoch() > 0 {
		log.Printf("chainlogd: WAL replayed %d record(s); fact epoch %d", replayed, db.FactEpoch())
	}
	return nil
}
