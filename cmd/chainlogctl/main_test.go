package main

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"chainlog"
	"chainlog/internal/server"
	"chainlog/internal/wal"
)

const program = `
	ancestor(X, Y) :- parent(X, Y).
	ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
	parent(bart, homer).
	parent(homer, abe).
`

// boot starts an in-process chainlogd-equivalent node and returns its
// base URL plus the server and DB for direct inspection.
func boot(t *testing.T, cfg server.Config) (string, *server.Server, *chainlog.DB) {
	t.Helper()
	db := chainlog.NewDB()
	if err := db.LoadProgram(program); err != nil {
		t.Fatal(err)
	}
	cfg.DB = db
	cfg.Logf = t.Logf
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL, s, db
}

func bootPrimary(t *testing.T) (string, *server.Server, *chainlog.DB) {
	t.Helper()
	l, err := wal.Open(wal.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return boot(t, server.Config{WAL: l})
}

// ctl runs one chainlogctl invocation, returning exit code and output.
func ctl(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := ctl(t); code != 2 {
		t.Errorf("no-args exit = %d, want 2", code)
	}
	if code, _, _ := ctl(t, "defenestrate"); code != 2 {
		t.Errorf("unknown-command exit = %d, want 2", code)
	}
	if code, _, _ := ctl(t, "status"); code != 1 {
		t.Errorf("status without -nodes exit = %d, want 1", code)
	}
	if code, _, _ := ctl(t, "bootstrap", "-from", "http://x"); code != 1 {
		t.Errorf("bootstrap without -wal-dir exit = %d, want 1", code)
	}
	if code, _, _ := ctl(t, "promote"); code != 1 {
		t.Errorf("promote without -node exit = %d, want 1", code)
	}
}

// assertOverHTTP mutates through the server's commit path (so the WAL
// and the replication feed see the record).
func assertOverHTTP(t *testing.T, baseURL string) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/assert", "application/json",
		strings.NewReader(`{"facts": [{"pred": "parent", "args": ["maggie", "homer"]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("assert status %d", resp.StatusCode)
	}
}

func TestStatusTable(t *testing.T) {
	purl, _, pdb := bootPrimary(t)
	assertOverHTTP(t, purl)

	rurl, rs, rdb := boot(t, server.Config{Role: server.RoleReplica, PrimaryURL: purl})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rs.StartReplication(ctx)
	deadline := time.Now().Add(5 * time.Second)
	for rdb.FactEpoch() != pdb.FactEpoch() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	code, out, errOut := ctl(t, "status", "-nodes", purl+","+rurl)
	if code != 0 {
		t.Fatalf("status exit %d, stderr: %s", code, errOut)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("status output has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "primary") || !strings.Contains(lines[2], "replica") {
		t.Fatalf("roles missing from table:\n%s", out)
	}

	// An unreachable node fails the command but still prints a row.
	code, out, _ = ctl(t, "status", "-nodes", purl+",http://127.0.0.1:1")
	if code != 1 || !strings.Contains(out, "unreachable") {
		t.Fatalf("unreachable node: exit %d, out:\n%s", code, out)
	}
}

func TestBootstrapInstallsSnapshot(t *testing.T) {
	purl, _, pdb := bootPrimary(t)
	pdb.Assert("parent", "maggie", "homer")
	want := pdb.FactEpoch()

	dir := t.TempDir()
	code, out, errOut := ctl(t, "bootstrap", "-from", purl, "-wal-dir", dir)
	if code != 0 {
		t.Fatalf("bootstrap exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "installed snapshot") {
		t.Fatalf("bootstrap output: %s", out)
	}
	// A log opened on the directory sees the snapshot at the primary's
	// epoch, and its content restores a working DB.
	l, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	path, epoch, ok := l.Snapshot()
	if !ok || epoch != want {
		t.Fatalf("installed snapshot: %q, %d, %v (want epoch %d)", path, epoch, ok, want)
	}
	db := chainlog.NewDB()
	if err := db.LoadProgram(program); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := db.RestoreFactsAuto(f, epoch); err != nil {
		t.Fatal(err)
	}
	if ans, err := db.Query("ancestor(maggie, Y)"); err != nil || len(ans.Rows) == 0 {
		t.Fatalf("restored bootstrap DB: %+v, %v", ans, err)
	}

	// Re-bootstrapping into a directory already at that epoch refuses to
	// rewind.
	if code, _, errOut := ctl(t, "bootstrap", "-from", purl, "-wal-dir", dir); code != 1 ||
		!strings.Contains(errOut, "refusing to rewind") {
		t.Fatalf("re-bootstrap: exit %d, stderr: %s", code, errOut)
	}
}

func TestPromoteFlipsRole(t *testing.T) {
	purl, _, _ := bootPrimary(t)
	rurl, rs, _ := boot(t, server.Config{Role: server.RoleReplica, PrimaryURL: purl})

	code, out, errOut := ctl(t, "promote", "-node", rurl)
	if code != 0 {
		t.Fatalf("promote exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "now primary") {
		t.Fatalf("promote output: %s", out)
	}
	if rs.Role() != server.RolePrimary {
		t.Fatalf("role after promote = %s", rs.Role())
	}
	if code, out, _ := ctl(t, "promote", "-node", rurl); code != 0 || !strings.Contains(out, "already primary") {
		t.Fatalf("second promote: exit %d, out: %s", code, out)
	}
}
