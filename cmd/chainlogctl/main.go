// Command chainlogctl operates a replicated chainlogd cluster.
//
//	chainlogctl status -nodes http://p:8080,http://r1:8081,http://r2:8082
//	    One row per node: role, fact epoch, replication lag, WAL state,
//	    drain flag. Exit 1 if any node is unreachable.
//
//	chainlogctl bootstrap -from http://primary:8080 -wal-dir /var/lib/chainlog
//	    Pull the primary's fact snapshot and install it into a local WAL
//	    directory, so a chainlogd booted on that directory starts at the
//	    snapshot's epoch and tails only the difference.
//
//	chainlogctl promote -node http://replica:8081
//	    Flip a replica into a primary (manual failover). Make sure the
//	    old primary has stopped accepting writes first.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"chainlog/internal/server"
	"chainlog/internal/wal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main behind explicit streams and an exit code, so tests drive
// whole invocations in-process.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "chainlogctl: usage: chainlogctl <status|bootstrap|promote> [flags]")
		return 2
	}
	client := &http.Client{Timeout: 30 * time.Second}
	var err error
	switch cmd := args[0]; cmd {
	case "status":
		err = runStatus(args[1:], client, stdout, stderr)
	case "bootstrap":
		err = runBootstrap(args[1:], client, stdout, stderr)
	case "promote":
		err = runPromote(args[1:], client, stdout, stderr)
	default:
		fmt.Fprintf(stderr, "chainlogctl: unknown command %q (want status, bootstrap or promote)\n", cmd)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "chainlogctl:", err)
		return 1
	}
	return 0
}

func runStatus(args []string, client *http.Client, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("chainlogctl status", flag.ContinueOnError)
	fs.SetOutput(stderr)
	nodes := fs.String("nodes", "", "comma-separated node base URLs; required")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nodes == "" {
		return fmt.Errorf("status: -nodes is required")
	}
	tw := tabwriter.NewWriter(stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tROLE\tFACT-EPOCH\tLAG\tWAL-LAST\tSNAPSHOT\tSEGMENTS\tDRAINING")
	var firstErr error
	for _, node := range strings.Split(*nodes, ",") {
		node = strings.TrimRight(strings.TrimSpace(node), "/")
		st, err := nodeStatus(client, node)
		if err != nil {
			fmt.Fprintf(tw, "%s\tunreachable\t-\t-\t-\t-\t-\t-\n", node)
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", node, err)
			}
			continue
		}
		lag := "-"
		if st.Replication != nil {
			lag = strconv.FormatUint(st.Replication.Lag, 10)
			if !st.Replication.Connected {
				lag += " (disconnected)"
			}
		}
		walLast, snap, segs := "-", "-", "-"
		if st.WAL != nil {
			walLast = strconv.FormatUint(st.WAL.LastEpoch, 10)
			snap = strconv.FormatUint(st.WAL.SnapshotEpoch, 10)
			segs = strconv.Itoa(st.WAL.Segments)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\t%s\t%s\t%v\n",
			node, st.Role, st.FactEpoch, lag, walLast, snap, segs, st.Draining)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	return firstErr
}

func nodeStatus(client *http.Client, node string) (*server.StatusResponse, error) {
	resp, err := client.Get(node + "/v1/status")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	var st server.StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func runBootstrap(args []string, client *http.Client, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("chainlogctl bootstrap", flag.ContinueOnError)
	fs.SetOutput(stderr)
	from := fs.String("from", "", "base URL of the node to snapshot (normally the primary); required")
	walDir := fs.String("wal-dir", "", "local WAL directory to install the snapshot into; required")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *from == "" || *walDir == "" {
		return fmt.Errorf("bootstrap: -from and -wal-dir are required")
	}
	// Prefer the binary columnar snapshot; an older node ignores the
	// parameter and streams text, which Content-Type distinguishes.
	resp, err := client.Get(strings.TrimRight(*from, "/") + "/v1/snapshot?format=binary")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("snapshot from %s: HTTP %d", *from, resp.StatusCode)
	}
	epoch, err := strconv.ParseUint(resp.Header.Get("X-Chainlog-Epoch"), 10, 64)
	if err != nil {
		return fmt.Errorf("snapshot from %s: malformed X-Chainlog-Epoch: %v", *from, err)
	}
	binary := strings.HasPrefix(resp.Header.Get("Content-Type"), "application/octet-stream")
	l, err := wal.Open(wal.Options{Dir: *walDir})
	if err != nil {
		return err
	}
	defer l.Close()
	if last := l.LastEpoch(); last >= epoch {
		return fmt.Errorf("bootstrap: %s is already at epoch %d (snapshot is %d); refusing to rewind", *walDir, last, epoch)
	}
	install := l.WriteSnapshot
	if binary {
		install = l.WriteSnapshotBinary
	}
	if _, err := install(func(w io.Writer) (uint64, error) {
		_, cerr := io.Copy(w, resp.Body)
		return epoch, cerr
	}); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "bootstrap: installed snapshot at epoch %d into %s\n", epoch, *walDir)
	return nil
}

func runPromote(args []string, client *http.Client, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("chainlogctl promote", flag.ContinueOnError)
	fs.SetOutput(stderr)
	node := fs.String("node", "", "base URL of the replica to promote; required")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *node == "" {
		return fmt.Errorf("promote: -node is required")
	}
	resp, err := client.Post(strings.TrimRight(*node, "/")+"/v1/promote", "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("promote %s: HTTP %d: %s", *node, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var pr server.PromoteResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return err
	}
	if pr.Promoted {
		fmt.Fprintf(stdout, "promote: %s is now primary at epoch %d\n", *node, pr.FactEpoch)
	} else {
		fmt.Fprintf(stdout, "promote: %s was already primary (epoch %d)\n", *node, pr.FactEpoch)
	}
	return nil
}
