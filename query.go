package chainlog

import (
	"context"
	"fmt"
	"io"
	"slices"
	"strings"

	"chainlog/internal/ast"
	"chainlog/internal/bottomup"
	"chainlog/internal/chaineval"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
)

// ErrMaxNodes is the sentinel wrapped by evaluation errors caused by the
// Options.MaxNodes resource bound, so serving layers can distinguish an
// admission-control rejection (the query outgrew its node budget) from a
// malformed query. Match with errors.Is.
var ErrMaxNodes = chaineval.ErrMaxNodes

// Strategy selects the evaluation method for a query.
type Strategy int

const (
	// Auto, the zero value, hands the choice to the cost-based plan
	// optimizer: per-relation statistics (cardinalities, degree
	// histograms off the CSR offset arrays) cost the answer-equivalent
	// routes — chain traversal, seminaive bottom-up, magic sets — and
	// the cheapest is compiled. The decision is recorded on the plan
	// (surfaced by Prepared.Plan and Explain) and revisited when input
	// cardinalities drift or runtime feedback contradicts the estimate.
	// Setting any named strategy instead pins it: a manual choice is
	// never second-guessed.
	Auto Strategy = iota
	// Chain is the paper's graph-traversal algorithm. Binary-chain
	// programs with a bf/fb/ff query evaluate directly over the Lemma 1
	// equations; other linear programs (n-ary predicates, or binary
	// queries binding both arguments) go through the Section 4
	// transformation first.
	Chain
	// Naive is general naive bottom-up evaluation.
	Naive
	// Seminaive is general seminaive (delta) bottom-up evaluation.
	Seminaive
	// Magic is the magic-sets rewriting evaluated seminaively.
	Magic
	// Counting is the counting method (linear p = e0 ∪ e1·p·e2 only).
	Counting
	// ReverseCounting is counting run from the answer side.
	ReverseCounting
	// HenschenNaqvi is the iterative set-at-a-time method without
	// cross-iteration memoization (linear shape only).
	HenschenNaqvi
	// Hunt is the Hunt-Szymanski-Ullman preconstruction baseline
	// (regular equations only).
	Hunt
	// QSQNet is goal-directed Query-Subquery Net evaluation (Nguyen &
	// Cao): the rule program plus the query's adornment compile into a
	// net of input/answer tables once, then each run seeds the root
	// input table and propagates subqueries tuple-set-at-a-time with
	// memoization. Handles arbitrary Datalog (nonlinear and mutual
	// recursion included) and explores only the goal-reachable portion
	// of the search space, so it wins when bound arguments prune.
	QSQNet

	// strategyCount bounds per-strategy state arrays.
	strategyCount
)

func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case Chain:
		return "chain"
	case Naive:
		return "naive"
	case Seminaive:
		return "seminaive"
	case Magic:
		return "magic"
	case Counting:
		return "counting"
	case ReverseCounting:
		return "reverse-counting"
	case HenschenNaqvi:
		return "henschen-naqvi"
	case Hunt:
		return "hunt"
	case QSQNet:
		return "qsqnet"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Strategies lists every selectable strategy, in declaration order.
func Strategies() []Strategy {
	return []Strategy{Auto, Chain, Naive, Seminaive, Magic, Counting, ReverseCounting, HenschenNaqvi, Hunt, QSQNet}
}

// ParseStrategy resolves a strategy name as used by the CLI. The empty
// name is Auto: an unset strategy means the optimizer decides.
func ParseStrategy(name string) (Strategy, error) {
	switch strings.ToLower(name) {
	case "auto", "":
		return Auto, nil
	case "chain":
		return Chain, nil
	case "naive":
		return Naive, nil
	case "seminaive":
		return Seminaive, nil
	case "magic":
		return Magic, nil
	case "counting":
		return Counting, nil
	case "reverse-counting", "revcounting":
		return ReverseCounting, nil
	case "henschen-naqvi", "hn":
		return HenschenNaqvi, nil
	case "hunt":
		return Hunt, nil
	case "qsqnet", "qsq":
		return QSQNet, nil
	}
	return Chain, fmt.Errorf("chainlog: unknown strategy %q", name)
}

// Options tunes query evaluation. The zero value is ready to use.
type Options struct {
	// Strategy selects the evaluation method. The default, Auto, lets
	// the cost-based optimizer pick among the answer-equivalent routes;
	// naming a strategy pins it, bypassing the optimizer entirely.
	Strategy Strategy
	// MaxIterations caps the chain engine's main loop (0 = uncapped).
	MaxIterations int
	// DisableCyclicGuard turns off the m·n accessible-node termination
	// bound for cyclic data (on by default for Chain, Counting and
	// HenschenNaqvi).
	DisableCyclicGuard bool
	// MaxNodes bounds the interpretation graph (0 = unlimited).
	MaxNodes int
	// Parallelism bounds the chain engine's traversal worker pool and the
	// fan-out of batch runs: large traversal frontiers are sharded across
	// up to this many workers, and RunBatch/QueryBatch evaluate distinct
	// bindings concurrently. 0 and 1 (the default) evaluate sequentially
	// on the calling goroutine, preserving the zero-allocation warm path;
	// negative values use runtime.GOMAXPROCS(0). Parallel evaluation
	// returns identical answers to sequential evaluation. Traced plans
	// (Trace != nil) always run sequentially.
	Parallelism int
	// ForceSection4 routes binary-chain bf queries through the Section 4
	// transformation as well (used by ablation A4).
	ForceSection4 bool
	// Strict disables the automatic fallback to magic sets when a query's
	// binding pattern fails the chain-program condition; the chain-check
	// error is returned instead.
	Strict bool
	// Trace, when non-nil, receives a line-per-event log of the chain
	// engine's evaluation (iterations, graph nodes, expansions, answers).
	// Plans carrying a tracer bypass the DB plan cache, and concurrent
	// runs of one traced Prepared interleave their writes.
	Trace io.Writer
	// TraceMaxNodes truncates the per-node trace output (0 = unlimited).
	TraceMaxNodes int
}

// tracer builds the engine tracer for the options, or nil.
func (db *DB) tracer(opts Options) chaineval.Tracer {
	if opts.Trace == nil {
		return nil
	}
	return &chaineval.WriterTracer{W: opts.Trace, St: db.st, MaxNodes: opts.TraceMaxNodes}
}

// engineOpts maps public Options onto the chain engine's options.
func (db *DB) engineOpts(opts Options) chaineval.Options {
	return chaineval.Options{
		MaxIterations:      opts.MaxIterations,
		DisableCyclicGuard: opts.DisableCyclicGuard,
		MaxNodes:           opts.MaxNodes,
		Parallelism:        opts.Parallelism,
		Tracer:             db.tracer(opts),
	}
}

// Stats describes the work one query performed, in the units the paper's
// analysis uses.
type Stats struct {
	Strategy Strategy
	// Iterations is the number of main-loop iterations / levels.
	Iterations int
	// Nodes is the number of (state, term) graph nodes constructed, or
	// the closest analogue the strategy has (set elements touched for
	// set-at-a-time methods, facts derived for bottom-up ones).
	Nodes int
	// Expansions counts EM(p,i) derived-transition expansions (Chain).
	Expansions int
	// FactsConsulted is the number of extensional tuples retrieved.
	// Prepared.Run reports only the run's own retrievals — store access
	// performed by plan compilation (e.g. the Hunt preconstruction) is
	// reported by Prepared.CompileStats instead, though one-shot Query
	// calls that compile on a plan-cache miss fold it in. Under
	// concurrent runs the counter deltas of overlapping queries
	// interleave; treat per-query values as approximate in that case.
	FactsConsulted int64
	// Lookups is the number of extensional index probes.
	Lookups int64
	// Firings is the number of rule firings (bottom-up strategies).
	Firings int64
	// Converged is false when an iteration cap cut evaluation short.
	Converged bool
	// AnswerCompleteAt is the first iteration after which the answer set
	// stopped growing (Chain only).
	AnswerCompleteAt int
}

// Answer is a query result: one row per binding of the query's free
// variables, in their order of appearance.
type Answer struct {
	// Vars names the query's free variables (deduplicated, in order).
	Vars []string
	// Rows holds the answer tuples as constant names, sorted.
	Rows [][]string
	// True reports, for fully bound queries, whether the fact holds.
	True  bool
	Stats Stats
}

// Query parses and evaluates a query with default options. It is a thin
// wrapper over the prepared-plan layer: the query's constants become plan
// parameters, so repeated queries of the same shape hit the plan cache
// and skip recompilation.
func (db *DB) Query(query string) (*Answer, error) {
	return db.QueryOpts(query, Options{})
}

// QueryCtx is Query under a context: evaluation polls the context
// mid-traversal (see Prepared.RunCtx), so a deadline aborts a runaway
// query instead of running it to completion.
func (db *DB) QueryCtx(ctx context.Context, query string) (*Answer, error) {
	return db.QueryOptsCtx(ctx, query, Options{})
}

// QueryOpts parses and evaluates a query with explicit options.
func (db *DB) QueryOpts(query string, opts Options) (*Answer, error) {
	return db.QueryOptsCtx(nil, query, opts)
}

// QueryOptsCtx is QueryOpts under a context; see QueryCtx.
func (db *DB) QueryOptsCtx(ctx context.Context, query string, opts Options) (*Answer, error) {
	q, err := parser.ParseQuery(query, db.st)
	if err != nil {
		return nil, err
	}
	return db.EvaluateCtx(ctx, q, opts)
}

// Evaluate runs an already parsed query through the plan cache: the
// query is split into a template (constants replaced by '?' holes) and a
// parameter vector, the template's compiled plan is fetched or built, and
// the plan runs with the parameters.
func (db *DB) Evaluate(q ast.Query, opts Options) (*Answer, error) {
	return db.EvaluateCtx(nil, q, opts)
}

// EvaluateCtx is Evaluate under a context; see QueryCtx.
func (db *DB) EvaluateCtx(ctx context.Context, q ast.Query, opts Options) (*Answer, error) {
	if q.IsBuiltin() {
		return nil, fmt.Errorf("chainlog: query must be an ordinary literal")
	}
	tmpl, args := templateize(q)
	var p *Prepared
	var built bool
	var err error
	if opts.Trace != nil {
		// Tracing plans carry a caller-specific writer; never cache them.
		p, err = db.prepareQuery(tmpl, opts)
		built = p != nil
	} else {
		p, built, err = db.cachedPrepared(tmpl, opts)
	}
	if err != nil {
		return nil, err
	}
	ans, err := p.RunSymsCtx(ctx, args...)
	if err != nil {
		return nil, err
	}
	if built {
		// One-shot queries that compiled on this call charge the
		// compilation's store access (e.g. the Hunt preconstruction
		// scan) to this answer, matching the pre-plan-cache accounting.
		facts, lookups := p.CompileStats()
		ans.Stats.FactsConsulted += facts
		ans.Stats.Lookups += lookups
	}
	// The plan reports the template's canonical variable names; restore
	// the caller's.
	ans.Vars = freeVars(q)
	return ans, nil
}

// templateize canonicalizes a concrete query into a prepared-query
// template plus its parameter vector: constants become '?' holes (their
// values the parameters) and variables are renamed by first occurrence,
// so sg(john, Y) and sg(ann, Z) share one plan.
func templateize(q ast.Query) (ast.Query, []symtab.Sym) {
	lit := ast.Literal{Pred: q.Pred, Op: q.Op, Args: make([]ast.Term, len(q.Args))}
	var args []symtab.Sym
	names := make(map[string]string)
	for i, a := range q.Args {
		switch {
		case a.IsVar():
			nm, ok := names[a.Var]
			if !ok {
				nm = fmt.Sprintf("V%d", len(names))
				names[a.Var] = nm
			}
			lit.Args[i] = ast.V(nm)
		case a.IsHole():
			lit.Args[i] = a
		default:
			lit.Args[i] = ast.Hole()
			args = append(args, a.Const)
		}
	}
	return ast.Query{Literal: lit}, args
}

// substituteArgs instantiates a template's holes with the given parameter
// values, in hole order.
func substituteArgs(tmpl ast.Query, args []symtab.Sym) ast.Query {
	lit := ast.Literal{Pred: tmpl.Pred, Op: tmpl.Op, Args: make([]ast.Term, len(tmpl.Args))}
	k := 0
	for i, a := range tmpl.Args {
		if a.IsHole() {
			lit.Args[i] = ast.C(args[k])
			k++
		} else {
			lit.Args[i] = a
		}
	}
	return ast.Query{Literal: lit}
}

// relevantProgram slices the program down to the rules for predicates
// reachable from the query predicate in the dependency graph. A database
// can hold unrelated rule sets (e.g. a non-chain view next to a chain
// program); classification and compilation consider only the reachable
// slice. The caller must hold db.mu.
func (db *DB) relevantProgram(pred string) *ast.Program {
	reach := map[string]bool{pred: true}
	stack := []string{pred}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, r := range db.prog.RulesFor(p) {
			for _, l := range r.Body {
				if !l.IsBuiltin() && !reach[l.Pred] {
					reach[l.Pred] = true
					stack = append(stack, l.Pred)
				}
			}
		}
	}
	out := &ast.Program{}
	for _, r := range db.prog.Rules {
		if reach[r.Head.Pred] {
			out.Rules = append(out.Rules, r)
		}
	}
	return out
}

// baseQuery answers a query over an extensional predicate directly.
func (db *DB) baseQuery(q ast.Query) (*Answer, error) {
	r := db.store.Relation(q.Pred)
	if r != nil && r.Arity() != q.Arity() {
		return nil, fmt.Errorf("chainlog: query arity %d does not match %s/%d", q.Arity(), q.Pred, r.Arity())
	}
	rows := bottomup.Answer(db.store, q)
	return db.rowsAnswer(rows, Stats{Iterations: 0, Converged: true}), nil
}

func chainStats(r *chaineval.Result) Stats {
	return Stats{
		Iterations:       r.Iterations,
		Nodes:            r.Nodes,
		Expansions:       r.Expansions,
		Converged:        r.Converged,
		AnswerCompleteAt: r.AnswerCompleteAt,
	}
}

func (db *DB) symsAnswer(syms []symtab.Sym, st Stats) *Answer {
	rows := make([][]string, 0, len(syms))
	for _, s := range syms {
		rows = append(rows, []string{db.st.Name(s)})
	}
	return &Answer{Rows: rows, Stats: st}
}

func (db *DB) rowsAnswer(rows [][]symtab.Sym, st Stats) *Answer {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		row := make([]string, len(r))
		for i, s := range r {
			row[i] = db.st.Name(s)
		}
		out = append(out, row)
	}
	return &Answer{Rows: out, Stats: st}
}

func (db *DB) rowsStrAnswer(rows [][]string, st Stats) *Answer {
	return &Answer{Rows: rows, Stats: st}
}

func freeVars(q ast.Query) []string {
	var out []string
	seen := map[string]bool{}
	for _, a := range q.Args {
		if a.IsVar() && !seen[a.Var] {
			seen[a.Var] = true
			out = append(out, a.Var)
		}
	}
	return out
}

// rowsWithRepeatsCollapsed projects rows onto the first occurrence of
// each free variable (rows violating repeated-variable equality were
// already dropped by the transformation decoder).
func rowsWithRepeatsCollapsed(rows [][]symtab.Sym, vars []string) [][]symtab.Sym {
	first := map[string]int{}
	var keep []int
	for i, v := range vars {
		if _, ok := first[v]; !ok {
			first[v] = i
			keep = append(keep, i)
		}
	}
	if len(keep) == len(vars) {
		return rows
	}
	out := make([][]symtab.Sym, 0, len(rows))
	for _, r := range rows {
		row := make([]symtab.Sym, 0, len(keep))
		for _, i := range keep {
			row = append(row, r[i])
		}
		out = append(out, row)
	}
	return out
}

// dedupeRows removes duplicate rows. Keys are the rows' syms packed into
// a byte string — cheap and exact, unlike formatting the row.
func dedupeRows(rows [][]symtab.Sym) [][]symtab.Sym {
	seen := make(map[string]bool, len(rows))
	var key []byte
	out := rows[:0]
	for _, r := range rows {
		key = key[:0]
		for _, s := range r {
			v := uint32(s)
			key = append(key, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		k := string(key)
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

func sortRows(rows [][]string) {
	slices.SortFunc(rows, func(a, b []string) int {
		for k := 0; k < len(a) && k < len(b); k++ {
			if c := strings.Compare(a[k], b[k]); c != 0 {
				return c
			}
		}
		return len(a) - len(b)
	})
}
