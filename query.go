package chainlog

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"chainlog/internal/analysis"
	"chainlog/internal/ast"
	"chainlog/internal/binchain"
	"chainlog/internal/bottomup"
	"chainlog/internal/chaineval"
	"chainlog/internal/counting"
	"chainlog/internal/equations"
	"chainlog/internal/hn"
	"chainlog/internal/hunt"
	"chainlog/internal/magic"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
)

// Strategy selects the evaluation method for a query.
type Strategy int

const (
	// Chain is the paper's graph-traversal algorithm (the default).
	// Binary-chain programs with a bf/fb/ff query evaluate directly over
	// the Lemma 1 equations; other linear programs (n-ary predicates, or
	// binary queries binding both arguments) go through the Section 4
	// transformation first.
	Chain Strategy = iota
	// Naive is general naive bottom-up evaluation.
	Naive
	// Seminaive is general seminaive (delta) bottom-up evaluation.
	Seminaive
	// Magic is the magic-sets rewriting evaluated seminaively.
	Magic
	// Counting is the counting method (linear p = e0 ∪ e1·p·e2 only).
	Counting
	// ReverseCounting is counting run from the answer side.
	ReverseCounting
	// HenschenNaqvi is the iterative set-at-a-time method without
	// cross-iteration memoization (linear shape only).
	HenschenNaqvi
	// Hunt is the Hunt-Szymanski-Ullman preconstruction baseline
	// (regular equations only).
	Hunt
)

func (s Strategy) String() string {
	switch s {
	case Chain:
		return "chain"
	case Naive:
		return "naive"
	case Seminaive:
		return "seminaive"
	case Magic:
		return "magic"
	case Counting:
		return "counting"
	case ReverseCounting:
		return "reverse-counting"
	case HenschenNaqvi:
		return "henschen-naqvi"
	case Hunt:
		return "hunt"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// ParseStrategy resolves a strategy name as used by the CLI.
func ParseStrategy(name string) (Strategy, error) {
	switch strings.ToLower(name) {
	case "chain", "":
		return Chain, nil
	case "naive":
		return Naive, nil
	case "seminaive":
		return Seminaive, nil
	case "magic":
		return Magic, nil
	case "counting":
		return Counting, nil
	case "reverse-counting", "revcounting":
		return ReverseCounting, nil
	case "henschen-naqvi", "hn":
		return HenschenNaqvi, nil
	case "hunt":
		return Hunt, nil
	}
	return Chain, fmt.Errorf("chainlog: unknown strategy %q", name)
}

// Options tunes query evaluation. The zero value is ready to use.
type Options struct {
	// Strategy selects the evaluation method; default Chain.
	Strategy Strategy
	// MaxIterations caps the chain engine's main loop (0 = uncapped).
	MaxIterations int
	// DisableCyclicGuard turns off the m·n accessible-node termination
	// bound for cyclic data (on by default for Chain, Counting and
	// HenschenNaqvi).
	DisableCyclicGuard bool
	// MaxNodes bounds the interpretation graph (0 = unlimited).
	MaxNodes int
	// ForceSection4 routes binary-chain bf queries through the Section 4
	// transformation as well (used by ablation A4).
	ForceSection4 bool
	// Strict disables the automatic fallback to magic sets when a query's
	// binding pattern fails the chain-program condition; the chain-check
	// error is returned instead.
	Strict bool
	// Trace, when non-nil, receives a line-per-event log of the chain
	// engine's evaluation (iterations, graph nodes, expansions, answers).
	Trace io.Writer
	// TraceMaxNodes truncates the per-node trace output (0 = unlimited).
	TraceMaxNodes int
}

// tracer builds the engine tracer for the options, or nil.
func (db *DB) tracer(opts Options) chaineval.Tracer {
	if opts.Trace == nil {
		return nil
	}
	return &chaineval.WriterTracer{W: opts.Trace, St: db.st, MaxNodes: opts.TraceMaxNodes}
}

// Stats describes the work one query performed, in the units the paper's
// analysis uses.
type Stats struct {
	Strategy Strategy
	// Iterations is the number of main-loop iterations / levels.
	Iterations int
	// Nodes is the number of (state, term) graph nodes constructed, or
	// the closest analogue the strategy has (set elements touched for
	// set-at-a-time methods, facts derived for bottom-up ones).
	Nodes int
	// Expansions counts EM(p,i) derived-transition expansions (Chain).
	Expansions int
	// FactsConsulted is the number of extensional tuples retrieved.
	FactsConsulted int64
	// Lookups is the number of extensional index probes.
	Lookups int64
	// Firings is the number of rule firings (bottom-up strategies).
	Firings int64
	// Converged is false when an iteration cap cut evaluation short.
	Converged bool
	// AnswerCompleteAt is the first iteration after which the answer set
	// stopped growing (Chain only).
	AnswerCompleteAt int
}

// Answer is a query result: one row per binding of the query's free
// variables, in their order of appearance.
type Answer struct {
	// Vars names the query's free variables (deduplicated, in order).
	Vars []string
	// Rows holds the answer tuples as constant names, sorted.
	Rows [][]string
	// True reports, for fully bound queries, whether the fact holds.
	True  bool
	Stats Stats
}

// Query parses and evaluates a query with default options.
func (db *DB) Query(query string) (*Answer, error) {
	return db.QueryOpts(query, Options{})
}

// QueryOpts parses and evaluates a query with explicit options.
func (db *DB) QueryOpts(query string, opts Options) (*Answer, error) {
	q, err := parser.ParseQuery(query, db.st)
	if err != nil {
		return nil, err
	}
	return db.Evaluate(q, opts)
}

// Evaluate runs an already parsed query.
func (db *DB) Evaluate(q ast.Query, opts Options) (*Answer, error) {
	before := db.store.Counters
	ans, err := db.dispatch(q, opts)
	if err != nil {
		return nil, err
	}
	after := db.store.Counters
	ans.Stats.FactsConsulted = after.Retrieved - before.Retrieved
	ans.Stats.Lookups = after.Lookups - before.Lookups
	ans.Stats.Strategy = opts.Strategy
	ans.Vars = freeVars(q)
	if len(ans.Vars) == 0 {
		ans.True = len(ans.Rows) > 0
		ans.Rows = nil
	}
	sortRows(ans.Rows)
	return ans, nil
}

func (db *DB) dispatch(q ast.Query, opts Options) (*Answer, error) {
	info := db.Analysis()
	// Base-predicate queries are plain index lookups.
	if !info.Derived[q.Pred] {
		return db.baseQuery(q)
	}
	switch opts.Strategy {
	case Chain:
		return db.chainQuery(q, opts)
	case Naive, Seminaive:
		return db.bottomUpQuery(q, opts)
	case Magic:
		rows, stats, err := magic.Evaluate(db.prog, q, db.store)
		if err != nil {
			return nil, err
		}
		return db.rowsAnswer(rows, Stats{
			Iterations: stats.Iterations,
			Nodes:      int(stats.Derived),
			Firings:    stats.Firings,
			Converged:  true,
		}), nil
	case Counting, ReverseCounting, HenschenNaqvi:
		return db.linearShapeQuery(q, opts)
	case Hunt:
		return db.huntQuery(q)
	}
	return nil, fmt.Errorf("chainlog: unhandled strategy %v", opts.Strategy)
}

// relevantProgram slices the program down to the rules for predicates
// reachable from the query predicate in the dependency graph. A database
// can hold unrelated rule sets (e.g. a non-chain view next to a chain
// program); classification and compilation consider only the reachable
// slice.
func (db *DB) relevantProgram(pred string) *ast.Program {
	reach := map[string]bool{pred: true}
	stack := []string{pred}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, r := range db.prog.RulesFor(p) {
			for _, l := range r.Body {
				if !l.IsBuiltin() && !reach[l.Pred] {
					reach[l.Pred] = true
					stack = append(stack, l.Pred)
				}
			}
		}
	}
	out := &ast.Program{}
	for _, r := range db.prog.Rules {
		if reach[r.Head.Pred] {
			out.Rules = append(out.Rules, r)
		}
	}
	return out
}

// chainQuery routes a Chain-strategy query: direct binary-chain
// evaluation when possible, Section 4 transformation otherwise.
func (db *DB) chainQuery(q ast.Query, opts Options) (*Answer, error) {
	sub := db.relevantProgram(q.Pred)
	adorned := q.Adornment()
	direct := analysis.Analyze(sub).BinaryChainProgram() && !opts.ForceSection4 &&
		(adorned == "bf" || adorned == "fb" || adorned == "ff")
	if direct {
		return db.directChain(q, opts)
	}
	return db.section4Chain(q, opts)
}

func (db *DB) directChain(q ast.Query, opts Options) (*Answer, error) {
	sys, err := equations.Transform(db.relevantProgram(q.Pred))
	if err != nil {
		return nil, err
	}
	eng := chaineval.New(sys, chaineval.StoreSource{Store: db.store}, chaineval.Options{
		MaxIterations:      opts.MaxIterations,
		DisableCyclicGuard: opts.DisableCyclicGuard,
		MaxNodes:           opts.MaxNodes,
		Tracer:             db.tracer(opts),
	})
	switch q.Adornment() {
	case "bf":
		res, err := eng.Query(q.Pred, q.Args[0].Const)
		if err != nil {
			return nil, err
		}
		return db.symsAnswer(res.Answers, chainStats(res)), nil
	case "fb":
		res, err := eng.QueryInverse(q.Pred, q.Args[1].Const)
		if err != nil {
			return nil, err
		}
		return db.symsAnswer(res.Answers, chainStats(res)), nil
	case "ff":
		pairs, res, err := eng.QueryAll(q.Pred, db.ActiveDomain())
		if err != nil {
			return nil, err
		}
		st := chainStats(res)
		// p(X, X) projects the diagonal.
		if q.Args[0].Var == q.Args[1].Var {
			var rows [][]string
			for _, p := range pairs {
				if p[0] == p[1] {
					rows = append(rows, []string{db.st.Name(p[0])})
				}
			}
			return db.rowsStrAnswer(rows, st), nil
		}
		rows := make([][]string, 0, len(pairs))
		for _, p := range pairs {
			rows = append(rows, []string{db.st.Name(p[0]), db.st.Name(p[1])})
		}
		return db.rowsStrAnswer(rows, st), nil
	}
	return nil, fmt.Errorf("chainlog: unsupported direct adornment %s", q.Adornment())
}

// section4Chain evaluates via the n-ary → binary-chain transformation.
// Queries whose binding pattern violates the chain-program condition (the
// class the paper's method covers) fall back to magic sets — still
// binding-directed, applicable to any linear program — unless
// opts.Strict is set.
func (db *DB) section4Chain(q ast.Query, opts Options) (*Answer, error) {
	tr, err := binchain.Transform(db.prog, q, db.store, false)
	if err != nil {
		if opts.Strict {
			return nil, err
		}
		rows, stats, merr := magic.Evaluate(db.prog, q, db.store)
		if merr != nil {
			// Last resort: the completely general bottom-up method.
			return db.bottomUpQuery(q, Options{Strategy: Seminaive})
		}
		return db.rowsAnswer(rows, Stats{
			Iterations: stats.Iterations,
			Nodes:      int(stats.Derived),
			Firings:    stats.Firings,
			Converged:  true,
		}), nil
	}
	sys, err := equations.Transform(tr.Program)
	if err != nil {
		return nil, err
	}
	eng := chaineval.New(sys, tr.Source, chaineval.Options{
		MaxIterations:      opts.MaxIterations,
		DisableCyclicGuard: opts.DisableCyclicGuard,
		MaxNodes:           opts.MaxNodes,
		Tracer:             db.tracer(opts),
	})
	res, err := eng.Query(tr.QueryPred, tr.BoundArg)
	if err != nil {
		return nil, err
	}
	rows := tr.DecodeAnswers(res.Answers)
	return db.rowsAnswer(dedupeRows(rowsWithRepeatsCollapsed(rows, tr.FreeVars)), chainStats(res)), nil
}

func (db *DB) bottomUpQuery(q ast.Query, opts Options) (*Answer, error) {
	run := bottomup.Seminaive
	if opts.Strategy == Naive {
		run = bottomup.Naive
	}
	store, stats, err := run(db.prog, db.store)
	if err != nil {
		return nil, err
	}
	rows := bottomup.Answer(store, q)
	return db.rowsAnswer(rows, Stats{
		Iterations: stats.Iterations,
		Nodes:      int(stats.Derived),
		Firings:    stats.Firings,
		Converged:  true,
	}), nil
}

// linearShapeQuery runs the counting / reverse-counting / Henschen–Naqvi
// specializations. They require a binary-chain program whose query
// equation has the shape p = e0 ∪ e1·p·e2 and a bf query.
func (db *DB) linearShapeQuery(q ast.Query, opts Options) (*Answer, error) {
	if q.Adornment() != "bf" {
		return nil, fmt.Errorf("chainlog: strategy %v supports only p(a, Y) queries", opts.Strategy)
	}
	sys, err := equations.Transform(db.relevantProgram(q.Pred))
	if err != nil {
		return nil, err
	}
	shape, ok := sys.LinearDecompose(q.Pred)
	if !ok {
		return nil, fmt.Errorf("chainlog: equation for %s is not of the shape e0 U e1.%s.e2", q.Pred, q.Pred)
	}
	src := chaineval.StoreSource{Store: db.store}
	maxLevels := opts.MaxIterations
	a := q.Args[0].Const
	var answers []symtab.Sym
	var st Stats
	switch opts.Strategy {
	case Counting:
		res, cs := counting.Evaluate(shape, src, a, maxLevels)
		answers = res
		st = Stats{Iterations: cs.Levels, Nodes: cs.UpSize + cs.FlatSize + cs.DownSize, Converged: true}
	case ReverseCounting:
		res, cs := counting.EvaluateReverse(shape, src, a, maxLevels)
		answers = res
		st = Stats{Iterations: cs.Levels, Nodes: cs.UpSize + cs.FlatSize + cs.DownSize, Converged: true}
	case HenschenNaqvi:
		res, hs := hn.Evaluate(shape, src, a, maxLevels)
		answers = res
		st = Stats{Iterations: hs.Iterations, Nodes: hs.TermsTouched, Converged: true}
	}
	return db.symsAnswer(answers, st), nil
}

func (db *DB) huntQuery(q ast.Query) (*Answer, error) {
	if q.Adornment() != "bf" {
		return nil, fmt.Errorf("chainlog: hunt strategy supports only p(a, Y) queries")
	}
	sys, err := equations.Transform(db.relevantProgram(q.Pred))
	if err != nil {
		return nil, err
	}
	if !sys.IsRegularFor(q.Pred) {
		return nil, fmt.Errorf("chainlog: hunt strategy requires a regular equation for %s", q.Pred)
	}
	eq, _ := sys.EquationFor(q.Pred)
	g := hunt.Build(eq, db.store)
	answers, visited := g.Query(q.Args[0].Const)
	return db.symsAnswer(answers, Stats{
		Iterations: 1,
		Nodes:      visited,
		Converged:  true,
	}), nil
}

// baseQuery answers a query over an extensional predicate directly.
func (db *DB) baseQuery(q ast.Query) (*Answer, error) {
	r := db.store.Relation(q.Pred)
	if r != nil && r.Arity() != q.Arity() {
		return nil, fmt.Errorf("chainlog: query arity %d does not match %s/%d", q.Arity(), q.Pred, r.Arity())
	}
	rows := bottomup.Answer(db.store, q)
	return db.rowsAnswer(rows, Stats{Iterations: 0, Converged: true}), nil
}

func chainStats(r *chaineval.Result) Stats {
	return Stats{
		Iterations:       r.Iterations,
		Nodes:            r.Nodes,
		Expansions:       r.Expansions,
		Converged:        r.Converged,
		AnswerCompleteAt: r.AnswerCompleteAt,
	}
}

func (db *DB) symsAnswer(syms []symtab.Sym, st Stats) *Answer {
	rows := make([][]string, 0, len(syms))
	for _, s := range syms {
		rows = append(rows, []string{db.st.Name(s)})
	}
	return &Answer{Rows: rows, Stats: st}
}

func (db *DB) rowsAnswer(rows [][]symtab.Sym, st Stats) *Answer {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		row := make([]string, len(r))
		for i, s := range r {
			row[i] = db.st.Name(s)
		}
		out = append(out, row)
	}
	return &Answer{Rows: out, Stats: st}
}

func (db *DB) rowsStrAnswer(rows [][]string, st Stats) *Answer {
	return &Answer{Rows: rows, Stats: st}
}

func freeVars(q ast.Query) []string {
	var out []string
	seen := map[string]bool{}
	for _, a := range q.Args {
		if a.IsVar() && !seen[a.Var] {
			seen[a.Var] = true
			out = append(out, a.Var)
		}
	}
	return out
}

// rowsWithRepeatsCollapsed projects rows onto the first occurrence of
// each free variable (rows violating repeated-variable equality were
// already dropped by the transformation decoder).
func rowsWithRepeatsCollapsed(rows [][]symtab.Sym, vars []string) [][]symtab.Sym {
	first := map[string]int{}
	var keep []int
	for i, v := range vars {
		if _, ok := first[v]; !ok {
			first[v] = i
			keep = append(keep, i)
		}
	}
	if len(keep) == len(vars) {
		return rows
	}
	out := make([][]symtab.Sym, 0, len(rows))
	for _, r := range rows {
		row := make([]symtab.Sym, 0, len(keep))
		for _, i := range keep {
			row = append(row, r[i])
		}
		out = append(out, row)
	}
	return out
}

func dedupeRows(rows [][]symtab.Sym) [][]symtab.Sym {
	seen := map[string]bool{}
	out := rows[:0]
	for _, r := range rows {
		key := fmt.Sprint(r)
		if !seen[key] {
			seen[key] = true
			out = append(out, r)
		}
	}
	return out
}

func sortRows(rows [][]string) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}
