package chainlog

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"chainlog/internal/adorn"
	"chainlog/internal/ast"
	"chainlog/internal/ivm"
	"chainlog/internal/magic"
	"chainlog/internal/symtab"
)

// maxChangeLog bounds the per-view delta ring: a subscriber further
// behind than this many change sets must reset from a full snapshot.
const maxChangeLog = 256

// viewGenSeq issues process-unique view generations: a cursor taken
// against one view instance must never validate against a different
// instance (or a recomputed state) that happens to share its epoch.
var viewGenSeq atomic.Uint64

// ChangeSet is one epoch's worth of answer changes to a Materialized
// view: the rows that appeared and disappeared when the mutation
// stamped with Epoch was applied. Rows use the same rendering and
// ordering domain as Answer.Rows.
type ChangeSet struct {
	Epoch   uint64     `json:"epoch"`
	Added   [][]string `json:"added,omitempty"`
	Removed [][]string `json:"removed,omitempty"`
}

// MaterializedStats reports how a view has been kept current.
type MaterializedStats struct {
	// Maintained counts mutations absorbed incrementally; Recomputed
	// counts full recomputations (the initial build, rule-epoch events,
	// and fallback from a damaged incremental state). Repairs counts
	// DRed overdelete/rederive repairs within the maintained passes.
	Maintained, Recomputed, Repairs uint64
	// Rows is the current answer cardinality; Facts the number of
	// derived facts materialized to support it.
	Rows, Facts int
}

// Materialized is a live answer set: the result of a prepared query
// kept current by differential maintenance as the database mutates.
// Obtain one with Prepared.Materialize; Close it when done.
//
// All methods are safe for concurrent use. Maintenance happens
// synchronously inside the DB's mutation critical section, so a
// Snapshot taken after a mutation returns always reflects it.
type Materialized struct {
	db   *DB
	tmpl ast.Query
	args []symtab.Sym

	mu        sync.Mutex
	q         ast.Query // concrete query (template + args)
	vq        ast.Query // maintenance query (possibly magic-rewritten)
	view      *ivm.View
	vars      []string
	boolQuery bool

	rows     map[string][]string
	sorted   [][]string // cache; nil when dirty
	epoch    uint64
	gen      uint64 // process-unique, reissued on recompute; epoch cursors are per-gen
	log      []ChangeSet
	logFloor uint64 // resume possible from epochs >= logFloor
	updates  chan struct{}
	closed   bool

	maintained, recomputed uint64
}

// Materialize builds a live answer set for the prepared query bound to
// args, registering it for differential maintenance: every subsequent
// Assert/Retract/Apply updates it inside the mutation's critical
// section. Insertions run a delta-seeded semi-naive pass and deletions
// per-answer support counting with a recompute fallback, so churn far
// from the answer costs near nothing. Close the view to stop paying
// for maintenance.
func (p *Prepared) Materialize(args ...string) (*Materialized, error) {
	if len(args) != p.nparams {
		return nil, fmt.Errorf("chainlog: prepared query %s expects %d parameters, got %d", p, p.nparams, len(args))
	}
	db := p.db
	syms := make([]symtab.Sym, len(args))
	for i, a := range args {
		syms[i] = db.st.Intern(a)
	}
	m := &Materialized{db: db, tmpl: p.tmpl, args: syms, gen: viewGenSeq.Add(1), updates: make(chan struct{})}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if err := m.buildLocked(); err != nil {
		return nil, err
	}
	// Register before releasing db.mu: mutators notify views while
	// holding it exclusively, so no delta can slip between the build
	// and the registration.
	db.viewMu.Lock()
	if db.views == nil {
		db.views = make(map[*Materialized]struct{})
	}
	db.views[m] = struct{}{}
	db.viewMu.Unlock()
	return m, nil
}

// buildLocked (re)constructs the maintenance machinery and the answer
// rows from the DB's current program and store. The caller holds db.mu
// (shared or exclusive) and m.mu if the view is already published.
func (m *Materialized) buildLocked() error {
	db := m.db
	q := substituteArgs(m.tmpl, m.args)
	derived := db.prog.DerivedSet()

	// The maintenance program: the magic rewrite of the relevant rule
	// slice when the query carries bindings (maintenance then works on
	// the query's relevant cone), the plain slice when adornment does
	// not apply, and the empty program for base-predicate queries.
	prog := &ast.Program{}
	vq := q
	rewritten := false
	if derived[q.Pred] {
		prog = db.relevantProgram(q.Pred)
		if ap, err := adorn.Adorn(prog, q); err == nil {
			if rw, err2 := magic.Rewrite(ap); err2 == nil {
				prog, vq = rw.Program, rw.Query
				rewritten = true
			}
		}
	}
	view, err := ivm.NewView(prog, vq.Pred, db.store, db.st)
	if err != nil && rewritten {
		// The rewrite produced something unbuildable; retry on the
		// plain slice before giving up.
		vq = q
		prog = db.relevantProgram(q.Pred)
		view, err = ivm.NewView(prog, vq.Pred, db.store, db.st)
	}
	if err != nil {
		return err
	}
	m.q, m.vq, m.view = q, vq, view
	m.vars = freeVars(q)
	m.boolQuery = len(m.vars) == 0
	m.rows = make(map[string][]string)
	for _, t := range view.Tuples() {
		if row, ok := m.projectTuple(t); ok {
			m.rows[rowKey(row)] = row
		}
	}
	m.sorted = nil
	m.epoch = db.factEpoch
	return nil
}

// projectTuple maps one query-predicate tuple to an answer row:
// tuples that disagree with the query's bound constants or repeated
// variables are dropped; the rest project onto the free variables'
// first occurrences. The projection is injective — a surviving tuple
// is fully determined by its row — so row-level deltas are exactly the
// projected tuple-level deltas.
func (m *Materialized) projectTuple(t []symtab.Sym) ([]string, bool) {
	if len(t) != len(m.q.Args) {
		return nil, false
	}
	first := make(map[string]int, len(m.q.Args))
	row := make([]string, 0, len(m.vars))
	for i, a := range m.q.Args {
		if !a.IsVar() {
			if t[i] != a.Const {
				return nil, false
			}
			continue
		}
		if j, ok := first[a.Var]; ok {
			if t[i] != t[j] {
				return nil, false
			}
			continue
		}
		first[a.Var] = i
		row = append(row, m.db.st.Name(t[i]))
	}
	return row, true
}

func rowKey(row []string) string { return strings.Join(row, "\x00") }

// applyBase folds one net base-fact delta into the view. Called by the
// DB with db.mu held exclusively.
func (m *Materialized) applyBase(epoch uint64, ins, del []ivm.Fact) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	if len(ins) == 0 && len(del) == 0 {
		m.epoch = epoch
		return
	}
	added, removed, err := m.view.ApplyBase(ins, del)
	if err != nil {
		// Support counting underflowed: fall back to a full recompute.
		m.recomputeLocked(epoch)
		return
	}
	m.maintained++
	m.db.viewMaintained.Add(1)
	m.commitLocked(epoch, added, removed)
}

// rebuild reconstructs the view after a rule-epoch event (rules added,
// store replaced, snapshot restored, bulk ingest). Called by the DB
// with db.mu held exclusively.
func (m *Materialized) rebuild() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.recomputeLocked(m.db.factEpoch)
}

// recomputeLocked rebuilds rows from scratch, diffs against the old
// answer, and resets the resume horizon — subscribers that were
// tailing the change log must take a fresh snapshot. Caller holds
// db.mu and m.mu.
func (m *Materialized) recomputeLocked(epoch uint64) {
	old := m.rows
	if err := m.buildLocked(); err != nil {
		// The program changed under the view in a way it cannot follow
		// (e.g. the predicate vanished); keep serving the last answer.
		return
	}
	m.recomputed++
	m.db.viewRecomputed.Add(1)
	m.epoch = epoch
	// A recompute is a discontinuity: rule-epoch events do not move the
	// fact epoch, so an epoch cursor alone cannot tell pre-recompute
	// state from post-recompute state. Issuing a fresh generation
	// invalidates every outstanding cursor and forces subscribers to
	// resynchronize from a fresh snapshot.
	m.gen = viewGenSeq.Add(1)
	m.log = nil
	m.logFloor = epoch
	var cs ChangeSet
	cs.Epoch = epoch
	for k, row := range m.rows {
		if _, ok := old[k]; !ok {
			cs.Added = append(cs.Added, row)
		}
	}
	for k, row := range old {
		if _, ok := m.rows[k]; !ok {
			cs.Removed = append(cs.Removed, row)
		}
	}
	if len(cs.Added) > 0 || len(cs.Removed) > 0 {
		m.sorted = nil
	}
	m.broadcastLocked()
}

// commitLocked applies projected tuple deltas to the row set, appends
// the change set to the ring and wakes subscribers. Caller holds m.mu.
func (m *Materialized) commitLocked(epoch uint64, addedT, removedT [][]symtab.Sym) {
	cs := ChangeSet{Epoch: epoch}
	for _, t := range removedT {
		if row, ok := m.projectTuple(t); ok {
			k := rowKey(row)
			if _, present := m.rows[k]; present {
				delete(m.rows, k)
				cs.Removed = append(cs.Removed, row)
			}
		}
	}
	for _, t := range addedT {
		if row, ok := m.projectTuple(t); ok {
			k := rowKey(row)
			if _, present := m.rows[k]; !present {
				m.rows[k] = row
				cs.Added = append(cs.Added, row)
			}
		}
	}
	m.epoch = epoch
	if len(cs.Added) == 0 && len(cs.Removed) == 0 {
		return
	}
	sortRows(cs.Added)
	sortRows(cs.Removed)
	m.sorted = nil
	m.log = append(m.log, cs)
	if len(m.log) > maxChangeLog {
		drop := len(m.log) - maxChangeLog
		m.logFloor = m.log[drop-1].Epoch
		m.log = append([]ChangeSet(nil), m.log[drop:]...)
	}
	m.broadcastLocked()
}

// broadcastLocked wakes everything blocked on Updates. Caller holds
// m.mu.
func (m *Materialized) broadcastLocked() {
	close(m.updates)
	m.updates = make(chan struct{})
}

// Snapshot returns the current answer rows, sorted exactly as
// Prepared.Run sorts them, together with the fact epoch they reflect.
// Boolean queries (no free variables) report one zero-column row when
// the fact holds and no rows otherwise.
func (m *Materialized) Snapshot() ([][]string, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sorted == nil {
		m.sorted = make([][]string, 0, len(m.rows))
		for _, row := range m.rows {
			m.sorted = append(m.sorted, row)
		}
		sortRows(m.sorted)
	}
	out := make([][]string, len(m.sorted))
	copy(out, m.sorted)
	return out, m.epoch
}

// True reports, for boolean queries, whether the fact currently holds.
func (m *Materialized) True() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.rows) > 0
}

// Vars names the query's free variables, in answer-column order.
func (m *Materialized) Vars() []string { return append([]string(nil), m.vars...) }

// Epoch returns the fact epoch of the last mutation the view absorbed.
func (m *Materialized) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// State returns the current answer rows (sorted as Snapshot sorts
// them), the fact epoch they reflect, and the view generation. The
// (epoch, gen) pair is the resume cursor for Changes.
func (m *Materialized) State() (rows [][]string, epoch, gen uint64) {
	rows, epoch = m.Snapshot()
	m.mu.Lock()
	defer m.mu.Unlock()
	return rows, epoch, m.gen
}

// Changes returns the answer deltas for every mutation applied after
// epoch from, in epoch order. The cursor is the (epoch, gen) pair from
// State or a previous ChangeSet within the same generation: ok is
// false when gen is stale (a recompute discarded the log — rule-epoch
// events do not move the fact epoch, so the epoch alone cannot detect
// one) or when from predates the retained ring. Either way the caller
// must resynchronize with State and resume from its cursor.
func (m *Materialized) Changes(from, gen uint64) ([]ChangeSet, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if gen != m.gen || from < m.logFloor {
		return nil, false
	}
	var out []ChangeSet
	for _, cs := range m.log {
		if cs.Epoch > from {
			out = append(out, cs)
		}
	}
	return out, true
}

// Updates returns a channel closed on the next answer change; callers
// re-arm by calling Updates again after each wake (the same
// closed-and-replaced broadcast the replication feed uses).
func (m *Materialized) Updates() <-chan struct{} {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.updates
}

// Stats reports the view's maintenance counters.
func (m *Materialized) Stats() MaterializedStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	vs := m.view.Stats()
	return MaterializedStats{
		Maintained: m.maintained,
		Recomputed: m.recomputed,
		Repairs:    vs.Repairs,
		Rows:       len(m.rows),
		Facts:      vs.Facts,
	}
}

// Closed reports whether Close has been called.
func (m *Materialized) Closed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Close deregisters the view: the DB stops maintaining it and anything
// blocked on Updates wakes. Snapshot keeps returning the final answer.
// Close is idempotent.
func (m *Materialized) Close() {
	m.db.viewMu.Lock()
	delete(m.db.views, m)
	m.db.viewMu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	close(m.updates)
}

// notifyViewsLocked pushes one net base-fact delta to every registered
// view; the caller holds db.mu exclusively and has already moved the
// fact epoch.
func (db *DB) notifyViewsLocked(ins, del []ivm.Fact) {
	db.viewMu.Lock()
	defer db.viewMu.Unlock()
	for m := range db.views {
		m.applyBase(db.factEpoch, ins, del)
	}
}

// recomputeViewsLocked rebuilds every registered view from scratch
// after a rule-epoch event or a bulk store change; the caller holds
// db.mu exclusively.
func (db *DB) recomputeViewsLocked() {
	db.viewMu.Lock()
	defer db.viewMu.Unlock()
	for m := range db.views {
		m.rebuild()
	}
}

// ViewStats reports the aggregate maintained-vs-recomputed counters
// across all views this DB has ever maintained (the
// chainlog_view_maintained_total / chainlog_view_recomputed_total
// metrics).
func (db *DB) ViewStats() (maintained, recomputed uint64) {
	return db.viewMaintained.Load(), db.viewRecomputed.Load()
}

// Views returns the number of currently registered materialized views.
func (db *DB) Views() int {
	db.viewMu.Lock()
	defer db.viewMu.Unlock()
	return len(db.views)
}
