package chainlog

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"chainlog/internal/analysis"
	"chainlog/internal/ast"
	"chainlog/internal/binchain"
	"chainlog/internal/bottomup"
	"chainlog/internal/chaineval"
	"chainlog/internal/counting"
	"chainlog/internal/equations"
	"chainlog/internal/hn"
	"chainlog/internal/hunt"
	"chainlog/internal/magic"
	"chainlog/internal/optimizer"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
)

// Prepared is a compiled query plan: the result of parsing, program
// slicing, Section 2 classification, the Section 4 transformation (when
// needed), the Lemma 1 equation build and automaton construction for one
// query template. Those phases run once, in Prepare; Run only executes
// the demand-driven traversal for a concrete parameter vector.
//
// A Prepared is safe for concurrent use: any number of goroutines may
// Run it simultaneously, each with its own parameters. The plan tracks
// the DB's two mutation epochs separately: rule-epoch movement
// (LoadProgram with rules, SetStore, Invalidate) makes the next Run
// recompile transparently, while fact-epoch movement (Assert, Retract,
// Apply) is absorbed in place — the plan merely refreshes its
// pre-resolved relation pointers, so a fact mutation costs the next Run
// neither parsing nor equation transformation nor automaton compilation.
type Prepared struct {
	db   *DB
	text string
	tmpl ast.Query
	opts Options
	vars []string
	// nparams is the number of '?' holes in the template.
	nparams int

	// mu guards plan/epochs for the transparent-refresh path, and the
	// compile-time counter deltas below.
	mu        sync.RWMutex
	plan      plan
	ruleEpoch uint64
	factEpoch uint64
	// compileFacts/compileLookups record the extensional access plan
	// compilation itself performed (zero for most routes; the Hunt
	// preconstruction and the Section 4 transform consult the store).
	// One-shot Query calls that compile on a cache miss fold these into
	// the answer's stats, preserving the pre-prepared-API accounting.
	compileFacts   int64
	compileLookups int64

	// Cost-based optimization state (Auto strategy), under mu: decision
	// is the optimizer's record (nil when pinned or extensional),
	// builtPlans caches one compiled plan per effective strategy so a
	// re-optimization switches routes without recompiling, reoptCount
	// counts the switches.
	decision   *optimizer.Decision
	builtPlans map[Strategy]plan
	reoptCount uint64

	// Run-path feedback state, atomic so the hot path never takes mu
	// exclusively: optimized mirrors decision != nil, effective is the
	// strategy the current plan executes as (what Stats.Strategy
	// reports), estWork/obsWork/obsSeconds hold float64 bit patterns,
	// and feedback flags an estimate contradicted by observed runs.
	optimized  atomic.Bool
	effective  atomic.Int32
	estWork    atomic.Uint64
	obsWork    atomic.Uint64
	obsSeconds atomic.Uint64
	feedback   atomic.Bool
	// obsByStrategy remembers the work EWMA per effective strategy
	// (indexed by the Strategy value) across re-optimizations: a route
	// that measured badly keeps its measured cost when the optimizer
	// re-enumerates alternatives, so feedback can not ping-pong back to
	// it. Cleared when input cardinalities drift (stale measurements).
	obsByStrategy [strategyCount]atomic.Uint64
}

// plan is one compiled evaluation route. run executes it for a parameter
// vector (one value per '?' hole, in order); the caller holds db.mu for
// reading. ctx may be nil (no deadline); chain-strategy plans poll it
// mid-traversal, bottom-up and magic routes poll it between rule
// evaluations of their fixpoint, and the linear/hunt specializations
// check it only between phases.
type plan interface {
	run(ctx context.Context, db *DB, args []symtab.Sym) (*Answer, error)
}

// ctxErr polls a possibly-nil context, returning its cause once it has
// been canceled; chaineval.ContextErr carries the shared wall-clock
// deadline handling.
func ctxErr(ctx context.Context) error {
	return chaineval.ContextErr(ctx)
}

// factRefresher is implemented by plans that can absorb a fact-only
// mutation without recompiling: refreshFacts re-synchronizes whatever
// fact-derived state the plan carries (pre-resolved relation pointers,
// nothing at all for plans that read the store per run) and reports
// success. Plans that bake facts into their compiled form (the Hunt
// preconstruction) do not implement it and rebuild instead.
type factRefresher interface {
	refreshFacts(db *DB)
}

// streamPlan documents the contract of plans that can deliver answers as
// raw interned symbols without materializing an Answer. runStream reports
// false when the plan's current mode cannot stream (the caller then falls
// back to the materializing path). RunSymsFunc dispatches on the concrete
// types so the hot path stays allocation-free; this interface exists as a
// compile-time check that they agree on the signature.
type streamPlan interface {
	runStream(db *DB, args []symtab.Sym, yield func(row []symtab.Sym)) (bool, error)
}

var (
	_ streamPlan = (*directPlan)(nil)
	_ streamPlan = (*section4Plan)(nil)
)

// rowBufPool recycles the one-column row buffers handed to RunSymsFunc
// yields: the buffer is passed to a caller-supplied function, which
// forces it to escape, so a stack array would heap-allocate per call.
var rowBufPool = sync.Pool{New: func() any { return new([1]symtab.Sym) }}

// Prepare compiles a parameterized query once, for many runs. The query
// is a literal whose bound positions may be '?' placeholders, e.g.
//
//	sg, err := db.Prepare("sg(?, Y)", chainlog.Options{})
//	ans, err := sg.Run("john")
//	ans, err = sg.Run("ann")
//
// Placeholders stand for bound constants ('b' positions of the paper's
// adornment); variables are the query's free positions. Constants may
// also be written literally, fixing them into the plan. Run accepts one
// value per placeholder, in order of appearance.
func (db *DB) Prepare(query string, opts Options) (*Prepared, error) {
	q, err := parser.ParseQueryTemplate(query, db.st)
	if err != nil {
		return nil, err
	}
	p, err := db.prepareQuery(q, opts)
	if err != nil {
		return nil, err
	}
	p.text = query
	return p, nil
}

// prepareQuery builds the Prepared for an already parsed template.
func (db *DB) prepareQuery(tmpl ast.Query, opts Options) (*Prepared, error) {
	p := &Prepared{db: db, tmpl: tmpl, opts: opts, vars: freeVars(tmpl)}
	for _, a := range tmpl.Args {
		if a.IsHole() {
			p.nparams++
		}
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	before := db.store.CountersSnapshot()
	pl, dec, eff, err := db.buildPlanAuto(tmpl, opts)
	if err != nil {
		return nil, err
	}
	after := db.store.CountersSnapshot()
	p.compileFacts = after.Retrieved - before.Retrieved
	p.compileLookups = after.Lookups - before.Lookups
	p.plan, p.ruleEpoch, p.factEpoch = pl, db.ruleEpoch, db.factEpoch
	p.installDecision(dec, eff)
	return p, nil
}

// CompileStats reports the extensional tuples and index probes consumed
// by plan compilation (e.g. the Hunt preconstruction scan), which Run
// stats deliberately exclude.
func (p *Prepared) CompileStats() (factsConsulted, lookups int64) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.compileFacts, p.compileLookups
}

// String returns the query template the plan was prepared from.
func (p *Prepared) String() string {
	if p.text != "" {
		return p.text
	}
	return p.tmpl.Render(p.db.st)
}

// Vars names the template's free variables, in order of appearance —
// the column names of every Run's answer rows.
func (p *Prepared) Vars() []string { return append([]string(nil), p.vars...) }

// NumParams returns the number of '?' placeholders Run expects.
func (p *Prepared) NumParams() int { return p.nparams }

// Run executes the prepared plan with one constant name per '?'
// placeholder. It is safe to call from many goroutines concurrently.
func (p *Prepared) Run(args ...string) (*Answer, error) {
	return p.RunCtx(nil, args...)
}

// RunCtx is Run under a context: chain-strategy plans poll the context
// during the traversal (at level boundaries and every few thousand node
// visits), so a deadline or cancellation aborts evaluation mid-query
// with an error wrapping context.Cause(ctx) — the serving layer's
// request-deadline hook. A nil ctx behaves like Run.
func (p *Prepared) RunCtx(ctx context.Context, args ...string) (*Answer, error) {
	syms := make([]symtab.Sym, len(args))
	for i, a := range args {
		syms[i] = p.db.st.Intern(a)
	}
	return p.RunSymsCtx(ctx, syms...)
}

// RunSyms is Run for pre-interned symbols, avoiding the name lookups on
// hot paths.
func (p *Prepared) RunSyms(args ...symtab.Sym) (*Answer, error) {
	return p.RunSymsCtx(nil, args...)
}

// RunSymsCtx is RunCtx for pre-interned symbols.
func (p *Prepared) RunSymsCtx(ctx context.Context, args ...symtab.Sym) (*Answer, error) {
	if len(args) != p.nparams {
		return nil, fmt.Errorf("chainlog: prepared query %s expects %d parameters, got %d", p, p.nparams, len(args))
	}
	db := p.db
	db.mu.RLock()
	defer db.mu.RUnlock()
	pl, err := p.planLocked()
	if err != nil {
		return nil, err
	}
	return p.runMaterialized(ctx, pl, args)
}

// runMaterialized executes a plan and wraps the result in a full Answer
// with retrieval statistics. The caller holds db.mu for reading.
func (p *Prepared) runMaterialized(ctx context.Context, pl plan, args []symtab.Sym) (*Answer, error) {
	db := p.db
	before := db.store.CountersSnapshot()
	ans, err := pl.run(ctx, db, args)
	if err != nil {
		return nil, err
	}
	// The traversal polls the context, but a run that finishes just under
	// the wire would still pay the row rendering and sort below — on a
	// large answer set that costs more than the traversal. A request
	// whose deadline has passed gets its error now instead.
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	after := db.store.CountersSnapshot()
	ans.Stats.FactsConsulted = after.Retrieved - before.Retrieved
	ans.Stats.Lookups = after.Lookups - before.Lookups
	ans.Stats.Strategy = Strategy(p.effective.Load())
	p.recordWork(ans.Stats.FactsConsulted)
	ans.Vars = append([]string(nil), p.vars...)
	if len(ans.Vars) == 0 {
		ans.True = len(ans.Rows) > 0
		ans.Rows = nil
	}
	sortRows(ans.Rows)
	// Final deadline check: the answer is only handed out if it was fully
	// produced — traversal, rendering and sort — within the deadline, so
	// "returned 200" and "met the deadline" mean the same thing.
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	return ans, nil
}

// RunSymsFunc executes the prepared plan like RunSyms but streams each
// answer row to yield as raw interned symbols instead of materializing
// an Answer — the warm path for services that run one plan at high
// rates. The row slice passed to yield is reused between calls; copy it
// if retained. Rows arrive in ascending interned-symbol order for
// directly streamed plans (answer-set order, deduplicated), and
// evaluation statistics are not computed. Directly evaluated
// binary-chain plans over regular equations perform zero heap
// allocations per warm call; other routes transparently fall back to
// the materializing path.
//
// yield runs while RunSymsFunc holds the DB's read lock: it must not
// call back into the DB (Assert, LoadProgram, Query, another Run — any
// of these can deadlock). Collect what you need and act after
// RunSymsFunc returns.
func (p *Prepared) RunSymsFunc(yield func(row []symtab.Sym), args ...symtab.Sym) error {
	if len(args) != p.nparams {
		return fmt.Errorf("chainlog: prepared query %s expects %d parameters, got %d", p, p.nparams, len(args))
	}
	db := p.db
	db.mu.RLock()
	defer db.mu.RUnlock()
	pl, err := p.planLocked()
	if err != nil {
		return err
	}
	// Dispatch on the concrete plan types rather than the streamPlan
	// interface: the indirect call would force args and the row buffer
	// to escape, costing the warm path its zero-allocation property.
	switch v := pl.(type) {
	case *directPlan:
		if done, err := v.runStream(db, args, yield); done || err != nil {
			return err
		}
	case *section4Plan:
		if done, err := v.runStream(db, args, yield); done || err != nil {
			return err
		}
	}
	// Fallback: materialize and re-intern. Copy args so the streaming
	// call above keeps its parameters on the caller's stack.
	fb := make([]symtab.Sym, len(args))
	copy(fb, args)
	ans, err := p.runMaterialized(nil, pl, fb)
	if err != nil {
		return err
	}
	var buf []symtab.Sym
	for _, row := range ans.Rows {
		buf = buf[:0]
		for _, name := range row {
			buf = append(buf, db.st.Intern(name))
		}
		yield(buf)
	}
	return nil
}

// planLocked returns the current plan, re-synchronizing it with the
// DB's mutation epochs: a stale fact epoch refreshes the plan in place
// (no recompilation) when the plan supports it, and a stale rule epoch —
// or a plan that bakes facts into its compiled form — recompiles. The
// caller holds db.mu for reading, so the epochs are stable for the
// duration, and no mutation or other traversal of this plan's engine can
// be in flight while the exclusive p.mu section below runs.
func (p *Prepared) planLocked() (plan, error) {
	db := p.db
	p.mu.RLock()
	pl, re, fe := p.plan, p.ruleEpoch, p.factEpoch
	p.mu.RUnlock()
	if re == db.ruleEpoch && fe == db.factEpoch && !p.feedback.Load() {
		return pl, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ruleEpoch == db.ruleEpoch {
		if p.factEpoch == db.factEpoch {
			// Epochs are clean, so only runtime feedback got us here: the
			// plan's observed work contradicts its estimate. Re-cost with
			// the measurements; compiled routes are reused, not rebuilt.
			p.maybeReoptimizeLocked(db)
			return p.plan, nil
		}
		// Facts moved: before refreshing, let an Auto plan re-cost its
		// choice if the inputs drifted or feedback flagged the estimate.
		// Whatever plan comes out (switched or not) absorbs the mutation
		// in place via the refresher below.
		p.maybeReoptimizeLocked(db)
		if fr, ok := p.plan.(factRefresher); ok {
			fr.refreshFacts(db)
			p.factEpoch = db.factEpoch
			return p.plan, nil
		}
	}
	before := db.store.CountersSnapshot()
	pl, dec, eff, err := db.buildPlanAuto(p.tmpl, p.opts)
	if err != nil {
		return nil, err
	}
	after := db.store.CountersSnapshot()
	p.compileFacts = after.Retrieved - before.Retrieved
	p.compileLookups = after.Lookups - before.Lookups
	p.plan, p.ruleEpoch, p.factEpoch = pl, db.ruleEpoch, db.factEpoch
	p.installDecision(dec, eff)
	return pl, nil
}

// buildPlan compiles the evaluation route for a template under the given
// options. The caller must hold db.mu (shared suffices).
func (db *DB) buildPlan(tmpl ast.Query, opts Options) (plan, error) {
	info := db.analysisLocked()
	// Base-predicate queries are plain index lookups.
	if !info.Derived[tmpl.Pred] {
		return &basePlan{tmpl: tmpl}, nil
	}
	switch opts.Strategy {
	case Chain:
		return db.buildChainPlan(tmpl, opts)
	case Naive:
		return &bottomUpPlan{tmpl: tmpl, naive: true}, nil
	case Seminaive:
		return &bottomUpPlan{tmpl: tmpl}, nil
	case Magic:
		return &magicPlan{tmpl: tmpl}, nil
	case Counting, ReverseCounting, HenschenNaqvi:
		return db.buildLinearPlan(tmpl, opts)
	case Hunt:
		return db.buildHuntPlan(tmpl)
	case QSQNet:
		return db.buildQSQNetPlan(tmpl)
	}
	return nil, fmt.Errorf("chainlog: unhandled strategy %v", opts.Strategy)
}

// buildChainPlan compiles the paper's route: direct binary-chain
// evaluation when possible, the Section 4 transformation otherwise, with
// the documented magic-sets fallback for non-chain binding patterns.
func (db *DB) buildChainPlan(tmpl ast.Query, opts Options) (plan, error) {
	sub := db.relevantProgram(tmpl.Pred)
	adorned := tmpl.Adornment()
	direct := analysis.Analyze(sub).BinaryChainProgram() && !opts.ForceSection4 &&
		(adorned == "bf" || adorned == "fb" || adorned == "ff")
	if direct {
		sys, err := equations.Transform(sub)
		if err != nil {
			return nil, err
		}
		eng := chaineval.New(sys, chaineval.StoreSource{Store: db.store}, db.engineOpts(opts))
		pl := &directPlan{pred: tmpl.Pred, mode: adorned, eng: eng}
		switch adorned {
		case "bf":
			pl.bound = tmpl.Args[0]
			eng.Precompile(tmpl.Pred)
		case "fb":
			pl.bound = tmpl.Args[1]
			eng.PrecompileInverse(tmpl.Pred)
		case "ff":
			pl.diagonal = tmpl.Args[0].Var == tmpl.Args[1].Var
			eng.Precompile(tmpl.Pred)
		}
		return pl, nil
	}

	// Section 4: n-ary → binary-chain over tuple terms. The
	// transformation depends only on the binding pattern, so it is built
	// once here and rebound per run.
	tr, err := binchain.Transform(db.prog, tmpl, db.store, false)
	if err != nil {
		if opts.Strict {
			return nil, err
		}
		// Binding pattern outside the chain class: fall back to magic
		// sets (still binding-directed) per run, and to seminaive when
		// magic cannot handle the program either.
		return &chainFallbackPlan{tmpl: tmpl}, nil
	}
	sys, err := equations.Transform(tr.Program)
	if err != nil {
		return nil, err
	}
	eng := chaineval.New(sys, tr.Source, db.engineOpts(opts))
	eng.Precompile(tr.QueryPred)
	pl := &section4Plan{tr: tr, eng: eng, distinctVars: true}
	seenVar := make(map[string]bool, len(tr.FreeVars))
	for _, v := range tr.FreeVars {
		if seenVar[v] {
			pl.distinctVars = false
			break
		}
		seenVar[v] = true
	}
	for _, a := range tmpl.Args {
		if a.IsVar() {
			continue
		}
		if a.IsHole() {
			pl.holePos = append(pl.holePos, len(pl.boundTmpl))
			pl.boundTmpl = append(pl.boundTmpl, symtab.None)
		} else {
			pl.boundTmpl = append(pl.boundTmpl, a.Const)
		}
	}
	return pl, nil
}

// buildLinearPlan compiles the counting / reverse-counting /
// Henschen–Naqvi specializations: a binary-chain program whose query
// equation has the shape p = e0 ∪ e1·p·e2 and a bf query.
func (db *DB) buildLinearPlan(tmpl ast.Query, opts Options) (plan, error) {
	if tmpl.Adornment() != "bf" {
		return nil, fmt.Errorf("chainlog: strategy %v supports only p(a, Y) queries", opts.Strategy)
	}
	sys, err := equations.Transform(db.relevantProgram(tmpl.Pred))
	if err != nil {
		return nil, err
	}
	shape, ok := sys.LinearDecompose(tmpl.Pred)
	if !ok {
		return nil, fmt.Errorf("chainlog: equation for %s is not of the shape e0 U e1.%s.e2", tmpl.Pred, tmpl.Pred)
	}
	return &linearPlan{strategy: opts.Strategy, bound: tmpl.Args[0], shape: shape, maxLevels: opts.MaxIterations}, nil
}

// buildHuntPlan compiles the Hunt-Szymanski-Ullman baseline. The
// preconstructed graph G(p) is the plan: building it is the strategy's
// whole up-front cost, and each Run is a reachability search.
func (db *DB) buildHuntPlan(tmpl ast.Query) (plan, error) {
	if tmpl.Adornment() != "bf" {
		return nil, fmt.Errorf("chainlog: hunt strategy supports only p(a, Y) queries")
	}
	sys, err := equations.Transform(db.relevantProgram(tmpl.Pred))
	if err != nil {
		return nil, err
	}
	if !sys.IsRegularFor(tmpl.Pred) {
		return nil, fmt.Errorf("chainlog: hunt strategy requires a regular equation for %s", tmpl.Pred)
	}
	eq, _ := sys.EquationFor(tmpl.Pred)
	return &huntPlan{bound: tmpl.Args[0], g: hunt.Build(eq, db.store)}, nil
}

// bindOne resolves a bound-position term: a literal constant fixed at
// Prepare time, or the run's (single) parameter.
func bindOne(t ast.Term, args []symtab.Sym) symtab.Sym {
	if t.IsHole() {
		return args[0]
	}
	return t.Const
}

// basePlan answers extensional-predicate queries by index lookup.
type basePlan struct{ tmpl ast.Query }

func (pl *basePlan) run(ctx context.Context, db *DB, args []symtab.Sym) (*Answer, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	return db.baseQuery(substituteArgs(pl.tmpl, args))
}

// refreshFacts is a no-op: the plan reads the store at run time.
func (pl *basePlan) refreshFacts(db *DB) {}

// directPlan is the paper's algorithm over a precompiled engine: a
// binary-chain query evaluated by graph traversal, with the bound
// constant injected at run time.
type directPlan struct {
	pred     string
	mode     string // adornment: bf, fb or ff
	bound    ast.Term
	diagonal bool // ff with a repeated variable: p(X, X)
	eng      *chaineval.Engine
}

// refreshFacts re-resolves the engine's pre-annotated relation table so
// edges whose relation materialized after compile time probe it
// directly; the compiled automata themselves depend only on the rules.
func (pl *directPlan) refreshFacts(db *DB) { pl.eng.RefreshRelations() }

func (pl *directPlan) run(ctx context.Context, db *DB, args []symtab.Sym) (*Answer, error) {
	switch pl.mode {
	case "bf":
		res, err := pl.eng.QueryCtx(ctx, pl.pred, bindOne(pl.bound, args))
		if err != nil {
			return nil, err
		}
		return db.symsAnswer(res.Answers, chainStats(res)), nil
	case "fb":
		res, err := pl.eng.QueryInverseCtx(ctx, pl.pred, bindOne(pl.bound, args))
		if err != nil {
			return nil, err
		}
		return db.symsAnswer(res.Answers, chainStats(res)), nil
	case "ff":
		pairs, res, err := pl.eng.QueryAllCtx(ctx, pl.pred, db.activeDomainLocked())
		if err != nil {
			return nil, err
		}
		st := chainStats(res)
		// p(X, X) projects the diagonal.
		if pl.diagonal {
			var rows [][]string
			for _, p := range pairs {
				if p[0] == p[1] {
					rows = append(rows, []string{db.st.Name(p[0])})
				}
			}
			return db.rowsStrAnswer(rows, st), nil
		}
		rows := make([][]string, 0, len(pairs))
		for _, p := range pairs {
			rows = append(rows, []string{db.st.Name(p[0]), db.st.Name(p[1])})
		}
		return db.rowsStrAnswer(rows, st), nil
	}
	return nil, fmt.Errorf("chainlog: unsupported direct adornment %s", pl.mode)
}

// runStream streams bf/fb answers straight off the engine's pooled
// traversal; ff enumerates all pairs and reports not-streamable.
func (pl *directPlan) runStream(db *DB, args []symtab.Sym, yield func([]symtab.Sym)) (bool, error) {
	buf := rowBufPool.Get().(*[1]symtab.Sym)
	defer rowBufPool.Put(buf)
	emit := func(v symtab.Sym) {
		buf[0] = v
		yield(buf[:])
	}
	switch pl.mode {
	case "bf":
		return true, pl.eng.QueryStream(pl.pred, bindOne(pl.bound, args), emit)
	case "fb":
		return true, pl.eng.QueryInverseStream(pl.pred, bindOne(pl.bound, args), emit)
	}
	return false, nil
}

// section4Plan evaluates via the n-ary → binary-chain transformation,
// rebinding the t(c̄) start term per run.
type section4Plan struct {
	tr  *binchain.Transformed
	eng *chaineval.Engine
	// boundTmpl holds the bound-position values in query-literal order,
	// symtab.None at '?' holes; holePos maps successive run parameters to
	// their positions in boundTmpl.
	boundTmpl []symtab.Sym
	holePos   []int
	// distinctVars is true when the query's free variables are pairwise
	// distinct: decoded answer tuples are then distinct rows as-is, so
	// the plan can stream without the collapse/dedupe pass.
	distinctVars bool
}

// refreshFacts re-resolves the engine's relation table and drops the
// transformation's cached active domain (fact-derived state used only
// by unsafe-mode enumeration). The transformation itself depends only
// on the binding pattern, and its virtual join relations evaluate
// against the live store per probe.
func (pl *section4Plan) refreshFacts(db *DB) {
	pl.eng.RefreshRelations()
	pl.tr.RefreshFacts()
}

// bindStart resolves the run's bound-argument vector to the interned
// start term t(c̄).
func (pl *section4Plan) bindStart(args []symtab.Sym) (symtab.Sym, error) {
	bound := make([]symtab.Sym, len(pl.boundTmpl))
	copy(bound, pl.boundTmpl)
	for k, i := range pl.holePos {
		bound[i] = args[k]
	}
	return pl.tr.Bind(bound)
}

// runStream streams decoded answer rows when the free variables are
// pairwise distinct (tuple-term interning guarantees row uniqueness);
// repeated variables need the materializing collapse/dedupe pass.
func (pl *section4Plan) runStream(db *DB, args []symtab.Sym, yield func([]symtab.Sym)) (bool, error) {
	if !pl.distinctVars {
		return false, nil
	}
	start, err := pl.bindStart(args)
	if err != nil {
		return true, err
	}
	nvars := len(pl.tr.FreeVars)
	var buf []symtab.Sym
	err = pl.eng.QueryStream(pl.tr.QueryPred, start, func(s symtab.Sym) {
		row := pl.tr.DecodeAnswer(s)
		if len(row) == nvars {
			// Copy out of the symbol table's interned tuple storage: the
			// yielded row is documented as caller-overwritable scratch,
			// and DecodeAnswer aliases memory that must stay immutable.
			buf = append(buf[:0], row...)
			yield(buf)
		}
	})
	return true, err
}

func (pl *section4Plan) run(ctx context.Context, db *DB, args []symtab.Sym) (*Answer, error) {
	start, err := pl.bindStart(args)
	if err != nil {
		return nil, err
	}
	res, err := pl.eng.QueryCtx(ctx, pl.tr.QueryPred, start)
	if err != nil {
		return nil, err
	}
	rows := pl.tr.DecodeAnswers(res.Answers)
	return db.rowsAnswer(dedupeRows(rowsWithRepeatsCollapsed(rows, pl.tr.FreeVars)), chainStats(res)), nil
}

// chainFallbackPlan handles Chain-strategy queries whose binding pattern
// fails the chain-program condition: magic sets per run, seminaive when
// magic cannot handle the program either.
type chainFallbackPlan struct{ tmpl ast.Query }

// refreshFacts is a no-op: the rewriting runs against the live store.
func (pl *chainFallbackPlan) refreshFacts(db *DB) {}

func (pl *chainFallbackPlan) run(ctx context.Context, db *DB, args []symtab.Sym) (*Answer, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	q := substituteArgs(pl.tmpl, args)
	rows, stats, err := magic.EvaluateCtx(ctx, db.prog, q, db.store)
	if err != nil {
		// Last resort: the completely general bottom-up method.
		return (&bottomUpPlan{tmpl: pl.tmpl}).run(ctx, db, args)
	}
	return db.rowsAnswer(rows, Stats{
		Iterations: stats.Iterations,
		Nodes:      int(stats.Derived),
		Firings:    stats.Firings,
		Converged:  true,
	}), nil
}

// bottomUpPlan runs naive or seminaive bottom-up evaluation. The
// fixpoint is recomputed per run — measuring that full-evaluation cost
// is what the bottom-up baselines exist for.
type bottomUpPlan struct {
	tmpl  ast.Query
	naive bool
}

// refreshFacts is a no-op: the fixpoint is recomputed per run.
func (pl *bottomUpPlan) refreshFacts(db *DB) {}

func (pl *bottomUpPlan) run(ctx context.Context, db *DB, args []symtab.Sym) (*Answer, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	run := bottomup.SeminaiveCtx
	if pl.naive {
		run = bottomup.NaiveCtx
	}
	store, stats, err := run(ctx, db.prog, db.store)
	if err != nil {
		return nil, err
	}
	rows := bottomup.Answer(store, substituteArgs(pl.tmpl, args))
	return db.rowsAnswer(rows, Stats{
		Iterations: stats.Iterations,
		Nodes:      int(stats.Derived),
		Firings:    stats.Firings,
		Converged:  true,
	}), nil
}

// magicPlan runs the magic-sets rewriting per run; the rewriting is
// seeded by the query's constants, so it cannot be shared across
// parameter vectors.
type magicPlan struct{ tmpl ast.Query }

// refreshFacts is a no-op: the rewriting runs against the live store.
func (pl *magicPlan) refreshFacts(db *DB) {}

func (pl *magicPlan) run(ctx context.Context, db *DB, args []symtab.Sym) (*Answer, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	rows, stats, err := magic.EvaluateCtx(ctx, db.prog, substituteArgs(pl.tmpl, args), db.store)
	if err != nil {
		return nil, err
	}
	return db.rowsAnswer(rows, Stats{
		Iterations: stats.Iterations,
		Nodes:      int(stats.Derived),
		Firings:    stats.Firings,
		Converged:  true,
	}), nil
}

// linearPlan runs the counting / reverse-counting / Henschen–Naqvi
// specializations over a pre-decomposed p = e0 ∪ e1·p·e2 shape.
type linearPlan struct {
	strategy  Strategy
	bound     ast.Term
	shape     equations.LinearShape
	maxLevels int
}

// refreshFacts is a no-op: the decomposed shape depends only on the
// rules, and each run evaluates it against the live store.
func (pl *linearPlan) refreshFacts(db *DB) {}

func (pl *linearPlan) run(ctx context.Context, db *DB, args []symtab.Sym) (*Answer, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	src := chaineval.StoreSource{Store: db.store}
	a := bindOne(pl.bound, args)
	var answers []symtab.Sym
	var st Stats
	switch pl.strategy {
	case Counting:
		res, cs := counting.Evaluate(pl.shape, src, a, pl.maxLevels)
		answers = res
		st = Stats{Iterations: cs.Levels, Nodes: cs.UpSize + cs.FlatSize + cs.DownSize, Converged: true}
	case ReverseCounting:
		res, cs := counting.EvaluateReverse(pl.shape, src, a, pl.maxLevels)
		answers = res
		st = Stats{Iterations: cs.Levels, Nodes: cs.UpSize + cs.FlatSize + cs.DownSize, Converged: true}
	case HenschenNaqvi:
		res, hs := hn.Evaluate(pl.shape, src, a, pl.maxLevels)
		answers = res
		st = Stats{Iterations: hs.Iterations, Nodes: hs.TermsTouched, Converged: true}
	}
	return db.symsAnswer(answers, st), nil
}

// huntPlan answers over the preconstructed Hunt-Szymanski-Ullman graph.
// It deliberately does not implement factRefresher: the graph is built
// from the facts, so a fact mutation forces the full preconstruction
// again — the strategy's documented trade-off.
type huntPlan struct {
	bound ast.Term
	g     *hunt.Graph
}

func (pl *huntPlan) run(ctx context.Context, db *DB, args []symtab.Sym) (*Answer, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	answers, visited := pl.g.Query(bindOne(pl.bound, args))
	return db.symsAnswer(answers, Stats{
		Iterations: 1,
		Nodes:      visited,
		Converged:  true,
	}), nil
}
