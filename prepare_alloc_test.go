package chainlog

import (
	"fmt"
	"testing"

	"chainlog/internal/symtab"
)

// TestRunSymsFuncZeroAlloc pins the prepared-plan warm path of the
// flat-memory refactor: steady-state RunSymsFunc on a directly evaluated
// binary-chain plan (regular equation, CSR adjacency, pooled visited
// pages) must perform zero heap allocations.
func TestRunSymsFuncZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	db := NewDB()
	if err := db.LoadProgram("tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		db.Assert("edge", fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1))
	}
	p, err := db.Prepare("tc(?, Y)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, ok := db.SymTab().Lookup("n0")
	if !ok {
		t.Fatal("n0 not interned")
	}
	// The yield callback is created once and reused, as a serving loop
	// would; a fresh closure per call would charge the caller one
	// allocation of its own.
	count := 0
	yield := func(row []symtab.Sym) { count++ }
	run := func() {
		count = 0
		if err := p.RunSymsFunc(yield, src); err != nil {
			t.Error(err)
		}
	}
	run() // warm: builds CSR adjacency, seeds the scratch pool
	if count != 64 {
		t.Fatalf("answers = %d, want 64", count)
	}
	if got := testing.AllocsPerRun(200, run); got != 0 {
		t.Fatalf("warm RunSymsFunc allocates %.1f allocs/op, want 0", got)
	}
}

// TestRunSymsFuncMatchesRunSyms checks the streamed rows against the
// materialized answer across plan routes, including the Section 4
// transformation (streamed when free variables are distinct) and the
// fallback path for all-pairs queries.
func TestRunSymsFuncMatchesRunSyms(t *testing.T) {
	db := NewDB()
	if err := db.LoadProgram("tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n"); err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}, {"b", "d"}, {"d", "a"}} {
		db.Assert("edge", e[0], e[1])
	}
	for _, query := range []string{"tc(?, Y)", "tc(X, ?)", "tc(X, Y)"} {
		p, err := db.Prepare(query, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var args []string
		if p.NumParams() > 0 {
			args = []string{"a"}
		}
		ans, err := p.Run(args...)
		if err != nil {
			t.Fatal(err)
		}
		syms := make([]symtab.Sym, len(args))
		for i, a := range args {
			syms[i], _ = db.SymTab().Lookup(a)
		}
		var streamed [][]string
		err = p.RunSymsFunc(func(row []symtab.Sym) {
			out := make([]string, len(row))
			for i, s := range row {
				out[i] = db.Name(s)
			}
			streamed = append(streamed, out)
		}, syms...)
		if err != nil {
			t.Fatal(err)
		}
		if len(streamed) != len(ans.Rows) {
			t.Fatalf("%s: streamed %d rows, Run returned %d", query, len(streamed), len(ans.Rows))
		}
		want := map[string]bool{}
		for _, r := range ans.Rows {
			want[fmt.Sprint(r)] = true
		}
		for _, r := range streamed {
			if !want[fmt.Sprint(r)] {
				t.Fatalf("%s: streamed row %v not in Run answer %v", query, r, ans.Rows)
			}
		}
	}
}
