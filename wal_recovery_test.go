package chainlog

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"chainlog/internal/naiveeval"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
	"chainlog/internal/wal"
)

func TestApplyAtIdempotence(t *testing.T) {
	db := NewDB()
	if err := db.LoadProgram(`tc(X, Y) :- e(X, Y). tc(X, Z) :- e(X, Y), tc(Y, Z).`); err != nil {
		t.Fatal(err)
	}
	base := db.FactEpoch()

	d := &Delta{}
	d.Assert("e", "a", "b")
	res, ok := db.ApplyAt(d, base+1)
	if !ok || res.Asserted != 1 {
		t.Fatalf("first ApplyAt: ok=%v res=%+v", ok, res)
	}
	if db.FactEpoch() != base+1 {
		t.Fatalf("epoch after ApplyAt = %d, want %d", db.FactEpoch(), base+1)
	}

	// Duplicate delivery of the same record: a no-op, nothing moves.
	if res, ok := db.ApplyAt(d, base+1); ok || res.Asserted != 0 {
		t.Fatalf("duplicate ApplyAt: ok=%v res=%+v", ok, res)
	}
	// A record from the past is equally dead.
	old := &Delta{}
	old.Retract("e", "a", "b")
	if _, ok := db.ApplyAt(old, base); ok {
		t.Fatal("past-epoch ApplyAt was applied")
	}
	if ans, err := db.Query("tc(a, Y)"); err != nil || len(ans.Rows) != 1 {
		t.Fatalf("state disturbed by duplicate replay: %+v, %v", ans, err)
	}

	// A net-no-change record at a NEW epoch still moves the epoch: the
	// epoch is a log position, not a change counter, and a replica must
	// track it even when the ops net to nothing.
	if _, ok := db.ApplyAt(d, base+5); !ok {
		t.Fatal("net-no-change ApplyAt at a new epoch was skipped")
	}
	if db.FactEpoch() != base+5 {
		t.Fatalf("epoch = %d, want %d", db.FactEpoch(), base+5)
	}
	// And nil deltas work the same way (pure epoch advance).
	if _, ok := db.ApplyAt(nil, base+7); !ok || db.FactEpoch() != base+7 {
		t.Fatalf("nil-delta ApplyAt: epoch %d", db.FactEpoch())
	}
}

func TestEpochAccessors(t *testing.T) {
	db := NewDB()
	re, fe := db.RuleEpoch(), db.FactEpoch()
	if err := db.LoadProgram(`p(X) :- q(X).`); err != nil {
		t.Fatal(err)
	}
	if db.RuleEpoch() <= re {
		t.Fatal("loading rules did not move the rule epoch")
	}
	fe = db.FactEpoch()
	db.Assert("q", "a")
	if db.FactEpoch() != fe+1 {
		t.Fatalf("assert moved fact epoch %d -> %d", fe, db.FactEpoch())
	}
	if db.Assert("q", "a"); db.FactEpoch() != fe+1 {
		t.Fatal("no-op assert moved the fact epoch")
	}
}

func TestSaveFactsAtomic(t *testing.T) {
	db := mustDB(t, sgSrc)
	dir := t.TempDir()
	path := filepath.Join(dir, "facts.dl")
	if err := db.SaveFacts(path); err != nil {
		t.Fatal(err)
	}
	// No temp debris, and the file round-trips.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "facts.dl" {
		t.Fatalf("directory after SaveFacts: %v", entries)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := db.DumpFacts(&want); err != nil {
		t.Fatal(err)
	}
	if string(data) != want.String() {
		t.Fatal("SaveFacts content differs from DumpFacts")
	}
	// Overwriting an existing file is atomic too (rename semantics).
	db.Assert("up", "new_node", "other_node")
	if err := db.SaveFacts(path); err != nil {
		t.Fatal(err)
	}
	data2, _ := os.ReadFile(path)
	if !strings.Contains(string(data2), "new_node") {
		t.Fatal("second SaveFacts did not replace the file")
	}
}

func TestRestoreFacts(t *testing.T) {
	db := mustDB(t, sgSrc)
	var snap bytes.Buffer
	epoch, err := db.SnapshotFacts(&snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Query("sg(john, Y)")
	if err != nil {
		t.Fatal(err)
	}

	// Restore into a second DB that has the rules but drifted facts: the
	// restore must REPLACE the store, not merge into it.
	var rules bytes.Buffer
	if err := db.DumpRules(&rules); err != nil {
		t.Fatal(err)
	}
	db2 := NewDB()
	if err := db2.LoadProgram(rules.String()); err != nil {
		t.Fatal(err)
	}
	db2.Assert("up", "drift", "drift2")
	if err := db2.RestoreFacts(bytes.NewReader(snap.Bytes()), epoch); err != nil {
		t.Fatal(err)
	}
	if db2.FactEpoch() != epoch {
		t.Fatalf("restored epoch = %d, want %d", db2.FactEpoch(), epoch)
	}
	if ans, _ := db2.Query("up(drift, Y)"); len(ans.Rows) != 0 {
		t.Fatal("restore merged instead of replacing: drifted fact survived")
	}
	got, err := db2.Query("sg(john, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("restored answers %v, want %v", got.Rows, want.Rows)
	}

	// Prepared plans survive a restore (rule epoch machinery): prepare
	// before, run after.
	p, err := db2.Prepare("sg(?, Y)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.RestoreFacts(bytes.NewReader(snap.Bytes()), epoch+1); err != nil {
		t.Fatal(err)
	}
	if ans, err := p.Run("john"); err != nil || !reflect.DeepEqual(ans.Rows, want.Rows) {
		t.Fatalf("prepared run after restore: %+v, %v", ans, err)
	}

	// A snapshot containing rules is rejected — facts only.
	if err := db2.RestoreFacts(strings.NewReader("p(X) :- q(X)."), epoch+2); err == nil {
		t.Fatal("RestoreFacts accepted a rule")
	}
}

// TestWALRecoveryMatchesOracle drives a deterministic mutation schedule
// through the commit discipline chainlogd uses (Apply, then Append at
// the produced epoch, snapshot every so often), then recovers a fresh DB
// the way boot does — newest snapshot plus log tail — and checks the
// result against both the live DB and the textbook semi-naive oracle.
func TestWALRecoveryMatchesOracle(t *testing.T) {
	const src = `
		tc(X, Y) :- e(X, Y).
		tc(X, Z) :- e(X, Y), tc(Y, Z).
	`
	consts := []string{"a", "b", "c", "d", "f", "g"}

	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		l, err := wal.Open(wal.Options{Dir: dir, SegmentBytes: 256})
		if err != nil {
			t.Fatal(err)
		}

		db := NewDB()
		if err := db.LoadProgram(src); err != nil {
			t.Fatal(err)
		}
		res, err := parser.Parse(src, db.SymTab())
		if err != nil {
			t.Fatal(err)
		}
		oracle := naiveeval.NewFacts()

		for step := 0; step < 60; step++ {
			d := &Delta{}
			var ops []wal.Op
			for i := 0; i <= rng.Intn(3); i++ {
				args := []string{consts[rng.Intn(len(consts))], consts[rng.Intn(len(consts))]}
				retract := rng.Intn(3) == 0
				if retract {
					d.Retract("e", args...)
					oracle.Retract("e", []symtab.Sym{db.Intern(args[0]), db.Intern(args[1])})
				} else {
					d.Assert("e", args...)
					oracle.Assert("e", []symtab.Sym{db.Intern(args[0]), db.Intern(args[1])})
				}
				ops = append(ops, wal.Op{Retract: retract, Pred: "e", Args: args})
			}
			// The daemon's commit discipline: apply, then append at the
			// epoch the apply produced, only when the epoch moved.
			r := db.Apply(d)
			if r.Asserted > 0 || r.Retracted > 0 {
				if err := l.Append(wal.Record{Epoch: db.FactEpoch(), Ops: ops}); err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
			}
			if step%17 == 16 {
				if _, err := l.WriteSnapshot(func(w io.Writer) (uint64, error) {
					return db.SnapshotFacts(w, nil)
				}); err != nil {
					t.Fatalf("seed %d step %d snapshot: %v", seed, step, err)
				}
			}
		}
		l.Close()

		// "Crash" and recover: fresh log handle, fresh DB booted from the
		// same program, snapshot restore, tail replay.
		l2, err := wal.Open(wal.Options{Dir: dir, SegmentBytes: 256})
		if err != nil {
			t.Fatal(err)
		}
		rdb := NewDB()
		if err := rdb.LoadProgram(src); err != nil {
			t.Fatal(err)
		}
		if path, epoch, ok := l2.Snapshot(); ok {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			err = rdb.RestoreFacts(f, epoch)
			f.Close()
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := l2.ReadFrom(rdb.FactEpoch(), func(rec wal.Record) error {
			d := &Delta{}
			for _, op := range rec.Ops {
				if op.Retract {
					d.Retract(op.Pred, op.Args...)
				} else {
					d.Assert(op.Pred, op.Args...)
				}
			}
			rdb.ApplyAt(d, rec.Epoch)
			return nil
		}); err != nil {
			t.Fatalf("seed %d replay: %v", seed, err)
		}
		l2.Close()

		if rdb.FactEpoch() != db.FactEpoch() {
			t.Fatalf("seed %d: recovered epoch %d, live epoch %d", seed, rdb.FactEpoch(), db.FactEpoch())
		}
		// The recovered store is byte-identical to the live one...
		var liveDump, recDump bytes.Buffer
		if err := db.DumpFacts(&liveDump); err != nil {
			t.Fatal(err)
		}
		if err := rdb.DumpFacts(&recDump); err != nil {
			t.Fatal(err)
		}
		if liveDump.String() != recDump.String() {
			t.Fatalf("seed %d: recovered facts differ\nlive:\n%s\nrecovered:\n%s",
				seed, liveDump.String(), recDump.String())
		}
		// ...and its derived answers match the independent oracle.
		for _, c := range consts {
			text := fmt.Sprintf("tc(%s, Y)", c)
			ans, err := rdb.Query(text)
			if err != nil {
				t.Fatalf("seed %d query %s: %v", seed, text, err)
			}
			q, err := parser.ParseQuery(text, rdb.SymTab())
			if err != nil {
				t.Fatal(err)
			}
			rows := naiveeval.Answer(res.Program, oracle, rdb.SymTab(), q)
			want := make([][]string, 0, len(rows))
			for _, r := range rows {
				row := make([]string, len(r))
				for i, v := range r {
					row[i] = rdb.Name(v)
				}
				want = append(want, row)
			}
			sortRows(want)
			if len(want) == 0 {
				want = nil
			}
			if !reflect.DeepEqual(ans.Rows, want) {
				t.Fatalf("seed %d: recovered %s = %v, oracle %v", seed, text, ans.Rows, want)
			}
		}
	}
}
