package chainlog

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"chainlog/internal/workload"
)

// Cross-strategy agreement on random same-generation databases: every
// strategy must return identical answer sets for identical queries. This
// is the module-level integration property tying the whole pipeline
// (parser → analysis → equations → automata → traversal, plus all
// comparison methods) together.
func TestAllStrategiesAgreeOnRandomData(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := NewDB()
		if err := db.LoadProgram(workload.SGProgram); err != nil {
			return false
		}
		n := 10
		name := func(i int) string { return fmt.Sprintf("n%d", i) }
		for k := 0; k < 20; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				db.Assert("up", name(i), name(j))
			case 1:
				db.Assert("down", name(i), name(j))
			default:
				db.Assert("flat", name(i), name(j))
			}
		}
		// up may be cyclic here: counting/HN/chain all rely on the m·n
		// guard; naive/seminaive/magic iterate to fixpoint regardless.
		query := "sg(n0, Y)"
		ref, err := db.QueryOpts(query, Options{Strategy: Seminaive})
		if err != nil {
			return false
		}
		for _, s := range []Strategy{Chain, Naive, Magic, Counting, HenschenNaqvi} {
			a, err := db.QueryOpts(query, Options{Strategy: s})
			if err != nil {
				t.Logf("seed %d strategy %v: %v", seed, s, err)
				return false
			}
			if !reflect.DeepEqual(a.Rows, ref.Rows) {
				t.Logf("seed %d strategy %v: %v != %v", seed, s, a.Rows, ref.Rows)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestForceSection4MatchesDirect(t *testing.T) {
	f := func(seed int64) bool {
		db := NewDB()
		if err := db.LoadProgram(workload.SGProgram); err != nil {
			return false
		}
		w := workload.RandomTree(db.SymTab(), 20, 0.4, seed)
		db.SetStore(w.Store)
		query := fmt.Sprintf("sg(%s, Y)", db.Name(w.Query))
		direct, err := db.Query(query)
		if err != nil {
			return false
		}
		forced, err := db.QueryOpts(query, Options{ForceSection4: true})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return reflect.DeepEqual(direct.Rows, forced.Rows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParseStrategyRoundTrip(t *testing.T) {
	for _, s := range []Strategy{Chain, Naive, Seminaive, Magic, Counting, ReverseCounting, HenschenNaqvi, Hunt} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseStrategy("nope"); err == nil {
		t.Error("unknown strategy accepted")
	}
	if s, err := ParseStrategy(""); err != nil || s != Auto {
		t.Error("empty strategy should default to auto (optimizer-chosen)")
	}
	if Strategy(99).String() == "" {
		t.Error("out-of-range strategy String empty")
	}
}

func TestStrategyErrors(t *testing.T) {
	db := mustDB(t, sgSrc)
	// Counting and friends require bf queries.
	if _, err := db.QueryOpts("sg(X, Y)", Options{Strategy: Counting}); err == nil {
		t.Error("counting accepted an ff query")
	}
	if _, err := db.QueryOpts("sg(X, john)", Options{Strategy: HenschenNaqvi}); err == nil {
		t.Error("hn accepted an fb query")
	}
	// Hunt requires a regular equation; sg is not regular.
	if _, err := db.QueryOpts("sg(john, Y)", Options{Strategy: Hunt}); err == nil {
		t.Error("hunt accepted a nonregular equation")
	}
	// Unknown predicate.
	if _, err := db.Query("nosuch(a, Y)"); err == nil {
		// nosuch is not derived and has no facts: base query returns
		// empty rather than erroring — that is fine; check arity error
		// path instead.
		ans, err2 := db.Query("up(a, Y, Z)")
		if err2 == nil && ans != nil && len(ans.Rows) > 0 {
			t.Error("arity-mismatched base query returned rows")
		}
	}
}

func TestExplainBinaryChain(t *testing.T) {
	db := mustDB(t, sgSrc)
	text, err := db.Explain("sg(john, Y)")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sg = flat U up.sg.down", "automaton M(e_sg)", "-sg->"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Explain missing %q:\n%s", want, text)
		}
	}
}

func TestExplainSection4(t *testing.T) {
	db := mustDB(t, `
cnx(S, DT, D, AT) :- flight(S, DT, D, AT).
cnx(S, DT, D, AT) :- flight(S, DT, D1, AT1), AT1 < DT1, is_deptime(DT1), cnx(D1, DT1, D, AT).
flight(hel, 900, sto, 1000).
is_deptime(900).
`)
	text, err := db.Explain("cnx(hel, 900, D, AT)")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cnx^bbff", "bin_cnx_bbff", "in_r2"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Explain missing %q:\n%s", want, text)
		}
	}
}

func TestExplainNonChain(t *testing.T) {
	db := mustDB(t, `
p(X, Y) :- b0(X, Y).
p(X, Y) :- b1(X, Y), p(Y, Z).
b0(a, b). b1(a, b).
`)
	text, err := db.Explain("p(a, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "NOT a chain program") {
		t.Fatalf("Explain should flag the non-chain program:\n%s", text)
	}
}

func TestExplainBasePredicate(t *testing.T) {
	db := mustDB(t, `edge(a, b).`)
	text, err := db.Explain("edge(a, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "extensional") {
		t.Fatalf("Explain(base) = %q", text)
	}
}

func TestClassification(t *testing.T) {
	db := mustDB(t, sgSrc)
	c := db.Classify()
	if !c.Recursive || !c.Linear || !c.BinaryChain || c.Regular || !c.SingleDerivedBody {
		t.Fatalf("Classify = %+v", c)
	}
	db2 := mustDB(t, `
t(X, Z) :- t(X, Y), t(Y, Z).
t(X, Y) :- e(X, Y).
e(a, b).
`)
	c2 := db2.Classify()
	if c2.Linear || c2.SingleDerivedBody {
		t.Fatalf("Classify quadratic tc = %+v", c2)
	}
}

func TestDynamicFactsVisible(t *testing.T) {
	db := mustDB(t, `
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
edge(a, b).
`)
	ans, err := db.Query("tc(a, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 1 {
		t.Fatalf("rows = %v", ans.Rows)
	}
	// Facts inserted after the first query are picked up — the engine
	// reads the store on demand.
	db.Assert("edge", "b", "c")
	ans, err = db.Query("tc(a, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 2 {
		t.Fatalf("rows after insert = %v", ans.Rows)
	}
}

// Propositional (zero-arity) predicates evaluate with the bottom-up
// strategies.
func TestZeroArityQuery(t *testing.T) {
	db := mustDB(t, `
ok :- edge(a, b).
missing :- edge(b, a).
edge(a, b).
`)
	ans, err := db.QueryOpts("ok", Options{Strategy: Seminaive})
	if err != nil {
		t.Fatal(err)
	}
	if !ans.True {
		t.Fatal("ok should hold")
	}
	ans, err = db.QueryOpts("missing", Options{Strategy: Naive})
	if err != nil {
		t.Fatal(err)
	}
	if ans.True {
		t.Fatal("missing should not hold")
	}
}

func TestLoadProgramErrors(t *testing.T) {
	db := NewDB()
	if err := db.LoadProgram("p(X :- q(X)."); err == nil {
		t.Error("syntax error accepted")
	}
	if err := db.LoadProgram("p(X, Y) :- q(X, Y)."); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadProgram("p(a, b)."); err == nil {
		t.Error("fact for derived predicate accepted")
	}
}

func TestMaxIterationsReported(t *testing.T) {
	db := NewDB()
	if err := db.LoadProgram(workload.SGProgram); err != nil {
		t.Fatal(err)
	}
	w := workload.Cyclic(db.SymTab(), 3, 4)
	db.SetStore(w.Store)
	ans, err := db.QueryOpts("sg(ca0, Y)", Options{MaxIterations: 3, DisableCyclicGuard: true})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Stats.Converged {
		t.Fatal("capped evaluation reported convergence")
	}
	full, err := db.Query("sg(ca0, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if !full.Stats.Converged || len(full.Rows) != 4 {
		t.Fatalf("guarded cyclic run: %+v", full.Stats)
	}
}

func TestSetStoreForeignTablePanics(t *testing.T) {
	db := NewDB()
	other := NewDB()
	w := workload.SampleA(other.SymTab(), 3)
	defer func() {
		if recover() == nil {
			t.Fatal("SetStore with foreign symtab did not panic")
		}
	}()
	db.SetStore(w.Store)
}
