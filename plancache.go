package chainlog

import (
	"fmt"
	"strings"
	"sync"

	"chainlog/internal/ast"
)

// planKey identifies a cached plan: the query predicate, the canonical
// binding pattern (which positions are parameters, which are variables,
// and the variable-repetition structure), and the evaluation options.
// Mutations need not be part of the key: every cached Prepared records
// the rule and fact epochs it was compiled at, recompiles itself when
// the rule epoch moves (the cache is emptied then too), and merely
// refreshes its relation pointers when only the fact epoch moved — so
// the cache, and its hit streaks, survive fact churn.
type planKey struct {
	pred    string
	pattern string
	opts    optionsKey
}

// optionsKey is the comparable subset of Options that affects plan
// compilation. Trace and TraceMaxNodes are deliberately absent: traced
// queries bypass the cache entirely, and TraceMaxNodes is inert without
// a tracer.
type optionsKey struct {
	strategy           Strategy
	maxIterations      int
	maxNodes           int
	parallelism        int
	disableCyclicGuard bool
	forceSection4      bool
	strict             bool
}

func keyOfOptions(o Options) optionsKey {
	return optionsKey{
		strategy:           o.Strategy,
		maxIterations:      o.MaxIterations,
		maxNodes:           o.MaxNodes,
		parallelism:        o.Parallelism,
		disableCyclicGuard: o.DisableCyclicGuard,
		forceSection4:      o.ForceSection4,
		strict:             o.Strict,
	}
}

// patternOf canonicalizes a template's argument shape: '?' for holes,
// v<i> for variables numbered by first occurrence, c<sym> for literal
// constants. sg(?, Y) and sg(?, Z) share a pattern; sg(X, X) does not
// share with sg(X, Y).
func patternOf(q ast.Query) string {
	var b strings.Builder
	idx := make(map[string]int)
	for i, a := range q.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		switch {
		case a.IsVar():
			j, ok := idx[a.Var]
			if !ok {
				j = len(idx)
				idx[a.Var] = j
			}
			fmt.Fprintf(&b, "v%d", j)
		case a.IsHole():
			b.WriteByte('?')
		default:
			fmt.Fprintf(&b, "c%d", int(a.Const))
		}
	}
	return b.String()
}

// planCache memoizes Prepared plans behind Query/QueryOpts, so one-shot
// queries of a repeated shape compile once. Rule-epoch mutations empty
// the cache (via DB.bumpRuleEpoch) so stale plans never pin a replaced
// store; fact-only mutations leave it intact. Between rule mutations the
// size is bounded by the number of distinct query shapes.
type planCache struct {
	mu      sync.Mutex
	entries map[planKey]*Prepared
	hits    uint64
	misses  uint64
}

// clear drops every cached entry (hit/miss counters are kept). A racing
// builder may re-insert a plan compiled just before the clear; it
// recompiles itself on first use, so only a brief window of extra
// retention is possible, not staleness.
func (c *planCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.entries)
}

// PlanCacheStats reports the plan cache's effectiveness.
type PlanCacheStats struct {
	// Size is the number of cached plans.
	Size int
	// Hits counts Query/QueryOpts calls served by a cached plan.
	Hits uint64
	// Misses counts calls that had to compile a plan.
	Misses uint64
}

// PlanCacheStats returns a snapshot of the plan cache counters.
func (db *DB) PlanCacheStats() PlanCacheStats {
	c := &db.plans
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{Size: len(c.entries), Hits: c.hits, Misses: c.misses}
}

// cachedPrepared returns the cached plan for the template, compiling and
// inserting it on first use; built reports whether this call compiled.
// Compilation happens outside the cache lock so distinct query shapes
// compile in parallel; when two goroutines race on the same new shape,
// the first insert wins and the other build is discarded.
func (db *DB) cachedPrepared(tmpl ast.Query, opts Options) (p *Prepared, built bool, err error) {
	key := planKey{pred: tmpl.Pred, pattern: patternOf(tmpl), opts: keyOfOptions(opts)}
	c := &db.plans
	c.mu.Lock()
	if p, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		return p, false, nil
	}
	c.misses++
	c.mu.Unlock()

	p, err = db.prepareQuery(tmpl, opts)
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if q, ok := c.entries[key]; ok {
		return q, false, nil
	}
	if c.entries == nil {
		c.entries = make(map[planKey]*Prepared)
	}
	c.entries[key] = p
	return p, true, nil
}
