# chainlogd container image: multi-stage build producing a static binary
# on a distroless base — the artifact CI's docker job boots and smokes
# (scripts/e2e.sh in external mode), so the image users deploy is the
# image that was tested.
#
#   docker build -t chainlogd .
#   docker run --rm -p 8080:8080 chainlogd
#   # or with your own program:
#   docker run --rm -p 8080:8080 -v $PWD/prog.dl:/etc/chainlog/program.dl chainlogd

FROM golang:1.24 AS build
WORKDIR /src
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags='-s -w' -o /out/chainlogd ./cmd/chainlogd

FROM gcr.io/distroless/static-debian12:nonroot
COPY --from=build /out/chainlogd /chainlogd
COPY examples/serving/family.dl /etc/chainlog/program.dl
EXPOSE 8080
ENTRYPOINT ["/chainlogd"]
CMD ["-addr", ":8080", "-program", "/etc/chainlog/program.dl"]
