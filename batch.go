package chainlog

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"

	"chainlog/internal/ast"
	"chainlog/internal/chaineval"
	"chainlog/internal/edb"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
)

// RunBatch executes the prepared plan for many parameter vectors at
// once — one slice of constant names per '?' placeholder set, answers
// returned in input order. Batching beats a loop of Run calls in two
// ways: bindings on a regular (non-expanding) plan are evaluated as one
// shared traversal whose overlapping reachable subgraphs are visited
// once for the whole batch, and remaining bindings are deduplicated and
// fanned out across Options.Parallelism workers.
//
// Statistics are aggregated per batch: every returned Answer carries the
// same Stats describing the whole batch evaluation (per-binding
// attribution is impossible once traversals share state).
func (p *Prepared) RunBatch(argSets [][]string) ([]*Answer, error) {
	return p.RunBatchCtx(nil, argSets)
}

// RunBatchCtx is RunBatch under a context: the shared traversal and the
// fanned-out per-binding runs poll the context like RunCtx, so one
// deadline covers the whole batch.
func (p *Prepared) RunBatchCtx(ctx context.Context, argSets [][]string) ([]*Answer, error) {
	syms := make([][]symtab.Sym, len(argSets))
	for i, args := range argSets {
		row := make([]symtab.Sym, len(args))
		for j, a := range args {
			row[j] = p.db.st.Intern(a)
		}
		syms[i] = row
	}
	return p.RunSymsBatchCtx(ctx, syms)
}

// RunSymsBatch is RunBatch for pre-interned parameter vectors.
func (p *Prepared) RunSymsBatch(argSets [][]symtab.Sym) ([]*Answer, error) {
	return p.RunSymsBatchCtx(nil, argSets)
}

// RunSymsBatchCtx is RunBatchCtx for pre-interned parameter vectors.
func (p *Prepared) RunSymsBatchCtx(ctx context.Context, argSets [][]symtab.Sym) ([]*Answer, error) {
	for _, args := range argSets {
		if len(args) != p.nparams {
			return nil, fmt.Errorf("chainlog: prepared query %s expects %d parameters, got %d", p, p.nparams, len(args))
		}
	}
	if len(argSets) == 0 {
		return []*Answer{}, nil
	}
	db := p.db
	db.mu.RLock()
	defer db.mu.RUnlock()
	pl, err := p.planLocked()
	if err != nil {
		return nil, err
	}

	// Plans with a batch route evaluate the whole binding set in one
	// engine call; one counter delta covers the batch.
	before := db.store.CountersSnapshot()
	var out []*Answer
	switch v := pl.(type) {
	case *directPlan:
		out, err = v.runBatch(ctx, db, argSets)
	case *section4Plan:
		out, err = v.runBatch(ctx, db, argSets)
	}
	if err != nil {
		return nil, err
	}
	// Post-evaluation deadline check, mirroring runMaterialized: per-batch
	// decoding and row sorting below can dwarf the traversal on large
	// answer sets.
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if out != nil {
		after := db.store.CountersSnapshot()
		for _, ans := range out {
			ans.Stats.FactsConsulted = after.Retrieved - before.Retrieved
			ans.Stats.Lookups = after.Lookups - before.Lookups
			p.finishAnswer(ans)
		}
		// Final deadline check after the per-answer decode and sort,
		// mirroring runMaterialized: a 200 means the whole batch — not
		// just its traversal — fit the deadline.
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		return out, nil
	}

	// Generic route (ff queries, bottom-up and linear strategies): one
	// materialized run per vector, fanned out across workers when the
	// plan allows parallelism.
	out = make([]*Answer, len(argSets))
	errs := make([]error, len(argSets))
	runOne := func(k int) {
		out[k], errs[k] = p.runMaterialized(ctx, pl, argSets[k])
	}
	if W := min(p.batchWorkers(), len(argSets)); W > 1 {
		// Longest-processing-time order: start the bindings with the
		// largest estimated cost (adjacency degree of their constants)
		// first, so an expensive straggler is not dispatched last to run
		// alone while the other workers drain. Answers keep input order.
		order := p.bindingOrderLocked(argSets)
		var cursor atomic.Int64
		chaineval.FanOut(W, func(int) {
			for {
				k := int(cursor.Add(1)) - 1
				if k >= len(argSets) {
					return
				}
				if order != nil {
					k = order[k]
				}
				runOne(k)
			}
		})
	} else {
		for k := range argSets {
			runOne(k)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// batchWorkers resolves Options.Parallelism for fanning a batch's
// bindings out: 0/1 sequential, negative GOMAXPROCS, tracing sequential
// (interleaved trace output would be unreadable).
func (p *Prepared) batchWorkers() int {
	w := p.opts.Parallelism
	if w < 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if p.opts.Trace != nil {
		return 1
	}
	return w
}

// bindingOrderLocked ranks a batch's parameter vectors by estimated
// per-binding cost, most expensive first — the degree sum of each
// vector's constants over the store's binary adjacency indexes, a
// selectivity estimate read without counting as retrievals. Returns nil
// (input order) for small batches or parameterless plans, where the
// probes cost more than they schedule. The caller holds db.mu (shared).
func (p *Prepared) bindingOrderLocked(argSets [][]symtab.Sym) []int {
	const minBatch = 8
	if p.nparams == 0 || len(argSets) < minBatch {
		return nil
	}
	db := p.db
	var rels []*edb.Relation
	for _, name := range db.store.Relations() {
		if r := db.store.Relation(name); r != nil && r.Arity() == 2 {
			rels = append(rels, r)
		}
	}
	if len(rels) == 0 {
		return nil
	}
	cost := make([]int, len(argSets))
	for i, args := range argSets {
		for _, a := range args {
			for _, r := range rels {
				cost[i] += len(r.SuccessorsRaw(a)) + len(r.PredecessorsRaw(a))
			}
		}
	}
	order := make([]int, len(argSets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool { return cost[order[x]] > cost[order[y]] })
	return order
}

// finishAnswer applies the Answer post-processing runMaterialized does
// for single runs: strategy stamp, variable names, boolean collapse and
// row ordering.
func (p *Prepared) finishAnswer(ans *Answer) {
	ans.Stats.Strategy = Strategy(p.effective.Load())
	ans.Vars = append([]string(nil), p.vars...)
	if len(ans.Vars) == 0 {
		ans.True = len(ans.Rows) > 0
		ans.Rows = nil
	}
	sortRows(ans.Rows)
}

// runBatch evaluates a binding set through the engine's batch API for
// bf/fb plans; (nil, nil) reports that this plan mode has no batch route
// (ff enumerates the active domain regardless of parameters).
func (pl *directPlan) runBatch(ctx context.Context, db *DB, argSets [][]symtab.Sym) ([]*Answer, error) {
	if pl.mode != "bf" && pl.mode != "fb" {
		return nil, nil
	}
	sources := make([]symtab.Sym, len(argSets))
	for i, args := range argSets {
		sources[i] = bindOne(pl.bound, args)
	}
	var answers [][]symtab.Sym
	var res *chaineval.Result
	var err error
	if pl.mode == "bf" {
		answers, res, err = pl.eng.QueryBatchCtx(ctx, pl.pred, sources)
	} else {
		answers, res, err = pl.eng.QueryBatchInverseCtx(ctx, pl.pred, sources)
	}
	if err != nil {
		return nil, err
	}
	st := chainStats(res)
	out := make([]*Answer, len(argSets))
	for i := range argSets {
		out[i] = db.symsAnswer(answers[i], st)
	}
	return out, nil
}

// runBatch evaluates a Section 4 binding set in one engine batch over
// the transformed system's start terms, sharing visited tuple-term state
// across bindings, then decodes per binding.
func (pl *section4Plan) runBatch(ctx context.Context, db *DB, argSets [][]symtab.Sym) ([]*Answer, error) {
	starts := make([]symtab.Sym, len(argSets))
	for i, args := range argSets {
		s, err := pl.bindStart(args)
		if err != nil {
			return nil, err
		}
		starts[i] = s
	}
	answers, res, err := pl.eng.QueryBatchCtx(ctx, pl.tr.QueryPred, starts)
	if err != nil {
		return nil, err
	}
	st := chainStats(res)
	out := make([]*Answer, len(argSets))
	for i := range argSets {
		rows := pl.tr.DecodeAnswers(answers[i])
		out[i] = db.rowsAnswer(dedupeRows(rowsWithRepeatsCollapsed(rows, pl.tr.FreeVars)), st)
	}
	return out, nil
}

// QueryBatch parses and evaluates many queries at once with default
// options, returning answers in input order. Queries sharing a template
// (same predicate and binding pattern, constants abstracted) are grouped
// onto one compiled plan and evaluated as a single batch — see
// Prepared.RunBatch for how batched bindings share traversal state.
func (db *DB) QueryBatch(queries []string) ([]*Answer, error) {
	return db.QueryBatchOpts(queries, Options{})
}

// QueryBatchOpts is QueryBatch with explicit options.
func (db *DB) QueryBatchOpts(queries []string, opts Options) ([]*Answer, error) {
	type parsedQuery struct {
		q    ast.Query
		tmpl ast.Query
		args []symtab.Sym
	}
	parsed := make([]parsedQuery, len(queries))
	groups := make(map[planKey][]int)
	var order []planKey
	for i, text := range queries {
		q, err := parser.ParseQuery(text, db.st)
		if err != nil {
			return nil, err
		}
		if q.IsBuiltin() {
			return nil, fmt.Errorf("chainlog: query must be an ordinary literal")
		}
		tmpl, args := templateize(q)
		parsed[i] = parsedQuery{q: q, tmpl: tmpl, args: args}
		key := planKey{pred: tmpl.Pred, pattern: patternOf(tmpl), opts: keyOfOptions(opts)}
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], i)
	}

	out := make([]*Answer, len(queries))
	for _, key := range order {
		idxs := groups[key]
		tmpl := parsed[idxs[0]].tmpl
		var p *Prepared
		var built bool
		var err error
		if opts.Trace != nil {
			// Tracing plans carry a caller-specific writer; never cache.
			p, err = db.prepareQuery(tmpl, opts)
			built = p != nil
		} else {
			p, built, err = db.cachedPrepared(tmpl, opts)
		}
		if err != nil {
			return nil, err
		}
		argSets := make([][]symtab.Sym, len(idxs))
		for j, i := range idxs {
			argSets[j] = parsed[i].args
		}
		answers, err := p.RunSymsBatch(argSets)
		if err != nil {
			return nil, err
		}
		if built {
			// Charge plan compilation's store access to the group's first
			// answer, preserving the one-shot Query accounting.
			facts, lookups := p.CompileStats()
			answers[0].Stats.FactsConsulted += facts
			answers[0].Stats.Lookups += lookups
		}
		for j, i := range idxs {
			answers[j].Vars = freeVars(parsed[i].q)
			out[i] = answers[j]
		}
	}
	return out, nil
}
