package chainlog

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// The checked-in qsqnet-vs-seminaive contest: the bound-argument
// non-chain corpus case (testdata/planchoice/qsq-bound-nonchain.json)
// where neither the chain route nor magic compiles, the bound seed
// prunes the search to a small suffix of the graph, and the goal-
// directed net must beat the whole-program fixpoint by at least 5x.

// qsqGateCase loads the corpus case the gate and benchmarks run on.
func qsqGateCase(tb testing.TB) corpusCase {
	tb.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "planchoice", "qsq-bound-nonchain.json"))
	if err != nil {
		tb.Fatal(err)
	}
	var c corpusCase
	if err := json.Unmarshal(raw, &c); err != nil {
		tb.Fatal(err)
	}
	return c
}

func benchQSQGateStrategy(b *testing.B, s Strategy) {
	c := qsqGateCase(b)
	db := loadCorpusDB(b, c)
	p, err := db.Prepare(c.Query, Options{Strategy: s})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := p.Run(c.Args...); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(c.Args...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQSQNetBoundNonChain(b *testing.B)    { benchQSQGateStrategy(b, QSQNet) }
func BenchmarkSeminaiveBoundNonChain(b *testing.B) { benchQSQGateStrategy(b, Seminaive) }

// The gate: Auto must route the case through qsqnet, and qsqnet must
// measure at least 5x faster than the seminaive fallback it replaces.
func TestQSQNetBeatsSeminaiveBoundNonChain(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate; skipped in -short mode")
	}
	c := qsqGateCase(t)
	db := loadCorpusDB(t, c)

	auto, err := db.Prepare(c.Query, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Let the feedback loop settle, as the corpus gate does: the claim
	// covers the choice the optimizer actually keeps, not just the first
	// model pass.
	for i := 0; i < 3; i++ {
		if _, err := auto.Run(c.Args...); err != nil {
			t.Fatal(err)
		}
	}
	if pc := auto.Plan(); pc.Strategy != QSQNet {
		t.Fatalf("Auto settled on %v for the bound non-chain case, want qsqnet (reason %q)", pc.Strategy, pc.Reason)
	}

	qsq, ok := measureStrategy(t, db, c, QSQNet)
	if !ok {
		t.Fatal("qsqnet did not run the gate case")
	}
	semi, ok := measureStrategy(t, db, c, Seminaive)
	if !ok {
		t.Fatal("seminaive did not run the gate case")
	}
	t.Logf("qsqnet %v, seminaive %v (%.1fx)", qsq, semi, float64(semi)/float64(qsq))
	if 5*qsq > semi {
		t.Errorf("qsqnet %v vs seminaive %v: want >= 5x on the bound non-chain case", qsq, semi)
	}
}
