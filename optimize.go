package chainlog

import (
	"math"
	"runtime"
	"sort"
	"strings"

	"chainlog/internal/adorn"
	"chainlog/internal/analysis"
	"chainlog/internal/ast"
	"chainlog/internal/binchain"
	"chainlog/internal/equations"
	"chainlog/internal/optimizer"
	"chainlog/internal/qsqnet"
	"chainlog/internal/stats"
)

// This file maps optimizer decisions onto the compiled plan routes and
// carries the runtime-feedback loop: every Auto-strategy Prepared records
// the Decision it was built from, observes its own work per run, and
// re-costs the choice on the fact-epoch refresh path when the input
// cardinalities drift or the estimate proves wrong — reusing compiled
// plans so a re-optimization never repeats parsing, the equation
// transformation or automaton compilation.

// strategyForName maps an optimizer decision back to the engine Strategy
// it executes as.
func strategyForName(name string) Strategy {
	switch name {
	case optimizer.StrategySeminaive:
		return Seminaive
	case optimizer.StrategyMagic:
		return Magic
	case optimizer.StrategyQSQNet:
		return QSQNet
	default:
		return Chain
	}
}

// optimizeLocked costs the answer-equivalent routes for a derived-query
// template and returns the decision. The caller must hold db.mu (shared
// suffices). Statistics come from the per-DB collector, so repeated
// optimizations between mutations are cache hits.
func (db *DB) optimizeLocked(tmpl ast.Query, opts Options, observed map[string]float64) *optimizer.Decision {
	sub := db.relevantProgram(tmpl.Pred)
	subInfo := analysis.Analyze(sub)
	adorned := tmpl.Adornment()

	// Base predicates referenced by the relevant slice, sorted for a
	// deterministic decision record.
	base := map[string]bool{}
	for _, r := range sub.Rules {
		for _, l := range r.Body {
			if !l.IsBuiltin() && !subInfo.Derived[l.Pred] {
				base[l.Pred] = true
			}
		}
	}
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	rels := make([]*stats.RelStats, 0, len(names))
	for _, name := range names {
		r := db.store.Relation(name)
		if r == nil {
			// No facts yet: an empty snapshot, but keep the name so the
			// drift trigger sees the relation appear later.
			rels = append(rels, &stats.RelStats{Name: name})
			continue
		}
		rels = append(rels, db.statsC.Stats(r))
	}

	in := optimizer.Input{
		Pred:        tmpl.Pred,
		Adornment:   adorned,
		Recursive:   subInfo.RecursiveProgram(),
		Rels:        rels,
		Parallelism: opts.Parallelism,
		MaxProcs:    runtime.GOMAXPROCS(0),
		Observed:    observed,
	}
	probe := db.routeProbeLocked(tmpl, opts, sub, subInfo, adorned)
	in.DirectChain = probe.directChain
	in.ChainAvailable = probe.chainAvailable
	in.SharedAllFree = probe.sharedAllFree
	in.MagicAvailable = probe.magicAvailable
	in.QSQAvailable = probe.qsqAvailable
	if !strings.Contains(adorned, "b") {
		in.Domain = len(db.activeDomainLocked())
	}
	return optimizer.Choose(in)
}

// routeProbe records which evaluation routes genuinely compile for one
// query template — a structural property of the rule set, not the facts.
type routeProbe struct {
	directChain    bool
	chainAvailable bool
	sharedAllFree  bool
	magicAvailable bool
	qsqAvailable   bool
}

// routeProbeLocked probes which routes compile for a template, mirroring
// buildChainPlan: the direct binary automaton, else the Section 4
// transformation; both must also pass the equation transformation
// (nonlinear recursion is chain-shaped but has no chain route). The
// probes also reveal whether the all-free enumeration shares work across
// seeds: only regular solved equations batch, center-linear ones
// restart. Results are memoized per rule epoch so re-optimizations on
// the fact-refresh path never repeat a transformation. The caller must
// hold db.mu (shared suffices).
func (db *DB) routeProbeLocked(tmpl ast.Query, opts Options, sub *ast.Program, subInfo *analysis.Info, adorned string) routeProbe {
	key := tmpl.Pred + "^" + adorned
	if opts.ForceSection4 {
		key += "+s4"
	}
	db.probeMu.Lock()
	if db.probeEpoch != db.ruleEpoch || db.probeCache == nil {
		db.probeCache = make(map[string]routeProbe)
		db.probeEpoch = db.ruleEpoch
	}
	if v, ok := db.probeCache[key]; ok {
		db.probeMu.Unlock()
		return v
	}
	db.probeMu.Unlock()

	var v routeProbe
	if subInfo.BinaryChainProgram() && !opts.ForceSection4 &&
		(adorned == "bf" || adorned == "fb" || adorned == "ff") {
		if sys, err := equations.Transform(sub); err == nil {
			v.directChain = true
			v.chainAvailable = true
			v.sharedAllFree = sys.IsRegularFor(tmpl.Pred)
		}
	}
	if !v.chainAvailable {
		if tr, err := binchain.Transform(db.prog, tmpl, db.store, false); err == nil {
			if sys, eerr := equations.Transform(tr.Program); eerr == nil {
				v.chainAvailable = true
				v.sharedAllFree = sys.IsRegularFor(tr.QueryPred)
			}
		}
	}
	// Magic rejects programs outside the linear adorned class (e.g. two
	// derived body literals); enumerating it anyway would let the model
	// pick a route that silently runs as something else.
	if _, err := adorn.Adorn(db.prog, tmpl); err == nil {
		v.magicAvailable = true
	}
	// The QSQ net handles arbitrary Datalog, but probe anyway so a
	// structural compile failure can never become an optimizer choice.
	if _, err := qsqnet.Compile(sub, tmpl.Pred, adorned); err == nil {
		v.qsqAvailable = true
	}

	db.probeMu.Lock()
	if db.probeEpoch == db.ruleEpoch && db.probeCache != nil {
		db.probeCache[key] = v
	}
	db.probeMu.Unlock()
	return v
}

// buildPlanAuto compiles the route for a template: the explicit route
// when the strategy is pinned (or the predicate is extensional), the
// optimizer's choice under Auto. It returns the plan, the decision (nil
// when the optimizer was bypassed) and the effective strategy the plan
// executes as. The caller must hold db.mu (shared suffices).
func (db *DB) buildPlanAuto(tmpl ast.Query, opts Options) (plan, *optimizer.Decision, Strategy, error) {
	info := db.analysisLocked()
	if opts.Strategy != Auto || !info.Derived[tmpl.Pred] {
		pl, err := db.buildPlan(tmpl, opts)
		return pl, nil, opts.Strategy, err
	}
	if opts.Strict {
		// Strict pins the paper's chain route: every fallback is
		// disabled, so there is nothing for the optimizer to choose
		// between — a binding pattern outside the chain class surfaces
		// its chain-check error instead of a differently-routed plan.
		pl, err := db.buildChainPlan(tmpl, opts)
		return pl, nil, Chain, err
	}
	dec := db.optimizeLocked(tmpl, opts, nil)
	eff := strategyForName(dec.Strategy)
	pl, err := db.buildPlanFor(tmpl, opts, eff, dec)
	return pl, dec, eff, err
}

// buildPlanFor compiles one optimizer-chosen route. Unlike buildPlan it
// only maps the three answer-equivalent strategies, and an
// optimizer-chosen Magic compiles to the chain fallback (magic sets with
// a seminaive last resort), so a cost-model mistake can slow a query
// down but never turn it into an error.
func (db *DB) buildPlanFor(tmpl ast.Query, opts Options, eff Strategy, dec *optimizer.Decision) (plan, error) {
	o := opts
	o.Strategy = eff
	if dec != nil && dec.Parallel && o.Parallelism == 0 {
		// The engine reads Parallelism < 0 as "auto-size the worker pool".
		o.Parallelism = -1
	}
	switch eff {
	case Seminaive:
		return &bottomUpPlan{tmpl: tmpl}, nil
	case Magic:
		return &chainFallbackPlan{tmpl: tmpl}, nil
	case QSQNet:
		pl, err := db.buildQSQNetPlan(tmpl)
		if err != nil {
			// The availability probe compiled this net once already; if the
			// rule set changed underneath, degrade to the always-correct
			// fixpoint rather than surface a build error.
			return &bottomUpPlan{tmpl: tmpl}, nil
		}
		return pl, nil
	default:
		pl, err := db.buildChainPlan(tmpl, o)
		if err != nil {
			// The availability probe said a chain route compiles; if a
			// later compile stage still disagrees, degrade to the
			// binding-directed fallback rather than surface a build error
			// the caller never asked for.
			return &chainFallbackPlan{tmpl: tmpl}, nil
		}
		return pl, nil
	}
}

// installDecision records the optimizer state for a freshly built plan
// (p.plan must already be set). The caller must hold p.mu exclusively,
// or own p uniquely as in prepareQuery.
func (p *Prepared) installDecision(dec *optimizer.Decision, eff Strategy) {
	p.decision = dec
	p.effective.Store(int32(eff))
	p.optimized.Store(dec != nil)
	p.obsWork.Store(0)
	p.feedback.Store(false)
	for i := range p.obsByStrategy {
		p.obsByStrategy[i].Store(0)
	}
	if dec != nil {
		p.estWork.Store(math.Float64bits(dec.EstWork))
		p.builtPlans = map[Strategy]plan{eff: p.plan}
	} else {
		p.estWork.Store(0)
		p.builtPlans = nil
	}
}

// observedWorkLocked snapshots the per-strategy work measurements for
// the optimizer's answer-equivalent routes. The caller holds p.mu.
func (p *Prepared) observedWorkLocked() map[string]float64 {
	names := map[Strategy]string{
		Chain:     optimizer.StrategyChain,
		Seminaive: optimizer.StrategySeminaive,
		Magic:     optimizer.StrategyMagic,
		QSQNet:    optimizer.StrategyQSQNet,
	}
	m := make(map[string]float64, len(names))
	for eff, name := range names {
		if w := math.Float64frombits(p.obsByStrategy[eff].Load()); w > 0 {
			m[name] = w
		}
	}
	return m
}

// currentSizesLocked reads the live tuple counts of the relations a
// decision was based on. The caller must hold db.mu (shared suffices).
func (db *DB) currentSizesLocked(dec *optimizer.Decision) map[string]int {
	now := make(map[string]int, len(dec.Sizes))
	for name := range dec.Sizes {
		if r := db.store.Relation(name); r != nil {
			now[name] = r.Len()
		} else {
			now[name] = 0
		}
	}
	return now
}

// maybeReoptimizeLocked re-costs an Auto plan whose inputs drifted or
// whose runtime feedback contradicts the estimate, switching to the new
// choice's plan. Compiled plans are cached per strategy, so switching
// back and forth never recompiles — the new route only refreshes its
// fact-derived state, exactly like a fact-epoch refresh. The caller
// holds db.mu (shared) and p.mu (exclusive). Reports whether a
// re-optimization ran.
func (p *Prepared) maybeReoptimizeLocked(db *DB) bool {
	if p.decision == nil {
		return false
	}
	feedback := p.feedback.Load()
	drifted := p.decision.Drifted(db.currentSizesLocked(p.decision))
	if !feedback && !drifted {
		return false
	}
	if drifted {
		// The measurements predate the mutation; cost from the model and
		// fresh statistics rather than stale observations.
		for i := range p.obsByStrategy {
			p.obsByStrategy[i].Store(0)
		}
	}
	dec := db.optimizeLocked(p.tmpl, p.opts, p.observedWorkLocked())
	eff := strategyForName(dec.Strategy)
	pl, ok := p.builtPlans[eff]
	if !ok {
		var err error
		pl, err = db.buildPlanFor(p.tmpl, p.opts, eff, dec)
		if err != nil {
			// Keep the working plan; still count the attempt so the churn
			// is visible, and adopt the new baseline so the next refresh
			// does not retry immediately.
			pl = p.plan
		} else {
			p.builtPlans[eff] = pl
		}
	}
	p.plan = pl
	p.decision = dec
	p.effective.Store(int32(eff))
	p.estWork.Store(math.Float64bits(dec.EstWork))
	p.obsWork.Store(0)
	p.feedback.Store(false)
	p.reoptCount++
	db.reopts.Add(1)
	return true
}

// recordWork feeds one run's observed extensional retrievals into the
// plan's exponentially weighted average and flags the plan for
// re-optimization when the average contradicts the cost model's
// estimate by FeedbackDeviation in either direction. Atomic throughout —
// it runs on the hot path under the DB's shared lock.
func (p *Prepared) recordWork(facts int64) {
	if !p.optimized.Load() || facts < 0 {
		return
	}
	obs := math.Float64frombits(p.obsWork.Load())
	if obs == 0 {
		obs = float64(facts)
	} else {
		obs = 0.75*obs + 0.25*float64(facts)
	}
	p.obsWork.Store(math.Float64bits(obs))
	if eff := Strategy(p.effective.Load()); eff >= 0 && eff < strategyCount {
		p.obsByStrategy[eff].Store(math.Float64bits(obs))
	}
	est := math.Float64frombits(p.estWork.Load())
	if est <= 0 {
		return
	}
	hi, lo := obs, est
	if hi < lo {
		hi, lo = lo, hi
	}
	if hi >= float64(optimizer.FeedbackMinWork) && lo*optimizer.FeedbackDeviation < hi {
		p.feedback.Store(true)
	}
}

// Observe feeds a serving-layer measurement back into the plan: the
// request latency (the same value the server's /metrics histograms
// record) and the run's FactsConsulted. The work observation drives the
// re-optimization trigger; the latency average is surfaced via Plan().
// Safe to call concurrently; negative values are ignored.
func (p *Prepared) Observe(seconds float64, factsConsulted int64) {
	if seconds >= 0 {
		obs := math.Float64frombits(p.obsSeconds.Load())
		if obs == 0 {
			obs = seconds
		} else {
			obs = 0.75*obs + 0.25*seconds
		}
		p.obsSeconds.Store(math.Float64bits(obs))
	}
	p.recordWork(factsConsulted)
}

// RejectedPlan is one alternative the optimizer costed and did not pick.
type RejectedPlan struct {
	Strategy string  `json:"strategy"`
	Cost     float64 `json:"cost"`
	Detail   string  `json:"detail"`
}

// PlanChoice describes how a Prepared's evaluation route was chosen.
type PlanChoice struct {
	// Strategy is the route the plan currently executes as. Pinned
	// reports that it came from Options.Strategy, bypassing the
	// optimizer, rather than from the cost model.
	Strategy Strategy `json:"strategy"`
	Pinned   bool     `json:"pinned"`
	// Cost is the chosen alternative's estimated cost and EstWork its
	// expected extensional retrievals per run (0 when pinned).
	Cost    float64 `json:"cost,omitempty"`
	EstWork float64 `json:"est_work,omitempty"`
	// Parallel reports that the optimizer asked for frontier sharding.
	Parallel bool   `json:"parallel,omitempty"`
	Reason   string `json:"reason,omitempty"`
	// Rejected lists the costed alternatives not taken.
	Rejected []RejectedPlan `json:"rejected,omitempty"`
	// Reoptimizations counts how many times runtime feedback or
	// cardinality drift made this handle re-choose its route.
	Reoptimizations uint64 `json:"reoptimizations,omitempty"`
	// ObservedWork and ObservedSeconds are the runtime feedback averages
	// (0 until the plan has run / been Observed).
	ObservedWork    float64 `json:"observed_work,omitempty"`
	ObservedSeconds float64 `json:"observed_seconds,omitempty"`
}

// Plan reports the prepared query's current plan choice: the effective
// strategy, whether it was pinned or cost-chosen, the estimates behind
// the choice, the rejected alternatives, and the feedback state.
func (p *Prepared) Plan() PlanChoice {
	p.mu.RLock()
	defer p.mu.RUnlock()
	pc := PlanChoice{
		Strategy:        Strategy(p.effective.Load()),
		ObservedWork:    math.Float64frombits(p.obsWork.Load()),
		ObservedSeconds: math.Float64frombits(p.obsSeconds.Load()),
	}
	if p.decision == nil {
		pc.Pinned = p.opts.Strategy != Auto
		pc.Reason = "extensional predicate: direct index lookup"
		if pc.Pinned {
			pc.Reason = "strategy " + p.opts.Strategy.String() + " pinned by Options.Strategy (optimizer bypassed)"
		} else if _, base := p.plan.(*basePlan); p.opts.Strict && !base {
			pc.Pinned = true
			pc.Reason = "chain route required by Options.Strict (optimizer bypassed)"
		}
		return pc
	}
	pc.Cost = p.decision.Cost
	pc.EstWork = p.decision.EstWork
	pc.Parallel = p.decision.Parallel
	pc.Reason = p.decision.Reason
	pc.Reoptimizations = p.reoptCount
	for _, a := range p.decision.Rejected {
		pc.Rejected = append(pc.Rejected, RejectedPlan{Strategy: a.Strategy, Cost: a.Cost, Detail: a.Detail})
	}
	return pc
}

// Reoptimizations returns the total number of plan re-optimizations the
// database has performed across all prepared plans — Auto plans
// re-costed because their input cardinalities drifted or their runtime
// feedback contradicted the cost estimate. Exposed by chainlogd as the
// chainlog_plan_reoptimizations_total metric.
func (db *DB) Reoptimizations() uint64 {
	return db.reopts.Load()
}
