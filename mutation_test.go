package chainlog

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"chainlog/internal/automaton"
	"chainlog/internal/equations"
)

// Fact-only mutations move only the fact epoch; rule loads, store
// replacement and Invalidate move the rule epoch.
func TestEpochSplit(t *testing.T) {
	db := mustDB(t, sgSrc)
	r0, f0 := db.Epochs()

	if !db.Assert("up", "zz1", "zz2") {
		t.Fatal("Assert of a new fact returned false")
	}
	r1, f1 := db.Epochs()
	if r1 != r0 || f1 != f0+1 {
		t.Fatalf("Assert moved epochs (%d,%d) -> (%d,%d); want fact-only", r0, f0, r1, f1)
	}
	// Duplicate assert: no movement.
	if db.Assert("up", "zz1", "zz2") {
		t.Fatal("duplicate Assert returned true")
	}
	if r, f := db.Epochs(); r != r1 || f != f1 {
		t.Fatal("duplicate Assert moved an epoch")
	}
	// Retract moves the fact epoch; retracting again does not.
	if !db.Retract("up", "zz1", "zz2") {
		t.Fatal("Retract of a present fact returned false")
	}
	if _, f := db.Epochs(); f != f1+1 {
		t.Fatal("Retract did not move the fact epoch")
	}
	if db.Retract("up", "zz1", "zz2") {
		t.Fatal("second Retract returned true")
	}
	if db.Retract("up", "never", "asserted") {
		t.Fatal("Retract of a never-asserted fact returned true")
	}
	if db.Retract("nosuchpred", "a", "b") {
		t.Fatal("Retract on an unknown predicate returned true")
	}
	// A wrong-arity tuple was never asserted: false no-op, no panic —
	// also inside a Delta, where a panic would abort the batch midway.
	if db.Retract("up", "zz3") {
		t.Fatal("wrong-arity Retract returned true")
	}
	if res := db.Apply((&Delta{}).Retract("up", "zz3")); res != (ApplyResult{}) {
		t.Fatalf("wrong-arity Apply = %+v", res)
	}
	rBefore, fBefore := db.Epochs()

	// A facts-only load is a fact mutation.
	if err := db.LoadProgram("up(zz3, zz4)."); err != nil {
		t.Fatal(err)
	}
	if r, f := db.Epochs(); r != rBefore || f != fBefore+1 {
		t.Fatal("facts-only LoadProgram did not move only the fact epoch")
	}
	// A load with rules is a rule mutation.
	if err := db.LoadProgram("other(X, Y) :- up(X, Y)."); err != nil {
		t.Fatal(err)
	}
	if r, _ := db.Epochs(); r != rBefore+1 {
		t.Fatal("rule LoadProgram did not move the rule epoch")
	}
	db.Invalidate()
	if r, _ := db.Epochs(); r != rBefore+2 {
		t.Fatal("Invalidate did not move the rule epoch")
	}
}

// The acceptance criterion of the live-update engine: a Prepared's Run
// after Assert/Retract performs no plan recompilation — no equation
// transformation and no automaton compilation — while still seeing every
// change.
func TestPreparedNoRecompileOnFactMutation(t *testing.T) {
	db := mustDB(t, `
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
edge(a, b).
`)
	tc, err := db.Prepare("tc(?, Y)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.Run("a"); err != nil {
		t.Fatal(err)
	}

	tBefore, cBefore := equations.TransformCount(), automaton.CompileCount()
	db.Assert("edge", "b", "c")
	ans, err := tc.Run("a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ans.Rows, [][]string{{"b"}, {"c"}}) {
		t.Fatalf("after assert: %v", ans.Rows)
	}
	db.Retract("edge", "b", "c")
	ans, err = tc.Run("a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ans.Rows, [][]string{{"b"}}) {
		t.Fatalf("after retract: %v", ans.Rows)
	}
	// A long churn streak keeps the same compiled plan hot.
	for i := 0; i < 50; i++ {
		db.Assert("edge", "b", fmt.Sprintf("x%d", i))
		if _, err := tc.Run("a"); err != nil {
			t.Fatal(err)
		}
		db.Retract("edge", "b", fmt.Sprintf("x%d", i))
	}
	if tAfter := equations.TransformCount(); tAfter != tBefore {
		t.Fatalf("equation transforms ran on the fact-mutation path: %d -> %d", tBefore, tAfter)
	}
	if cAfter := automaton.CompileCount(); cAfter != cBefore {
		t.Fatalf("automaton compiles ran on the fact-mutation path: %d -> %d", cBefore, cAfter)
	}
}

// Plan-cache accounting across mutation kinds: fact mutations keep the
// cache (hits keep accruing, no recompiles), rule mutations clear it
// (the next query is a miss).
func TestPlanCacheSurvivesFactChurn(t *testing.T) {
	db := mustDB(t, `
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
edge(a, b).
`)
	if _, err := db.Query("tc(a, Y)"); err != nil {
		t.Fatal(err)
	}
	st := db.PlanCacheStats()
	if st.Size != 1 || st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("after first query: %+v", st)
	}

	for i := 0; i < 5; i++ {
		db.Assert("edge", "b", fmt.Sprintf("n%d", i))
		if _, err := db.Query("tc(a, Y)"); err != nil {
			t.Fatal(err)
		}
		db.Retract("edge", "b", fmt.Sprintf("n%d", i))
		if _, err := db.Query("tc(a, Y)"); err != nil {
			t.Fatal(err)
		}
	}
	st = db.PlanCacheStats()
	if st.Size != 1 || st.Misses != 1 || st.Hits != 10 {
		t.Fatalf("after fact churn: %+v, want size 1, 1 miss, 10 hits", st)
	}

	// A rule mutation clears the cache: next query misses.
	if err := db.LoadProgram("tc2(X, Y) :- edge(X, Y)."); err != nil {
		t.Fatal(err)
	}
	st = db.PlanCacheStats()
	if st.Size != 0 {
		t.Fatalf("rule mutation left %d cached plans", st.Size)
	}
	if _, err := db.Query("tc(a, Y)"); err != nil {
		t.Fatal(err)
	}
	st = db.PlanCacheStats()
	if st.Misses != 2 {
		t.Fatalf("after rule mutation: %+v, want a second miss", st)
	}
}

// AssertBatch and Apply mutate atomically: one lock, one fact-epoch
// movement, net-change accounting.
func TestApplyBatch(t *testing.T) {
	db := mustDB(t, `
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
edge(a, b).
`)
	_, f0 := db.Epochs()
	n := db.AssertBatch([]Fact{
		{Pred: "edge", Args: []string{"b", "c"}},
		{Pred: "edge", Args: []string{"c", "d"}},
		{Pred: "edge", Args: []string{"a", "b"}}, // duplicate
	})
	if n != 2 {
		t.Fatalf("AssertBatch inserted %d, want 2", n)
	}
	if _, f := db.Epochs(); f != f0+1 {
		t.Fatalf("AssertBatch moved the fact epoch %d times, want 1", f-f0)
	}
	ans, err := db.Query("tc(a, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ans.Rows, [][]string{{"b"}, {"c"}, {"d"}}) {
		t.Fatalf("after batch: %v", ans.Rows)
	}

	// A mixed delta, in order: assert then retract the same fact nets to
	// absence, so the tmp edge contributes to neither count.
	d := (&Delta{}).
		Assert("edge", "d", "e").
		Retract("edge", "c", "d").
		Assert("edge", "tmp", "tmp2").
		Retract("edge", "tmp", "tmp2").
		Retract("edge", "never", "there")
	res := db.Apply(d)
	if res.Asserted != 1 || res.Retracted != 1 {
		t.Fatalf("Apply = %+v, want 1 asserted, 1 retracted", res)
	}
	ans, err = db.Query("tc(a, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ans.Rows, [][]string{{"b"}, {"c"}}) {
		t.Fatalf("after delta: %v", ans.Rows)
	}
	// An empty or all-no-op delta moves nothing.
	_, f1 := db.Epochs()
	if res := db.Apply(&Delta{}); res != (ApplyResult{}) {
		t.Fatalf("empty Apply = %+v", res)
	}
	if res := db.Apply((&Delta{}).Retract("edge", "never", "there")); res != (ApplyResult{}) {
		t.Fatalf("no-op Apply = %+v", res)
	}
	if _, f := db.Epochs(); f != f1 {
		t.Fatal("no-op Apply moved the fact epoch")
	}
}

// Conflicting operations on the same fact inside one delta must net
// out consistently everywhere: ApplyResult counts, the at-most-one
// epoch move, the stored facts, and a materialized view maintained
// from the delta. Both orderings (assert-then-retract and
// retract-then-assert) are exercised against present and absent facts.
func TestApplyConflictingOps(t *testing.T) {
	db := mustDB(t, `
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
edge(a, b). edge(b, c).
`)
	p, err := db.Prepare("tc(a, Y)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	check := func(step string, res ApplyResult, wantA, wantR int, movedWant bool, f0 uint64, wantRows [][]string) {
		t.Helper()
		if res.Asserted != wantA || res.Retracted != wantR {
			t.Fatalf("%s: Apply = %+v, want {%d %d}", step, res, wantA, wantR)
		}
		_, f := db.Epochs()
		if moved := f != f0; moved != movedWant {
			t.Fatalf("%s: epoch moved=%v, want %v", step, moved, movedWant)
		}
		rows, _ := m.Snapshot()
		if len(rows) == 0 {
			rows = nil
		}
		if !reflect.DeepEqual(rows, wantRows) {
			t.Fatalf("%s: view rows %v, want %v", step, rows, wantRows)
		}
		ans, err := db.Query("tc(a, Y)")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ans.Rows, wantRows) {
			t.Fatalf("%s: query rows %v, want %v", step, ans.Rows, wantRows)
		}
	}

	// Retract-then-assert of a present fact: net no change, no epoch move.
	_, f0 := db.Epochs()
	res := db.Apply((&Delta{}).Retract("edge", "a", "b").Assert("edge", "a", "b"))
	check("retract-assert present", res, 0, 0, false, f0, [][]string{{"b"}, {"c"}})

	// Assert-then-retract of an absent fact: net no change, no epoch move.
	_, f0 = db.Epochs()
	res = db.Apply((&Delta{}).Assert("edge", "c", "d").Retract("edge", "c", "d"))
	check("assert-retract absent", res, 0, 0, false, f0, [][]string{{"b"}, {"c"}})

	// Retract-then-assert of an absent fact: nets to one insertion.
	_, f0 = db.Epochs()
	res = db.Apply((&Delta{}).Retract("edge", "c", "d").Assert("edge", "c", "d"))
	check("retract-assert absent", res, 1, 0, true, f0, [][]string{{"b"}, {"c"}, {"d"}})

	// Assert-then-retract of a present fact: nets to one deletion.
	_, f0 = db.Epochs()
	res = db.Apply((&Delta{}).Assert("edge", "c", "d").Retract("edge", "c", "d"))
	check("assert-retract present", res, 0, 1, true, f0, [][]string{{"b"}, {"c"}})

	// A flip-flop chain collapses to its final state.
	_, f0 = db.Epochs()
	res = db.Apply((&Delta{}).
		Assert("edge", "b", "z").
		Retract("edge", "b", "z").
		Assert("edge", "b", "z").
		Retract("edge", "a", "b").
		Assert("edge", "a", "b"))
	check("flip-flop", res, 1, 0, true, f0, [][]string{{"b"}, {"c"}, {"z"}})
}

// The Hunt strategy bakes facts into its preconstructed graph; a fact
// mutation must rebuild that plan (it does not implement the in-place
// refresh) and the rebuilt plan must see the change.
func TestHuntRebuildsOnFactMutation(t *testing.T) {
	db := mustDB(t, `
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
edge(a, b).
`)
	p, err := db.Prepare("tc(?, Y)", Options{Strategy: Hunt})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run("a"); err != nil {
		t.Fatal(err)
	}
	db.Assert("edge", "b", "c")
	ans, err := p.Run("a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ans.Rows, [][]string{{"b"}, {"c"}}) {
		t.Fatalf("hunt after assert: %v", ans.Rows)
	}
	db.Retract("edge", "b", "c")
	ans, err = p.Run("a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ans.Rows, [][]string{{"b"}}) {
		t.Fatalf("hunt after retract: %v", ans.Rows)
	}
}

// Asserting constants the symbol table has never seen grows the Sym
// domain past the bound the plan's dense visited pages were sized for;
// the pages must grow mid-lifetime rather than truncate answers.
func TestSymBoundGrowsMidLifetime(t *testing.T) {
	db := mustDB(t, `
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
edge(a, b).
`)
	p, err := db.Prepare("tc(?, Y)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run("a"); err != nil {
		t.Fatal(err)
	}
	// A chain of brand-new constants, appended one hop at a time.
	prev := "b"
	for i := 0; i < 200; i++ {
		next := fmt.Sprintf("fresh%d", i)
		db.Assert("edge", prev, next)
		prev = next
	}
	ans, err := p.Run("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 201 {
		t.Fatalf("got %d reachable nodes, want 201", len(ans.Rows))
	}
	if ans.Rows[len(ans.Rows)-1][0] != "fresh99" { // lexicographic sort: fresh99 is last
		t.Fatalf("unexpected last row %v", ans.Rows[len(ans.Rows)-1])
	}
}

// A plan prepared before its base relation has any facts starts on the
// by-name path; once facts materialize the relation, the fact-epoch
// refresh must upgrade it (and answer correctly either way).
func TestRefreshResolvesLateRelation(t *testing.T) {
	db := NewDB()
	if err := db.LoadProgram(`
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
`); err != nil {
		t.Fatal(err)
	}
	p, err := db.Prepare("tc(?, Y)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	ans, err := p.Run("a")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 0 {
		t.Fatalf("empty DB answered %v", ans.Rows)
	}
	db.Assert("edge", "a", "b")
	db.Assert("edge", "b", "c")
	tBefore, cBefore := equations.TransformCount(), automaton.CompileCount()
	ans, err = p.Run("a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ans.Rows, [][]string{{"b"}, {"c"}}) {
		t.Fatalf("after materializing edge: %v", ans.Rows)
	}
	if equations.TransformCount() != tBefore || automaton.CompileCount() != cBefore {
		t.Fatal("late relation materialization recompiled the plan")
	}
}

// Retractions must not resurface through persistence: DumpFacts writes
// only live facts and the dump round-trips into an equivalent DB.
func TestPersistRetractRoundTrip(t *testing.T) {
	db := mustDB(t, `
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
edge(a, b). edge(b, c). edge(c, d).
`)
	db.Retract("edge", "b", "c")
	db.Assert("edge", "b", "e")

	var facts, rules bytes.Buffer
	if err := db.DumpFacts(&facts); err != nil {
		t.Fatal(err)
	}
	if err := db.DumpRules(&rules); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(facts.String(), "edge(b,c)") {
		t.Fatalf("retracted fact in dump:\n%s", facts.String())
	}

	re := NewDB()
	if err := re.LoadProgram(rules.String()); err != nil {
		t.Fatal(err)
	}
	if err := re.LoadProgram(facts.String()); err != nil {
		t.Fatal(err)
	}
	want, err := db.Query("tc(a, Y)")
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.Query("tc(a, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("round trip: %v vs %v", got.Rows, want.Rows)
	}
	if !reflect.DeepEqual(want.Rows, [][]string{{"b"}, {"e"}}) {
		t.Fatalf("post-retract answers: %v", want.Rows)
	}
}

// Concurrent Runs race Apply batches; run with -race. Every answer must
// be internally consistent (a state the DB actually passed through: the
// alternating delta keeps exactly one of two worlds visible) and the
// final state must be exact.
func TestConcurrentRunDuringApply(t *testing.T) {
	db := mustDB(t, `
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
edge(a, b). edge(b, c).
`)
	p, err := db.Prepare("tc(?, Y)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	withD := [][]string{{"b"}, {"c"}, {"d"}}
	withoutD := [][]string{{"b"}, {"c"}}

	const runners = 8
	iters := 150
	if testing.Short() {
		iters = 40
	}
	var wg sync.WaitGroup
	errs := make(chan error, runners+1)
	stop := make(chan struct{})
	for g := 0; g < runners; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ans, err := p.Run("a")
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(ans.Rows, withD) && !reflect.DeepEqual(ans.Rows, withoutD) {
					errs <- fmt.Errorf("inconsistent snapshot: %v", ans.Rows)
					return
				}
			}
		}()
	}
	for i := 0; i < iters; i++ {
		db.Apply((&Delta{}).Assert("edge", "c", "d"))
		db.Apply((&Delta{}).Retract("edge", "c", "d"))
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	ans, err := p.Run("a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ans.Rows, withoutD) {
		t.Fatalf("final state: %v", ans.Rows)
	}
}
