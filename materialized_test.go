package chainlog

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

func TestMaterializeBasics(t *testing.T) {
	db := mustDB(t, `
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
edge(a, b). edge(b, c).
`)
	p, err := db.Prepare("tc(?, Y)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Materialize(); err == nil {
		t.Fatal("Materialize with missing parameter did not fail")
	}
	m, err := p.Materialize("a")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if got := m.Vars(); !reflect.DeepEqual(got, []string{"Y"}) {
		t.Fatalf("Vars = %v", got)
	}
	rows, epoch := m.Snapshot()
	if !reflect.DeepEqual(rows, [][]string{{"b"}, {"c"}}) {
		t.Fatalf("initial rows %v", rows)
	}
	if epoch != m.Epoch() || epoch != db.FactEpoch() {
		t.Fatalf("epoch %d, view %d, db %d", epoch, m.Epoch(), db.FactEpoch())
	}
	if db.Views() != 1 {
		t.Fatalf("Views = %d", db.Views())
	}

	db.Assert("edge", "c", "d")
	rows, _ = m.Snapshot()
	if !reflect.DeepEqual(rows, [][]string{{"b"}, {"c"}, {"d"}}) {
		t.Fatalf("after assert: %v", rows)
	}
	db.Retract("edge", "a", "b")
	rows, _ = m.Snapshot()
	if rows != nil && len(rows) != 0 {
		t.Fatalf("after cut: %v", rows)
	}
	st := m.Stats()
	if st.Maintained != 2 || st.Recomputed != 0 {
		t.Fatalf("stats %+v, want 2 maintained, 0 recomputed", st)
	}
	maintained, recomputed := db.ViewStats()
	if maintained != 2 || recomputed != 0 {
		t.Fatalf("db view stats %d/%d", maintained, recomputed)
	}
}

func TestMaterializeBooleanQuery(t *testing.T) {
	db := mustDB(t, `
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
edge(a, b). edge(b, c).
`)
	p, err := db.Prepare("tc(?, ?)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.Materialize("a", "c")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if !m.True() {
		t.Fatal("tc(a,c) should hold")
	}
	db.Retract("edge", "b", "c")
	if m.True() {
		t.Fatal("tc(a,c) should no longer hold")
	}
	db.Assert("edge", "a", "c")
	if !m.True() {
		t.Fatal("tc(a,c) should hold again")
	}
}

// A rule load recomputes open views and bumps the generation, so every
// outstanding change cursor resets.
func TestMaterializeRuleLoadRecomputes(t *testing.T) {
	db := mustDB(t, `
tc(X, Y) :- edge(X, Y).
edge(a, b). edge(b, c).
`)
	p, err := db.Prepare("tc(a, Y)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	_, epoch, gen := m.State()
	if rows, _ := m.Snapshot(); !reflect.DeepEqual(rows, [][]string{{"b"}}) {
		t.Fatalf("pre-rule rows %v", rows)
	}
	if err := db.LoadProgram(`tc(X, Z) :- edge(X, Y), tc(Y, Z).`); err != nil {
		t.Fatal(err)
	}
	rows, _, gen2 := m.State()
	if !reflect.DeepEqual(rows, [][]string{{"b"}, {"c"}}) {
		t.Fatalf("post-rule rows %v", rows)
	}
	if gen2 == gen {
		t.Fatal("rule load did not bump the view generation")
	}
	if _, ok := m.Changes(epoch, gen); ok {
		t.Fatal("stale-generation cursor resumed; must force a reset")
	}
	if st := m.Stats(); st.Recomputed == 0 {
		t.Fatalf("stats %+v, want a recompute", st)
	}
}

// Falling further behind than the change ring retains forces a
// snapshot reset; within the ring, resume returns exactly the missed
// deltas once, in epoch order.
func TestMaterializeChangeLogResume(t *testing.T) {
	db := mustDB(t, `
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
edge(r, s).
`)
	p, err := db.Prepare("tc(r, Y)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	_, cursor, gen := m.State()

	db.Assert("edge", "s", "t")
	db.Assert("edge", "t", "u")
	db.Retract("edge", "t", "u")
	sets, ok := m.Changes(cursor, gen)
	if !ok {
		t.Fatal("in-window resume failed")
	}
	if len(sets) != 3 {
		t.Fatalf("got %d change sets, want 3", len(sets))
	}
	if !reflect.DeepEqual(sets[0].Added, [][]string{{"t"}}) || len(sets[0].Removed) != 0 {
		t.Fatalf("set 0: %+v", sets[0])
	}
	if !reflect.DeepEqual(sets[1].Added, [][]string{{"u"}}) {
		t.Fatalf("set 1: %+v", sets[1])
	}
	if !reflect.DeepEqual(sets[2].Removed, [][]string{{"u"}}) {
		t.Fatalf("set 2: %+v", sets[2])
	}
	for i := 1; i < len(sets); i++ {
		if sets[i].Epoch <= sets[i-1].Epoch {
			t.Fatal("change sets out of epoch order")
		}
	}

	// Overflow the ring: the old cursor must be refused.
	for i := 0; i < maxChangeLog+8; i++ {
		db.Assert("edge", "s", fmt.Sprintf("x%d", i))
		db.Retract("edge", "s", fmt.Sprintf("x%d", i))
	}
	if _, ok := m.Changes(cursor, gen); ok {
		t.Fatal("cursor beyond the retained ring resumed")
	}
	rows, cursor2, gen2 := m.State()
	if !reflect.DeepEqual(rows, [][]string{{"s"}, {"t"}}) {
		t.Fatalf("post-overflow rows %v", rows)
	}
	if sets, ok := m.Changes(cursor2, gen2); !ok || len(sets) != 0 {
		t.Fatalf("fresh cursor: ok=%v sets=%d", ok, len(sets))
	}
}

func TestMaterializeUpdatesWake(t *testing.T) {
	db := mustDB(t, `
tc(X, Y) :- edge(X, Y).
edge(a, b).
`)
	p, err := db.Prepare("tc(a, Y)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ch := m.Updates()
	select {
	case <-ch:
		t.Fatal("Updates fired before any change")
	default:
	}
	// An irrelevant-to-the-answer mutation that still changes the
	// answer... this one does change it:
	db.Assert("edge", "a", "c")
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("Updates did not fire on an answer change")
	}
	// A mutation that cannot affect the answer must not wake waiters.
	ch = m.Updates()
	db.Assert("edge", "zz", "zz")
	select {
	case <-ch:
		t.Fatal("Updates fired for a no-effect mutation")
	default:
	}
	// Close wakes everything blocked on Updates.
	m.Close()
	select {
	case <-m.Updates():
	default:
		t.Fatal("Updates did not wake on Close")
	}
}

// Mutations far from the answer cone are absorbed incrementally, never
// by recompute, and leave the answer untouched.
func TestMaterializeIrrelevantChurn(t *testing.T) {
	db := mustDB(t, `
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
other(X, Y) :- blob(X, Y).
edge(a, b). edge(b, c).
`)
	p, err := db.Prepare("tc(a, Y)", Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for i := 0; i < 50; i++ {
		db.Assert("blob", fmt.Sprintf("n%d", i), "x")
	}
	rows, _ := m.Snapshot()
	if !reflect.DeepEqual(rows, [][]string{{"b"}, {"c"}}) {
		t.Fatalf("rows changed under irrelevant churn: %v", rows)
	}
	if st := m.Stats(); st.Recomputed != 0 {
		t.Fatalf("irrelevant churn triggered a recompute: %+v", st)
	}
}
