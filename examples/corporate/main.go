// Corporate logistics: a ternary linearly recursive query — reachability
// through a shipping network restricted to one carrier class — evaluated
// via the Section 4 transformation. The class argument is a bound
// argument that the adornment propagates through the recursion, so each
// query touches only the selected carrier's routes.
//
//	go run ./examples/corporate
package main

import (
	"fmt"
	"log"
	"math/rand"

	"chainlog"
)

const rules = `
% ships(D1, C, D2): carrier class C runs a leg from depot D1 to depot D2.
% route(X, C, Y): Y is reachable from X using only class-C legs.
route(X, C, Y) :- ships(X, C, Y).
route(X, C, Y) :- ships(X, C, Z), route(Z, C, Y).
`

func main() {
	db := chainlog.NewDB()
	if err := db.LoadProgram(rules); err != nil {
		log.Fatal(err)
	}

	// Two overlaid networks over the same depots: "air" is a sparse
	// long-haul web, "truck" a denser local one.
	rng := rand.New(rand.NewSource(11))
	const depots = 40
	name := func(i int) string { return fmt.Sprintf("d%02d", i) }
	for i := 0; i < depots; i++ {
		// Truck ring plus shortcuts.
		db.Assert("ships", name(i), "truck", name((i+1)%depots))
		if rng.Intn(3) == 0 {
			db.Assert("ships", name(i), "truck", name(rng.Intn(depots)))
		}
		// Sparse air hops.
		if i%5 == 0 {
			db.Assert("ships", name(i), "air", name((i+10)%depots))
		}
	}

	// Show the compiled binary-chain program for the bound-class query.
	text, err := db.Explain("route(d00, air, Y)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- compilation of route(d00, air, Y) ---")
	fmt.Println(text)

	for _, class := range []string{"air", "truck"} {
		q := fmt.Sprintf("route(d00, %s, Y)", class)
		ans, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d depots reachable (facts consulted: %d, iterations: %d)\n",
			q, len(ans.Rows), ans.Stats.FactsConsulted, ans.Stats.Iterations)
	}

	// A fully bound check routes both bindings through the adornment.
	ans, err := db.Query("route(d00, air, d30)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("route(d00, air, d30) = %v\n", ans.True)

	// Cross-check against seminaive, which computes the route relation
	// for every class at once.
	sn, err := db.QueryOpts("route(d00, air, Y)", chainlog.Options{Strategy: chainlog.Seminaive})
	if err != nil {
		log.Fatal(err)
	}
	ch, err := db.Query("route(d00, air, Y)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seminaive agrees (%d answers) but consulted %d facts vs %d\n",
		len(sn.Rows), sn.Stats.FactsConsulted, ch.Stats.FactsConsulted)
}
