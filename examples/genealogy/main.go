// Genealogy: regular (right-/left-linear) queries — ancestor and
// descendant — evaluated in a single traversal iteration (Theorem 3),
// including inverse (p(X, b)) and all-pairs (p(X, Y)) query modes, with a
// strategy comparison on a generated family tree.
//
//	go run ./examples/genealogy
package main

import (
	"fmt"
	"log"
	"time"

	"chainlog"
)

const rules = `
% ancestor is right-linear: regular, so the Lemma 1 system is a pure
% regular expression over parent and the traversal needs one iteration.
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).

% sibling-or-self: a left-linear flourish over the same data.
kin(X, Y) :- parent(X, P), parent(Y, P).
`

func main() {
	db := chainlog.NewDB()
	if err := db.LoadProgram(rules); err != nil {
		log.Fatal(err)
	}

	// A synthetic 4-generation family: person g<generation>_<i> has
	// parent g<generation-1>_<i/2>.
	const gens, width = 5, 16
	for g := 1; g < gens; g++ {
		for i := 0; i < width; i++ {
			child := fmt.Sprintf("g%d_%d", g, i)
			parent := fmt.Sprintf("g%d_%d", g-1, i/2)
			db.Assert("parent", child, parent)
		}
	}

	fmt.Println("classification:", db.Classify())

	// Bound-first query: all ancestors of g4_7.
	ans, err := db.Query("ancestor(g4_7, Y)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nancestors of g4_7 (%d):", len(ans.Rows))
	for _, r := range ans.Rows {
		fmt.Printf(" %s", r[0])
	}
	fmt.Printf("\n(iterations=%d — regular programs finish in one)\n", ans.Stats.Iterations)

	// Inverse query: all descendants of g0_0 via ancestor(X, g0_0).
	desc, err := db.Query("ancestor(X, g0_0)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndescendants of g0_0: %d people\n", len(desc.Rows))

	// All-pairs via the Tarjan-condensation path.
	all, err := db.Query("ancestor(X, Y)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full ancestor relation: %d pairs\n", len(all.Rows))

	// kin is a join view (non-recursive): evaluated directly.
	kin, err := db.Query("kin(g4_7, Y)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kin of g4_7: %v\n", kin.Rows)

	// Strategy shoot-out on the bound ancestor query.
	fmt.Println("\nstrategy comparison for ancestor(g4_7, Y):")
	for _, s := range []chainlog.Strategy{
		chainlog.Chain, chainlog.Hunt, chainlog.Seminaive, chainlog.Magic,
	} {
		start := time.Now()
		a, err := db.QueryOpts("ancestor(g4_7, Y)", chainlog.Options{Strategy: s})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10v %d answers, %6d facts consulted, %v\n",
			s, len(a.Rows), a.Stats.FactsConsulted, time.Since(start).Round(time.Microsecond))
	}
}
