// Quickstart: the paper's same-generation query evaluated with the
// graph-traversal strategy and cross-checked against the classical
// methods.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"chainlog"
)

const program = `
% sg(X, Y): X and Y are cousins at the same generation.
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).

% A small family: up is child->parent, down is parent->child, and flat
% links every person to itself.
up(john, carol).  up(ann, carol).   up(bob, david).
up(carol, eve).   up(david, eve).
flat(eve, eve).   flat(carol, carol). flat(david, david).
down(eve, carol). down(eve, david).
down(carol, john). down(carol, ann). down(david, bob).
`

func main() {
	db := chainlog.NewDB()
	if err := db.LoadProgram(program); err != nil {
		log.Fatal(err)
	}

	// How the engine sees the program.
	c := db.Classify()
	fmt.Printf("program classes: recursive=%v linear=%v binary-chain=%v regular=%v\n\n",
		c.Recursive, c.Linear, c.BinaryChain, c.Regular)

	// The default strategy is the paper's demand-driven graph traversal.
	ans, err := db.Query("sg(john, Y)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sg(john, Y) — same-generation cousins of john:")
	for _, row := range ans.Rows {
		fmt.Printf("  %s\n", row[0])
	}
	fmt.Printf("iterations=%d graph-nodes=%d facts-consulted=%d\n\n",
		ans.Stats.Iterations, ans.Stats.Nodes, ans.Stats.FactsConsulted)

	// Every classical strategy agrees.
	for _, s := range []chainlog.Strategy{
		chainlog.Naive, chainlog.Seminaive, chainlog.Magic,
		chainlog.Counting, chainlog.HenschenNaqvi,
	} {
		a, err := db.QueryOpts("sg(john, Y)", chainlog.Options{Strategy: s})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16v -> %d answers, %d facts consulted\n", s, len(a.Rows), a.Stats.FactsConsulted)
	}

	// Boolean queries bind both arguments and route through the
	// Section 4 transformation, using both bindings.
	both, err := db.Query("sg(john, bob)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsg(john, bob) = %v (cousins via eve)\n", both.True)
}
