// Quickstart: the paper's same-generation query, prepared once and run
// for many bound constants — the paper's "fixed automaton hierarchy
// driven by the query constant" surfaced as an API — then cross-checked
// against the classical strategies.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"

	"chainlog"
)

const program = `
% sg(X, Y): X and Y are cousins at the same generation.
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).

% A small family: up is child->parent, down is parent->child, and flat
% links every person to itself.
up(john, carol).  up(ann, carol).   up(bob, david).
up(carol, eve).   up(david, eve).
flat(eve, eve).   flat(carol, carol). flat(david, david).
down(eve, carol). down(eve, david).
down(carol, john). down(carol, ann). down(david, bob).
`

func main() {
	db := chainlog.NewDB()
	if err := db.LoadProgram(program); err != nil {
		log.Fatal(err)
	}

	// How the engine sees the program.
	c := db.Classify()
	fmt.Printf("program classes: recursive=%v linear=%v binary-chain=%v regular=%v\n\n",
		c.Recursive, c.Linear, c.BinaryChain, c.Regular)

	// Prepare compiles the query once: program slicing, classification,
	// the Lemma 1 equation build and automaton construction all happen
	// here. '?' marks the bound argument supplied per run.
	sg, err := db.Prepare("sg(?, Y)", chainlog.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Run only executes the demand-driven traversal — bind many.
	for _, who := range []string{"john", "ann", "bob"} {
		ans, err := sg.Run(who)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sg(%s, Y): same-generation cousins:\n", who)
		for _, row := range ans.Rows {
			fmt.Printf("  %s\n", row[0])
		}
		fmt.Printf("  iterations=%d graph-nodes=%d facts-consulted=%d\n",
			ans.Stats.Iterations, ans.Stats.Nodes, ans.Stats.FactsConsulted)
	}

	// A Prepared is safe for concurrent use: goroutines share the plan,
	// each running it with its own constant.
	var wg sync.WaitGroup
	results := make([]int, 3)
	for i, who := range []string{"john", "ann", "bob"} {
		wg.Add(1)
		go func(i int, who string) {
			defer wg.Done()
			ans, err := sg.Run(who)
			if err != nil {
				log.Fatal(err)
			}
			results[i] = len(ans.Rows)
		}(i, who)
	}
	wg.Wait()
	fmt.Printf("\nconcurrent runs: answer counts %v\n\n", results)

	// One-shot queries work too, and hit the same plan cache: the second
	// query below reuses the plan the first one compiled.
	if _, err := db.Query("sg(carol, Y)"); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Query("sg(david, Y)"); err != nil {
		log.Fatal(err)
	}
	pc := db.PlanCacheStats()
	fmt.Printf("plan cache: %d plans, %d hits, %d misses\n\n", pc.Size, pc.Hits, pc.Misses)

	// Every classical strategy agrees.
	for _, s := range []chainlog.Strategy{
		chainlog.Naive, chainlog.Seminaive, chainlog.Magic,
		chainlog.Counting, chainlog.HenschenNaqvi,
	} {
		a, err := db.QueryOpts("sg(john, Y)", chainlog.Options{Strategy: s})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16v -> %d answers, %d facts consulted\n", s, len(a.Rows), a.Stats.FactsConsulted)
	}

	// Boolean templates bind both arguments and route through the
	// Section 4 transformation, using both bindings.
	isCousin, err := db.Prepare("sg(?, ?)", chainlog.Options{})
	if err != nil {
		log.Fatal(err)
	}
	both, err := isCousin.Run("john", "bob")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsg(john, bob) = %v (cousins via eve)\n", both.True)
}
