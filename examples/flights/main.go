// Flights: the Section 4 example — an n-ary linearly recursive query over
// a flight database, evaluated by transforming it into a binary-chain
// program whose tuple-term relations are joined on demand, so the query's
// bindings (source airport and departure time) restrict the facts
// consulted.
//
//	go run ./examples/flights
package main

import (
	"fmt"
	"log"

	"chainlog"
)

const rules = `
% cnx(S, DT, D, AT): departing S at DT you can reach D arriving at AT.
cnx(S, DT, D, AT) :- flight(S, DT, D, AT).
cnx(S, DT, D, AT) :- flight(S, DT, D1, AT1), AT1 < DT1, is_deptime(DT1),
                     cnx(D1, DT1, D, AT).
`

const facts = `
flight(hel, 900,  sto, 1000).
flight(hel, 1000, ber, 1230).
flight(sto, 1100, par, 1300).
flight(sto, 930,  osl, 1030).
flight(osl, 1200, cdg, 1500).
flight(par, 1400, nyc, 2000).
flight(ber, 1300, mad, 1530).
flight(nyc, 2200, sfo, 2500).

is_deptime(900).  is_deptime(1000). is_deptime(1100). is_deptime(930).
is_deptime(1200). is_deptime(1400). is_deptime(1300). is_deptime(2200).
`

func main() {
	db := chainlog.NewDB()
	if err := db.LoadProgram(rules + facts); err != nil {
		log.Fatal(err)
	}

	// Show the compilation route: adorned program + binary-chain program.
	text, err := db.Explain("cnx(hel, 900, D, AT)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- compilation of cnx(hel, 900, D, AT) ---")
	fmt.Println(text)

	ans, err := db.Query("cnx(hel, 900, D, AT)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- connections from hel departing 900 ---")
	fmt.Println("dest\tarrives")
	for _, row := range ans.Rows {
		fmt.Printf("%s\t%s\n", row[0], row[1])
	}
	fmt.Printf("(facts consulted: %d)\n\n", ans.Stats.FactsConsulted)

	// The 9:30 Stockholm–Oslo leg is not usable after arriving at 10:00:
	// the built-in AT1 < DT1 prunes it, so osl/cdg appear only via later
	// departures if any exist.
	check, err := db.Query("cnx(hel, 900, osl, 1030)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cnx(hel, 900, osl, 1030) = %v (9:30 departure is before the 10:00 arrival)\n", check.True)

	// Seminaive agrees but computes the whole cnx relation.
	sn, err := db.QueryOpts("cnx(hel, 900, D, AT)", chainlog.Options{Strategy: chainlog.Seminaive})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seminaive agrees: %v answers (facts consulted: %d)\n", len(sn.Rows), sn.Stats.FactsConsulted)
}
