// Package chainlog is a deductive-database engine implementing the
// recursive-query evaluation strategy of Grahne, Sippu and
// Soisalon-Soininen, "Efficient Evaluation for a Subset of Recursive
// Queries" (PODS 1987; J. Logic Programming 1991).
//
// The engine evaluates regularly and linearly recursive Datalog queries
// by translating recursion into graph traversal:
//
//  1. a linear binary-chain program is transformed into a system of
//     equations over binary relations with operators ∪, · and *
//     (Lemma 1);
//  2. each equation compiles to a finite automaton M(e_p), and a query
//     p(a, Y) is evaluated by a demand-driven traversal of the
//     interpretation graph of the automaton hierarchy EM(p,i)
//     (Figures 4–5);
//  3. queries over n-ary linearly recursive predicates are reduced to
//     binary-chain queries over tuple terms, with the query's bindings
//     propagated into the transformed program so only relevant facts are
//     consulted (Section 4).
//
// The package also ships the classical strategies the paper compares
// against — naive and seminaive bottom-up evaluation, magic sets,
// counting, reverse counting, Henschen–Naqvi, and the Hunt-Szymanski-
// Ullman preconstruction algorithm — selectable per query, so workloads
// can be measured under every strategy on identical data.
//
// # Quick start
//
// The paper's central observation is that a query compiles to a fixed
// automaton hierarchy that is then driven by the bound constant. The API
// mirrors that: Prepare compiles a parameterized query template once, and
// the returned plan is run for any number of constants, from any number
// of goroutines:
//
//	db := chainlog.NewDB()
//	err := db.LoadProgram(`
//	    sg(X, Y) :- flat(X, Y).
//	    sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
//	    up(john, mary).  flat(mary, mary).  down(mary, ann).
//	`)
//	sg, err := db.Prepare("sg(?, Y)", chainlog.Options{})
//	ans, err := sg.Run("john")
//	// ans.Rows == [][]string{{"ann"}, ...}
//
// One-shot queries work too, and are internally routed through a plan
// cache keyed by (predicate, binding pattern, options), so repeating a
// query shape with different constants reuses the compiled plan:
//
//	ans, err := db.Query("sg(john, Y)")
//
// # Concurrency and live updates
//
// A DB guards its program and fact store with a readers-writer lock:
// any number of goroutines may Query / Run prepared plans concurrently,
// while mutations take the exclusive lock. Mutations are tracked by two
// epochs, because a compiled plan depends only on the rules while
// evaluation reads the facts:
//
//   - the rule epoch moves on LoadProgram (when rules were added),
//     SetStore and Invalidate. Cached plans are discarded and Prepared
//     handles recompile transparently on their next Run.
//   - the fact epoch moves on Assert, Retract, AssertBatch and Apply.
//     Compiled plans survive: on its next Run a Prepared merely
//     refreshes its pre-resolved relation pointers, and the extensional
//     store absorbs the change as an incremental CSR overlay instead of
//     rebuilding its adjacency.
//
// Facts can therefore churn at traffic rates — the hot serving path
// after a single Assert or Retract performs no parsing, no equation
// transformation and no automaton compilation.
package chainlog

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"chainlog/internal/analysis"
	"chainlog/internal/ast"
	"chainlog/internal/edb"
	"chainlog/internal/ivm"
	"chainlog/internal/parser"
	"chainlog/internal/snapshot"
	"chainlog/internal/stats"
	"chainlog/internal/symtab"
)

// DB holds a Datalog program (the intensional database) and a fact store
// (the extensional database).
//
// A DB is safe for concurrent use: queries and prepared-plan runs take a
// shared read lock, mutations take the exclusive write lock.
type DB struct {
	// mu guards prog and store structure. Readers (queries, plan runs,
	// compilation) share it; writers (LoadProgram, Assert, SetStore)
	// hold it exclusively.
	mu    sync.RWMutex
	st    *symtab.Table
	store *edb.Store
	prog  *ast.Program

	// ruleEpoch counts mutations that change the compiled world: rule
	// additions, store replacement, explicit invalidation. factEpoch
	// counts fact-only mutations (Assert/Retract and their batched
	// forms). Every derived artifact records the epoch(s) it was
	// computed at: plans recompile only when the rule epoch moves and
	// absorb fact-epoch movement in place.
	ruleEpoch uint64
	factEpoch uint64

	// analysisMu guards the memoized Section 2 classification, which
	// depends only on the rules.
	analysisMu sync.Mutex
	info       *analysis.Info
	infoEpoch  uint64

	// domainMu guards the memoized active domain, which reads the facts.
	domainMu   sync.Mutex
	domain     []symtab.Sym
	domainRule uint64
	domainFact uint64

	// plans is the prepared-plan cache behind Query/QueryOpts.
	plans planCache

	// statsC caches the per-relation statistics snapshots behind the
	// cost-based optimizer, validated by relation version. reopts counts
	// plan re-optimizations across all prepared plans (the
	// chainlog_plan_reoptimizations_total metric).
	statsC stats.Collector
	reopts atomic.Uint64

	// probeMu guards the memoized route-availability probes (which
	// compile-check the chain and magic routes for a template); they
	// depend only on the rules, so the cache is keyed by rule epoch.
	probeMu    sync.Mutex
	probeCache map[string]routeProbe
	probeEpoch uint64

	// viewMu guards the registry of materialized views. Mutators notify
	// views while holding db.mu exclusively, so the lock order is
	// db.mu -> viewMu -> (each view's own lock); view read methods never
	// take db.mu. The counters aggregate maintained-vs-recomputed work
	// across all views for metrics.
	viewMu         sync.Mutex
	views          map[*Materialized]struct{}
	viewMaintained atomic.Uint64
	viewRecomputed atomic.Uint64

	// snap, when the DB was built by OpenSnapshot, owns the mapped
	// snapshot backing the symbol table and store. Close releases it.
	snap *snapshot.File
}

// NewDB returns an empty database.
func NewDB() *DB {
	st := symtab.NewTable()
	return &DB{st: st, store: edb.NewStore(st), prog: &ast.Program{}, ruleEpoch: 1, factEpoch: 1}
}

// bumpRuleEpoch invalidates every derived artifact; the caller must hold
// db.mu exclusively. The plan cache is emptied too, so plans compiled
// against a replaced program or store do not pin it in memory (a stale
// entry rebuilds from scratch anyway, so dropping it loses nothing).
// Prepared handles held by callers still self-heal on their next Run.
func (db *DB) bumpRuleEpoch() {
	db.ruleEpoch++
	db.plans.clear()
	// A store swap can re-bind relation names to different relations, so
	// version-validated statistics snapshots must go too.
	db.statsC.Invalidate()
}

// bumpFactEpoch records a fact-only mutation; the caller must hold db.mu
// exclusively. Cached plans are deliberately kept: a Prepared absorbs a
// fact-epoch movement by refreshing its relation pointers, not by
// recompiling, so the plan cache survives fact churn.
func (db *DB) bumpFactEpoch() {
	db.factEpoch++
}

// LoadProgram parses Datalog text and adds its rules to the intensional
// database and its facts to the extensional database. A load that adds
// rules moves the rule epoch (cached plans recompile); a facts-only load
// moves only the fact epoch, like Assert.
func (db *DB) LoadProgram(src string) error {
	res, err := parser.Parse(src, db.st)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.prog.Rules = append(db.prog.Rules, res.Program.Rules...)
	derived := db.prog.DerivedSet()
	for _, f := range res.Facts {
		if derived[f.Pred] {
			// Roll back the rules added above so a failed load leaves the
			// program unchanged.
			db.prog.Rules = db.prog.Rules[:len(db.prog.Rules)-len(res.Program.Rules)]
			return fmt.Errorf("chainlog: %s appears both as a fact and a rule head", f.Pred)
		}
	}
	var ins []ivm.Fact
	for _, f := range res.Facts {
		if db.store.Insert(f.Pred, f.Args...) {
			ins = append(ins, ivm.Fact{Pred: f.Pred, Args: f.Args})
		}
	}
	if len(res.Program.Rules) > 0 {
		db.bumpRuleEpoch()
		db.recomputeViewsLocked()
	} else {
		db.bumpFactEpoch()
		db.notifyViewsLocked(ins, nil)
	}
	return nil
}

// Assert inserts a single ground fact given as constant names and
// reports whether it was new. Asserting a fact that is already present
// is a no-op that leaves both epochs unchanged.
func (db *DB) Assert(pred string, args ...string) bool {
	syms := make([]symtab.Sym, len(args))
	for i, a := range args {
		syms[i] = db.st.Intern(a)
	}
	return db.AssertSyms(pred, syms...)
}

// AssertSyms inserts a ground fact of pre-interned symbols and reports
// whether it was new.
func (db *DB) AssertSyms(pred string, args ...symtab.Sym) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.store.Insert(pred, args...) {
		return false
	}
	db.bumpFactEpoch()
	db.notifyViewsLocked([]ivm.Fact{{Pred: pred, Args: slices.Clone(args)}}, nil)
	return true
}

// Retract deletes a single ground fact given as constant names and
// reports whether it was present. Retracting a fact that was never
// asserted — or retracting the same fact twice — is a no-op returning
// false, leaving both epochs unchanged.
func (db *DB) Retract(pred string, args ...string) bool {
	syms := make([]symtab.Sym, len(args))
	for i, a := range args {
		s, ok := db.st.Lookup(a)
		if !ok {
			return false // an unknown constant cannot be part of a stored fact
		}
		syms[i] = s
	}
	return db.RetractSyms(pred, syms...)
}

// RetractSyms deletes a ground fact of pre-interned symbols and reports
// whether it was present.
func (db *DB) RetractSyms(pred string, args ...symtab.Sym) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.store.Remove(pred, args...) {
		return false
	}
	db.bumpFactEpoch()
	db.notifyViewsLocked(nil, []ivm.Fact{{Pred: pred, Args: slices.Clone(args)}})
	return true
}

// Fact is one ground fact for the batched mutation APIs.
type Fact struct {
	Pred string
	Args []string
}

// AssertBatch inserts many facts under one exclusive lock acquisition
// and a single fact-epoch movement, returning the number of facts that
// were new. For mixed assert/retract batches use Apply.
func (db *DB) AssertBatch(facts []Fact) int {
	d := &Delta{}
	for _, f := range facts {
		d.Assert(f.Pred, f.Args...)
	}
	res := db.Apply(d)
	return res.Asserted
}

// Delta is an ordered batch of fact mutations, applied atomically by
// DB.Apply. Operations take effect in the order they were added, so a
// Delta that asserts and later retracts the same fact nets to absence.
type Delta struct {
	ops []deltaOp
}

type deltaOp struct {
	pred    string
	args    []string
	retract bool
}

// Assert queues an insertion. It returns the Delta for chaining.
func (d *Delta) Assert(pred string, args ...string) *Delta {
	d.ops = append(d.ops, deltaOp{pred: pred, args: args})
	return d
}

// Retract queues a deletion. It returns the Delta for chaining.
func (d *Delta) Retract(pred string, args ...string) *Delta {
	d.ops = append(d.ops, deltaOp{pred: pred, args: args, retract: true})
	return d
}

// Len returns the number of queued operations.
func (d *Delta) Len() int { return len(d.ops) }

// ApplyResult reports the net effect of a Delta: what the database
// contains afterwards versus before, not the per-operation traffic.
type ApplyResult struct {
	// Asserted counts facts present after the Delta that were absent
	// before; Retracted counts facts absent after that were present
	// before. Operations that cancel within the batch — a fact asserted
	// and later retracted, or retracted and re-asserted — contribute to
	// neither, exactly as no-op operations (duplicate asserts, retracts
	// of absent facts) never did.
	Asserted, Retracted int
}

// Apply executes a Delta under one exclusive lock acquisition. The fact
// epoch moves once — at most — for the whole batch, so readers observe
// the delta atomically and prepared plans refresh a single time however
// many facts changed. A Delta that nets to no change leaves the epochs
// untouched.
func (db *DB) Apply(d *Delta) ApplyResult {
	if d == nil || len(d.ops) == 0 {
		return ApplyResult{}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	res, ins, del := db.applyOpsLocked(d)
	if res.Asserted > 0 || res.Retracted > 0 {
		db.bumpFactEpoch()
		db.notifyViewsLocked(ins, del)
	}
	return res
}

// ApplyAt executes a Delta and forces the fact epoch to epoch — the
// replication replay entry point. A Delta already reflected in the
// database (epoch at or below the current fact epoch) is skipped
// entirely and applied=false is returned, which makes replaying a
// write-ahead log idempotent: a record may be delivered again after a
// crash, a reconnect or an overlapping snapshot without double-applying
// or moving the epoch twice. Unlike Apply, a non-skipped Delta always
// sets the epoch even when it nets to no change, because the epoch is
// the log position, not a change counter, and the follower must land
// exactly where the leader was.
func (db *DB) ApplyAt(d *Delta, epoch uint64) (ApplyResult, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if epoch <= db.factEpoch {
		return ApplyResult{}, false
	}
	var res ApplyResult
	var ins, del []ivm.Fact
	if d != nil {
		res, ins, del = db.applyOpsLocked(d)
	}
	db.factEpoch = epoch
	// Views learn the log position even from a net-no-change record, so
	// a replica's watch feed reports the same head as its primary's.
	db.notifyViewsLocked(ins, del)
	return res, true
}

// applyOpsLocked executes a Delta's ops in order and reports the NET
// effect: per-fact presence before the first touching op versus after
// the last one. A fact asserted and later retracted inside the batch
// (or vice versa) cancels out of the counts, the epoch decision and the
// view-maintenance delta alike — all three agree by construction. The
// caller must hold db.mu exclusively and is responsible for epoch
// movement and view notification.
func (db *DB) applyOpsLocked(d *Delta) (ApplyResult, []ivm.Fact, []ivm.Fact) {
	type touch struct {
		pred   string
		args   []symtab.Sym
		before bool // present before the batch first touched it
		after  bool // present after the latest touching op
	}
	touched := make(map[string]*touch, len(d.ops))
	var order []*touch // first-touch order, for deterministic deltas
	var keyBuf []byte
	factKey := func(pred string, syms []symtab.Sym) string {
		keyBuf = append(keyBuf[:0], pred...)
		keyBuf = append(keyBuf, 0)
		for _, s := range syms {
			u := uint32(s)
			keyBuf = append(keyBuf, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
		}
		return string(keyBuf)
	}
	for _, op := range d.ops {
		if op.retract {
			syms := make([]symtab.Sym, len(op.args))
			known := true
			for i, a := range op.args {
				s, ok := db.st.Lookup(a)
				if !ok {
					known = false
					break
				}
				syms[i] = s
			}
			if !known {
				continue // an unknown constant cannot be part of a stored fact
			}
			was := db.store.Remove(op.pred, syms...)
			k := factKey(op.pred, syms)
			if t := touched[k]; t != nil {
				t.after = false
			} else {
				t = &touch{pred: op.pred, args: syms, before: was}
				touched[k] = t
				order = append(order, t)
			}
			continue
		}
		syms := make([]symtab.Sym, len(op.args))
		for i, a := range op.args {
			syms[i] = db.st.Intern(a)
		}
		isNew := db.store.Insert(op.pred, syms...)
		k := factKey(op.pred, syms)
		if t := touched[k]; t != nil {
			t.after = true
		} else {
			t = &touch{pred: op.pred, args: syms, before: !isNew, after: true}
			touched[k] = t
			order = append(order, t)
		}
	}
	var res ApplyResult
	var ins, del []ivm.Fact
	for _, t := range order {
		switch {
		case t.after && !t.before:
			res.Asserted++
			ins = append(ins, ivm.Fact{Pred: t.pred, Args: t.args})
		case !t.after && t.before:
			res.Retracted++
			del = append(del, ivm.Fact{Pred: t.pred, Args: t.args})
		}
	}
	return res, ins, del
}

// Sym is an interned constant symbol — an alias of the internal dense
// symbol type, exported so callers outside this module can name it in
// RunSymsFunc callbacks and pre-interned argument slices.
type Sym = symtab.Sym

// Intern returns the interned symbol for a constant name.
func (db *DB) Intern(name string) symtab.Sym { return db.st.Intern(name) }

// Name renders an interned symbol.
func (db *DB) Name(s symtab.Sym) string { return db.st.Name(s) }

// SymTab exposes the symbol table (shared with the store).
func (db *DB) SymTab() *symtab.Table { return db.st }

// Store exposes the extensional store (for workload generators and
// benchmarks that construct facts directly). Mutating the store directly
// bypasses the DB's locking and plan invalidation; call Invalidate — or
// use SetStore — afterwards if queries may already have run.
func (db *DB) Store() *edb.Store {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.store
}

// SetStore replaces the extensional store. The store must share the DB's
// symbol table.
func (db *DB) SetStore(s *edb.Store) {
	if s.SymTab() != db.st {
		panic("chainlog: store does not share the DB symbol table")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.store = s
	// Replacing the store invalidates the relation pointers compiled
	// into every plan; this is a rule-epoch event even though no rule
	// changed.
	db.bumpRuleEpoch()
	db.recomputeViewsLocked()
}

// Invalidate discards every cached plan and memoized analysis, forcing
// recompilation on the next query. It is only needed after mutating the
// Store() directly; LoadProgram, Assert, Retract, Apply and SetStore
// invalidate automatically.
func (db *DB) Invalidate() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.bumpRuleEpoch()
	db.recomputeViewsLocked()
}

// Epoch returns the current combined mutation epoch. Two calls returning
// the same value bracket a span during which no program or fact mutation
// happened. Use Epochs to distinguish rule from fact movement.
func (db *DB) Epoch() uint64 {
	rule, fact := db.Epochs()
	return rule + fact
}

// Epochs returns the rule and fact epochs. The rule epoch moves when the
// compiled world changes (rules added, store replaced, Invalidate); the
// fact epoch moves on fact-only mutations, which prepared plans absorb
// without recompiling.
func (db *DB) Epochs() (rule, fact uint64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.ruleEpoch, db.factEpoch
}

// FactEpoch returns the fact epoch alone. In a replicated deployment it
// is the log sequence number: the primary stamps it on every applied
// Delta, replicas converge to it, and chainlogd exposes it both as the
// X-Chainlog-Epoch response header and a /metrics gauge.
func (db *DB) FactEpoch() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.factEpoch
}

// RuleEpoch returns the rule epoch alone.
func (db *DB) RuleEpoch() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.ruleEpoch
}

// Program exposes the parsed intensional database. The returned program
// is the DB's live copy: reading it concurrently with LoadProgram is a
// data race, so callers sharing the DB across goroutines must not hold
// it across mutations.
func (db *DB) Program() *ast.Program { return db.prog }

// Analysis returns the Section 2 classification of the current program.
func (db *DB) Analysis() *analysis.Info {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.analysisLocked()
}

// analysisLocked returns the memoized classification; the caller must
// hold db.mu (shared or exclusive).
func (db *DB) analysisLocked() *analysis.Info {
	db.analysisMu.Lock()
	defer db.analysisMu.Unlock()
	if db.info == nil || db.infoEpoch != db.ruleEpoch {
		db.info = analysis.Analyze(db.prog)
		db.infoEpoch = db.ruleEpoch
	}
	return db.info
}

// Classify summarizes the program classes of Section 2 for diagnostics.
type Classification struct {
	Recursive         bool
	Linear            bool
	BinaryChain       bool
	Regular           bool
	SingleDerivedBody bool
}

// Classify reports which program classes the current program falls into.
func (db *DB) Classify() Classification {
	info := db.Analysis()
	c := Classification{
		Recursive:         info.RecursiveProgram(),
		Linear:            info.LinearProgram(),
		BinaryChain:       info.BinaryChainProgram(),
		SingleDerivedBody: info.SingleDerivedBody(),
	}
	if c.BinaryChain {
		c.Regular = info.RegularProgram()
	}
	return c
}

// ActiveDomain returns the sorted set of constants occurring in the
// extensional database. The scan is memoized and invalidated by any
// mutation epoch movement (facts change the domain, and a store
// replacement does too), so ff queries do not rescan every relation on
// each call. The returned slice is the caller's to mutate.
func (db *DB) ActiveDomain() []symtab.Sym {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]symtab.Sym(nil), db.activeDomainLocked()...)
}

// activeDomainLocked returns the memoized active domain; the caller must
// hold db.mu (shared or exclusive).
func (db *DB) activeDomainLocked() []symtab.Sym {
	db.domainMu.Lock()
	defer db.domainMu.Unlock()
	if db.domain != nil && db.domainRule == db.ruleEpoch && db.domainFact == db.factEpoch {
		return db.domain
	}
	set := make(map[symtab.Sym]bool)
	for _, name := range db.store.Relations() {
		db.store.Relation(name).EachRaw(func(tuple []symtab.Sym) {
			for _, s := range tuple {
				set[s] = true
			}
		})
	}
	out := make([]symtab.Sym, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	slices.Sort(out)
	db.domain = out
	db.domainRule = db.ruleEpoch
	db.domainFact = db.factEpoch
	return out
}

// ResetCounters zeroes the extensional store's retrieval counters.
func (db *DB) ResetCounters() {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.store.Counters.Reset()
}

// Counters returns an atomically read copy of the extensional store's
// retrieval counters.
func (db *DB) Counters() edb.Counters {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.store.CountersSnapshot()
}
