// Package chainlog is a deductive-database engine implementing the
// recursive-query evaluation strategy of Grahne, Sippu and
// Soisalon-Soininen, "Efficient Evaluation for a Subset of Recursive
// Queries" (PODS 1987; J. Logic Programming 1991).
//
// The engine evaluates regularly and linearly recursive Datalog queries
// by translating recursion into graph traversal:
//
//  1. a linear binary-chain program is transformed into a system of
//     equations over binary relations with operators ∪, · and *
//     (Lemma 1);
//  2. each equation compiles to a finite automaton M(e_p), and a query
//     p(a, Y) is evaluated by a demand-driven traversal of the
//     interpretation graph of the automaton hierarchy EM(p,i)
//     (Figures 4–5);
//  3. queries over n-ary linearly recursive predicates are reduced to
//     binary-chain queries over tuple terms, with the query's bindings
//     propagated into the transformed program so only relevant facts are
//     consulted (Section 4).
//
// The package also ships the classical strategies the paper compares
// against — naive and seminaive bottom-up evaluation, magic sets,
// counting, reverse counting, Henschen–Naqvi, and the Hunt-Szymanski-
// Ullman preconstruction algorithm — selectable per query, so workloads
// can be measured under every strategy on identical data.
//
// # Quick start
//
//	db := chainlog.NewDB()
//	err := db.LoadProgram(`
//	    sg(X, Y) :- flat(X, Y).
//	    sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
//	    up(john, mary).  flat(mary, mary).  down(mary, ann).
//	`)
//	ans, err := db.Query("sg(john, Y)")
//	// ans.Rows == [][]string{{"ann"}, ...}
package chainlog

import (
	"fmt"
	"sort"

	"chainlog/internal/analysis"
	"chainlog/internal/ast"
	"chainlog/internal/edb"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
)

// DB holds a Datalog program (the intensional database) and a fact store
// (the extensional database). A DB is not safe for concurrent use.
type DB struct {
	st    *symtab.Table
	store *edb.Store
	prog  *ast.Program

	info  *analysis.Info // lazily (re)computed
	dirty bool
}

// NewDB returns an empty database.
func NewDB() *DB {
	st := symtab.NewTable()
	return &DB{st: st, store: edb.NewStore(st), prog: &ast.Program{}, dirty: true}
}

// LoadProgram parses Datalog text and adds its rules to the intensional
// database and its facts to the extensional database.
func (db *DB) LoadProgram(src string) error {
	res, err := parser.Parse(src, db.st)
	if err != nil {
		return err
	}
	db.prog.Rules = append(db.prog.Rules, res.Program.Rules...)
	for _, f := range res.Facts {
		if db.prog.DerivedSet()[f.Pred] {
			return fmt.Errorf("chainlog: %s appears both as a fact and a rule head", f.Pred)
		}
		db.store.Insert(f.Pred, f.Args...)
	}
	db.dirty = true
	return nil
}

// Assert inserts a single ground fact given as constant names.
func (db *DB) Assert(pred string, args ...string) {
	syms := make([]symtab.Sym, len(args))
	for i, a := range args {
		syms[i] = db.st.Intern(a)
	}
	db.store.Insert(pred, syms...)
}

// AssertSyms inserts a ground fact of pre-interned symbols.
func (db *DB) AssertSyms(pred string, args ...symtab.Sym) {
	db.store.Insert(pred, args...)
}

// Intern returns the interned symbol for a constant name.
func (db *DB) Intern(name string) symtab.Sym { return db.st.Intern(name) }

// Name renders an interned symbol.
func (db *DB) Name(s symtab.Sym) string { return db.st.Name(s) }

// SymTab exposes the symbol table (shared with the store).
func (db *DB) SymTab() *symtab.Table { return db.st }

// Store exposes the extensional store (for workload generators and
// benchmarks that construct facts directly).
func (db *DB) Store() *edb.Store { return db.store }

// SetStore replaces the extensional store. The store must share the DB's
// symbol table.
func (db *DB) SetStore(s *edb.Store) {
	if s.SymTab() != db.st {
		panic("chainlog: store does not share the DB symbol table")
	}
	db.store = s
}

// Program exposes the parsed intensional database.
func (db *DB) Program() *ast.Program { return db.prog }

// Analysis returns the Section 2 classification of the current program.
func (db *DB) Analysis() *analysis.Info {
	if db.dirty || db.info == nil {
		db.info = analysis.Analyze(db.prog)
		db.dirty = false
	}
	return db.info
}

// Classify summarizes the program classes of Section 2 for diagnostics.
type Classification struct {
	Recursive         bool
	Linear            bool
	BinaryChain       bool
	Regular           bool
	SingleDerivedBody bool
}

// Classify reports which program classes the current program falls into.
func (db *DB) Classify() Classification {
	info := db.Analysis()
	c := Classification{
		Recursive:         info.RecursiveProgram(),
		Linear:            info.LinearProgram(),
		BinaryChain:       info.BinaryChainProgram(),
		SingleDerivedBody: info.SingleDerivedBody(),
	}
	if c.BinaryChain {
		c.Regular = info.RegularProgram()
	}
	return c
}

// ActiveDomain returns the sorted set of constants occurring in the
// extensional database.
func (db *DB) ActiveDomain() []symtab.Sym {
	set := make(map[symtab.Sym]bool)
	for _, name := range db.store.Relations() {
		r := db.store.Relation(name)
		for i := 0; i < r.Len(); i++ {
			for _, s := range r.Tuple(i) {
				set[s] = true
			}
		}
	}
	out := make([]symtab.Sym, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ResetCounters zeroes the extensional store's retrieval counters.
func (db *DB) ResetCounters() { db.store.Counters.Reset() }

// Counters returns the extensional store's retrieval counters.
func (db *DB) Counters() edb.Counters { return db.store.Counters }
