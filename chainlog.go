// Package chainlog is a deductive-database engine implementing the
// recursive-query evaluation strategy of Grahne, Sippu and
// Soisalon-Soininen, "Efficient Evaluation for a Subset of Recursive
// Queries" (PODS 1987; J. Logic Programming 1991).
//
// The engine evaluates regularly and linearly recursive Datalog queries
// by translating recursion into graph traversal:
//
//  1. a linear binary-chain program is transformed into a system of
//     equations over binary relations with operators ∪, · and *
//     (Lemma 1);
//  2. each equation compiles to a finite automaton M(e_p), and a query
//     p(a, Y) is evaluated by a demand-driven traversal of the
//     interpretation graph of the automaton hierarchy EM(p,i)
//     (Figures 4–5);
//  3. queries over n-ary linearly recursive predicates are reduced to
//     binary-chain queries over tuple terms, with the query's bindings
//     propagated into the transformed program so only relevant facts are
//     consulted (Section 4).
//
// The package also ships the classical strategies the paper compares
// against — naive and seminaive bottom-up evaluation, magic sets,
// counting, reverse counting, Henschen–Naqvi, and the Hunt-Szymanski-
// Ullman preconstruction algorithm — selectable per query, so workloads
// can be measured under every strategy on identical data.
//
// # Quick start
//
// The paper's central observation is that a query compiles to a fixed
// automaton hierarchy that is then driven by the bound constant. The API
// mirrors that: Prepare compiles a parameterized query template once, and
// the returned plan is run for any number of constants, from any number
// of goroutines:
//
//	db := chainlog.NewDB()
//	err := db.LoadProgram(`
//	    sg(X, Y) :- flat(X, Y).
//	    sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
//	    up(john, mary).  flat(mary, mary).  down(mary, ann).
//	`)
//	sg, err := db.Prepare("sg(?, Y)", chainlog.Options{})
//	ans, err := sg.Run("john")
//	// ans.Rows == [][]string{{"ann"}, ...}
//
// One-shot queries work too, and are internally routed through a plan
// cache keyed by (predicate, binding pattern, options), so repeating a
// query shape with different constants reuses the compiled plan:
//
//	ans, err := db.Query("sg(john, Y)")
//
// # Concurrency
//
// A DB guards its program and fact store with a readers-writer lock:
// any number of goroutines may Query / Run prepared plans concurrently,
// while mutations (LoadProgram, Assert, SetStore) take the exclusive
// lock and bump an epoch that invalidates cached plans. A Prepared whose
// epoch went stale recompiles itself transparently on its next Run.
package chainlog

import (
	"fmt"
	"slices"
	"sync"

	"chainlog/internal/analysis"
	"chainlog/internal/ast"
	"chainlog/internal/edb"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
)

// DB holds a Datalog program (the intensional database) and a fact store
// (the extensional database).
//
// A DB is safe for concurrent use: queries and prepared-plan runs take a
// shared read lock, mutations take the exclusive write lock.
type DB struct {
	// mu guards prog and store structure. Readers (queries, plan runs,
	// compilation) share it; writers (LoadProgram, Assert, SetStore)
	// hold it exclusively.
	mu    sync.RWMutex
	st    *symtab.Table
	store *edb.Store
	prog  *ast.Program

	// epoch counts mutations. Every derived artifact (analysis, active
	// domain, cached plans) records the epoch it was computed at and is
	// invalid once the DB's epoch moves past it.
	epoch uint64

	// analysisMu guards the memoized Section 2 classification.
	analysisMu sync.Mutex
	info       *analysis.Info
	infoEpoch  uint64

	// domainMu guards the memoized active domain.
	domainMu    sync.Mutex
	domain      []symtab.Sym
	domainEpoch uint64

	// plans is the prepared-plan cache behind Query/QueryOpts.
	plans planCache
}

// NewDB returns an empty database.
func NewDB() *DB {
	st := symtab.NewTable()
	return &DB{st: st, store: edb.NewStore(st), prog: &ast.Program{}, epoch: 1}
}

// bumpEpoch invalidates derived state; the caller must hold db.mu
// exclusively. The plan cache is emptied too, so plans compiled against
// a replaced store do not pin it in memory (a stale entry rebuilds from
// scratch anyway, so dropping it loses nothing). Prepared handles held
// by callers still self-heal on their next Run.
func (db *DB) bumpEpoch() {
	db.epoch++
	db.plans.clear()
}

// LoadProgram parses Datalog text and adds its rules to the intensional
// database and its facts to the extensional database.
func (db *DB) LoadProgram(src string) error {
	res, err := parser.Parse(src, db.st)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.prog.Rules = append(db.prog.Rules, res.Program.Rules...)
	derived := db.prog.DerivedSet()
	for _, f := range res.Facts {
		if derived[f.Pred] {
			// Roll back the rules added above so a failed load leaves the
			// program unchanged.
			db.prog.Rules = db.prog.Rules[:len(db.prog.Rules)-len(res.Program.Rules)]
			return fmt.Errorf("chainlog: %s appears both as a fact and a rule head", f.Pred)
		}
	}
	for _, f := range res.Facts {
		db.store.Insert(f.Pred, f.Args...)
	}
	db.bumpEpoch()
	return nil
}

// Assert inserts a single ground fact given as constant names.
func (db *DB) Assert(pred string, args ...string) {
	syms := make([]symtab.Sym, len(args))
	for i, a := range args {
		syms[i] = db.st.Intern(a)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.store.Insert(pred, syms...)
	db.bumpEpoch()
}

// AssertSyms inserts a ground fact of pre-interned symbols.
func (db *DB) AssertSyms(pred string, args ...symtab.Sym) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.store.Insert(pred, args...)
	db.bumpEpoch()
}

// Sym is an interned constant symbol — an alias of the internal dense
// symbol type, exported so callers outside this module can name it in
// RunSymsFunc callbacks and pre-interned argument slices.
type Sym = symtab.Sym

// Intern returns the interned symbol for a constant name.
func (db *DB) Intern(name string) symtab.Sym { return db.st.Intern(name) }

// Name renders an interned symbol.
func (db *DB) Name(s symtab.Sym) string { return db.st.Name(s) }

// SymTab exposes the symbol table (shared with the store).
func (db *DB) SymTab() *symtab.Table { return db.st }

// Store exposes the extensional store (for workload generators and
// benchmarks that construct facts directly). Mutating the store directly
// bypasses the DB's locking and plan invalidation; call Invalidate — or
// use SetStore — afterwards if queries may already have run.
func (db *DB) Store() *edb.Store {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.store
}

// SetStore replaces the extensional store. The store must share the DB's
// symbol table.
func (db *DB) SetStore(s *edb.Store) {
	if s.SymTab() != db.st {
		panic("chainlog: store does not share the DB symbol table")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.store = s
	db.bumpEpoch()
}

// Invalidate discards every cached plan and memoized analysis, forcing
// recompilation on the next query. It is only needed after mutating the
// Store() directly; LoadProgram, Assert and SetStore invalidate
// automatically.
func (db *DB) Invalidate() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.bumpEpoch()
}

// Epoch returns the current mutation epoch. Two calls returning the same
// value bracket a span during which no program or fact mutation happened.
func (db *DB) Epoch() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.epoch
}

// Program exposes the parsed intensional database. The returned program
// is the DB's live copy: reading it concurrently with LoadProgram is a
// data race, so callers sharing the DB across goroutines must not hold
// it across mutations.
func (db *DB) Program() *ast.Program { return db.prog }

// Analysis returns the Section 2 classification of the current program.
func (db *DB) Analysis() *analysis.Info {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.analysisLocked()
}

// analysisLocked returns the memoized classification; the caller must
// hold db.mu (shared or exclusive).
func (db *DB) analysisLocked() *analysis.Info {
	db.analysisMu.Lock()
	defer db.analysisMu.Unlock()
	if db.info == nil || db.infoEpoch != db.epoch {
		db.info = analysis.Analyze(db.prog)
		db.infoEpoch = db.epoch
	}
	return db.info
}

// Classify summarizes the program classes of Section 2 for diagnostics.
type Classification struct {
	Recursive         bool
	Linear            bool
	BinaryChain       bool
	Regular           bool
	SingleDerivedBody bool
}

// Classify reports which program classes the current program falls into.
func (db *DB) Classify() Classification {
	info := db.Analysis()
	c := Classification{
		Recursive:         info.RecursiveProgram(),
		Linear:            info.LinearProgram(),
		BinaryChain:       info.BinaryChainProgram(),
		SingleDerivedBody: info.SingleDerivedBody(),
	}
	if c.BinaryChain {
		c.Regular = info.RegularProgram()
	}
	return c
}

// ActiveDomain returns the sorted set of constants occurring in the
// extensional database. The scan is memoized and invalidated by the same
// epoch that invalidates cached plans, so ff queries do not rescan every
// relation on each call. The returned slice is the caller's to mutate.
func (db *DB) ActiveDomain() []symtab.Sym {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]symtab.Sym(nil), db.activeDomainLocked()...)
}

// activeDomainLocked returns the memoized active domain; the caller must
// hold db.mu (shared or exclusive).
func (db *DB) activeDomainLocked() []symtab.Sym {
	db.domainMu.Lock()
	defer db.domainMu.Unlock()
	if db.domain != nil && db.domainEpoch == db.epoch {
		return db.domain
	}
	set := make(map[symtab.Sym]bool)
	for _, name := range db.store.Relations() {
		r := db.store.Relation(name)
		for i := 0; i < r.Len(); i++ {
			for _, s := range r.Tuple(i) {
				set[s] = true
			}
		}
	}
	out := make([]symtab.Sym, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	slices.Sort(out)
	db.domain = out
	db.domainEpoch = db.epoch
	return out
}

// ResetCounters zeroes the extensional store's retrieval counters.
func (db *DB) ResetCounters() {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.store.Counters.Reset()
}

// Counters returns an atomically read copy of the extensional store's
// retrieval counters.
func (db *DB) Counters() edb.Counters {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.store.CountersSnapshot()
}
