package chainlog

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// The plan-choice regression corpus: curated query/data shapes under
// testdata/planchoice, each recording which alternative measures fastest.
// The gate asserts the optimizer's pick is never more than 25% slower
// than the measured best — a mis-tuned cost constant that flips a corpus
// decision fails here, exactly like a perturbed bench baseline.

// planChoiceSlack is the gate: auto's measured time may exceed the best
// alternative's by at most this factor (plus a small absolute floor that
// absorbs scheduler noise on cases that run in microseconds).
const (
	planChoiceSlack    = 1.25
	planChoiceMinDelta = 500 * time.Microsecond
)

type corpusFactSpec struct {
	Pred       string `json:"pred"`
	Kind       string `json:"kind"`
	N          int    `json:"n,omitempty"`
	M          int    `json:"m,omitempty"`
	Seed       int64  `json:"seed,omitempty"`
	Airports   int    `json:"airports,omitempty"`
	PerAirport int    `json:"per_airport,omitempty"`
}

type corpusCase struct {
	Name       string           `json:"name"`
	Comment    string           `json:"comment,omitempty"`
	Program    string           `json:"program"`
	Query      string           `json:"query"`
	Args       []string         `json:"args"`
	Facts      []corpusFactSpec `json:"facts"`
	ExpectBest string           `json:"expect_best,omitempty"`
}

// loadCorpusDB builds the case's database: program plus generated facts.
func loadCorpusDB(t testing.TB, c corpusCase) *DB {
	t.Helper()
	db := NewDB()
	if err := db.LoadProgram(c.Program); err != nil {
		t.Fatalf("%s: load program: %v", c.Name, err)
	}
	for _, f := range c.Facts {
		genCorpusFacts(t, db, f)
	}
	return db
}

func genCorpusFacts(t testing.TB, db *DB, f corpusFactSpec) {
	t.Helper()
	switch f.Kind {
	case "chain":
		facts := make([]Fact, 0, f.N)
		for i := 0; i < f.N; i++ {
			facts = append(facts, Fact{Pred: f.Pred, Args: []string{fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1)}})
		}
		db.AssertBatch(facts)
	case "cycle3":
		// A single-carrier flight cycle: every airport is reachable from
		// every seed, so a binding restricts nothing.
		facts := make([]Fact, 0, f.N)
		for i := 0; i < f.N; i++ {
			facts = append(facts, Fact{Pred: f.Pred, Args: []string{
				fmt.Sprintf("a%d", i), fmt.Sprintf("a%d", (i+1)%f.N), "acme"}})
		}
		db.AssertBatch(facts)
	case "unary":
		// Domain padding: an unrelated relation whose constants enlarge
		// the active domain without touching the query's join graph.
		facts := make([]Fact, 0, f.N)
		for i := 0; i < f.N; i++ {
			facts = append(facts, Fact{Pred: f.Pred, Args: []string{fmt.Sprintf("u%d", i)}})
		}
		db.AssertBatch(facts)
	case "random":
		rng := rand.New(rand.NewSource(f.Seed))
		facts := make([]Fact, 0, f.M)
		for i := 0; i < f.M; i++ {
			u, v := rng.Intn(f.N), rng.Intn(f.N)
			facts = append(facts, Fact{Pred: f.Pred, Args: []string{fmt.Sprintf("n%d", u), fmt.Sprintf("n%d", v)}})
		}
		db.AssertBatch(facts)
	case "flights":
		// Mirrors workload.FlightDB, asserting into this DB: random
		// flights plus a deterministic ap0@100 seed departure.
		rng := rand.New(rand.NewSource(f.Seed))
		deptimes := map[int]bool{}
		var facts []Fact
		for i := 0; i < f.Airports; i++ {
			for k := 0; k < f.PerAirport; k++ {
				dt := rng.Intn(1300) + 100
				dur := rng.Intn(200) + 30
				dest := rng.Intn(f.Airports)
				if dest == i {
					dest = (i + 1) % f.Airports
				}
				facts = append(facts, Fact{Pred: "flight", Args: []string{
					fmt.Sprintf("ap%d", i), fmt.Sprintf("%d", dt),
					fmt.Sprintf("ap%d", dest), fmt.Sprintf("%d", dt+dur)}})
				deptimes[dt] = true
			}
		}
		facts = append(facts, Fact{Pred: "flight", Args: []string{"ap0", "100", "ap1", "145"}})
		deptimes[100] = true
		for dt := range deptimes {
			facts = append(facts, Fact{Pred: "is_deptime", Args: []string{fmt.Sprintf("%d", dt)}})
		}
		db.AssertBatch(facts)
	default:
		t.Fatalf("unknown corpus fact kind %q", f.Kind)
	}
}

// measureStrategy times the pinned strategy on the case's query:
// best-of-N wall clock after one warmup, which is how the corpus's
// "measured best" is defined. Returns 0 and false if the strategy
// cannot run this case (pinned magic on a program it rejects).
func measureStrategy(t *testing.T, db *DB, c corpusCase, s Strategy) (time.Duration, bool) {
	t.Helper()
	p, err := db.Prepare(c.Query, Options{Strategy: s})
	if err != nil {
		return 0, false
	}
	if _, err := p.Run(c.Args...); err != nil {
		return 0, false
	}
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 5; i++ {
		start := time.Now()
		if _, err := p.Run(c.Args...); err != nil {
			t.Fatalf("%s: %v run: %v", c.Name, s, err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best, true
}

func readCorpus(t *testing.T) []corpusCase {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "planchoice", "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no plan-choice corpus found: %v", err)
	}
	var cases []corpusCase
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		var c corpusCase
		if err := json.Unmarshal(raw, &c); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		cases = append(cases, c)
	}
	return cases
}

func TestPlanChoiceCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate; skipped in -short mode")
	}
	for _, c := range readCorpus(t) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			db := loadCorpusDB(t, c)
			auto, err := db.Prepare(c.Query, Options{})
			if err != nil {
				t.Fatalf("auto prepare: %v", err)
			}
			if auto.Plan().Pinned {
				t.Fatal("corpus case did not route through the optimizer")
			}
			// Let the runtime-feedback loop settle: a route whose estimate
			// proves wrong at run time re-optimizes at entry of a following
			// run, and the gate judges the settled choice — the optimizer
			// includes its feedback loop, not just the first cost model pass.
			for i := 0; i < 3; i++ {
				if _, err := auto.Run(c.Args...); err != nil {
					t.Fatalf("auto run: %v", err)
				}
			}
			pc := auto.Plan()

			measured := map[Strategy]time.Duration{}
			var best Strategy
			bestTime := time.Duration(1<<63 - 1)
			for _, s := range []Strategy{Chain, Seminaive, Magic, QSQNet} {
				d, ok := measureStrategy(t, db, c, s)
				if !ok {
					continue
				}
				measured[s] = d
				if d < bestTime {
					best, bestTime = s, d
				}
			}
			chosenTime, ok := measured[pc.Strategy]
			if !ok {
				t.Fatalf("optimizer chose %v, which did not measure", pc.Strategy)
			}
			t.Logf("chosen %v (%v); measured best %v (%v); all %v", pc.Strategy, chosenTime, best, bestTime, measured)
			if c.ExpectBest != "" && best.String() != c.ExpectBest {
				// The recorded expectation is informational: hardware can
				// reorder close alternatives, the gate below is the contract.
				t.Logf("note: measured best %v, corpus recorded %s", best, c.ExpectBest)
			}
			if limit := time.Duration(float64(bestTime)*planChoiceSlack) + planChoiceMinDelta; chosenTime > limit {
				t.Errorf("optimizer chose %v at %v; measured best is %v at %v (gate: %v)",
					pc.Strategy, chosenTime, best, bestTime, limit)
			}
		})
	}
}
