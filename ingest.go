package chainlog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"chainlog/internal/symtab"
)

// IngestStats reports what a bulk ingestion consumed and produced.
type IngestStats struct {
	// Lines is the number of edge records read from the input (blank
	// lines and comments excluded).
	Lines int
	// Edges is the number of distinct edges stored — duplicates in the
	// input collapse, as with repeated Assert.
	Edges int
}

// IngestCSV bulk-loads a binary relation from CSV-ish text: one
// "source,target" pair per line, no quoting, blank lines and lines
// starting with '#' skipped. The relation is built directly in columnar
// CSR form with a counting sort — no per-fact hashing or overlay churn —
// so loading 10⁷–10⁸ edges streams at I/O speed and the result is
// immediately query-ready. The relation must not already exist in the
// DB; everything else about the DB (rules, other relations, prepared
// plans) is untouched, and the fact epoch moves once.
func (db *DB) IngestCSV(r io.Reader, relation string) (IngestStats, error) {
	return db.ingestEdges(relation, func(emit func(src, dst []byte) error) error {
		br := bufio.NewReaderSize(r, 1<<20)
		lineNo := 0
		for {
			line, err := br.ReadSlice('\n')
			if err == bufio.ErrBufferFull {
				return fmt.Errorf("chainlog: ingest: line %d exceeds 1MiB", lineNo+1)
			}
			if len(line) == 0 && err != nil {
				if err == io.EOF {
					return nil
				}
				return err
			}
			lineNo++
			line = bytes.TrimRight(line, "\r\n")
			if len(line) == 0 || line[0] == '#' {
				if err == io.EOF {
					return nil
				}
				continue
			}
			src, dst, ok := bytes.Cut(line, []byte{','})
			if !ok || bytes.IndexByte(dst, ',') >= 0 {
				return fmt.Errorf("chainlog: ingest: line %d: want exactly two comma-separated fields", lineNo)
			}
			if len(src) == 0 || len(dst) == 0 {
				return fmt.Errorf("chainlog: ingest: line %d: empty field", lineNo)
			}
			if e := emit(src, dst); e != nil {
				return e
			}
			if err == io.EOF {
				return nil
			}
		}
	})
}

// IngestJSONL bulk-loads a binary relation from JSON Lines: one
// {"src": "...", "dst": "..."} object per line. Same semantics as
// IngestCSV, for pipelines that already speak JSONL.
func (db *DB) IngestJSONL(r io.Reader, relation string) (IngestStats, error) {
	return db.ingestEdges(relation, func(emit func(src, dst []byte) error) error {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 64*1024), 1<<20)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var rec struct {
				Src string `json:"src"`
				Dst string `json:"dst"`
			}
			if err := json.Unmarshal(line, &rec); err != nil {
				return fmt.Errorf("chainlog: ingest: line %d: %w", lineNo, err)
			}
			if rec.Src == "" || rec.Dst == "" {
				return fmt.Errorf("chainlog: ingest: line %d: src and dst are required", lineNo)
			}
			if err := emit([]byte(rec.Src), []byte(rec.Dst)); err != nil {
				return err
			}
		}
		return sc.Err()
	})
}

// ingestEdges drives a record source, interning names and accumulating
// the edge list, then installs it as a CSR-form relation in one shot.
func (db *DB) ingestEdges(relation string, read func(emit func(src, dst []byte) error) error) (IngestStats, error) {
	db.mu.RLock()
	exists := db.store.Relation(relation) != nil
	db.mu.RUnlock()
	if exists {
		return IngestStats{}, fmt.Errorf("chainlog: ingest: relation %s already exists", relation)
	}
	// Interning goes through a local byte-keyed cache: the map lookup on
	// a []byte key does not allocate, so repeated node names (the common
	// case — every edge names two already-seen nodes) cost one hash, no
	// string conversion and no symtab lock.
	cache := make(map[string]symtab.Sym, 1<<16)
	intern := func(b []byte) symtab.Sym {
		if s, ok := cache[string(b)]; ok {
			return s
		}
		s := db.st.Intern(string(b))
		cache[string(b)] = s
		return s
	}
	var edges [][2]symtab.Sym
	lines := 0
	err := read(func(src, dst []byte) error {
		edges = append(edges, [2]symtab.Sym{intern(src), intern(dst)})
		lines++
		return nil
	})
	if err != nil {
		return IngestStats{}, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	rel, err := db.store.BuildBinary(relation, edges)
	if err != nil {
		return IngestStats{}, err
	}
	db.bumpFactEpoch()
	db.recomputeViewsLocked()
	return IngestStats{Lines: lines, Edges: rel.Len()}, nil
}
