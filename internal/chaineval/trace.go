package chaineval

import (
	"fmt"
	"io"

	"chainlog/internal/symtab"
)

// Tracer observes the evaluation as it proceeds. All methods are called
// synchronously from the evaluation loop; implementations must be fast
// and must not call back into the engine.
type Tracer interface {
	// Iteration is called at the start of main-loop iteration i (1-based).
	Iteration(i int)
	// Node is called when (q, u) is inserted into the interpretation
	// graph G.
	Node(state int, term symtab.Sym)
	// Expand is called when a transition on derived predicate pred out
	// of state is replaced by a copy of M(e_pred) starting at newStart.
	Expand(pred string, state, newStart int)
	// Answer is called when a term reaches the final state.
	Answer(term symtab.Sym)
}

// WriterTracer renders events as text lines, resolving terms through a
// symbol table.
type WriterTracer struct {
	W  io.Writer
	St *symtab.Table
	// MaxNodes stops node logging after this many events (0 = unlimited);
	// iteration/expansion events are always written.
	MaxNodes int

	nodes int
}

// Iteration implements Tracer.
func (t *WriterTracer) Iteration(i int) {
	fmt.Fprintf(t.W, "-- iteration %d\n", i)
}

// Node implements Tracer.
func (t *WriterTracer) Node(state int, term symtab.Sym) {
	t.nodes++
	if t.MaxNodes > 0 && t.nodes > t.MaxNodes {
		if t.nodes == t.MaxNodes+1 {
			fmt.Fprintf(t.W, "   ... (node log truncated)\n")
		}
		return
	}
	fmt.Fprintf(t.W, "   node (q%d, %s)\n", state, t.St.Name(term))
}

// Expand implements Tracer.
func (t *WriterTracer) Expand(pred string, state, newStart int) {
	fmt.Fprintf(t.W, "   expand %s at q%d -> copy rooted at q%d\n", pred, state, newStart)
}

// Answer implements Tracer.
func (t *WriterTracer) Answer(term symtab.Sym) {
	fmt.Fprintf(t.W, "   answer %s\n", t.St.Name(term))
}

// CountingTracer tallies events; used by tests to assert evaluation
// behavior without string parsing.
type CountingTracer struct {
	Iterations, Nodes, Expansions, Answers int
}

// Iteration implements Tracer by counting.
func (c *CountingTracer) Iteration(int) { c.Iterations++ }

// Node implements Tracer by counting.
func (c *CountingTracer) Node(int, symtab.Sym) { c.Nodes++ }

// Expand implements Tracer by counting.
func (c *CountingTracer) Expand(string, int, int) { c.Expansions++ }

// Answer implements Tracer by counting.
func (c *CountingTracer) Answer(symtab.Sym) { c.Answers++ }
