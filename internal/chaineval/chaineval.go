// Package chaineval implements the paper's evaluation algorithm
// (Figures 4 and 5): a demand-driven graph traversal that evaluates a
// query p(a, Y) over the equation system produced by the Lemma 1
// transformation.
//
// The state of the evaluation is the interpretation graph G(p,a,i) of the
// automaton hierarchy EM(p,i): its nodes are pairs (q, u) of an automaton
// state and a term. Only nodes are stored, never arcs — the paper's third
// performance factor. The graph is built during the traversal, so the set
// of constructed nodes equals the set of nodes reachable from the query
// constant, which bounds the potentially relevant facts (factor two), and
// each node is visited exactly once (factor one: no duplicated work).
//
// The visited set is flat memory: one bitset page of the dense Sym
// domain per automaton state (see visited.go), with a sparse fallback
// for very large domains, and all per-run scratch is pooled — the
// steady-state warm path of a prepared plan allocates nothing.
//
// Transitions on derived predicates are continuation points: at the end of
// each main-loop iteration they are expanded in place by fresh copies of
// M(e_r) (building EM(p,i+1)), and traversal resumes from the copied start
// states. The loop stops when no continuation points remain; for cyclic
// data, where that may never happen, the engine optionally applies the
// Marchetti-Spaccamela m·n accessible-node bound for equations of the
// linear shape p = e0 ∪ e1·p·e2.
package chaineval

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"chainlog/internal/automaton"
	"chainlog/internal/edb"
	"chainlog/internal/equations"
	"chainlog/internal/expr"
	"chainlog/internal/symtab"
)

// Source resolves base-predicate names to binary-relation access. The
// extensional database implements it directly; the Section 4
// transformation supplies a source whose base-r/in-r/out-r relations are
// computed by demand-driven joins. Sources may additionally implement
// SymBounder to let the engine size its dense visited pages exactly.
type Source interface {
	// Successors returns all v with pred(u, v).
	Successors(pred string, u symtab.Sym) []symtab.Sym
	// Predecessors returns all u with pred(u, v); needed for inverse
	// labels introduced by p(X, b) query reversal.
	Predecessors(pred string, v symtab.Sym) []symtab.Sym
}

// Options tunes the engine.
type Options struct {
	// MaxIterations caps the number of main-loop iterations; 0 means no
	// cap (the loop runs until no continuation points remain or the
	// cyclic guard fires).
	MaxIterations int
	// DisableCyclicGuard turns off the m·n accessible-node iteration
	// bound for equations of the linear shape p = e0 ∪ e1·p·e2 (the
	// extension of Marchetti-Spaccamela et al. discussed in Section 3).
	// The guard is on by default: with it, evaluation over cyclic data
	// terminates with the complete answer; without it, cyclic data loops
	// until MaxIterations (or forever).
	DisableCyclicGuard bool
	// MaxNodes aborts evaluation when the interpretation graph exceeds
	// this many nodes; 0 means unlimited. A defensive resource bound.
	MaxNodes int
	// SparseVisited forces the evaluator's visited sets onto the sparse
	// (map-backed) fallback path regardless of domain size. Dense bitset
	// pages and the sparse path are answer-equivalent; the flag exists so
	// equivalence tests can drive both. Production runs leave it false
	// and the engine chooses by domain size.
	SparseVisited bool
	// Parallelism bounds the traversal worker pool: levels of the
	// frontier whose size reaches parFrontierThreshold are sharded across
	// up to this many workers (see parallel.go). 0 and 1 evaluate
	// sequentially on the caller's goroutine — the default, preserving
	// the zero-allocation warm path — and negative values use
	// runtime.GOMAXPROCS(0). Parallel and sequential evaluation return
	// identical answer sets and statistics; queries whose frontiers never
	// reach the threshold run sequentially regardless of the setting.
	// Tracing (Tracer != nil) forces sequential evaluation so event order
	// stays deterministic.
	Parallelism int
	// Tracer, when non-nil, observes iterations, node insertions,
	// expansions and answers as they happen.
	Tracer Tracer
}

// Result reports the answers and the evaluation statistics the paper's
// complexity analysis is stated in.
type Result struct {
	// Answers is the sorted answer set {u | (q_f, u) ∈ G}.
	Answers []symtab.Sym
	// Iterations is the number of main-loop iterations performed (the h
	// of Theorem 4).
	Iterations int
	// Nodes is the number of nodes in the final interpretation graph.
	Nodes int
	// States and Transitions describe the final EM(p,i) automaton.
	States, Transitions int
	// Expansions counts derived-predicate transitions expanded.
	Expansions int
	// Converged is true when the algorithm terminated with a complete
	// answer (continuation points exhausted, or the cyclic bound
	// guaranteed completeness); false when MaxIterations cut it off.
	Converged bool
	// BoundStopped is true when the cyclic guard ended the loop.
	BoundStopped bool
	// AnswerCompleteAt is the first iteration after which the answer set
	// stopped growing (1-based; 0 when no iterations ran). Experiment E3
	// reads the paper's "m·n iterations needed" claim from this.
	AnswerCompleteAt int
}

// Engine evaluates queries over one equation system and one source.
//
// An Engine is reusable: the automata M(e_r), the reversed equation
// system and the linear-shape decompositions are compiled once and cached,
// so the same engine answers queries for many different bound constants
// without recompiling anything. All caches are guarded by an internal
// mutex and the per-query state is pooled scratch local to each call, so
// one engine may serve Query/QueryInverse/QueryAll from many goroutines
// concurrently (provided its Source is itself safe for concurrent reads,
// as the extensional store is).
type Engine struct {
	sys  *equations.System
	src  Source
	opts Options

	// mu serializes additions to the compilation caches below; lookups
	// go through the atomic pointers without locking (the maps are
	// copy-on-write), keeping concurrent queries off a shared lock.
	mu sync.Mutex
	// compiled caches M(e_r) per derived predicate.
	compiled atomic.Pointer[map[string]*automaton.NFA]
	// reversed caches the reversed equation system for p(X,b) queries.
	reversed atomic.Pointer[equations.System]
	// shapes caches the linear decomposition p = e0 ∪ e1·p·e2 and its
	// compiled automata per predicate (used by the cyclic guard).
	shapes atomic.Pointer[map[string]*shapeAutomata]
	// regular caches IsRegularFor per predicate: the check walks the
	// equation and allocates, and the per-run hot path must not.
	regular atomic.Pointer[map[string]bool]
	// rels is the pre-resolved extensional adjacency table, indexed by
	// the Aux annotation stamped on automaton edges: base-predicate
	// transitions resolve their relation once at compile time, so the
	// traversal probes a concrete *edb.Relation with no string hashing.
	// Copy-on-write like the caches above; relIdx maps predicate names to
	// their index.
	// Entries are never nil: predicates that cannot be resolved stay at
	// NoAux on their edges and keep the by-name Source path.
	rels   atomic.Pointer[[]*edb.Relation]
	relIdx atomic.Pointer[map[string]int32]
}

// shapeAutomata is a cached LinearDecompose result with the automata of
// its three parts precompiled.
type shapeAutomata struct {
	ok         bool
	e0, e1, e2 *automaton.NFA
}

// New returns an engine over the system and source.
func New(sys *equations.System, src Source, opts Options) *Engine {
	e := &Engine{sys: sys, src: src, opts: opts}
	compiled := make(map[string]*automaton.NFA)
	e.compiled.Store(&compiled)
	shapes := make(map[string]*shapeAutomata)
	e.shapes.Store(&shapes)
	regular := make(map[string]bool)
	e.regular.Store(&regular)
	rels := []*edb.Relation{}
	e.rels.Store(&rels)
	relIdx := make(map[string]int32)
	e.relIdx.Store(&relIdx)
	return e
}

// relAuxLocked returns the adjacency-table index for pred, resolving and
// appending on first use; NoAux when the source cannot resolve pred to a
// concrete relation (virtual joins, not-yet-materialized predicates).
// The caller must hold e.mu; publication is copy-on-write so traversals
// load the table without locking.
func (e *Engine) relAuxLocked(pred string) int32 {
	if i, ok := (*e.relIdx.Load())[pred]; ok {
		return i
	}
	rr, ok := e.src.(RelationResolver)
	if !ok {
		return automaton.NoAux
	}
	rel := rr.ResolveRelation(pred)
	if rel == nil {
		// Not cached: a relation materialized later (facts inserted after
		// compilation) resolves on the next annotation pass.
		return automaton.NoAux
	}
	cur := *e.rels.Load()
	next := make([]*edb.Relation, len(cur)+1)
	copy(next, cur)
	i := int32(len(cur))
	next[i] = rel
	e.rels.Store(&next)
	curIdx := *e.relIdx.Load()
	nextIdx := make(map[string]int32, len(curIdx)+1)
	for k, v := range curIdx {
		nextIdx[k] = v
	}
	nextIdx[pred] = i
	e.relIdx.Store(&nextIdx)
	return i
}

// annotateLocked stamps edge kinds (derived-predicate continuation
// points) and resolved-relation indexes on a freshly compiled automaton.
// The caller must hold e.mu.
func (e *Engine) annotateLocked(sys *equations.System, m *automaton.NFA) {
	m.Annotate(func(p string) bool { return sys.Derived[p] }, e.relAuxLocked)
}

// Precompile compiles and caches the automaton M(e_p) of every equation
// in the system (forward direction), plus the cyclic-guard shape automata
// for pred, so that subsequent Query calls perform no compilation at all.
// Prepared query plans call this once at plan-build time.
func (e *Engine) Precompile(pred string) {
	for _, p := range e.sys.Order {
		e.compileFor(e.sys, p)
	}
	if !e.opts.DisableCyclicGuard {
		e.shapeFor(e.sys, pred)
	}
}

// PrecompileInverse builds the reversed equation system and compiles its
// automata, the analogue of Precompile for p(X, b) query plans.
func (e *Engine) PrecompileInverse(pred string) {
	rev := e.reversedSystem()
	for _, p := range rev.Order {
		e.compileFor(rev, p)
	}
	if !e.opts.DisableCyclicGuard {
		e.shapeFor(rev, pred)
	}
}

// System returns the engine's equation system.
func (e *Engine) System() *equations.System { return e.sys }

// RefreshRelations re-synchronizes the engine's compiled state with its
// source after a fact-only mutation, without recompiling anything: the
// pre-resolved relation table is re-resolved by name (entries are
// pointer-stable for in-place stores, so this matters only when the
// source itself re-materialized a relation) and cached automata get a
// ReannotateAux pass so base-predicate edges whose relation did not
// exist at compile time pick up their direct adjacency pointer. The
// equation system, the compiled automata and the cyclic-guard shapes are
// untouched — they depend only on the rules.
//
// The caller must exclude concurrent traversals of this engine for the
// duration (the chainlog layer runs it under the owning Prepared's
// exclusive plan lock, after a mutation that itself excluded all
// readers).
func (e *Engine) RefreshRelations() {
	rr, ok := e.src.(RelationResolver)
	if !ok {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := *e.rels.Load()
	changed := false
	next := make([]*edb.Relation, len(cur))
	copy(next, cur)
	for pred, i := range *e.relIdx.Load() {
		if rel := rr.ResolveRelation(pred); rel != nil && rel != next[i] {
			next[i] = rel
			changed = true
		}
	}
	if changed {
		e.rels.Store(&next)
	}
	// Upgrade NoAux edges whose predicate has materialized since the
	// automaton was annotated. relAuxLocked appends to the table, so the
	// closure below may publish further entries.
	for _, m := range *e.compiled.Load() {
		m.ReannotateAux(e.relAuxLocked)
	}
	for _, s := range *e.shapes.Load() {
		if s.ok {
			s.e0.ReannotateAux(e.relAuxLocked)
			s.e1.ReannotateAux(e.relAuxLocked)
			s.e2.ReannotateAux(e.relAuxLocked)
		}
	}
}

// visitedMode reports the Sym bound for dense page sizing and whether
// visited sets should use the sparse fallback. The bound comes from the
// source's symbol table when the source exposes one (SymBounder); pages
// still grow on demand when terms are interned mid-run.
func (e *Engine) visitedMode() (bound int, sparse bool) {
	if sb, ok := e.src.(SymBounder); ok {
		bound = sb.SymBound()
	}
	return bound, e.opts.SparseVisited || bound > denseVisitedLimit
}

// Query evaluates p(a, Y) and returns the sorted set of Y values.
func (e *Engine) Query(pred string, a symtab.Sym) (*Result, error) {
	return e.QueryCtx(nil, pred, a)
}

// QueryCtx is Query under a context: the traversal polls ctx at every
// main-loop level boundary and every cancelCheckInterval node visits,
// returning an error wrapping context.Cause(ctx) once it fires. A nil
// ctx never cancels and adds no overhead.
func (e *Engine) QueryCtx(ctx context.Context, pred string, a symtab.Sym) (*Result, error) {
	if _, ok := e.sys.EquationFor(pred); !ok {
		return nil, fmt.Errorf("chaineval: no equation for predicate %s", pred)
	}
	return e.runCtx(ctx, e.sys, pred, a)
}

// QueryStream evaluates p(a, Y) like Query but delivers the sorted
// answers to yield instead of materializing a Result. It is the warm
// path for prepared plans: every piece of traversal state comes from a
// pooled scratch, so steady-state calls on non-expanding (regular) plans
// perform zero heap allocations. Evaluation statistics are not reported;
// use Query when they are needed.
func (e *Engine) QueryStream(pred string, a symtab.Sym, yield func(symtab.Sym)) error {
	if _, ok := e.sys.EquationFor(pred); !ok {
		return fmt.Errorf("chaineval: no equation for predicate %s", pred)
	}
	sc := acquireScratch()
	defer releaseScratch(sc)
	if err := e.runInto(nil, e.sys, pred, a, sc, e.traversalWorkers()); err != nil {
		return err
	}
	for _, v := range sc.answers {
		yield(v)
	}
	return nil
}

// QueryInverse evaluates p(X, b) by applying the algorithm to the
// reversed equation system (the paper: "to evaluate p(X,b), simply apply
// the algorithm to the query r(b,Y), where r is the inverse of p").
func (e *Engine) QueryInverse(pred string, b symtab.Sym) (*Result, error) {
	return e.QueryInverseCtx(nil, pred, b)
}

// QueryInverseCtx is QueryInverse under a context; see QueryCtx.
func (e *Engine) QueryInverseCtx(ctx context.Context, pred string, b symtab.Sym) (*Result, error) {
	rev := e.reversedSystem()
	if _, ok := rev.EquationFor(pred); !ok {
		return nil, fmt.Errorf("chaineval: no equation for predicate %s", pred)
	}
	return e.runCtx(ctx, rev, pred, b)
}

// QueryInverseStream is QueryStream over the reversed system: p(X, b)
// with the sorted X values streamed to yield.
func (e *Engine) QueryInverseStream(pred string, b symtab.Sym, yield func(symtab.Sym)) error {
	rev := e.reversedSystem()
	if _, ok := rev.EquationFor(pred); !ok {
		return fmt.Errorf("chaineval: no equation for predicate %s", pred)
	}
	sc := acquireScratch()
	defer releaseScratch(sc)
	if err := e.runInto(nil, rev, pred, b, sc, e.traversalWorkers()); err != nil {
		return err
	}
	for _, v := range sc.answers {
		yield(v)
	}
	return nil
}

// QueryBoolean evaluates p(a, b). The binding of the second argument
// cannot be used by this algorithm (Section 3), so the query is evaluated
// with the second argument free and b checked for membership.
func (e *Engine) QueryBoolean(pred string, a, b symtab.Sym) (bool, *Result, error) {
	res, err := e.Query(pred, a)
	if err != nil {
		return false, nil, err
	}
	for _, v := range res.Answers {
		if v == b {
			return true, res, nil
		}
	}
	return false, res, nil
}

// QueryAll evaluates p(X, Y) for every source constant in domain,
// returning sorted pairs. For equation systems whose relevant equations
// are regular (no derived predicates), it uses the SCC-condensation
// optimization (Tarjan) so shared subgraphs are traversed once; otherwise
// it evaluates per source.
func (e *Engine) QueryAll(pred string, domain []symtab.Sym) ([][2]symtab.Sym, *Result, error) {
	return e.QueryAllCtx(nil, pred, domain)
}

// QueryAllCtx is QueryAll under a context; see QueryCtx.
func (e *Engine) QueryAllCtx(ctx context.Context, pred string, domain []symtab.Sym) ([][2]symtab.Sym, *Result, error) {
	if _, ok := e.sys.EquationFor(pred); !ok {
		return nil, nil, fmt.Errorf("chaineval: no equation for predicate %s", pred)
	}
	if e.regularFor(e.sys, pred) {
		answers, res, err := e.batchRegular(ctx, e.sys, pred, domain)
		if err != nil {
			return nil, nil, err
		}
		var pairs [][2]symtab.Sym
		for i, a := range domain {
			for _, v := range answers[i] {
				pairs = append(pairs, [2]symtab.Sym{a, v})
			}
		}
		sortPairs(pairs)
		return pairs, res, nil
	}
	var pairs [][2]symtab.Sym
	agg := &Result{Converged: true}
	for _, a := range domain {
		res, err := e.runCtx(ctx, e.sys, pred, a)
		if err != nil {
			return nil, nil, err
		}
		for _, v := range res.Answers {
			pairs = append(pairs, [2]symtab.Sym{a, v})
		}
		agg.Nodes += res.Nodes
		agg.Expansions += res.Expansions
		if res.Iterations > agg.Iterations {
			agg.Iterations = res.Iterations
		}
		agg.Converged = agg.Converged && res.Converged
	}
	sortPairs(pairs)
	return pairs, agg, nil
}

// node is one vertex of the interpretation graph G(p,a,i).
type node struct {
	q int
	u symtab.Sym
}

// run executes the traversal with pooled scratch and materializes a
// Result for callers that need the statistics.
func (e *Engine) run(sys *equations.System, pred string, a symtab.Sym) (*Result, error) {
	return e.runWith(nil, sys, pred, a, e.traversalWorkers())
}

// runCtx is run under a cancellation context (nil = none).
func (e *Engine) runCtx(ctx context.Context, sys *equations.System, pred string, a symtab.Sym) (*Result, error) {
	return e.runWith(ctx, sys, pred, a, e.traversalWorkers())
}

// runWith is run with an explicit traversal worker count: batch
// evaluation pins it to 1 when the batch itself is fanned out across
// workers, so nested parallelism cannot oversubscribe the host.
func (e *Engine) runWith(ctx context.Context, sys *equations.System, pred string, a symtab.Sym, workers int) (*Result, error) {
	sc := acquireScratch()
	defer releaseScratch(sc)
	if err := e.runInto(ctx, sys, pred, a, sc, workers); err != nil {
		return nil, err
	}
	res := new(Result)
	*res = sc.res
	res.Answers = make([]symtab.Sym, len(sc.answers))
	copy(res.Answers, sc.answers)
	return res, nil
}

// probe resolves one base-predicate edge from term u: raw (uncounted)
// adjacency through the resolved-relation table when the edge is
// annotated — two array loads, statistics accumulated in counts — and
// the by-name Source path otherwise (whose implementations count their
// own probes). counts is the caller's accumulator (the run scratch's, or
// a parallel worker's private one).
func (e *Engine) probe(t *automaton.Edge, u symtab.Sym, rels []*edb.Relation, counts []probeCount) []symtab.Sym {
	if t.Aux >= 0 {
		var vs []symtab.Sym
		if t.Kind == automaton.KindBaseInv {
			vs = rels[t.Aux].PredecessorsRaw(u)
		} else {
			vs = rels[t.Aux].SuccessorsRaw(u)
		}
		c := &counts[t.Aux]
		c.lookups++
		c.retrieved += int64(len(vs))
		return vs
	}
	if t.Kind == automaton.KindBaseInv {
		return e.src.Predecessors(t.Label.Pred, u)
	}
	return e.src.Successors(t.Label.Pred, u)
}

// ErrMaxNodes is the sentinel wrapped by every interpretation-graph
// resource-bound error, so callers (the serving layer's admission
// control) can classify the failure with errors.Is.
var ErrMaxNodes = errors.New("interpretation graph exceeded MaxNodes")

// maxNodesErr is the interpretation-graph resource-bound error; one
// constructor so the sequential and parallel paths report identically.
func (e *Engine) maxNodesErr() error {
	return fmt.Errorf("chaineval: %w=%d", ErrMaxNodes, e.opts.MaxNodes)
}

// runInto is the main program of Figure 4. It leaves the statistics in
// sc.res and the sorted answer set in sc.answers; everything it touches
// lives in sc, so a warm scratch makes the whole run allocation-free
// until the automaton itself must grow (EM expansion). A non-nil ctx is
// polled at level boundaries and every cancelCheckInterval node visits.
func (e *Engine) runInto(ctx context.Context, sys *equations.System, pred string, a symtab.Sym, sc *runScratch, workers int) error {
	em := e.compileFor(sys, pred)
	if !e.regularFor(sys, pred) {
		// EM(p,1) = copy of M(e_p); expansion will mutate it, so copy
		// into the scratch automaton (storage reused run over run).
		// Regular equations never expand and traverse the cached
		// automaton directly, clone-free.
		em.CloneInto(&sc.em)
		em = &sc.em
	}
	sc.res = Result{}
	res := &sc.res

	rels := *e.rels.Load()
	sc.resetCounts(len(rels))
	defer func() { flushCounts(*e.rels.Load(), sc.relCounts) }()

	sc.cn = newCanceler(ctx)
	cn := &sc.cn
	bound, sparse := e.visitedMode()
	var iterBound int
	if !e.opts.DisableCyclicGuard {
		var err error
		iterBound, err = e.cyclicBound(cn, sys, pred, a, sc, rels, bound, sparse)
		if err != nil {
			return err
		}
	}

	G := &sc.G
	G.reset(bound, sparse)
	sc.stack = sc.stack[:0]
	sc.cont = sc.cont[:0]
	sc.answers = sc.answers[:0]
	sc.starts = append(sc.starts[:0], node{em.Start, a})

	// visit implements the node-insertion step: mark (q, u), record
	// answers at the final state, and push for traversal. It reports
	// false when MaxNodes is exceeded.
	visit := func(n node) bool {
		if !G.visit(n.q, n.u) {
			return true
		}
		if e.opts.Tracer != nil {
			e.opts.Tracer.Node(n.q, n.u)
		}
		if n.q == em.Final {
			sc.answers = append(sc.answers, n.u)
			if e.opts.Tracer != nil {
				e.opts.Tracer.Answer(n.u)
			}
		}
		sc.stack = append(sc.stack, n)
		return e.opts.MaxNodes == 0 || G.count <= e.opts.MaxNodes
	}
	// traverse implements Figure 5 iteratively: it pops nodes, follows
	// base and id transitions creating new nodes, and records
	// continuation points at derived-predicate transitions. The edge
	// dispatch is a jump on the precomputed Kind — no string comparisons
	// or map lookups — and base probes go through the resolved-relation
	// table.
	traverse := func() error {
		ticks := 0
		for len(sc.stack) > 0 {
			if ticks++; ticks&cancelCheckMask == 0 {
				if err := cn.check(); err != nil {
					return err
				}
			}
			n := sc.stack[len(sc.stack)-1]
			sc.stack = sc.stack[:len(sc.stack)-1]
			continued := false
			edges := em.Edges(n.q)
			for i := range edges {
				t := &edges[i]
				if t.Removed() {
					continue
				}
				switch t.Kind {
				case automaton.KindID:
					if !visit(node{int(t.To), n.u}) {
						return e.maxNodesErr()
					}
				case automaton.KindDerived:
					// Each node is popped exactly once, so appending on
					// the first derived transition keeps sc.cont
					// duplicate-free without a set.
					if !continued {
						continued = true
						sc.cont = append(sc.cont, n)
					}
				default:
					to := int(t.To)
					for _, v := range e.probe(t, n.u, rels, sc.relCounts) {
						if !visit(node{to, v}) {
							return e.maxNodesErr()
						}
					}
				}
			}
		}
		return nil
	}

	for {
		res.Iterations++
		if e.opts.Tracer != nil {
			e.opts.Tracer.Iteration(res.Iterations)
		}
		// Level boundary: the canonical cancellation point (regular
		// equations converge in one iteration, so traverse/the parallel
		// workers poll mid-level too).
		if err := cn.check(); err != nil {
			return err
		}
		sc.cont = sc.cont[:0]
		prevAnswers := len(sc.answers)
		if workers > 1 {
			// Parallel mode: seed every fresh start node, then drain the
			// traversal level-synchronously with sharded large levels.
			for _, n := range sc.starts {
				if !G.has(n.q, n.u) && !visit(n) {
					return e.maxNodesErr()
				}
			}
			if err := e.traverseParallel(cn, em, sc, rels, workers, bound, sparse, visit); err != nil {
				return err
			}
		} else {
			for _, n := range sc.starts {
				if !G.has(n.q, n.u) {
					if !visit(n) {
						return e.maxNodesErr()
					}
					if err := traverse(); err != nil {
						return err
					}
				}
			}
		}
		if len(sc.answers) > prevAnswers || res.AnswerCompleteAt == 0 && len(sc.answers) > 0 {
			res.AnswerCompleteAt = res.Iterations
		}

		if len(sc.cont) == 0 {
			res.Converged = true
			break
		}
		if e.opts.MaxIterations > 0 && res.Iterations >= e.opts.MaxIterations {
			break
		}
		if iterBound > 0 && res.Iterations >= iterBound {
			res.Converged = true
			res.BoundStopped = true
			break
		}

		// Expand every derived-predicate transition leaving a state that
		// acquired a continuation point, building EM(p,i+1).
		sc.starts = sc.starts[:0]
		if sc.states == nil {
			sc.states = make(map[int][]symtab.Sym)
		} else {
			clear(sc.states)
		}
		for _, n := range sc.cont {
			sc.states[n.q] = append(sc.states[n.q], n.u)
		}
		for q, terms := range sc.states {
			for _, id := range em.OutIDs(q) {
				t := em.Trans(id)
				if t.Label.IsID() || !sys.Derived[t.Label.Pred] {
					continue
				}
				sub := e.compileFor(sys, t.Label.Pred)
				start, final := em.AddCopy(sub)
				em.AddTrans(q, automaton.Label{}, start)
				em.AddTrans(final, automaton.Label{}, t.To)
				em.Remove(id)
				res.Expansions++
				if e.opts.Tracer != nil {
					e.opts.Tracer.Expand(t.Label.Pred, q, start)
				}
				for _, u := range terms {
					sc.starts = append(sc.starts, node{start, u})
				}
			}
		}
		// Compiling an expansion body may have resolved relations that
		// were not in the table when the run began; pick them up so the
		// spliced copy's annotated edges index in bounds.
		if cur := *e.rels.Load(); len(cur) != len(rels) {
			rels = cur
			sc.growCounts(len(rels))
		}
	}

	res.Nodes = G.count
	res.States = em.NumStates()
	res.Transitions = em.NumTrans()
	slices.Sort(sc.answers)
	return nil
}

// cacheKey disambiguates forward and reversed systems in the shared
// caches.
func (e *Engine) cacheKey(sys *equations.System, pred string) string {
	if sys == e.reversed.Load() {
		return "\x00rev\x00" + pred
	}
	return pred
}

// compileFor returns the cached M(e_p) for the given system (forward
// systems share e.compiled; reversed systems use a prefixed key). Safe
// for concurrent use; the fast path is a lock-free map read.
func (e *Engine) compileFor(sys *equations.System, pred string) *automaton.NFA {
	key := e.cacheKey(sys, pred)
	if m, ok := (*e.compiled.Load())[key]; ok {
		return m
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := *e.compiled.Load()
	if m, ok := cur[key]; ok {
		return m
	}
	m := automaton.Compile(sys.Eq[pred])
	e.annotateLocked(sys, m)
	next := make(map[string]*automaton.NFA, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[key] = m
	e.compiled.Store(&next)
	return m
}

// regularFor returns the cached IsRegularFor verdict for the given
// system and predicate. Safe for concurrent use; the fast path is a
// lock-free map read.
func (e *Engine) regularFor(sys *equations.System, pred string) bool {
	key := e.cacheKey(sys, pred)
	if v, ok := (*e.regular.Load())[key]; ok {
		return v
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := *e.regular.Load()
	if v, ok := cur[key]; ok {
		return v
	}
	v := sys.IsRegularFor(pred)
	next := make(map[string]bool, len(cur)+1)
	for k, x := range cur {
		next[k] = x
	}
	next[key] = v
	e.regular.Store(&next)
	return v
}

// shapeFor returns the cached linear decomposition of pred's equation
// with its part automata compiled, computing it on first use.
func (e *Engine) shapeFor(sys *equations.System, pred string) *shapeAutomata {
	key := e.cacheKey(sys, pred)
	if s, ok := (*e.shapes.Load())[key]; ok {
		return s
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := *e.shapes.Load()
	if s, ok := cur[key]; ok {
		return s
	}
	s := &shapeAutomata{}
	if shape, ok := sys.LinearDecompose(pred); ok {
		s.ok = true
		s.e0 = automaton.Compile(shape.E0)
		s.e1 = automaton.Compile(shape.E1)
		s.e2 = automaton.Compile(shape.E2)
		e.annotateLocked(sys, s.e0)
		e.annotateLocked(sys, s.e1)
		e.annotateLocked(sys, s.e2)
	}
	next := make(map[string]*shapeAutomata, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[key] = s
	e.shapes.Store(&next)
	return s
}

// reversedSystem builds (once) the equation system for the inverse
// relations: each equation p = e_p becomes p = rev(e_p) where rev reverses
// compositions, pushes inverses onto base predicates, and keeps derived
// predicates as references to their (reversed) equations.
func (e *Engine) reversedSystem() *equations.System {
	if rev := e.reversed.Load(); rev != nil {
		return rev
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if rev := e.reversed.Load(); rev != nil {
		return rev
	}
	rev := &equations.System{
		Order:         append([]string(nil), e.sys.Order...),
		Eq:            make(map[string]expr.Expr),
		Derived:       e.sys.Derived,
		InitialMutual: e.sys.InitialMutual,
	}
	for _, p := range e.sys.Order {
		rev.Eq[p] = reverseExpr(e.sys.Eq[p], e.sys.Derived)
	}
	e.reversed.Store(rev)
	return rev
}

func reverseExpr(ex expr.Expr, derived map[string]bool) expr.Expr {
	switch v := ex.(type) {
	case expr.Pred:
		if derived[v.Name] {
			return v // refers to the reversed equation of the same name
		}
		return expr.NewInverse(v)
	case expr.Empty, expr.Ident:
		return ex
	case expr.Union:
		terms := make([]expr.Expr, len(v.Terms))
		for i, t := range v.Terms {
			terms[i] = reverseExpr(t, derived)
		}
		return expr.NewUnion(terms...)
	case expr.Concat:
		terms := make([]expr.Expr, len(v.Terms))
		for i, t := range v.Terms {
			terms[len(v.Terms)-1-i] = reverseExpr(t, derived)
		}
		return expr.NewConcat(terms...)
	case expr.Star:
		return expr.NewStar(reverseExpr(v.E, derived))
	case expr.Inverse:
		if p, ok := v.E.(expr.Pred); ok && !derived[p.Name] {
			return p
		}
		return reverseExpr(expr.Reverse(v.E), derived)
	}
	return ex
}

// cyclicBound computes the m·n iteration bound for equations of the
// linear shape p = e0 ∪ e1·p·e2: m is the number of nodes accessible from
// the query constant by repeated application of e1, and n the number of
// nodes accessible via e2 from the e0-images of those (the paper's D1 and
// D2 sets). Returns 0 when the shape does not apply. All working sets
// come from sc, so warm calls allocate nothing. The closures walk the
// same data the traversal will, so they poll the run's canceler too.
func (e *Engine) cyclicBound(cn *canceler, sys *equations.System, pred string, a symtab.Sym, sc *runScratch, rels []*edb.Relation, bound int, sparse bool) (int, error) {
	sh := e.shapeFor(sys, pred)
	if !sh.ok {
		return 0, nil
	}
	// shapeFor may have just resolved relations the part automata refer
	// to; reload so their annotated edges index in bounds.
	if cur := *e.rels.Load(); len(cur) != len(rels) {
		rels = cur
		sc.growCounts(len(rels))
	}
	var err error
	sc.d1 = append(sc.d1[:0], a)
	if sc.d1, err = e.closure(cn, sh.e1, sc.d1, sc, rels, bound, sparse); err != nil {
		return 0, err
	}
	sc.d2 = sc.d2[:0]
	for _, s := range sc.d1 {
		if sc.d2, err = e.regularImage(cn, sh.e0, s, sc.d2, sc, rels, bound, sparse); err != nil {
			return 0, err
		}
	}
	if sc.d2, err = e.closure(cn, sh.e2, sc.d2, sc, rels, bound, sparse); err != nil {
		return 0, err
	}
	m, n := len(sc.d1), len(sc.d2)
	if m == 0 {
		m = 1
	}
	if n == 0 {
		n = 1
	}
	return m * n, nil
}

// closure extends the seed terms already in dst to the set of terms
// reachable from them by zero or more applications of the relation
// denoted by the compiled automaton m. dst doubles as the worklist; the
// deduplicated closure (seeds included) is returned in place.
func (e *Engine) closure(cn *canceler, m *automaton.NFA, dst []symtab.Sym, sc *runScratch, rels []*edb.Relation, bound int, sparse bool) ([]symtab.Sym, error) {
	sc.terms.reset(bound, sparse)
	n := 0
	for _, s := range dst {
		if sc.terms.add(s) {
			dst[n] = s
			n++
		}
	}
	dst = dst[:n]
	var err error
	for i := 0; i < len(dst); i++ {
		if sc.img, err = e.regularImage(cn, m, dst[i], sc.img[:0], sc, rels, bound, sparse); err != nil {
			return dst, err
		}
		for _, v := range sc.img {
			if sc.terms.add(v) {
				dst = append(dst, v)
			}
		}
	}
	return dst, nil
}

// regularImage appends to out the terms at the final state of a
// single-iteration traversal of the derived-free automaton m from u.
// Node-level deduplication (sc.rG) guarantees each image term is
// appended at most once.
func (e *Engine) regularImage(cn *canceler, m *automaton.NFA, u symtab.Sym, out []symtab.Sym, sc *runScratch, rels []*edb.Relation, bound int, sparse bool) ([]symtab.Sym, error) {
	sc.rG.reset(bound, sparse)
	sc.rStack = append(sc.rStack[:0], node{m.Start, u})
	sc.rG.visit(m.Start, u)
	if m.Start == m.Final {
		out = append(out, u)
	}
	ticks := 0
	for len(sc.rStack) > 0 {
		if ticks++; ticks&cancelCheckMask == 0 {
			if err := cn.check(); err != nil {
				return out, err
			}
		}
		n := sc.rStack[len(sc.rStack)-1]
		sc.rStack = sc.rStack[:len(sc.rStack)-1]
		edges := m.Edges(n.q)
		for i := range edges {
			t := &edges[i]
			if t.Removed() {
				continue
			}
			if t.Kind == automaton.KindID {
				if sc.rG.visit(int(t.To), n.u) {
					sc.rStack = append(sc.rStack, node{int(t.To), n.u})
					if int(t.To) == m.Final {
						out = append(out, n.u)
					}
				}
				continue
			}
			for _, v := range e.probe(t, n.u, rels, sc.relCounts) {
				if sc.rG.visit(int(t.To), v) {
					sc.rStack = append(sc.rStack, node{int(t.To), v})
					if int(t.To) == m.Final {
						out = append(out, v)
					}
				}
			}
		}
	}
	return out, nil
}

func sortPairs(pairs [][2]symtab.Sym) {
	slices.SortFunc(pairs, func(a, b [2]symtab.Sym) int {
		if a[0] != b[0] {
			return int(a[0]) - int(b[0])
		}
		return int(a[1]) - int(b[1])
	})
}
