// Package chaineval implements the paper's evaluation algorithm
// (Figures 4 and 5): a demand-driven graph traversal that evaluates a
// query p(a, Y) over the equation system produced by the Lemma 1
// transformation.
//
// The state of the evaluation is the interpretation graph G(p,a,i) of the
// automaton hierarchy EM(p,i): its nodes are pairs (q, u) of an automaton
// state and a term. Only nodes are stored, never arcs — the paper's third
// performance factor. The graph is built during the traversal, so the set
// of constructed nodes equals the set of nodes reachable from the query
// constant, which bounds the potentially relevant facts (factor two), and
// each node is visited exactly once (factor one: no duplicated work).
//
// Transitions on derived predicates are continuation points: at the end of
// each main-loop iteration they are expanded in place by fresh copies of
// M(e_r) (building EM(p,i+1)), and traversal resumes from the copied start
// states. The loop stops when no continuation points remain; for cyclic
// data, where that may never happen, the engine optionally applies the
// Marchetti-Spaccamela m·n accessible-node bound for equations of the
// linear shape p = e0 ∪ e1·p·e2.
package chaineval

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"chainlog/internal/automaton"
	"chainlog/internal/equations"
	"chainlog/internal/expr"
	"chainlog/internal/graph"
	"chainlog/internal/symtab"
)

// Source resolves base-predicate names to binary-relation access. The
// extensional database implements it directly; the Section 4
// transformation supplies a source whose base-r/in-r/out-r relations are
// computed by demand-driven joins.
type Source interface {
	// Successors returns all v with pred(u, v).
	Successors(pred string, u symtab.Sym) []symtab.Sym
	// Predecessors returns all u with pred(u, v); needed for inverse
	// labels introduced by p(X, b) query reversal.
	Predecessors(pred string, v symtab.Sym) []symtab.Sym
}

// Options tunes the engine.
type Options struct {
	// MaxIterations caps the number of main-loop iterations; 0 means no
	// cap (the loop runs until no continuation points remain or the
	// cyclic guard fires).
	MaxIterations int
	// DisableCyclicGuard turns off the m·n accessible-node iteration
	// bound for equations of the linear shape p = e0 ∪ e1·p·e2 (the
	// extension of Marchetti-Spaccamela et al. discussed in Section 3).
	// The guard is on by default: with it, evaluation over cyclic data
	// terminates with the complete answer; without it, cyclic data loops
	// until MaxIterations (or forever).
	DisableCyclicGuard bool
	// MaxNodes aborts evaluation when the interpretation graph exceeds
	// this many nodes; 0 means unlimited. A defensive resource bound.
	MaxNodes int
	// Tracer, when non-nil, observes iterations, node insertions,
	// expansions and answers as they happen.
	Tracer Tracer
}

// Result reports the answers and the evaluation statistics the paper's
// complexity analysis is stated in.
type Result struct {
	// Answers is the sorted answer set {u | (q_f, u) ∈ G}.
	Answers []symtab.Sym
	// Iterations is the number of main-loop iterations performed (the h
	// of Theorem 4).
	Iterations int
	// Nodes is the number of nodes in the final interpretation graph.
	Nodes int
	// States and Transitions describe the final EM(p,i) automaton.
	States, Transitions int
	// Expansions counts derived-predicate transitions expanded.
	Expansions int
	// Converged is true when the algorithm terminated with a complete
	// answer (continuation points exhausted, or the cyclic bound
	// guaranteed completeness); false when MaxIterations cut it off.
	Converged bool
	// BoundStopped is true when the cyclic guard ended the loop.
	BoundStopped bool
	// AnswerCompleteAt is the first iteration after which the answer set
	// stopped growing (1-based; 0 when no iterations ran). Experiment E3
	// reads the paper's "m·n iterations needed" claim from this.
	AnswerCompleteAt int
}

// Engine evaluates queries over one equation system and one source.
//
// An Engine is reusable: the automata M(e_r), the reversed equation
// system and the linear-shape decompositions are compiled once and cached,
// so the same engine answers queries for many different bound constants
// without recompiling anything. All caches are guarded by an internal
// mutex and the per-query state is local to each call, so one engine may
// serve Query/QueryInverse/QueryAll from many goroutines concurrently
// (provided its Source is itself safe for concurrent reads, as the
// extensional store is).
type Engine struct {
	sys  *equations.System
	src  Source
	opts Options

	// mu serializes additions to the compilation caches below; lookups
	// go through the atomic pointers without locking (the maps are
	// copy-on-write), keeping concurrent queries off a shared lock.
	mu sync.Mutex
	// compiled caches M(e_r) per derived predicate.
	compiled atomic.Pointer[map[string]*automaton.NFA]
	// reversed caches the reversed equation system for p(X,b) queries.
	reversed atomic.Pointer[equations.System]
	// shapes caches the linear decomposition p = e0 ∪ e1·p·e2 and its
	// compiled automata per predicate (used by the cyclic guard).
	shapes atomic.Pointer[map[string]*shapeAutomata]
}

// shapeAutomata is a cached LinearDecompose result with the automata of
// its three parts precompiled.
type shapeAutomata struct {
	ok         bool
	e0, e1, e2 *automaton.NFA
}

// New returns an engine over the system and source.
func New(sys *equations.System, src Source, opts Options) *Engine {
	e := &Engine{sys: sys, src: src, opts: opts}
	compiled := make(map[string]*automaton.NFA)
	e.compiled.Store(&compiled)
	shapes := make(map[string]*shapeAutomata)
	e.shapes.Store(&shapes)
	return e
}

// Precompile compiles and caches the automaton M(e_p) of every equation
// in the system (forward direction), plus the cyclic-guard shape automata
// for pred, so that subsequent Query calls perform no compilation at all.
// Prepared query plans call this once at plan-build time.
func (e *Engine) Precompile(pred string) {
	for _, p := range e.sys.Order {
		e.compileFor(e.sys, p)
	}
	if !e.opts.DisableCyclicGuard {
		e.shapeFor(e.sys, pred)
	}
}

// PrecompileInverse builds the reversed equation system and compiles its
// automata, the analogue of Precompile for p(X, b) query plans.
func (e *Engine) PrecompileInverse(pred string) {
	rev := e.reversedSystem()
	for _, p := range rev.Order {
		e.compileFor(rev, p)
	}
	if !e.opts.DisableCyclicGuard {
		e.shapeFor(rev, pred)
	}
}

// System returns the engine's equation system.
func (e *Engine) System() *equations.System { return e.sys }

// Query evaluates p(a, Y) and returns the sorted set of Y values.
func (e *Engine) Query(pred string, a symtab.Sym) (*Result, error) {
	if _, ok := e.sys.EquationFor(pred); !ok {
		return nil, fmt.Errorf("chaineval: no equation for predicate %s", pred)
	}
	return e.run(e.sys, pred, a)
}

// QueryInverse evaluates p(X, b) by applying the algorithm to the
// reversed equation system (the paper: "to evaluate p(X,b), simply apply
// the algorithm to the query r(b,Y), where r is the inverse of p").
func (e *Engine) QueryInverse(pred string, b symtab.Sym) (*Result, error) {
	rev := e.reversedSystem()
	if _, ok := rev.EquationFor(pred); !ok {
		return nil, fmt.Errorf("chaineval: no equation for predicate %s", pred)
	}
	return e.run(rev, pred, b)
}

// QueryBoolean evaluates p(a, b). The binding of the second argument
// cannot be used by this algorithm (Section 3), so the query is evaluated
// with the second argument free and b checked for membership.
func (e *Engine) QueryBoolean(pred string, a, b symtab.Sym) (bool, *Result, error) {
	res, err := e.Query(pred, a)
	if err != nil {
		return false, nil, err
	}
	for _, v := range res.Answers {
		if v == b {
			return true, res, nil
		}
	}
	return false, res, nil
}

// QueryAll evaluates p(X, Y) for every source constant in domain,
// returning sorted pairs. For equation systems whose relevant equations
// are regular (no derived predicates), it uses the SCC-condensation
// optimization (Tarjan) so shared subgraphs are traversed once; otherwise
// it evaluates per source.
func (e *Engine) QueryAll(pred string, domain []symtab.Sym) ([][2]symtab.Sym, *Result, error) {
	if _, ok := e.sys.EquationFor(pred); !ok {
		return nil, nil, fmt.Errorf("chaineval: no equation for predicate %s", pred)
	}
	if e.sys.IsRegularFor(pred) {
		return e.allPairsRegular(pred, domain)
	}
	var pairs [][2]symtab.Sym
	agg := &Result{Converged: true}
	for _, a := range domain {
		res, err := e.run(e.sys, pred, a)
		if err != nil {
			return nil, nil, err
		}
		for _, v := range res.Answers {
			pairs = append(pairs, [2]symtab.Sym{a, v})
		}
		agg.Nodes += res.Nodes
		agg.Expansions += res.Expansions
		if res.Iterations > agg.Iterations {
			agg.Iterations = res.Iterations
		}
		agg.Converged = agg.Converged && res.Converged
	}
	sortPairs(pairs)
	return pairs, agg, nil
}

// node is one vertex of the interpretation graph G(p,a,i).
type node struct {
	q int
	u symtab.Sym
}

// run is the main program of Figure 4.
func (e *Engine) run(sys *equations.System, pred string, a symtab.Sym) (*Result, error) {
	em := e.compileFor(sys, pred).Clone() // EM(p,1) = copy of M(e_p)
	res := &Result{}

	G := make(map[node]bool)
	answers := make(map[symtab.Sym]bool)
	S := []node{{em.Start, a}}

	var bound int
	if !e.opts.DisableCyclicGuard {
		bound = e.cyclicBound(sys, pred, a)
	}

	var stack []node
	// traverse implements Figure 5 iteratively: it pops nodes, follows
	// base and id transitions creating new nodes, and records
	// continuation points at derived-predicate transitions.
	C := make(map[node]bool)
	visit := func(n node) bool {
		if G[n] {
			return true
		}
		G[n] = true
		if e.opts.Tracer != nil {
			e.opts.Tracer.Node(n.q, n.u)
		}
		if n.q == em.Final {
			answers[n.u] = true
			if e.opts.Tracer != nil {
				e.opts.Tracer.Answer(n.u)
			}
		}
		stack = append(stack, n)
		return e.opts.MaxNodes == 0 || len(G) <= e.opts.MaxNodes
	}
	traverse := func() error {
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			var overflow bool
			em.Out(n.q, func(_ int, t automaton.Trans) {
				if overflow {
					return
				}
				switch {
				case t.Label.IsID():
					if !visit(node{t.To, n.u}) {
						overflow = true
					}
				case sys.Derived[t.Label.Pred]:
					C[n] = true
				default:
					var vs []symtab.Sym
					if t.Label.Inv {
						vs = e.src.Predecessors(t.Label.Pred, n.u)
					} else {
						vs = e.src.Successors(t.Label.Pred, n.u)
					}
					for _, v := range vs {
						if !visit(node{t.To, v}) {
							overflow = true
							return
						}
					}
				}
			})
			if overflow {
				return fmt.Errorf("chaineval: interpretation graph exceeded MaxNodes=%d", e.opts.MaxNodes)
			}
		}
		return nil
	}

	for {
		res.Iterations++
		if e.opts.Tracer != nil {
			e.opts.Tracer.Iteration(res.Iterations)
		}
		for k := range C {
			delete(C, k)
		}
		prevAnswers := len(answers)
		for _, n := range S {
			if !G[n] {
				if !visit(n) {
					return nil, fmt.Errorf("chaineval: interpretation graph exceeded MaxNodes=%d", e.opts.MaxNodes)
				}
				if err := traverse(); err != nil {
					return nil, err
				}
			}
		}
		if len(answers) > prevAnswers || res.AnswerCompleteAt == 0 && len(answers) > 0 {
			res.AnswerCompleteAt = res.Iterations
		}

		if len(C) == 0 {
			res.Converged = true
			break
		}
		if e.opts.MaxIterations > 0 && res.Iterations >= e.opts.MaxIterations {
			break
		}
		if bound > 0 && res.Iterations >= bound {
			res.Converged = true
			res.BoundStopped = true
			break
		}

		// Expand every derived-predicate transition leaving a state that
		// acquired a continuation point, building EM(p,i+1).
		S = S[:0]
		states := make(map[int][]symtab.Sym)
		for n := range C {
			states[n.q] = append(states[n.q], n.u)
		}
		for q, terms := range states {
			for _, id := range em.OutIDs(q) {
				t := em.Trans(id)
				if t.Label.IsID() || !sys.Derived[t.Label.Pred] {
					continue
				}
				sub := e.compileFor(sys, t.Label.Pred)
				start, final := em.AddCopy(sub)
				em.AddTrans(q, automaton.Label{}, start)
				em.AddTrans(final, automaton.Label{}, t.To)
				em.Remove(id)
				res.Expansions++
				if e.opts.Tracer != nil {
					e.opts.Tracer.Expand(t.Label.Pred, q, start)
				}
				for _, u := range terms {
					S = append(S, node{start, u})
				}
			}
		}
	}

	res.Nodes = len(G)
	res.States = em.NumStates()
	res.Transitions = em.NumTrans()
	res.Answers = sortedSyms(answers)
	return res, nil
}

// cacheKey disambiguates forward and reversed systems in the shared
// caches.
func (e *Engine) cacheKey(sys *equations.System, pred string) string {
	if sys == e.reversed.Load() {
		return "\x00rev\x00" + pred
	}
	return pred
}

// compileFor returns the cached M(e_p) for the given system (forward
// systems share e.compiled; reversed systems use a prefixed key). Safe
// for concurrent use; the fast path is a lock-free map read.
func (e *Engine) compileFor(sys *equations.System, pred string) *automaton.NFA {
	key := e.cacheKey(sys, pred)
	if m, ok := (*e.compiled.Load())[key]; ok {
		return m
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := *e.compiled.Load()
	if m, ok := cur[key]; ok {
		return m
	}
	m := automaton.Compile(sys.Eq[pred])
	next := make(map[string]*automaton.NFA, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[key] = m
	e.compiled.Store(&next)
	return m
}

// shapeFor returns the cached linear decomposition of pred's equation
// with its part automata compiled, computing it on first use.
func (e *Engine) shapeFor(sys *equations.System, pred string) *shapeAutomata {
	key := e.cacheKey(sys, pred)
	if s, ok := (*e.shapes.Load())[key]; ok {
		return s
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := *e.shapes.Load()
	if s, ok := cur[key]; ok {
		return s
	}
	s := &shapeAutomata{}
	if shape, ok := sys.LinearDecompose(pred); ok {
		s.ok = true
		s.e0 = automaton.Compile(shape.E0)
		s.e1 = automaton.Compile(shape.E1)
		s.e2 = automaton.Compile(shape.E2)
	}
	next := make(map[string]*shapeAutomata, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[key] = s
	e.shapes.Store(&next)
	return s
}

// reversedSystem builds (once) the equation system for the inverse
// relations: each equation p = e_p becomes p = rev(e_p) where rev reverses
// compositions, pushes inverses onto base predicates, and keeps derived
// predicates as references to their (reversed) equations.
func (e *Engine) reversedSystem() *equations.System {
	if rev := e.reversed.Load(); rev != nil {
		return rev
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if rev := e.reversed.Load(); rev != nil {
		return rev
	}
	rev := &equations.System{
		Order:         append([]string(nil), e.sys.Order...),
		Eq:            make(map[string]expr.Expr),
		Derived:       e.sys.Derived,
		InitialMutual: e.sys.InitialMutual,
	}
	for _, p := range e.sys.Order {
		rev.Eq[p] = reverseExpr(e.sys.Eq[p], e.sys.Derived)
	}
	e.reversed.Store(rev)
	return rev
}

func reverseExpr(ex expr.Expr, derived map[string]bool) expr.Expr {
	switch v := ex.(type) {
	case expr.Pred:
		if derived[v.Name] {
			return v // refers to the reversed equation of the same name
		}
		return expr.NewInverse(v)
	case expr.Empty, expr.Ident:
		return ex
	case expr.Union:
		terms := make([]expr.Expr, len(v.Terms))
		for i, t := range v.Terms {
			terms[i] = reverseExpr(t, derived)
		}
		return expr.NewUnion(terms...)
	case expr.Concat:
		terms := make([]expr.Expr, len(v.Terms))
		for i, t := range v.Terms {
			terms[len(v.Terms)-1-i] = reverseExpr(t, derived)
		}
		return expr.NewConcat(terms...)
	case expr.Star:
		return expr.NewStar(reverseExpr(v.E, derived))
	case expr.Inverse:
		if p, ok := v.E.(expr.Pred); ok && !derived[p.Name] {
			return p
		}
		return reverseExpr(expr.Reverse(v.E), derived)
	}
	return ex
}

// cyclicBound computes the m·n iteration bound for equations of the
// linear shape p = e0 ∪ e1·p·e2: m is the number of nodes accessible from
// the query constant by repeated application of e1, and n the number of
// nodes accessible via e2 from the e0-images of those (the paper's D1 and
// D2 sets). Returns 0 when the shape does not apply.
func (e *Engine) cyclicBound(sys *equations.System, pred string, a symtab.Sym) int {
	sh := e.shapeFor(sys, pred)
	if !sh.ok {
		return 0
	}
	d1 := e.accessible(sh.e1, []symtab.Sym{a})
	starts2 := e.imageSet(sh.e0, d1)
	d2 := e.accessible(sh.e2, starts2)
	m, n := len(d1), len(d2)
	if m == 0 {
		m = 1
	}
	if n == 0 {
		n = 1
	}
	return m * n
}

// accessible returns the set of terms reachable from starts by zero or
// more applications of the relation denoted by the compiled automaton m
// (including the starts).
func (e *Engine) accessible(m *automaton.NFA, starts []symtab.Sym) []symtab.Sym {
	seen := make(map[symtab.Sym]bool)
	work := append([]symtab.Sym(nil), starts...)
	for _, s := range starts {
		seen[s] = true
	}
	for len(work) > 0 {
		u := work[len(work)-1]
		work = work[:len(work)-1]
		for _, v := range e.regularImage(m, u) {
			if !seen[v] {
				seen[v] = true
				work = append(work, v)
			}
		}
	}
	return sortedSyms(seen)
}

// imageSet returns the union of images of the given terms under the
// compiled automaton m.
func (e *Engine) imageSet(m *automaton.NFA, starts []symtab.Sym) []symtab.Sym {
	out := make(map[symtab.Sym]bool)
	for _, s := range starts {
		for _, v := range e.regularImage(m, s) {
			out[v] = true
		}
	}
	return sortedSyms(out)
}

// regularImage runs a single-iteration traversal of a derived-free
// automaton from (start, u) and returns the terms at the final state.
func (e *Engine) regularImage(m *automaton.NFA, u symtab.Sym) []symtab.Sym {
	G := map[node]bool{{m.Start, u}: true}
	stack := []node{{m.Start, u}}
	out := make(map[symtab.Sym]bool)
	if m.Start == m.Final {
		out[u] = true
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		m.Out(n.q, func(_ int, t automaton.Trans) {
			var vs []symtab.Sym
			switch {
			case t.Label.IsID():
				vs = []symtab.Sym{n.u}
			case t.Label.Inv:
				vs = e.src.Predecessors(t.Label.Pred, n.u)
			default:
				vs = e.src.Successors(t.Label.Pred, n.u)
			}
			for _, v := range vs {
				nn := node{t.To, v}
				if !G[nn] {
					G[nn] = true
					stack = append(stack, nn)
					if nn.q == m.Final {
						out[v] = true
					}
				}
			}
		})
	}
	return sortedSyms(out)
}

// allPairsRegular evaluates p(X,Y) for all sources at once in the regular
// case. It constructs the interpretation graph over all sources, condenses
// it with Tarjan's algorithm, and propagates final-state term sets over
// the condensation in reverse topological order, so subgraphs shared
// between sources are traversed once (the optimization the paper
// attributes to [19, 21]).
func (e *Engine) allPairsRegular(pred string, domain []symtab.Sym) ([][2]symtab.Sym, *Result, error) {
	m := e.compileFor(e.sys, pred)
	res := &Result{Iterations: 1, Converged: true}

	ids := make(map[node]int)
	var nodes []node
	g := graph.New(0)
	intern := func(n node) int {
		if id, ok := ids[n]; ok {
			return id
		}
		id := g.AddNode()
		ids[n] = id
		nodes = append(nodes, n)
		return id
	}

	var stack []int
	sources := make([]int, len(domain))
	for i, a := range domain {
		n := node{m.Start, a}
		if _, ok := ids[n]; !ok {
			id := intern(n)
			stack = append(stack, id)
		}
		sources[i] = ids[n]
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := nodes[id]
		m.Out(n.q, func(_ int, t automaton.Trans) {
			var vs []symtab.Sym
			switch {
			case t.Label.IsID():
				vs = []symtab.Sym{n.u}
			case t.Label.Inv:
				vs = e.src.Predecessors(t.Label.Pred, n.u)
			default:
				vs = e.src.Successors(t.Label.Pred, n.u)
			}
			for _, v := range vs {
				nn := node{t.To, v}
				before := len(ids)
				nid := intern(nn)
				if len(ids) > before {
					stack = append(stack, nid)
				}
				g.AddEdge(id, nid)
			}
		})
	}
	res.Nodes = len(nodes)
	if e.opts.MaxNodes > 0 && res.Nodes > e.opts.MaxNodes {
		return nil, nil, fmt.Errorf("chaineval: interpretation graph exceeded MaxNodes=%d", e.opts.MaxNodes)
	}

	// Condense and propagate final-state terms bottom-up.
	dag, comp := g.Condense()
	ncomp := dag.Len()
	own := make([]map[symtab.Sym]bool, ncomp)
	for id, n := range nodes {
		if n.q == m.Final {
			c := comp[id]
			if own[c] == nil {
				own[c] = make(map[symtab.Sym]bool)
			}
			own[c][n.u] = true
		}
	}
	// Tarjan numbers components in reverse topological order: successors
	// of c have smaller indices, so process components in increasing
	// index order to have successor sets ready.
	reach := make([]map[symtab.Sym]bool, ncomp)
	for c := 0; c < ncomp; c++ {
		set := make(map[symtab.Sym]bool)
		for t := range own[c] {
			set[t] = true
		}
		for _, d := range dag.Succ(c) {
			for t := range reach[d] {
				set[t] = true
			}
		}
		reach[c] = set
	}

	var pairs [][2]symtab.Sym
	for i, a := range domain {
		for t := range reach[comp[sources[i]]] {
			pairs = append(pairs, [2]symtab.Sym{a, t})
		}
	}
	sortPairs(pairs)
	return pairs, res, nil
}

func sortedSyms(set map[symtab.Sym]bool) []symtab.Sym {
	out := make([]symtab.Sym, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortPairs(pairs [][2]symtab.Sym) {
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
}
