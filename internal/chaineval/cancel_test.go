package chaineval

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"chainlog/internal/edb"
	"chainlog/internal/equations"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
)

// bigChainEngine builds an engine over tc (transitive closure) on a
// single edge-chain of n nodes: the traversal from node 0 must visit all
// n nodes, giving cancellation something substantial to interrupt.
func bigChainEngine(t *testing.T, n int, opts Options) (*Engine, *symtab.Table, symtab.Sym) {
	t.Helper()
	st := symtab.NewTable()
	store := edb.NewStore(st)
	for i := 0; i < n-1; i++ {
		store.Insert("e", st.Intern(fmt.Sprintf("n%d", i)), st.Intern(fmt.Sprintf("n%d", i+1)))
	}
	res, err := parser.Parse(`
		tc(X, Y) :- e(X, Y).
		tc(X, Z) :- e(X, Y), tc(Y, Z).
	`, st)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := equations.Transform(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(sys, StoreSource{Store: store}, opts)
	eng.Precompile("tc")
	a, _ := st.Lookup("n0")
	return eng, st, a
}

// TestQueryCtxCanceled verifies an already-canceled context aborts the
// run before any meaningful work and surfaces context.Canceled.
func TestQueryCtxCanceled(t *testing.T) {
	eng, _, a := bigChainEngine(t, 1<<14, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.QueryCtx(ctx, "tc", a)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestQueryCtxDeadlineMidTraversal verifies a deadline fires inside a
// single-iteration (regular) traversal — the case the level-boundary
// check alone would miss — and that the engine remains usable after.
func TestQueryCtxDeadlineMidTraversal(t *testing.T) {
	const n = 1 << 17
	eng, _, a := bigChainEngine(t, n, Options{})

	// Warm up (builds the lazy CSR adjacency and engine caches), then
	// time a warm run: the cancellation deadline must be derived from
	// warm traversal speed, not cold-start cost.
	full, err := eng.Query("tc", a)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Answers) != n-1 {
		t.Fatalf("full run: want %d answers, got %d", n-1, len(full.Answers))
	}
	t0 := time.Now()
	if _, err := eng.Query("tc", a); err != nil {
		t.Fatal(err)
	}
	warmDur := time.Since(t0)

	// A deadline a fraction of the warm duration in: the run must abort
	// with DeadlineExceeded instead of completing.
	ctx, cancel := context.WithTimeout(context.Background(), warmDur/10+time.Microsecond)
	defer cancel()
	_, err = eng.QueryCtx(ctx, "tc", a)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded (warm run %v), got %v", warmDur, err)
	}

	// The pooled scratch must be reusable: an uncanceled run still
	// returns the complete answer set.
	again, err := eng.QueryCtx(context.Background(), "tc", a)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Answers) != n-1 {
		t.Fatalf("post-cancel run: want %d answers, got %d", n-1, len(again.Answers))
	}
}

// TestQueryCtxNilMatchesNoCtx pins that the ctx-free and nil-ctx paths
// agree, and that a background context changes nothing.
func TestQueryCtxNilMatchesNoCtx(t *testing.T) {
	eng, _, a := bigChainEngine(t, 256, Options{})
	plain, err := eng.Query("tc", a)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := eng.QueryCtx(context.Background(), "tc", a)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Answers) != len(bg.Answers) {
		t.Fatalf("answer sets differ: %d vs %d", len(plain.Answers), len(bg.Answers))
	}
}

// TestBatchCtxCanceled verifies cancellation propagates through the
// shared-traversal batch route.
func TestBatchCtxCanceled(t *testing.T) {
	eng, st, _ := bigChainEngine(t, 1024, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	srcs := []symtab.Sym{mustSym(t, st, "n0"), mustSym(t, st, "n1")}
	_, _, err := eng.QueryBatchCtx(ctx, "tc", srcs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestParallelCtxCanceled verifies the sharded traversal observes
// cancellation too.
func TestParallelCtxCanceled(t *testing.T) {
	eng, _, a := bigChainEngine(t, 1<<15, Options{Parallelism: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.QueryCtx(ctx, "tc", a)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func mustSym(t *testing.T, st *symtab.Table, name string) symtab.Sym {
	t.Helper()
	s, ok := st.Lookup(name)
	if !ok {
		t.Fatalf("unknown symbol %s", name)
	}
	return s
}
