package chaineval

import (
	"reflect"
	"testing"
	"testing/quick"

	"chainlog/internal/equations"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
	"chainlog/internal/workload"
)

// TestDenseSparseEquivalence is the equivalence property test of the
// flat-memory refactor: the dense bitset-page visited sets and the
// sparse map fallback (Options.SparseVisited) must produce byte-identical
// answers on random graphs, for the recursive (expanding) same-generation
// program, the regular transitive-closure path, inverse queries and the
// all-pairs SCC route.
func TestDenseSparseEquivalence(t *testing.T) {
	progs := []struct {
		name string
		text string
		pred string
	}{
		{"sg", workload.SGProgram, "sg"},
		{"tc", "tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n", "tc"},
	}
	for _, pc := range progs {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			f := func(seed int64) bool {
				st := symtab.NewTable()
				store, src := workload.RandomGraph(st, 14, 34, seed)
				res := parser.MustParse(pc.text, st)
				sys, err := equations.Transform(res.Program)
				if err != nil {
					return false
				}
				if _, ok := sys.EquationFor(pc.pred); !ok {
					return true // program irrelevant for this store shape
				}
				dense := New(sys, StoreSource{Store: store}, Options{})
				sparse := New(sys, StoreSource{Store: store}, Options{SparseVisited: true})

				dres, derr := dense.Query(pc.pred, src)
				sres, serr := sparse.Query(pc.pred, src)
				if (derr == nil) != (serr == nil) {
					return false
				}
				if derr == nil && !reflect.DeepEqual(dres.Answers, sres.Answers) {
					t.Logf("seed %d: dense %v sparse %v", seed, dres.Answers, sres.Answers)
					return false
				}

				dinv, derr := dense.QueryInverse(pc.pred, src)
				sinv, serr := sparse.QueryInverse(pc.pred, src)
				if (derr == nil) != (serr == nil) {
					return false
				}
				if derr == nil && !reflect.DeepEqual(dinv.Answers, sinv.Answers) {
					return false
				}

				domain := store.Relation("edge").Domain(0)
				dall, _, derr := dense.QueryAll(pc.pred, domain)
				sall, _, serr := sparse.QueryAll(pc.pred, domain)
				if (derr == nil) != (serr == nil) {
					return false
				}
				if derr == nil && !reflect.DeepEqual(dall, sall) {
					t.Logf("seed %d: all-pairs dense %v sparse %v", seed, dall, sall)
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStreamMatchesQuery pins QueryStream to Query: the streamed answer
// sequence is exactly the materialized sorted answer set.
func TestStreamMatchesQuery(t *testing.T) {
	f := func(seed int64) bool {
		st := symtab.NewTable()
		store, src := workload.RandomGraph(st, 12, 30, seed)
		res := parser.MustParse(workload.SGProgram, st)
		sys, err := equations.Transform(res.Program)
		if err != nil {
			return false
		}
		eng := New(sys, StoreSource{Store: store}, Options{})
		want, err := eng.Query("sg", src)
		if err != nil {
			return false
		}
		got := []symtab.Sym{}
		if err := eng.QueryStream("sg", src, func(v symtab.Sym) { got = append(got, v) }); err != nil {
			return false
		}
		return reflect.DeepEqual(got, want.Answers) || (len(got) == 0 && len(want.Answers) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestVisitedMigrateToSparse pins the dense→sparse budget migration:
// every bit set in the dense pages must survive into the map, and
// visit/has semantics must be unchanged afterwards.
func TestVisitedMigrateToSparse(t *testing.T) {
	var v visitedSet
	v.reset(1024, false)
	seen := map[node]bool{}
	for i := 0; i < 500; i++ {
		q, u := i%7, symtab.Sym((i*37)%1000)
		want := !seen[node{q, u}]
		seen[node{q, u}] = true
		if got := v.visit(q, u); got != want {
			t.Fatalf("visit(%d, %d) = %v, want %v", q, u, got, want)
		}
	}
	count := v.count
	v.migrateToSparse()
	if v.count != count {
		t.Fatalf("count changed across migration: %d -> %d", count, v.count)
	}
	for n := range seen {
		if !v.has(n.q, n.u) {
			t.Fatalf("node (%d, %d) lost in migration", n.q, n.u)
		}
		if v.visit(n.q, n.u) {
			t.Fatalf("node (%d, %d) reported new after migration", n.q, n.u)
		}
	}
	if !v.visit(50, 5) {
		t.Fatal("fresh node not new after migration")
	}
}

// TestQueryStreamZeroAlloc pins the pooled warm path: steady-state
// QueryStream over a regular (non-expanding) equation must not allocate.
func TestQueryStreamZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	st := symtab.NewTable()
	store, src := workload.Chain(st, 64)
	res := parser.MustParse("tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n", st)
	sys, err := equations.Transform(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(sys, StoreSource{Store: store}, Options{})
	eng.Precompile("tc")
	count := 0
	run := func() {
		count = 0
		if err := eng.QueryStream("tc", src, func(symtab.Sym) { count++ }); err != nil {
			t.Error(err)
		}
	}
	run() // warm the scratch pool and the CSR adjacency
	if count != 64 {
		t.Fatalf("answers = %d, want 64", count)
	}
	if got := testing.AllocsPerRun(200, run); got != 0 {
		t.Fatalf("warm QueryStream allocates %.1f allocs/op, want 0", got)
	}
}
