package chaineval

import (
	"testing"
	"testing/quick"

	"chainlog/internal/rel"
	"chainlog/internal/symtab"
	"chainlog/internal/workload"
)

// Lemma 2(1): if the algorithm is run for exactly i iterations, the
// partial answer set accumulated equals the correct answer under the
// truncated equation p = p_i, where p_0 = ∅ and
// p_i = e0 ∪ e1·p_{i-1}·e2 for the same-generation shape. The oracle
// unrolls the recursion over materialized relations.
func TestLemma2PartialAnswers(t *testing.T) {
	f := func(seed int64) bool {
		st := symtab.NewTable()
		w := workload.RandomTree(st, 18, 0.5, seed)
		eng := sgEngine(t, w.Store, Options{})

		up := relFromStore(w.Store, "up")
		flat := relFromStore(w.Store, "flat")
		down := relFromStore(w.Store, "down")

		// Unroll p_i.
		unroll := func(i int) *rel.Rel {
			cur := rel.New() // p_0 = ∅
			for k := 0; k < i; k++ {
				cur = rel.Union(flat, rel.Compose(rel.Compose(up, cur), down))
			}
			return cur
		}

		for i := 1; i <= 5; i++ {
			res, err := eng.Query("sg", w.Query)
			if err != nil {
				return false
			}
			capped := eng
			_ = res
			// Re-run with the iteration cap.
			capped = New(eng.sys, eng.src, Options{MaxIterations: i})
			r, err := capped.Query("sg", w.Query)
			if err != nil {
				return false
			}
			want := unroll(i).Successors(w.Query)
			if len(want) != len(r.Answers) {
				t.Logf("seed %d i=%d: got %v want %v", seed, i, names(st, r.Answers), names(st, want))
				return false
			}
			for k := range want {
				if want[k] != r.Answers[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Lemma 2(2): once the original algorithm terminates after h iterations,
// running longer does not change the answer (p_i for i > h equals p_h).
func TestLemma2Stability(t *testing.T) {
	st := symtab.NewTable()
	w := workload.SampleC(st, 12)
	eng := sgEngine(t, w.Store, Options{})
	full, err := eng.Query("sg", w.Query)
	if err != nil {
		t.Fatal(err)
	}
	h := full.Iterations
	for _, extra := range []int{1, 3, 10} {
		capped := New(eng.sys, eng.src, Options{MaxIterations: h + extra})
		r, err := capped.Query("sg", w.Query)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Answers) != len(full.Answers) {
			t.Fatalf("answers changed after convergence: %d vs %d", len(r.Answers), len(full.Answers))
		}
	}
}
