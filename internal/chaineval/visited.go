package chaineval

import (
	"math/bits"
	"sync"

	"chainlog/internal/automaton"
	"chainlog/internal/edb"
	"chainlog/internal/symtab"
)

// denseVisitedLimit is the Sym-domain size above which the evaluator's
// visited sets fall back to hashing: beyond it one dense page per
// automaton state would exceed half a MiB and the flat layout stops
// paying for itself. Syms are dense (interned sequentially), so below
// the limit a page wastes little space.
const denseVisitedLimit = 1 << 22

// denseWordBudget caps the total words a visitedSet's dense pages may
// hold (1<<22 words = 32 MiB). Expanding queries allocate one page per
// visited automaton state, so a large domain times many EM states could
// otherwise grow without bound; past the budget the set migrates its
// contents to the sparse map, trading speed for O(visited) memory.
const denseWordBudget = 1 << 22

// visitedSet is the "have I seen node (q, u)" structure of the
// traversal, the paper's G. In dense mode it keeps one bitset page of
// the Sym domain per automaton state — membership test and insert are
// two array loads and an OR, with zero hashing — and in sparse mode
// (domain above denseVisitedLimit, or forced by Options.SparseVisited)
// it degrades to the classic map of nodes.
type visitedSet struct {
	count int
	words int        // initial page size in words (exact when SymBound is known)
	alloc int        // total words across pages, checked against denseWordBudget
	pages [][]uint64 // dense: pages[q] is a bitset over Sym, nil until q is visited
	// dirty records the words written since the last reset, so reset
	// clears O(visited) words instead of sweeping every retained page —
	// a selective query touching 10 nodes must not pay an O(domain)
	// memset, and regularImage resets once per closure element.
	dirty []dirtyWord
	m     map[node]bool // sparse fallback; nil in dense mode
}

// dirtyWord addresses one written word: pages[q][w].
type dirtyWord struct{ q, w int32 }

// reset prepares the set for a run over the given Sym bound. It keeps
// page capacity from earlier runs, so a pooled steady-state run
// allocates nothing.
func (v *visitedSet) reset(bound int, sparse bool) {
	v.count = 0
	if sparse {
		if v.m == nil {
			v.m = make(map[node]bool)
		} else {
			clear(v.m)
		}
		return
	}
	v.m = nil
	v.words = (bound + 63) / 64
	// Pages are all-zero except at dirty words (fresh pages come zeroed
	// from make, and growth copies preserve word indexes).
	for _, d := range v.dirty {
		v.pages[d.q][d.w] = 0
	}
	v.dirty = v.dirty[:0]
}

// visit marks (q, u) visited and reports whether it was new. The body is
// the dense in-bounds test-and-set — the traversal calls it for every
// generated node, most of which are rejects — with page growth, the
// sparse map and the budget migration split into visitSlow.
func (v *visitedSet) visit(q int, u symtab.Sym) bool {
	w := int(u) >> 6
	if v.m == nil && q < len(v.pages) {
		if p := v.pages[q]; w < len(p) {
			bit := uint64(1) << (uint(u) & 63)
			old := p[w]
			if old&bit != 0 {
				return false
			}
			if old == 0 {
				v.dirty = append(v.dirty, dirtyWord{int32(q), int32(w)})
			}
			p[w] = old | bit
			v.count++
			return true
		}
	}
	return v.visitSlow(q, u)
}

// visitSlow handles the paths visit keeps off the hot loop: the sparse
// map, growing the page spine to a new state, and growing a page past
// the known bound (tuple terms interned mid-run).
func (v *visitedSet) visitSlow(q int, u symtab.Sym) bool {
	if v.m != nil {
		n := node{q, u}
		if v.m[n] {
			return false
		}
		v.m[n] = true
		v.count++
		return true
	}
	for q >= len(v.pages) {
		v.pages = append(v.pages, nil)
	}
	w := int(u) >> 6
	p := v.pages[q]
	if w >= len(p) {
		// First visit of state q, or the symbol domain grew past the
		// page. Doubling keeps repeated mid-run growth amortized linear.
		np := make([]uint64, max(w+1, max(v.words, 2*len(p))))
		v.alloc += len(np) - len(p)
		if v.alloc > denseWordBudget {
			v.migrateToSparse()
			return v.visitSlow(q, u)
		}
		copy(np, p)
		p = np
		v.pages[q] = p
	}
	bit := uint64(1) << (uint(u) & 63)
	if p[w]&bit != 0 {
		return false
	}
	if p[w] == 0 {
		v.dirty = append(v.dirty, dirtyWord{int32(q), int32(w)})
	}
	p[w] |= bit
	v.count++
	return true
}

// migrateToSparse moves every visited node into the map fallback and
// frees the dense pages: an expanding query whose states × domain
// product outgrew denseWordBudget finishes the run (and, via the pooled
// scratch, future oversized runs start sparse only after reset asks for
// dense again and the budget trips again — pages rebuild lazily).
func (v *visitedSet) migrateToSparse() {
	m := make(map[node]bool, v.count)
	for q, p := range v.pages {
		for w, x := range p {
			for x != 0 {
				m[node{q, symtab.Sym(w<<6 + bits.TrailingZeros64(x))}] = true
				x &= x - 1
			}
		}
	}
	v.m = m
	v.pages = nil
	v.dirty = v.dirty[:0]
	v.alloc = 0
}

// pageForMerge returns the dense page of state q grown to cover word w,
// for the parallel merge's word-level unions; nil when growing it
// tripped the dense budget and the set migrated to sparse (the caller
// then inserts node by node).
func (v *visitedSet) pageForMerge(q, w int) []uint64 {
	for q >= len(v.pages) {
		v.pages = append(v.pages, nil)
	}
	p := v.pages[q]
	if w < len(p) {
		return p
	}
	np := make([]uint64, max(w+1, max(v.words, 2*len(p))))
	v.alloc += len(np) - len(p)
	if v.alloc > denseWordBudget {
		v.migrateToSparse()
		return nil
	}
	copy(np, p)
	v.pages[q] = np
	return np
}

// has reports whether (q, u) is visited, without inserting.
func (v *visitedSet) has(q int, u symtab.Sym) bool {
	if v.m != nil {
		return v.m[node{q, u}]
	}
	if q >= len(v.pages) {
		return false
	}
	p := v.pages[q]
	w := int(u) >> 6
	if w >= len(p) {
		return false
	}
	return p[w]&(uint64(1)<<(uint(u)&63)) != 0
}

// symSet is a visitedSet over bare terms (single page); it backs the
// cyclic-guard closures where only the term matters, not the state.
type symSet struct {
	bits  []uint64
	dirty []int32 // words written since the last reset
	m     map[symtab.Sym]bool
}

func (s *symSet) reset(bound int, sparse bool) {
	if sparse {
		if s.m == nil {
			s.m = make(map[symtab.Sym]bool)
		} else {
			clear(s.m)
		}
		return
	}
	s.m = nil
	for _, w := range s.dirty {
		s.bits[w] = 0
	}
	s.dirty = s.dirty[:0]
	if w := (bound + 63) / 64; w > len(s.bits) {
		s.bits = make([]uint64, w)
	}
}

// add marks u present and reports whether it was new.
func (s *symSet) add(u symtab.Sym) bool {
	if s.m != nil {
		if s.m[u] {
			return false
		}
		s.m[u] = true
		return true
	}
	w := int(u) >> 6
	if w >= len(s.bits) {
		np := make([]uint64, max(w+1, 2*len(s.bits)))
		copy(np, s.bits)
		s.bits = np
	}
	bit := uint64(1) << (uint(u) & 63)
	if s.bits[w]&bit != 0 {
		return false
	}
	if s.bits[w] == 0 {
		s.dirty = append(s.dirty, int32(w))
	}
	s.bits[w] |= bit
	return true
}

// runScratch is the per-run working state of the evaluator: the visited
// pages, traversal stack, continuation list and answer buffer of the
// main loop, plus the smaller sets driving the cyclic-guard closures.
// Engines keep these in a sync.Pool so a prepared plan's steady-state
// Run reuses one warm allocation-free instance.
type runScratch struct {
	res Result
	// cn is the run's cancellation poller. It lives in the scratch so
	// taking its address (the traversal closures and helpers share one
	// poller) does not heap-allocate on the warm path.
	cn canceler
	// em is the run's mutable EM(p,i) automaton for non-regular
	// equations; CloneInto reuses its storage run over run.
	em      automaton.NFA
	G       visitedSet
	stack   []node
	cont    []node
	starts  []node
	answers []symtab.Sym
	states  map[int][]symtab.Sym // expansion grouping, reused across iterations

	// cyclic-guard scratch: node-visited set and stack for regularImage
	// plus term sets and buffers for the accessible-closure computations.
	rG     visitedSet
	rStack []node
	terms  symSet
	d1     []symtab.Sym
	d2     []symtab.Sym
	img    []symtab.Sym

	// relCounts accumulates raw-probe statistics per resolved relation
	// (indexed like Engine.rels); one batched counter flush at the end of
	// the run replaces two atomic adds per probe.
	relCounts []probeCount

	// parallel-traversal scratch: the level being processed (swapped with
	// stack at each level boundary) and the worker-handle spine.
	frontier []node
	workers  []*parWorker
}

// probeCount is the per-relation statistics accumulator of one run.
type probeCount struct{ lookups, retrieved int64 }

// resetCounts prepares the accumulator for a run over n resolved
// relations; warm scratches reuse their capacity.
func (sc *runScratch) resetCounts(n int) {
	if cap(sc.relCounts) < n {
		sc.relCounts = make([]probeCount, n)
		return
	}
	sc.relCounts = sc.relCounts[:n]
	clear(sc.relCounts)
}

// growCounts extends the accumulator to n relations mid-run (EM
// expansion compiled a predicate whose relation was not yet resolved),
// preserving the counts gathered so far.
func (sc *runScratch) growCounts(n int) {
	for len(sc.relCounts) < n {
		sc.relCounts = append(sc.relCounts, probeCount{})
	}
}

// flushCounts publishes the accumulated statistics to the owning
// stores' counters, one batched add per touched relation.
func flushCounts(rels []*edb.Relation, counts []probeCount) {
	for i := range counts {
		if c := &counts[i]; c.lookups != 0 || c.retrieved != 0 {
			rels[i].Counters().AddBatch(uint32(i), c.lookups, c.retrieved)
		}
	}
}

var scratchPool = sync.Pool{New: func() any { return new(runScratch) }}

// acquireScratch takes a warm scratch from the pool.
func acquireScratch() *runScratch { return scratchPool.Get().(*runScratch) }

// releaseScratch returns sc to the pool. Slices keep their capacity;
// sets are cleared on the next reset. The canceler is dropped so the
// pool does not pin a request's context.
func releaseScratch(sc *runScratch) {
	sc.cn = canceler{}
	scratchPool.Put(sc)
}
