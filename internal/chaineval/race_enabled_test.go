//go:build race

package chaineval

// raceEnabled reports that the race detector is active: its
// instrumentation allocates, so zero-allocation assertions are skipped.
const raceEnabled = true
