// Batch evaluation: many bound constants against one compiled plan, with
// visited state shared across bindings where the equation system allows.
//
// For regular equations (no derived-predicate transitions, so EM never
// expands) the whole batch is evaluated as one traversal: the
// interpretation graph is built over every source at once, condensed
// with Tarjan's algorithm, and final-state term sets propagate over the
// condensation in reverse topological order — subgraphs reachable from
// several bindings are traversed exactly once instead of once per
// binding. This is the same sharing the all-pairs path uses, applied to
// an arbitrary binding set.
//
// Non-regular equations expand EM per binding, so their traversals
// cannot share a graph; the batch deduplicates identical bindings and
// evaluates the distinct ones, fanned out across Options.Parallelism
// workers (each run on its own pooled scratch).
package chaineval

import (
	"context"
	"fmt"
	"math/bits"
	"slices"
	"sync/atomic"

	"chainlog/internal/automaton"
	"chainlog/internal/equations"
	"chainlog/internal/graph"
	"chainlog/internal/symtab"
)

// QueryBatch evaluates p(a, Y) for every a in as and returns one sorted
// answer set per binding, in input order, plus aggregate statistics for
// the whole batch. Duplicate bindings are evaluated once; their entries
// may alias the same answer slice, so callers must treat the returned
// slices as read-only.
func (e *Engine) QueryBatch(pred string, as []symtab.Sym) ([][]symtab.Sym, *Result, error) {
	return e.QueryBatchCtx(nil, pred, as)
}

// QueryBatchCtx is QueryBatch under a context; see QueryCtx.
func (e *Engine) QueryBatchCtx(ctx context.Context, pred string, as []symtab.Sym) ([][]symtab.Sym, *Result, error) {
	if _, ok := e.sys.EquationFor(pred); !ok {
		return nil, nil, fmt.Errorf("chaineval: no equation for predicate %s", pred)
	}
	return e.batch(ctx, e.sys, pred, as)
}

// QueryBatchInverse is QueryBatch for p(X, b) bindings: one sorted X set
// per b, evaluated over the reversed equation system.
func (e *Engine) QueryBatchInverse(pred string, bs []symtab.Sym) ([][]symtab.Sym, *Result, error) {
	return e.QueryBatchInverseCtx(nil, pred, bs)
}

// QueryBatchInverseCtx is QueryBatchInverse under a context.
func (e *Engine) QueryBatchInverseCtx(ctx context.Context, pred string, bs []symtab.Sym) ([][]symtab.Sym, *Result, error) {
	rev := e.reversedSystem()
	if _, ok := rev.EquationFor(pred); !ok {
		return nil, nil, fmt.Errorf("chaineval: no equation for predicate %s", pred)
	}
	return e.batch(ctx, rev, pred, bs)
}

// batch dispatches a binding set to the shared-traversal route (regular
// equations) or the per-distinct-binding route.
func (e *Engine) batch(ctx context.Context, sys *equations.System, pred string, as []symtab.Sym) ([][]symtab.Sym, *Result, error) {
	if len(as) == 0 {
		return nil, &Result{Converged: true}, nil
	}
	if e.regularFor(sys, pred) {
		return e.batchRegular(ctx, sys, pred, as)
	}

	// Deduplicate bindings: non-regular traversals cannot share a graph,
	// but identical bindings share one run.
	distinct := make([]symtab.Sym, 0, len(as))
	first := make(map[symtab.Sym]int, len(as))
	for _, a := range as {
		if _, ok := first[a]; !ok {
			first[a] = len(distinct)
			distinct = append(distinct, a)
		}
	}
	results := make([]*Result, len(distinct))
	errs := make([]error, len(distinct))
	if W := min(e.traversalWorkers(), len(distinct)); W > 1 {
		// The batch itself saturates W workers, so each binding's
		// traversal runs sequentially inside — nested level-sharding
		// would oversubscribe the host W×W.
		var cursor atomic.Int64
		FanOut(W, func(int) {
			for {
				k := int(cursor.Add(1)) - 1
				if k >= len(distinct) {
					return
				}
				results[k], errs[k] = e.runWith(ctx, sys, pred, distinct[k], 1)
			}
		})
	} else {
		for k := range distinct {
			results[k], errs[k] = e.runCtx(ctx, sys, pred, distinct[k])
		}
	}

	agg := &Result{Converged: true}
	for k := range distinct {
		if errs[k] != nil {
			return nil, nil, errs[k]
		}
		r := results[k]
		agg.Nodes += r.Nodes
		agg.Expansions += r.Expansions
		agg.Iterations = max(agg.Iterations, r.Iterations)
		agg.Converged = agg.Converged && r.Converged
	}
	answers := make([][]symtab.Sym, len(as))
	for i, a := range as {
		answers[i] = results[first[a]].Answers
	}
	return answers, agg, nil
}

// batchRegular evaluates a binding set over a regular equation as one
// shared traversal: interpretation graph over all sources, Tarjan
// condensation, and final-state term sets propagated bottom-up, exactly
// once per strongly connected component (the optimization the paper
// attributes to [19, 21]).
//
// Node interning uses dense per-state id pages when the Sym domain is
// small enough, and the reachable-term sets propagate as bitsets with
// word-level unions when their total size is affordable; both fall back
// to the map representation otherwise.
func (e *Engine) batchRegular(ctx context.Context, sys *equations.System, pred string, sources []symtab.Sym) ([][]symtab.Sym, *Result, error) {
	m := e.compileFor(sys, pred)
	res := &Result{Iterations: 1, Converged: true}
	rels := *e.rels.Load()
	sc := acquireScratch()
	defer releaseScratch(sc)
	sc.resetCounts(len(rels))
	defer func() { flushCounts(*e.rels.Load(), sc.relCounts) }()
	sc.cn = newCanceler(ctx)
	cn := &sc.cn
	bound, sparse := e.visitedMode()

	// allPairsDenseLimit bounds the per-page id memory, and the
	// states × bound product caps the total (1<<24 int32s = 64 MiB):
	// one int32 page per visited automaton state.
	const allPairsDenseLimit = 1 << 19

	var nodes []node
	g := graph.New(0)
	var intern func(n node) (int, bool)
	if sparse || bound > allPairsDenseLimit || m.NumStates()*bound > 1<<24 {
		ids := make(map[node]int32)
		intern = func(n node) (int, bool) {
			if id, ok := ids[n]; ok {
				return int(id), false
			}
			id := g.AddNode()
			ids[n] = int32(id)
			nodes = append(nodes, n)
			return id, true
		}
	} else {
		pages := make([][]int32, m.NumStates())
		intern = func(n node) (int, bool) {
			p := pages[n.q]
			if p == nil {
				p = make([]int32, max(bound, int(n.u)+1))
				for i := range p {
					p[i] = -1
				}
				pages[n.q] = p
			} else if int(n.u) >= len(p) {
				np := make([]int32, max(int(n.u)+1, 2*len(p)))
				copy(np, p)
				for i := len(p); i < len(np); i++ {
					np[i] = -1
				}
				p = np
				pages[n.q] = p
			}
			if id := p[n.u]; id >= 0 {
				return int(id), false
			}
			id := g.AddNode()
			p[n.u] = int32(id)
			nodes = append(nodes, n)
			return id, true
		}
	}

	var stack []int
	srcIDs := make([]int, len(sources))
	for i, a := range sources {
		id, fresh := intern(node{m.Start, a})
		if fresh {
			stack = append(stack, id)
		}
		srcIDs[i] = id
	}
	ticks := 0
	for len(stack) > 0 {
		if ticks++; ticks&cancelCheckMask == 0 {
			if err := cn.check(); err != nil {
				return nil, nil, err
			}
		}
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := nodes[id]
		edges := m.Edges(n.q)
		for i := range edges {
			t := &edges[i]
			if t.Removed() {
				continue
			}
			var vs []symtab.Sym
			if t.Kind == automaton.KindID {
				nid, fresh := intern(node{int(t.To), n.u})
				if fresh {
					stack = append(stack, nid)
				}
				g.AddEdge(id, nid)
				continue
			} else {
				vs = e.probe(t, n.u, rels, sc.relCounts)
			}
			for _, v := range vs {
				nid, fresh := intern(node{int(t.To), v})
				if fresh {
					stack = append(stack, nid)
				}
				g.AddEdge(id, nid)
			}
		}
	}
	res.Nodes = len(nodes)
	if e.opts.MaxNodes > 0 && res.Nodes > e.opts.MaxNodes {
		return nil, nil, e.maxNodesErr()
	}

	// Condense and propagate final-state terms bottom-up. Tarjan numbers
	// components in reverse topological order: successors of c have
	// smaller indices, so processing components in increasing index order
	// has successor sets ready.
	dag, comp := g.Condense()
	ncomp := dag.Len()

	answers := make([][]symtab.Sym, len(sources))
	words := (bound + 63) / 64
	// reachWordBudget caps the dense propagation memory (in 8-byte
	// words) before falling back to sparse sets.
	const reachWordBudget = 1 << 24
	// The propagation below is where a long-chain batch spends its time
	// (up to ncomp passes over successor sets), so it polls the canceler
	// like the graph build above — a served batch query must honor its
	// deadline here too, not only during traversal.
	if !sparse && bound > 0 && ncomp*words <= reachWordBudget {
		reach := make([][]uint64, ncomp)
		set := func(b []uint64, u symtab.Sym) []uint64 {
			w := int(u) >> 6
			if w >= len(b) {
				nb := make([]uint64, w+1)
				copy(nb, b)
				b = nb
			}
			b[w] |= uint64(1) << (uint(u) & 63)
			return b
		}
		for id, n := range nodes {
			if n.q == m.Final {
				c := comp[id]
				if reach[c] == nil {
					reach[c] = make([]uint64, words)
				}
				reach[c] = set(reach[c], n.u)
			}
		}
		for c := 0; c < ncomp; c++ {
			if c&cancelCheckMask == 0 {
				if err := cn.check(); err != nil {
					return nil, nil, err
				}
			}
			for _, d := range dag.Succ(c) {
				src := reach[d]
				if len(src) == 0 {
					continue
				}
				if reach[c] == nil {
					reach[c] = make([]uint64, max(words, len(src)))
				} else if len(src) > len(reach[c]) {
					nb := make([]uint64, len(src))
					copy(nb, reach[c])
					reach[c] = nb
				}
				dst := reach[c]
				for w, x := range src {
					dst[w] |= x
				}
			}
		}
		for i := range sources {
			b := reach[comp[srcIDs[i]]]
			var out []symtab.Sym
			for w, x := range b {
				for x != 0 {
					out = append(out, symtab.Sym(w<<6+bits.TrailingZeros64(x)))
					x &= x - 1
				}
			}
			answers[i] = out
		}
	} else {
		own := make([]map[symtab.Sym]bool, ncomp)
		for id, n := range nodes {
			if n.q == m.Final {
				c := comp[id]
				if own[c] == nil {
					own[c] = make(map[symtab.Sym]bool)
				}
				own[c][n.u] = true
			}
		}
		reach := make([]map[symtab.Sym]bool, ncomp)
		for c := 0; c < ncomp; c++ {
			// Immediate poll, not tick: one component's union can copy
			// O(answers) elements, so a once-per-4096 poll could let a
			// deadline slip by seconds on the sparse path.
			if err := cn.check(); err != nil {
				return nil, nil, err
			}
			set := make(map[symtab.Sym]bool)
			for t := range own[c] {
				set[t] = true
			}
			for _, d := range dag.Succ(c) {
				for t := range reach[d] {
					set[t] = true
				}
			}
			reach[c] = set
		}
		for i := range sources {
			r := reach[comp[srcIDs[i]]]
			out := make([]symtab.Sym, 0, len(r))
			for t := range r {
				out = append(out, t)
			}
			slices.Sort(out)
			answers[i] = out
		}
	}
	return answers, res, nil
}
