package chaineval

import (
	"testing"

	"chainlog/internal/equations"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
	"chainlog/internal/workload"
)

// Grid reachability: exponentially many paths, but the memoized traversal
// visits each (state, node) once — node count stays linear in the grid
// size, and every cell except the source is an answer.
func TestGridReachabilityLinearNodes(t *testing.T) {
	st := symtab.NewTable()
	const w, h = 20, 20
	store, src := workload.Grid(st, w, h)
	res := parser.MustParse(`
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
`, st)
	sys, err := equations.Transform(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(sys, StoreSource{Store: store}, Options{})
	r, err := eng.Query("tc", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Answers) != w*h-1 {
		t.Fatalf("answers = %d, want %d", len(r.Answers), w*h-1)
	}
	if r.Iterations != 1 {
		t.Fatalf("iterations = %d", r.Iterations)
	}
	if r.Nodes > 10*w*h {
		t.Fatalf("nodes = %d, expected O(w*h)", r.Nodes)
	}
}

// QueryAll on the grid exercises the SCC condensation path at scale: a
// DAG condenses to singleton components, and reach sets cascade.
func TestGridAllPairsCount(t *testing.T) {
	st := symtab.NewTable()
	const w, h = 6, 6
	store, _ := workload.Grid(st, w, h)
	res := parser.MustParse(`
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
`, st)
	sys, err := equations.Transform(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(sys, StoreSource{Store: store}, Options{})
	domain := activeDomain(store)
	pairs, _, err := eng.QueryAll("tc", domain)
	if err != nil {
		t.Fatal(err)
	}
	// tc(g(x1,y1), g(x2,y2)) iff x2>=x1, y2>=y1, not equal. Count:
	// sum over all cells of (cells to the lower-right) - 1.
	want := 0
	for x1 := 0; x1 < w; x1++ {
		for y1 := 0; y1 < h; y1++ {
			want += (w-x1)*(h-y1) - 1
		}
	}
	if len(pairs) != want {
		t.Fatalf("pairs = %d, want %d", len(pairs), want)
	}
}
