package chaineval

import (
	"reflect"
	"testing"
	"testing/quick"

	"chainlog/internal/equations"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
	"chainlog/internal/workload"
)

// lowerShardThreshold forces levels of a handful of nodes through the
// sharded path, so small random graphs exercise the worker pool and the
// word-level merge instead of always falling back to inline levels.
func lowerShardThreshold(t *testing.T, n int) {
	t.Helper()
	old := parFrontierThreshold
	parFrontierThreshold = n
	t.Cleanup(func() { parFrontierThreshold = old })
}

// TestParallelSequentialEquivalence is the core property of the sharded
// evaluator: for random programs and stores, Parallelism: N returns
// byte-identical answer sets — and identical node/iteration/probe
// statistics — to the sequential evaluator, forward and inverse, in
// dense and sparse visited modes.
func TestParallelSequentialEquivalence(t *testing.T) {
	lowerShardThreshold(t, 3)
	progs := []struct {
		name string
		text string
		pred string
	}{
		{"sg", workload.SGProgram, "sg"},
		{"tc", "tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n", "tc"},
	}
	for _, pc := range progs {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			f := func(seed int64) bool {
				st := symtab.NewTable()
				store, src := workload.RandomGraph(st, 24, 70, seed)
				res := parser.MustParse(pc.text, st)
				sys, err := equations.Transform(res.Program)
				if err != nil {
					return false
				}
				if _, ok := sys.EquationFor(pc.pred); !ok {
					return true
				}
				seq := New(sys, StoreSource{Store: store}, Options{})
				for _, opts := range []Options{
					{Parallelism: 4},
					{Parallelism: -1},
					{Parallelism: 4, SparseVisited: true},
				} {
					par := New(sys, StoreSource{Store: store}, opts)

					want, werr := seq.Query(pc.pred, src)
					got, gerr := par.Query(pc.pred, src)
					if (werr == nil) != (gerr == nil) {
						return false
					}
					if werr == nil {
						if !reflect.DeepEqual(want.Answers, got.Answers) {
							t.Logf("seed %d opts %+v: seq %v par %v", seed, opts, want.Answers, got.Answers)
							return false
						}
						if want.Nodes != got.Nodes || want.Iterations != got.Iterations || want.Expansions != got.Expansions {
							t.Logf("seed %d opts %+v: stats seq %+v par %+v", seed, opts, want, got)
							return false
						}
					}

					winv, werr := seq.QueryInverse(pc.pred, src)
					ginv, gerr := par.QueryInverse(pc.pred, src)
					if (werr == nil) != (gerr == nil) {
						return false
					}
					if werr == nil && !reflect.DeepEqual(winv.Answers, ginv.Answers) {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestParallelProbeCounts pins the exactly-once processing argument: the
// sharded evaluator must consult the same number of extensional tuples
// as the sequential one (each graph node is expanded exactly once, in
// whichever mode), so retrieval statistics stay meaningful under
// Parallelism.
func TestParallelProbeCounts(t *testing.T) {
	lowerShardThreshold(t, 3)
	st := symtab.NewTable()
	w := workload.SampleB(st, 64)
	res := parser.MustParse(workload.SGProgram, st)
	sys, err := equations.Transform(res.Program)
	if err != nil {
		t.Fatal(err)
	}

	w.Store.Counters.Reset()
	seq := New(sys, StoreSource{Store: w.Store}, Options{})
	if _, err := seq.Query("sg", w.Query); err != nil {
		t.Fatal(err)
	}
	seqCounts := w.Store.Counters.Snapshot()

	w.Store.Counters.Reset()
	par := New(sys, StoreSource{Store: w.Store}, Options{Parallelism: 4})
	if _, err := par.Query("sg", w.Query); err != nil {
		t.Fatal(err)
	}
	parCounts := w.Store.Counters.Snapshot()

	if seqCounts.Retrieved != parCounts.Retrieved || seqCounts.Lookups != parCounts.Lookups {
		t.Fatalf("probe counts diverge: sequential %+v parallel %+v", seqCounts, parCounts)
	}
}

// TestParallelMaxNodes pins the resource bound under sharding: the
// parallel evaluator must refuse oversized interpretation graphs with
// the same error the sequential one reports.
func TestParallelMaxNodes(t *testing.T) {
	lowerShardThreshold(t, 3)
	st := symtab.NewTable()
	w := workload.SampleB(st, 64)
	res := parser.MustParse(workload.SGProgram, st)
	sys, err := equations.Transform(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	seq := New(sys, StoreSource{Store: w.Store}, Options{MaxNodes: 50})
	par := New(sys, StoreSource{Store: w.Store}, Options{MaxNodes: 50, Parallelism: 4})
	_, serr := seq.Query("sg", w.Query)
	_, perr := par.Query("sg", w.Query)
	if serr == nil || perr == nil {
		t.Fatalf("MaxNodes not enforced: sequential err %v, parallel err %v", serr, perr)
	}
	if serr.Error() != perr.Error() {
		t.Fatalf("error text diverges: %q vs %q", serr, perr)
	}
}
