// Request cancellation: the *Ctx entry points thread a context through
// the traversal so a serving layer can enforce per-request deadlines.
// The engine polls the context at the main-loop level boundary and —
// because regular equations evaluate in a single iteration, where a
// level-only check would never fire mid-query — every
// cancelCheckInterval units of traversal work (node visits, closure
// steps, batch-graph pops). Parallel workers poll once per claimed
// frontier chunk. A canceled run returns an error wrapping the
// context's cause, so callers can match context.DeadlineExceeded with
// errors.Is; the pooled scratch is released normally and the engine
// stays fully reusable.
//
// Deadlines are compared against the wall clock, not just the Done
// channel: closing Done requires the runtime timer goroutine to be
// scheduled, which on a single-core host can lag a busy traversal by
// the async-preemption interval (~10ms) — longer than the deadlines a
// serving layer hands out. Reading time.Now at each poll keeps
// cancellation latency bounded by traversal work alone.
package chaineval

import (
	"context"
	"fmt"
	"time"

	"chainlog/internal/ctxpoll"
)

// cancelCheckMask gates the hot loops' polls: each loop keeps a local
// iteration counter and calls check() only when counter&cancelCheckMask
// == 0 — one register increment and a predictable branch per iteration,
// nothing touched in memory, so the context-free hot path stays at its
// pre-cancellation speed. One poll per 4096 work units bounds the
// cancellation latency to microseconds of extra work.
const cancelCheckMask = 4096 - 1

// canceler is the per-run cancellation poller. The zero value (nil
// context) never fires.
type canceler struct {
	ctx      context.Context
	done     <-chan struct{} // nil when cancellation is impossible
	deadline time.Time
	hasDL    bool
}

func newCanceler(ctx context.Context) canceler {
	if ctx == nil {
		return canceler{}
	}
	c := canceler{ctx: ctx, done: ctx.Done()}
	c.deadline, c.hasDL = ctx.Deadline()
	return c
}

// ContextErr is ctxpoll.Err re-exported for the package's callers (the
// chainlog layer polls it between evaluation phases).
func ContextErr(ctx context.Context) error {
	return ctxpoll.Err(ctx)
}

// stopped polls the context without mutating poller state — safe for
// concurrent use by parallel traversal workers.
func (c *canceler) stopped() bool {
	if c.done == nil {
		return false
	}
	if c.hasDL && time.Now().After(c.deadline) {
		return true
	}
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// check polls the context immediately, converting a fired deadline or
// cancellation into the run's error.
func (c *canceler) check() error {
	if !c.stopped() {
		return nil
	}
	cause := context.Cause(c.ctx)
	if cause == nil {
		// The wall clock passed the deadline before the context's own
		// timer goroutine got scheduled; report what the context will.
		cause = context.DeadlineExceeded
	}
	return fmt.Errorf("chaineval: evaluation canceled: %w", cause)
}
