// Parallel sharded traversal: when Options.Parallelism allows it, the
// evaluator advances the interpretation graph level-synchronously and
// shards large frontier levels across a bounded worker pool.
//
// Within one level the global visited set G is frozen: workers only read
// it, recording newly generated nodes in private dense bitset pages (the
// same visitedSet structure the sequential path uses), so the inner loop
// takes no locks and issues no atomics. Workers claim chunks of the
// frontier from an atomic cursor, which rebalances skewed out-degrees
// without per-node synchronization. At the level boundary the main
// goroutine merges each worker's pages into G word by word — one AND-NOT
// plus OR per 64 symbols — and the surviving new bits become the next
// frontier, answers and continuation points. Cross-worker duplicates die
// in the merge; every node is still processed exactly once, so parallel
// and sequential evaluation perform the same probes and return identical
// answer sets and statistics.
//
// Levels below parFrontierThreshold run inline on the calling goroutine:
// sharding a dozen nodes costs more than it saves, and selective queries
// keep their sequential, allocation-free behavior.
package chaineval

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"chainlog/internal/automaton"
	"chainlog/internal/edb"
	"chainlog/internal/symtab"
)

// parFrontierThreshold is the frontier size at which a level is sharded
// across workers instead of processed inline. A variable (not a const)
// so equivalence tests can force sharding on small graphs.
var parFrontierThreshold = 128

// parChunkMin is the smallest frontier chunk a worker claims; small
// chunks rebalance skew, large ones amortize the cursor increment.
const parChunkMin = 16

// traversalWorkers resolves Options.Parallelism to a worker count for
// this run: 0/1 sequential, negative GOMAXPROCS, and tracing forces
// sequential so event order stays deterministic.
func (e *Engine) traversalWorkers() int {
	p := e.opts.Parallelism
	if p < 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > 1 && e.opts.Tracer != nil {
		return 1
	}
	return p
}

// parWorker is one worker's private state for a single sharded level.
type parWorker struct {
	// seen holds the nodes this worker generated this level (minus those
	// already in the frozen global set): dense bitset pages with
	// dirty-word tracking, exactly the visited-set layout, so the merge
	// can walk written words directly.
	seen visitedSet
	// cont collects continuation points discovered this level.
	cont []node
	// counts accumulates raw-probe statistics, merged into the run's
	// accumulator at the level boundary.
	counts []probeCount
}

// prepare readies a pooled worker for a level over nrels resolved
// relations; warm workers reuse their page and buffer capacity.
func (pw *parWorker) prepare(nrels, bound int, sparse bool) {
	pw.seen.reset(bound, sparse)
	pw.cont = pw.cont[:0]
	if cap(pw.counts) < nrels {
		pw.counts = make([]probeCount, nrels)
	} else {
		pw.counts = pw.counts[:nrels]
		clear(pw.counts)
	}
}

var parWorkerPool = sync.Pool{New: func() any { return new(parWorker) }}

// FanOut runs f(0) … f(W-1) concurrently — f(0) on the calling
// goroutine — and returns when all have finished. It is the shared
// shape of every worker fan-out in the evaluator and the public batch
// layer; callers distribute work inside f (typically by claiming chunks
// from an atomic cursor).
func FanOut(W int, f func(w int)) {
	var wg sync.WaitGroup
	for i := 1; i < W; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f(i)
		}(i)
	}
	f(0)
	wg.Wait()
}

// traverseParallel drains the traversal seeded on sc.stack level by
// level, sharding levels of at least parFrontierThreshold nodes across
// the worker pool. It is the parallel counterpart of runInto's traverse:
// same visited set, same continuation collection, same MaxNodes error.
// The canceler is polled per level and per frontier node inline; sharded
// workers poll the context's done channel once per claimed chunk.
func (e *Engine) traverseParallel(cn *canceler, em *automaton.NFA, sc *runScratch, rels []*edb.Relation, workers, bound int, sparse bool, visit func(node) bool) error {
	for len(sc.stack) > 0 {
		if err := cn.check(); err != nil {
			return err
		}
		// The stack holds the current level's nodes (pushed by visit);
		// swap it out so visit can accumulate the next level.
		sc.frontier, sc.stack = sc.stack, sc.frontier[:0]
		W := workers
		if byChunk := (len(sc.frontier) + parChunkMin - 1) / parChunkMin; W > byChunk {
			W = byChunk
		}
		if len(sc.frontier) < parFrontierThreshold || W <= 1 {
			if err := e.processLevel(cn, em, sc, rels, visit); err != nil {
				return err
			}
			continue
		}
		if err := e.processLevelParallel(cn, em, sc, rels, W, bound, sparse, visit); err != nil {
			return err
		}
	}
	return nil
}

// processLevel advances one small level inline: the sequential edge
// dispatch over every frontier node, with visit accumulating the next
// level on sc.stack.
func (e *Engine) processLevel(cn *canceler, em *automaton.NFA, sc *runScratch, rels []*edb.Relation, visit func(node) bool) error {
	for i, n := range sc.frontier {
		if i&cancelCheckMask == 0 {
			if err := cn.check(); err != nil {
				return err
			}
		}
		continued := false
		edges := em.Edges(n.q)
		for i := range edges {
			t := &edges[i]
			if t.Removed() {
				continue
			}
			switch t.Kind {
			case automaton.KindID:
				if !visit(node{int(t.To), n.u}) {
					return e.maxNodesErr()
				}
			case automaton.KindDerived:
				if !continued {
					continued = true
					sc.cont = append(sc.cont, n)
				}
			default:
				to := int(t.To)
				for _, v := range e.probe(t, n.u, rels, sc.relCounts) {
					if !visit(node{to, v}) {
						return e.maxNodesErr()
					}
				}
			}
		}
	}
	return nil
}

// processLevelParallel shards one level across W workers (the calling
// goroutine is worker zero) and merges their results into the global
// traversal state.
func (e *Engine) processLevelParallel(cn *canceler, em *automaton.NFA, sc *runScratch, rels []*edb.Relation, W, bound int, sparse bool, visit func(node) bool) error {
	if cap(sc.workers) < W {
		sc.workers = make([]*parWorker, W)
	}
	ws := sc.workers[:W]
	for i := range ws {
		ws[i] = parWorkerPool.Get().(*parWorker)
		ws[i].prepare(len(rels), bound, sparse)
	}

	frontier := sc.frontier
	chunk := len(frontier) / (4 * W)
	if chunk < parChunkMin {
		chunk = parChunkMin
	}
	var cursor atomic.Int64
	work := func(pw *parWorker) {
		for {
			if cn.stopped() {
				// Abandon the rest of the level; the coordinator's
				// post-merge check reports the cancellation.
				return
			}
			c := int(cursor.Add(1)) - 1
			lo := c * chunk
			if lo >= len(frontier) {
				return
			}
			hi := min(lo+chunk, len(frontier))
			for _, n := range frontier[lo:hi] {
				e.processNodeShard(em, n, rels, pw, &sc.G)
			}
		}
	}
	FanOut(W, func(w int) { work(ws[w]) })

	var err error
	for _, pw := range ws {
		if err == nil {
			err = e.mergeWorker(em, sc, pw, visit)
		}
		parWorkerPool.Put(pw)
	}
	if err == nil {
		err = cn.check()
	}
	return err
}

// processNodeShard is the worker-side edge dispatch for one node: reads
// of the frozen global set filter known nodes, everything newly
// generated lands in the worker's private pages. No locks, no atomics.
func (e *Engine) processNodeShard(em *automaton.NFA, n node, rels []*edb.Relation, pw *parWorker, G *visitedSet) {
	continued := false
	edges := em.Edges(n.q)
	for i := range edges {
		t := &edges[i]
		if t.Removed() {
			continue
		}
		switch t.Kind {
		case automaton.KindID:
			if !G.has(int(t.To), n.u) {
				pw.seen.visit(int(t.To), n.u)
			}
		case automaton.KindDerived:
			// The node is processed by exactly one worker in exactly one
			// level, so this keeps the merged continuation list
			// duplicate-free, like the sequential pop-once argument.
			if !continued {
				continued = true
				pw.cont = append(pw.cont, n)
			}
		default:
			to := int(t.To)
			for _, v := range e.probe(t, n.u, rels, pw.counts) {
				if !G.has(to, v) {
					pw.seen.visit(to, v)
				}
			}
		}
	}
}

// mergeWorker folds one worker's level results into the global state:
// continuation points and probe statistics append directly; the private
// pages merge into G word by word, and bits that survive the AND-NOT
// against G (first worker to generate a node wins, duplicates die here)
// become graph nodes, answers and next-level frontier entries.
func (e *Engine) mergeWorker(em *automaton.NFA, sc *runScratch, pw *parWorker, visit func(node) bool) error {
	sc.cont = append(sc.cont, pw.cont...)
	sc.growCounts(len(pw.counts))
	for i := range pw.counts {
		sc.relCounts[i].lookups += pw.counts[i].lookups
		sc.relCounts[i].retrieved += pw.counts[i].retrieved
	}

	G := &sc.G
	if pw.seen.m != nil {
		// Worker ran sparse (forced, huge domain, or budget migration):
		// merge node by node through the standard insertion step.
		for n := range pw.seen.m {
			if !visit(n) {
				return e.maxNodesErr()
			}
		}
		return nil
	}
	for _, d := range pw.seen.dirty {
		q, w := int(d.q), int(d.w)
		wordBits := pw.seen.pages[q][w]
		if wordBits == 0 {
			continue
		}
		base := symtab.Sym(w << 6)
		gp := []uint64(nil)
		if G.m == nil {
			gp = G.pageForMerge(q, w)
		}
		if gp == nil {
			// G is (or just became) sparse; insert node by node.
			for x := wordBits; x != 0; x &= x - 1 {
				if !visit(node{q, base + symtab.Sym(bits.TrailingZeros64(x))}) {
					return e.maxNodesErr()
				}
			}
			continue
		}
		neu := wordBits &^ gp[w]
		if neu == 0 {
			continue
		}
		if gp[w] == 0 {
			G.dirty = append(G.dirty, dirtyWord{int32(q), int32(w)})
		}
		gp[w] |= neu
		G.count += bits.OnesCount64(neu)
		isFinal := q == em.Final
		for x := neu; x != 0; x &= x - 1 {
			u := base + symtab.Sym(bits.TrailingZeros64(x))
			if isFinal {
				sc.answers = append(sc.answers, u)
			}
			sc.stack = append(sc.stack, node{q, u})
		}
		if e.opts.MaxNodes != 0 && G.count > e.opts.MaxNodes {
			return e.maxNodesErr()
		}
	}
	return nil
}
