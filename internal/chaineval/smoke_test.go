package chaineval

import (
	"testing"

	"chainlog/internal/edb"
	"chainlog/internal/equations"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
)

const sgProgram = `
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
`

// TestSGSmoke runs the full pipeline (parse → Lemma 1 → automaton →
// traversal) on the paper's same-generation program with a small
// genealogy.
func TestSGSmoke(t *testing.T) {
	st := symtab.NewTable()
	res := parser.MustParse(sgProgram, st)
	sys, err := equations.Transform(res.Program)
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	t.Logf("equations:\n%s", sys.Render())

	store := edb.NewStore(st)
	// up: child -> parent; down: parent -> child; flat: identity-ish link.
	//
	//        gp
	//       /  \
	//      p1    p2        flat(gp,gp2), and gp2 has children q1,q2
	//     /  \    \
	//    john a    b
	add := func(pred, x, y string) { store.Insert(pred, st.Intern(x), st.Intern(y)) }
	add("up", "john", "p1")
	add("up", "a", "p1")
	add("up", "b", "p2")
	add("up", "p1", "gp")
	add("up", "p2", "gp")
	add("flat", "gp", "gp2")
	add("down", "gp2", "q1")
	add("down", "q1", "c1")
	add("flat", "p1", "p1")
	add("down", "p1", "john")
	add("down", "p1", "a")

	eng := New(sys, StoreSource{Store: store}, Options{})
	r, err := eng.Query("sg", st.Intern("john"))
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	got := make([]string, 0, len(r.Answers))
	for _, s := range r.Answers {
		got = append(got, st.Name(s))
	}
	t.Logf("answers=%v iterations=%d nodes=%d", got, r.Iterations, r.Nodes)
	// sg(john, Y):
	//  depth 1: up john->p1, flat(p1,p1), down p1->{john,a} => john, a
	//  depth 2: up² john->gp, flat(gp,gp2), down² gp2->q1->c1 => c1
	want := map[string]bool{"john": true, "a": true, "c1": true}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for _, g := range got {
		if !want[g] {
			t.Fatalf("unexpected answer %s (got %v)", g, got)
		}
	}
	if !r.Converged {
		t.Fatal("expected convergence on acyclic data")
	}
}
