package chaineval

import (
	"reflect"
	"testing"
	"testing/quick"

	"chainlog/internal/equations"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
	"chainlog/internal/workload"
)

// TestQueryBatchMatchesQuery pins the batch API to its specification:
// QueryBatch over a binding set returns, per binding, exactly the answer
// set of a standalone Query — through the shared-traversal route on
// regular equations (tc) and the per-distinct-binding route on expanding
// ones (sg), sequentially and with a worker pool, forward and inverse.
// Duplicate bindings must get the same answers as unique ones.
func TestQueryBatchMatchesQuery(t *testing.T) {
	lowerShardThreshold(t, 3)
	progs := []struct {
		name string
		text string
		pred string
	}{
		{"sg", workload.SGProgram, "sg"},
		{"tc", "tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n", "tc"},
	}
	for _, pc := range progs {
		pc := pc
		t.Run(pc.name, func(t *testing.T) {
			f := func(seed int64) bool {
				st := symtab.NewTable()
				store, _ := workload.RandomGraph(st, 20, 55, seed)
				res := parser.MustParse(pc.text, st)
				sys, err := equations.Transform(res.Program)
				if err != nil {
					return false
				}
				if _, ok := sys.EquationFor(pc.pred); !ok {
					return true
				}
				// Bindings: the edge domain plus a repeated constant.
				domain := store.Relation("edge").Domain(0)
				if len(domain) == 0 {
					return true
				}
				bindings := append(append([]symtab.Sym(nil), domain...), domain[0])

				for _, opts := range []Options{{}, {Parallelism: 4}} {
					eng := New(sys, StoreSource{Store: store}, opts)
					batch, _, err := eng.QueryBatch(pc.pred, bindings)
					if err != nil {
						return false
					}
					inv, _, err := eng.QueryBatchInverse(pc.pred, bindings)
					if err != nil {
						return false
					}
					for i, a := range bindings {
						want, err := eng.Query(pc.pred, a)
						if err != nil {
							return false
						}
						if !sameSyms(batch[i], want.Answers) {
							t.Logf("seed %d opts %+v binding %v: batch %v want %v", seed, opts, a, batch[i], want.Answers)
							return false
						}
						winv, err := eng.QueryInverse(pc.pred, a)
						if err != nil {
							return false
						}
						if !sameSyms(inv[i], winv.Answers) {
							t.Logf("seed %d opts %+v inverse binding %v: batch %v want %v", seed, opts, a, inv[i], winv.Answers)
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// sameSyms compares two sorted answer sets, treating nil and empty as
// equal.
func sameSyms(a, b []symtab.Sym) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// TestQueryBatchSharesTraversal pins the point of the shared route: on a
// regular equation, batching all sources must consult far fewer tuples
// than evaluating each source separately, because overlapping reachable
// subgraphs are traversed once.
func TestQueryBatchSharesTraversal(t *testing.T) {
	st := symtab.NewTable()
	store, _ := workload.Chain(st, 256)
	res := parser.MustParse("tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n", st)
	sys, err := equations.Transform(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	sources := store.Relation("edge").Domain(0)

	eng := New(sys, StoreSource{Store: store}, Options{})
	store.Counters.Reset()
	batch, _, err := eng.QueryBatch("tc", sources)
	if err != nil {
		t.Fatal(err)
	}
	batchRetrieved := store.Counters.Snapshot().Retrieved

	store.Counters.Reset()
	for i, a := range sources {
		r, err := eng.Query("tc", a)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSyms(batch[i], r.Answers) {
			t.Fatalf("binding %v: batch %v want %v", a, batch[i], r.Answers)
		}
	}
	loopRetrieved := store.Counters.Snapshot().Retrieved

	if batchRetrieved*4 > loopRetrieved {
		t.Fatalf("shared traversal did not share: batch retrieved %d, per-source loop %d", batchRetrieved, loopRetrieved)
	}
}
