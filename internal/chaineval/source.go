package chaineval

import (
	"chainlog/internal/edb"
	"chainlog/internal/symtab"
)

// SymBounder is an optional Source extension: SymBound returns an
// exclusive upper bound on the Sym values the source can produce (the
// symbol table's current size). The engine uses it to size its dense
// visited pages exactly; sources that cannot report a bound simply omit
// the method and pages grow on demand instead.
type SymBounder interface {
	SymBound() int
}

// StoreSource adapts an extensional store to the Source interface.
type StoreSource struct {
	Store *edb.Store
}

// Successors returns all v with pred(u, v) in the store.
func (s StoreSource) Successors(pred string, u symtab.Sym) []symtab.Sym {
	return s.Store.Relation(pred).Successors(u)
}

// Predecessors returns all u with pred(u, v) in the store.
func (s StoreSource) Predecessors(pred string, v symtab.Sym) []symtab.Sym {
	return s.Store.Relation(pred).Predecessors(v)
}

// SymBound reports the store's symbol-table size for dense page sizing.
func (s StoreSource) SymBound() int {
	return s.Store.SymBound()
}

// FuncSource builds a Source from closures; used by tests and by virtual
// relation layers that fall back to a store.
type FuncSource struct {
	Succ func(pred string, u symtab.Sym) []symtab.Sym
	Pred func(pred string, v symtab.Sym) []symtab.Sym
	// Bound optionally reports the Sym upper bound (see SymBounder).
	Bound func() int
}

// Successors invokes the Succ closure.
func (f FuncSource) Successors(pred string, u symtab.Sym) []symtab.Sym {
	return f.Succ(pred, u)
}

// Predecessors invokes the Pred closure.
func (f FuncSource) Predecessors(pred string, v symtab.Sym) []symtab.Sym {
	return f.Pred(pred, v)
}

// SymBound invokes the Bound closure, or reports no bound when unset.
func (f FuncSource) SymBound() int {
	if f.Bound == nil {
		return 0
	}
	return f.Bound()
}
