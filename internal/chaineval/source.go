package chaineval

import (
	"chainlog/internal/edb"
	"chainlog/internal/symtab"
)

// StoreSource adapts an extensional store to the Source interface.
type StoreSource struct {
	Store *edb.Store
}

// Successors returns all v with pred(u, v) in the store.
func (s StoreSource) Successors(pred string, u symtab.Sym) []symtab.Sym {
	return s.Store.Relation(pred).Successors(u)
}

// Predecessors returns all u with pred(u, v) in the store.
func (s StoreSource) Predecessors(pred string, v symtab.Sym) []symtab.Sym {
	return s.Store.Relation(pred).Predecessors(v)
}

// FuncSource builds a Source from closures; used by tests and by virtual
// relation layers that fall back to a store.
type FuncSource struct {
	Succ func(pred string, u symtab.Sym) []symtab.Sym
	Pred func(pred string, v symtab.Sym) []symtab.Sym
}

// Successors invokes the Succ closure.
func (f FuncSource) Successors(pred string, u symtab.Sym) []symtab.Sym {
	return f.Succ(pred, u)
}

// Predecessors invokes the Pred closure.
func (f FuncSource) Predecessors(pred string, v symtab.Sym) []symtab.Sym {
	return f.Pred(pred, v)
}
