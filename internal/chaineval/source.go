package chaineval

import (
	"chainlog/internal/edb"
	"chainlog/internal/symtab"
)

// SymBounder is an optional Source extension: SymBound returns an
// exclusive upper bound on the Sym values the source can produce (the
// symbol table's current size). The engine uses it to size its dense
// visited pages exactly; sources that cannot report a bound simply omit
// the method and pages grow on demand instead.
type SymBounder interface {
	SymBound() int
}

// RelationResolver is an optional Source extension: ResolveRelation
// returns the concrete extensional relation behind pred, or nil when the
// predicate is computed (e.g. the Section 4 transformation's virtual
// join relations) or not yet materialized. The engine resolves each base
// predicate once at automaton-annotation time and probes the returned
// relation through its raw (uncounted) adjacency accessors, batching the
// retrieval statistics per run — the hot path then performs no string
// hashing and no per-probe atomics. Predicates that resolve to nil keep
// the by-name Successors/Predecessors path, whose implementations count
// their own probes.
type RelationResolver interface {
	ResolveRelation(pred string) *edb.Relation
}

// StoreSource adapts an extensional store to the Source interface.
type StoreSource struct {
	Store *edb.Store
}

// ResolveRelation exposes the store's relation for direct adjacency
// probes (see RelationResolver).
func (s StoreSource) ResolveRelation(pred string) *edb.Relation {
	return s.Store.Relation(pred)
}

// Successors returns all v with pred(u, v) in the store.
func (s StoreSource) Successors(pred string, u symtab.Sym) []symtab.Sym {
	return s.Store.Relation(pred).Successors(u)
}

// Predecessors returns all u with pred(u, v) in the store.
func (s StoreSource) Predecessors(pred string, v symtab.Sym) []symtab.Sym {
	return s.Store.Relation(pred).Predecessors(v)
}

// SymBound reports the store's symbol-table size for dense page sizing.
func (s StoreSource) SymBound() int {
	return s.Store.SymBound()
}

// FuncSource builds a Source from closures; used by tests and by virtual
// relation layers that fall back to a store.
type FuncSource struct {
	Succ func(pred string, u symtab.Sym) []symtab.Sym
	Pred func(pred string, v symtab.Sym) []symtab.Sym
	// Bound optionally reports the Sym upper bound (see SymBounder).
	Bound func() int
}

// Successors invokes the Succ closure.
func (f FuncSource) Successors(pred string, u symtab.Sym) []symtab.Sym {
	return f.Succ(pred, u)
}

// Predecessors invokes the Pred closure.
func (f FuncSource) Predecessors(pred string, v symtab.Sym) []symtab.Sym {
	return f.Pred(pred, v)
}

// SymBound invokes the Bound closure, or reports no bound when unset.
func (f FuncSource) SymBound() int {
	if f.Bound == nil {
		return 0
	}
	return f.Bound()
}
