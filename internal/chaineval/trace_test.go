package chaineval

import (
	"bytes"
	"strings"
	"testing"

	"chainlog/internal/symtab"
	"chainlog/internal/workload"
)

func TestCountingTracerMatchesResult(t *testing.T) {
	st := symtab.NewTable()
	w := workload.SampleC(st, 10)
	var c CountingTracer
	eng := sgEngine(t, w.Store, Options{Tracer: &c})
	res, err := eng.Query("sg", w.Query)
	if err != nil {
		t.Fatal(err)
	}
	if c.Iterations != res.Iterations {
		t.Fatalf("tracer iterations %d != result %d", c.Iterations, res.Iterations)
	}
	if c.Nodes != res.Nodes {
		t.Fatalf("tracer nodes %d != result %d", c.Nodes, res.Nodes)
	}
	if c.Expansions != res.Expansions {
		t.Fatalf("tracer expansions %d != result %d", c.Expansions, res.Expansions)
	}
	if c.Answers != len(res.Answers) {
		t.Fatalf("tracer answers %d != result %d", c.Answers, len(res.Answers))
	}
}

func TestWriterTracerOutput(t *testing.T) {
	st := symtab.NewTable()
	w := workload.SampleA(st, 3)
	var buf bytes.Buffer
	tr := &WriterTracer{W: &buf, St: st}
	eng := sgEngine(t, w.Store, Options{Tracer: tr})
	if _, err := eng.Query("sg", w.Query); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"-- iteration 1", "-- iteration 2", "expand sg", "answer w1", "node (q0, a)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestWriterTracerTruncation(t *testing.T) {
	st := symtab.NewTable()
	w := workload.SampleA(st, 50)
	var buf bytes.Buffer
	tr := &WriterTracer{W: &buf, St: st, MaxNodes: 5}
	eng := sgEngine(t, w.Store, Options{Tracer: tr})
	if _, err := eng.Query("sg", w.Query); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "truncated") {
		t.Fatal("truncation marker missing")
	}
	if n := strings.Count(out, "   node "); n != 5 {
		t.Fatalf("node lines = %d, want 5", n)
	}
}
