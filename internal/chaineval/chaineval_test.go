package chaineval

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"chainlog/internal/edb"
	"chainlog/internal/equations"
	"chainlog/internal/parser"
	"chainlog/internal/rel"
	"chainlog/internal/symtab"
	"chainlog/internal/workload"
)

func sgEngine(t *testing.T, store *edb.Store, opts Options) *Engine {
	t.Helper()
	st := store.SymTab()
	res := parser.MustParse(workload.SGProgram, st)
	sys, err := equations.Transform(res.Program)
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	return New(sys, StoreSource{Store: store}, opts)
}

func names(st *symtab.Table, syms []symtab.Sym) []string {
	out := make([]string, len(syms))
	for i, s := range syms {
		out[i] = st.Name(s)
	}
	return out
}

// --- Figure 7 sample shapes (experiment E2) ---

// Sample (a): two iterations; the flat hub collapses to one node; O(n)
// total nodes.
func TestSampleAShape(t *testing.T) {
	st := symtab.NewTable()
	w := workload.SampleA(st, 50)
	eng := sgEngine(t, w.Store, Options{})
	res, err := eng.Query("sg", w.Query)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 2 {
		t.Fatalf("iterations = %d, want 2", res.Iterations)
	}
	if len(res.Answers) != 50 {
		t.Fatalf("answers = %d, want 50", len(res.Answers))
	}
	// O(n) nodes: bounded by a small multiple of n (the Thompson
	// construction contributes a constant factor of automaton states).
	if res.Nodes > 12*50 {
		t.Fatalf("nodes = %d, expected O(n)", res.Nodes)
	}
}

// Sample (b): n iterations; Θ(n²) nodes.
func TestSampleBShape(t *testing.T) {
	st := symtab.NewTable()
	n := 40
	w := workload.SampleB(st, n)
	eng := sgEngine(t, w.Store, Options{})
	res, err := eng.Query("sg", w.Query)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != n {
		t.Fatalf("iterations = %d, want %d", res.Iterations, n)
	}
	if res.Nodes < n*n/8 {
		t.Fatalf("nodes = %d, expected Θ(n²) growth", res.Nodes)
	}
}

// Sample (c): n iterations but O(n) nodes — the spine is shared.
func TestSampleCShape(t *testing.T) {
	st := symtab.NewTable()
	n := 60
	w := workload.SampleC(st, n)
	eng := sgEngine(t, w.Store, Options{})
	res, err := eng.Query("sg", w.Query)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != n {
		t.Fatalf("iterations = %d, want %d", res.Iterations, n)
	}
	if res.Nodes > 12*n {
		t.Fatalf("nodes = %d, expected O(n)", res.Nodes)
	}
	if !res.Converged {
		t.Fatal("acyclic sample did not converge")
	}
}

// Growth-shape comparison: sample (b) node counts grow ~quadratically,
// samples (a) and (c) ~linearly, when n doubles.
func TestGrowthShapes(t *testing.T) {
	nodesFor := func(gen func(*symtab.Table, int) *workload.SG, n int) int {
		st := symtab.NewTable()
		w := gen(st, n)
		eng := sgEngine(t, w.Store, Options{})
		res, err := eng.Query("sg", w.Query)
		if err != nil {
			t.Fatal(err)
		}
		return res.Nodes
	}
	for _, tc := range []struct {
		name     string
		gen      func(*symtab.Table, int) *workload.SG
		minRatio float64
		maxRatio float64
	}{
		{"sampleA", workload.SampleA, 1.5, 2.6},
		{"sampleB", workload.SampleB, 3.0, 4.8},
		{"sampleC", workload.SampleC, 1.5, 2.6},
	} {
		n1 := nodesFor(tc.gen, 64)
		n2 := nodesFor(tc.gen, 128)
		ratio := float64(n2) / float64(n1)
		if ratio < tc.minRatio || ratio > tc.maxRatio {
			t.Errorf("%s: nodes(128)/nodes(64) = %.2f, want in [%.1f, %.1f]",
				tc.name, ratio, tc.minRatio, tc.maxRatio)
		}
	}
}

// --- Figure 8: cyclic data (experiment E3) ---

func TestCyclicNeedsMNIterations(t *testing.T) {
	st := symtab.NewTable()
	m, n := 3, 4 // coprime
	w := workload.Cyclic(st, m, n)
	eng := sgEngine(t, w.Store, Options{})
	res, err := eng.Query("sg", w.Query)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !res.BoundStopped {
		t.Fatalf("cyclic run should stop via the m·n bound: %+v", res)
	}
	// With gcd(m,n)=1 every down-cycle node is an answer.
	if len(res.Answers) != n {
		t.Fatalf("answers = %d, want %d", len(res.Answers), n)
	}
	// The complete answer needs ~m·n iterations: the last new answer must
	// appear late (> (m-1)*(n-1) iterations in).
	if res.AnswerCompleteAt <= (m-1)*(n-1) {
		t.Fatalf("answer completed at iteration %d, expected > %d", res.AnswerCompleteAt, (m-1)*(n-1))
	}
	if res.AnswerCompleteAt > m*n+1 {
		t.Fatalf("answer completed at iteration %d, expected <= %d", res.AnswerCompleteAt, m*n+1)
	}
}

func TestCyclicWithoutGuardHitsCap(t *testing.T) {
	st := symtab.NewTable()
	w := workload.Cyclic(st, 3, 4)
	eng := sgEngine(t, w.Store, Options{MaxIterations: 7, DisableCyclicGuard: true})
	res, err := eng.Query("sg", w.Query)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("capped run reported convergence")
	}
	if res.Iterations != 7 {
		t.Fatalf("iterations = %d, want cap 7", res.Iterations)
	}
}

func TestCyclicCoprimePairs(t *testing.T) {
	for _, mn := range [][2]int{{2, 3}, {3, 5}, {4, 7}, {5, 6}} {
		st := symtab.NewTable()
		w := workload.Cyclic(st, mn[0], mn[1])
		eng := sgEngine(t, w.Store, Options{})
		res, err := eng.Query("sg", w.Query)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Answers) != mn[1] {
			t.Fatalf("m=%d n=%d: answers = %d, want %d", mn[0], mn[1], len(res.Answers), mn[1])
		}
	}
	// Non-coprime: only every gcd-th node is reachable.
	st := symtab.NewTable()
	w := workload.Cyclic(st, 2, 4)
	eng := sgEngine(t, w.Store, Options{})
	res, err := eng.Query("sg", w.Query)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 { // b0, b2: indices ≡ 0 mod 2
		t.Fatalf("m=2 n=4: answers = %v", names(st, res.Answers))
	}
}

// --- Theorem 3: regular case, single iteration, linear size ---

func TestTheorem3RegularSingleIteration(t *testing.T) {
	st := symtab.NewTable()
	store, src := workload.Chain(st, 100)
	res := parser.MustParse(`
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
`, st)
	sys, err := equations.Transform(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	if !sys.IsRegularFor("tc") {
		t.Fatal("tc should be regular")
	}
	eng := New(sys, StoreSource{Store: store}, Options{})
	r, err := eng.Query("tc", src)
	if err != nil {
		t.Fatal(err)
	}
	if r.Iterations != 1 {
		t.Fatalf("regular case used %d iterations", r.Iterations)
	}
	if len(r.Answers) != 100 {
		t.Fatalf("answers = %d", len(r.Answers))
	}
	// Nodes linear in the reachable subexpression size (constant factor
	// from the Thompson states).
	if r.Nodes > 10*100 {
		t.Fatalf("nodes = %d, expected O(n)", r.Nodes)
	}
	// Demand-driven: facts consulted are bounded by reachable data. Add
	// disconnected junk; counters must not grow with it.
	store.Counters.Reset()
	if _, err := eng.Query("tc", src); err != nil {
		t.Fatal(err)
	}
	base := store.Counters.Snapshot().Retrieved
	for i := 0; i < 500; i++ {
		store.Insert("edge", st.Intern(fmt.Sprintf("junk%d", i)), st.Intern(fmt.Sprintf("junk%d", i+1)))
	}
	store.Counters.Reset()
	if _, err := eng.Query("tc", src); err != nil {
		t.Fatal(err)
	}
	if store.Counters.Snapshot().Retrieved != base {
		t.Fatalf("facts consulted grew with irrelevant data: %d -> %d", base, store.Counters.Snapshot().Retrieved)
	}
}

// --- Theorem 4(2): h bounded by the longest e1|a path ---

func TestTheorem4IterationBound(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		st := symtab.NewTable()
		w := workload.RandomTree(st, 60, 0.3, seed)
		eng := sgEngine(t, w.Store, Options{})
		res, err := eng.Query("sg", w.Query)
		if err != nil {
			t.Fatal(err)
		}
		// Longest up-path from the query constant.
		h := longestUpPath(w.Store, w.Query)
		if res.Iterations > h+1 {
			t.Fatalf("seed %d: iterations %d exceed longest-path bound %d+1", seed, res.Iterations, h)
		}
	}
}

func longestUpPath(store *edb.Store, from symtab.Sym) int {
	up := store.Relation("up")
	var dfs func(u symtab.Sym) int
	memo := map[symtab.Sym]int{}
	var onPath map[symtab.Sym]bool
	dfs = func(u symtab.Sym) int {
		if d, ok := memo[u]; ok {
			return d
		}
		if onPath[u] {
			return 0
		}
		onPath[u] = true
		best := 0
		for _, v := range up.Successors(u) {
			if d := dfs(v) + 1; d > best {
				best = d
			}
		}
		delete(onPath, u)
		memo[u] = best
		return best
	}
	onPath = map[symtab.Sym]bool{}
	return dfs(from)
}

// --- Lemma 2 / correctness: engine answers equal the relational oracle ---

func TestEngineMatchesOracleOnRandomTrees(t *testing.T) {
	f := func(seed int64) bool {
		st := symtab.NewTable()
		w := workload.RandomTree(st, 25, 0.4, seed)
		eng := sgEngine(t, w.Store, Options{})

		up := relFromStore(w.Store, "up")
		flat := relFromStore(w.Store, "flat")
		down := relFromStore(w.Store, "down")
		oracle, ok := rel.SolveLinear(flat, up, down, 200)
		if !ok {
			return false
		}
		for _, a := range up.Domain() {
			res, err := eng.Query("sg", a)
			if err != nil {
				return false
			}
			want := oracle.Successors(a)
			if len(want) != len(res.Answers) {
				t.Logf("seed %d: a=%s got %v want %v", seed, st.Name(a), names(st, res.Answers), names(st, want))
				return false
			}
			for i := range want {
				if want[i] != res.Answers[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func relFromStore(store *edb.Store, pred string) *rel.Rel {
	out := rel.New()
	r := store.Relation(pred)
	if r == nil {
		return out
	}
	for i := 0; i < r.Len(); i++ {
		tu := r.Tuple(i)
		out.Add(tu[0], tu[1])
	}
	return out
}

// --- Query modes ---

func TestQueryInverseEqualsForwardTransposed(t *testing.T) {
	f := func(seed int64) bool {
		st := symtab.NewTable()
		w := workload.RandomTree(st, 20, 0.4, seed)
		eng := sgEngine(t, w.Store, Options{})
		domain := activeDomain(w.Store)
		// For every pair (a,b): b ∈ Query(a) iff a ∈ QueryInverse(b).
		forward := map[[2]symtab.Sym]bool{}
		for _, a := range domain {
			res, err := eng.Query("sg", a)
			if err != nil {
				return false
			}
			for _, b := range res.Answers {
				forward[[2]symtab.Sym{a, b}] = true
			}
		}
		for _, b := range domain {
			res, err := eng.QueryInverse("sg", b)
			if err != nil {
				return false
			}
			got := map[symtab.Sym]bool{}
			for _, a := range res.Answers {
				got[a] = true
			}
			for _, a := range domain {
				if got[a] != forward[[2]symtab.Sym{a, b}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func activeDomain(store *edb.Store) []symtab.Sym {
	set := map[symtab.Sym]bool{}
	for _, name := range store.Relations() {
		r := store.Relation(name)
		for i := 0; i < r.Len(); i++ {
			for _, s := range r.Tuple(i) {
				set[s] = true
			}
		}
	}
	out := make([]symtab.Sym, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	return out
}

func TestQueryBoolean(t *testing.T) {
	st := symtab.NewTable()
	w := workload.SampleC(st, 10)
	eng := sgEngine(t, w.Store, Options{})
	ok, _, err := eng.QueryBoolean("sg", w.Query, st.Intern("b1"))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("sg(a1, b1) should hold on sample (c)")
	}
	ok, _, err = eng.QueryBoolean("sg", w.Query, st.Intern("a2"))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("sg(a1, a2) should not hold")
	}
}

// QueryAll on a regular program uses the SCC path; its pairs must agree
// with per-source queries.
func TestQueryAllRegularMatchesPerSource(t *testing.T) {
	st := symtab.NewTable()
	store, _ := workload.RandomGraph(st, 15, 35, 42)
	res := parser.MustParse(`
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
`, st)
	sys, err := equations.Transform(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(sys, StoreSource{Store: store}, Options{})
	domain := activeDomain(store)
	pairs, _, err := eng.QueryAll("tc", domain)
	if err != nil {
		t.Fatal(err)
	}
	got := map[[2]symtab.Sym]bool{}
	for _, p := range pairs {
		got[p] = true
	}
	for _, a := range domain {
		r, err := eng.Query("tc", a)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range r.Answers {
			if !got[[2]symtab.Sym{a, b}] {
				t.Fatalf("QueryAll missing (%s, %s)", st.Name(a), st.Name(b))
			}
			delete(got, [2]symtab.Sym{a, b})
		}
	}
	if len(got) != 0 {
		t.Fatalf("QueryAll has %d extra pairs", len(got))
	}
}

// QueryAll on the (nonregular) sg program falls back to per-source
// evaluation and must agree with single queries too.
func TestQueryAllNonRegular(t *testing.T) {
	st := symtab.NewTable()
	w := workload.SampleC(st, 8)
	eng := sgEngine(t, w.Store, Options{})
	domain := activeDomain(w.Store)
	pairs, _, err := eng.QueryAll("sg", domain)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		ok, _, err := eng.QueryBoolean("sg", p[0], p[1])
		if err != nil || !ok {
			t.Fatalf("QueryAll pair (%s,%s) not confirmed", st.Name(p[0]), st.Name(p[1]))
		}
	}
}

func TestMaxNodesAborts(t *testing.T) {
	st := symtab.NewTable()
	w := workload.SampleB(st, 60)
	eng := sgEngine(t, w.Store, Options{MaxNodes: 50})
	if _, err := eng.Query("sg", w.Query); err == nil {
		t.Fatal("MaxNodes overflow not reported")
	}
}

func TestUnknownPredicate(t *testing.T) {
	st := symtab.NewTable()
	w := workload.SampleA(st, 3)
	eng := sgEngine(t, w.Store, Options{})
	if _, err := eng.Query("nosuch", w.Query); err == nil {
		t.Fatal("unknown predicate accepted")
	}
	if _, err := eng.QueryInverse("nosuch", w.Query); err == nil {
		t.Fatal("unknown predicate accepted (inverse)")
	}
	if _, _, err := eng.QueryAll("nosuch", nil); err == nil {
		t.Fatal("unknown predicate accepted (all)")
	}
}

// Expansions only happen along reachable continuation points: querying a
// constant with no up-edges must not expand at all.
func TestDemandDrivenExpansion(t *testing.T) {
	st := symtab.NewTable()
	w := workload.SampleA(st, 10)
	eng := sgEngine(t, w.Store, Options{})
	res, err := eng.Query("sg", st.Intern("w1")) // a leaf: no up, no flat
	if err != nil {
		t.Fatal(err)
	}
	if res.Expansions != 0 {
		t.Fatalf("expansions = %d for a dead-end constant", res.Expansions)
	}
	if len(res.Answers) != 0 {
		t.Fatalf("answers = %v", names(st, res.Answers))
	}
}

func TestRandomGraphReachabilityMatchesBFS(t *testing.T) {
	f := func(seed int64) bool {
		st := symtab.NewTable()
		store, src := workload.RandomGraph(st, 12, 30, seed)
		res := parser.MustParse(`
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
`, st)
		sys, err := equations.Transform(res.Program)
		if err != nil {
			return false
		}
		eng := New(sys, StoreSource{Store: store}, Options{})
		r, err := eng.Query("tc", src)
		if err != nil {
			return false
		}
		// Oracle: BFS one step then closure.
		edge := relFromStore(store, "edge")
		want := rel.Image(edge, rel.ReachableFrom(edge, []symtab.Sym{src}))
		// want = successors of reachable set = exactly tc(src, ·)
		if len(want) != len(r.Answers) {
			return false
		}
		for i := range want {
			if want[i] != r.Answers[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Determinism: repeated runs produce identical results and stats.
func TestDeterminism(t *testing.T) {
	st := symtab.NewTable()
	w := workload.SampleB(st, 20)
	eng := sgEngine(t, w.Store, Options{})
	r1, err := eng.Query("sg", w.Query)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eng.Query("sg", w.Query)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Nodes != r2.Nodes || r1.Iterations != r2.Iterations || len(r1.Answers) != len(r2.Answers) {
		t.Fatalf("nondeterministic: %+v vs %+v", r1, r2)
	}
	_ = rand.Int
}
