//go:build linux && !nommap

package snapshot

import (
	"os"
	"syscall"
)

// mapFile maps f read-only. The mapping is private (copy-on-write is
// irrelevant — nothing writes through it) and page-aligned, which
// satisfies the 8-byte section alignment the zero-copy decoders need.
func mapFile(f *os.File, size int64) (data []byte, unmap func() error, err error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	d, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, &os.PathError{Op: "mmap", Path: f.Name(), Err: err}
	}
	return d, func() error { return syscall.Munmap(d) }, nil
}

// Mapped reports whether Open memory-maps snapshots on this build
// (true on Linux without the nommap tag).
const Mapped = true
