package snapshot

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"
	"unsafe"

	"chainlog/internal/edb"
	"chainlog/internal/symtab"
)

// testStore builds a store with a binary relation, a ternary relation, a
// unary relation and some unused interned symbols (which must not leak
// into the snapshot).
func testStore() (*symtab.Table, *edb.Store) {
	st := symtab.NewTable()
	s := edb.NewStore(st)
	st.Intern("unused_constant")
	edges := [][2]string{
		{"a", "b"}, {"b", "c"}, {"c", "d"}, {"d", "e"}, {"a", "d"},
		{"e", "a"}, {"b", "b"},
	}
	for _, e := range edges {
		s.Insert("edge", st.Intern(e[0]), st.Intern(e[1]))
	}
	s.Insert("triple", st.Intern("x"), st.Intern("y"), st.Intern("z"))
	s.Insert("triple", st.Intern("z"), st.Intern("y"), st.Intern("x"))
	s.Insert("flag", st.Intern("on"))
	st.Intern("another_unused")
	return st, s
}

func writeSnap(t *testing.T, st *symtab.Table, s *edb.Store, epoch uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, st, s, epoch); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

// alignedCopy returns an 8-byte-aligned copy of b, as Parse's zero-copy
// decoding requires.
func alignedCopy(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	w := make([]uint64, (len(b)+7)/8)
	out := unsafe.Slice((*byte)(unsafe.Pointer(&w[0])), len(b))
	copy(out, b)
	return out
}

func TestRoundTrip(t *testing.T) {
	st, s := testStore()
	img := writeSnap(t, st, s, 42)
	snap, err := Parse(img)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if snap.Epoch != 42 {
		t.Errorf("epoch = %d, want 42", snap.Epoch)
	}
	// Only the constants used in facts appear: 5 edge nodes + x,y,z +
	// on = 9; the two unused interns must be gone.
	if snap.SymCount != 9 {
		t.Errorf("SymCount = %d, want 9", snap.SymCount)
	}
	st2, s2, err := snap.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Every original fact present, no extras, via name-level comparison.
	for _, rel := range []string{"edge", "triple", "flag"} {
		want := map[string]bool{}
		s.Relation(rel).EachRaw(func(tu []symtab.Sym) {
			names := make([]string, len(tu))
			for i, x := range tu {
				names[i] = st.Name(x)
			}
			want[strings.Join(names, ",")] = true
		})
		got := map[string]bool{}
		s2.Relation(rel).EachRaw(func(tu []symtab.Sym) {
			names := make([]string, len(tu))
			for i, x := range tu {
				names[i] = st2.Name(x)
			}
			got[strings.Join(names, ",")] = true
		})
		if len(got) != len(want) {
			t.Errorf("%s: %d tuples, want %d", rel, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Errorf("%s: missing tuple %s", rel, k)
			}
		}
	}
	// Adjacency probes work frozen and agree with the source.
	a2 := st2.Intern("a")
	succ := []string{}
	for _, v := range s2.Relation("edge").Successors(a2) {
		succ = append(succ, st2.Name(v))
	}
	slices.Sort(succ)
	if !slices.Equal(succ, []string{"b", "d"}) {
		t.Errorf("Successors(a) = %v", succ)
	}
	if _, ok := st2.Lookup("unused_constant"); ok {
		t.Error("unused constant leaked into the snapshot")
	}
}

func TestWriterDeterministic(t *testing.T) {
	st, s := testStore()
	if !bytes.Equal(writeSnap(t, st, s, 7), writeSnap(t, st, s, 7)) {
		t.Error("two writes of the same store differ")
	}
}

func TestRejectsTupleTerms(t *testing.T) {
	st := symtab.NewTable()
	s := edb.NewStore(st)
	tup := st.InternTuple([]symtab.Sym{st.Intern("a"), st.Intern("b")})
	s.Insert("weird", tup, st.Intern("c"))
	if err := Write(&bytes.Buffer{}, st, s, 1); err == nil {
		t.Fatal("Write accepted a tuple term")
	}
}

func TestVersionAndMagicRejection(t *testing.T) {
	st, s := testStore()
	img := writeSnap(t, st, s, 1)

	bad := alignedCopy(img)
	bad[0] = 'X'
	if _, err := Parse(bad); err != ErrNotSnapshot {
		t.Errorf("magic corruption: err = %v, want ErrNotSnapshot", err)
	}

	bad = alignedCopy(img)
	binary.LittleEndian.PutUint32(bad[8:], Version+1)
	if _, err := Parse(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version accepted: err = %v", err)
	}
}

func TestTruncationRejected(t *testing.T) {
	st, s := testStore()
	img := writeSnap(t, st, s, 1)
	for _, n := range []int{0, 4, len(Magic), headerLen - 1, headerLen + 3, len(img) / 2, len(img) - 1} {
		if _, err := Parse(alignedCopy(img[:n])); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}

func TestBitFlipsRejected(t *testing.T) {
	st, s := testStore()
	img := writeSnap(t, st, s, 1)
	rng := rand.New(rand.NewSource(1))
	flips := []int{}
	for i := 0; i < 64; i++ {
		flips = append(flips, rng.Intn(len(img)))
	}
	// Deterministic coverage of the structurally interesting offsets too.
	flips = append(flips, 8, 12, 16, 24, 32, 36, 40, 48, 64, 68, 72, 80, 88, 92, len(img)-1)
	for _, pos := range flips {
		bad := alignedCopy(img)
		bad[pos] ^= 0x40
		if _, err := Parse(bad); err == nil {
			t.Errorf("bit flip at offset %d accepted", pos)
		}
	}
}

func TestOpenFile(t *testing.T) {
	st, s := testStore()
	img := writeSnap(t, st, s, 99)
	path := filepath.Join(t.TempDir(), "snap.bin")
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if f.Epoch != 99 {
		t.Errorf("epoch = %d", f.Epoch)
	}
	st2, s2, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Relation("edge").Len(); got != s.Relation("edge").Len() {
		t.Errorf("edge Len = %d", got)
	}
	_ = st2
	if err := f.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Error("Open of missing file succeeded")
	}
}
