package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"chainlog/internal/symtab"
)

// ErrNotSnapshot reports that the input does not begin with the snapshot
// magic — callers use it to fall back to the text fact format.
var ErrNotSnapshot = errors.New("snapshot: magic mismatch (not a binary snapshot)")

// Rel is one parsed relation, its sections decoded (aliased on a
// little-endian host) and structurally validated.
type Rel struct {
	Name  string
	Arity int
	Count int
	// Binary relations: CSR offsets sized SymCount+2 and sorted neighbor
	// lists, forward and inverse.
	FwdOff []int32
	FwdNbr []symtab.Sym
	RevOff []int32
	RevNbr []symtab.Sym
	// Non-binary relations: Count×Arity flat tuples.
	Flat []symtab.Sym
}

// Snapshot is a parsed, checksum-verified binary snapshot. Slice fields
// alias the input buffer on little-endian hosts; the buffer must outlive
// any use of them (including a Store built via Build).
type Snapshot struct {
	Epoch    uint64
	SymCount int
	Blob     []byte
	Offs     []uint32
	Sorted   []int32
	Rels     []Rel
}

// SymName returns the text of snapshot symbol i as a heap copy (the
// remapping restore path interns it into a live table, which must not
// pin the snapshot buffer).
func (s *Snapshot) SymName(i symtab.Sym) string {
	if i < 1 || int(i) > s.SymCount {
		return ""
	}
	return string(s.Blob[s.Offs[i-1]:s.Offs[i]])
}

// IsSnapshot reports whether b begins with the binary snapshot magic.
func IsSnapshot(b []byte) bool {
	return len(b) >= len(Magic) && string(b[:len(Magic)]) == Magic
}

// rawSec is one directory-described section before typed decoding.
type rawSec struct {
	data  []byte
	count int
}

// Parse decodes and fully verifies a binary snapshot image: magic,
// version, header/directory checksum, then every section's CRC32C,
// bounds, alignment and structural invariants (monotone CSR offsets
// ending at the edge count, symbol values in range). Corruption anywhere
// — truncation, bit flips, a bad length — returns an error; no partially
// verified data is ever exposed. On little-endian hosts the returned
// snapshot aliases data with zero copying, so data must be 8-byte
// aligned and outlive the result.
func Parse(data []byte) (*Snapshot, error) {
	if !IsSnapshot(data) {
		return nil, ErrNotSnapshot
	}
	if len(data) < headerLen {
		return nil, fmt.Errorf("snapshot: truncated header (%d bytes)", len(data))
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != Version {
		return nil, fmt.Errorf("snapshot: format version %d not supported (reader handles version %d)", v, Version)
	}
	if f := binary.LittleEndian.Uint32(data[12:]); f != 0 {
		return nil, fmt.Errorf("snapshot: unknown flags %#x", f)
	}
	epoch := binary.LittleEndian.Uint64(data[16:])
	symCount := binary.LittleEndian.Uint64(data[24:])
	relCount := binary.LittleEndian.Uint32(data[32:])
	secCount := binary.LittleEndian.Uint32(data[36:])
	dirOff := binary.LittleEndian.Uint64(data[40:])
	fileSize := binary.LittleEndian.Uint64(data[48:])
	if fileSize != uint64(len(data)) {
		return nil, fmt.Errorf("snapshot: file is %d bytes, header says %d (truncated or padded)", len(data), fileSize)
	}
	if symCount > uint64(1)<<31-2 {
		return nil, fmt.Errorf("snapshot: implausible symbol count %d", symCount)
	}
	if dirOff != headerLen {
		return nil, fmt.Errorf("snapshot: directory at %d, want %d", dirOff, headerLen)
	}
	dirLen := uint64(secCount)*dirEntLen + 4
	if dirOff+dirLen > uint64(len(data)) {
		return nil, fmt.Errorf("snapshot: directory (%d sections) exceeds file", secCount)
	}
	dir := data[dirOff : dirOff+dirLen]
	wantMeta := binary.LittleEndian.Uint32(dir[len(dir)-4:])
	meta := crc32.Checksum(data[:headerLen], castagnoli)
	meta = crc32.Update(meta, castagnoli, dir[:len(dir)-4])
	if meta != wantMeta {
		return nil, fmt.Errorf("snapshot: header/directory checksum mismatch (got %#x, want %#x)", meta, wantMeta)
	}

	k := int(symCount)
	snap := &Snapshot{Epoch: epoch, SymCount: k, Rels: make([]Rel, relCount)}
	// Relation sections are keyed by kind per relation; global sections
	// are tracked directly.
	bySec := make([]map[uint32]rawSec, relCount)
	spans := [][2]uint64{{0, dirOff + dirLen}}
	var blobSec, offsSec, sortedSec, relTabSec *rawSec
	for i := 0; i < int(secCount); i++ {
		e := dir[i*dirEntLen:]
		kind := binary.LittleEndian.Uint32(e[0:])
		rel := binary.LittleEndian.Uint32(e[4:])
		off := binary.LittleEndian.Uint64(e[8:])
		length := binary.LittleEndian.Uint64(e[16:])
		wantCRC := binary.LittleEndian.Uint32(e[24:])
		count := binary.LittleEndian.Uint32(e[28:])
		if off%8 != 0 {
			return nil, fmt.Errorf("snapshot: section %d misaligned at offset %d", i, off)
		}
		if off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("snapshot: section %d (%d+%d bytes) exceeds file", i, off, length)
		}
		payload := data[off : off+length]
		if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
			return nil, fmt.Errorf("snapshot: section %d (kind %d) checksum mismatch (got %#x, want %#x)", i, kind, got, wantCRC)
		}
		spans = append(spans, [2]uint64{off, off + length})
		sec := rawSec{data: payload, count: int(count)}
		switch kind {
		case secSymBlob, secSymOffs, secSymSorted, secRelTable:
			if rel != noRel {
				return nil, fmt.Errorf("snapshot: global section %d bound to relation %d", kind, rel)
			}
			switch kind {
			case secSymBlob:
				blobSec = &sec
			case secSymOffs:
				offsSec = &sec
			case secSymSorted:
				sortedSec = &sec
			case secRelTable:
				relTabSec = &sec
			}
		case secFwdOff, secFwdNbr, secRevOff, secRevNbr, secFlat:
			if rel >= relCount {
				return nil, fmt.Errorf("snapshot: section kind %d names relation %d of %d", kind, rel, relCount)
			}
			if bySec[rel] == nil {
				bySec[rel] = make(map[uint32]rawSec, 4)
			}
			if _, dup := bySec[rel][kind]; dup {
				return nil, fmt.Errorf("snapshot: duplicate section kind %d for relation %d", kind, rel)
			}
			bySec[rel][kind] = sec
		default:
			return nil, fmt.Errorf("snapshot: unknown section kind %d", kind)
		}
	}

	// Every byte must belong to the header/directory or a section, except
	// zero padding between them — so no CRC-blind region exists anywhere
	// in the file, and sections cannot overlap (which would let one
	// checksummed region silently shadow another).
	sort.Slice(spans, func(i, j int) bool { return spans[i][0] < spans[j][0] })
	cursor := uint64(0)
	for _, sp := range spans {
		if sp[0] < cursor {
			return nil, fmt.Errorf("snapshot: overlapping sections at offset %d", sp[0])
		}
		for _, b := range data[cursor:sp[0]] {
			if b != 0 {
				return nil, fmt.Errorf("snapshot: nonzero padding before offset %d", sp[0])
			}
		}
		cursor = sp[1]
	}
	for _, b := range data[cursor:] {
		if b != 0 {
			return nil, errors.New("snapshot: nonzero trailing padding")
		}
	}

	// Symbol table sections.
	if blobSec == nil || offsSec == nil || sortedSec == nil || relTabSec == nil {
		return nil, errors.New("snapshot: missing symbol-table or relation-table section")
	}
	if offsSec.count != k+1 || len(offsSec.data) != 4*(k+1) {
		return nil, fmt.Errorf("snapshot: symbol offsets hold %d entries, want %d", offsSec.count, k+1)
	}
	if sortedSec.count != k || len(sortedSec.data) != 4*k {
		return nil, fmt.Errorf("snapshot: symbol sort index holds %d entries, want %d", sortedSec.count, k)
	}
	snap.Blob = blobSec.data
	snap.Offs = leWords[uint32](offsSec.data, k+1)
	snap.Sorted = leWords[int32](sortedSec.data, k)

	// Relation table.
	rt := relTabSec.data
	if relTabSec.count != int(relCount) {
		return nil, fmt.Errorf("snapshot: relation table lists %d relations, header says %d", relTabSec.count, relCount)
	}
	for ri := range snap.Rels {
		if len(rt) < 4 {
			return nil, errors.New("snapshot: relation table truncated")
		}
		nameLen := int(binary.LittleEndian.Uint32(rt))
		rt = rt[4:]
		if nameLen < 0 || len(rt) < nameLen+12 {
			return nil, errors.New("snapshot: relation table truncated")
		}
		name := string(rt[:nameLen])
		rt = rt[nameLen:]
		arity := int(binary.LittleEndian.Uint32(rt))
		count := binary.LittleEndian.Uint64(rt[4:])
		rt = rt[12:]
		if arity < 0 || arity > 1<<16 || count > uint64(1)<<40 {
			return nil, fmt.Errorf("snapshot: relation %s has implausible arity %d / count %d", name, arity, count)
		}
		snap.Rels[ri] = Rel{Name: name, Arity: arity, Count: int(count)}
	}

	// Per-relation sections.
	for ri := range snap.Rels {
		r := &snap.Rels[ri]
		secs := bySec[ri]
		if r.Arity == 2 {
			var err error
			if r.FwdOff, r.FwdNbr, err = csrPair(secs, secFwdOff, secFwdNbr, k, r.Count); err != nil {
				return nil, fmt.Errorf("snapshot: relation %s forward: %w", r.Name, err)
			}
			if r.RevOff, r.RevNbr, err = csrPair(secs, secRevOff, secRevNbr, k, r.Count); err != nil {
				return nil, fmt.Errorf("snapshot: relation %s inverse: %w", r.Name, err)
			}
			if len(secs) != 4 {
				return nil, fmt.Errorf("snapshot: relation %s has %d sections, want 4", r.Name, len(secs))
			}
			continue
		}
		fs, ok := secs[secFlat]
		if !ok || len(secs) != 1 {
			return nil, fmt.Errorf("snapshot: relation %s (arity %d) needs exactly one flat section", r.Name, r.Arity)
		}
		want := r.Count * r.Arity
		if fs.count != want || len(fs.data) != 4*want {
			return nil, fmt.Errorf("snapshot: relation %s flat section holds %d values, want %d", r.Name, fs.count, want)
		}
		r.Flat = leWords[symtab.Sym](fs.data, want)
		for _, s := range r.Flat {
			if s < 1 || int(s) > k {
				return nil, fmt.Errorf("snapshot: relation %s holds out-of-range symbol %d", r.Name, s)
			}
		}
	}
	return snap, nil
}

// csrPair decodes and validates one CSR half: offsets monotone over the
// dense symbol space ending at the edge count, neighbor values in range
// and sorted within each key.
func csrPair(secs map[uint32]rawSec, offKind, nbrKind uint32, k, count int) ([]int32, []symtab.Sym, error) {
	os, ok := secs[offKind]
	if !ok {
		return nil, nil, errors.New("missing offset section")
	}
	ns, ok := secs[nbrKind]
	if !ok {
		return nil, nil, errors.New("missing neighbor section")
	}
	if os.count != k+2 || len(os.data) != 4*(k+2) {
		return nil, nil, fmt.Errorf("offset section holds %d entries, want %d", os.count, k+2)
	}
	if ns.count != count || len(ns.data) != 4*count {
		return nil, nil, fmt.Errorf("neighbor section holds %d entries, want %d", ns.count, count)
	}
	off := leWords[int32](os.data, k+2)
	nbr := leWords[symtab.Sym](ns.data, count)
	if off[0] != 0 || int(off[k+1]) != count {
		return nil, nil, fmt.Errorf("offsets span [%d, %d], want [0, %d]", off[0], off[k+1], count)
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return nil, nil, fmt.Errorf("offsets not monotone at key %d", i)
		}
	}
	for u := 0; u <= k; u++ {
		b := nbr[off[u]:off[u+1]]
		for i, v := range b {
			if v < 1 || int(v) > k {
				return nil, nil, fmt.Errorf("key %d has out-of-range neighbor %d", u, v)
			}
			if i > 0 && b[i-1] > v {
				return nil, nil, fmt.Errorf("key %d neighbor list not sorted", u)
			}
		}
	}
	return off, nbr, nil
}
