package snapshot

import "os"

// File is an opened snapshot: the parsed, verified image plus the
// backing memory (a file mapping on Linux, aligned heap elsewhere).
// Close releases the mapping; every structure aliasing it — the
// Snapshot's slices, a symtab/store built from it, and any strings the
// symtab handed out — becomes invalid, so Close belongs at the very end
// of the consumer's lifetime.
type File struct {
	*Snapshot
	data  []byte
	unmap func() error
}

// Open maps (or, on non-Linux/nommap builds, reads) the snapshot at
// path and parses and checksum-verifies it. The returned File's
// Snapshot aliases the mapping on little-endian hosts; call Close only
// when nothing built from it is in use anymore.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, unmap, err := mapFile(f, info.Size())
	if err != nil {
		return nil, err
	}
	snap, err := Parse(data)
	if err != nil {
		unmap()
		return nil, err
	}
	return &File{Snapshot: snap, data: data, unmap: unmap}, nil
}

// Close releases the snapshot's backing memory. See File.
func (f *File) Close() error {
	if f.unmap == nil {
		return nil
	}
	u := f.unmap
	f.unmap = nil
	return u()
}
