// Package snapshot implements the versioned binary snapshot format for
// the extensional database: a columnar, mmap-able image of every
// relation's already-flat CSR layout plus a frozen symbol table, so a
// cold process maps the file and serves chain queries without parsing,
// interning or index building.
//
// # Layout (version 1, all fixed-width fields little-endian)
//
//	offset 0   magic "CLOGSNP1" (8 bytes)
//	offset 8   header (56 bytes):
//	             u32 version, u32 flags (0)
//	             u64 fact epoch
//	             u64 symbol count K
//	             u32 relation count, u32 section count
//	             u64 directory offset (64), u64 file size, u64 reserved
//	offset 64  section directory: one 32-byte entry per section
//	             (u32 kind, u32 relation index or ~0, u64 offset,
//	              u64 length, u32 CRC32C, u32 element count),
//	           followed by u32 CRC32C over magic+header+entries
//	...        sections, each 8-byte aligned
//
// Sections: the symbol table is three sections — the concatenated name
// blob, K+1 u32 offsets delimiting it (the name of Sym i is
// blob[offs[i-1]:offs[i]]), and K i32 ids sorted by name for reverse
// lookup. The relation table section lists (name, arity, live count) per
// relation. Every binary relation stores four i32 sections: forward CSR
// offsets (K+2 entries, indexed by source Sym) and neighbors, then the
// inverse pair indexed by target. Neighbor lists are sorted ascending
// within each key, so membership probes are binary searches and answers
// are deterministic. Non-binary relations store one flat section of
// count×arity i32 tuples.
//
// Symbols are remapped at write time to the dense range 1..K over
// exactly the constants occurring in facts — query-time tuple terms and
// retired constants do not leak into the file — which is what lets the
// reader alias the symbol sections as a frozen symtab base with zero
// build cost.
//
// Every section carries a CRC32C checked before any data is served, and
// the header/directory pair carries its own, so truncation or bit rot
// anywhere in the file fails Parse cleanly instead of serving torn data.
package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"slices"
	"sort"
	"unsafe"

	"chainlog/internal/edb"
	"chainlog/internal/symtab"
)

// Magic identifies a chainlog binary snapshot; the trailing 1 is the
// on-disk format generation and moves only on incompatible changes (the
// header version covers compatible revisions).
const Magic = "CLOGSNP1"

// Version is the current header version this package writes and reads.
const Version = 1

const (
	headerLen = 64 // magic + fixed header fields
	dirEntLen = 32
	noRel     = ^uint32(0)
)

// Section kinds.
const (
	secSymBlob   = 1
	secSymOffs   = 2
	secSymSorted = 3
	secRelTable  = 4
	secFwdOff    = 5
	secFwdNbr    = 6
	secRevOff    = 7
	secRevNbr    = 8
	secFlat      = 9
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// hostLE reports whether the running machine is little-endian; when true
// the fixed-width sections can be aliased as typed slices with no
// decode pass.
var hostLE = binary.NativeEndian.Uint16([]byte{0x12, 0x34}) == 0x3412

// word is the constraint for the 4-byte fixed-width element types the
// format stores.
type word interface{ ~int32 | ~uint32 }

// leBytes returns v's little-endian byte image: an unsafe alias on an
// LE host, an encoded copy elsewhere.
func leBytes[T word](v []T) []byte {
	if len(v) == 0 {
		return nil
	}
	if hostLE {
		return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v))
	}
	b := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(x))
	}
	return b
}

// leWords decodes count little-endian 4-byte values from data: a
// zero-copy alias on an LE host (data must be 4-byte aligned, which the
// 8-aligned section layout guarantees), a converted copy elsewhere.
func leWords[T word](data []byte, count int) []T {
	if count == 0 {
		return nil
	}
	if hostLE {
		return unsafe.Slice((*T)(unsafe.Pointer(&data[0])), count)
	}
	out := make([]T, count)
	for i := range out {
		out[i] = T(binary.LittleEndian.Uint32(data[i*4:]))
	}
	return out
}

// section is one payload scheduled for writing.
type section struct {
	kind    uint32
	rel     uint32
	count   uint32
	payload []byte
}

// Write serializes the store's relations and the symbols they use as a
// binary snapshot stamped with the given fact epoch. The caller must
// hold the store quiescent (the DB read lock) for the duration.
func Write(w io.Writer, st *symtab.Table, store *edb.Store, epoch uint64) error {
	relNames := store.Relations()
	bound := st.Len()

	// Pass 1: mark the constants occurring in facts. Tuple terms (from
	// Section 4 query evaluation) never belong to stored facts and have
	// no flat name, so they are rejected rather than encoded.
	used := make([]bool, bound)
	var markErr error
	for _, name := range relNames {
		store.Relation(name).EachRaw(func(tu []symtab.Sym) {
			if markErr != nil {
				return
			}
			for _, s := range tu {
				if s <= symtab.None || int(s) >= bound {
					markErr = fmt.Errorf("snapshot: fact in %s holds out-of-range symbol %d", name, s)
					return
				}
				if !used[s] {
					if st.IsTuple(s) {
						markErr = fmt.Errorf("snapshot: fact in %s holds tuple term %s; snapshots encode plain constants only", name, st.Name(s))
						return
					}
					used[s] = true
				}
			}
		})
	}
	if markErr != nil {
		return markErr
	}

	// Pass 2: remap used symbols to the dense ids 1..K, preserving
	// relative order, and build the three symbol sections.
	remap := make([]symtab.Sym, bound)
	names := []string{}
	for s := 1; s < bound; s++ {
		if used[s] {
			names = append(names, st.Name(symtab.Sym(s)))
			remap[s] = symtab.Sym(len(names))
		}
	}
	k := len(names)
	var blob []byte
	offs := make([]uint32, 1, k+1)
	for _, n := range names {
		blob = append(blob, n...)
		offs = append(offs, uint32(len(blob)))
	}
	sorted := make([]int32, k)
	for i := range sorted {
		sorted[i] = int32(i + 1)
	}
	sort.Slice(sorted, func(i, j int) bool {
		return names[sorted[i]-1] < names[sorted[j]-1]
	})

	sections := []section{
		{kind: secSymBlob, rel: noRel, count: uint32(len(blob)), payload: blob},
		{kind: secSymOffs, rel: noRel, count: uint32(len(offs)), payload: leBytes(offs)},
		{kind: secSymSorted, rel: noRel, count: uint32(k), payload: leBytes(sorted)},
	}

	// Relation table: (name length, name, arity, live count) per
	// relation, in store insertion order.
	var relTab []byte
	var num [8]byte
	for _, name := range relNames {
		r := store.Relation(name)
		binary.LittleEndian.PutUint32(num[:4], uint32(len(name)))
		relTab = append(relTab, num[:4]...)
		relTab = append(relTab, name...)
		binary.LittleEndian.PutUint32(num[:4], uint32(r.Arity()))
		relTab = append(relTab, num[:4]...)
		binary.LittleEndian.PutUint64(num[:], uint64(r.Len()))
		relTab = append(relTab, num[:]...)
	}
	sections = append(sections, section{kind: secRelTable, rel: noRel, count: uint32(len(relNames)), payload: relTab})

	// Pass 3: per-relation payloads, symbols rewritten through the remap.
	for ri, name := range relNames {
		r := store.Relation(name)
		if r.Arity() == 2 {
			edges := make([][2]symtab.Sym, 0, r.Len())
			r.EachRaw(func(tu []symtab.Sym) {
				edges = append(edges, [2]symtab.Sym{remap[tu[0]], remap[tu[1]]})
			})
			fwdOff, fwdNbr := buildCSR(edges, k, false)
			revOff, revNbr := buildCSR(edges, k, true)
			sections = append(sections,
				section{kind: secFwdOff, rel: uint32(ri), count: uint32(len(fwdOff)), payload: leBytes(fwdOff)},
				section{kind: secFwdNbr, rel: uint32(ri), count: uint32(len(fwdNbr)), payload: leBytes(fwdNbr)},
				section{kind: secRevOff, rel: uint32(ri), count: uint32(len(revOff)), payload: leBytes(revOff)},
				section{kind: secRevNbr, rel: uint32(ri), count: uint32(len(revNbr)), payload: leBytes(revNbr)},
			)
			continue
		}
		flat := make([]symtab.Sym, 0, r.Len()*r.Arity())
		r.EachRaw(func(tu []symtab.Sym) {
			for _, s := range tu {
				flat = append(flat, remap[s])
			}
		})
		sections = append(sections, section{kind: secFlat, rel: uint32(ri), count: uint32(len(flat)), payload: leBytes(flat)})
	}

	// Layout: header, directory, then the 8-aligned sections.
	dirLen := len(sections)*dirEntLen + 4
	off := uint64(align8(headerLen + dirLen))
	offsets := make([]uint64, len(sections))
	for i, s := range sections {
		offsets[i] = off
		off += uint64(align8(len(s.payload)))
	}
	fileSize := off

	head := make([]byte, headerLen)
	copy(head, Magic)
	binary.LittleEndian.PutUint32(head[8:], Version)
	binary.LittleEndian.PutUint32(head[12:], 0) // flags
	binary.LittleEndian.PutUint64(head[16:], epoch)
	binary.LittleEndian.PutUint64(head[24:], uint64(k))
	binary.LittleEndian.PutUint32(head[32:], uint32(len(relNames)))
	binary.LittleEndian.PutUint32(head[36:], uint32(len(sections)))
	binary.LittleEndian.PutUint64(head[40:], headerLen)
	binary.LittleEndian.PutUint64(head[48:], fileSize)

	dir := make([]byte, dirLen)
	for i, s := range sections {
		e := dir[i*dirEntLen:]
		binary.LittleEndian.PutUint32(e[0:], s.kind)
		binary.LittleEndian.PutUint32(e[4:], s.rel)
		binary.LittleEndian.PutUint64(e[8:], offsets[i])
		binary.LittleEndian.PutUint64(e[16:], uint64(len(s.payload)))
		binary.LittleEndian.PutUint32(e[24:], crc32.Checksum(s.payload, castagnoli))
		binary.LittleEndian.PutUint32(e[28:], s.count)
	}
	metaCRC := crc32.Checksum(head, castagnoli)
	metaCRC = crc32.Update(metaCRC, castagnoli, dir[:len(sections)*dirEntLen])
	binary.LittleEndian.PutUint32(dir[len(sections)*dirEntLen:], metaCRC)

	var pad [8]byte
	if _, err := w.Write(head); err != nil {
		return err
	}
	if _, err := w.Write(dir); err != nil {
		return err
	}
	written := headerLen + dirLen
	if p := align8(written) - written; p > 0 {
		if _, err := w.Write(pad[:p]); err != nil {
			return err
		}
	}
	for _, s := range sections {
		if _, err := w.Write(s.payload); err != nil {
			return err
		}
		if p := align8(len(s.payload)) - len(s.payload); p > 0 {
			if _, err := w.Write(pad[:p]); err != nil {
				return err
			}
		}
	}
	return nil
}

func align8(n int) int { return (n + 7) &^ 7 }

// buildCSR counting-sorts the edge list into CSR form over the dense key
// space 1..k — by source (inv=false) or by target (inv=true) — with each
// neighbor bucket sorted ascending. Offsets are sized k+2 so any Sym in
// range indexes directly.
func buildCSR(edges [][2]symtab.Sym, k int, inv bool) ([]int32, []symtab.Sym) {
	kc, vc := 0, 1
	if inv {
		kc, vc = 1, 0
	}
	off := make([]int32, k+2)
	for _, e := range edges {
		off[e[kc]+1]++
	}
	for i := 1; i < len(off); i++ {
		off[i] += off[i-1]
	}
	nbr := make([]symtab.Sym, len(edges))
	fill := make([]int32, k+1)
	for _, e := range edges {
		key := e[kc]
		nbr[off[key]+fill[key]] = e[vc]
		fill[key]++
	}
	for u := 1; u <= k; u++ {
		b := nbr[off[u]:off[u+1]]
		if len(b) > 1 {
			slices.Sort(b)
		}
	}
	return off, nbr
}

// Build constructs a zero-copy symbol table and store over the parsed
// snapshot: the symtab aliases the symbol sections as its frozen base,
// and every relation installs frozen (CSR-backed for binary relations),
// so the cost is per-relation, not per-tuple or per-symbol. The
// snapshot's backing memory must stay valid for the lifetime of the
// returned objects.
func (s *Snapshot) Build() (*symtab.Table, *edb.Store, error) {
	st, err := symtab.NewTableFromBase(s.Blob, s.Offs, s.Sorted)
	if err != nil {
		return nil, nil, err
	}
	store := edb.NewStore(st)
	for i := range s.Rels {
		r := &s.Rels[i]
		if r.Arity == 2 {
			if _, err := store.InstallCSR(r.Name, r.FwdOff, r.FwdNbr, r.RevOff, r.RevNbr); err != nil {
				return nil, nil, err
			}
			continue
		}
		if _, err := store.InstallFlat(r.Name, r.Arity, r.Count, r.Flat); err != nil {
			return nil, nil, err
		}
	}
	return st, store, nil
}
