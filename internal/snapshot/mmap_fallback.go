//go:build !linux || nommap

package snapshot

import (
	"io"
	"os"
	"unsafe"
)

// mapFile reads f into 8-byte-aligned heap memory — the portable
// fallback for platforms without the mmap path (or builds with the
// nommap tag). Opening then costs one sequential read of the file, but
// still no parsing, interning or index building.
func mapFile(f *os.File, size int64) (data []byte, unmap func() error, err error) {
	noop := func() error { return nil }
	if size == 0 {
		return nil, noop, nil
	}
	// A []uint64 backing guarantees the alignment the zero-copy section
	// decoders require; a plain make([]byte) does not promise it.
	words := make([]uint64, (size+7)/8)
	buf := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, nil, &os.PathError{Op: "read", Path: f.Name(), Err: err}
	}
	return buf, noop, nil
}

// Mapped reports whether Open memory-maps snapshots on this build
// (false here: the read-into-heap fallback is active).
const Mapped = false
