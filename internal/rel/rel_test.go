package rel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"chainlog/internal/expr"
	"chainlog/internal/symtab"
)

func syms(n int) (*symtab.Table, []symtab.Sym) {
	st := symtab.NewTable()
	out := make([]symtab.Sym, n)
	for i := range out {
		out[i] = st.Intern(string(rune('a' + i)))
	}
	return st, out
}

func randomRel(rng *rand.Rand, universe []symtab.Sym, density float64) *Rel {
	r := New()
	for _, u := range universe {
		for _, v := range universe {
			if rng.Float64() < density {
				r.Add(u, v)
			}
		}
	}
	return r
}

func TestAddHasLen(t *testing.T) {
	_, s := syms(3)
	r := New()
	if !r.Add(s[0], s[1]) {
		t.Fatal("first Add returned false")
	}
	if r.Add(s[0], s[1]) {
		t.Fatal("duplicate Add returned true")
	}
	if !r.Has(s[0], s[1]) || r.Has(s[1], s[0]) {
		t.Fatal("Has misreports")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestPairsSorted(t *testing.T) {
	_, s := syms(3)
	r := FromPairs([][2]symtab.Sym{{s[2], s[0]}, {s[0], s[1]}, {s[0], s[0]}})
	p := r.Pairs()
	for i := 1; i < len(p); i++ {
		if p[i-1][0] > p[i][0] || (p[i-1][0] == p[i][0] && p[i-1][1] >= p[i][1]) {
			t.Fatalf("Pairs not sorted: %v", p)
		}
	}
}

func TestComposeBasics(t *testing.T) {
	_, s := syms(4)
	ab := FromPairs([][2]symtab.Sym{{s[0], s[1]}})
	bc := FromPairs([][2]symtab.Sym{{s[1], s[2]}})
	got := Compose(ab, bc)
	if got.Len() != 1 || !got.Has(s[0], s[2]) {
		t.Fatalf("Compose = %v", got.Pairs())
	}
	if Compose(ab, New()).Len() != 0 {
		t.Fatal("compose with empty should be empty")
	}
}

func TestStarIncludesReflexive(t *testing.T) {
	_, s := syms(4)
	r := FromPairs([][2]symtab.Sym{{s[0], s[1]}, {s[1], s[2]}})
	star := Star(r, s)
	for _, x := range s {
		if !star.Has(x, x) {
			t.Fatalf("missing reflexive pair for %v", x)
		}
	}
	if !star.Has(s[0], s[2]) {
		t.Fatal("missing transitive pair")
	}
	if star.Has(s[2], s[0]) {
		t.Fatal("spurious pair")
	}
}

func TestPlusExcludesReflexiveUnlessCycle(t *testing.T) {
	_, s := syms(3)
	r := FromPairs([][2]symtab.Sym{{s[0], s[1]}, {s[1], s[0]}})
	plus := Plus(r)
	if !plus.Has(s[0], s[0]) {
		t.Fatal("cycle node missing from transitive closure")
	}
	chain := FromPairs([][2]symtab.Sym{{s[0], s[1]}})
	if Plus(chain).Has(s[0], s[0]) {
		t.Fatal("chain node spuriously reflexive in r+")
	}
}

func TestInverseDomainRange(t *testing.T) {
	_, s := syms(3)
	r := FromPairs([][2]symtab.Sym{{s[0], s[1]}, {s[0], s[2]}})
	inv := Inverse(r)
	if !inv.Has(s[1], s[0]) || !inv.Has(s[2], s[0]) || inv.Len() != 2 {
		t.Fatal("Inverse wrong")
	}
	if d := r.Domain(); len(d) != 1 || d[0] != s[0] {
		t.Fatalf("Domain = %v", d)
	}
	if rg := r.Range(); len(rg) != 2 {
		t.Fatalf("Range = %v", rg)
	}
	if f := r.Field(); len(f) != 3 {
		t.Fatalf("Field = %v", f)
	}
}

func TestReachableAndImage(t *testing.T) {
	_, s := syms(5)
	r := FromPairs([][2]symtab.Sym{{s[0], s[1]}, {s[1], s[2]}, {s[3], s[4]}})
	got := ReachableFrom(r, []symtab.Sym{s[0]})
	if len(got) != 3 {
		t.Fatalf("ReachableFrom = %v", got)
	}
	img := Image(r, []symtab.Sym{s[0], s[3]})
	if len(img) != 2 || img[0] != s[1] || img[1] != s[4] {
		t.Fatalf("Image = %v", img)
	}
}

func TestSolveLinearSameGeneration(t *testing.T) {
	st, _ := syms(0)
	i := func(n string) symtab.Sym { return st.Intern(n) }
	up := FromPairs([][2]symtab.Sym{{i("john"), i("p")}, {i("ann"), i("p")}})
	flat := FromPairs([][2]symtab.Sym{{i("p"), i("p")}})
	down := FromPairs([][2]symtab.Sym{{i("p"), i("john")}, {i("p"), i("ann")}})
	sg, converged := SolveLinear(flat, up, down, 100)
	if !converged {
		t.Fatal("did not converge")
	}
	if !sg.Has(i("john"), i("ann")) || !sg.Has(i("john"), i("john")) {
		t.Fatalf("sg = %v", sg.Pairs())
	}
}

// --- Property tests (testing/quick) over random relations ---

func TestComposeAssociative(t *testing.T) {
	_, s := syms(5)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRel(rng, s, 0.3)
		b := randomRel(rng, s, 0.3)
		c := randomRel(rng, s, 0.3)
		return Equal(Compose(Compose(a, b), c), Compose(a, Compose(b, c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInverseAntiHomomorphism(t *testing.T) {
	_, s := syms(5)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRel(rng, s, 0.3)
		b := randomRel(rng, s, 0.3)
		// (a·b)⁻¹ = b⁻¹·a⁻¹
		return Equal(Inverse(Compose(a, b)), Compose(Inverse(b), Inverse(a)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStarIdempotent(t *testing.T) {
	_, s := syms(5)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRel(rng, s, 0.25)
		st := Star(a, s)
		return Equal(Star(st, s), st)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStarIsLeastFixpoint(t *testing.T) {
	_, s := syms(5)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRel(rng, s, 0.25)
		star := Star(a, s)
		// star must satisfy star ⊇ id ∪ a·star.
		id := New()
		for _, x := range s {
			id.Add(x, x)
		}
		rhs := Union(id, Compose(a, star))
		okContains := true
		rhs.Each(func(u, v symtab.Sym) {
			if !star.Has(u, v) {
				okContains = false
			}
		})
		// and equal it (least fixpoint): star ⊆ rhs as well.
		star.Each(func(u, v symtab.Sym) {
			if !rhs.Has(u, v) {
				okContains = false
			}
		})
		return okContains
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionCommutativeIdempotent(t *testing.T) {
	_, s := syms(5)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRel(rng, s, 0.3)
		b := randomRel(rng, s, 0.3)
		return Equal(Union(a, b), Union(b, a)) && Equal(Union(a, a), a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestComposeDistributesOverUnion(t *testing.T) {
	_, s := syms(5)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRel(rng, s, 0.3)
		b := randomRel(rng, s, 0.3)
		c := randomRel(rng, s, 0.3)
		return Equal(Compose(a, Union(b, c)), Union(Compose(a, b), Compose(a, c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Eval agrees with hand-computed algebra on random expressions: the
// expression (a·b)* evaluated via Eval equals Star(Compose(a,b)).
func TestEvalMatchesAlgebra(t *testing.T) {
	_, s := syms(5)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRel(rng, s, 0.3)
		b := randomRel(rng, s, 0.3)
		env := Env{"a": a, "b": b}
		e := expr.MustParse("(a.b)* U b~")
		got := Eval(e, env, s)
		want := Union(Star(Compose(a, b), s), Inverse(b))
		return Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalMissingPredIsEmpty(t *testing.T) {
	_, s := syms(3)
	got := Eval(expr.MustParse("zz.a"), Env{}, s)
	if got.Len() != 0 {
		t.Fatal("missing predicate should denote empty")
	}
}
