// Package rel implements materialized binary relations and the
// relational-algebra operations of the paper — union, composition,
// reflexive transitive closure and inverse — together with a direct
// evaluator for expressions over them.
//
// These materialized operations are deliberately the "slow but obviously
// correct" semantics: they serve as the oracle in property tests, as the
// substrate of the Hunt-et-al. preconstruction baseline, and as the
// building blocks of the set-at-a-time comparison methods (Henschen–Naqvi,
// counting).
package rel

import (
	"slices"

	"chainlog/internal/expr"
	"chainlog/internal/symtab"
)

// Rel is a finite binary relation over interned symbols.
type Rel struct {
	fwd   map[symtab.Sym]map[symtab.Sym]bool
	pairs int
}

// New returns an empty relation.
func New() *Rel {
	return &Rel{fwd: make(map[symtab.Sym]map[symtab.Sym]bool)}
}

// FromPairs builds a relation from (u,v) pairs.
func FromPairs(pairs [][2]symtab.Sym) *Rel {
	r := New()
	for _, p := range pairs {
		r.Add(p[0], p[1])
	}
	return r
}

// Add inserts the pair (u, v). It reports whether the pair was new.
func (r *Rel) Add(u, v symtab.Sym) bool {
	m, ok := r.fwd[u]
	if !ok {
		m = make(map[symtab.Sym]bool)
		r.fwd[u] = m
	}
	if m[v] {
		return false
	}
	m[v] = true
	r.pairs++
	return true
}

// Has reports whether (u, v) is in the relation.
func (r *Rel) Has(u, v symtab.Sym) bool {
	return r != nil && r.fwd[u][v]
}

// Len returns the number of pairs.
func (r *Rel) Len() int {
	if r == nil {
		return 0
	}
	return r.pairs
}

// Each visits every pair in unspecified order.
func (r *Rel) Each(f func(u, v symtab.Sym)) {
	if r == nil {
		return
	}
	for u, m := range r.fwd {
		for v := range m {
			f(u, v)
		}
	}
}

// Pairs returns all pairs sorted lexicographically (deterministic output
// for tests and reports).
func (r *Rel) Pairs() [][2]symtab.Sym {
	out := make([][2]symtab.Sym, 0, r.Len())
	r.Each(func(u, v symtab.Sym) { out = append(out, [2]symtab.Sym{u, v}) })
	slices.SortFunc(out, func(a, b [2]symtab.Sym) int {
		if a[0] != b[0] {
			return int(a[0]) - int(b[0])
		}
		return int(a[1]) - int(b[1])
	})
	return out
}

// Successors returns the image of u, sorted.
func (r *Rel) Successors(u symtab.Sym) []symtab.Sym {
	if r == nil {
		return nil
	}
	return sortedSyms(r.fwd[u])
}

// Domain returns the sorted set of first components.
func (r *Rel) Domain() []symtab.Sym {
	set := make(map[symtab.Sym]bool)
	r.Each(func(u, _ symtab.Sym) { set[u] = true })
	return sortedSyms(set)
}

// Range returns the sorted set of second components.
func (r *Rel) Range() []symtab.Sym {
	set := make(map[symtab.Sym]bool)
	r.Each(func(_, v symtab.Sym) { set[v] = true })
	return sortedSyms(set)
}

// Field returns the sorted union of domain and range.
func (r *Rel) Field() []symtab.Sym {
	set := make(map[symtab.Sym]bool)
	r.Each(func(u, v symtab.Sym) { set[u] = true; set[v] = true })
	return sortedSyms(set)
}

// Equal reports whether two relations contain the same pairs.
func Equal(a, b *Rel) bool {
	if a.Len() != b.Len() {
		return false
	}
	eq := true
	a.Each(func(u, v symtab.Sym) {
		if !b.Has(u, v) {
			eq = false
		}
	})
	return eq
}

// Union returns a ∪ b.
func Union(a, b *Rel) *Rel {
	out := New()
	a.Each(func(u, v symtab.Sym) { out.Add(u, v) })
	b.Each(func(u, v symtab.Sym) { out.Add(u, v) })
	return out
}

// Compose returns a · b = {(x,z) | ∃y: a(x,y) ∧ b(y,z)}.
func Compose(a, b *Rel) *Rel {
	out := New()
	if a == nil || b == nil {
		return out
	}
	for x, ys := range a.fwd {
		for y := range ys {
			for z := range b.fwd[y] {
				out.Add(x, z)
			}
		}
	}
	return out
}

// Inverse returns a⁻¹.
func Inverse(a *Rel) *Rel {
	out := New()
	a.Each(func(u, v symtab.Sym) { out.Add(v, u) })
	return out
}

// Star returns the reflexive transitive closure of a, with reflexive
// pairs (x,x) for every x in universe (the paper's id relation is the
// identity on the active domain; callers supply it explicitly because a
// finite relation does not determine its universe).
func Star(a *Rel, universe []symtab.Sym) *Rel {
	out := New()
	for _, x := range universe {
		out.Add(x, x)
	}
	// BFS from each node of the universe plus each domain node of a.
	starts := make(map[symtab.Sym]bool)
	for _, x := range universe {
		starts[x] = true
	}
	a.Each(func(u, _ symtab.Sym) { starts[u] = true })
	for s := range starts {
		for _, v := range ReachableFrom(a, []symtab.Sym{s}) {
			out.Add(s, v)
		}
	}
	return out
}

// Plus returns the transitive (non-reflexive) closure of a.
func Plus(a *Rel) *Rel {
	return Compose(a, Star(a, nil))
}

// ReachableFrom returns the set of nodes reachable from starts via a
// (including the starts themselves), sorted. This is the set-at-a-time
// primitive of the Henschen–Naqvi style methods.
func ReachableFrom(a *Rel, starts []symtab.Sym) []symtab.Sym {
	seen := make(map[symtab.Sym]bool, len(starts))
	stack := append([]symtab.Sym(nil), starts...)
	for _, s := range starts {
		seen[s] = true
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if a == nil {
			continue
		}
		for v := range a.fwd[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return sortedSyms(seen)
}

// Image returns the image of the set xs under a, sorted.
func Image(a *Rel, xs []symtab.Sym) []symtab.Sym {
	set := make(map[symtab.Sym]bool)
	if a != nil {
		for _, x := range xs {
			for v := range a.fwd[x] {
				set[v] = true
			}
		}
	}
	return sortedSyms(set)
}

// Env resolves predicate names to materialized relations during
// expression evaluation.
type Env map[string]*Rel

// Eval materializes the relation denoted by e under env. Star uses the
// given universe for its reflexive part; predicates missing from env
// denote the empty relation. This is the oracle semantics for the whole
// module: every evaluator is property-tested against it.
func Eval(e expr.Expr, env Env, universe []symtab.Sym) *Rel {
	switch v := e.(type) {
	case expr.Pred:
		if r, ok := env[v.Name]; ok {
			return r
		}
		return New()
	case expr.Empty:
		return New()
	case expr.Ident:
		out := New()
		for _, x := range universe {
			out.Add(x, x)
		}
		return out
	case expr.Union:
		out := New()
		for _, t := range v.Terms {
			out = Union(out, Eval(t, env, universe))
		}
		return out
	case expr.Concat:
		out := Eval(v.Terms[0], env, universe)
		for _, t := range v.Terms[1:] {
			out = Compose(out, Eval(t, env, universe))
		}
		return out
	case expr.Star:
		return Star(Eval(v.E, env, universe), universe)
	case expr.Inverse:
		return Inverse(Eval(v.E, env, universe))
	}
	return New()
}

// SolveLinear computes the least solution of the single linear equation
// p = e0 ∪ e1·p·e2 by Kleene iteration over materialized relations. It is
// the oracle for the same-generation family of tests. maxIter bounds the
// iteration for cyclic data; it returns the fixpoint reached and whether
// the iteration converged.
func SolveLinear(e0, e1, e2 *Rel, maxIter int) (*Rel, bool) {
	cur := New()
	e0.Each(func(u, v symtab.Sym) { cur.Add(u, v) })
	for i := 0; i < maxIter; i++ {
		next := Union(e0, Compose(Compose(e1, cur), e2))
		if Equal(next, cur) {
			return cur, true
		}
		cur = next
	}
	return cur, false
}

func sortedSyms(set map[symtab.Sym]bool) []symtab.Sym {
	out := make([]symtab.Sym, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	slices.Sort(out)
	return out
}
