// Package bottomup implements the two completely general evaluation
// baselines the paper's introduction discusses: naive evaluation and
// seminaive evaluation. Both compute the full fixpoint of a safe Datalog
// program bottom-up; they apply to any arity, any recursion shape and any
// binding pattern, which is exactly why — as the paper argues — they
// consult many potentially irrelevant facts when the query carries
// bindings.
//
// Rule bodies are evaluated by an index-nested-loop join with greedy
// bound-first literal ordering; comparison built-ins run as filters once
// their variables are bound.
package bottomup

import (
	"context"
	"fmt"
	"slices"
	"strconv"

	"chainlog/internal/ast"
	"chainlog/internal/ctxpoll"
	"chainlog/internal/edb"
	"chainlog/internal/symtab"
)

// Stats reports the work a fixpoint run performed.
type Stats struct {
	// Iterations is the number of fixpoint rounds.
	Iterations int
	// Firings is the number of successful rule instantiations (the
	// paper's "duplication of work" counts repeated firings on the same
	// data; naive evaluation re-fires, seminaive mostly does not).
	Firings int64
	// Derived is the number of distinct facts derived.
	Derived int64
}

// Naive computes the fixpoint by re-evaluating every rule against the
// whole current database until nothing new appears.
func Naive(prog *ast.Program, base *edb.Store) (*edb.Store, Stats, error) {
	return NaiveCtx(nil, prog, base)
}

// NaiveCtx is Naive under a context, polled between rule evaluations so
// a deadline aborts the fixpoint instead of running it to completion
// (granularity: one rule pass — joins inside a single rule are not
// interrupted). A nil ctx never cancels.
func NaiveCtx(ctx context.Context, prog *ast.Program, base *edb.Store) (*edb.Store, Stats, error) {
	ev, err := newEvaluator(prog, base)
	if err != nil {
		return nil, Stats{}, err
	}
	for {
		ev.stats.Iterations++
		grew := false
		for _, r := range prog.Rules {
			if err := ctxpoll.Err(ctx); err != nil {
				return nil, ev.stats, err
			}
			n := ev.evalRule(r, -1, nil, func(head []symtab.Sym) bool {
				return ev.insert(r.Head.Pred, head)
			})
			if n > 0 {
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	return ev.idb, ev.stats, nil
}

// Seminaive computes the fixpoint with delta relations: each round only
// instantiates rules through at least one fact derived in the previous
// round, avoiding the re-firing naive evaluation performs.
func Seminaive(prog *ast.Program, base *edb.Store) (*edb.Store, Stats, error) {
	return SeminaiveCtx(nil, prog, base)
}

// SeminaiveCtx is Seminaive under a context, polled between rule
// evaluations like NaiveCtx.
func SeminaiveCtx(ctx context.Context, prog *ast.Program, base *edb.Store) (*edb.Store, Stats, error) {
	ev, err := newEvaluator(prog, base)
	if err != nil {
		return nil, Stats{}, err
	}
	derived := prog.DerivedSet()

	// Round 0: rules whose bodies mention no derived predicate.
	delta := edb.NewStore(base.SymTab())
	for _, r := range prog.Rules {
		hasDerived := false
		for _, l := range r.Body {
			if !l.IsBuiltin() && derived[l.Pred] {
				hasDerived = true
				break
			}
		}
		if hasDerived {
			continue
		}
		ev.evalRule(r, -1, nil, func(head []symtab.Sym) bool {
			if ev.insert(r.Head.Pred, head) {
				delta.Insert(r.Head.Pred, head...)
				return true
			}
			return false
		})
	}
	ev.stats.Iterations++

	for delta.Size() > 0 {
		ev.stats.Iterations++
		next := edb.NewStore(base.SymTab())
		for _, r := range prog.Rules {
			if err := ctxpoll.Err(ctx); err != nil {
				return nil, ev.stats, err
			}
			for j, l := range r.Body {
				if l.IsBuiltin() || !derived[l.Pred] {
					continue
				}
				dl := delta.Relation(l.Pred)
				if dl.Len() == 0 {
					continue
				}
				ev.evalRule(r, j, delta, func(head []symtab.Sym) bool {
					if ev.insert(r.Head.Pred, head) {
						next.Insert(r.Head.Pred, head...)
						return true
					}
					return false
				})
			}
		}
		delta = next
	}
	return ev.idb, ev.stats, nil
}

// Answer filters the derived relation for the query's bound arguments and
// returns the sorted projections onto its free positions.
func Answer(idb *edb.Store, q ast.Query) [][]symtab.Sym {
	r := idb.Relation(q.Pred)
	if r == nil {
		return nil
	}
	var mask uint32
	var bound []symtab.Sym
	var freeIdx []int
	for i, a := range q.Args {
		if a.IsVar() {
			freeIdx = append(freeIdx, i)
		} else {
			mask |= 1 << uint(i)
			bound = append(bound, a.Const)
		}
	}
	// Deduplicate projections onto the free variables, honoring repeated
	// variables in the query (e.g. p(X, X)).
	varPos := make(map[string]int)
	var out [][]symtab.Sym
	seen := make(map[string]bool)
	r.MatchEach(mask, bound, func(tuple []symtab.Sym) {
		for k := range varPos {
			delete(varPos, k)
		}
		row := make([]symtab.Sym, 0, len(freeIdx))
		ok := true
		for _, i := range freeIdx {
			v := q.Args[i].Var
			if prev, dup := varPos[v]; dup {
				if tuple[prev] != tuple[i] {
					ok = false
					break
				}
				continue
			}
			varPos[v] = i
			row = append(row, tuple[i])
		}
		if !ok {
			return
		}
		key := fmt.Sprint(row)
		if !seen[key] {
			seen[key] = true
			out = append(out, row)
		}
	})
	sortRows(out)
	return out
}

type evaluator struct {
	prog    *ast.Program
	base    *edb.Store
	idb     *edb.Store
	derived map[string]bool
	st      *symtab.Table
	stats   Stats
}

func newEvaluator(prog *ast.Program, base *edb.Store) (*evaluator, error) {
	if _, err := prog.Arities(); err != nil {
		return nil, err
	}
	return &evaluator{
		prog:    prog,
		base:    base,
		idb:     edb.NewStore(base.SymTab()),
		derived: prog.DerivedSet(),
		st:      base.SymTab(),
	}, nil
}

func (ev *evaluator) insert(pred string, args []symtab.Sym) bool {
	r := ev.idb.Relation(pred)
	if r != nil && r.Contains(args) {
		return false
	}
	ev.idb.Insert(pred, args...)
	ev.stats.Derived++
	return true
}

// relFor resolves the relation a body literal ranges over, optionally
// pinning literal index deltaIdx to the delta store.
func (ev *evaluator) relFor(l ast.Literal, idx, deltaIdx int, delta *edb.Store) *edb.Relation {
	if idx == deltaIdx {
		return delta.Relation(l.Pred)
	}
	if ev.derived[l.Pred] {
		return ev.idb.Relation(l.Pred)
	}
	return ev.base.Relation(l.Pred)
}

// evalRule enumerates all substitutions satisfying the body and calls emit
// with the instantiated head; emit reports whether the fact was new (for
// firing statistics every successful instantiation counts as a firing).
// deltaIdx >= 0 pins that body literal to the delta store.
func (ev *evaluator) evalRule(r ast.Rule, deltaIdx int, delta *edb.Store, emit func([]symtab.Sym) bool) int {
	subst := make(map[string]symtab.Sym)
	done := make([]bool, len(r.Body))
	newFacts := 0

	var step func()
	step = func() {
		// Pick the next literal: a ready built-in first (cheap filter),
		// otherwise the atom with the most bound arguments.
		next := -1
		bestBound := -1
		for i, l := range r.Body {
			if done[i] {
				continue
			}
			if l.IsBuiltin() {
				if ev.builtinReady(l, subst) {
					next = i
					bestBound = 1 << 30
					break
				}
				continue
			}
			b := 0
			for _, a := range l.Args {
				if !a.IsVar() || subst[a.Var] != symtab.None {
					b++
				}
			}
			if b > bestBound {
				bestBound = b
				next = i
			}
		}
		if next == -1 {
			// All atoms done; any remaining built-ins are unsatisfiable
			// under safety (their vars must be bound by now).
			for i, l := range r.Body {
				if !done[i] {
					if !l.IsBuiltin() || !ev.evalBuiltin(l, subst) {
						return
					}
				}
			}
			head := make([]symtab.Sym, len(r.Head.Args))
			for i, a := range r.Head.Args {
				if a.IsVar() {
					head[i] = subst[a.Var]
					if head[i] == symtab.None {
						// Unbound head variable (non-range-restricted
						// rule, e.g. the identity rule): bottom-up
						// evaluation derives nothing from it.
						return
					}
				} else {
					head[i] = a.Const
				}
			}
			ev.stats.Firings++
			if emit(head) {
				newFacts++
			}
			return
		}
		l := r.Body[next]
		done[next] = true
		defer func() { done[next] = false }()

		if l.IsBuiltin() {
			if ev.evalBuiltin(l, subst) {
				step()
			}
			return
		}

		rel := ev.relFor(l, next, deltaIdx, delta)
		if rel == nil {
			return
		}
		var mask uint32
		var bound []symtab.Sym
		for i, a := range l.Args {
			if a.IsVar() {
				if v := subst[a.Var]; v != symtab.None {
					mask |= 1 << uint(i)
					bound = append(bound, v)
				}
			} else {
				mask |= 1 << uint(i)
				bound = append(bound, a.Const)
			}
		}
		rel.MatchEach(mask, bound, func(tuple []symtab.Sym) {
			var assigned []string
			ok := true
			for i, a := range l.Args {
				if !a.IsVar() {
					continue
				}
				if v := subst[a.Var]; v != symtab.None {
					if v != tuple[i] {
						ok = false
						break
					}
					continue
				}
				subst[a.Var] = tuple[i]
				assigned = append(assigned, a.Var)
			}
			if ok {
				step()
			}
			for _, v := range assigned {
				delete(subst, v)
			}
		})
	}
	step()
	return newFacts
}

func (ev *evaluator) builtinReady(l ast.Literal, subst map[string]symtab.Sym) bool {
	for _, a := range l.Args {
		if a.IsVar() && subst[a.Var] == symtab.None {
			return false
		}
	}
	return true
}

func (ev *evaluator) evalBuiltin(l ast.Literal, subst map[string]symtab.Sym) bool {
	val := func(t ast.Term) symtab.Sym {
		if t.IsVar() {
			return subst[t.Var]
		}
		return t.Const
	}
	return Compare(ev.st, l.Op, val(l.Args[0]), val(l.Args[1]))
}

// Compare evaluates a comparison built-in over two constants: numerically
// when both render as integers, lexicographically otherwise.
func Compare(st *symtab.Table, op ast.BuiltinOp, a, b symtab.Sym) bool {
	an, aerr := strconv.Atoi(st.Name(a))
	bn, berr := strconv.Atoi(st.Name(b))
	var cmp int
	if aerr == nil && berr == nil {
		switch {
		case an < bn:
			cmp = -1
		case an > bn:
			cmp = 1
		}
	} else {
		sa, sb := st.Name(a), st.Name(b)
		switch {
		case sa < sb:
			cmp = -1
		case sa > sb:
			cmp = 1
		}
	}
	switch op {
	case ast.OpLT:
		return cmp < 0
	case ast.OpLE:
		return cmp <= 0
	case ast.OpGT:
		return cmp > 0
	case ast.OpGE:
		return cmp >= 0
	case ast.OpEQ:
		return cmp == 0
	case ast.OpNE:
		return cmp != 0
	}
	return false
}

func sortRows(rows [][]symtab.Sym) {
	slices.SortFunc(rows, func(a, b []symtab.Sym) int {
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return int(a[k]) - int(b[k])
			}
		}
		return len(a) - len(b)
	})
}
