package bottomup

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"chainlog/internal/ast"
	"chainlog/internal/edb"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
)

type fixture struct {
	st    *symtab.Table
	store *edb.Store
	prog  *ast.Program
}

func load(t *testing.T, src string) *fixture {
	t.Helper()
	st := symtab.NewTable()
	res, err := parser.Parse(src, st)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	store := edb.NewStore(st)
	for _, f := range res.Facts {
		store.Insert(f.Pred, f.Args...)
	}
	return &fixture{st: st, store: store, prog: res.Program}
}

func rowsToStrings(st *symtab.Table, rows [][]symtab.Sym) [][]string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		row := make([]string, len(r))
		for j, s := range r {
			row[j] = st.Name(s)
		}
		out[i] = row
	}
	return out
}

func TestNaiveTransitiveClosure(t *testing.T) {
	fx := load(t, `
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
edge(a, b). edge(b, c). edge(c, d).
`)
	idb, stats, err := Naive(fx.prog, fx.store)
	if err != nil {
		t.Fatal(err)
	}
	if idb.Relation("tc").Len() != 6 {
		t.Fatalf("tc has %d tuples, want 6", idb.Relation("tc").Len())
	}
	if stats.Derived != 6 {
		t.Fatalf("Derived = %d", stats.Derived)
	}
	q := parser.MustParseQuery("tc(a, Y)", fx.st)
	got := rowsToStrings(fx.st, Answer(idb, q))
	want := [][]string{{"b"}, {"c"}, {"d"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("answer = %v", got)
	}
}

func TestSeminaiveMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := symtab.NewTable()
		res := parser.MustParse(`
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
`, st)
		store := edb.NewStore(st)
		n := 8
		for k := 0; k < 14; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				store.Insert("up", sym(st, i), sym(st, j))
			case 1:
				store.Insert("down", sym(st, i), sym(st, j))
			default:
				store.Insert("flat", sym(st, i), sym(st, j))
			}
		}
		ni, _, err := Naive(res.Program, store)
		if err != nil {
			return false
		}
		si, _, err := Seminaive(res.Program, store)
		if err != nil {
			return false
		}
		return relEqual(ni.Relation("sg"), si.Relation("sg"))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func sym(st *symtab.Table, i int) symtab.Sym {
	return st.Intern(fmt.Sprintf("n%d", i))
}

func relEqual(a, b *edb.Relation) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if !b.Contains(a.Tuple(i)) {
			return false
		}
	}
	return true
}

// Seminaive avoids re-firing: on a chain, naive refires every rule on all
// previously derived facts each round, seminaive only on the delta.
func TestSeminaiveFiresLess(t *testing.T) {
	st := symtab.NewTable()
	res := parser.MustParse(`
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
`, st)
	store := edb.NewStore(st)
	for i := 0; i < 30; i++ {
		store.Insert("edge", sym(st, i), sym(st, i+1))
	}
	_, ns, err := Naive(res.Program, store)
	if err != nil {
		t.Fatal(err)
	}
	_, ss, err := Seminaive(res.Program, store)
	if err != nil {
		t.Fatal(err)
	}
	if ss.Firings >= ns.Firings {
		t.Fatalf("seminaive firings %d not below naive %d", ss.Firings, ns.Firings)
	}
}

func TestBuiltinFilters(t *testing.T) {
	fx := load(t, `
small(X) :- num(X), X < 3.
big(X) :- num(X), X >= 3.
num(1). num(2). num(3). num(4).
`)
	idb, _, err := Seminaive(fx.prog, fx.store)
	if err != nil {
		t.Fatal(err)
	}
	q := parser.MustParseQuery("small(X)", fx.st)
	got := rowsToStrings(fx.st, Answer(idb, q))
	if !reflect.DeepEqual(got, [][]string{{"1"}, {"2"}}) {
		t.Fatalf("small = %v", got)
	}
	q = parser.MustParseQuery("big(X)", fx.st)
	got = rowsToStrings(fx.st, Answer(idb, q))
	if !reflect.DeepEqual(got, [][]string{{"3"}, {"4"}}) {
		t.Fatalf("big = %v", got)
	}
}

func TestCompareSemantics(t *testing.T) {
	st := symtab.NewTable()
	n1, n2 := st.Intern("2"), st.Intern("10")
	// Numeric comparison: 2 < 10.
	if !Compare(st, ast.OpLT, n1, n2) {
		t.Fatal("numeric 2 < 10 failed")
	}
	// Lexicographic fallback: "abc" < "abd".
	s1, s2 := st.Intern("abc"), st.Intern("abd")
	if !Compare(st, ast.OpLT, s1, s2) {
		t.Fatal("string abc < abd failed")
	}
	if !Compare(st, ast.OpEQ, n1, n1) || Compare(st, ast.OpNE, n1, n1) {
		t.Fatal("equality ops broken")
	}
	if !Compare(st, ast.OpGE, n2, n1) || !Compare(st, ast.OpGT, n2, n1) || !Compare(st, ast.OpLE, n1, n2) {
		t.Fatal("ordering ops broken")
	}
}

func TestEmptyBodySeedRule(t *testing.T) {
	st := symtab.NewTable()
	prog := &ast.Program{Rules: []ast.Rule{
		{Head: ast.Atom("m", ast.C(st.Intern("a")))}, // seed: m(a) :- .
		{Head: ast.Atom("p", ast.V("X"), ast.V("Y")),
			Body: []ast.Literal{ast.Atom("m", ast.V("X")), ast.Atom("e", ast.V("X"), ast.V("Y"))}},
	}}
	store := edb.NewStore(st)
	store.Insert("e", st.Intern("a"), st.Intern("b"))
	store.Insert("e", st.Intern("c"), st.Intern("d"))
	idb, _, err := Seminaive(prog, store)
	if err != nil {
		t.Fatal(err)
	}
	if idb.Relation("p").Len() != 1 {
		t.Fatalf("p = %d tuples (seed rule broken)", idb.Relation("p").Len())
	}
}

func TestIdentityRuleDerivesNothing(t *testing.T) {
	fx := load(t, `
refl(X, X).
e(a, b).
`)
	idb, _, err := Naive(fx.prog, fx.store)
	if err != nil {
		t.Fatal(err)
	}
	if idb.Relation("refl").Len() != 0 {
		t.Fatal("identity rule derived ground facts bottom-up")
	}
}

func TestAnswerRepeatedVariable(t *testing.T) {
	fx := load(t, `
p(X, Y) :- e(X, Y).
e(a, a). e(a, b).
`)
	idb, _, err := Seminaive(fx.prog, fx.store)
	if err != nil {
		t.Fatal(err)
	}
	q := parser.MustParseQuery("p(X, X)", fx.st)
	got := rowsToStrings(fx.st, Answer(idb, q))
	if !reflect.DeepEqual(got, [][]string{{"a"}}) {
		t.Fatalf("p(X,X) = %v", got)
	}
}

func TestAnswerBoundArgs(t *testing.T) {
	fx := load(t, `
p(X, Y) :- e(X, Y).
e(a, b). e(a, c). e(b, c).
`)
	idb, _, err := Seminaive(fx.prog, fx.store)
	if err != nil {
		t.Fatal(err)
	}
	got := rowsToStrings(fx.st, Answer(idb, parser.MustParseQuery("p(a, Y)", fx.st)))
	if !reflect.DeepEqual(got, [][]string{{"b"}, {"c"}}) {
		t.Fatalf("p(a,Y) = %v", got)
	}
	// Fully bound.
	rows := Answer(idb, parser.MustParseQuery("p(a, b)", fx.st))
	if len(rows) != 1 || len(rows[0]) != 0 {
		t.Fatalf("p(a,b) = %v", rows)
	}
	rows = Answer(idb, parser.MustParseQuery("p(c, a)", fx.st))
	if len(rows) != 0 {
		t.Fatalf("p(c,a) = %v", rows)
	}
}

func TestMutualRecursion(t *testing.T) {
	fx := load(t, `
even(X, Y) :- e(X, Y), e(Y, X).
even(X, Z) :- e(X, Y), odd(Y, Z).
odd(X, Z) :- e(X, Y), even(Y, Z).
e(a, b). e(b, a). e(b, c). e(c, b).
`)
	ni, _, err := Naive(fx.prog, fx.store)
	if err != nil {
		t.Fatal(err)
	}
	si, _, err := Seminaive(fx.prog, fx.store)
	if err != nil {
		t.Fatal(err)
	}
	if !relEqual(ni.Relation("even"), si.Relation("even")) || !relEqual(ni.Relation("odd"), si.Relation("odd")) {
		t.Fatal("naive and seminaive disagree on mutual recursion")
	}
}

func TestArityErrorPropagates(t *testing.T) {
	st := symtab.NewTable()
	prog := &ast.Program{Rules: []ast.Rule{
		{Head: ast.Atom("p", ast.V("X")), Body: []ast.Literal{ast.Atom("q", ast.V("X"), ast.V("X"))}},
		{Head: ast.Atom("p", ast.V("X"), ast.V("Y")), Body: []ast.Literal{ast.Atom("q", ast.V("X"), ast.V("Y"))}},
	}}
	if _, _, err := Naive(prog, edb.NewStore(st)); err == nil {
		t.Fatal("arity conflict accepted")
	}
}
