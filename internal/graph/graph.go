// Package graph provides the directed-graph substrate used throughout the
// module: an adjacency-list digraph with iterative Tarjan strongly
// connected components, condensation, topological order, reachability and
// DAG longest paths.
//
// Lemma 1 steps 2 and 6 classify predicates as recursive/mutually
// recursive via SCCs of the predicate dependency graph; the p(X,Y)
// all-pairs optimization of Section 3 condenses the interpretation graph;
// and Theorem 4's iteration bound is checked against the longest path in
// e1|a.
package graph

import "sort"

// Graph is a digraph over dense integer node IDs 0..n-1.
type Graph struct {
	adj [][]int
}

// New returns a graph with n nodes and no edges.
func New(n int) *Graph {
	return &Graph{adj: make([][]int, n)}
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.adj) }

// AddNode appends a node and returns its ID.
func (g *Graph) AddNode() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// AddEdge adds a directed edge u→v. Duplicate edges are allowed; analyses
// here are insensitive to multiplicity.
func (g *Graph) AddEdge(u, v int) {
	g.adj[u] = append(g.adj[u], v)
}

// Succ returns the successor list of u (aliasing internal storage).
func (g *Graph) Succ(u int) []int { return g.adj[u] }

// HasEdge reports whether u→v exists.
func (g *Graph) HasEdge(u, v int) bool {
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// SCC computes strongly connected components with an iterative Tarjan
// algorithm. It returns (comp, count) where comp[v] is the component index
// of node v; components are numbered in reverse topological order of the
// condensation (i.e. comp[u] <= comp[v] whenever v→u is an inter-component
// edge... specifically Tarjan emits components in reverse topological
// order, so an edge u→v across components implies comp[v] < comp[u]).
func (g *Graph) SCC() (comp []int, count int) {
	n := g.Len()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0

	type frame struct {
		v  int
		ei int
	}
	var frames []frame

	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		frames = frames[:0]
		frames = append(frames, frame{v: root})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ei == 0 {
				index[v] = next
				low[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.ei < len(g.adj[v]) {
				w := g.adj[v][f.ei]
				f.ei++
				if index[w] == -1 {
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished.
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = count
					if w == v {
						break
					}
				}
				count++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return comp, count
}

// Components groups node IDs by SCC, indexed by component number.
func (g *Graph) Components() [][]int {
	comp, count := g.SCC()
	out := make([][]int, count)
	for v, c := range comp {
		out[c] = append(out[c], v)
	}
	return out
}

// Condense builds the condensation DAG of g: one node per SCC, with an
// edge c1→c2 whenever some u in c1 has an edge to some v in c2 (c1 != c2).
// It returns the DAG and the comp mapping.
func (g *Graph) Condense() (*Graph, []int) {
	comp, count := g.SCC()
	dag := New(count)
	seen := make(map[[2]int]bool)
	for u := range g.adj {
		for _, v := range g.adj[u] {
			cu, cv := comp[u], comp[v]
			if cu == cv {
				continue
			}
			k := [2]int{cu, cv}
			if !seen[k] {
				seen[k] = true
				dag.AddEdge(cu, cv)
			}
		}
	}
	return dag, comp
}

// InCycle reports, for each node, whether it lies on a cycle (i.e. its SCC
// has size > 1, or it has a self-loop). This is the paper's definition of
// a recursive predicate in the dependency graph.
func (g *Graph) InCycle() []bool {
	comp, count := g.SCC()
	size := make([]int, count)
	for _, c := range comp {
		size[c]++
	}
	out := make([]bool, g.Len())
	for v := range out {
		if size[comp[v]] > 1 || g.HasEdge(v, v) {
			out[v] = true
		}
	}
	return out
}

// Topo returns a topological order of a DAG (panics if a cycle is found).
func (g *Graph) Topo() []int {
	n := g.Len()
	indeg := make([]int, n)
	for u := range g.adj {
		for _, v := range g.adj[u] {
			indeg[v]++
		}
	}
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	out := make([]int, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		out = append(out, v)
		for _, w := range g.adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(out) != n {
		panic("graph: Topo called on a cyclic graph")
	}
	return out
}

// Reachable returns the set of nodes reachable from start (including
// start) as a boolean slice.
func (g *Graph) Reachable(start int) []bool {
	seen := make([]bool, g.Len())
	stack := []int{start}
	seen[start] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.adj[v] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}

// LongestPathFrom returns the length (in edges) of the longest simple path
// starting at start, assuming the subgraph reachable from start is acyclic;
// it returns ok=false if a cycle is reachable. This is Theorem 4's bound h
// on the number of main-loop iterations.
func (g *Graph) LongestPathFrom(start int) (length int, ok bool) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int8, g.Len())
	depth := make([]int, g.Len())
	cyclic := false

	type frame struct {
		v  int
		ei int
	}
	var frames []frame
	frames = append(frames, frame{v: start})
	color[start] = gray
	for len(frames) > 0 {
		f := &frames[len(frames)-1]
		v := f.v
		advanced := false
		for f.ei < len(g.adj[v]) {
			w := g.adj[v][f.ei]
			f.ei++
			switch color[w] {
			case white:
				color[w] = gray
				frames = append(frames, frame{v: w})
				advanced = true
			case gray:
				cyclic = true
			case black:
				if depth[w]+1 > depth[v] {
					depth[v] = depth[w] + 1
				}
			}
			if advanced {
				break
			}
		}
		if advanced {
			continue
		}
		color[v] = black
		frames = frames[:len(frames)-1]
		if len(frames) > 0 {
			p := frames[len(frames)-1].v
			if depth[v]+1 > depth[p] {
				depth[p] = depth[v] + 1
			}
		}
	}
	if cyclic {
		return 0, false
	}
	return depth[start], true
}

// Named is a digraph over string-named nodes, a convenience wrapper used
// for predicate dependency graphs.
type Named struct {
	G     *Graph
	ids   map[string]int
	names []string
}

// NewNamed returns an empty named graph.
func NewNamed() *Named {
	return &Named{G: New(0), ids: make(map[string]int)}
}

// Node interns a name and returns its node ID.
func (n *Named) Node(name string) int {
	if id, ok := n.ids[name]; ok {
		return id
	}
	id := n.G.AddNode()
	n.ids[name] = id
	n.names = append(n.names, name)
	return id
}

// AddEdge adds an edge between named nodes, interning both.
func (n *Named) AddEdge(from, to string) {
	n.G.AddEdge(n.Node(from), n.Node(to))
}

// Name returns the name for a node ID.
func (n *Named) Name(id int) string { return n.names[id] }

// Has reports whether the name has been interned.
func (n *Named) Has(name string) bool {
	_, ok := n.ids[name]
	return ok
}

// ID returns the node ID of name and whether it exists.
func (n *Named) ID(name string) (int, bool) {
	id, ok := n.ids[name]
	return id, ok
}

// SCCNames returns the strongly connected components as sorted name
// slices, and a map from name to component index.
func (n *Named) SCCNames() ([][]string, map[string]int) {
	comp, count := n.G.SCC()
	groups := make([][]string, count)
	byName := make(map[string]int, len(n.names))
	for id, c := range comp {
		groups[c] = append(groups[c], n.names[id])
		byName[n.names[id]] = c
	}
	for _, g := range groups {
		sort.Strings(g)
	}
	return groups, byName
}
