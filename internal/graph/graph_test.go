package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func buildGraph(n int, edges [][2]int) *Graph {
	g := New(n)
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func TestSCCSimpleCycle(t *testing.T) {
	g := buildGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	comp, count := g.SCC()
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatalf("cycle nodes split: %v", comp)
	}
	if comp[3] == comp[0] {
		t.Fatal("node 3 merged into cycle")
	}
	// Tarjan: inter-component edge u→v implies comp[v] < comp[u].
	if comp[3] >= comp[0] {
		t.Fatalf("reverse-topological numbering violated: %v", comp)
	}
}

func TestSCCSelfLoopAndInCycle(t *testing.T) {
	g := buildGraph(3, [][2]int{{0, 0}, {1, 2}})
	in := g.InCycle()
	if !in[0] {
		t.Fatal("self-loop node not marked recursive")
	}
	if in[1] || in[2] {
		t.Fatal("acyclic nodes marked recursive")
	}
}

func TestComponentsGrouping(t *testing.T) {
	g := buildGraph(5, [][2]int{{0, 1}, {1, 0}, {2, 3}, {3, 4}, {4, 2}})
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("got %d components", len(comps))
	}
	sizes := []int{len(comps[0]), len(comps[1])}
	sort.Ints(sizes)
	if sizes[0] != 2 || sizes[1] != 3 {
		t.Fatalf("component sizes %v", sizes)
	}
}

func TestCondense(t *testing.T) {
	g := buildGraph(4, [][2]int{{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 2}})
	dag, comp := g.Condense()
	if dag.Len() != 2 {
		t.Fatalf("condensation has %d nodes", dag.Len())
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] {
		t.Fatalf("bad comp mapping %v", comp)
	}
	if !dag.HasEdge(comp[0], comp[2]) {
		t.Fatal("missing condensation edge")
	}
	if dag.HasEdge(comp[2], comp[0]) {
		t.Fatal("spurious reverse condensation edge")
	}
}

func TestTopoOrder(t *testing.T) {
	g := buildGraph(5, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}})
	order := g.Topo()
	pos := make([]int, 5)
	for i, v := range order {
		pos[v] = i
	}
	for u := 0; u < 5; u++ {
		for _, v := range g.Succ(u) {
			if pos[u] >= pos[v] {
				t.Fatalf("topo order violates edge %d→%d", u, v)
			}
		}
	}
}

func TestTopoPanicsOnCycle(t *testing.T) {
	g := buildGraph(2, [][2]int{{0, 1}, {1, 0}})
	defer func() {
		if recover() == nil {
			t.Fatal("Topo on cyclic graph did not panic")
		}
	}()
	g.Topo()
}

func TestReachable(t *testing.T) {
	g := buildGraph(5, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	r := g.Reachable(0)
	want := []bool{true, true, true, false, false}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Reachable = %v", r)
		}
	}
}

func TestLongestPathFrom(t *testing.T) {
	// Diamond with a tail: longest path 0→1→3→4 has 3 edges.
	g := buildGraph(5, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}})
	l, ok := g.LongestPathFrom(0)
	if !ok || l != 3 {
		t.Fatalf("longest = %d ok=%v, want 3 true", l, ok)
	}
	// Unreachable cycle does not matter.
	g.AddNode() // 5
	g.AddNode() // 6
	g.AddEdge(5, 6)
	g.AddEdge(6, 5)
	if _, ok := g.LongestPathFrom(0); !ok {
		t.Fatal("unreachable cycle reported as cycle")
	}
	// Reachable cycle is detected.
	g.AddEdge(4, 5)
	if _, ok := g.LongestPathFrom(0); ok {
		t.Fatal("reachable cycle not detected")
	}
}

// Property: comp indexes components in reverse topological order — for
// every edge u→v across components, comp[v] < comp[u]. Checked on random
// graphs against a brute-force SCC (pairwise reachability).
func TestSCCAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(12) + 1
		g := New(n)
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		comp, _ := g.SCC()

		// Brute force: u,v in same SCC iff u reaches v and v reaches u.
		reach := make([][]bool, n)
		for u := 0; u < n; u++ {
			reach[u] = g.Reachable(u)
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				same := reach[u][v] && reach[v][u]
				if same != (comp[u] == comp[v]) {
					return false
				}
			}
		}
		// Reverse topological numbering.
		for u := 0; u < n; u++ {
			for _, v := range g.Succ(u) {
				if comp[u] != comp[v] && comp[v] >= comp[u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: LongestPathFrom equals brute-force DFS longest path on random
// DAGs.
func TestLongestPathAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 1
		g := New(n)
		// Random DAG: edges only increase node index.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(3) == 0 {
					g.AddEdge(u, v)
				}
			}
		}
		var brute func(u int) int
		brute = func(u int) int {
			best := 0
			for _, v := range g.Succ(u) {
				if d := brute(v) + 1; d > best {
					best = d
				}
			}
			return best
		}
		got, ok := g.LongestPathFrom(0)
		return ok && got == brute(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNamedGraph(t *testing.T) {
	n := NewNamed()
	n.AddEdge("p", "q")
	n.AddEdge("q", "p")
	n.AddEdge("q", "r")
	groups, byName := n.SCCNames()
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if byName["p"] != byName["q"] {
		t.Fatal("p and q should share a component")
	}
	if byName["r"] == byName["p"] {
		t.Fatal("r merged with p/q")
	}
	if !n.Has("r") || n.Has("zzz") {
		t.Fatal("Has misreports")
	}
	if id, ok := n.ID("p"); !ok || n.Name(id) != "p" {
		t.Fatal("ID/Name round trip failed")
	}
}
