package ivm

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"chainlog/internal/ast"
	"chainlog/internal/edb"
	"chainlog/internal/naiveeval"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
)

// harness drives a View and the naiveeval oracle through the same base
// mutation schedule and compares the query predicate after every step.
type harness struct {
	t      *testing.T
	st     *symtab.Table
	prog   *ast.Program
	pred   string
	view   *View
	src    *edb.Store       // the authoritative base store
	oracle *naiveeval.Facts // mirror of src for naiveeval
	live   []Fact           // base facts currently present (for random picks)
}

func newHarness(t *testing.T, src string, pred string) *harness {
	t.Helper()
	st := symtab.NewTable()
	res, err := parser.Parse(src, st)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	store := edb.NewStore(st)
	oracle := naiveeval.NewFacts()
	h := &harness{t: t, st: st, prog: res.Program, pred: pred, src: store, oracle: oracle}
	for _, f := range res.Facts {
		if store.Insert(f.Pred, f.Args...) {
			oracle.Assert(f.Pred, f.Args)
			h.live = append(h.live, Fact{Pred: f.Pred, Args: f.Args})
		}
	}
	v, err := NewView(res.Program, pred, store, st)
	if err != nil {
		t.Fatalf("NewView: %v", err)
	}
	h.view = v
	h.check("initial build")
	return h
}

// apply folds a net delta into the store, the oracle and the view, and
// cross-checks the view's reported answer delta against the oracle.
func (h *harness) apply(ins, del []Fact) {
	h.t.Helper()
	before := h.tupleSet(h.view.Tuples())
	for _, f := range del {
		if !h.src.Remove(f.Pred, f.Args...) {
			h.t.Fatalf("delta not net: deleting absent %s%v", f.Pred, f.Args)
		}
		h.oracle.Retract(f.Pred, f.Args)
		for i, lf := range h.live {
			if lf.Pred == f.Pred && tupleKey(lf.Args) == tupleKey(f.Args) {
				h.live = append(h.live[:i], h.live[i+1:]...)
				break
			}
		}
	}
	for _, f := range ins {
		if !h.src.Insert(f.Pred, f.Args...) {
			h.t.Fatalf("delta not net: inserting present %s%v", f.Pred, f.Args)
		}
		h.oracle.Assert(f.Pred, f.Args)
		h.live = append(h.live, f)
	}
	added, removed, err := h.view.ApplyBase(ins, del)
	if err != nil {
		h.t.Fatalf("ApplyBase(+%d -%d): %v", len(ins), len(del), err)
	}
	h.check(fmt.Sprintf("after +%d -%d", len(ins), len(del)))

	// The reported delta must transform the old tuple set into the new.
	after := h.tupleSet(h.view.Tuples())
	for _, t := range added {
		k := tupleKey(t)
		if before[k] {
			h.t.Fatalf("added %v was already present", h.names(t))
		}
		if !after[k] {
			h.t.Fatalf("added %v is not in the new state", h.names(t))
		}
		delete(before, k)
		delete(after, k)
	}
	for _, t := range removed {
		k := tupleKey(t)
		if !before[k] {
			h.t.Fatalf("removed %v was not present", h.names(t))
		}
		if after[k] {
			h.t.Fatalf("removed %v is still in the new state", h.names(t))
		}
		delete(before, k)
	}
	for k := range before {
		if !after[k] {
			h.t.Fatalf("tuple disappeared without being reported removed")
		}
		delete(after, k)
	}
	if len(after) != 0 {
		h.t.Fatalf("%d tuple(s) appeared without being reported added", len(after))
	}
}

// check compares the view's query-predicate tuples against a from-scratch
// naiveeval fixpoint.
func (h *harness) check(when string) {
	h.t.Helper()
	got := h.sorted(h.view.Tuples())
	q := h.allFreeQuery()
	want := h.sorted(naiveeval.Answer(h.prog, h.oracle, h.st, q))
	if !reflect.DeepEqual(got, want) {
		h.t.Fatalf("%s: view %s disagrees with oracle\n got: %v\nwant: %v",
			when, h.pred, h.rows(got), h.rows(want))
	}
}

func (h *harness) allFreeQuery() ast.Query {
	var arity int
	for _, r := range h.prog.Rules {
		if r.Head.Pred == h.pred {
			arity = len(r.Head.Args)
		}
	}
	if arity == 0 {
		if r := h.src.Relation(h.pred); r != nil {
			arity = r.Arity()
		}
	}
	args := make([]ast.Term, arity)
	for i := range args {
		args[i] = ast.Term{Var: fmt.Sprintf("V%d", i)}
	}
	return ast.Query{Literal: ast.Literal{Pred: h.pred, Args: args}}
}

func (h *harness) tupleSet(ts [][]symtab.Sym) map[string]bool {
	out := map[string]bool{}
	for _, t := range ts {
		out[tupleKey(t)] = true
	}
	return out
}

func (h *harness) sorted(ts [][]symtab.Sym) [][]symtab.Sym {
	out := make([][]symtab.Sym, len(ts))
	copy(out, ts)
	sort.Slice(out, func(i, j int) bool { return tupleKey(out[i]) < tupleKey(out[j]) })
	return out
}

func (h *harness) names(t []symtab.Sym) []string {
	row := make([]string, len(t))
	for i, s := range t {
		row[i] = h.st.Name(s)
	}
	return row
}

func (h *harness) rows(ts [][]symtab.Sym) [][]string {
	out := make([][]string, len(ts))
	for i, t := range ts {
		out[i] = h.names(t)
	}
	return out
}

func (h *harness) sym(name string) symtab.Sym { return h.st.Intern(name) }

func TestLinearTransitiveClosure(t *testing.T) {
	h := newHarness(t, `
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
edge(a, b). edge(b, c). edge(c, d).
`, "tc")
	e := func(a, b string) Fact {
		return Fact{Pred: "edge", Args: []symtab.Sym{h.sym(a), h.sym(b)}}
	}
	h.apply([]Fact{e("d", "e")}, nil)                 // extend the chain
	h.apply(nil, []Fact{e("b", "c")})                 // cut it in the middle
	h.apply([]Fact{e("b", "c")}, nil)                 // restore
	h.apply([]Fact{e("e", "a")}, nil)                 // close a cycle
	h.apply(nil, []Fact{e("c", "d")})                 // break the cycle
	h.apply([]Fact{e("a", "c")}, []Fact{e("a", "b")}) // mixed delta
}

// TestCycleRetraction exercises the DRed repair: facts in a cycle keep
// positive-looking support through the cycle even when the external
// derivation is gone, so retraction must overdelete and rederive.
func TestCycleRetraction(t *testing.T) {
	h := newHarness(t, `
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
edge(a, b). edge(b, c). edge(c, a). edge(c, d).
`, "tc")
	e := func(a, b string) Fact {
		return Fact{Pred: "edge", Args: []symtab.Sym{h.sym(a), h.sym(b)}}
	}
	h.apply(nil, []Fact{e("c", "a")}) // open the cycle
	h.apply([]Fact{e("c", "a")}, nil) // close it again
	h.apply(nil, []Fact{e("a", "b")})
	h.apply(nil, []Fact{e("b", "c")})
	if h.view.Stats().Repairs == 0 {
		t.Fatalf("expected at least one DRed repair on cycle retraction")
	}
}

func TestNonlinearRecursion(t *testing.T) {
	h := newHarness(t, `
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), path(Y, Z).
edge(a, b). edge(b, c). edge(c, d). edge(d, e).
`, "path")
	e := func(a, b string) Fact {
		return Fact{Pred: "edge", Args: []symtab.Sym{h.sym(a), h.sym(b)}}
	}
	h.apply([]Fact{e("e", "b")}, nil)
	h.apply(nil, []Fact{e("c", "d")})
	h.apply([]Fact{e("c", "d"), e("a", "e")}, []Fact{e("a", "b")})
	h.apply(nil, []Fact{e("e", "b"), e("d", "e")})
}

func TestSameGeneration(t *testing.T) {
	h := newHarness(t, `
sg(X, X) :- person(X).
sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).
person(a). person(b). person(c). person(d). person(e).
par(b, a). par(c, a). par(d, b). par(e, c).
`, "sg")
	p := func(a, b string) Fact {
		return Fact{Pred: "par", Args: []symtab.Sym{h.sym(a), h.sym(b)}}
	}
	person := func(a string) Fact {
		return Fact{Pred: "person", Args: []symtab.Sym{h.sym(a)}}
	}
	h.apply([]Fact{person("f"), p("f", "b")}, nil)
	h.apply(nil, []Fact{p("d", "b")})
	h.apply([]Fact{p("d", "c")}, []Fact{p("e", "c")})
	h.apply(nil, []Fact{person("a")})
}

func TestBuiltinBody(t *testing.T) {
	h := newHarness(t, `
lt(X, Y) :- num(X), num(Y), X < Y.
reach(X, Y) :- lt(X, Y).
reach(X, Z) :- lt(X, Y), reach(Y, Z).
num(n1). num(n2). num(n3).
`, "reach")
	n := func(a string) Fact {
		return Fact{Pred: "num", Args: []symtab.Sym{h.sym(a)}}
	}
	h.apply([]Fact{n("n4")}, nil)
	h.apply(nil, []Fact{n("n2")})
	h.apply([]Fact{n("n0")}, []Fact{n("n3")})
}

// TestBaseView covers the degenerate case: the query predicate has no
// rules, so the view just mirrors the base relation.
func TestBaseView(t *testing.T) {
	h := newHarness(t, `
tc(X, Y) :- edge(X, Y).
edge(a, b). edge(b, c).
`, "edge")
	e := func(a, b string) Fact {
		return Fact{Pred: "edge", Args: []symtab.Sym{h.sym(a), h.sym(b)}}
	}
	h.apply([]Fact{e("c", "d")}, nil)
	h.apply(nil, []Fact{e("a", "b")})
	h.apply([]Fact{e("a", "b")}, []Fact{e("b", "c")})
}

// TestMagicSeedRule covers programs with empty-body rules, the shape the
// magic rewrite emits for query seeds.
func TestMagicSeedRule(t *testing.T) {
	st := symtab.NewTable()
	res, err := parser.Parse(`
tc(X, Y) :- m_tc(X), edge(X, Y).
tc(X, Z) :- m_tc(X), edge(X, Y), tc(Y, Z).
m_tc(Y) :- m_tc(X), edge(X, Y).
edge(a, b). edge(b, c). edge(c, d). edge(z, a).
`, st)
	if err != nil {
		t.Fatal(err)
	}
	seed := ast.Rule{Head: ast.Literal{Pred: "m_tc", Args: []ast.Term{{Const: st.Intern("a")}}}}
	res.Program.Rules = append(res.Program.Rules, seed)
	store := edb.NewStore(st)
	oracle := naiveeval.NewFacts()
	h := &harness{t: t, st: st, prog: res.Program, pred: "tc", src: store, oracle: oracle}
	for _, f := range res.Facts {
		store.Insert(f.Pred, f.Args...)
		oracle.Assert(f.Pred, f.Args)
	}
	v, err := NewView(res.Program, "tc", store, st)
	if err != nil {
		t.Fatalf("NewView: %v", err)
	}
	h.view = v
	h.check("initial build")
	e := func(a, b string) Fact {
		return Fact{Pred: "edge", Args: []symtab.Sym{st.Intern(a), st.Intern(b)}}
	}
	h.apply([]Fact{e("d", "e")}, nil)
	h.apply(nil, []Fact{e("b", "c")})
	h.apply([]Fact{e("b", "x"), e("x", "c")}, nil)
	h.apply(nil, []Fact{e("a", "b")})
}

func TestRebuildDiff(t *testing.T) {
	h := newHarness(t, `
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
edge(a, b). edge(b, c).
`, "tc")
	// Mutate the source store behind the view's back, then Rebuild.
	h.src.Insert("edge", h.sym("c"), h.sym("d"))
	h.oracle.Assert("edge", []symtab.Sym{h.sym("c"), h.sym("d")})
	h.src.Remove("edge", h.sym("a"), h.sym("b"))
	h.oracle.Retract("edge", []symtab.Sym{h.sym("a"), h.sym("b")})
	added, removed := h.view.Rebuild(h.src)
	h.check("after rebuild")
	wantAdd := map[string]bool{
		tupleKey([]symtab.Sym{h.sym("b"), h.sym("d")}): true,
		tupleKey([]symtab.Sym{h.sym("c"), h.sym("d")}): true,
	}
	wantDel := map[string]bool{
		tupleKey([]symtab.Sym{h.sym("a"), h.sym("b")}): true,
		tupleKey([]symtab.Sym{h.sym("a"), h.sym("c")}): true,
	}
	if len(added) != len(wantAdd) || len(removed) != len(wantDel) {
		t.Fatalf("rebuild diff: +%d -%d, want +%d -%d", len(added), len(removed), len(wantAdd), len(wantDel))
	}
	for _, a := range added {
		if !wantAdd[tupleKey(a)] {
			t.Fatalf("unexpected added row %v", h.names(a))
		}
	}
	for _, d := range removed {
		if !wantDel[tupleKey(d)] {
			t.Fatalf("unexpected removed row %v", h.names(d))
		}
	}
	if h.view.Stats().Recomputed != 2 {
		t.Fatalf("Recomputed = %d, want 2", h.view.Stats().Recomputed)
	}
}

// TestRandomSchedules is the workhorse: random graphs, random net
// deltas, every step cross-checked against the oracle.
func TestRandomSchedules(t *testing.T) {
	programs := []struct {
		name, src, pred string
	}{
		{"tc", `
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
`, "tc"},
		{"nonlinear", `
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), path(Y, Z).
`, "path"},
		{"samegen", `
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, XP), sg(XP, YP), down(YP, Y).
`, "sg"},
	}
	preds := map[string][]string{
		"tc":        {"edge"},
		"nonlinear": {"edge"},
		"samegen":   {"flat", "up", "down"},
	}
	const nodes = 8
	for _, p := range programs {
		p := p
		t.Run(p.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 12; trial++ {
				h := newHarness(t, p.src, p.pred)
				randomFact := func() Fact {
					pr := preds[p.name][rng.Intn(len(preds[p.name]))]
					return Fact{Pred: pr, Args: []symtab.Sym{
						h.sym(fmt.Sprintf("n%d", rng.Intn(nodes))),
						h.sym(fmt.Sprintf("n%d", rng.Intn(nodes))),
					}}
				}
				for step := 0; step < 25; step++ {
					var ins, del []Fact
					seen := map[string]bool{}
					// Deletions: sample distinct currently-live facts.
					nDel := rng.Intn(3)
					for i := 0; i < nDel && len(h.live) > 0; i++ {
						f := h.live[rng.Intn(len(h.live))]
						k := f.Pred + "\x00" + tupleKey(f.Args)
						if seen[k] {
							continue
						}
						seen[k] = true
						del = append(del, f)
					}
					// Insertions: sample facts not live and not being deleted.
					nIns := rng.Intn(3)
					for i := 0; i < nIns; i++ {
						f := randomFact()
						k := f.Pred + "\x00" + tupleKey(f.Args)
						if seen[k] {
							continue
						}
						if r := h.src.Relation(f.Pred); r != nil && r.Contains(f.Args) {
							continue
						}
						seen[k] = true
						ins = append(ins, f)
					}
					h.apply(ins, del)
				}
			}
		})
	}
}
