// Package ivm incrementally maintains the derived facts of a Datalog
// program under base-fact insertions and deletions, the machinery behind
// Prepared.Materialize and chainlogd's /v1/watch subscriptions.
//
// The method is counting-based maintenance in the family of Bancilhon/
// Maier/Sagiv/Ullman's counting method (already used for query
// evaluation by internal/counting), hardened for recursion:
//
//   - every derived fact carries a height — the semi-naive round that
//     first produced it — and a support count of its counted firings: a
//     rule firing is counted for its head exactly when every derived
//     body fact has strictly smaller height than the head. Counted
//     support is therefore well-founded: as long as no count reaches
//     zero, every fact remains derivable, so deletions that leave all
//     counts positive finish after a single decrement pass.
//   - a count reaching zero does not prove the fact dead (an alternative
//     derivation may exist through an uncounted, higher-height firing),
//     so zeroed facts enter a DRed-style local repair: overdeletion
//     cascades through the counted supports, then the overdeleted facts
//     are rederived against the surviving state and reinserted with
//     fresh heights. The repair touches only the affected cone; the
//     common case — churn far from the view — never runs it.
//   - insertions run a delta-seeded semi-naive pass whose rounds buffer
//     their derivations, so each new firing is enumerated exactly once
//     and the counts stay exact.
//
// A View owns a private copy of the base relations its rules consult.
// That copy lags the database by exactly the delta being applied, which
// is what lets the deletion pass enumerate lost firings over the
// pre-state and the insertion pass over the post-state using only
// exclusion filters — no store snapshotting per mutation.
package ivm

import (
	"fmt"
	"math"

	"chainlog/internal/ast"
	"chainlog/internal/bottomup"
	"chainlog/internal/edb"
	"chainlog/internal/symtab"
)

// Fact is one ground base fact of a net mutation delta.
type Fact struct {
	Pred string
	Args []symtab.Sym
}

// Stats reports the work a view has performed since construction.
type Stats struct {
	// Maintained counts incremental maintenance passes applied.
	Maintained uint64
	// Recomputed counts full recomputations (the initial build, rule
	// changes, and any fallback from a damaged incremental state).
	Recomputed uint64
	// Repairs counts DRed overdelete/rederive repairs — deletion passes
	// where some support count reached zero.
	Repairs uint64
	// Facts is the number of derived facts currently materialized.
	Facts int
}

// factInfo is the per-derived-fact maintenance state.
type factInfo struct {
	count  int // valid counted firings supporting the fact
	height int // semi-naive round of (re)birth; counted bodies sit strictly below
}

// View maintains the fixpoint of prog restricted to the facts relevant
// to queryPred. It is not safe for concurrent use; the owning
// chainlog.DB serializes maintenance under its write lock.
type View struct {
	st        *symtab.Table
	prog      *ast.Program
	derived   map[string]bool
	basePreds map[string]bool
	queryPred string

	base      *edb.Store // private copy of consulted base relations
	idb       *edb.Store // derived facts
	info      map[string]map[string]*factInfo
	maxHeight int
	damaged   bool

	stats Stats
}

// NewView builds a view of queryPred under prog, seeding the private
// base copy and the initial fixpoint from src. prog must already be
// sliced to the rules relevant to queryPred (including any magic
// rewrite); a base queryPred with no rules is also valid, in which case
// the view simply mirrors that relation.
func NewView(prog *ast.Program, queryPred string, src *edb.Store, st *symtab.Table) (*View, error) {
	if _, err := prog.Arities(); err != nil {
		return nil, err
	}
	v := &View{
		st:        st,
		prog:      prog,
		derived:   prog.DerivedSet(),
		queryPred: queryPred,
	}
	v.basePreds = map[string]bool{}
	for _, r := range prog.Rules {
		for _, l := range r.Body {
			if !l.IsBuiltin() && !v.derived[l.Pred] {
				v.basePreds[l.Pred] = true
			}
		}
	}
	if !v.derived[queryPred] {
		v.basePreds[queryPred] = true
	}
	v.rebuildFrom(src)
	return v, nil
}

// Rebuild discards the incremental state and recomputes the view from
// src, returning the net tuple changes of the query predicate relative
// to the previous state.
func (v *View) Rebuild(src *edb.Store) (added, removed [][]symtab.Sym) {
	old := map[string][]symtab.Sym{}
	for _, t := range v.Tuples() {
		old[tupleKey(t)] = t
	}
	v.rebuildFrom(src)
	now := map[string][]symtab.Sym{}
	for _, t := range v.Tuples() {
		now[tupleKey(t)] = t
	}
	for k, t := range now {
		if _, ok := old[k]; !ok {
			added = append(added, t)
		}
	}
	for k, t := range old {
		if _, ok := now[k]; !ok {
			removed = append(removed, t)
		}
	}
	return added, removed
}

// rebuildFrom copies the relevant base relations out of src and runs
// the initial height-annotated fixpoint plus the counting pass.
func (v *View) rebuildFrom(src *edb.Store) {
	v.base = edb.NewStore(v.st)
	for pred := range v.basePreds {
		if r := src.Relation(pred); r != nil {
			r.EachRaw(func(tuple []symtab.Sym) {
				v.base.Insert(pred, tuple...)
			})
		}
	}
	v.idb = edb.NewStore(v.st)
	v.info = map[string]map[string]*factInfo{}
	v.maxHeight = 0
	v.damaged = false
	v.stats.Recomputed++

	// Round 1: rules whose bodies hold no derived atom (including
	// empty-body magic seed rules).
	var delta []Fact
	for _, r := range v.prog.Rules {
		if v.hasDerivedAtom(r) {
			continue
		}
		rr := r
		v.enumerate(rr, enumSpec{pin: -1, maxHBefore: math.MaxInt, maxHAfter: math.MaxInt},
			func(head []symtab.Sym, _ int) {
				if v.insertNew(rr.Head.Pred, head, 1) {
					delta = append(delta, Fact{Pred: rr.Head.Pred, Args: head})
				}
			})
	}
	v.maxHeight = 1
	// Rounds 2..: semi-naive over the previous round's delta, heights
	// assigned by round. Counts are settled by the counting pass below,
	// so duplicate enumeration here is harmless; the height splits just
	// keep the work linear in the number of firings.
	v.closeOver(delta, nil, nil)

	// Counting pass: enumerate every valid firing once and count those
	// whose derived body heights all sit strictly below the head.
	for pred := range v.info {
		for _, fi := range v.info[pred] {
			fi.count = 0
		}
	}
	for _, r := range v.prog.Rules {
		rr := r
		v.enumerate(rr, enumSpec{pin: -1, maxHBefore: math.MaxInt, maxHAfter: math.MaxInt},
			func(head []symtab.Sym, maxDer int) {
				if fi := v.get(rr.Head.Pred, tupleKey(head)); fi != nil && maxDer < fi.height {
					fi.count++
				}
			})
	}
}

// ApplyBase folds one net base mutation into the view: deletions first
// (decrement, overdelete, rederive), then insertions (delta-seeded
// semi-naive). It returns the net tuple changes of the query predicate.
// A non-nil error means the incremental state is no longer trustworthy
// and the caller must Rebuild.
func (v *View) ApplyBase(inserted, deleted []Fact) (added, removed [][]symtab.Sym, err error) {
	if v.damaged {
		return nil, nil, fmt.Errorf("ivm: view state damaged; rebuild required")
	}
	qAdded := map[string][]symtab.Sym{}
	qRemoved := map[string][]symtab.Sym{}

	del := v.relevant(deleted)
	ins := v.relevant(inserted)
	if len(del) > 0 {
		v.deletePass(del, qAdded, qRemoved)
	}
	if len(ins) > 0 {
		v.insertPass(ins, qAdded, qRemoved)
	}
	v.stats.Maintained++
	for _, t := range qAdded {
		added = append(added, t)
	}
	for _, t := range qRemoved {
		removed = append(removed, t)
	}
	if v.damaged {
		return nil, nil, fmt.Errorf("ivm: support counting underflowed; rebuild required")
	}
	return added, removed, nil
}

// relevant filters a net delta down to the base predicates this view
// consults.
func (v *View) relevant(facts []Fact) []Fact {
	var out []Fact
	for _, f := range facts {
		if v.basePreds[f.Pred] {
			out = append(out, f)
		}
	}
	return out
}

// Tuples returns the current tuples of the query predicate.
func (v *View) Tuples() [][]symtab.Sym {
	store := v.idb
	if !v.derived[v.queryPred] {
		store = v.base
	}
	r := store.Relation(v.queryPred)
	if r == nil {
		return nil
	}
	var out [][]symtab.Sym
	r.EachRaw(func(tuple []symtab.Sym) {
		out = append(out, append([]symtab.Sym(nil), tuple...))
	})
	return out
}

// Stats returns the view's work counters.
func (v *View) Stats() Stats {
	s := v.stats
	for _, m := range v.info {
		s.Facts += len(m)
	}
	return s
}

// --- deletion pass -----------------------------------------------------

// deletePass processes the net-deleted base facts: decrement every lost
// counted firing, cascade overdeletion through zeroed counts, then
// rederive survivors against the remaining state (DRed).
func (v *View) deletePass(del []Fact, qAdded, qRemoved map[string][]symtab.Sym) {
	dset := factSet(del)
	// Lost firings: every pre-state firing holding at least one deleted
	// tuple, enumerated exactly once by pinning the first deleted
	// position (earlier base positions exclude the deleted set, later
	// ones still see it — the base copy is updated only afterwards).
	var zeroed []Fact
	onZero := func(pred string, args []symtab.Sym) {
		zeroed = append(zeroed, Fact{Pred: pred, Args: args})
	}
	for _, r := range v.prog.Rules {
		rr := r
		for j, l := range rr.Body {
			if l.IsBuiltin() || v.derived[l.Pred] || dset[l.Pred] == nil {
				continue
			}
			for _, f := range del {
				if f.Pred != l.Pred {
					continue
				}
				v.enumerate(rr, enumSpec{
					pin: j, pinTuple: f.Args, pinHeight: 0,
					baseSkip:   dset,
					maxHBefore: math.MaxInt, maxHAfter: math.MaxInt,
				}, func(head []symtab.Sym, maxDer int) {
					v.decrement(rr.Head.Pred, head, maxDer, onZero)
				})
			}
		}
	}
	for _, f := range del {
		v.base.Remove(f.Pred, f.Args...)
		if !v.derived[v.queryPred] && f.Pred == v.queryPred {
			qRemoved[tupleKey(f.Args)] = f.Args
		}
	}
	if len(zeroed) == 0 {
		return
	}
	v.stats.Repairs++

	// Overdeletion cascade: tentatively remove zeroed facts wave by
	// wave, decrementing the counted firings they supported. Earlier
	// waves are already gone from the idb, so only the current wave
	// needs an explicit exclusion split.
	var over []Fact
	wave := zeroed
	for len(wave) > 0 {
		waveSet := factSet(wave)
		zeroed = nil
		for _, r := range v.prog.Rules {
			rr := r
			for j, l := range rr.Body {
				if l.IsBuiltin() || !v.derived[l.Pred] || waveSet[l.Pred] == nil {
					continue
				}
				for _, f := range wave {
					if f.Pred != l.Pred {
						continue
					}
					fi := v.get(f.Pred, tupleKey(f.Args))
					if fi == nil {
						continue
					}
					v.enumerate(rr, enumSpec{
						pin: j, pinTuple: f.Args, pinHeight: fi.height,
						derSkip:    waveSet,
						maxHBefore: math.MaxInt, maxHAfter: math.MaxInt,
					}, func(head []symtab.Sym, maxDer int) {
						if waveSet[rr.Head.Pred] != nil && waveSet[rr.Head.Pred][tupleKey(head)] {
							return // head already zeroed this wave
						}
						v.decrement(rr.Head.Pred, head, maxDer, onZero)
					})
				}
			}
		}
		for _, f := range wave {
			v.idb.Remove(f.Pred, f.Args...)
			v.drop(f.Pred, tupleKey(f.Args))
			if f.Pred == v.queryPred {
				qRemoved[tupleKey(f.Args)] = f.Args
			}
			over = append(over, f)
		}
		// Facts zeroed by this wave that are not already overdeleted.
		wave = nil
		for _, f := range zeroed {
			if v.get(f.Pred, tupleKey(f.Args)) != nil {
				wave = append(wave, f)
			}
		}
	}

	// Rederivation round 1: a head-driven derivability probe for each
	// overdeleted fact against the surviving state. Facts that still
	// hold are reborn above every existing height, so all their firings
	// found here are counted.
	h1 := v.maxHeight + 1
	var reborn []Fact
	for _, f := range over {
		count := 0
		for _, r := range v.prog.RulesFor(f.Pred) {
			v.enumerate(r, enumSpec{
				pin: -1, headBound: f.Args,
				maxHBefore: math.MaxInt, maxHAfter: math.MaxInt,
			}, func(_ []symtab.Sym, _ int) {
				count++
			})
		}
		if count > 0 {
			reborn = append(reborn, Fact{Pred: f.Pred, Args: f.Args})
			v.put(f.Pred, f.Args, &factInfo{count: count, height: h1})
		}
	}
	for _, f := range reborn {
		v.idb.Insert(f.Pred, f.Args...)
		v.recordDerived(f.Pred, f.Args, qAdded, qRemoved)
	}
	if len(reborn) > 0 {
		v.maxHeight = h1
	}
	// Later rederivation rounds are a plain insertion-style closure.
	v.closeOver(reborn, qAdded, qRemoved)
}

// decrement removes one counted supporting firing from head if the
// counted condition holds, reporting facts whose count reaches zero.
func (v *View) decrement(pred string, head []symtab.Sym, maxDer int, onZero func(string, []symtab.Sym)) {
	fi := v.get(pred, tupleKey(head))
	if fi == nil || maxDer >= fi.height {
		return
	}
	fi.count--
	if fi.count == 0 {
		onZero(pred, append([]symtab.Sym(nil), head...))
	}
	if fi.count < 0 {
		fi.count = 0
		v.damaged = true
	}
}

// --- insertion pass ----------------------------------------------------

// insertPass folds net-inserted base facts in: round 1 pins the
// inserted tuples, later rounds close over the derived deltas.
func (v *View) insertPass(ins []Fact, qAdded, qRemoved map[string][]symtab.Sym) {
	iset := factSet(ins)
	for _, f := range ins {
		v.base.Insert(f.Pred, f.Args...)
		if !v.derived[v.queryPred] && f.Pred == v.queryPred {
			v.recordBaseInsert(f.Args, qAdded, qRemoved)
		}
	}
	h1 := v.maxHeight + 1
	next := map[string]*pending{}
	for _, r := range v.prog.Rules {
		rr := r
		for j, l := range rr.Body {
			if l.IsBuiltin() || v.derived[l.Pred] || iset[l.Pred] == nil {
				continue
			}
			for _, f := range ins {
				if f.Pred != l.Pred {
					continue
				}
				v.enumerate(rr, enumSpec{
					pin: j, pinTuple: f.Args, pinHeight: 0,
					baseSkip:   iset,
					maxHBefore: math.MaxInt, maxHAfter: math.MaxInt,
				}, func(head []symtab.Sym, maxDer int) {
					v.countNewFiring(rr.Head.Pred, head, maxDer, next)
				})
			}
		}
	}
	delta := v.mergeRound(next, h1, qAdded, qRemoved)
	v.closeOver(delta, qAdded, qRemoved)
}

// pending is a fact derived during the current round, buffered until
// the round ends so same-round firings never feed each other.
type pending struct {
	args  []symtab.Sym
	count int
}

// countNewFiring credits one newly valid firing: existing heads gain a
// counted support when the height condition holds; unseen heads are
// buffered for insertion at the end of the round.
func (v *View) countNewFiring(pred string, head []symtab.Sym, maxDer int, next map[string]*pending) {
	if fi := v.get(pred, tupleKey(head)); fi != nil {
		if maxDer < fi.height {
			fi.count++
		}
		return
	}
	k := pred + "\x00" + tupleKey(head)
	if p := next[k]; p != nil {
		p.count++
		return
	}
	next[k] = &pending{args: append([]symtab.Sym(nil), head...), count: 1}
}

// mergeRound inserts a round's buffered derivations at height h and
// returns them as the next delta.
func (v *View) mergeRound(next map[string]*pending, h int, qAdded, qRemoved map[string][]symtab.Sym) []Fact {
	if len(next) == 0 {
		return nil
	}
	var delta []Fact
	for k, p := range next {
		pred := predOfKey(k)
		v.idb.Insert(pred, p.args...)
		v.put(pred, p.args, &factInfo{count: p.count, height: h})
		v.recordDerived(pred, p.args, qAdded, qRemoved)
		delta = append(delta, Fact{Pred: pred, Args: p.args})
	}
	if h > v.maxHeight {
		v.maxHeight = h
	}
	return delta
}

// closeOver runs insertion-style semi-naive rounds seeded by delta
// (facts all at v.maxHeight), until no new facts appear. Used by the
// initial build, the insertion pass and DRed rederivation — the three
// only differ in how their first round is seeded.
func (v *View) closeOver(delta []Fact, qAdded, qRemoved map[string][]symtab.Sym) {
	for len(delta) > 0 {
		hPrev := v.maxHeight
		dset := factSet(delta)
		next := map[string]*pending{}
		for _, r := range v.prog.Rules {
			rr := r
			for j, l := range rr.Body {
				if l.IsBuiltin() || !v.derived[l.Pred] || dset[l.Pred] == nil {
					continue
				}
				for _, f := range delta {
					if f.Pred != l.Pred {
						continue
					}
					v.enumerate(rr, enumSpec{
						pin: j, pinTuple: f.Args, pinHeight: hPrev,
						maxHBefore: hPrev - 1, maxHAfter: hPrev,
					}, func(head []symtab.Sym, maxDer int) {
						v.countNewFiring(rr.Head.Pred, head, maxDer, next)
					})
				}
			}
		}
		delta = v.mergeRound(next, hPrev+1, qAdded, qRemoved)
	}
}

// recordDerived notes a derived-fact (re)appearance of the query pred
// in the net answer delta: a fact removed earlier in the same pass and
// re-added nets to no change.
func (v *View) recordDerived(pred string, args []symtab.Sym, qAdded, qRemoved map[string][]symtab.Sym) {
	if pred != v.queryPred || qAdded == nil {
		return
	}
	k := tupleKey(args)
	if _, ok := qRemoved[k]; ok {
		delete(qRemoved, k)
		return
	}
	qAdded[k] = args
}

// recordBaseInsert is recordDerived for the base-predicate view case.
func (v *View) recordBaseInsert(args []symtab.Sym, qAdded, qRemoved map[string][]symtab.Sym) {
	k := tupleKey(args)
	if _, ok := qRemoved[k]; ok {
		delete(qRemoved, k)
		return
	}
	qAdded[k] = args
}

// --- firing enumeration ------------------------------------------------

// enumSpec constrains one enumeration of a rule's firings.
type enumSpec struct {
	// pin, when >= 0, binds body literal pin to exactly pinTuple (a
	// delta tuple); pinHeight is its height when the literal is derived.
	pin       int
	pinTuple  []symtab.Sym
	pinHeight int
	// headBound, when non-nil, pre-binds the head arguments (the
	// rederivation probe).
	headBound []symtab.Sym
	// baseSkip tuples are invisible to base literals at positions
	// before pin; derSkip likewise for derived literals. Together with
	// the pin they implement the exactly-once "first delta position"
	// split.
	baseSkip map[string]map[string]bool
	derSkip  map[string]map[string]bool
	// maxHBefore / maxHAfter bound the height of derived tuples at
	// positions before/after pin (semi-naive round splits).
	maxHBefore, maxHAfter int
}

// enumerate calls emit for every firing of r satisfying spec, passing
// the instantiated head and the maximum height among derived body facts
// (0 when the body holds none). Join order is greedy bound-first, the
// pinned literal bound up front.
func (v *View) enumerate(r ast.Rule, spec enumSpec, emit func(head []symtab.Sym, maxDer int)) {
	subst := make(map[string]symtab.Sym)
	done := make([]bool, len(r.Body))

	bindTerms := func(terms []ast.Term, tuple []symtab.Sym) (assigned []string, ok bool) {
		for i, a := range terms {
			if !a.IsVar() {
				if a.Const != tuple[i] {
					return assigned, false
				}
				continue
			}
			if prev := subst[a.Var]; prev != symtab.None {
				if prev != tuple[i] {
					return assigned, false
				}
				continue
			}
			subst[a.Var] = tuple[i]
			assigned = append(assigned, a.Var)
		}
		return assigned, true
	}
	unbind := func(assigned []string) {
		for _, name := range assigned {
			delete(subst, name)
		}
	}

	if spec.headBound != nil {
		assigned, ok := bindTerms(r.Head.Args, spec.headBound)
		if !ok {
			unbind(assigned)
			return
		}
		defer unbind(assigned)
	}
	if spec.pin >= 0 {
		l := r.Body[spec.pin]
		if len(spec.pinTuple) != len(l.Args) {
			return
		}
		assigned, ok := bindTerms(l.Args, spec.pinTuple)
		if !ok {
			unbind(assigned)
			return
		}
		defer unbind(assigned)
		done[spec.pin] = true
	}

	var step func(maxDer int)
	step = func(maxDer int) {
		next := -1
		bestBound := -1
		for i, l := range r.Body {
			if done[i] {
				continue
			}
			if l.IsBuiltin() {
				if builtinReady(l, subst) {
					next = i
					bestBound = 1 << 30
					break
				}
				continue
			}
			b := 0
			for _, a := range l.Args {
				if !a.IsVar() || subst[a.Var] != symtab.None {
					b++
				}
			}
			if b > bestBound {
				bestBound = b
				next = i
			}
		}
		if next == -1 {
			for i, l := range r.Body {
				if !done[i] {
					if !l.IsBuiltin() || !v.evalBuiltin(l, subst) {
						return
					}
				}
			}
			head := make([]symtab.Sym, len(r.Head.Args))
			for i, a := range r.Head.Args {
				if a.IsVar() {
					head[i] = subst[a.Var]
					if head[i] == symtab.None {
						return
					}
				} else {
					head[i] = a.Const
				}
			}
			emit(head, maxDer)
			return
		}
		l := r.Body[next]
		done[next] = true
		defer func() { done[next] = false }()

		if l.IsBuiltin() {
			if v.evalBuiltin(l, subst) {
				step(maxDer)
			}
			return
		}

		isDer := v.derived[l.Pred]
		var rel *edb.Relation
		if isDer {
			rel = v.idb.Relation(l.Pred)
		} else {
			rel = v.base.Relation(l.Pred)
		}
		if rel == nil {
			return
		}
		var skip map[string]bool
		if next < spec.pin {
			if isDer {
				if spec.derSkip != nil {
					skip = spec.derSkip[l.Pred]
				}
			} else if spec.baseSkip != nil {
				skip = spec.baseSkip[l.Pred]
			}
		}
		maxH := spec.maxHAfter
		if next < spec.pin {
			maxH = spec.maxHBefore
		}
		var mask uint32
		var bound []symtab.Sym
		for i, a := range l.Args {
			if a.IsVar() {
				if s := subst[a.Var]; s != symtab.None {
					mask |= 1 << uint(i)
					bound = append(bound, s)
				}
			} else {
				mask |= 1 << uint(i)
				bound = append(bound, a.Const)
			}
		}
		rel.MatchEach(mask, bound, func(tuple []symtab.Sym) {
			h := 0
			if isDer {
				fi := v.get(l.Pred, tupleKey(tuple))
				if fi == nil {
					return // being removed mid-cascade; treat as absent
				}
				h = fi.height
				if h > maxH {
					return
				}
			}
			if skip != nil && skip[tupleKey(tuple)] {
				return
			}
			assigned, ok := bindTerms(l.Args, tuple)
			if ok {
				m := maxDer
				if isDer && h > m {
					m = h
				}
				step(m)
			}
			unbind(assigned)
		})
	}
	initMax := 0
	if spec.pin >= 0 && v.derived[r.Body[spec.pin].Pred] {
		initMax = spec.pinHeight
	}
	step(initMax)
}

func builtinReady(l ast.Literal, subst map[string]symtab.Sym) bool {
	for _, a := range l.Args {
		if a.IsVar() && subst[a.Var] == symtab.None {
			return false
		}
	}
	return true
}

func (v *View) evalBuiltin(l ast.Literal, subst map[string]symtab.Sym) bool {
	val := func(t ast.Term) symtab.Sym {
		if t.IsVar() {
			return subst[t.Var]
		}
		return t.Const
	}
	return bottomup.Compare(v.st, l.Op, val(l.Args[0]), val(l.Args[1]))
}

// --- bookkeeping helpers -----------------------------------------------

func (v *View) hasDerivedAtom(r ast.Rule) bool {
	for _, l := range r.Body {
		if !l.IsBuiltin() && v.derived[l.Pred] {
			return true
		}
	}
	return false
}

// insertNew inserts a derived fact if absent, recording its info.
func (v *View) insertNew(pred string, args []symtab.Sym, height int) bool {
	k := tupleKey(args)
	if v.get(pred, k) != nil {
		return false
	}
	args = append([]symtab.Sym(nil), args...)
	v.idb.Insert(pred, args...)
	v.put(pred, args, &factInfo{count: 0, height: height})
	return true
}

func (v *View) get(pred, key string) *factInfo {
	m := v.info[pred]
	if m == nil {
		return nil
	}
	return m[key]
}

func (v *View) put(pred string, args []symtab.Sym, fi *factInfo) {
	m := v.info[pred]
	if m == nil {
		m = map[string]*factInfo{}
		v.info[pred] = m
	}
	m[tupleKey(args)] = fi
}

func (v *View) drop(pred, key string) {
	if m := v.info[pred]; m != nil {
		delete(m, key)
	}
}

// tupleKey packs a tuple into a map key.
func tupleKey(args []symtab.Sym) string {
	b := make([]byte, 0, 4*len(args))
	for _, s := range args {
		u := uint32(s)
		b = append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	}
	return string(b)
}

// predOfKey splits the pred out of a "pred\x00tuple" pending key.
func predOfKey(k string) string {
	for i := 0; i < len(k); i++ {
		if k[i] == 0 {
			return k[:i]
		}
	}
	return k
}

// factSet indexes a fact list as pred -> tuple key -> true.
func factSet(facts []Fact) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for _, f := range facts {
		m := out[f.Pred]
		if m == nil {
			m = map[string]bool{}
			out[f.Pred] = m
		}
		m[tupleKey(f.Args)] = true
	}
	return out
}
