package binchain

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"chainlog/internal/adorn"
	"chainlog/internal/ast"
	"chainlog/internal/bottomup"
	"chainlog/internal/chaineval"
	"chainlog/internal/edb"
	"chainlog/internal/equations"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
)

type fixture struct {
	st    *symtab.Table
	store *edb.Store
	prog  *ast.Program
}

func load(t *testing.T, src string) *fixture {
	t.Helper()
	st := symtab.NewTable()
	res, err := parser.Parse(src, st)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	store := edb.NewStore(st)
	for _, f := range res.Facts {
		store.Insert(f.Pred, f.Args...)
	}
	return &fixture{st: st, store: store, prog: res.Program}
}

// evalTransformed runs the full Section 4 pipeline and returns sorted
// decoded answer rows as strings.
func evalTransformed(t *testing.T, fx *fixture, query string, unsafe bool) [][]string {
	t.Helper()
	q, err := parser.ParseQuery(query, fx.st)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	tr, err := Transform(fx.prog, q, fx.store, unsafe)
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	sys, err := equations.Transform(tr.Program)
	if err != nil {
		t.Fatalf("equations: %v\n%s", err, tr.Program.Render(fx.st))
	}
	eng := chaineval.New(sys, tr.Source, chaineval.Options{})
	res, err := eng.Query(tr.QueryPred, tr.BoundArg)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	rows := tr.DecodeAnswers(res.Answers)
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		row := make([]string, len(r))
		for i, s := range r {
			row[i] = fx.st.Name(s)
		}
		out = append(out, row)
	}
	sortRows(out)
	return out
}

// seminaiveRows answers the query with the general bottom-up baseline.
func seminaiveRows(t *testing.T, fx *fixture, query string) [][]string {
	t.Helper()
	q, err := parser.ParseQuery(query, fx.st)
	if err != nil {
		t.Fatal(err)
	}
	idb, _, err := bottomup.Seminaive(fx.prog, fx.store)
	if err != nil {
		t.Fatal(err)
	}
	rows := bottomup.Answer(idb, q)
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		row := make([]string, len(r))
		for i, s := range r {
			row[i] = fx.st.Name(s)
		}
		out = append(out, row)
	}
	sortRows(out)
	return out
}

func sortRows(rows [][]string) {
	sort.Slice(rows, func(i, j int) bool {
		return fmt.Sprint(rows[i]) < fmt.Sprint(rows[j])
	})
}

const flightSrc = `
cnx(S, DT, D, AT) :- flight(S, DT, D, AT).
cnx(S, DT, D, AT) :- flight(S, DT, D1, AT1), AT1 < DT1, is_deptime(DT1), cnx(D1, DT1, D, AT).

flight(hel, 900, sto, 1000).
flight(sto, 1100, par, 1300).
flight(par, 1400, nyc, 2000).
flight(sto, 930, osl, 1030).
flight(osl, 1200, cdg, 1500).
is_deptime(900). is_deptime(1100). is_deptime(1400).
is_deptime(930). is_deptime(1200).
`

// The flight program becomes the regular binary-chain program of the
// paper: bin-cnx^bbff = base-r1 ∪ in-r2 · bin-cnx^bbff, with out-r2 the
// identity (and therefore omitted).
func TestFlightTransformStructure(t *testing.T) {
	fx := load(t, flightSrc)
	q := parser.MustParseQuery("cnx(hel, 900, D, AT)", fx.st)
	tr, err := Transform(fx.prog, q, fx.store, false)
	if err != nil {
		t.Fatal(err)
	}
	if tr.QueryPred != "bin_cnx_bbff" {
		t.Fatalf("query pred = %s", tr.QueryPred)
	}
	if len(tr.Program.Rules) != 2 {
		t.Fatalf("bin program:\n%s", tr.Program.Render(fx.st))
	}
	// Recursive rule must have exactly in-r and bin (out omitted).
	rec := tr.Program.Rules[1]
	if len(rec.Body) != 2 {
		t.Fatalf("recursive rule body = %d literals: %s", len(rec.Body), rec.Render(fx.st))
	}
	sys, err := equations.Transform(tr.Program)
	if err != nil {
		t.Fatal(err)
	}
	if !sys.IsRegularFor(tr.QueryPred) {
		t.Fatalf("flight bin program should be regular:\n%s", sys.Render())
	}
	// Bound tuple is t(hel, 900).
	if fx.st.Name(tr.BoundArg) != "t(hel,900)" {
		t.Fatalf("bound arg = %s", fx.st.Name(tr.BoundArg))
	}
	if !reflect.DeepEqual(tr.FreeVars, []string{"D", "AT"}) {
		t.Fatalf("free vars = %v", tr.FreeVars)
	}
}

func TestFlightAnswersMatchSeminaive(t *testing.T) {
	fx := load(t, flightSrc)
	got := evalTransformed(t, fx, "cnx(hel, 900, D, AT)", false)
	want := seminaiveRows(t, fx, "cnx(hel, 900, D, AT)")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	// Must include the transitive connection hel→sto→par→nyc.
	found := false
	for _, r := range got {
		if r[0] == "nyc" {
			found = true
		}
	}
	if !found {
		t.Fatal("transitive connection to nyc missing")
	}
}

// Binding propagation: only facts reachable from the bound source may be
// consulted. Loading many flights from unrelated airports must not
// increase the facts consulted for the hel query (ablation A4's claim).
func TestBindingRestrictsFactsConsulted(t *testing.T) {
	fx := load(t, flightSrc)
	run := func() int64 {
		fx.store.Counters.Reset()
		evalTransformed(t, fx, "cnx(hel, 900, D, AT)", false)
		return fx.store.Counters.Snapshot().Retrieved
	}
	before := run()
	// Unconnected clique of flights.
	for i := 0; i < 50; i++ {
		fx.store.Insert("flight",
			fx.st.Intern(fmt.Sprintf("zz%d", i)), fx.st.Intern("500"),
			fx.st.Intern(fmt.Sprintf("zz%d", i+1)), fx.st.Intern("530"))
	}
	after := run()
	if after != before {
		t.Fatalf("facts consulted grew with irrelevant flights: %d -> %d", before, after)
	}
}

// Naughton's example: the bf/fb mutual recursion transforms into a
// nonregular binary-chain program; answers must match seminaive.
func TestNaughtonExampleAnswers(t *testing.T) {
	fx := load(t, `
p(X, Y) :- b0(X, Y).
p(X, Y) :- b1(X, Z), p(Y, Z).

b0(a, b). b0(c, d). b0(e, a).
b1(a, d). b1(b, d). b1(c, a). b1(e, b).
`)
	got := evalTransformed(t, fx, "p(a, Y)", false)
	want := seminaiveRows(t, fx, "p(a, Y)")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

// The paper's non-chain counterexample: with b1(a,b), b0(b,c) the correct
// answer to p(a,Y) is {b}; the unchecked transformation loses the
// connection between the head's free Y and the in group's Y and computes
// a superset. Transform must refuse it unless unsafe is set.
func TestNonChainCounterexample(t *testing.T) {
	fx := load(t, `
p(X, Y) :- b0(X, Y).
p(X, Y) :- b1(X, Y), p(Y, Z).

b1(a, b). b0(b, c).
`)
	q := parser.MustParseQuery("p(a, Y)", fx.st)
	if _, err := Transform(fx.prog, q, fx.store, false); err == nil {
		t.Fatal("non-chain program transformed without error")
	}
	// Unsafe mode reproduces the superset phenomenon.
	got := evalTransformed(t, fx, "p(a, Y)", true)
	want := seminaiveRows(t, fx, "p(a, Y)")
	if reflect.DeepEqual(got, want) {
		t.Fatalf("counterexample unexpectedly matched: got %v want %v", got, want)
	}
	if len(got) <= len(want) {
		t.Fatalf("expected a strict superset: got %v want %v", got, want)
	}
}

// sg(a, b) uses both bindings: the bin program's source tuple carries
// both constants and evaluation touches only the relevant region.
func TestSGBothBound(t *testing.T) {
	fx := load(t, `
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).

up(john, p1). up(ann, p1). flat(p1, p1).
down(p1, john). down(p1, ann).
`)
	got := evalTransformed(t, fx, "sg(john, ann)", false)
	if len(got) != 1 { // single empty row: the fact holds
		t.Fatalf("sg(john, ann) rows = %v", got)
	}
	got = evalTransformed(t, fx, "sg(john, p1)", false)
	if len(got) != 0 {
		t.Fatalf("sg(john, p1) rows = %v", got)
	}
}

// Property: on random chain-friendly programs (right-linear ternary
// reachability with side conditions), the Section 4 pipeline agrees with
// seminaive for random data.
func TestRandomTernaryAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := symtab.NewTable()
		res := parser.MustParse(`
path(X, C, Y) :- edge(X, C, Y).
path(X, C, Y) :- edge(X, C, Z), path(Z, C, Y).
`, st)
		store := edb.NewStore(st)
		nodes := 8
		colors := []string{"red", "blue"}
		for k := 0; k < 18; k++ {
			store.Insert("edge",
				st.Intern(fmt.Sprintf("n%d", rng.Intn(nodes))),
				st.Intern(colors[rng.Intn(2)]),
				st.Intern(fmt.Sprintf("n%d", rng.Intn(nodes))))
		}
		q := parser.MustParseQuery("path(n0, red, Y)", st)
		tr, err := Transform(res.Program, q, store, false)
		if err != nil {
			t.Logf("seed %d: transform: %v", seed, err)
			return false
		}
		sys, err := equations.Transform(tr.Program)
		if err != nil {
			t.Logf("seed %d: equations: %v", seed, err)
			return false
		}
		eng := chaineval.New(sys, tr.Source, chaineval.Options{})
		r, err := eng.Query(tr.QueryPred, tr.BoundArg)
		if err != nil {
			t.Logf("seed %d: engine: %v", seed, err)
			return false
		}
		gotRows := tr.DecodeAnswers(r.Answers)
		got := map[string]bool{}
		for _, row := range gotRows {
			got[st.Name(row[0])] = true
		}
		idb, _, err := bottomup.Seminaive(res.Program, store)
		if err != nil {
			return false
		}
		wantRows := bottomup.Answer(idb, q)
		if len(wantRows) != len(got) {
			t.Logf("seed %d: got %v want %v", seed, got, wantRows)
			return false
		}
		for _, row := range wantRows {
			if !got[st.Name(row[0])] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDescribe(t *testing.T) {
	fx := load(t, flightSrc)
	q := parser.MustParseQuery("cnx(hel, 900, D, AT)", fx.st)
	tr, err := Transform(fx.prog, q, fx.store, false)
	if err != nil {
		t.Fatal(err)
	}
	d := tr.Describe()
	if d == "" || !contains(d, "bin_cnx_bbff") {
		t.Fatalf("Describe = %q", d)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// FromAdorned on a hand-built adorned program exercises identity
// detection for in-r (i = 0 and X̄b == Z̄b).
func TestInIdentityOmitted(t *testing.T) {
	fx := load(t, `
q(X, Y) :- base(X, Y).
q(X, Y) :- q(X, Z), step(Z, Y).
base(a, b). step(b, c). step(c, d).
`)
	qy := parser.MustParseQuery("q(a, Y)", fx.st)
	ap, err := adorn.Adorn(fx.prog, qy)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := FromAdorned(ap, fx.store)
	if err != nil {
		t.Fatal(err)
	}
	// Recursive rule: q(X,Y) :- q(X,Z), step(Z,Y); in group empty and
	// Xb == Zb == (X) → in-r omitted; body = bin, out-r.
	var rec ast.Rule
	for _, r := range tr.Program.Rules {
		if len(r.Body) > 1 || (len(r.Body) == 1 && r.Body[0].Pred == "bin_q_bf") {
			rec = r
		}
	}
	foundIn := false
	for _, l := range rec.Body {
		if len(l.Pred) >= 3 && l.Pred[:3] == "in_" {
			foundIn = true
		}
	}
	if foundIn {
		t.Fatalf("identity in-r not omitted: %s", rec.Render(fx.st))
	}
	// End to end answers.
	got := evalTransformed(t, fx, "q(a, Y)", false)
	want := seminaiveRows(t, fx, "q(a, Y)")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}
