// Package binchain implements the Section 4 transformation of an adorned
// n-ary linear program into a binary-chain program over tuple terms.
//
// For every adorned predicate p^a it defines a binary predicate bin-p^a
// whose tuples are pairs (t(x̄^b), t(x̄^f)); for every adorned rule r it
// defines the nonrecursive binary predicates base-r, in-r and out-r, whose
// tuples are computed from joins of the rule's base literals. Following
// the paper, these relations are never precomputed: the evaluation
// algorithm retrieves their tuples "by demand", binding the first argument
// — whose components always carry bindings originating from the query —
// and joining the underlying extensional relations through indexes.
//
// The resulting binary-chain program is handed to the Lemma 1
// transformation and evaluated with the graph-traversal engine; by
// Theorem 7 its answers coincide with the original program's whenever the
// adorned program is a chain program.
package binchain

import (
	"fmt"
	"sync"

	"chainlog/internal/adorn"
	"chainlog/internal/ast"
	"chainlog/internal/bottomup"
	"chainlog/internal/chaineval"
	"chainlog/internal/edb"
	"chainlog/internal/symtab"
)

// Transformed is the output of Transform: a binary-chain program, a
// demand-driven source for its virtual base relations, and the query over
// it.
type Transformed struct {
	// Adorned is the adorned program the transformation was built from.
	Adorned *adorn.Program
	// Program is the generated binary-chain program over bin-p^a and the
	// virtual base predicates.
	Program *ast.Program
	// QueryPred is the bin predicate to query (bin-q^a).
	QueryPred string
	// BoundArg is the interned tuple term t(c̄) of the query's bound
	// constants (possibly the empty tuple).
	BoundArg symtab.Sym
	// FreeVars names the query's free variables in position order; each
	// answer tuple term decodes to values for these, in order.
	FreeVars []string
	// Source resolves the virtual base predicates by demand-driven joins
	// against the extensional store.
	Source chaineval.Source

	st       *symtab.Table
	base     *edb.Store
	numBound int
}

// NumBound returns the number of bound argument positions of the query
// the transformation was built for (the length of the t(c̄) tuple).
func (t *Transformed) NumBound() int { return t.numBound }

// RefreshFacts re-synchronizes the transformation's fact-derived state
// after a fact-only mutation of the base store. The transformation
// itself depends only on the binding pattern and the virtual join
// relations evaluate against the live store per probe; the single piece
// of cached fact state is the active domain used by unsafe-mode
// enumeration, which is invalidated here. The caller must exclude
// concurrent evaluations for the duration.
func (t *Transformed) RefreshFacts() {
	if vs, ok := t.Source.(*virtualSource); ok {
		vs.invalidateDomain()
	}
}

// Bind interns the tuple term t(c̄) for a fresh vector of bound-argument
// values, in query-literal position order. The transformation itself
// depends only on the query's binding pattern, so one Transformed may be
// reused — concurrently — for any number of bound-constant vectors; Bind
// supplies the per-query start term without redoing the transformation.
func (t *Transformed) Bind(bound []symtab.Sym) (symtab.Sym, error) {
	if len(bound) != t.numBound {
		return symtab.None, fmt.Errorf("binchain: got %d bound values, query pattern has %d", len(bound), t.numBound)
	}
	return t.st.InternTuple(bound), nil
}

// BinPredName returns the binary predicate name for an adorned predicate.
func BinPredName(p adorn.Pred) string { return "bin_" + p.Key() }

// Transform builds the binary-chain program for prog and query over the
// extensional store. It verifies the chain-program condition unless
// unsafe is set (the unsafe mode exists so tests can reproduce the
// paper's non-chain counterexample, where the transformed program
// computes a strict superset).
func Transform(prog *ast.Program, q ast.Query, base *edb.Store, unsafe bool) (*Transformed, error) {
	ap, err := adorn.Adorn(prog, q)
	if err != nil {
		return nil, err
	}
	if !unsafe {
		if err := ap.ChainCheck(); err != nil {
			return nil, err
		}
	}
	return FromAdorned(ap, base)
}

// FromAdorned builds the transformation from an already adorned program.
func FromAdorned(ap *adorn.Program, base *edb.Store) (*Transformed, error) {
	t := &Transformed{
		Adorned: ap,
		Program: &ast.Program{},
		st:      base.SymTab(),
		base:    base,
	}
	vs := &virtualSource{st: t.st, base: base, rels: make(map[string]*vrel)}
	t.Source = vs

	for _, r := range ap.Rules {
		binHead := BinPredName(r.HeadPred())
		headBound := adorn.BoundArgs(r.Head, r.HeadAdorn)
		headFree := adorn.FreeArgs(r.Head, r.HeadAdorn)

		if r.Derived == nil {
			// bin-p^a(U, V) :- base-r(U, V).
			name := "base_" + r.ID
			vs.rels[name] = &vrel{inArgs: headBound, outArgs: headFree, body: r.AllBody}
			t.Program.Rules = append(t.Program.Rules, ast.Rule{
				Head: ast.Atom(binHead, ast.V("U"), ast.V("V")),
				Body: []ast.Literal{ast.Atom(name, ast.V("U"), ast.V("V"))},
			})
			continue
		}

		dp, _ := r.DerivedPred()
		binBody := BinPredName(dp)
		derBound := adorn.BoundArgs(*r.Derived, r.DerivedAdorn)
		derFree := adorn.FreeArgs(*r.Derived, r.DerivedAdorn)

		// in-r(t(X̄^b), t(Z̄^b)) :- b1, ..., bi.   Omitted when it is the
		// identity rule in-r(t(X̄^b), t(X̄^b)) :- .
		inIdentity := len(r.In) == 0 && termSeqEqual(headBound, derBound)
		// out-r(t(Z̄^f), t(X̄^f)) :- b(i+1), ..., bn.  Omitted when identity.
		outIdentity := len(r.Out) == 0 && termSeqEqual(derFree, headFree)

		var body []ast.Literal
		prev := ast.V("U")
		if !inIdentity {
			name := "in_" + r.ID
			vs.rels[name] = &vrel{inArgs: headBound, outArgs: derBound, body: r.In}
			body = append(body, ast.Atom(name, prev, ast.V("U1")))
			prev = ast.V("U1")
		}
		var last ast.Term = ast.V("V")
		if !outIdentity {
			last = ast.V("V1")
		}
		body = append(body, ast.Atom(binBody, prev, last))
		if !outIdentity {
			name := "out_" + r.ID
			vs.rels[name] = &vrel{inArgs: derFree, outArgs: headFree, body: r.Out}
			body = append(body, ast.Atom(name, ast.V("V1"), ast.V("V")))
		}
		t.Program.Rules = append(t.Program.Rules, ast.Rule{
			Head: ast.Atom(binHead, ast.V("U"), ast.V("V")),
			Body: body,
		})
	}

	// The query literal of the transformed program:
	// bin-q^a(t(x̄^b), t(x̄^f)).
	t.QueryPred = BinPredName(ap.Query)
	var boundVals []symtab.Sym
	for _, a := range ap.QueryLit.Args {
		if !a.IsVar() {
			boundVals = append(boundVals, a.Const)
		} else {
			t.FreeVars = append(t.FreeVars, a.Var)
		}
	}
	t.numBound = len(boundVals)
	t.BoundArg = t.st.InternTuple(boundVals)
	return t, nil
}

// DecodeAnswer expands an answer tuple term into the values of the
// query's free variables, in position order.
func (t *Transformed) DecodeAnswer(s symtab.Sym) []symtab.Sym {
	return t.st.TupleElems(s)
}

// DecodeAnswers expands and filters a result set: rows are dropped when a
// repeated free variable in the query would require two different values.
func (t *Transformed) DecodeAnswers(syms []symtab.Sym) [][]symtab.Sym {
	var rows [][]symtab.Sym
	first := map[string]int{}
	for i, v := range t.FreeVars {
		if _, ok := first[v]; !ok {
			first[v] = i
		}
	}
	for _, s := range syms {
		row := t.DecodeAnswer(s)
		if len(row) != len(t.FreeVars) {
			continue
		}
		ok := true
		for i, v := range t.FreeVars {
			if row[first[v]] != row[i] {
				ok = false
				break
			}
		}
		if ok {
			rows = append(rows, row)
		}
	}
	return rows
}

func termSeqEqual(a, b []ast.Term) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].IsVar() != b[i].IsVar() {
			return false
		}
		if a[i].IsVar() {
			if a[i].Var != b[i].Var {
				return false
			}
		} else if a[i].Const != b[i].Const {
			return false
		}
	}
	return true
}

// vrel is a virtual binary relation over tuple terms: given bindings for
// inArgs (decoded from a tuple term), join body against the extensional
// store and project outArgs. Traversed backwards it binds outArgs and
// projects inArgs — joins are direction-agnostic.
type vrel struct {
	inArgs  []ast.Term
	outArgs []ast.Term
	body    []ast.Literal
}

type virtualSource struct {
	st   *symtab.Table
	base *edb.Store
	rels map[string]*vrel
	// domain caches the active domain, used to enumerate projection
	// variables the join leaves unbound (possible only for non-chain
	// programs evaluated in unsafe mode: the rule out-r(t(Z̄f), t(X̄f)) :-
	// ... may not bind all of X̄f, and declaratively such a variable
	// ranges over the whole domain — the paper's counterexample).
	// domainMu makes the lazy scan safe under concurrent evaluation; the
	// cache is dropped by RefreshFacts when the owning plan absorbs a
	// fact mutation, so it never outlives the facts it was scanned from.
	domainMu    sync.Mutex
	domain      []symtab.Sym
	domainValid bool
}

func (v *virtualSource) activeDomain() []symtab.Sym {
	v.domainMu.Lock()
	defer v.domainMu.Unlock()
	if !v.domainValid {
		set := map[symtab.Sym]bool{}
		for _, name := range v.base.Relations() {
			v.base.Relation(name).EachRaw(func(tuple []symtab.Sym) {
				for _, s := range tuple {
					set[s] = true
				}
			})
		}
		v.domain = v.domain[:0]
		for s := range set {
			v.domain = append(v.domain, s)
		}
		v.domainValid = true
	}
	return v.domain
}

// invalidateDomain drops the cached active domain; the next evaluation
// that needs it rescans the live store.
func (v *virtualSource) invalidateDomain() {
	v.domainMu.Lock()
	v.domainValid = false
	v.domainMu.Unlock()
}

// SymBound reports the symbol table's size so the evaluator can size its
// dense visited pages; tuple terms interned during evaluation grow the
// pages on demand.
func (v *virtualSource) SymBound() int { return v.st.Len() }

// ResolveRelation exposes the base store's relation for predicates the
// transformation did not virtualize, letting the evaluator probe them
// directly (see chaineval.RelationResolver). Virtual join relations
// resolve to nil and keep the by-name evaluation path.
func (v *virtualSource) ResolveRelation(pred string) *edb.Relation {
	if _, ok := v.rels[pred]; ok {
		return nil
	}
	return v.base.Relation(pred)
}

func (v *virtualSource) Successors(pred string, u symtab.Sym) []symtab.Sym {
	r, ok := v.rels[pred]
	if !ok {
		// Fall back to a real binary relation of the store, so mixed
		// programs keep working.
		return v.base.Relation(pred).Successors(u)
	}
	return v.eval(r, r.inArgs, r.outArgs, u)
}

func (v *virtualSource) Predecessors(pred string, u symtab.Sym) []symtab.Sym {
	r, ok := v.rels[pred]
	if !ok {
		return v.base.Relation(pred).Predecessors(u)
	}
	return v.eval(r, r.outArgs, r.inArgs, u)
}

// eval binds the "from" argument vector with the components of tuple term
// u, enumerates body substitutions, and projects the "to" vector as tuple
// terms.
func (v *virtualSource) eval(r *vrel, from, to []ast.Term, u symtab.Sym) []symtab.Sym {
	elems := v.st.TupleElems(u)
	if elems == nil || len(elems) != len(from) {
		return nil
	}
	subst := make(map[string]symtab.Sym, len(from))
	for i, a := range from {
		if a.IsVar() {
			if prev, ok := subst[a.Var]; ok && prev != elems[i] {
				return nil
			}
			subst[a.Var] = elems[i]
		} else if a.Const != elems[i] {
			return nil
		}
	}
	// Result lists are small in the common case: dedupe by linear scan
	// and switch to a map only past a threshold, so the demand-driven
	// joins driving the hot traversal avoid the per-call map allocation.
	var seen map[symtab.Sym]bool
	var out []symtab.Sym
	contains := func(ts symtab.Sym) bool {
		if seen != nil {
			return seen[ts]
		}
		if len(out) >= 32 {
			seen = make(map[symtab.Sym]bool, len(out)*2)
			for _, s := range out {
				seen[s] = true
			}
			return seen[ts]
		}
		for _, s := range out {
			if s == ts {
				return true
			}
		}
		return false
	}
	v.join(r.body, subst, func(s map[string]symtab.Sym) {
		vals := make([]symtab.Sym, len(to))
		unbound := -1
		for i, a := range to {
			if a.IsVar() {
				vals[i] = s[a.Var]
				if vals[i] == symtab.None {
					unbound = i
				}
			} else {
				vals[i] = a.Const
			}
		}
		emit := func(vs []symtab.Sym) {
			ts := v.st.InternTuple(vs)
			if !contains(ts) {
				if seen != nil {
					seen[ts] = true
				}
				out = append(out, ts)
			}
		}
		if unbound < 0 {
			emit(vals)
			return
		}
		// An unbound projection variable ranges over the active domain.
		// (Reachable only for non-chain programs in unsafe mode.)
		v.enumerate(vals, to, 0, emit)
	})
	return out
}

// enumerate expands every still-unbound position of vals over the active
// domain, calling emit for each completion.
func (v *virtualSource) enumerate(vals []symtab.Sym, to []ast.Term, i int, emit func([]symtab.Sym)) {
	if i == len(vals) {
		cp := make([]symtab.Sym, len(vals))
		copy(cp, vals)
		emit(cp)
		return
	}
	if vals[i] != symtab.None {
		v.enumerate(vals, to, i+1, emit)
		return
	}
	for _, d := range v.activeDomain() {
		vals[i] = d
		v.enumerate(vals, to, i+1, emit)
	}
	vals[i] = symtab.None
}

// join enumerates substitutions over base atoms and built-ins by greedy
// bound-first index nested loops, calling emit for each full solution.
func (v *virtualSource) join(body []ast.Literal, subst map[string]symtab.Sym, emit func(map[string]symtab.Sym)) {
	done := make([]bool, len(body))
	var step func()
	step = func() {
		next := -1
		bestBound := -1
		for i, l := range body {
			if done[i] {
				continue
			}
			if l.IsBuiltin() {
				ready := true
				for _, a := range l.Args {
					if a.IsVar() && subst[a.Var] == symtab.None {
						ready = false
						break
					}
				}
				if ready {
					next = i
					bestBound = 1 << 30
					break
				}
				continue
			}
			b := 0
			for _, a := range l.Args {
				if !a.IsVar() || subst[a.Var] != symtab.None {
					b++
				}
			}
			if b > bestBound {
				bestBound = b
				next = i
			}
		}
		if next == -1 {
			for i, l := range body {
				if !done[i] {
					if !l.IsBuiltin() || !v.evalBuiltin(l, subst) {
						return
					}
				}
			}
			emit(subst)
			return
		}
		l := body[next]
		done[next] = true
		defer func() { done[next] = false }()

		if l.IsBuiltin() {
			if v.evalBuiltin(l, subst) {
				step()
			}
			return
		}

		rel := v.base.Relation(l.Pred)
		if rel == nil {
			return
		}
		var mask uint32
		var bound []symtab.Sym
		for i, a := range l.Args {
			if a.IsVar() {
				if s := subst[a.Var]; s != symtab.None {
					mask |= 1 << uint(i)
					bound = append(bound, s)
				}
			} else {
				mask |= 1 << uint(i)
				bound = append(bound, a.Const)
			}
		}
		rel.MatchEach(mask, bound, func(tuple []symtab.Sym) {
			var assigned []string
			ok := true
			for i, a := range l.Args {
				if !a.IsVar() {
					continue
				}
				if s := subst[a.Var]; s != symtab.None {
					if s != tuple[i] {
						ok = false
						break
					}
					continue
				}
				subst[a.Var] = tuple[i]
				assigned = append(assigned, a.Var)
			}
			if ok {
				step()
			}
			for _, name := range assigned {
				delete(subst, name)
			}
		})
	}
	step()
}

func (v *virtualSource) evalBuiltin(l ast.Literal, subst map[string]symtab.Sym) bool {
	val := func(t ast.Term) symtab.Sym {
		if t.IsVar() {
			return subst[t.Var]
		}
		return t.Const
	}
	return bottomup.Compare(v.st, l.Op, val(l.Args[0]), val(l.Args[1]))
}

// Describe renders the transformed program and virtual relation
// definitions for golden tests and the CLI's -explain mode.
func (t *Transformed) Describe() string {
	s := t.Program.Render(t.st)
	s += fmt.Sprintf("query: %s(%s, V)\n", t.QueryPred, t.st.Name(t.BoundArg))
	return s
}
