package edb

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"chainlog/internal/symtab"
)

func newStore() (*Store, *symtab.Table) {
	st := symtab.NewTable()
	return NewStore(st), st
}

func TestInsertDedup(t *testing.T) {
	s, st := newStore()
	a, b := st.Intern("a"), st.Intern("b")
	s.Insert("edge", a, b)
	s.Insert("edge", a, b)
	if s.Relation("edge").Len() != 1 {
		t.Fatalf("dedup failed: %d", s.Relation("edge").Len())
	}
	s.Insert("edge", b, a)
	if s.Relation("edge").Len() != 2 {
		t.Fatal("distinct tuple rejected")
	}
	if s.Size() != 2 {
		t.Fatalf("Size = %d", s.Size())
	}
}

func TestSuccessorsPredecessors(t *testing.T) {
	s, st := newStore()
	a, b, c := st.Intern("a"), st.Intern("b"), st.Intern("c")
	s.Insert("edge", a, b)
	s.Insert("edge", a, c)
	s.Insert("edge", b, c)
	succ := s.Relation("edge").Successors(a)
	if len(succ) != 2 {
		t.Fatalf("Successors(a) = %v", succ)
	}
	pred := s.Relation("edge").Predecessors(c)
	if len(pred) != 2 {
		t.Fatalf("Predecessors(c) = %v", pred)
	}
	if got := s.Relation("edge").Successors(c); len(got) != 0 {
		t.Fatalf("Successors(c) = %v", got)
	}
	// Insert after adjacency build must be visible.
	s.Insert("edge", c, a)
	if got := s.Relation("edge").Successors(c); len(got) != 1 {
		t.Fatal("adjacency cache not extended on insert")
	}
	if got := s.Relation("edge").Predecessors(a); len(got) != 1 {
		t.Fatal("reverse adjacency cache not extended on insert")
	}
}

func TestNilRelationSafe(t *testing.T) {
	s, st := newStore()
	var r *Relation = s.Relation("ghost")
	if r.Len() != 0 {
		t.Fatal("nil relation Len")
	}
	if r.Successors(st.Intern("x")) != nil {
		t.Fatal("nil relation Successors")
	}
	if r.Match(0, nil) != nil {
		t.Fatal("nil relation Match")
	}
	r.Each(func([]symtab.Sym) { t.Fatal("nil relation Each visited") })
	if r.Contains([]symtab.Sym{}) {
		t.Fatal("nil relation Contains")
	}
}

func TestMatchPatterns(t *testing.T) {
	s, st := newStore()
	i := func(n string) symtab.Sym { return st.Intern(n) }
	// flight(src, dt, dst, at)
	s.Insert("flight", i("hel"), i("900"), i("sto"), i("1000"))
	s.Insert("flight", i("hel"), i("930"), i("osl"), i("1030"))
	s.Insert("flight", i("sto"), i("1100"), i("par"), i("1300"))

	r := s.Relation("flight")
	// Bind column 0.
	got := r.Match(1<<0, []symtab.Sym{i("hel")})
	if len(got) != 2 {
		t.Fatalf("Match col0=hel: %d rows", len(got))
	}
	// Bind columns 0 and 1.
	got = r.Match(1<<0|1<<1, []symtab.Sym{i("hel"), i("930")})
	if len(got) != 1 || st.Name(r.Tuple(int(got[0]))[2]) != "osl" {
		t.Fatalf("Match col0,1: %v", got)
	}
	// Unbound mask returns all.
	if got = r.Match(0, nil); len(got) != 3 {
		t.Fatalf("Match all: %d", len(got))
	}
	// Index extended by later inserts.
	s.Insert("flight", i("hel"), i("1200"), i("cdg"), i("1500"))
	if got = r.Match(1<<0, []symtab.Sym{i("hel")}); len(got) != 3 {
		t.Fatalf("Match after insert: %d", len(got))
	}
	// MatchEach materializes the same rows.
	n := 0
	r.MatchEach(1<<0, []symtab.Sym{i("hel")}, func(tuple []symtab.Sym) {
		if tuple[0] != i("hel") {
			t.Fatal("MatchEach returned wrong tuple")
		}
		n++
	})
	if n != 3 {
		t.Fatalf("MatchEach visited %d", n)
	}
}

func TestCountersAccumulate(t *testing.T) {
	s, st := newStore()
	a, b := st.Intern("a"), st.Intern("b")
	s.Insert("edge", a, b)
	s.Counters.Reset()
	s.Relation("edge").Successors(a)
	if s.Counters.Snapshot().Lookups != 1 || s.Counters.Snapshot().Retrieved != 1 {
		t.Fatalf("counters = %+v", s.Counters.Snapshot())
	}
	s.Relation("edge").Successors(b) // empty result still a lookup
	if s.Counters.Snapshot().Lookups != 2 || s.Counters.Snapshot().Retrieved != 1 {
		t.Fatalf("counters = %+v", s.Counters.Snapshot())
	}
}

func TestDomain(t *testing.T) {
	s, st := newStore()
	i := func(n string) symtab.Sym { return st.Intern(n) }
	s.Insert("edge", i("b"), i("c"))
	s.Insert("edge", i("a"), i("c"))
	d := s.Relation("edge").Domain(0)
	if len(d) != 2 || st.Name(d[0]) != "b" || st.Name(d[1]) != "a" {
		// sorted by Sym id: b interned first
		t.Fatalf("Domain = %v %v", st.Name(d[0]), st.Name(d[1]))
	}
	rg := s.Relation("edge").Domain(1)
	if len(rg) != 1 || st.Name(rg[0]) != "c" {
		t.Fatalf("Domain(1) = %v", rg)
	}
}

func TestClone(t *testing.T) {
	s, st := newStore()
	a, b := st.Intern("a"), st.Intern("b")
	s.Insert("edge", a, b)
	c := s.Clone()
	c.Insert("edge", b, a)
	if s.Relation("edge").Len() != 1 {
		t.Fatal("clone mutated original")
	}
	if c.Relation("edge").Len() != 2 {
		t.Fatal("clone missing insert")
	}
	if !c.Relation("edge").Contains([]symtab.Sym{a, b}) {
		t.Fatal("clone lost original tuple")
	}
	// Duplicate suppression carries over.
	c.Insert("edge", a, b)
	if c.Relation("edge").Len() != 2 {
		t.Fatal("clone lost dedup set")
	}
}

func TestZeroArityRelation(t *testing.T) {
	s, _ := newStore()
	s.Insert("ok")
	r := s.Relation("ok")
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	s.Insert("ok") // dedup of the empty tuple
	if r.Len() != 1 {
		t.Fatalf("Len after dup = %d", r.Len())
	}
	if !r.Contains(nil) {
		t.Fatal("Contains(empty) = false")
	}
	if got := r.Match(0, nil); len(got) != 1 {
		t.Fatalf("Match = %v", got)
	}
	visits := 0
	r.Each(func(tuple []symtab.Sym) {
		if len(tuple) != 0 {
			t.Fatalf("tuple = %v", tuple)
		}
		visits++
	})
	if visits != 1 {
		t.Fatalf("Each visited %d", visits)
	}
	c := s.Clone()
	if c.Relation("ok").Len() != 1 {
		t.Fatal("clone lost zero-arity tuple")
	}
}

func TestArityMismatchPanics(t *testing.T) {
	s, st := newStore()
	s.Insert("p", st.Intern("a"))
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	s.Insert("p", st.Intern("a"), st.Intern("b"))
}

// Property: Match(mask, bound) returns exactly the tuples a linear scan
// with the same filter would — for random relations, masks and probes.
func TestMatchAgainstScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, st := newStore()
		arity := rng.Intn(3) + 1
		domain := make([]symtab.Sym, 5)
		for i := range domain {
			domain[i] = st.Intern(fmt.Sprintf("c%d", i))
		}
		n := rng.Intn(40)
		for k := 0; k < n; k++ {
			tuple := make([]symtab.Sym, arity)
			for i := range tuple {
				tuple[i] = domain[rng.Intn(len(domain))]
			}
			s.Insert("r", tuple...)
		}
		r := s.Relation("r")
		if r == nil {
			return true
		}
		mask := uint32(rng.Intn(1 << arity))
		var bound []symtab.Sym
		for i := 0; i < arity; i++ {
			if mask&(1<<i) != 0 {
				bound = append(bound, domain[rng.Intn(len(domain))])
			}
		}
		got := map[int32]bool{}
		for _, idx := range r.Match(mask, bound) {
			got[idx] = true
		}
		// Linear scan.
		want := map[int32]bool{}
		for i := 0; i < r.Len(); i++ {
			tuple := r.Tuple(i)
			match := true
			bi := 0
			for c := 0; c < arity; c++ {
				if mask&(1<<c) != 0 {
					if tuple[c] != bound[bi] {
						match = false
					}
					bi++
				}
			}
			if match {
				want[int32(i)] = true
			}
		}
		if len(got) != len(want) {
			return false
		}
		for k := range want {
			if !got[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
