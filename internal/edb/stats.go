package edb

// Statistics accessors for the cost-based optimizer: the degree
// distribution of a binary relation read straight off its CSR offset
// array, and per-column distinct counts. These are the "nearly free"
// statistics — DegreeEach forces at most one CSR refresh (the same one
// the next probe would pay) and then walks the offset array without
// touching the neighbor lists.

import "chainlog/internal/symtab"

// Version returns the relation's mutation version: it advances on every
// insert, remove and compaction, so derived artifacts (statistics,
// caches) stamped with a version are exactly current while the version
// matches. A nil relation reports 0; versions start at 0 for an empty
// relation and InstallCSR-built frozen relations report their install
// version.
func (r *Relation) Version() uint64 {
	if r == nil {
		return 0
	}
	return r.ver
}

// DegreeEach calls f once for every key with at least one neighbor,
// with that key's adjacency degree: out-degrees over the forward CSR
// (key = column 0), in-degrees over the reverse CSR when inverse is
// set. Binary relations only. The walk synchronizes the CSR to the
// relation's current version first — the same refresh a probe would
// perform — so the reported degrees are exact regardless of pending
// overlay mutations, incremental merges, compactions, or a frozen
// (mmap-installed) relation whose CSR never goes stale. The caller must
// exclude writers, as with any read.
func (r *Relation) DegreeEach(inverse bool, f func(key symtab.Sym, degree int)) {
	if r == nil {
		return
	}
	if r.arity != 2 {
		panic("edb: DegreeEach on non-binary relation " + r.name)
	}
	p, keyCol, valCol := &r.fwd, 0, 1
	if inverse {
		p, keyCol, valCol = &r.rev, 1, 0
	}
	c := p.Load()
	if c == nil || c.ver != r.ver {
		c = r.refreshAdj(p, keyCol, valCol)
	}
	for u := 0; u+1 < len(c.off); u++ {
		if d := int(c.off[u+1] - c.off[u]); d > 0 {
			f(symtab.Sym(u), d)
		}
	}
}

// ColumnDistinct returns the number of distinct values in column col
// across live tuples. O(n); callers cache per Version.
func (r *Relation) ColumnDistinct(col int) int {
	if r == nil || col >= r.arity {
		return 0
	}
	seen := make(map[symtab.Sym]struct{}, r.Len())
	r.eachRaw(func(t []symtab.Sym) { seen[t[col]] = struct{}{} })
	return len(seen)
}
