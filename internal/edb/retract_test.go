package edb

import (
	"fmt"
	"testing"

	"chainlog/internal/symtab"
)

// scanAdj is the reference adjacency: a linear scan over the live
// tuples, in insertion order.
func scanAdj(r *Relation, keyCol, valCol int, key symtab.Sym) []symtab.Sym {
	var out []symtab.Sym
	r.EachRaw(func(t []symtab.Sym) {
		if t[keyCol] == key {
			out = append(out, t[valCol])
		}
	})
	return out
}

// TestRemoveBasics pins the Remove contract: removing a present tuple
// succeeds once, removing an absent / never-inserted / twice-removed
// tuple is a false no-op, and re-inserting after removal works.
func TestRemoveBasics(t *testing.T) {
	st := symtab.NewTable()
	s := NewStore(st)
	a, b, c := st.Intern("a"), st.Intern("b"), st.Intern("c")

	if s.Remove("edge", a, b) {
		t.Fatal("Remove on a relation that does not exist returned true")
	}
	s.Insert("edge", a, b)
	s.Insert("edge", b, c)
	if s.Remove("edge", a, c) {
		t.Fatal("Remove of a never-inserted tuple returned true")
	}
	if s.Remove("edge", a) {
		t.Fatal("Remove with the wrong arity returned true")
	}
	if !s.Remove("edge", a, b) {
		t.Fatal("Remove of a present tuple returned false")
	}
	if s.Remove("edge", a, b) {
		t.Fatal("second Remove of the same tuple returned true")
	}
	r := s.Relation("edge")
	if r.Len() != 1 || s.Size() != 1 {
		t.Fatalf("Len = %d, Size = %d after removal, want 1, 1", r.Len(), s.Size())
	}
	if r.Contains([]symtab.Sym{a, b}) {
		t.Fatal("removed tuple still Contains")
	}
	if got := r.Successors(a); len(got) != 0 {
		t.Fatalf("Successors(a) = %v after removing its only edge", got)
	}
	// Re-insert: the tuple is back and probes see it again.
	if !s.Insert("edge", a, b) {
		t.Fatal("re-insert after removal reported duplicate")
	}
	if got := r.Successors(a); len(got) != 1 || got[0] != b {
		t.Fatalf("Successors(a) = %v after re-insert", got)
	}
}

// TestOverlayMatchesRebuild is the CSR overlay-vs-rebuild equivalence
// property test: across random interleavings of inserts, removes and
// probes — sized to cross the adjTailMax refresh threshold and the
// compaction threshold many times — every adjacency answer must equal
// the naive scan over the live tuples, and a CSR built fresh from
// scratch must agree with the incrementally refreshed one.
func TestOverlayMatchesRebuild(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		st := symtab.NewTable()
		s := NewStore(st)
		syms := make([]symtab.Sym, 24)
		for i := range syms {
			syms[i] = st.Intern(fmt.Sprintf("n%d", i))
		}
		rng := uint64(seed)
		next := func(n int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int((rng >> 33) % uint64(n))
		}
		var live [][2]symtab.Sym
		for op := 0; op < 2500; op++ {
			switch next(10) {
			case 0, 1, 2, 3: // insert
				u, v := syms[next(len(syms))], syms[next(len(syms))]
				was := s.Relation("edge").Contains([]symtab.Sym{u, v})
				if s.Insert("edge", u, v) == was {
					t.Fatalf("seed %d op %d: Insert(%v,%v) newness disagrees with Contains", seed, op, u, v)
				}
				if !was {
					live = append(live, [2]symtab.Sym{u, v})
				}
			case 4, 5, 6: // remove (usually a live tuple)
				if len(live) == 0 {
					continue
				}
				i := next(len(live))
				u, v := live[i][0], live[i][1]
				if !s.Remove("edge", u, v) {
					t.Fatalf("seed %d op %d: Remove of live (%v,%v) failed", seed, op, u, v)
				}
				live = append(live[:i], live[i+1:]...)
			case 7: // remove a random (often absent) tuple
				u, v := syms[next(len(syms))], syms[next(len(syms))]
				want := false
				for _, p := range live {
					if p[0] == u && p[1] == v {
						want = true
						break
					}
				}
				if s.Remove("edge", u, v) != want {
					t.Fatalf("seed %d op %d: Remove(%v,%v) disagrees with mirror", seed, op, u, v)
				}
				if want {
					for i, p := range live {
						if p[0] == u && p[1] == v {
							live = append(live[:i], live[i+1:]...)
							break
						}
					}
				}
			default: // probe both directions
				r := s.Relation("edge")
				if r == nil {
					continue
				}
				u := syms[next(len(syms))]
				if got, want := r.Successors(u), scanAdj(r, 0, 1, u); !symsEqual(got, want) {
					t.Fatalf("seed %d op %d: Successors(%v) = %v, scan = %v", seed, op, u, got, want)
				}
				if got, want := r.Predecessors(u), scanAdj(r, 1, 0, u); !symsEqual(got, want) {
					t.Fatalf("seed %d op %d: Predecessors(%v) = %v, scan = %v", seed, op, u, got, want)
				}
			}
			if r := s.Relation("edge"); r != nil && r.Len() != len(live) {
				t.Fatalf("seed %d op %d: Len = %d, mirror has %d", seed, op, r.Len(), len(live))
			}
		}
		// Final sweep: the incrementally maintained CSR must agree with a
		// from-scratch build (a cloned store compacts and rebuilds cold).
		r := s.Relation("edge")
		fresh := s.Clone().Relation("edge")
		for _, u := range syms {
			if got, want := r.Successors(u), fresh.Successors(u); !symsEqual(got, want) {
				t.Fatalf("seed %d: incremental Successors(%v) = %v, fresh rebuild = %v", seed, u, got, want)
			}
			if got, want := r.Predecessors(u), fresh.Predecessors(u); !symsEqual(got, want) {
				t.Fatalf("seed %d: incremental Predecessors(%v) = %v, fresh rebuild = %v", seed, u, got, want)
			}
		}
	}
}

// TestMatchAfterRemove covers the n-ary index maintenance: buckets built
// before a removal drop the slot, buckets built after never see it, and
// the unindexed (mask 0) path skips tombstones.
func TestMatchAfterRemove(t *testing.T) {
	st := symtab.NewTable()
	s := NewStore(st)
	a, b, c := st.Intern("a"), st.Intern("b"), st.Intern("c")
	s.Insert("r", a, b, c)
	s.Insert("r", a, c, b)
	s.Insert("r", b, a, c)
	r := s.Relation("r")

	// Build the col-0 index, then remove through it.
	if got := r.Match(1, []symtab.Sym{a}); len(got) != 2 {
		t.Fatalf("Match(a,_,_) = %v", got)
	}
	s.Remove("r", a, b, c)
	if got := r.Match(1, []symtab.Sym{a}); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Match(a,_,_) after remove = %v", got)
	}
	// A mask built after the removal never sees the tombstone.
	if got := r.Match(2, []symtab.Sym{b}); len(got) != 0 {
		t.Fatalf("Match(_,b,_) found removed tuple: %v", got)
	}
	// Unindexed enumeration skips tombstones too.
	if got := r.Match(0, nil); len(got) != 2 {
		t.Fatalf("Match(0) = %v, want two live slots", got)
	}
	count := 0
	r.Each(func([]symtab.Sym) { count++ })
	if count != 2 {
		t.Fatalf("Each visited %d tuples, want 2", count)
	}
}

// TestCompaction drives enough churn through one relation that the flat
// storage compacts (more than adjTailMax tombstones, at least half the
// slots dead), and checks the relation stays exact through it.
func TestCompaction(t *testing.T) {
	st := symtab.NewTable()
	s := NewStore(st)
	syms := make([]symtab.Sym, 8)
	for i := range syms {
		syms[i] = st.Intern(fmt.Sprintf("c%d", i))
	}
	r := (*Relation)(nil)
	// Waves of assert-then-retract force slots to accumulate and die;
	// two survivors (with sources the waves never touch) must persist
	// across every compaction.
	s.Insert("edge", syms[6], syms[1])
	s.Insert("edge", syms[7], syms[2])
	for wave := 0; wave < 40; wave++ {
		for i := 0; i < 6; i++ {
			s.Insert("edge", syms[i], syms[(i+wave)%8])
		}
		for i := 0; i < 6; i++ {
			s.Remove("edge", syms[i], syms[(i+wave)%8])
		}
		r = s.Relation("edge")
		if r.Len() != 2 {
			t.Fatalf("wave %d: Len = %d, want the 2 survivors", wave, r.Len())
		}
		if got := r.Successors(syms[0]); !symsEqual(got, scanAdj(r, 0, 1, syms[0])) {
			t.Fatalf("wave %d: Successors = %v, scan = %v", wave, got, scanAdj(r, 0, 1, syms[0]))
		}
	}
	// The slot space must have been compacted: without compaction ~240
	// wave slots would remain; with it the relation stays near its live
	// size.
	if r.n > 3*adjTailMax {
		t.Fatalf("flat storage not compacted: %d slots for %d live tuples", r.n, r.Len())
	}
	if got := r.Successors(syms[6]); len(got) != 1 || got[0] != syms[1] {
		t.Fatalf("survivor lost after compaction: %v", got)
	}
	if got := r.Successors(syms[7]); len(got) != 1 || got[0] != syms[2] {
		t.Fatalf("survivor lost after compaction: %v", got)
	}
}

// TestZeroArityRemove covers propositional predicates: one empty tuple,
// removable and re-assertable.
func TestZeroArityRemove(t *testing.T) {
	st := symtab.NewTable()
	s := NewStore(st)
	s.Insert("flag")
	if s.Relation("flag").Len() != 1 {
		t.Fatal("flag not set")
	}
	if !s.Remove("flag") {
		t.Fatal("Remove(flag) failed")
	}
	if s.Relation("flag").Len() != 0 {
		t.Fatal("flag still set")
	}
	if !s.Insert("flag") {
		t.Fatal("re-insert of flag reported duplicate")
	}
	if s.Relation("flag").Len() != 1 {
		t.Fatal("flag not re-set")
	}
}
