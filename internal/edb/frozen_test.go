package edb

import (
	"slices"
	"testing"

	"chainlog/internal/symtab"
)

// buildFrozen constructs a frozen edge relation over a fresh store from
// an edge list given as name pairs.
func buildFrozen(t *testing.T, edges [][2]string) (*Store, *symtab.Table) {
	t.Helper()
	st := symtab.NewTable()
	s := NewStore(st)
	syms := make([][2]symtab.Sym, len(edges))
	for i, e := range edges {
		syms[i] = [2]symtab.Sym{st.Intern(e[0]), st.Intern(e[1])}
	}
	if _, err := s.BuildBinary("edge", syms); err != nil {
		t.Fatalf("BuildBinary: %v", err)
	}
	return s, st
}

// insertEqual builds the same relation through per-tuple Insert for
// comparison.
func insertEqual(st *symtab.Table, edges [][2]string) *Store {
	s := NewStore(st)
	for _, e := range edges {
		s.Insert("edge", st.Intern(e[0]), st.Intern(e[1]))
	}
	return s
}

var frozenEdges = [][2]string{
	{"a", "b"}, {"a", "c"}, {"b", "c"}, {"c", "d"},
	{"d", "a"}, {"a", "b"}, // duplicate, must dedup
	{"e", "e"}, // self loop
}

func TestFrozenMatchesInserted(t *testing.T) {
	s, st := buildFrozen(t, frozenEdges)
	ref := insertEqual(st, frozenEdges)
	fr, rr := s.Relation("edge"), ref.Relation("edge")
	if fr.Len() != rr.Len() {
		t.Fatalf("frozen Len %d, inserted Len %d", fr.Len(), rr.Len())
	}
	for _, nm := range []string{"a", "b", "c", "d", "e", "zzz"} {
		u := st.Intern(nm)
		got := append([]symtab.Sym(nil), fr.Successors(u)...)
		want := append([]symtab.Sym(nil), rr.Successors(u)...)
		slices.Sort(want)
		if !slices.Equal(got, want) {
			t.Errorf("Successors(%s): frozen %v, inserted %v", nm, got, want)
		}
		got = append([]symtab.Sym(nil), fr.Predecessors(u)...)
		want = append([]symtab.Sym(nil), rr.Predecessors(u)...)
		slices.Sort(want)
		if !slices.Equal(got, want) {
			t.Errorf("Predecessors(%s): frozen %v, inserted %v", nm, got, want)
		}
	}
	// Contains without thawing (binary search on the CSR).
	if !fr.Contains([]symtab.Sym{st.Intern("a"), st.Intern("c")}) {
		t.Error("Contains(a,c) = false")
	}
	if fr.Contains([]symtab.Sym{st.Intern("c"), st.Intern("a")}) {
		t.Error("Contains(c,a) = true")
	}
	if fr.thawed.Load() {
		t.Error("read-only probes thawed the relation")
	}
	// Each must visit every edge exactly once.
	seen := map[[2]symtab.Sym]int{}
	fr.EachRaw(func(tu []symtab.Sym) { seen[[2]symtab.Sym{tu[0], tu[1]}]++ })
	if len(seen) != fr.Len() {
		t.Errorf("EachRaw visited %d distinct edges, want %d", len(seen), fr.Len())
	}
	for e, n := range seen {
		if n != 1 {
			t.Errorf("EachRaw visited %v %d times", e, n)
		}
	}
	if !slices.Equal(fr.Domain(0), rr.Domain(0)) || !slices.Equal(fr.Domain(1), rr.Domain(1)) {
		t.Error("Domain mismatch between frozen and inserted")
	}
}

func TestFrozenThawOnMutation(t *testing.T) {
	s, st := buildFrozen(t, frozenEdges)
	r := s.Relation("edge")
	a, b, f := st.Intern("a"), st.Intern("b"), st.Intern("f")
	// Duplicate insert is a no-op even though it is what forces the thaw.
	if s.Insert("edge", a, b) {
		t.Error("duplicate insert reported new")
	}
	if !r.thawed.Load() {
		t.Error("mutation did not thaw")
	}
	if !s.Insert("edge", a, f) {
		t.Error("fresh insert reported duplicate")
	}
	if got := r.Successors(a); !slices.Contains(got, f) {
		t.Errorf("Successors(a) after insert = %v, missing f", got)
	}
	if !s.Remove("edge", a, b) {
		t.Error("remove of present edge failed")
	}
	if got := r.Successors(a); slices.Contains(got, b) {
		t.Errorf("Successors(a) after remove = %v, still has b", got)
	}
	if r.Len() != 6 { // 6 distinct originally, +1 insert, -1 remove
		t.Errorf("Len = %d, want 6", r.Len())
	}
	// Predecessor side must see the same mutations.
	if got := r.Predecessors(f); !slices.Equal(got, []symtab.Sym{a}) {
		t.Errorf("Predecessors(f) = %v, want [a]", got)
	}
}

func TestFrozenMatchAndTuple(t *testing.T) {
	s, st := buildFrozen(t, frozenEdges)
	r := s.Relation("edge")
	a := st.Intern("a")
	slots := r.Match(1<<0, []symtab.Sym{a})
	if len(slots) != 2 {
		t.Fatalf("Match(a,_) returned %d slots, want 2", len(slots))
	}
	for _, sl := range slots {
		if tu := r.Tuple(int(sl)); tu[0] != a {
			t.Errorf("slot %d tuple %v does not start with a", sl, tu)
		}
	}
}

func TestInstallFlatThawCopies(t *testing.T) {
	st := symtab.NewTable()
	s := NewStore(st)
	x, y, z := st.Intern("x"), st.Intern("y"), st.Intern("z")
	backing := []symtab.Sym{x, y, z, z, y, x}
	r, err := s.InstallFlat("t3", 3, 2, backing)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contains([]symtab.Sym{z, y, x}) || r.Contains([]symtab.Sym{y, y, y}) {
		t.Error("InstallFlat Contains wrong")
	}
	if !s.Remove("t3", x, y, z) {
		t.Error("remove failed")
	}
	// The original backing slice must be untouched by the mutation.
	if !slices.Equal(backing, []symtab.Sym{x, y, z, z, y, x}) {
		t.Errorf("mutation wrote through the aliased backing: %v", backing)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
	if _, err := s.InstallFlat("t3", 3, 0, nil); err == nil {
		t.Error("duplicate install accepted")
	}
	if _, err := s.InstallFlat("bin", 2, 0, nil); err == nil {
		t.Error("binary InstallFlat accepted")
	}
}
