// Package edb implements the extensional database: a fact store with
// lazily built hash indexes per binding pattern and retrieval counters.
//
// The paper's complexity statements charge time t per tuple retrieval and
// measure strategies by the number of "potentially relevant facts"
// consulted. The store therefore provides constant-expected-time indexed
// retrieval and counts every lookup and every tuple returned, so the
// benchmark harness can report retrieval counts alongside wall time.
//
// Memory layout: binary relations publish their adjacency as CSR
// (compressed sparse row) — one offset array indexed directly by the
// dense symtab.Sym plus one flat neighbor slice — so the hot
// Successors/Predecessors operations are two array loads and a slice,
// with zero per-key hashing or allocation. Retrieval counters are
// sharded across padded cache lines so concurrent queries do not
// serialize on a single pair of atomics.
package edb

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"chainlog/internal/symtab"
)

// Counters is a point-in-time copy of a store's access statistics.
type Counters struct {
	// Lookups is the number of index probes (Successors, Predecessors,
	// Match calls).
	Lookups int64
	// Retrieved is the total number of tuples returned by probes.
	Retrieved int64
}

// counterShards is the number of independently counted cache lines; a
// power of two so shard selection is a mask.
const counterShards = 16

// counterShard is one cache line of counters. The padding keeps shards
// on distinct lines so concurrent probes hashing to different shards do
// not false-share.
type counterShard struct {
	lookups   atomic.Int64
	retrieved atomic.Int64
	_         [48]byte
}

// CounterSet accumulates access statistics across a store's relations,
// sharded across padded cache lines. Increments are atomic and
// distributed by probe key, so concurrent readers of a store scale
// instead of contending on two global int64s. Read it with Snapshot.
type CounterSet struct {
	shards [counterShards]counterShard
}

// Reset zeroes the counters.
func (c *CounterSet) Reset() {
	for i := range c.shards {
		c.shards[i].lookups.Store(0)
		c.shards[i].retrieved.Store(0)
	}
}

// Snapshot returns an atomically read copy of the counters.
func (c *CounterSet) Snapshot() Counters {
	var out Counters
	for i := range c.shards {
		out.Lookups += c.shards[i].lookups.Load()
		out.Retrieved += c.shards[i].retrieved.Load()
	}
	return out
}

// count records one probe returning n tuples on the shard selected by h.
func (c *CounterSet) count(h uint32, n int64) {
	s := &c.shards[h&(counterShards-1)]
	s.lookups.Add(1)
	s.retrieved.Add(n)
}

// AddBatch folds a batch of probe statistics into the counters in two
// atomic adds. Evaluators that probe through the raw (uncounted)
// adjacency accessors accumulate lookups/retrieved in per-run locals and
// flush once per run through this, keeping per-probe atomics off their
// hot path while preserving exact totals. The shard is selected by h so
// concurrent flushers spread across cache lines.
func (c *CounterSet) AddBatch(h uint32, lookups, retrieved int64) {
	s := &c.shards[h&(counterShards-1)]
	s.lookups.Add(lookups)
	s.retrieved.Add(retrieved)
}

// Store holds all extensional relations of one database instance.
//
// Concurrency: read operations (Relation, Successors, Predecessors,
// Match, Each, Contains) are safe to call from many goroutines at once —
// lazily built indexes are constructed under a per-relation lock and
// counters are atomic. Mutations (Insert, SetStore on the owning DB)
// require external exclusion of all readers; the chainlog.DB write lock
// provides it.
type Store struct {
	// Counters is shared by every relation in the store.
	Counters CounterSet
	st       *symtab.Table
	rels     map[string]*Relation
	names    []string
}

// NewStore returns an empty store over the given symbol table.
func NewStore(st *symtab.Table) *Store {
	return &Store{st: st, rels: make(map[string]*Relation)}
}

// SymTab returns the store's symbol table.
func (s *Store) SymTab() *symtab.Table { return s.st }

// SymBound returns an exclusive upper bound on the Sym values the store
// can contain: the symbol table's current size. Evaluators use it to size
// dense visited pages exactly.
func (s *Store) SymBound() int { return s.st.Len() }

// CountersSnapshot returns an atomically read copy of the store's
// counters, safe to take while probes are in flight.
func (s *Store) CountersSnapshot() Counters { return s.Counters.Snapshot() }

// Insert adds a tuple to relation pred, creating the relation on first
// use. Inserting a duplicate tuple is a no-op. Insert panics if pred is
// reused with a different arity; programs are arity-checked before load.
func (s *Store) Insert(pred string, args ...symtab.Sym) {
	r, ok := s.rels[pred]
	if !ok {
		r = newRelation(s, pred, len(args))
		r.shard = uint32(len(s.names))
		s.rels[pred] = r
		s.names = append(s.names, pred)
	}
	r.insert(args)
}

// Relation returns the named relation, or nil if it has no facts.
func (s *Store) Relation(pred string) *Relation { return s.rels[pred] }

// Relations returns all relation names in insertion order.
func (s *Store) Relations() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// Size returns the total number of tuples in the store.
func (s *Store) Size() int {
	n := 0
	for _, r := range s.rels {
		n += r.Len()
	}
	return n
}

// Clone returns a deep copy of the store sharing the symbol table. Indexes
// are not copied; they rebuild lazily. Counters start at zero.
func (s *Store) Clone() *Store {
	out := NewStore(s.st)
	for _, name := range s.names {
		r := s.rels[name]
		nr := newRelation(out, name, r.arity)
		nr.shard = uint32(len(out.names))
		nr.flat = append([]symtab.Sym(nil), r.flat...)
		nr.n = r.n
		for k := range r.seen {
			nr.seen[k] = true
		}
		for k := range r.seenWide {
			if nr.seenWide == nil {
				nr.seenWide = make(map[string]bool, len(r.seenWide))
			}
			nr.seenWide[k] = true
		}
		out.rels[name] = nr
		out.names = append(out.names, name)
	}
	return out
}

// packedKeyCols is the widest tuple stored inline in the dedup map; wider
// tuples fall back to encoded string keys.
const packedKeyCols = 4

// packedKey is a tuple packed into a fixed array, usable as a map key
// without allocating. Relations have fixed arity, so zero-padding the
// unused columns is unambiguous within one relation.
type packedKey [packedKeyCols]symtab.Sym

func packKey(args []symtab.Sym) packedKey {
	var k packedKey
	copy(k[:], args)
	return k
}

// Relation is one stored relation. Tuples live in a flat slice with a
// stride of arity; indexes map encoded bound-column values to tuple
// offsets and are built on first use per binding pattern.
type Relation struct {
	store *Store
	name  string
	arity int
	shard uint32 // base shard for this relation's counter updates
	n     int    // tuple count (flat length / arity, except for arity 0)
	flat  []symtab.Sym
	// seen dedupes tuples of arity <= packedKeyCols without allocating;
	// seenWide handles wider tuples with encoded string keys.
	seen     map[packedKey]bool
	seenWide map[string]bool
	// mu guards lazy construction of the structures below; readers go
	// through the atomic pointers without locking, so concurrent probes
	// scale while a racing first build happens exactly once.
	mu sync.Mutex
	// indexes[mask] indexes the columns whose bit is set in mask. The
	// outer map is copy-on-write: adding a mask publishes a new map.
	indexes atomic.Pointer[map[uint32]map[string][]int32]
	// fwd and rev are the CSR adjacency of binary relations. They are
	// published copy-on-write: a probe that finds the CSR stale (built
	// from fewer tuples than the relation now holds) scans the small
	// insert tail linearly, and rebuilds/republishes under mu once the
	// tail passes adjTailMax — so bulk-load-then-query pays one O(m)
	// build with every later probe two array loads, and interleaved
	// insert/probe pays bounded tail scans with a rebuild at most once
	// per adjTailMax inserts.
	fwd atomic.Pointer[csr]
	rev atomic.Pointer[csr]
}

// csr is compressed-sparse-row adjacency: the neighbors of u are
// nbr[off[u]:off[u+1]]. off is indexed directly by the dense Sym value
// and sized to the largest key present at build time.
type csr struct {
	n   int // tuples covered by this build; != Relation.n means stale
	off []int32
	nbr []symtab.Sym
}

// lookup returns the neighbor slice of u, aliasing the CSR arrays.
func (c *csr) lookup(u symtab.Sym) []symtab.Sym {
	i := int(u)
	if i < 0 || i >= len(c.off)-1 {
		return nil
	}
	return c.nbr[c.off[i]:c.off[i+1]]
}

func newRelation(s *Store, name string, arity int) *Relation {
	r := &Relation{
		store: s,
		name:  name,
		arity: arity,
		seen:  make(map[packedKey]bool),
	}
	idx := make(map[uint32]map[string][]int32)
	r.indexes.Store(&idx)
	return r
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Counters returns the owning store's counter set, the target for
// batched statistics of raw (uncounted) probes.
func (r *Relation) Counters() *CounterSet { return &r.store.Counters }

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples. Zero-arity relations (propositional
// predicates) hold at most one tuple, the empty tuple.
func (r *Relation) Len() int {
	if r == nil {
		return 0
	}
	return r.n
}

func (r *Relation) insert(args []symtab.Sym) {
	if len(args) != r.arity {
		panic(fmt.Sprintf("edb: %s arity %d, got %d args", r.name, r.arity, len(args)))
	}
	if r.arity <= packedKeyCols {
		key := packKey(args)
		if r.seen[key] {
			return
		}
		r.seen[key] = true
	} else {
		key := encode(args)
		if r.seenWide == nil {
			r.seenWide = make(map[string]bool)
		}
		if r.seenWide[key] {
			return
		}
		r.seenWide[key] = true
	}
	r.flat = append(r.flat, args...)
	r.n++
	// Appending keeps existing index entries valid, so extend the n-ary
	// indexes in place; the CSR adjacency picks the new tuple up via the
	// probe-side tail scan and rebuilds lazily once the tail grows (its
	// build count no longer matches r.n). Mutation requires external
	// exclusion of readers (see Store doc), so updating the published
	// maps in place is safe here.
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := int32(r.n - 1)
	for mask, m := range *r.indexes.Load() {
		k := encodeMasked(args, mask)
		m[k] = append(m[k], idx)
	}
}

// Tuple returns the i-th tuple (aliasing internal storage; callers must
// not mutate it).
func (r *Relation) Tuple(i int) []symtab.Sym {
	return r.flat[i*r.arity : (i+1)*r.arity]
}

// Each calls f for every tuple. The slice passed to f aliases internal
// storage. Iteration counts as retrieving every tuple.
func (r *Relation) Each(f func(tuple []symtab.Sym)) {
	if r == nil {
		return
	}
	n := r.Len()
	r.store.Counters.count(r.shard, int64(n))
	for i := 0; i < n; i++ {
		f(r.Tuple(i))
	}
}

// Contains reports whether the tuple is present. The probe allocates
// nothing for tuples up to four columns wide.
func (r *Relation) Contains(args []symtab.Sym) bool {
	if r == nil {
		return false
	}
	var ok bool
	if len(args) <= packedKeyCols {
		ok = r.seen[packKey(args)]
	} else {
		ok = r.seenWide[encode(args)]
	}
	var h uint32
	if len(args) > 0 {
		h = uint32(args[0])
	}
	if ok {
		r.store.Counters.count(r.shard^h, 1)
		return true
	}
	r.store.Counters.count(r.shard^h, 0)
	return false
}

// adjTailMax bounds how many freshly inserted tuples a probe will scan
// linearly before forcing a CSR rebuild. Probes therefore pay at most a
// constant-size tail scan, and a rebuild happens at most once per
// adjTailMax inserts — interleaved insert/probe costs O(m/adjTailMax)
// amortized per insert instead of a full rebuild on every first probe
// after an insert.
const adjTailMax = 64

// lookupAdj answers one adjacency probe: the CSR prefix plus a linear
// scan of the insert tail the CSR does not cover yet. The common warm
// case (no tail) aliases the CSR and performs no allocation; a probe
// whose key matches in a pending tail returns a fresh combined slice.
func (r *Relation) lookupAdj(p *atomic.Pointer[csr], keyCol, valCol int, key symtab.Sym) []symtab.Sym {
	c := p.Load()
	if c == nil || r.n-c.n > adjTailMax {
		c = r.rebuildAdj(p, keyCol, valCol)
	}
	out := c.lookup(key)
	if c.n == r.n {
		return out
	}
	// Tail scan: tuples inserted since the CSR build, in insertion order
	// (mutation requires external exclusion of readers, so flat and r.n
	// are stable here).
	copied := false
	for i := c.n; i < r.n; i++ {
		t := r.Tuple(i)
		if t[keyCol] != key {
			continue
		}
		if !copied {
			out = append(append(make([]symtab.Sym, 0, len(out)+1), out...), t[valCol])
			copied = true
		} else {
			out = append(out, t[valCol])
		}
	}
	return out
}

// rebuildAdj builds the CSR for the given direction from the full tuple
// list and publishes it. keyCol indexes the CSR, valCol is the neighbor
// column.
func (r *Relation) rebuildAdj(p *atomic.Pointer[csr], keyCol, valCol int) *csr {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := p.Load(); c != nil && c.n == r.n {
		return c
	}
	n := r.n
	maxKey := -1
	for i := 0; i < n; i++ {
		if k := int(r.Tuple(i)[keyCol]); k > maxKey {
			maxKey = k
		}
	}
	c := &csr{n: n, off: make([]int32, maxKey+2), nbr: make([]symtab.Sym, n)}
	// Counting sort: tally per key, prefix-sum, then scatter.
	for i := 0; i < n; i++ {
		c.off[int(r.Tuple(i)[keyCol])+1]++
	}
	for i := 1; i < len(c.off); i++ {
		c.off[i] += c.off[i-1]
	}
	fill := make([]int32, maxKey+1)
	for i := 0; i < n; i++ {
		t := r.Tuple(i)
		k := int(t[keyCol])
		c.nbr[c.off[k]+fill[k]] = t[valCol]
		fill[k]++
	}
	p.Store(c)
	return c
}

// Successors returns all v with r(u, v). Binary relations only. The
// returned slice aliases the CSR adjacency; the warm path (CSR current,
// no pending insert tail) performs no allocation and no hashing.
func (r *Relation) Successors(u symtab.Sym) []symtab.Sym {
	if r == nil {
		return nil
	}
	if r.arity != 2 {
		panic("edb: Successors on non-binary relation " + r.name)
	}
	out := r.lookupAdj(&r.fwd, 0, 1, u)
	r.store.Counters.count(r.shard^uint32(u), int64(len(out)))
	return out
}

// Predecessors returns all u with r(u, v). Binary relations only.
func (r *Relation) Predecessors(v symtab.Sym) []symtab.Sym {
	if r == nil {
		return nil
	}
	if r.arity != 2 {
		panic("edb: Predecessors on non-binary relation " + r.name)
	}
	out := r.lookupAdj(&r.rev, 1, 0, v)
	r.store.Counters.count(r.shard^uint32(v), int64(len(out)))
	return out
}

// SuccessorsRaw is Successors without the retrieval-counter update: two
// array loads on the warm CSR path, no atomics. Callers that report
// retrieval statistics must count the probe themselves (see
// CounterSet.AddBatch); the chain evaluator batches its counts per run.
func (r *Relation) SuccessorsRaw(u symtab.Sym) []symtab.Sym {
	if r == nil {
		return nil
	}
	if r.arity != 2 {
		panic("edb: Successors on non-binary relation " + r.name)
	}
	return r.lookupAdj(&r.fwd, 0, 1, u)
}

// PredecessorsRaw is Predecessors without the retrieval-counter update.
func (r *Relation) PredecessorsRaw(v symtab.Sym) []symtab.Sym {
	if r == nil {
		return nil
	}
	if r.arity != 2 {
		panic("edb: Predecessors on non-binary relation " + r.name)
	}
	return r.lookupAdj(&r.rev, 1, 0, v)
}

// Domain returns the sorted distinct values of column col.
func (r *Relation) Domain(col int) []symtab.Sym {
	if r == nil {
		return nil
	}
	out := make([]symtab.Sym, 0, r.Len())
	for i := 0; i < r.Len(); i++ {
		out = append(out, r.Tuple(i)[col])
	}
	slices.Sort(out)
	return slices.Compact(out)
}

// Match returns the offsets of tuples whose columns selected by mask equal
// the corresponding entries of bound. bound must have one entry per set
// bit of mask, in column order. Use MatchTuples to materialize.
func (r *Relation) Match(mask uint32, bound []symtab.Sym) []int32 {
	if r == nil {
		return nil
	}
	var h uint32
	if len(bound) > 0 {
		h = uint32(bound[0])
	}
	if mask == 0 {
		n := r.Len()
		r.store.Counters.count(r.shard, int64(n))
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	idx, ok := (*r.indexes.Load())[mask]
	if !ok {
		r.mu.Lock()
		cur := *r.indexes.Load()
		if idx, ok = cur[mask]; !ok {
			idx = make(map[string][]int32)
			for i := 0; i < r.Len(); i++ {
				k := encodeMasked(r.Tuple(i), mask)
				idx[k] = append(idx[k], int32(i))
			}
			// Copy-on-write: publish a new outer map so lock-free
			// readers never observe a map under mutation.
			next := make(map[uint32]map[string][]int32, len(cur)+1)
			for m, v := range cur {
				next[m] = v
			}
			next[mask] = idx
			r.indexes.Store(&next)
		}
		r.mu.Unlock()
	}
	out := idx[encodeBound(bound)]
	r.store.Counters.count(r.shard^h, int64(len(out)))
	return out
}

// MatchEach calls f with every tuple matching (mask, bound).
func (r *Relation) MatchEach(mask uint32, bound []symtab.Sym, f func(tuple []symtab.Sym)) {
	for _, i := range r.Match(mask, bound) {
		f(r.Tuple(int(i)))
	}
}

func encode(args []symtab.Sym) string {
	b := make([]byte, 0, len(args)*5)
	for _, a := range args {
		v := uint32(a)
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ',')
	}
	return string(b)
}

// encodeMasked encodes the columns of tuple selected by mask, in column
// order; the result matches encodeBound of the same values.
func encodeMasked(tuple []symtab.Sym, mask uint32) string {
	b := make([]byte, 0, len(tuple)*5)
	for i, a := range tuple {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		v := uint32(a)
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ',')
	}
	return string(b)
}

func encodeBound(bound []symtab.Sym) string {
	b := make([]byte, 0, len(bound)*5)
	for _, a := range bound {
		v := uint32(a)
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ',')
	}
	return string(b)
}
