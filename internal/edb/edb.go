// Package edb implements the extensional database: a fact store with
// lazily built hash indexes per binding pattern and retrieval counters.
//
// The paper's complexity statements charge time t per tuple retrieval and
// measure strategies by the number of "potentially relevant facts"
// consulted. The store therefore provides constant-expected-time indexed
// retrieval and counts every lookup and every tuple returned, so the
// benchmark harness can report retrieval counts alongside wall time.
package edb

import (
	"fmt"
	"sort"

	"chainlog/internal/symtab"
)

// Counters accumulates access statistics across a store's relations.
type Counters struct {
	// Lookups is the number of index probes (Successors, Predecessors,
	// Match calls).
	Lookups int64
	// Retrieved is the total number of tuples returned by probes.
	Retrieved int64
}

// Reset zeroes the counters.
func (c *Counters) Reset() { *c = Counters{} }

// Store holds all extensional relations of one database instance.
type Store struct {
	st    *symtab.Table
	rels  map[string]*Relation
	names []string
	// Counters is shared by every relation in the store.
	Counters Counters
}

// NewStore returns an empty store over the given symbol table.
func NewStore(st *symtab.Table) *Store {
	return &Store{st: st, rels: make(map[string]*Relation)}
}

// SymTab returns the store's symbol table.
func (s *Store) SymTab() *symtab.Table { return s.st }

// Insert adds a tuple to relation pred, creating the relation on first
// use. Inserting a duplicate tuple is a no-op. Insert panics if pred is
// reused with a different arity; programs are arity-checked before load.
func (s *Store) Insert(pred string, args ...symtab.Sym) {
	r, ok := s.rels[pred]
	if !ok {
		r = newRelation(s, pred, len(args))
		s.rels[pred] = r
		s.names = append(s.names, pred)
	}
	r.insert(args)
}

// Relation returns the named relation, or nil if it has no facts.
func (s *Store) Relation(pred string) *Relation { return s.rels[pred] }

// Relations returns all relation names in insertion order.
func (s *Store) Relations() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// Size returns the total number of tuples in the store.
func (s *Store) Size() int {
	n := 0
	for _, r := range s.rels {
		n += r.Len()
	}
	return n
}

// Clone returns a deep copy of the store sharing the symbol table. Indexes
// are not copied; they rebuild lazily. Counters start at zero.
func (s *Store) Clone() *Store {
	out := NewStore(s.st)
	for _, name := range s.names {
		r := s.rels[name]
		nr := newRelation(out, name, r.arity)
		nr.flat = append([]symtab.Sym(nil), r.flat...)
		nr.n = r.n
		for k := range r.seen {
			nr.seen[k] = true
		}
		out.rels[name] = nr
		out.names = append(out.names, name)
	}
	return out
}

// Relation is one stored relation. Tuples live in a flat slice with a
// stride of arity; indexes map encoded bound-column values to tuple
// offsets and are built on first use per binding pattern.
type Relation struct {
	store *Store
	name  string
	arity int
	n     int // tuple count (flat length / arity, except for arity 0)
	flat  []symtab.Sym
	seen  map[string]bool
	// indexes[mask] indexes the columns whose bit is set in mask.
	indexes map[uint32]map[string][]int32
	// adjacency caches for the binary fast path
	fwd map[symtab.Sym][]symtab.Sym
	rev map[symtab.Sym][]symtab.Sym
}

func newRelation(s *Store, name string, arity int) *Relation {
	return &Relation{
		store:   s,
		name:    name,
		arity:   arity,
		seen:    make(map[string]bool),
		indexes: make(map[uint32]map[string][]int32),
	}
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples. Zero-arity relations (propositional
// predicates) hold at most one tuple, the empty tuple.
func (r *Relation) Len() int {
	if r == nil {
		return 0
	}
	return r.n
}

func (r *Relation) insert(args []symtab.Sym) {
	if len(args) != r.arity {
		panic(fmt.Sprintf("edb: %s arity %d, got %d args", r.name, r.arity, len(args)))
	}
	key := encode(args)
	if r.seen[key] {
		return
	}
	r.seen[key] = true
	r.flat = append(r.flat, args...)
	r.n++
	// Invalidate caches: appending keeps existing index entries valid,
	// so extend instead of dropping when already built.
	idx := int32(r.n - 1)
	for mask, m := range r.indexes {
		k := encodeMasked(args, mask)
		m[k] = append(m[k], idx)
	}
	if r.fwd != nil && r.arity == 2 {
		r.fwd[args[0]] = append(r.fwd[args[0]], args[1])
	}
	if r.rev != nil && r.arity == 2 {
		r.rev[args[1]] = append(r.rev[args[1]], args[0])
	}
}

// Tuple returns the i-th tuple (aliasing internal storage; callers must
// not mutate it).
func (r *Relation) Tuple(i int) []symtab.Sym {
	return r.flat[i*r.arity : (i+1)*r.arity]
}

// Each calls f for every tuple. The slice passed to f aliases internal
// storage. Iteration counts as retrieving every tuple.
func (r *Relation) Each(f func(tuple []symtab.Sym)) {
	if r == nil {
		return
	}
	r.store.Counters.Lookups++
	n := r.Len()
	r.store.Counters.Retrieved += int64(n)
	for i := 0; i < n; i++ {
		f(r.Tuple(i))
	}
}

// Contains reports whether the tuple is present.
func (r *Relation) Contains(args []symtab.Sym) bool {
	if r == nil {
		return false
	}
	r.store.Counters.Lookups++
	if r.seen[encode(args)] {
		r.store.Counters.Retrieved++
		return true
	}
	return false
}

// Successors returns all v with r(u, v). Binary relations only. The
// returned slice aliases the adjacency cache.
func (r *Relation) Successors(u symtab.Sym) []symtab.Sym {
	if r == nil {
		return nil
	}
	if r.arity != 2 {
		panic("edb: Successors on non-binary relation " + r.name)
	}
	if r.fwd == nil {
		r.fwd = make(map[symtab.Sym][]symtab.Sym)
		for i := 0; i < r.Len(); i++ {
			t := r.Tuple(i)
			r.fwd[t[0]] = append(r.fwd[t[0]], t[1])
		}
	}
	r.store.Counters.Lookups++
	out := r.fwd[u]
	r.store.Counters.Retrieved += int64(len(out))
	return out
}

// Predecessors returns all u with r(u, v). Binary relations only.
func (r *Relation) Predecessors(v symtab.Sym) []symtab.Sym {
	if r == nil {
		return nil
	}
	if r.arity != 2 {
		panic("edb: Predecessors on non-binary relation " + r.name)
	}
	if r.rev == nil {
		r.rev = make(map[symtab.Sym][]symtab.Sym)
		for i := 0; i < r.Len(); i++ {
			t := r.Tuple(i)
			r.rev[t[1]] = append(r.rev[t[1]], t[0])
		}
	}
	r.store.Counters.Lookups++
	out := r.rev[v]
	r.store.Counters.Retrieved += int64(len(out))
	return out
}

// Domain returns the sorted distinct values of column col.
func (r *Relation) Domain(col int) []symtab.Sym {
	if r == nil {
		return nil
	}
	set := make(map[symtab.Sym]bool)
	for i := 0; i < r.Len(); i++ {
		set[r.Tuple(i)[col]] = true
	}
	out := make([]symtab.Sym, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Match returns the offsets of tuples whose columns selected by mask equal
// the corresponding entries of bound. bound must have one entry per set
// bit of mask, in column order. Use MatchTuples to materialize.
func (r *Relation) Match(mask uint32, bound []symtab.Sym) []int32 {
	if r == nil {
		return nil
	}
	if mask == 0 {
		r.store.Counters.Lookups++
		n := r.Len()
		r.store.Counters.Retrieved += int64(n)
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	idx, ok := r.indexes[mask]
	if !ok {
		idx = make(map[string][]int32)
		for i := 0; i < r.Len(); i++ {
			k := encodeMasked(r.Tuple(i), mask)
			idx[k] = append(idx[k], int32(i))
		}
		r.indexes[mask] = idx
	}
	r.store.Counters.Lookups++
	out := idx[encodeBound(bound)]
	r.store.Counters.Retrieved += int64(len(out))
	return out
}

// MatchEach calls f with every tuple matching (mask, bound).
func (r *Relation) MatchEach(mask uint32, bound []symtab.Sym, f func(tuple []symtab.Sym)) {
	for _, i := range r.Match(mask, bound) {
		f(r.Tuple(int(i)))
	}
}

func encode(args []symtab.Sym) string {
	b := make([]byte, 0, len(args)*5)
	for _, a := range args {
		v := uint32(a)
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ',')
	}
	return string(b)
}

// encodeMasked encodes the columns of tuple selected by mask, in column
// order; the result matches encodeBound of the same values.
func encodeMasked(tuple []symtab.Sym, mask uint32) string {
	b := make([]byte, 0, len(tuple)*5)
	for i, a := range tuple {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		v := uint32(a)
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ',')
	}
	return string(b)
}

func encodeBound(bound []symtab.Sym) string {
	b := make([]byte, 0, len(bound)*5)
	for _, a := range bound {
		v := uint32(a)
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ',')
	}
	return string(b)
}
