// Package edb implements the extensional database: a fact store with
// lazily built hash indexes per binding pattern and retrieval counters.
//
// The paper's complexity statements charge time t per tuple retrieval and
// measure strategies by the number of "potentially relevant facts"
// consulted. The store therefore provides constant-expected-time indexed
// retrieval and counts every lookup and every tuple returned, so the
// benchmark harness can report retrieval counts alongside wall time.
//
// Memory layout: binary relations publish their adjacency as CSR
// (compressed sparse row) — one offset array indexed directly by the
// dense symtab.Sym plus one flat neighbor slice — so the hot
// Successors/Predecessors operations are two array loads and a slice,
// with zero per-key hashing or allocation. Retrieval counters are
// sharded across padded cache lines so concurrent queries do not
// serialize on a single pair of atomics.
//
// Mutation model: the store is live-updatable. Insert appends to the
// flat tuple storage (an append-only overlay over the published CSR);
// Remove tombstones a slot without moving any other tuple. Probes absorb
// both kinds of pending change — a bounded tail scan for fresh inserts,
// a liveness filter for fresh retractions — and once the pending-change
// window passes adjTailMax the CSR is refreshed incrementally by merging
// the previous arrays with the overlay instead of re-sorting the whole
// relation. When tombstones accumulate past half the slots the flat
// storage itself is compacted in place.
package edb

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"chainlog/internal/symtab"
)

// Counters is a point-in-time copy of a store's access statistics.
type Counters struct {
	// Lookups is the number of index probes (Successors, Predecessors,
	// Match calls).
	Lookups int64
	// Retrieved is the total number of tuples returned by probes.
	Retrieved int64
}

// counterShards is the number of independently counted cache lines; a
// power of two so shard selection is a mask.
const counterShards = 16

// counterShard is one cache line of counters. The padding keeps shards
// on distinct lines so concurrent probes hashing to different shards do
// not false-share.
type counterShard struct {
	lookups   atomic.Int64
	retrieved atomic.Int64
	_         [48]byte
}

// CounterSet accumulates access statistics across a store's relations,
// sharded across padded cache lines. Increments are atomic and
// distributed by probe key, so concurrent readers of a store scale
// instead of contending on two global int64s. Read it with Snapshot.
type CounterSet struct {
	shards [counterShards]counterShard
}

// Reset zeroes the counters.
func (c *CounterSet) Reset() {
	for i := range c.shards {
		c.shards[i].lookups.Store(0)
		c.shards[i].retrieved.Store(0)
	}
}

// Snapshot returns an atomically read copy of the counters.
func (c *CounterSet) Snapshot() Counters {
	var out Counters
	for i := range c.shards {
		out.Lookups += c.shards[i].lookups.Load()
		out.Retrieved += c.shards[i].retrieved.Load()
	}
	return out
}

// count records one probe returning n tuples on the shard selected by h.
func (c *CounterSet) count(h uint32, n int64) {
	s := &c.shards[h&(counterShards-1)]
	s.lookups.Add(1)
	s.retrieved.Add(n)
}

// AddBatch folds a batch of probe statistics into the counters in two
// atomic adds. Evaluators that probe through the raw (uncounted)
// adjacency accessors accumulate lookups/retrieved in per-run locals and
// flush once per run through this, keeping per-probe atomics off their
// hot path while preserving exact totals. The shard is selected by h so
// concurrent flushers spread across cache lines.
func (c *CounterSet) AddBatch(h uint32, lookups, retrieved int64) {
	s := &c.shards[h&(counterShards-1)]
	s.lookups.Add(lookups)
	s.retrieved.Add(retrieved)
}

// Store holds all extensional relations of one database instance.
//
// Concurrency: read operations (Relation, Successors, Predecessors,
// Match, Each, Contains) are safe to call from many goroutines at once —
// lazily built indexes are constructed under a per-relation lock and
// counters are atomic. Mutations (Insert, Remove, SetStore on the owning
// DB) require external exclusion of all readers; the chainlog.DB write
// lock provides it.
type Store struct {
	// Counters is shared by every relation in the store.
	Counters CounterSet
	st       *symtab.Table
	rels     map[string]*Relation
	names    []string
}

// NewStore returns an empty store over the given symbol table.
func NewStore(st *symtab.Table) *Store {
	return &Store{st: st, rels: make(map[string]*Relation)}
}

// SymTab returns the store's symbol table.
func (s *Store) SymTab() *symtab.Table { return s.st }

// SymBound returns an exclusive upper bound on the Sym values the store
// can contain: the symbol table's current size. Evaluators use it to size
// dense visited pages exactly.
func (s *Store) SymBound() int { return s.st.Len() }

// CountersSnapshot returns an atomically read copy of the store's
// counters, safe to take while probes are in flight.
func (s *Store) CountersSnapshot() Counters { return s.Counters.Snapshot() }

// Insert adds a tuple to relation pred, creating the relation on first
// use, and reports whether the tuple was new (inserting a duplicate is a
// no-op). Insert panics if pred is reused with a different arity;
// programs are arity-checked before load.
func (s *Store) Insert(pred string, args ...symtab.Sym) bool {
	r, ok := s.rels[pred]
	if !ok {
		r = newRelation(s, pred, len(args))
		r.shard = uint32(len(s.names))
		s.rels[pred] = r
		s.names = append(s.names, pred)
	}
	return r.insert(args)
}

// Remove deletes a tuple from relation pred and reports whether it was
// present. Removing from a relation that does not exist, or removing a
// tuple that was never inserted (or already removed), is a no-op
// returning false. The slot is tombstoned — no other tuple moves, so
// published index offsets stay valid — and the flat storage compacts
// itself once tombstones accumulate.
func (s *Store) Remove(pred string, args ...symtab.Sym) bool {
	r, ok := s.rels[pred]
	if !ok {
		return false
	}
	return r.remove(args)
}

// Relation returns the named relation, or nil if it was never inserted
// into.
func (s *Store) Relation(pred string) *Relation { return s.rels[pred] }

// Relations returns all relation names in insertion order.
func (s *Store) Relations() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// Size returns the total number of live tuples in the store.
func (s *Store) Size() int {
	n := 0
	for _, r := range s.rels {
		n += r.Len()
	}
	return n
}

// Clone returns a deep copy of the store sharing the symbol table. The
// copy is compacted: tombstoned slots are not carried over. Indexes are
// not copied; they rebuild lazily. Counters start at zero.
func (s *Store) Clone() *Store {
	out := NewStore(s.st)
	for _, name := range s.names {
		r := s.rels[name]
		nr := newRelation(out, name, r.arity)
		nr.shard = uint32(len(out.names))
		out.rels[name] = nr
		out.names = append(out.names, name)
		r.eachRaw(func(t []symtab.Sym) { nr.insert(t) })
	}
	return out
}

// packedKeyCols is the widest tuple stored inline in the dedup map; wider
// tuples fall back to encoded string keys.
const packedKeyCols = 4

// packedKey is a tuple packed into a fixed array, usable as a map key
// without allocating. Relations have fixed arity, so zero-padding the
// unused columns is unambiguous within one relation.
type packedKey [packedKeyCols]symtab.Sym

func packKey(args []symtab.Sym) packedKey {
	var k packedKey
	copy(k[:], args)
	return k
}

// Relation is one stored relation. Tuples live in a flat slice with a
// stride of arity; a slot is one tuple's position in that slice. Removal
// tombstones the slot (the dead bitset) instead of moving tuples, so
// index offsets and the published CSR stay valid; indexes map encoded
// bound-column values to live slots and are built on first use per
// binding pattern.
type Relation struct {
	store *Store
	name  string
	arity int
	shard uint32 // base shard for this relation's counter updates
	n     int    // slot count: tuples ever appended, live or dead
	live  int    // live tuple count (n minus tombstones)
	flat  []symtab.Sym
	// seen maps a live tuple to its slot, deduping inserts without
	// allocating for arity <= packedKeyCols; seenWide handles wider
	// tuples with encoded string keys. A removed tuple leaves the map, so
	// re-asserting it appends a fresh slot.
	seen     map[packedKey]int32
	seenWide map[string]int32
	// dead is the tombstone bitset over slots; nil until the first
	// removal. retracts counts removals monotonically and gen counts
	// flat-storage compactions — together with the slot count they let a
	// published CSR detect exactly which overlay work a probe owes.
	dead     []uint64
	retracts uint32
	gen      uint32
	// ver increments on every mutation and compaction: a CSR stamped
	// with the current ver is exactly up to date, making the warm-probe
	// staleness test one comparison.
	ver uint64
	// retractLog records recently removed binary tuples so overlay
	// probes and CSR refreshes filter only the keys a retract actually
	// touched; entry i is retract ordinal logBase+i. The log is trimmed
	// (logBase advances) past retractLogMax — a CSR older than the log
	// falls back to filtering every key through the liveness map.
	retractLog [][2]symtab.Sym
	logBase    uint32
	// frozen marks a relation constructed directly in CSR/flat layout
	// (snapshot open, bulk build — see frozen.go) whose flat storage and
	// dedup maps may not exist yet; thawed flips once they are
	// materialized and heap-owned. Ordinary relations are born thawed.
	// aliasedFlat marks flat storage borrowed from a read-only mapping,
	// which a thaw must copy before any in-place write.
	frozen      bool
	aliasedFlat bool
	thawed      atomic.Bool
	// mu guards lazy construction of the structures below; readers go
	// through the atomic pointers without locking, so concurrent probes
	// scale while a racing first build happens exactly once.
	mu sync.Mutex
	// indexes[mask] indexes the columns whose bit is set in mask. The
	// outer map is copy-on-write: adding a mask publishes a new map.
	indexes atomic.Pointer[map[uint32]map[string][]int32]
	// fwd and rev are the CSR adjacency of binary relations, published
	// copy-on-write. A probe that finds the CSR behind the relation
	// absorbs the difference as an overlay: freshly appended slots are
	// scanned linearly (append-only overlay) and freshly tombstoned
	// tuples are filtered out via the seen map. Once the pending window
	// passes adjTailMax the CSR is refreshed by merging the previous
	// arrays with the overlay — not re-sorted from scratch — and a
	// compaction (gen bump) forces the one full rebuild it needs.
	fwd atomic.Pointer[csr]
	rev atomic.Pointer[csr]
}

// csr is compressed-sparse-row adjacency: the neighbors of u are
// nbr[off[u]:off[u+1]]. off is indexed directly by the dense Sym value
// and sized to the largest key present at build time. slots, retracts
// and gen record the relation state the build covered; a mismatch with
// the live relation means the probe owes overlay work.
type csr struct {
	slots    int
	retracts uint32
	gen      uint32
	ver      uint64
	off      []int32
	nbr      []symtab.Sym
}

// lookup returns the neighbor slice of u, aliasing the CSR arrays.
func (c *csr) lookup(u symtab.Sym) []symtab.Sym {
	i := int(u)
	if i < 0 || i >= len(c.off)-1 {
		return nil
	}
	return c.nbr[c.off[i]:c.off[i+1]]
}

func newRelation(s *Store, name string, arity int) *Relation {
	r := &Relation{
		store: s,
		name:  name,
		arity: arity,
		seen:  make(map[packedKey]int32),
	}
	idx := make(map[uint32]map[string][]int32)
	r.indexes.Store(&idx)
	r.thawed.Store(true)
	return r
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Counters returns the owning store's counter set, the target for
// batched statistics of raw (uncounted) probes.
func (r *Relation) Counters() *CounterSet { return &r.store.Counters }

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of live tuples. Zero-arity relations
// (propositional predicates) hold at most one tuple, the empty tuple.
func (r *Relation) Len() int {
	if r == nil {
		return 0
	}
	return r.live
}

// isDead reports whether the slot is tombstoned.
func (r *Relation) isDead(slot int) bool {
	w := slot >> 6
	return w < len(r.dead) && r.dead[w]&(1<<(uint(slot)&63)) != 0
}

// markDead tombstones the slot.
func (r *Relation) markDead(slot int) {
	w := slot >> 6
	for w >= len(r.dead) {
		r.dead = append(r.dead, 0)
	}
	r.dead[w] |= 1 << (uint(slot) & 63)
}

func (r *Relation) insert(args []symtab.Sym) bool {
	if len(args) != r.arity {
		panic(fmt.Sprintf("edb: %s arity %d, got %d args", r.name, r.arity, len(args)))
	}
	r.ensureThawed()
	slot := int32(r.n)
	if r.arity <= packedKeyCols {
		key := packKey(args)
		if _, ok := r.seen[key]; ok {
			return false
		}
		r.seen[key] = slot
	} else {
		key := encode(args)
		if r.seenWide == nil {
			r.seenWide = make(map[string]int32)
		}
		if _, ok := r.seenWide[key]; ok {
			return false
		}
		r.seenWide[key] = slot
	}
	r.flat = append(r.flat, args...)
	r.n++
	r.live++
	r.ver++
	// Appending keeps existing index entries valid, so extend the n-ary
	// indexes in place; the CSR adjacency picks the new tuple up via the
	// probe-side tail scan and refreshes once the overlay grows (its
	// build state no longer matches the relation's). Mutation requires
	// external exclusion of readers (see Store doc), so updating the
	// published maps in place is safe here.
	r.mu.Lock()
	defer r.mu.Unlock()
	for mask, m := range *r.indexes.Load() {
		k := encodeMasked(args, mask)
		m[k] = append(m[k], slot)
	}
	return true
}

// remove tombstones the tuple and reports whether it was present. A
// wrong-arity tuple was by definition never inserted, so — unlike
// insert, which panics to catch load-time bugs — it is a false no-op.
func (r *Relation) remove(args []symtab.Sym) bool {
	if len(args) != r.arity {
		return false
	}
	r.ensureThawed()
	var slot int32
	if r.arity <= packedKeyCols {
		key := packKey(args)
		s, ok := r.seen[key]
		if !ok {
			return false
		}
		delete(r.seen, key)
		slot = s
	} else {
		key := encode(args)
		s, ok := r.seenWide[key]
		if !ok {
			return false
		}
		delete(r.seenWide, key)
		slot = s
	}
	r.markDead(int(slot))
	r.live--
	r.retracts++
	r.ver++
	if r.arity == 2 {
		r.retractLog = append(r.retractLog, [2]symtab.Sym{args[0], args[1]})
		if len(r.retractLog) > retractLogMax {
			drop := len(r.retractLog) / 2
			r.retractLog = append(r.retractLog[:0], r.retractLog[drop:]...)
			r.logBase += uint32(drop)
		}
	}
	// Drop the slot from every built index bucket; buckets hold live
	// slots only, so Match needs no per-offset liveness check.
	r.mu.Lock()
	for mask, m := range *r.indexes.Load() {
		k := encodeMasked(args, mask)
		bucket := m[k]
		for i, off := range bucket {
			if off == slot {
				m[k] = append(bucket[:i], bucket[i+1:]...)
				break
			}
		}
		if len(m[k]) == 0 {
			delete(m, k)
		}
	}
	r.mu.Unlock()
	r.maybeCompact()
	return true
}

// maybeCompact rewrites the flat storage once tombstones dominate it:
// more than adjTailMax dead slots and at least half the slots dead. The
// threshold keeps sustained assert/retract churn from growing the slot
// space without bound while staying rare enough that the incremental CSR
// refresh, not the post-compaction rebuild, is the common path.
func (r *Relation) maybeCompact() {
	dead := r.n - r.live
	if dead <= adjTailMax || dead*2 < r.n {
		return
	}
	stride := r.arity
	w := 0
	for i := 0; i < r.n; i++ {
		if r.isDead(i) {
			continue
		}
		if stride > 0 && w != i {
			copy(r.flat[w*stride:(w+1)*stride], r.flat[i*stride:(i+1)*stride])
		}
		w++
	}
	if stride > 0 {
		r.flat = r.flat[:w*stride]
	}
	r.n = w
	r.dead = nil
	r.gen++ // any published CSR is now addressed in pre-compaction slots
	r.ver++
	// A gen mismatch forces a full rebuild, so the log has no consumers.
	r.retractLog = nil
	r.logBase = r.retracts
	if r.arity <= packedKeyCols {
		clear(r.seen)
		for i := 0; i < r.n; i++ {
			r.seen[packKey(r.Tuple(i))] = int32(i)
		}
	} else {
		clear(r.seenWide)
		for i := 0; i < r.n; i++ {
			r.seenWide[encode(r.Tuple(i))] = int32(i)
		}
	}
	// Index buckets hold pre-compaction slots; drop them (they rebuild
	// lazily) and unpublish the CSRs so they do not pin the old arrays.
	r.mu.Lock()
	idx := make(map[uint32]map[string][]int32)
	r.indexes.Store(&idx)
	r.fwd.Store(nil)
	r.rev.Store(nil)
	r.mu.Unlock()
}

// Tuple returns the tuple in slot i (aliasing internal storage; callers
// must not mutate it). Slots include tombstoned tuples: code iterating a
// relation that may have seen removals must use Each/EachRaw, which skip
// them; direct slot loops are only exact for insert-only relations. On a
// frozen binary relation the first call materializes the flat storage
// (slot order is CSR order, so published slots stay valid).
func (r *Relation) Tuple(i int) []symtab.Sym {
	r.ensureThawed()
	return r.flat[i*r.arity : (i+1)*r.arity]
}

// Each calls f for every live tuple. The slice passed to f aliases
// internal storage. Iteration counts as retrieving every live tuple.
func (r *Relation) Each(f func(tuple []symtab.Sym)) {
	if r == nil {
		return
	}
	r.store.Counters.count(r.shard, int64(r.live))
	r.eachRaw(f)
}

// EachRaw calls f for every live tuple without touching the retrieval
// counters — the iteration surface for persistence dumps and domain
// scans whose cost the paper's accounting deliberately excludes.
func (r *Relation) EachRaw(f func(tuple []symtab.Sym)) {
	if r == nil {
		return
	}
	r.eachRaw(f)
}

func (r *Relation) eachRaw(f func(tuple []symtab.Sym)) {
	if r.frozen && !r.thawed.Load() && r.arity == 2 {
		r.eachRawFrozenBinary(f)
		return
	}
	if r.live == r.n {
		for i := 0; i < r.n; i++ {
			f(r.Tuple(i))
		}
		return
	}
	for i := 0; i < r.n; i++ {
		if !r.isDead(i) {
			f(r.Tuple(i))
		}
	}
}

// Contains reports whether the tuple is present. The probe allocates
// nothing for tuples up to four columns wide.
func (r *Relation) Contains(args []symtab.Sym) bool {
	if r == nil {
		return false
	}
	var ok bool
	if r.frozen && !r.thawed.Load() {
		if r.arity == 2 && len(args) == 2 {
			// Frozen binary: binary-search the sorted CSR neighbor
			// list — no dedup map exists yet and none is needed.
			ok = r.containsFrozenBinary(args)
			r.store.Counters.count(r.shard^uint32(args[0]), b2i(ok))
			return ok
		}
		r.ensureThawed()
	}
	if len(args) <= packedKeyCols {
		_, ok = r.seen[packKey(args)]
	} else {
		_, ok = r.seenWide[encode(args)]
	}
	var h uint32
	if len(args) > 0 {
		h = uint32(args[0])
	}
	if ok {
		r.store.Counters.count(r.shard^h, 1)
		return true
	}
	r.store.Counters.count(r.shard^h, 0)
	return false
}

// adjTailMax bounds how many pending mutations (appended slots plus
// tombstoned tuples) a probe will absorb as an overlay before forcing a
// CSR refresh. Probes therefore pay at most a constant-size overlay
// pass, and a refresh happens at most once per adjTailMax mutations —
// interleaved mutate/probe costs O(m/adjTailMax) amortized per mutation
// instead of a full rebuild on every first probe after a change.
const adjTailMax = 64

// retractLogMax bounds the recent-retraction log; large enough that
// every CSR refresh window (adjTailMax pending mutations) fits with
// slack, small enough to be negligible memory.
const retractLogMax = 256

// pendingDead returns the retractions applied since the CSR build, or
// ok=false when the log has been trimmed past the build point (callers
// then filter conservatively through the liveness map).
func (r *Relation) pendingDead(c *csr) ([][2]symtab.Sym, bool) {
	if c.retracts < r.logBase {
		return nil, false
	}
	return r.retractLog[c.retracts-r.logBase:], true
}

// lookupAdj answers one adjacency probe: the CSR prefix plus the overlay
// the CSR does not cover yet. The common warm case (no pending
// mutations) aliases the CSR and performs no allocation. An insert-only
// overlay aliases the prefix too, copying only when a pending tuple
// matches the key; an overlay containing retractions filters the prefix
// through the liveness map into a fresh slice.
func (r *Relation) lookupAdj(p *atomic.Pointer[csr], keyCol, valCol int, key symtab.Sym) []symtab.Sym {
	c := p.Load()
	if c != nil && c.ver == r.ver {
		return c.lookup(key) // warm: the CSR is exactly current
	}
	if c == nil || c.gen != r.gen || (r.n-c.slots)+int(r.retracts-c.retracts) > adjTailMax {
		c = r.refreshAdj(p, keyCol, valCol)
	}
	out := c.lookup(key)
	if c.slots == r.n && c.retracts == r.retracts {
		return out
	}
	keyClean := c.retracts == r.retracts
	if !keyClean {
		// Retractions pending — but the recent-retraction log usually
		// shows none of them touched this key, in which case the prefix
		// is still exact and only the tail needs scanning.
		if dead, ok := r.pendingDead(c); ok {
			keyClean = true
			for _, d := range dead {
				if d[keyCol] == key {
					keyClean = false
					break
				}
			}
		}
	}
	if keyClean {
		// Append-only overlay for this key: the prefix is fully live, so
		// alias it and scan the pending slots in insertion order
		// (mutation requires external exclusion of readers, so flat and
		// r.n are stable here). A tail slot retracted again would have
		// logged this key, so live-ness checks are only for safety.
		copied := false
		for i := c.slots; i < r.n; i++ {
			if r.isDead(i) {
				continue
			}
			t := r.Tuple(i)
			if t[keyCol] != key {
				continue
			}
			if !copied {
				out = append(append(make([]symtab.Sym, 0, len(out)+1), out...), t[valCol])
				copied = true
			} else {
				out = append(out, t[valCol])
			}
		}
		return out
	}
	// This key had retractions: keep a prefix neighbor only if its tuple
	// is still live and owned by the CSR build (a retract-then-reassert
	// moved it into the tail, which re-adds it below), then scan the
	// tail for live appends.
	res := make([]symtab.Sym, 0, len(out)+2)
	var tu [2]symtab.Sym
	for _, v := range out {
		tu[keyCol], tu[valCol] = key, v
		if s, ok := r.seen[packKey(tu[:])]; ok && int(s) < c.slots {
			res = append(res, v)
		}
	}
	for i := c.slots; i < r.n; i++ {
		if r.isDead(i) {
			continue
		}
		t := r.Tuple(i)
		if t[keyCol] == key {
			res = append(res, t[valCol])
		}
	}
	return res
}

// refreshAdj brings the published CSR up to date and returns it. When a
// same-generation CSR exists the refresh is incremental: the previous
// arrays are merged with the overlay (tombstoned tuples dropped, tail
// slots spliced in key order) without re-reading the whole flat storage.
// A first build — or one after a compaction invalidated slot addressing
// — falls back to the counting-sort construction over the live slots.
func (r *Relation) refreshAdj(p *atomic.Pointer[csr], keyCol, valCol int) *csr {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := p.Load(); c != nil && c.ver == r.ver {
		return c
	}
	var c *csr
	if old := p.Load(); old != nil && old.gen == r.gen {
		c = r.mergeAdjLocked(old, keyCol, valCol)
	} else {
		c = r.buildAdjLocked(keyCol, valCol)
	}
	p.Store(c)
	return c
}

// buildAdjLocked constructs the CSR from the full tuple list by counting
// sort, skipping tombstoned slots. keyCol indexes the CSR, valCol is the
// neighbor column. The caller holds r.mu.
func (r *Relation) buildAdjLocked(keyCol, valCol int) *csr {
	maxKey := -1
	for i := 0; i < r.n; i++ {
		if r.isDead(i) {
			continue
		}
		if k := int(r.Tuple(i)[keyCol]); k > maxKey {
			maxKey = k
		}
	}
	c := &csr{
		slots:    r.n,
		retracts: r.retracts,
		gen:      r.gen,
		ver:      r.ver,
		off:      make([]int32, maxKey+2),
		nbr:      make([]symtab.Sym, r.live),
	}
	// Counting sort: tally per key, prefix-sum, then scatter.
	for i := 0; i < r.n; i++ {
		if !r.isDead(i) {
			c.off[int(r.Tuple(i)[keyCol])+1]++
		}
	}
	for i := 1; i < len(c.off); i++ {
		c.off[i] += c.off[i-1]
	}
	fill := make([]int32, maxKey+1)
	for i := 0; i < r.n; i++ {
		if r.isDead(i) {
			continue
		}
		t := r.Tuple(i)
		k := int(t[keyCol])
		c.nbr[c.off[k]+fill[k]] = t[valCol]
		fill[k]++
	}
	return c
}

// mergeAdjLocked refreshes a same-generation CSR incrementally: walk the
// previous arrays once, dropping neighbors whose tuple was tombstoned,
// and splice the live tail slots in at their key — O(previous + tail)
// with no re-sort of the relation. The caller holds r.mu.
func (r *Relation) mergeAdjLocked(old *csr, keyCol, valCol int) *csr {
	type tailEnt struct {
		key symtab.Sym
		val symtab.Sym
	}
	maxKey := len(old.off) - 2
	var tail []tailEnt
	for i := old.slots; i < r.n; i++ {
		if r.isDead(i) {
			continue
		}
		t := r.Tuple(i)
		if k := int(t[keyCol]); k > maxKey {
			maxKey = k
		}
		tail = append(tail, tailEnt{t[keyCol], t[valCol]})
	}
	// Stable by key so insertion order within one key is preserved,
	// matching what a full rebuild would produce.
	slices.SortStableFunc(tail, func(a, b tailEnt) int { return int(a.key) - int(b.key) })
	c := &csr{
		slots:    r.n,
		retracts: r.retracts,
		gen:      r.gen,
		ver:      r.ver,
		off:      make([]int32, maxKey+2),
		nbr:      make([]symtab.Sym, 0, len(old.nbr)+len(tail)),
	}
	// Only keys the recent-retraction log names need the per-neighbor
	// liveness filter; every other key's neighbor list is copied
	// wholesale. With a trimmed log (affected == nil, filterAll) every
	// key filters — correct, just slower.
	filterAll := false
	var affected map[symtab.Sym]bool
	if old.retracts != r.retracts {
		if dead, ok := r.pendingDead(old); ok {
			affected = make(map[symtab.Sym]bool, len(dead))
			for _, d := range dead {
				affected[d[keyCol]] = true
			}
		} else {
			filterAll = true
		}
	}
	ti := 0
	var tu [2]symtab.Sym
	for u := 0; u <= maxKey; u++ {
		c.off[u] = int32(len(c.nbr))
		olds := old.lookup(symtab.Sym(u))
		if filterAll || affected[symtab.Sym(u)] {
			for _, v := range olds {
				tu[keyCol], tu[valCol] = symtab.Sym(u), v
				if s, ok := r.seen[packKey(tu[:])]; !ok || int(s) >= old.slots {
					continue
				}
				c.nbr = append(c.nbr, v)
			}
		} else {
			c.nbr = append(c.nbr, olds...)
		}
		for ti < len(tail) && int(tail[ti].key) == u {
			c.nbr = append(c.nbr, tail[ti].val)
			ti++
		}
	}
	c.off[maxKey+1] = int32(len(c.nbr))
	return c
}

// Successors returns all v with r(u, v). Binary relations only. The
// returned slice aliases the CSR adjacency; the warm path (CSR current,
// no pending overlay) performs no allocation and no hashing.
func (r *Relation) Successors(u symtab.Sym) []symtab.Sym {
	if r == nil {
		return nil
	}
	if r.arity != 2 {
		panic("edb: Successors on non-binary relation " + r.name)
	}
	out := r.lookupAdj(&r.fwd, 0, 1, u)
	r.store.Counters.count(r.shard^uint32(u), int64(len(out)))
	return out
}

// Predecessors returns all u with r(u, v). Binary relations only.
func (r *Relation) Predecessors(v symtab.Sym) []symtab.Sym {
	if r == nil {
		return nil
	}
	if r.arity != 2 {
		panic("edb: Predecessors on non-binary relation " + r.name)
	}
	out := r.lookupAdj(&r.rev, 1, 0, v)
	r.store.Counters.count(r.shard^uint32(v), int64(len(out)))
	return out
}

// SuccessorsRaw is Successors without the retrieval-counter update: two
// array loads on the warm CSR path, no atomics. Callers that report
// retrieval statistics must count the probe themselves (see
// CounterSet.AddBatch); the chain evaluator batches its counts per run.
func (r *Relation) SuccessorsRaw(u symtab.Sym) []symtab.Sym {
	if r == nil {
		return nil
	}
	if r.arity != 2 {
		panic("edb: Successors on non-binary relation " + r.name)
	}
	return r.lookupAdj(&r.fwd, 0, 1, u)
}

// PredecessorsRaw is Predecessors without the retrieval-counter update.
func (r *Relation) PredecessorsRaw(v symtab.Sym) []symtab.Sym {
	if r == nil {
		return nil
	}
	if r.arity != 2 {
		panic("edb: Predecessors on non-binary relation " + r.name)
	}
	return r.lookupAdj(&r.rev, 1, 0, v)
}

// Domain returns the sorted distinct values of column col across live
// tuples.
func (r *Relation) Domain(col int) []symtab.Sym {
	if r == nil {
		return nil
	}
	out := make([]symtab.Sym, 0, r.Len())
	r.eachRaw(func(t []symtab.Sym) { out = append(out, t[col]) })
	slices.Sort(out)
	return slices.Compact(out)
}

// Match returns the slots of live tuples whose columns selected by mask
// equal the corresponding entries of bound. bound must have one entry per
// set bit of mask, in column order. Use MatchTuples to materialize.
func (r *Relation) Match(mask uint32, bound []symtab.Sym) []int32 {
	if r == nil {
		return nil
	}
	// Building a bound-column index reads Tuple under r.mu; thaw first so
	// the frozen-relation materialization does not re-enter the lock.
	if mask != 0 {
		r.ensureThawed()
	}
	var h uint32
	if len(bound) > 0 {
		h = uint32(bound[0])
	}
	if mask == 0 {
		r.store.Counters.count(r.shard, int64(r.live))
		out := make([]int32, 0, r.live)
		for i := 0; i < r.n; i++ {
			if !r.isDead(i) {
				out = append(out, int32(i))
			}
		}
		return out
	}
	idx, ok := (*r.indexes.Load())[mask]
	if !ok {
		r.mu.Lock()
		cur := *r.indexes.Load()
		if idx, ok = cur[mask]; !ok {
			idx = make(map[string][]int32)
			for i := 0; i < r.n; i++ {
				if r.isDead(i) {
					continue
				}
				k := encodeMasked(r.Tuple(i), mask)
				idx[k] = append(idx[k], int32(i))
			}
			// Copy-on-write: publish a new outer map so lock-free
			// readers never observe a map under mutation.
			next := make(map[uint32]map[string][]int32, len(cur)+1)
			for m, v := range cur {
				next[m] = v
			}
			next[mask] = idx
			r.indexes.Store(&next)
		}
		r.mu.Unlock()
	}
	out := idx[encodeBound(bound)]
	r.store.Counters.count(r.shard^h, int64(len(out)))
	return out
}

// MatchEach calls f with every tuple matching (mask, bound).
func (r *Relation) MatchEach(mask uint32, bound []symtab.Sym, f func(tuple []symtab.Sym)) {
	if r == nil {
		return
	}
	if mask != 0 && r.arity == 2 && r.frozen && !r.thawed.Load() {
		// Frozen binary: a single bound column is a CSR lookup and both
		// bound is a Contains — serving them here keeps probes on a
		// mapped snapshot from paying the O(n) thaw + index build Match
		// would need to hand back slot numbers.
		var tu [2]symtab.Sym
		h := uint32(bound[0])
		switch mask {
		case 1 << 0:
			nbrs := r.fwd.Load().lookup(bound[0])
			r.store.Counters.count(r.shard^h, int64(len(nbrs)))
			for _, v := range nbrs {
				tu[0], tu[1] = bound[0], v
				f(tu[:])
			}
			return
		case 1 << 1:
			nbrs := r.rev.Load().lookup(bound[0])
			r.store.Counters.count(r.shard^h, int64(len(nbrs)))
			for _, u := range nbrs {
				tu[0], tu[1] = u, bound[0]
				f(tu[:])
			}
			return
		case 1<<0 | 1<<1:
			ok := r.containsFrozenBinary(bound)
			r.store.Counters.count(r.shard^h, b2i(ok))
			if ok {
				tu[0], tu[1] = bound[0], bound[1]
				f(tu[:])
			}
			return
		}
	}
	for _, i := range r.Match(mask, bound) {
		f(r.Tuple(int(i)))
	}
}

func encode(args []symtab.Sym) string {
	b := make([]byte, 0, len(args)*5)
	for _, a := range args {
		v := uint32(a)
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ',')
	}
	return string(b)
}

// encodeMasked encodes the columns of tuple selected by mask, in column
// order; the result matches encodeBound of the same values.
func encodeMasked(tuple []symtab.Sym, mask uint32) string {
	b := make([]byte, 0, len(tuple)*5)
	for i, a := range tuple {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		v := uint32(a)
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ',')
	}
	return string(b)
}

func encodeBound(bound []symtab.Sym) string {
	b := make([]byte, 0, len(bound)*5)
	for _, a := range bound {
		v := uint32(a)
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ',')
	}
	return string(b)
}
