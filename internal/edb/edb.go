// Package edb implements the extensional database: a fact store with
// lazily built hash indexes per binding pattern and retrieval counters.
//
// The paper's complexity statements charge time t per tuple retrieval and
// measure strategies by the number of "potentially relevant facts"
// consulted. The store therefore provides constant-expected-time indexed
// retrieval and counts every lookup and every tuple returned, so the
// benchmark harness can report retrieval counts alongside wall time.
package edb

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"chainlog/internal/symtab"
)

// Counters accumulates access statistics across a store's relations.
// Increments are atomic, so concurrent readers of a store may probe it
// simultaneously; read the fields directly only when no probes are in
// flight, or take an atomic Snapshot.
type Counters struct {
	// Lookups is the number of index probes (Successors, Predecessors,
	// Match calls).
	Lookups int64
	// Retrieved is the total number of tuples returned by probes.
	Retrieved int64
}

// Reset zeroes the counters.
func (c *Counters) Reset() {
	atomic.StoreInt64(&c.Lookups, 0)
	atomic.StoreInt64(&c.Retrieved, 0)
}

// Snapshot returns an atomically read copy of the counters.
func (c *Counters) Snapshot() Counters {
	return Counters{
		Lookups:   atomic.LoadInt64(&c.Lookups),
		Retrieved: atomic.LoadInt64(&c.Retrieved),
	}
}

// count records one probe returning n tuples.
func (c *Counters) count(n int64) {
	atomic.AddInt64(&c.Lookups, 1)
	atomic.AddInt64(&c.Retrieved, n)
}

// Store holds all extensional relations of one database instance.
//
// Concurrency: read operations (Relation, Successors, Predecessors,
// Match, Each, Contains) are safe to call from many goroutines at once —
// lazily built indexes are constructed under a per-relation lock and
// counters are atomic. Mutations (Insert, SetStore on the owning DB)
// require external exclusion of all readers; the chainlog.DB write lock
// provides it.
type Store struct {
	// Counters is shared by every relation in the store. It is the
	// first field so its int64s stay 8-byte aligned on 32-bit platforms
	// (sync/atomic requires it).
	Counters Counters
	st       *symtab.Table
	rels     map[string]*Relation
	names    []string
}

// NewStore returns an empty store over the given symbol table.
func NewStore(st *symtab.Table) *Store {
	return &Store{st: st, rels: make(map[string]*Relation)}
}

// SymTab returns the store's symbol table.
func (s *Store) SymTab() *symtab.Table { return s.st }

// CountersSnapshot returns an atomically read copy of the store's
// counters, safe to take while probes are in flight.
func (s *Store) CountersSnapshot() Counters { return s.Counters.Snapshot() }

// Insert adds a tuple to relation pred, creating the relation on first
// use. Inserting a duplicate tuple is a no-op. Insert panics if pred is
// reused with a different arity; programs are arity-checked before load.
func (s *Store) Insert(pred string, args ...symtab.Sym) {
	r, ok := s.rels[pred]
	if !ok {
		r = newRelation(s, pred, len(args))
		s.rels[pred] = r
		s.names = append(s.names, pred)
	}
	r.insert(args)
}

// Relation returns the named relation, or nil if it has no facts.
func (s *Store) Relation(pred string) *Relation { return s.rels[pred] }

// Relations returns all relation names in insertion order.
func (s *Store) Relations() []string {
	out := make([]string, len(s.names))
	copy(out, s.names)
	return out
}

// Size returns the total number of tuples in the store.
func (s *Store) Size() int {
	n := 0
	for _, r := range s.rels {
		n += r.Len()
	}
	return n
}

// Clone returns a deep copy of the store sharing the symbol table. Indexes
// are not copied; they rebuild lazily. Counters start at zero.
func (s *Store) Clone() *Store {
	out := NewStore(s.st)
	for _, name := range s.names {
		r := s.rels[name]
		nr := newRelation(out, name, r.arity)
		nr.flat = append([]symtab.Sym(nil), r.flat...)
		nr.n = r.n
		for k := range r.seen {
			nr.seen[k] = true
		}
		out.rels[name] = nr
		out.names = append(out.names, name)
	}
	return out
}

// Relation is one stored relation. Tuples live in a flat slice with a
// stride of arity; indexes map encoded bound-column values to tuple
// offsets and are built on first use per binding pattern.
type Relation struct {
	store *Store
	name  string
	arity int
	n     int // tuple count (flat length / arity, except for arity 0)
	flat  []symtab.Sym
	seen  map[string]bool
	// mu guards lazy construction of the structures below; readers go
	// through the atomic pointers without locking, so concurrent probes
	// scale while a racing first build happens exactly once.
	mu sync.Mutex
	// indexes[mask] indexes the columns whose bit is set in mask. The
	// outer map is copy-on-write: adding a mask publishes a new map.
	indexes atomic.Pointer[map[uint32]map[string][]int32]
	// adjacency caches for the binary fast path
	fwd atomic.Pointer[map[symtab.Sym][]symtab.Sym]
	rev atomic.Pointer[map[symtab.Sym][]symtab.Sym]
}

func newRelation(s *Store, name string, arity int) *Relation {
	r := &Relation{
		store: s,
		name:  name,
		arity: arity,
		seen:  make(map[string]bool),
	}
	idx := make(map[uint32]map[string][]int32)
	r.indexes.Store(&idx)
	return r
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples. Zero-arity relations (propositional
// predicates) hold at most one tuple, the empty tuple.
func (r *Relation) Len() int {
	if r == nil {
		return 0
	}
	return r.n
}

func (r *Relation) insert(args []symtab.Sym) {
	if len(args) != r.arity {
		panic(fmt.Sprintf("edb: %s arity %d, got %d args", r.name, r.arity, len(args)))
	}
	key := encode(args)
	if r.seen[key] {
		return
	}
	r.seen[key] = true
	r.flat = append(r.flat, args...)
	r.n++
	// Invalidate caches: appending keeps existing index entries valid,
	// so extend instead of dropping when already built. Mutation requires
	// external exclusion of readers (see Store doc), so updating the
	// published maps in place is safe here.
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := int32(r.n - 1)
	for mask, m := range *r.indexes.Load() {
		k := encodeMasked(args, mask)
		m[k] = append(m[k], idx)
	}
	if fwd := r.fwd.Load(); fwd != nil && r.arity == 2 {
		(*fwd)[args[0]] = append((*fwd)[args[0]], args[1])
	}
	if rev := r.rev.Load(); rev != nil && r.arity == 2 {
		(*rev)[args[1]] = append((*rev)[args[1]], args[0])
	}
}

// Tuple returns the i-th tuple (aliasing internal storage; callers must
// not mutate it).
func (r *Relation) Tuple(i int) []symtab.Sym {
	return r.flat[i*r.arity : (i+1)*r.arity]
}

// Each calls f for every tuple. The slice passed to f aliases internal
// storage. Iteration counts as retrieving every tuple.
func (r *Relation) Each(f func(tuple []symtab.Sym)) {
	if r == nil {
		return
	}
	n := r.Len()
	r.store.Counters.count(int64(n))
	for i := 0; i < n; i++ {
		f(r.Tuple(i))
	}
}

// Contains reports whether the tuple is present.
func (r *Relation) Contains(args []symtab.Sym) bool {
	if r == nil {
		return false
	}
	if r.seen[encode(args)] {
		r.store.Counters.count(1)
		return true
	}
	r.store.Counters.count(0)
	return false
}

// Successors returns all v with r(u, v). Binary relations only. The
// returned slice aliases the adjacency cache.
func (r *Relation) Successors(u symtab.Sym) []symtab.Sym {
	if r == nil {
		return nil
	}
	if r.arity != 2 {
		panic("edb: Successors on non-binary relation " + r.name)
	}
	fwd := r.fwd.Load()
	if fwd == nil {
		r.mu.Lock()
		if fwd = r.fwd.Load(); fwd == nil {
			m := make(map[symtab.Sym][]symtab.Sym)
			for i := 0; i < r.Len(); i++ {
				t := r.Tuple(i)
				m[t[0]] = append(m[t[0]], t[1])
			}
			fwd = &m
			r.fwd.Store(fwd)
		}
		r.mu.Unlock()
	}
	out := (*fwd)[u]
	r.store.Counters.count(int64(len(out)))
	return out
}

// Predecessors returns all u with r(u, v). Binary relations only.
func (r *Relation) Predecessors(v symtab.Sym) []symtab.Sym {
	if r == nil {
		return nil
	}
	if r.arity != 2 {
		panic("edb: Predecessors on non-binary relation " + r.name)
	}
	rev := r.rev.Load()
	if rev == nil {
		r.mu.Lock()
		if rev = r.rev.Load(); rev == nil {
			m := make(map[symtab.Sym][]symtab.Sym)
			for i := 0; i < r.Len(); i++ {
				t := r.Tuple(i)
				m[t[1]] = append(m[t[1]], t[0])
			}
			rev = &m
			r.rev.Store(rev)
		}
		r.mu.Unlock()
	}
	out := (*rev)[v]
	r.store.Counters.count(int64(len(out)))
	return out
}

// Domain returns the sorted distinct values of column col.
func (r *Relation) Domain(col int) []symtab.Sym {
	if r == nil {
		return nil
	}
	set := make(map[symtab.Sym]bool)
	for i := 0; i < r.Len(); i++ {
		set[r.Tuple(i)[col]] = true
	}
	out := make([]symtab.Sym, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Match returns the offsets of tuples whose columns selected by mask equal
// the corresponding entries of bound. bound must have one entry per set
// bit of mask, in column order. Use MatchTuples to materialize.
func (r *Relation) Match(mask uint32, bound []symtab.Sym) []int32 {
	if r == nil {
		return nil
	}
	if mask == 0 {
		n := r.Len()
		r.store.Counters.count(int64(n))
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	idx, ok := (*r.indexes.Load())[mask]
	if !ok {
		r.mu.Lock()
		cur := *r.indexes.Load()
		if idx, ok = cur[mask]; !ok {
			idx = make(map[string][]int32)
			for i := 0; i < r.Len(); i++ {
				k := encodeMasked(r.Tuple(i), mask)
				idx[k] = append(idx[k], int32(i))
			}
			// Copy-on-write: publish a new outer map so lock-free
			// readers never observe a map under mutation.
			next := make(map[uint32]map[string][]int32, len(cur)+1)
			for m, v := range cur {
				next[m] = v
			}
			next[mask] = idx
			r.indexes.Store(&next)
		}
		r.mu.Unlock()
	}
	out := idx[encodeBound(bound)]
	r.store.Counters.count(int64(len(out)))
	return out
}

// MatchEach calls f with every tuple matching (mask, bound).
func (r *Relation) MatchEach(mask uint32, bound []symtab.Sym, f func(tuple []symtab.Sym)) {
	for _, i := range r.Match(mask, bound) {
		f(r.Tuple(int(i)))
	}
}

func encode(args []symtab.Sym) string {
	b := make([]byte, 0, len(args)*5)
	for _, a := range args {
		v := uint32(a)
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ',')
	}
	return string(b)
}

// encodeMasked encodes the columns of tuple selected by mask, in column
// order; the result matches encodeBound of the same values.
func encodeMasked(tuple []symtab.Sym, mask uint32) string {
	b := make([]byte, 0, len(tuple)*5)
	for i, a := range tuple {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		v := uint32(a)
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ',')
	}
	return string(b)
}

func encodeBound(bound []symtab.Sym) string {
	b := make([]byte, 0, len(bound)*5)
	for _, a := range bound {
		v := uint32(a)
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ',')
	}
	return string(b)
}
