package edb

import (
	"fmt"
	"slices"

	"chainlog/internal/symtab"
)

// Frozen relations.
//
// A frozen relation is constructed directly in the published CSR layout —
// from a binary snapshot's mapped sections (InstallCSR / InstallFlat) or
// from a bulk edge list (BuildBinary) — without ever materializing the
// flat tuple storage or the dedup maps that per-tuple Insert maintains.
// The hot probes (Successors/Predecessors, Each, Domain, binary Contains)
// run straight off the CSR, so a store assembled from a snapshot answers
// chain queries with zero per-tuple load cost and, for mapped sections,
// zero copies.
//
// The first operation that genuinely needs the mutable representation —
// Insert, Remove, Match with bound columns, Tuple — thaws the relation:
// flat storage and the dedup map are built from the CSR once, O(n), and
// the relation behaves like any other from then on. Thawing never writes
// through an aliased (possibly read-only mapped) slice; it copies.

// installRelation registers a new, empty-slotted relation shell under
// pred, failing if the name is taken.
func (s *Store) installRelation(pred string, arity int) (*Relation, error) {
	if _, ok := s.rels[pred]; ok {
		return nil, fmt.Errorf("edb: relation %s already exists", pred)
	}
	r := &Relation{store: s, name: pred, arity: arity, frozen: true}
	idx := make(map[uint32]map[string][]int32)
	r.indexes.Store(&idx)
	r.shard = uint32(len(s.names))
	s.rels[pred] = r
	s.names = append(s.names, pred)
	return r, nil
}

// InstallCSR installs pred as a frozen binary relation backed directly by
// the given CSR arrays: the successors of u are fwdNbr[fwdOff[u]:fwdOff[u+1]]
// and the predecessors of v are revNbr[revOff[v]:revOff[v+1]]. The slices
// are aliased, not copied — they may point into a read-only file mapping
// and must stay valid for the relation's lifetime (a thaw or compaction
// stops referencing them but never writes them).
//
// Caller contract (validated by snapshot.Parse for mapped sections,
// guaranteed by construction in BuildBinary): both offset arrays are
// monotone and end at len(nbr), neighbor lists are sorted ascending
// within each key, and the relation holds no duplicate edges.
func (s *Store) InstallCSR(pred string, fwdOff []int32, fwdNbr []symtab.Sym, revOff []int32, revNbr []symtab.Sym) (*Relation, error) {
	if len(fwdNbr) != len(revNbr) {
		return nil, fmt.Errorf("edb: InstallCSR %s: forward holds %d edges, inverse %d", pred, len(fwdNbr), len(revNbr))
	}
	r, err := s.installRelation(pred, 2)
	if err != nil {
		return nil, err
	}
	n := len(fwdNbr)
	r.n, r.live = n, n
	r.ver = 1 // matches the published CSR stamps: probes stay on the warm path
	r.fwd.Store(&csr{slots: n, ver: 1, off: fwdOff, nbr: fwdNbr})
	r.rev.Store(&csr{slots: n, ver: 1, off: revOff, nbr: revNbr})
	return r, nil
}

// InstallFlat installs pred as a frozen non-binary relation whose tuple
// storage aliases flat (stride arity, count tuples). Like InstallCSR the
// slice may point into a read-only mapping; the first mutation copies it.
// Binary relations always install as CSR.
func (s *Store) InstallFlat(pred string, arity, count int, flat []symtab.Sym) (*Relation, error) {
	if arity == 2 {
		return nil, fmt.Errorf("edb: InstallFlat %s: binary relations install as CSR", pred)
	}
	if len(flat) != count*arity {
		return nil, fmt.Errorf("edb: InstallFlat %s: %d syms for %d tuples of arity %d", pred, len(flat), count, arity)
	}
	r, err := s.installRelation(pred, arity)
	if err != nil {
		return nil, err
	}
	r.n, r.live = count, count
	r.ver = 1
	r.flat = flat
	r.aliasedFlat = true
	return r, nil
}

// BuildBinary bulk-loads pred as a frozen binary relation from an edge
// list using two counting-sort passes — no per-tuple hashing, no dedup
// map. Duplicate edges are dropped (neighbor lists are sorted, so
// duplicates are adjacent). The edges slice is scratch the caller may
// discard; the built arrays are fresh heap memory.
func (s *Store) BuildBinary(pred string, edges [][2]symtab.Sym) (*Relation, error) {
	maxSym := -1
	for _, e := range edges {
		if int(e[0]) > maxSym {
			maxSym = int(e[0])
		}
		if int(e[1]) > maxSym {
			maxSym = int(e[1])
		}
	}
	// Forward: count per source, prefix-sum, scatter, then sort and
	// dedup each bucket in place (writes trail reads, so compacting into
	// the same array is safe).
	fwdOff := make([]int32, maxSym+2)
	for _, e := range edges {
		fwdOff[int(e[0])+1]++
	}
	for i := 1; i < len(fwdOff); i++ {
		fwdOff[i] += fwdOff[i-1]
	}
	fwdNbr := make([]symtab.Sym, len(edges))
	fill := make([]int32, maxSym+1)
	for _, e := range edges {
		u := int(e[0])
		fwdNbr[fwdOff[u]+fill[u]] = e[1]
		fill[u]++
	}
	w := int32(0)
	packedOff := make([]int32, maxSym+2)
	for u := 0; u <= maxSym; u++ {
		b := fwdNbr[fwdOff[u]:fwdOff[u+1]]
		slices.Sort(b)
		packedOff[u] = w
		last := symtab.Sym(-1)
		for _, v := range b {
			if v == last {
				continue
			}
			fwdNbr[w] = v
			last = v
			w++
		}
	}
	packedOff[maxSym+1] = w
	fwdOff = packedOff
	fwdNbr = fwdNbr[:w]
	// Inverse: counting sort of the deduped forward edges by target.
	// Scanning sources in ascending order makes each predecessor list
	// arrive already sorted, and dedup is done.
	revOff := make([]int32, maxSym+2)
	for _, v := range fwdNbr {
		revOff[int(v)+1]++
	}
	for i := 1; i < len(revOff); i++ {
		revOff[i] += revOff[i-1]
	}
	revNbr := make([]symtab.Sym, len(fwdNbr))
	fill = fill[:0]
	fill = append(fill, make([]int32, maxSym+1)...)
	for u := 0; u <= maxSym; u++ {
		for _, v := range fwdNbr[fwdOff[u]:fwdOff[u+1]] {
			revNbr[revOff[v]+fill[v]] = symtab.Sym(u)
			fill[v]++
		}
	}
	return s.InstallCSR(pred, fwdOff, fwdNbr, revOff, revNbr)
}

// thaw materializes the mutable representation of a frozen relation:
// heap-owned flat storage (decoded from the CSR for binary relations,
// copied out of the aliased slice otherwise) plus the dedup map. Safe to
// trigger from read paths — concurrent readers either still see the
// frozen fast paths (they have not observed thawed yet) or see the fully
// built state through the atomic flag's ordering; the build itself is
// serialized by r.mu.
func (r *Relation) thaw() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.thawed.Load() {
		return
	}
	if r.arity == 2 && r.flat == nil {
		c := r.fwd.Load()
		flat := make([]symtab.Sym, 0, 2*r.n)
		for u := 0; u+1 < len(c.off); u++ {
			for _, v := range c.nbr[c.off[u]:c.off[u+1]] {
				flat = append(flat, symtab.Sym(u), v)
			}
		}
		r.flat = flat
	} else if r.aliasedFlat {
		r.flat = append(make([]symtab.Sym, 0, len(r.flat)), r.flat...)
		r.aliasedFlat = false
	}
	if r.arity <= packedKeyCols {
		seen := make(map[packedKey]int32, r.n)
		for i := 0; i < r.n; i++ {
			var k packedKey
			copy(k[:], r.flat[i*r.arity:(i+1)*r.arity])
			seen[k] = int32(i)
		}
		r.seen = seen
	} else {
		wide := make(map[string]int32, r.n)
		for i := 0; i < r.n; i++ {
			wide[encode(r.flat[i*r.arity:(i+1)*r.arity])] = int32(i)
		}
		r.seenWide = wide
	}
	r.thawed.Store(true)
}

// ensureThawed is the guard mutating and slot-addressed operations go
// through; it is a single predictable branch for ordinary relations.
func (r *Relation) ensureThawed() {
	if r.frozen && !r.thawed.Load() {
		r.thaw()
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// containsFrozenBinary answers Contains on a frozen binary relation by
// binary search over the sorted CSR neighbor list — no map, no thaw.
func (r *Relation) containsFrozenBinary(args []symtab.Sym) bool {
	nbrs := r.fwd.Load().lookup(args[0])
	_, ok := slices.BinarySearch(nbrs, args[1])
	return ok
}

// eachRawFrozenBinary iterates a frozen binary relation straight off the
// CSR in key order, reusing one scratch tuple.
func (r *Relation) eachRawFrozenBinary(f func(tuple []symtab.Sym)) {
	c := r.fwd.Load()
	var tu [2]symtab.Sym
	for u := 0; u+1 < len(c.off); u++ {
		for _, v := range c.nbr[c.off[u]:c.off[u+1]] {
			tu[0], tu[1] = symtab.Sym(u), v
			f(tu[:])
		}
	}
}
