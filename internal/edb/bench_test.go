package edb

import (
	"fmt"
	"testing"

	"chainlog/internal/symtab"
)

// BenchmarkInsert measures tuple ingestion with dedup.
func BenchmarkInsert(b *testing.B) {
	st := symtab.NewTable()
	syms := make([]symtab.Sym, 1024)
	for i := range syms {
		syms[i] = st.Intern(fmt.Sprintf("c%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewStore(st)
		for k := 0; k < 1024; k++ {
			s.Insert("edge", syms[k], syms[(k*7+1)%1024])
		}
	}
	b.ReportMetric(1024, "tuples/op")
}

// BenchmarkSuccessors measures the binary adjacency fast path (the
// paper's per-tuple retrieval time t).
func BenchmarkSuccessors(b *testing.B) {
	st := symtab.NewTable()
	s := NewStore(st)
	syms := make([]symtab.Sym, 1024)
	for i := range syms {
		syms[i] = st.Intern(fmt.Sprintf("c%d", i))
	}
	for k := 0; k < 4096; k++ {
		s.Insert("edge", syms[k%1024], syms[(k*13+5)%1024])
	}
	r := s.Relation("edge")
	r.Successors(syms[0]) // build adjacency
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Successors(syms[i%1024])
	}
}

// BenchmarkMatch measures indexed n-ary pattern lookups (flight-style
// 4-column relation, two bound columns).
func BenchmarkMatch(b *testing.B) {
	st := symtab.NewTable()
	s := NewStore(st)
	syms := make([]symtab.Sym, 256)
	for i := range syms {
		syms[i] = st.Intern(fmt.Sprintf("c%d", i))
	}
	for k := 0; k < 8192; k++ {
		s.Insert("flight", syms[k%256], syms[(k*3)%256], syms[(k*5)%256], syms[(k*7)%256])
	}
	r := s.Relation("flight")
	mask := uint32(1<<0 | 1<<1)
	r.Match(mask, []symtab.Sym{syms[0], syms[0]}) // build index
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Match(mask, []symtab.Sym{syms[i%256], syms[(i*3)%256]})
	}
}

// BenchmarkAdjOverlay prices the incremental CSR maintenance against
// the strategy it replaced: /incremental lets probes absorb interleaved
// insert/remove churn as an overlay with a merge-based refresh every
// adjTailMax mutations, while /fullRebuild unpublishes the CSR after
// every mutation — the old "any change rebuilds the adjacency from
// scratch" cost model.
func BenchmarkAdjOverlay(b *testing.B) {
	build := func(b *testing.B, edges int) (*Store, []symtab.Sym, *Relation) {
		b.Helper()
		st := symtab.NewTable()
		s := NewStore(st)
		syms := make([]symtab.Sym, 1024)
		for i := range syms {
			syms[i] = st.Intern(fmt.Sprintf("c%d", i))
		}
		for k := 0; k < edges; k++ {
			s.Insert("edge", syms[k%len(syms)], syms[(k*13+5)%len(syms)])
		}
		r := s.Relation("edge")
		r.Successors(syms[0]) // publish the CSR
		return s, syms, r
	}
	const edges = 16384
	churn := func(b *testing.B, unpublish bool) {
		s, syms, r := build(b, edges)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Insert at even i, remove the same tuple at odd i.
			k := i / 2
			u, v := syms[(k*3+1)%len(syms)], syms[(k*7+2)%len(syms)]
			if i%2 == 0 {
				s.Insert("edge", u, v)
			} else {
				s.Remove("edge", u, v)
			}
			if unpublish {
				r.fwd.Store(nil)
			}
			r.SuccessorsRaw(syms[(i*31)%len(syms)])
		}
	}
	b.Run("incremental", func(b *testing.B) { churn(b, false) })
	b.Run("fullRebuild", func(b *testing.B) { churn(b, true) })
}
