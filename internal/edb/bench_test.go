package edb

import (
	"fmt"
	"testing"

	"chainlog/internal/symtab"
)

// BenchmarkInsert measures tuple ingestion with dedup.
func BenchmarkInsert(b *testing.B) {
	st := symtab.NewTable()
	syms := make([]symtab.Sym, 1024)
	for i := range syms {
		syms[i] = st.Intern(fmt.Sprintf("c%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewStore(st)
		for k := 0; k < 1024; k++ {
			s.Insert("edge", syms[k], syms[(k*7+1)%1024])
		}
	}
	b.ReportMetric(1024, "tuples/op")
}

// BenchmarkSuccessors measures the binary adjacency fast path (the
// paper's per-tuple retrieval time t).
func BenchmarkSuccessors(b *testing.B) {
	st := symtab.NewTable()
	s := NewStore(st)
	syms := make([]symtab.Sym, 1024)
	for i := range syms {
		syms[i] = st.Intern(fmt.Sprintf("c%d", i))
	}
	for k := 0; k < 4096; k++ {
		s.Insert("edge", syms[k%1024], syms[(k*13+5)%1024])
	}
	r := s.Relation("edge")
	r.Successors(syms[0]) // build adjacency
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Successors(syms[i%1024])
	}
}

// BenchmarkMatch measures indexed n-ary pattern lookups (flight-style
// 4-column relation, two bound columns).
func BenchmarkMatch(b *testing.B) {
	st := symtab.NewTable()
	s := NewStore(st)
	syms := make([]symtab.Sym, 256)
	for i := range syms {
		syms[i] = st.Intern(fmt.Sprintf("c%d", i))
	}
	for k := 0; k < 8192; k++ {
		s.Insert("flight", syms[k%256], syms[(k*3)%256], syms[(k*5)%256], syms[(k*7)%256])
	}
	r := s.Relation("flight")
	mask := uint32(1<<0 | 1<<1)
	r.Match(mask, []symtab.Sym{syms[0], syms[0]}) // build index
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Match(mask, []symtab.Sym{syms[i%256], syms[(i*3)%256]})
	}
}
