package edb

import (
	"fmt"
	"testing"

	"chainlog/internal/symtab"
)

// TestSuccessorsZeroAlloc pins the CSR fast path: once the adjacency is
// built, Successors and Predecessors are two array loads and must not
// allocate, per the acceptance criteria of the flat-memory refactor.
func TestSuccessorsZeroAlloc(t *testing.T) {
	st := symtab.NewTable()
	s := NewStore(st)
	syms := make([]symtab.Sym, 256)
	for i := range syms {
		syms[i] = st.Intern(fmt.Sprintf("c%d", i))
	}
	for k := 0; k < 1024; k++ {
		s.Insert("edge", syms[k%256], syms[(k*13+5)%256])
	}
	r := s.Relation("edge")
	r.Successors(syms[0])   // build fwd CSR
	r.Predecessors(syms[0]) // build rev CSR

	i := 0
	if got := testing.AllocsPerRun(1000, func() {
		r.Successors(syms[i%256])
		i++
	}); got != 0 {
		t.Fatalf("Successors allocates %.1f allocs/op on the warm path, want 0", got)
	}
	if got := testing.AllocsPerRun(1000, func() {
		r.Predecessors(syms[i%256])
		i++
	}); got != 0 {
		t.Fatalf("Predecessors allocates %.1f allocs/op on the warm path, want 0", got)
	}
}

// TestContainsZeroAlloc pins the packed-key dedup probe: tuples up to
// four columns must test membership without encoding a string.
func TestContainsZeroAlloc(t *testing.T) {
	st := symtab.NewTable()
	s := NewStore(st)
	a, b, c := st.Intern("a"), st.Intern("b"), st.Intern("c")
	s.Insert("edge", a, b)
	s.Insert("r3", a, b, c)
	probe2 := []symtab.Sym{a, b}
	probe3 := []symtab.Sym{a, b, c}
	r2, r3 := s.Relation("edge"), s.Relation("r3")
	if got := testing.AllocsPerRun(1000, func() {
		if !r2.Contains(probe2) || !r3.Contains(probe3) {
			t.Error("tuple missing")
		}
	}); got != 0 {
		t.Fatalf("Contains allocates %.1f allocs/op, want 0", got)
	}
}

// TestCSRMatchesScan is the CSR half of the equivalence property test:
// adjacency answers must be byte-identical (same multiset, same order
// guarantees aside) to a naive scan over the flat tuple storage, across
// random relations and interleaved inserts that force rebuilds.
func TestCSRMatchesScan(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		st := symtab.NewTable()
		s := NewStore(st)
		syms := make([]symtab.Sym, 40)
		for i := range syms {
			syms[i] = st.Intern(fmt.Sprintf("n%d", i))
		}
		rng := seed
		next := func() int {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := int(rng>>33) % len(syms)
			if v < 0 {
				v = -v
			}
			return v
		}
		r := (*Relation)(nil)
		for round := 0; round < 3; round++ {
			for k := 0; k < 60; k++ {
				s.Insert("edge", syms[next()], syms[next()])
			}
			r = s.Relation("edge")
			for _, u := range syms {
				var wantSucc, wantPred []symtab.Sym
				for i := 0; i < r.Len(); i++ {
					tup := r.Tuple(i)
					if tup[0] == u {
						wantSucc = append(wantSucc, tup[1])
					}
					if tup[1] == u {
						wantPred = append(wantPred, tup[0])
					}
				}
				gotSucc := r.Successors(u)
				gotPred := r.Predecessors(u)
				if !symsEqual(gotSucc, wantSucc) {
					t.Fatalf("seed %d round %d: Successors(%v) = %v, scan = %v", seed, round, u, gotSucc, wantSucc)
				}
				if !symsEqual(gotPred, wantPred) {
					t.Fatalf("seed %d round %d: Predecessors(%v) = %v, scan = %v", seed, round, u, gotPred, wantPred)
				}
			}
		}
	}
}

// symsEqual compares slices as multisets-in-insertion-order: the CSR
// build preserves tuple insertion order within one key, matching the
// scan exactly.
func symsEqual(a, b []symtab.Sym) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
