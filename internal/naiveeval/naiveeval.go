// Package naiveeval is the differential-testing oracle: a deliberately
// textbook semi-naive bottom-up Datalog evaluator with none of the
// machinery the engine under test relies on. It shares only the ast and
// symtab packages (the common vocabulary); facts live in plain slices
// with a map for dedup, joins are nested loops without indexes, and
// nothing is cached across calls. Every answer is recomputed from
// scratch, so an oracle query after any interleaving of asserts and
// retracts reflects exactly the current fact multiset — which is what
// makes it a trustworthy reference for the chain engine's live-update
// path (see the FuzzDifferential harness in the root package).
package naiveeval

import (
	"slices"
	"strconv"

	"chainlog/internal/ast"
	"chainlog/internal/symtab"
)

// Facts is the oracle's extensional state: per-predicate tuple lists
// with set semantics. The zero value is not ready; use NewFacts.
type Facts struct {
	tuples map[string][][]symtab.Sym
	seen   map[string]map[string]bool
}

// NewFacts returns an empty fact set.
func NewFacts() *Facts {
	return &Facts{
		tuples: make(map[string][][]symtab.Sym),
		seen:   make(map[string]map[string]bool),
	}
}

func factKey(args []symtab.Sym) string {
	b := make([]byte, 0, len(args)*5)
	for _, a := range args {
		v := uint32(a)
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), ',')
	}
	return string(b)
}

// Assert adds a fact, reporting whether it was new.
func (f *Facts) Assert(pred string, args []symtab.Sym) bool {
	s := f.seen[pred]
	if s == nil {
		s = make(map[string]bool)
		f.seen[pred] = s
	}
	k := factKey(args)
	if s[k] {
		return false
	}
	s[k] = true
	f.tuples[pred] = append(f.tuples[pred], slices.Clone(args))
	return true
}

// Retract removes a fact, reporting whether it was present.
func (f *Facts) Retract(pred string, args []symtab.Sym) bool {
	s := f.seen[pred]
	k := factKey(args)
	if s == nil || !s[k] {
		return false
	}
	delete(s, k)
	ts := f.tuples[pred]
	for i, t := range ts {
		if factKey(t) == k {
			f.tuples[pred] = append(ts[:i], ts[i+1:]...)
			break
		}
	}
	return true
}

// Len returns the total fact count.
func (f *Facts) Len() int {
	n := 0
	for _, ts := range f.tuples {
		n += len(ts)
	}
	return n
}

// Clone returns an independent copy.
func (f *Facts) Clone() *Facts {
	out := NewFacts()
	for pred, ts := range f.tuples {
		for _, t := range ts {
			out.Assert(pred, t)
		}
	}
	return out
}

// Eval computes the full fixpoint of prog over base by textbook
// semi-naive iteration and returns the derived facts (base facts
// excluded). Rule bodies are evaluated literal-by-literal in written
// order with plain nested-loop scans — no indexes, no ordering
// heuristics — so the evaluation shares no shortcuts with the engine it
// checks. Built-in comparisons are evaluated once all their variables
// are bound. Non-range-restricted rules derive nothing (an unbound head
// variable never binds), matching the engine's bottom-up baselines.
func Eval(prog *ast.Program, base *Facts, st *symtab.Table) *Facts {
	derived := prog.DerivedSet()
	idb := NewFacts()

	// lookup resolves a body literal's tuples: delta-pinned, derived, or
	// base, depending on the round.
	all := func(pred string) [][]symtab.Sym {
		if derived[pred] {
			return idb.tuples[pred]
		}
		return base.tuples[pred]
	}

	// evalRule enumerates substitutions for r's body, with literal
	// deltaIdx (when >= 0) ranging over delta instead of the full
	// relation, and calls emit for each instantiated head.
	evalRule := func(r ast.Rule, deltaIdx int, delta *Facts, emit func([]symtab.Sym)) {
		var step func(i int, subst map[string]symtab.Sym)
		step = func(i int, subst map[string]symtab.Sym) {
			if i == len(r.Body) {
				// Re-validate every built-in under the final substitution:
				// one whose variables were unbound when it was reached in
				// written order was deferred here (evaluating it early is
				// only a pruning optimization).
				for _, l := range r.Body {
					if !l.IsBuiltin() {
						continue
					}
					lv, lok := termVal(l.Args[0], subst)
					rv, rok := termVal(l.Args[1], subst)
					if !lok || !rok || !compare(st, l.Op, lv, rv) {
						return
					}
				}
				head := make([]symtab.Sym, len(r.Head.Args))
				for j, a := range r.Head.Args {
					if a.IsVar() {
						v, ok := subst[a.Var]
						if !ok {
							return
						}
						head[j] = v
					} else {
						head[j] = a.Const
					}
				}
				emit(head)
				return
			}
			l := r.Body[i]
			if l.IsBuiltin() {
				lv, lok := termVal(l.Args[0], subst)
				rv, rok := termVal(l.Args[1], subst)
				if lok && rok && !compare(st, l.Op, lv, rv) {
					return // prune; final validation happens at emit time
				}
				step(i+1, subst)
				return
			}
			var ts [][]symtab.Sym
			if i == deltaIdx {
				ts = delta.tuples[l.Pred]
			} else {
				ts = all(l.Pred)
			}
			for _, t := range ts {
				if len(t) != len(l.Args) {
					continue
				}
				bound := make([]string, 0, len(l.Args))
				ok := true
				for j, a := range l.Args {
					if a.IsVar() {
						if v, has := subst[a.Var]; has {
							if v != t[j] {
								ok = false
								break
							}
						} else {
							subst[a.Var] = t[j]
							bound = append(bound, a.Var)
						}
					} else if a.Const != t[j] {
						ok = false
						break
					}
				}
				if ok {
					step(i+1, subst)
				}
				for _, v := range bound {
					delete(subst, v)
				}
			}
		}
		step(0, make(map[string]symtab.Sym))
	}

	// Round 0: rules without derived body literals.
	delta := NewFacts()
	for _, r := range prog.Rules {
		hasDerived := false
		for _, l := range r.Body {
			if !l.IsBuiltin() && derived[l.Pred] {
				hasDerived = true
				break
			}
		}
		if hasDerived {
			continue
		}
		evalRule(r, -1, nil, func(head []symtab.Sym) {
			if idb.Assert(r.Head.Pred, head) {
				delta.Assert(r.Head.Pred, head)
			}
		})
	}
	for delta.Len() > 0 {
		next := NewFacts()
		for _, r := range prog.Rules {
			for j, l := range r.Body {
				if l.IsBuiltin() || !derived[l.Pred] {
					continue
				}
				if len(delta.tuples[l.Pred]) == 0 {
					continue
				}
				evalRule(r, j, delta, func(head []symtab.Sym) {
					if idb.Assert(r.Head.Pred, head) {
						next.Assert(r.Head.Pred, head)
					}
				})
			}
		}
		delta = next
	}
	return idb
}

// termVal resolves a term under a substitution.
func termVal(t ast.Term, subst map[string]symtab.Sym) (symtab.Sym, bool) {
	if t.IsVar() {
		v, ok := subst[t.Var]
		return v, ok
	}
	return t.Const, true
}

// compare mirrors the engine's built-in semantics: numeric when both
// constants render as integers, lexicographic otherwise. Implemented
// locally so the oracle does not import the engine's evaluators.
func compare(st *symtab.Table, op ast.BuiltinOp, a, b symtab.Sym) bool {
	an, aerr := strconv.Atoi(st.Name(a))
	bn, berr := strconv.Atoi(st.Name(b))
	var cmp int
	if aerr == nil && berr == nil {
		switch {
		case an < bn:
			cmp = -1
		case an > bn:
			cmp = 1
		}
	} else {
		sa, sb := st.Name(a), st.Name(b)
		switch {
		case sa < sb:
			cmp = -1
		case sa > sb:
			cmp = 1
		}
	}
	switch op {
	case ast.OpLT:
		return cmp < 0
	case ast.OpLE:
		return cmp <= 0
	case ast.OpGT:
		return cmp > 0
	case ast.OpGE:
		return cmp >= 0
	case ast.OpEQ:
		return cmp == 0
	case ast.OpNE:
		return cmp != 0
	}
	return false
}

// Answer evaluates the query against prog and base from scratch: full
// fixpoint, then filter by the query's bound arguments and project onto
// its free variables (first occurrence per variable, rows violating
// repeated-variable equality dropped), deduplicated and sorted.
func Answer(prog *ast.Program, base *Facts, st *symtab.Table, q ast.Query) [][]symtab.Sym {
	derived := prog.DerivedSet()
	var ts [][]symtab.Sym
	if derived[q.Pred] {
		ts = Eval(prog, base, st).tuples[q.Pred]
	} else {
		ts = base.tuples[q.Pred]
	}
	varPos := map[string]int{}
	var keep []int
	for i, a := range q.Args {
		if a.IsVar() {
			if _, ok := varPos[a.Var]; !ok {
				varPos[a.Var] = i
				keep = append(keep, i)
			}
		}
	}
	seen := map[string]bool{}
	var out [][]symtab.Sym
	for _, t := range ts {
		if len(t) != len(q.Args) {
			continue
		}
		ok := true
		for i, a := range q.Args {
			if a.IsVar() {
				if t[varPos[a.Var]] != t[i] {
					ok = false
					break
				}
			} else if a.Const != t[i] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		row := make([]symtab.Sym, 0, len(keep))
		for _, i := range keep {
			row = append(row, t[i])
		}
		k := factKey(row)
		if !seen[k] {
			seen[k] = true
			out = append(out, row)
		}
	}
	slices.SortFunc(out, func(a, b []symtab.Sym) int {
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				return int(a[i]) - int(b[i])
			}
		}
		return len(a) - len(b)
	})
	return out
}
