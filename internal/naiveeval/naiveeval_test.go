package naiveeval

import (
	"reflect"
	"testing"

	"chainlog/internal/ast"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
)

func parseProg(t *testing.T, st *symtab.Table, src string) *ast.Program {
	t.Helper()
	res, err := parser.Parse(src, st)
	if err != nil {
		t.Fatal(err)
	}
	return res.Program
}

// The oracle computes transitive closure, tracks retractions, and
// filters repeated variables — the semantics the differential harness
// leans on.
func TestOracleBasics(t *testing.T) {
	st := symtab.NewTable()
	prog := parseProg(t, st, `
tc(X, Y) :- e(X, Y).
tc(X, Z) :- e(X, Y), tc(Y, Z).
`)
	f := NewFacts()
	a, b, c := st.Intern("a"), st.Intern("b"), st.Intern("c")
	f.Assert("e", []symtab.Sym{a, b})
	f.Assert("e", []symtab.Sym{b, c})

	q := ast.Query{Literal: ast.Atom("tc", ast.C(a), ast.V("Y"))}
	got := Answer(prog, f, st, q)
	want := [][]symtab.Sym{{b}, {c}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tc(a, Y) = %v, want %v", got, want)
	}

	// Retract e(b, c): c is no longer reachable.
	if !f.Retract("e", []symtab.Sym{b, c}) {
		t.Fatal("retract of a present fact returned false")
	}
	if f.Retract("e", []symtab.Sym{b, c}) {
		t.Fatal("second retract of the same fact returned true")
	}
	got = Answer(prog, f, st, q)
	if !reflect.DeepEqual(got, [][]symtab.Sym{{b}}) {
		t.Fatalf("after retract: tc(a, Y) = %v", got)
	}

	// Repeated variables: tc(X, X) is empty on this acyclic graph.
	f.Assert("e", []symtab.Sym{b, c})
	diag := ast.Query{Literal: ast.Atom("tc", ast.V("X"), ast.V("X"))}
	if rows := Answer(prog, f, st, diag); len(rows) != 0 {
		t.Fatalf("tc(X, X) on acyclic data = %v", rows)
	}
	// Close the cycle and the whole loop satisfies tc(X, X).
	f.Assert("e", []symtab.Sym{c, a})
	if rows := Answer(prog, f, st, diag); len(rows) != 3 {
		t.Fatalf("tc(X, X) on a 3-cycle = %v", rows)
	}
}

// Built-in comparisons filter derivations regardless of their position
// in the body.
func TestOracleBuiltins(t *testing.T) {
	st := symtab.NewTable()
	prog := parseProg(t, st, `
small(X, Y) :- e(X, Y), X < Y.
`)
	f := NewFacts()
	one, two := st.Intern("1"), st.Intern("2")
	f.Assert("e", []symtab.Sym{one, two})
	f.Assert("e", []symtab.Sym{two, one})
	q := ast.Query{Literal: ast.Atom("small", ast.V("X"), ast.V("Y"))}
	got := Answer(prog, f, st, q)
	if !reflect.DeepEqual(got, [][]symtab.Sym{{one, two}}) {
		t.Fatalf("small = %v", got)
	}
}
