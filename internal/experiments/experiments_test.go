package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The experiment harness is exercised end to end at small sizes; the
// large-size claims live in EXPERIMENTS.md and the root benchmarks.
var smallSizes = []int{16, 32}

func TestTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf, smallSizes); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"E1", "henschen-naqvi", "ours(chain)", "(a)", "(b)", "(c)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFig7(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig7(&buf, smallSizes); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fit") {
		t.Fatalf("no fit rows:\n%s", buf.String())
	}
}

func TestFig8(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig8(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "boundStopped") || !strings.Contains(out, "true") {
		t.Fatalf("cyclic table incomplete:\n%s", out)
	}
}

func TestThm3AndThm4(t *testing.T) {
	var buf bytes.Buffer
	if err := Thm3(&buf, smallSizes); err != nil {
		t.Fatal(err)
	}
	if err := Thm4(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "false") {
		t.Fatalf("a bound check failed:\n%s", out)
	}
}

func TestLemma1AndFig1(t *testing.T) {
	var buf bytes.Buffer
	if err := Lemma1Example(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "q2 =") {
		t.Fatalf("worked example missing q2:\n%s", buf.String())
	}
	buf.Reset()
	if err := Fig1(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "-sg->") {
		t.Fatalf("sg automaton missing:\n%s", buf.String())
	}
}

func TestSec4Flight(t *testing.T) {
	var buf bytes.Buffer
	if err := Sec4Flight(&buf, 8, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "irrelevantFlights") {
		t.Fatalf("flight table missing:\n%s", buf.String())
	}
}

func TestAblations(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationHunt(&buf); err != nil {
		t.Fatal(err)
	}
	if err := AblationMemo(&buf, smallSizes); err != nil {
		t.Fatal(err)
	}
	if err := AblationHorner(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"huntArcs", "hnTermsTouched", "horner"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in ablation output", want)
		}
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in short mode")
	}
	var buf bytes.Buffer
	if err := All(&buf, smallSizes); err != nil {
		t.Fatalf("All: %v\n%s", err, buf.String())
	}
}
