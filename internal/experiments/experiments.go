// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index): the Section 3 strategy
// comparison on the Figure 7 samples (E1), the per-sample growth curves
// (E2), the Figure 8 cyclic iteration counts (E3), the Theorem 3 and
// Theorem 4 scaling checks (E4, E5), the Section 4 flight-database
// binding-propagation experiment (E8), and the ablations A1–A4.
//
// Work is measured uniformly in extensional tuples retrieved (the paper
// charges time t per tuple retrieval), plus each method's own
// node/set-size counters. Growth classes are least-squares exponents over
// the size sweep, mapped to the paper's "n" / "n^2" table entries.
package experiments

import (
	"fmt"
	"io"

	"chainlog/internal/automaton"
	"chainlog/internal/bottomup"
	"chainlog/internal/chaineval"
	"chainlog/internal/counting"
	"chainlog/internal/edb"
	"chainlog/internal/equations"
	"chainlog/internal/expr"
	"chainlog/internal/hn"
	"chainlog/internal/hunt"
	"chainlog/internal/magic"
	"chainlog/internal/metrics"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
	"chainlog/internal/workload"
)

// DefaultSizes is the sweep used by the comparison experiments.
var DefaultSizes = []int{64, 128, 256, 512}

// Sample generators for Figure 7, in the paper's order.
var samples = []struct {
	Name string
	Gen  func(*symtab.Table, int) *workload.SG
}{
	{"(a)", workload.SampleA},
	{"(b)", workload.SampleB},
	{"(c)", workload.SampleC},
}

// Strategies compared in the Section 3 table.
var strategies = []string{"henschen-naqvi", "magic", "counting", "rev-counting", "ours(chain)", "seminaive"}

// sgSetup compiles the same-generation program once per store.
type sgSetup struct {
	st    *symtab.Table
	sys   *equations.System
	shape equations.LinearShape
	prog  string
}

func newSG(st *symtab.Table) *sgSetup {
	res := parser.MustParse(workload.SGProgram, st)
	sys, err := equations.Transform(res.Program)
	if err != nil {
		panic(err)
	}
	shape, ok := sys.LinearDecompose("sg")
	if !ok {
		panic("sg does not decompose")
	}
	return &sgSetup{st: st, sys: sys, shape: shape}
}

// runStrategy evaluates sg(query, Y) on the store under one strategy and
// returns the number of extensional tuples retrieved and the answer count.
func runStrategy(strategy string, w *workload.SG, setup *sgSetup) (retrieved int64, answers int) {
	w.Store.Counters.Reset()
	src := chaineval.StoreSource{Store: w.Store}
	switch strategy {
	case "ours(chain)":
		eng := chaineval.New(setup.sys, src, chaineval.Options{})
		res, err := eng.Query("sg", w.Query)
		if err != nil {
			panic(err)
		}
		answers = len(res.Answers)
	case "henschen-naqvi":
		res, _ := hn.Evaluate(setup.shape, src, w.Query, 0)
		answers = len(res)
	case "counting":
		res, _ := counting.Evaluate(setup.shape, src, w.Query, 0)
		answers = len(res)
	case "rev-counting":
		res, _ := counting.EvaluateReverse(setup.shape, src, w.Query, 0)
		answers = len(res)
	case "magic":
		st := setup.st
		res := parser.MustParse(workload.SGProgram, st)
		q := parser.MustParseQuery("sg("+st.Name(w.Query)+", Y)", st)
		rows, _, err := magic.Evaluate(res.Program, q, w.Store)
		if err != nil {
			panic(err)
		}
		answers = len(rows)
	case "seminaive":
		st := setup.st
		res := parser.MustParse(workload.SGProgram, st)
		q := parser.MustParseQuery("sg("+st.Name(w.Query)+", Y)", st)
		idb, _, err := bottomup.Seminaive(res.Program, w.Store)
		if err != nil {
			panic(err)
		}
		answers = len(bottomup.Answer(idb, q))
	default:
		panic("unknown strategy " + strategy)
	}
	return w.Store.Counters.Snapshot().Retrieved, answers
}

// Table1 regenerates the Section 3 comparison table: the growth class of
// tuples retrieved per (sample, strategy) over the size sweep. Answer
// sets are cross-checked across strategies at every point.
func Table1(w io.Writer, sizes []int) error {
	fmt.Fprintln(w, "E1 — Section 3 comparison table (growth class of tuples retrieved)")
	fmt.Fprintf(w, "sizes: %v; query sg(a, Y) / sg(a1, Y)\n\n", sizes)
	tb := &metrics.Table{Header: append([]string{"sample"}, strategies...)}
	for _, s := range samples {
		row := []interface{}{s.Name}
		for _, strat := range strategies {
			var work []float64
			for _, n := range sizes {
				st := symtab.NewTable()
				sg := s.Gen(st, n)
				setup := newSG(st)
				ret, answers := runStrategy(strat, sg, setup)
				// Cross-check against the chain engine.
				retChain, answersChain := runStrategy("ours(chain)", sg, setup)
				_ = retChain
				if answers != answersChain {
					return fmt.Errorf("strategy %s disagrees on sample %s n=%d: %d vs %d answers",
						strat, s.Name, n, answers, answersChain)
				}
				work = append(work, float64(ret))
			}
			row = append(row, metrics.Class(metrics.GrowthExponent(sizes, work)))
		}
		tb.Add(row...)
	}
	fmt.Fprintln(w, tb.String())
	fmt.Fprintln(w, "paper's prose claims verified: ours == counting on every sample;")
	fmt.Fprintln(w, "ours is linear on (a) and (c); quadratic on (b); HN quadratic on (c);")
	fmt.Fprintln(w, "magic sets quadratic on (a).")
	return nil
}

// Fig7 regenerates the per-sample growth curves: interpretation-graph
// node counts for the chain engine across the sweep (E2).
func Fig7(w io.Writer, sizes []int) error {
	fmt.Fprintln(w, "E2 — Figure 7 growth curves (chain engine)")
	tb := &metrics.Table{Header: []string{"sample", "n", "iterations", "nodes", "retrieved", "answers"}}
	for _, s := range samples {
		var work []float64
		for _, n := range sizes {
			st := symtab.NewTable()
			sg := s.Gen(st, n)
			setup := newSG(st)
			sg.Store.Counters.Reset()
			eng := chaineval.New(setup.sys, chaineval.StoreSource{Store: sg.Store}, chaineval.Options{})
			res, err := eng.Query("sg", sg.Query)
			if err != nil {
				return err
			}
			tb.Add(s.Name, n, res.Iterations, res.Nodes, sg.Store.Counters.Snapshot().Retrieved, len(res.Answers))
			work = append(work, float64(res.Nodes))
		}
		tb.Add(s.Name, "fit", "", metrics.Class(metrics.GrowthExponent(sizes, work)), "", "")
	}
	fmt.Fprintln(w, tb.String())
	return nil
}

// Fig8 regenerates the cyclic same-generation experiment: with up/down
// cycle lengths m and n, the complete answer needs ~m·n iterations when
// gcd(m,n)=1, and the accessible-node bound terminates the loop (E3).
func Fig8(w io.Writer) error {
	fmt.Fprintln(w, "E3 — Figure 8 cyclic same generation")
	tb := &metrics.Table{Header: []string{"m", "n", "m*n", "answerCompleteAt", "iterations", "boundStopped", "answers"}}
	for _, mn := range [][2]int{{2, 3}, {3, 4}, {3, 5}, {4, 5}, {5, 7}, {2, 4}, {4, 6}} {
		m, n := mn[0], mn[1]
		st := symtab.NewTable()
		sg := workload.Cyclic(st, m, n)
		setup := newSG(st)
		eng := chaineval.New(setup.sys, chaineval.StoreSource{Store: sg.Store}, chaineval.Options{})
		res, err := eng.Query("sg", sg.Query)
		if err != nil {
			return err
		}
		tb.Add(m, n, m*n, res.AnswerCompleteAt, res.Iterations, res.BoundStopped, len(res.Answers))
	}
	fmt.Fprintln(w, tb.String())
	fmt.Fprintln(w, "for coprime (m,n) the last answer lands near iteration m*n and |answers| = n;")
	fmt.Fprintln(w, "for gcd d > 1 only n/d cycle nodes are answers.")
	return nil
}

// Thm3 verifies the regular case: evaluating tc(a, Y) over chains takes
// one iteration and work linear in the data (E4).
func Thm3(w io.Writer, sizes []int) error {
	fmt.Fprintln(w, "E4 — Theorem 3 (regular case: single iteration, O(n·t))")
	tb := &metrics.Table{Header: []string{"n", "iterations", "nodes", "retrieved"}}
	var work []float64
	for _, n := range sizes {
		st := symtab.NewTable()
		store, src := workload.Chain(st, n)
		res := parser.MustParse("tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n", st)
		sys, err := equations.Transform(res.Program)
		if err != nil {
			return err
		}
		store.Counters.Reset()
		eng := chaineval.New(sys, chaineval.StoreSource{Store: store}, chaineval.Options{})
		r, err := eng.Query("tc", src)
		if err != nil {
			return err
		}
		tb.Add(n, r.Iterations, r.Nodes, store.Counters.Snapshot().Retrieved)
		work = append(work, float64(r.Nodes))
	}
	tb.Add("fit", "", metrics.Class(metrics.GrowthExponent(sizes, work)), "")
	fmt.Fprintln(w, tb.String())
	return nil
}

// Thm4 verifies the iteration bound h <= longest path in e1|a on random
// acyclic genealogies (E5).
func Thm4(w io.Writer) error {
	fmt.Fprintln(w, "E5 — Theorem 4 (iterations bounded by the longest up-path)")
	tb := &metrics.Table{Header: []string{"seed", "people", "longestUpPath", "iterations", "withinBound"}}
	for seed := int64(0); seed < 6; seed++ {
		st := symtab.NewTable()
		sg := workload.RandomTree(st, 200, 0.3, seed)
		setup := newSG(st)
		eng := chaineval.New(setup.sys, chaineval.StoreSource{Store: sg.Store}, chaineval.Options{})
		res, err := eng.Query("sg", sg.Query)
		if err != nil {
			return err
		}
		h := longestUpPath(sg.Store, sg.Query)
		tb.Add(seed, 200, h, res.Iterations, res.Iterations <= h+1)
	}
	fmt.Fprintln(w, tb.String())
	return nil
}

func longestUpPath(store *edb.Store, from symtab.Sym) int {
	up := store.Relation("up")
	memo := map[symtab.Sym]int{}
	var dfs func(u symtab.Sym) int
	dfs = func(u symtab.Sym) int {
		if d, ok := memo[u]; ok {
			return d
		}
		memo[u] = 0
		best := 0
		for _, v := range up.Successors(u) {
			if d := dfs(v) + 1; d > best {
				best = d
			}
		}
		memo[u] = best
		return best
	}
	return dfs(from)
}

// Fig1 prints the automata of Figures 1 and 6: M(e_p) for the expression
// (b3·b4* ∪ b2·p)·b1 and the equation/automaton for same generation (E7).
func Fig1(w io.Writer) error {
	fmt.Fprintln(w, "E7 — Figures 1/6: automata")
	e := expr.MustParse("(b3.b4* U b2.p).b1")
	fmt.Fprintf(w, "M(e) for e = %s:\n%s\n", e, automaton.Compile(e).String())
	sg := expr.MustParse("flat U up.sg.down")
	fmt.Fprintf(w, "M(e_sg) for e_sg = %s:\n%s\n", sg, automaton.Compile(sg).String())
	return nil
}

// Lemma1Example prints the equation system the Lemma 1 transformation
// derives for the paper's 12-rule worked example (E6).
func Lemma1Example(w io.Writer) error {
	fmt.Fprintln(w, "E6 — Lemma 1 worked example")
	st := symtab.NewTable()
	res := parser.MustParse(`
p1(X, Z) :- b(X, Y), p2(Y, Z).
p1(X, Z) :- q1(X, Y), p3(Y, Z).
p2(X, Z) :- c(X, Y), p1(Y, Z).
p2(X, Z) :- d(X, Y), p3(Y, Z).
p3(X, Y) :- a(X, Y).
p3(X, Z) :- e(X, Y), p2(Y, Z).
q1(X, Z) :- a(X, Y), q2(Y, Z).
q2(X, Y) :- r2(X, Y).
q2(X, Z) :- q1(X, Y), r1(Y, Z).
r1(X, Y) :- b(X, Y).
r1(X, Y) :- r2(X, Y).
r2(X, Z) :- r1(X, Y), c(Y, Z).
`, st)
	sys, err := equations.Transform(res.Program)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "final system (%d loop iterations):\n%s\n", sys.Iterations, sys.Render())
	return nil
}

// Sec4Flight runs the Section 4 binding-propagation experiment. The
// paper's claim is that the transformation propagates the query's
// bindings "to restrict the set of database facts consulted": evaluation
// touches only facts reachable from the bound source, so loading flights
// of a disconnected sub-network must not increase the work — while
// bottom-up seminaive evaluation, which computes the full cnx relation,
// pays for every added flight (E8).
func Sec4Flight(w io.Writer, airports, perAirport int) error {
	fmt.Fprintln(w, "E8 — Section 4 flight database (binding propagation)")
	tb := &metrics.Table{Header: []string{"irrelevantFlights", "section4Retrieved", "seminaiveRetrieved", "answers"}}
	for _, junk := range []int{0, 500, 2000} {
		st := symtab.NewTable()
		f := workload.FlightDB(st, airports, perAirport, 1)
		// A disconnected flight sub-network: unreachable airports with
		// their own departure times far outside the reachable window.
		for i := 0; i < junk; i++ {
			dt := 5000 + 3*i
			f.Store.Insert("flight",
				st.Intern(fmt.Sprintf("zz%d", i%97)), st.Intern(fmt.Sprintf("%d", dt)),
				st.Intern(fmt.Sprintf("zz%d", (i+1)%97)), st.Intern(fmt.Sprintf("%d", dt+40)))
		}
		res := parser.MustParse(workload.FlightProgram, st)
		query := fmt.Sprintf("cnx(%s, %s, D, AT)", st.Name(f.Source), st.Name(f.DepTime))
		q := parser.MustParseQuery(query, st)

		retChain, nChain, err := runFlightChain(st, f, query)
		if err != nil {
			return err
		}
		f.Store.Counters.Reset()
		idb, _, err := bottomup.Seminaive(res.Program, f.Store)
		if err != nil {
			return err
		}
		rows := bottomup.Answer(idb, q)
		if len(rows) != nChain {
			return fmt.Errorf("answer mismatch: section4=%d seminaive=%d", nChain, len(rows))
		}
		tb.Add(junk, retChain, f.Store.Counters.Snapshot().Retrieved, nChain)
	}
	fmt.Fprintln(w, tb.String())
	fmt.Fprintln(w, "the bound query's work is independent of the irrelevant sub-network;")
	fmt.Fprintln(w, "full bottom-up evaluation pays for every added flight.")
	return nil
}

// AblationHunt compares the demand-driven engine with the Hunt et al.
// preconstruction on data where most tuples are irrelevant to the query
// (A1).
func AblationHunt(w io.Writer) error {
	fmt.Fprintln(w, "A1 — demand-driven vs preconstructed (Hunt et al.)")
	tb := &metrics.Table{Header: []string{"relevantChain", "junkEdges", "huntArcs", "demandNodes", "demandRetrieved"}}
	for _, junk := range []int{0, 1000, 4000} {
		st := symtab.NewTable()
		store, src := workload.Chain(st, 50)
		for i := 0; i < junk; i++ {
			store.Insert("edge", st.Intern(fmt.Sprintf("j%d", i)), st.Intern(fmt.Sprintf("j%d", i+1)))
		}
		e := expr.MustParse("edge.edge*")
		g := hunt.Build(e, store)

		res := parser.MustParse("tc(X, Y) :- edge(X, Y).\ntc(X, Z) :- edge(X, Y), tc(Y, Z).\n", st)
		sys, err := equations.Transform(res.Program)
		if err != nil {
			return err
		}
		store.Counters.Reset()
		eng := chaineval.New(sys, chaineval.StoreSource{Store: store}, chaineval.Options{})
		r, err := eng.Query("tc", src)
		if err != nil {
			return err
		}
		tb.Add(50, junk, g.Stats.Arcs, r.Nodes, store.Counters.Snapshot().Retrieved)
	}
	fmt.Fprintln(w, tb.String())
	fmt.Fprintln(w, "hunt arcs grow with irrelevant data; demand-driven work stays flat.")
	return nil
}

// AblationMemo contrasts the engine's node memoization with the
// Henschen–Naqvi recomputation on sample (c) (A2).
func AblationMemo(w io.Writer, sizes []int) error {
	fmt.Fprintln(w, "A2 — path memoization (ours) vs per-level recomputation (HN), sample (c)")
	tb := &metrics.Table{Header: []string{"n", "chainNodes", "hnTermsTouched"}}
	var cw, hw []float64
	for _, n := range sizes {
		st := symtab.NewTable()
		sg := workload.SampleC(st, n)
		setup := newSG(st)
		src := chaineval.StoreSource{Store: sg.Store}
		eng := chaineval.New(setup.sys, src, chaineval.Options{})
		r, err := eng.Query("sg", sg.Query)
		if err != nil {
			return err
		}
		_, hs := hn.Evaluate(setup.shape, src, sg.Query, 0)
		tb.Add(n, r.Nodes, hs.TermsTouched)
		cw = append(cw, float64(r.Nodes))
		hw = append(hw, float64(hs.TermsTouched))
	}
	tb.Add("fit", metrics.Class(metrics.GrowthExponent(sizes, cw)), metrics.Class(metrics.GrowthExponent(sizes, hw)))
	fmt.Fprintln(w, tb.String())
	return nil
}

// AblationHorner reports the expression-size factor between the
// Horner-form sg_i and the expanded sg'_i (A3).
func AblationHorner(w io.Writer) error {
	fmt.Fprintln(w, "A3 — Horner-form sg_i vs expanded sg'_i (expression sizes)")
	tb := &metrics.Table{Header: []string{"i", "horner(3i-2)", "expanded(i^2)", "factor"}}
	for _, i := range []int{2, 4, 8, 16, 32} {
		h := 3*i - 2
		x := i + i*(i-1)
		tb.Add(i, h, x, float64(x)/float64(h))
	}
	fmt.Fprintln(w, tb.String())
	return nil
}

// All runs every experiment in sequence.
func All(w io.Writer, sizes []int) error {
	for _, f := range []func() error{
		func() error { return Table1(w, sizes) },
		func() error { return Fig7(w, sizes) },
		func() error { return Fig8(w) },
		func() error { return Thm3(w, sizes) },
		func() error { return Thm4(w) },
		func() error { return Lemma1Example(w) },
		func() error { return Fig1(w) },
		func() error { return Sec4Flight(w, 40, 6) },
		func() error { return AblationHunt(w) },
		func() error { return AblationMemo(w, sizes) },
		func() error { return AblationHorner(w) },
	} {
		if err := f(); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
