package experiments

import (
	"chainlog/internal/binchain"
	"chainlog/internal/chaineval"
	"chainlog/internal/equations"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
	"chainlog/internal/workload"
)

// runFlightChain evaluates the flight query through the full Section 4
// pipeline (adorn → binary-chain transform → Lemma 1 → traversal) and
// returns the tuples retrieved and the answer count.
func runFlightChain(st *symtab.Table, f *workload.Flights, query string) (retrieved int64, answers int, err error) {
	res, err := parser.Parse(workload.FlightProgram, st)
	if err != nil {
		return 0, 0, err
	}
	q, err := parser.ParseQuery(query, st)
	if err != nil {
		return 0, 0, err
	}
	tr, err := binchain.Transform(res.Program, q, f.Store, false)
	if err != nil {
		return 0, 0, err
	}
	sys, err := equations.Transform(tr.Program)
	if err != nil {
		return 0, 0, err
	}
	f.Store.Counters.Reset()
	eng := chaineval.New(sys, tr.Source, chaineval.Options{})
	r, err := eng.Query(tr.QueryPred, tr.BoundArg)
	if err != nil {
		return 0, 0, err
	}
	return f.Store.Counters.Snapshot().Retrieved, len(tr.DecodeAnswers(r.Answers)), nil
}
