package automaton

import (
	"fmt"
	"testing"

	"chainlog/internal/expr"
)

// BenchmarkCompile measures the Thompson construction on expressions of
// growing size (the Horner-form sg_i expressions of ablation A3).
func BenchmarkCompile(b *testing.B) {
	horner := func(i int) expr.Expr {
		e := expr.Expr(expr.Pred{Name: "flat"})
		for k := 1; k < i; k++ {
			e = expr.NewUnion(expr.Pred{Name: "flat"},
				expr.NewConcat(expr.Pred{Name: "up"}, e, expr.Pred{Name: "down"}))
		}
		return e
	}
	for _, i := range []int{8, 32, 128} {
		e := horner(i)
		b.Run(fmt.Sprintf("sg_%d", i), func(b *testing.B) {
			for k := 0; k < b.N; k++ {
				Compile(e)
			}
		})
	}
}

// BenchmarkExpand measures the EM(p,i) expansion primitive: splicing a
// sub-automaton copy into a growing host.
func BenchmarkExpand(b *testing.B) {
	sub := Compile(expr.MustParse("flat U up.sg.down"))
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		host := Compile(expr.MustParse("flat U up.sg.down"))
		for i := 0; i < 50; i++ {
			// Expand the first derived transition found.
			var id = -1
			var tr Trans
			host.Each(func(tid int, t Trans) {
				if id == -1 && t.Label.Pred == "sg" {
					id, tr = tid, t
				}
			})
			if id == -1 {
				b.Fatal("no sg transition to expand")
			}
			start, final := host.AddCopy(sub)
			host.AddTrans(tr.From, Label{}, start)
			host.AddTrans(final, Label{}, tr.To)
			host.Remove(id)
		}
	}
}
