package automaton

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"chainlog/internal/expr"
	"chainlog/internal/rel"
	"chainlog/internal/symtab"
)

// Figure 1 of the paper: M(e_p) for e_p = (b3·b4* ∪ b2·p)·b1. The
// automaton must accept exactly the words of the regular language over
// the predicate alphabet.
func TestFigure1Language(t *testing.T) {
	m := Compile(expr.MustParse("(b3.b4* U b2.p).b1"))
	accept := [][]string{
		{"b3", "b1"},
		{"b3", "b4", "b1"},
		{"b3", "b4", "b4", "b1"},
		{"b2", "p", "b1"},
	}
	reject := [][]string{
		{},
		{"b1"},
		{"b3"},
		{"b2", "b1"},
		{"b3", "b4"},
		{"p", "b1"},
		{"b3", "b1", "b1"},
		{"b2", "p", "p", "b1"},
	}
	for _, w := range accept {
		if !m.Accepts(w) {
			t.Errorf("should accept %v", w)
		}
	}
	for _, w := range reject {
		if m.Accepts(w) {
			t.Errorf("should reject %v", w)
		}
	}
}

func TestCompileAtoms(t *testing.T) {
	if m := Compile(expr.Empty{}); m.Accepts(nil) {
		t.Error("0 accepts the empty word")
	}
	if m := Compile(expr.Ident{}); !m.Accepts(nil) || m.Accepts([]string{"a"}) {
		t.Error("id should accept exactly the empty word")
	}
	m := Compile(expr.Pred{Name: "a"})
	if !m.Accepts([]string{"a"}) || m.Accepts(nil) || m.Accepts([]string{"a", "a"}) {
		t.Error("single predicate automaton wrong")
	}
	m = Compile(expr.NewInverse(expr.Pred{Name: "a"}))
	if !m.Accepts([]string{"a~"}) || m.Accepts([]string{"a"}) {
		t.Error("inverse label wrong")
	}
}

func TestStarAcceptsPowers(t *testing.T) {
	m := Compile(expr.MustParse("(a.b)*"))
	for k := 0; k <= 4; k++ {
		var w []string
		for i := 0; i < k; i++ {
			w = append(w, "a", "b")
		}
		if !m.Accepts(w) {
			t.Errorf("(a.b)* should accept %d repetitions", k)
		}
	}
	if m.Accepts([]string{"a"}) || m.Accepts([]string{"b", "a"}) {
		t.Error("(a.b)* accepts garbage")
	}
}

func TestWordsEnumeration(t *testing.T) {
	m := Compile(expr.MustParse("a U b.c"))
	words := m.Words(3)
	sort.Strings(words)
	want := []string{"a", "b c"}
	if strings.Join(words, "|") != strings.Join(want, "|") {
		t.Fatalf("Words = %v", words)
	}
}

// Property: the compiled automaton denotes the same relation as the
// expression: for random expressions and random base relations, the set
// of (u, v) with an accepting path equals rel.Eval.
func TestAutomatonMatchesRelationSemantics(t *testing.T) {
	st := symtab.NewTable()
	universe := make([]symtab.Sym, 4)
	for i := range universe {
		universe[i] = st.Intern(string(rune('u' + i)))
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randomExpr(rng, 4)
		env := rel.Env{}
		for _, name := range []string{"a", "b", "c"} {
			r := rel.New()
			for _, u := range universe {
				for _, v := range universe {
					if rng.Float64() < 0.3 {
						r.Add(u, v)
					}
				}
			}
			env[name] = r
		}
		want := rel.Eval(e, env, universe)
		m := Compile(e)
		got := rel.New()
		for _, u := range universe {
			for _, v := range traverse(m, env, u) {
				got.Add(u, v)
			}
		}
		// rel.Eval's Star may include reflexive pairs for universe nodes;
		// the traversal covers the same universe, so compare directly.
		return rel.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// traverse runs the single-iteration interpretation-graph traversal of
// the automaton from (start, u) over materialized relations.
func traverse(m *NFA, env rel.Env, u symtab.Sym) []symtab.Sym {
	type node struct {
		q int
		s symtab.Sym
	}
	seen := map[node]bool{{m.Start, u}: true}
	stack := []node{{m.Start, u}}
	var out []symtab.Sym
	if m.Start == m.Final {
		out = append(out, u)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		m.Out(n.q, func(_ int, t Trans) {
			var vs []symtab.Sym
			switch {
			case t.Label.IsID():
				vs = []symtab.Sym{n.s}
			case t.Label.Inv:
				if r, ok := env[t.Label.Pred]; ok {
					vs = rel.Inverse(r).Successors(n.s)
				}
			default:
				if r, ok := env[t.Label.Pred]; ok {
					vs = r.Successors(n.s)
				}
			}
			for _, v := range vs {
				nn := node{t.To, v}
				if !seen[nn] {
					seen[nn] = true
					stack = append(stack, nn)
					if nn.q == m.Final {
						out = append(out, v)
					}
				}
			}
		})
	}
	return out
}

func randomExpr(rng *rand.Rand, depth int) expr.Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		switch rng.Intn(5) {
		case 0:
			return expr.Pred{Name: "a"}
		case 1:
			return expr.Pred{Name: "b"}
		case 2:
			return expr.Pred{Name: "c"}
		case 3:
			return expr.Ident{}
		default:
			return expr.Empty{}
		}
	}
	switch rng.Intn(4) {
	case 0:
		return expr.NewUnion(randomExpr(rng, depth-1), randomExpr(rng, depth-1))
	case 1:
		return expr.NewConcat(randomExpr(rng, depth-1), randomExpr(rng, depth-1))
	case 2:
		return expr.NewStar(randomExpr(rng, depth-1))
	default:
		return expr.NewInverse(randomExpr(rng, depth-1))
	}
}

// EM expansion primitive: replacing a derived transition with a copy of a
// sub-automaton preserves the language with the derived symbol expanded
// (Figure 2's construction).
func TestAddCopyExpansion(t *testing.T) {
	// e_p = (b3.b4* U b2.p).b1; e_r for the derived p: b5.b6
	em := Compile(expr.MustParse("(b3.b4* U b2.p).b1"))
	sub := Compile(expr.MustParse("b5.b6"))

	// Find the transition on p.
	var pid int = -1
	em.Each(func(id int, tr Trans) {
		if tr.Label.Pred == "p" {
			pid = id
		}
	})
	if pid < 0 {
		t.Fatal("no transition on p")
	}
	tr := em.Trans(pid)
	start, final := em.AddCopy(sub)
	em.AddTrans(tr.From, Label{}, start)
	em.AddTrans(final, Label{}, tr.To)
	em.Remove(pid)

	if em.Accepts([]string{"b2", "p", "b1"}) {
		t.Error("expanded automaton still accepts p")
	}
	if !em.Accepts([]string{"b2", "b5", "b6", "b1"}) {
		t.Error("expanded automaton rejects the expansion")
	}
	if !em.Accepts([]string{"b3", "b1"}) {
		t.Error("expansion broke unrelated paths")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := Compile(expr.MustParse("a.b"))
	c := m.Clone()
	// Remove a transition from the clone; original unaffected.
	var anyID int = -1
	c.Each(func(id int, tr Trans) {
		if tr.Label.Pred == "a" {
			anyID = id
		}
	})
	c.Remove(anyID)
	if c.Accepts([]string{"a", "b"}) {
		t.Error("clone still accepts after removal")
	}
	if !m.Accepts([]string{"a", "b"}) {
		t.Error("original damaged by clone mutation")
	}
	if m.NumTrans() == c.NumTrans() {
		t.Error("NumTrans should differ after removal")
	}
}

func TestStringRender(t *testing.T) {
	m := Compile(expr.MustParse("a"))
	s := m.String()
	if !strings.Contains(s, "-a->") || !strings.Contains(s, "start=") {
		t.Fatalf("String() = %q", s)
	}
}

// A3 (Horner) ablation support: the automaton for the Horner-form sg_i
// grows linearly in i, while the expanded form sg'_i grows quadratically
// (the paper: sg_i is "essentially smaller, by a factor of i").
func TestHornerExpressionSizes(t *testing.T) {
	horner := func(i int) expr.Expr {
		e := expr.Expr(expr.Pred{Name: "flat"})
		for k := 1; k < i; k++ {
			e = expr.NewUnion(expr.Pred{Name: "flat"},
				expr.NewConcat(expr.Pred{Name: "up"}, e, expr.Pred{Name: "down"}))
		}
		return e
	}
	expanded := func(i int) expr.Expr {
		terms := []expr.Expr{expr.Pred{Name: "flat"}}
		for k := 1; k < i; k++ {
			seq := []expr.Expr{}
			for j := 0; j < k; j++ {
				seq = append(seq, expr.Pred{Name: "up"})
			}
			seq = append(seq, expr.Pred{Name: "flat"})
			for j := 0; j < k; j++ {
				seq = append(seq, expr.Pred{Name: "down"})
			}
			terms = append(terms, expr.NewConcat(seq...))
		}
		return expr.NewUnion(terms...)
	}
	for _, i := range []int{4, 8} {
		h, x := expr.Size(horner(i)), expr.Size(expanded(i))
		if h >= x {
			t.Fatalf("horner size %d not smaller than expanded %d at i=%d", h, x, i)
		}
		// Horner is linear (3i-2); expanded is quadratic (i + 2·(1+...+(i-1))).
		if h != 3*i-2 {
			t.Fatalf("horner size = %d, want %d", h, 3*i-2)
		}
		if x != i+i*(i-1) {
			t.Fatalf("expanded size = %d, want %d", x, i+i*(i-1))
		}
	}
}

// TestAnnotatePreserved pins the edge-annotation contract: Annotate
// stamps Kind/Aux on every live edge, and the annotation survives
// AddCopy, Clone and CloneInto — so annotating each compiled M(e_r) once
// is enough for every EM(p,i) spliced together from copies.
func TestAnnotatePreserved(t *testing.T) {
	m := Compile(expr.MustParse("up.sg.down U flat U up~"))
	derived := map[string]bool{"sg": true}
	aux := map[string]int32{"up": 0, "down": 1, "flat": 2}
	m.Annotate(func(p string) bool { return derived[p] }, func(p string) int32 { return aux[p] })

	check := func(t *testing.T, n *NFA) {
		t.Helper()
		seen := 0
		for q := 0; q < n.NumStates(); q++ {
			for i := range n.Edges(q) {
				e := &n.Edges(q)[i]
				if e.Removed() {
					continue
				}
				seen++
				switch {
				case e.Label.IsID():
					if e.Kind != KindID {
						t.Fatalf("id edge has kind %d", e.Kind)
					}
				case derived[e.Label.Pred]:
					if e.Kind != KindDerived {
						t.Fatalf("edge %s not marked derived", e.Label)
					}
				case e.Label.Inv:
					if e.Kind != KindBaseInv || e.Aux != aux[e.Label.Pred] {
						t.Fatalf("edge %s kind=%d aux=%d", e.Label, e.Kind, e.Aux)
					}
				default:
					if e.Kind != KindBase || e.Aux != aux[e.Label.Pred] {
						t.Fatalf("edge %s kind=%d aux=%d", e.Label, e.Kind, e.Aux)
					}
				}
			}
		}
		if seen == 0 {
			t.Fatal("no live edges seen")
		}
	}
	check(t, m)
	check(t, m.Clone())

	var dst NFA
	m.CloneInto(&dst)
	check(t, &dst)

	// Splice an annotated copy into a fresh automaton, the EM expansion
	// primitive, and re-check the copied region.
	host := Compile(expr.MustParse("flat"))
	host.Annotate(func(p string) bool { return derived[p] }, func(p string) int32 { return aux[p] })
	host.AddCopy(m)
	check(t, host)
}
