// Package automaton compiles relational expressions into nondeterministic
// finite automata M(e) by the standard Thompson construction, treating the
// expression as a regular expression over the alphabet of predicate
// symbols (Figure 1 of the paper). Transitions on the empty string are
// labeled "id" and interpreted as the identity relation.
//
// The evaluation of a query for predicate p is controlled by a hierarchy
// of automata EM(p,i): EM(p,1) is a copy of M(e_p), and EM(p,i+1) is
// obtained by replacing each transition on a derived predicate r with a
// fresh copy of M(e_r) linked in by id transitions (Figure 2). The NFA
// type here is mutable to support exactly that expansion; the evaluator in
// internal/chaineval drives it on demand.
package automaton

import (
	"fmt"
	"strings"
	"sync/atomic"

	"chainlog/internal/expr"
)

// compiles counts Compile calls process-wide; tests assert plan reuse
// ("compile once, bind many") by checking it stays flat across runs.
var compiles atomic.Int64

// CompileCount returns the total number of Compile calls so far.
func CompileCount() int64 { return compiles.Load() }

// Label is a transition label: a predicate symbol (possibly traversed
// inversely) or the identity relation.
type Label struct {
	// Pred is the predicate name; empty for id transitions.
	Pred string
	// Inv marks an inverse traversal (the label p⁻¹): follow tuples from
	// second component to first.
	Inv bool
}

// IsID reports whether the label is the identity relation.
func (l Label) IsID() bool { return l.Pred == "" }

func (l Label) String() string {
	if l.IsID() {
		return "id"
	}
	if l.Inv {
		return l.Pred + "~"
	}
	return l.Pred
}

// EdgeKind classifies a transition for the evaluator's hot loop, so the
// per-node dispatch is a jump on a small int instead of string
// comparisons and map lookups. IsID/Inv are derivable from the Label;
// KindDerived requires knowledge of the equation system and is stamped
// by Annotate.
type EdgeKind uint8

const (
	// KindID is an identity (epsilon) transition.
	KindID EdgeKind = iota
	// KindBase is a forward traversal of a base predicate.
	KindBase
	// KindBaseInv is an inverse traversal of a base predicate.
	KindBaseInv
	// KindDerived marks a derived-predicate transition (a continuation
	// point expanded by EM(p,i+1)); set by Annotate.
	KindDerived
)

// NoAux is the Aux value of an unannotated edge: the evaluator falls
// back to by-name source resolution when it sees it.
const NoAux int32 = -1

// kindOf computes the label-derivable classification (never KindDerived).
func kindOf(l Label) EdgeKind {
	switch {
	case l.IsID():
		return KindID
	case l.Inv:
		return KindBaseInv
	default:
		return KindBase
	}
}

// Trans is one transition.
type Trans struct {
	From  int
	Label Label
	To    int
	// removed marks transitions deleted by EM expansion; they stay in the
	// slice so transition IDs remain stable.
	removed bool
	// kind and aux mirror the per-state Edge annotation so AddCopy can
	// preserve it when splicing automata.
	kind EdgeKind
	aux  int32
}

// Edge is the flat per-state copy of a transition. Edges exposes these
// directly — one contiguous slice per state, no per-ID indirection into
// the trans table — so evaluator inner loops iterate without a callback.
// The removed flag is mirrored by Remove.
type Edge struct {
	id      int32
	To      int32
	removed bool
	// Kind is the dispatch class (id / base / inverse-base / derived).
	Kind EdgeKind
	// Aux is a client annotation slot (the evaluator stores pre-resolved
	// relation indexes here); NoAux when unannotated.
	Aux   int32
	Label Label
}

// ID returns the edge's stable transition ID.
func (e *Edge) ID() int { return int(e.id) }

// Removed reports whether the transition has been deleted; Edges callers
// must skip removed entries.
func (e *Edge) Removed() bool { return e.removed }

// NFA is a mutable nondeterministic finite automaton with a single start
// and a single final state.
type NFA struct {
	Start, Final int
	trans        []Trans  // transition records by stable ID
	out          [][]Edge // state -> outgoing transitions, stored flat
}

// NumStates returns the number of states.
func (m *NFA) NumStates() int { return len(m.out) }

// NumTrans returns the number of live transitions.
func (m *NFA) NumTrans() int {
	n := 0
	for _, t := range m.trans {
		if !t.removed {
			n++
		}
	}
	return n
}

// addState appends a fresh state, reusing spare edge-buffer capacity
// left behind by CloneInto so EM expansion on a pooled automaton stays
// allocation-light.
func (m *NFA) addState() int {
	if len(m.out) < cap(m.out) {
		m.out = m.out[:len(m.out)+1]
		m.out[len(m.out)-1] = m.out[len(m.out)-1][:0]
	} else {
		m.out = append(m.out, nil)
	}
	return len(m.out) - 1
}

// AddTrans adds a transition and returns its ID. The edge's Kind is the
// label-derivable class (never KindDerived) and its Aux starts at NoAux;
// Annotate upgrades both once the equation system is known.
func (m *NFA) AddTrans(from int, label Label, to int) int {
	return m.addTransKA(from, label, to, kindOf(label), NoAux)
}

// addTransKA is AddTrans with an explicit kind/aux annotation; AddCopy
// uses it to preserve the source automaton's annotation.
func (m *NFA) addTransKA(from int, label Label, to int, kind EdgeKind, aux int32) int {
	id := len(m.trans)
	m.trans = append(m.trans, Trans{From: from, Label: label, To: to, kind: kind, aux: aux})
	m.out[from] = append(m.out[from], Edge{id: int32(id), To: int32(to), Label: label, Kind: kind, Aux: aux})
	return id
}

// Annotate classifies every transition: derived(pred) marks derived-
// predicate transitions (continuation points), and aux(pred) supplies the
// client annotation stored on base-predicate edges (NoAux-returning aux
// leaves them unresolved). Id transitions are left untouched. The
// annotation survives AddCopy, Clone and CloneInto, so annotating each
// compiled M(e_r) once annotates every EM(p,i) built from it.
func (m *NFA) Annotate(derived func(pred string) bool, aux func(pred string) int32) {
	for id := range m.trans {
		t := &m.trans[id]
		if t.Label.IsID() {
			continue
		}
		if derived(t.Label.Pred) {
			t.kind = KindDerived
		} else if aux != nil {
			t.aux = aux(t.Label.Pred)
		}
		es := m.out[t.From]
		for i := range es {
			if es[i].id == int32(id) {
				es[i].Kind, es[i].Aux = t.kind, t.aux
				break
			}
		}
	}
}

// ReannotateAux re-runs the aux resolution on base-predicate transitions
// that are still unannotated (Aux == NoAux), leaving id transitions,
// derived transitions and already-resolved edges untouched. It is the
// live-update hook: after a fact-only mutation materializes a relation
// that did not exist at compile time, the owning evaluator upgrades the
// affected edges in place instead of recompiling the automaton. The
// caller must exclude concurrent traversals of m for the duration.
func (m *NFA) ReannotateAux(aux func(pred string) int32) {
	for id := range m.trans {
		t := &m.trans[id]
		if t.Label.IsID() || t.kind == KindDerived || t.aux != NoAux {
			continue
		}
		a := aux(t.Label.Pred)
		if a == NoAux {
			continue
		}
		t.aux = a
		es := m.out[t.From]
		for i := range es {
			if es[i].id == int32(id) {
				es[i].Aux = a
				break
			}
		}
	}
}

// Remove deletes a transition by ID (IDs of other transitions are
// unaffected).
func (m *NFA) Remove(id int) {
	m.trans[id].removed = true
	es := m.out[m.trans[id].From]
	for i := range es {
		if es[i].id == int32(id) {
			es[i].removed = true
			return
		}
	}
}

// Removed reports whether the transition has been deleted.
func (m *NFA) Removed(id int) bool { return m.trans[id].removed }

// Trans returns the transition with the given ID.
func (m *NFA) Trans(id int) Trans { return m.trans[id] }

// Out calls f for each live transition leaving state q.
func (m *NFA) Out(q int, f func(id int, t Trans)) {
	for i := range m.out[q] {
		if e := &m.out[q][i]; !e.removed {
			f(int(e.id), Trans{From: q, Label: e.Label, To: int(e.To)})
		}
	}
}

// Edges returns the outgoing edge slice of state q, aliasing internal
// storage: callers must not mutate it and must skip entries whose
// Removed() is true. It is the closure-free iteration surface for
// evaluator hot loops.
func (m *NFA) Edges(q int) []Edge { return m.out[q] }

// OutIDs returns the IDs of live transitions leaving q.
func (m *NFA) OutIDs(q int) []int {
	var out []int
	for i := range m.out[q] {
		if e := &m.out[q][i]; !e.removed {
			out = append(out, int(e.id))
		}
	}
	return out
}

// Each calls f for every live transition.
func (m *NFA) Each(f func(id int, t Trans)) {
	for id, t := range m.trans {
		if !t.removed {
			f(id, t)
		}
	}
}

// AddCopy splices a fresh copy of sub into m (renumbering sub's states)
// and returns the copied start and final states. This is the EM(p,i)
// expansion primitive: the caller links the copy in with id transitions.
func (m *NFA) AddCopy(sub *NFA) (start, final int) {
	offset := m.NumStates()
	for range sub.out {
		m.addState()
	}
	for _, t := range sub.trans {
		if !t.removed {
			m.addTransKA(t.From+offset, t.Label, t.To+offset, t.kind, t.aux)
		}
	}
	return sub.Start + offset, sub.Final + offset
}

// Clone returns an independent deep copy of m.
func (m *NFA) Clone() *NFA {
	out := &NFA{Start: m.Start, Final: m.Final}
	out.trans = append([]Trans(nil), m.trans...)
	out.out = make([][]Edge, len(m.out))
	for i, es := range m.out {
		out.out[i] = append([]Edge(nil), es...)
	}
	return out
}

// CloneInto overwrites dst with a deep copy of m, reusing dst's
// transition table, state spine and per-state edge buffers. A pooled
// destination that has grown to the workload's steady-state size makes
// the copy — and the EM expansions that follow it — allocation-free.
func (m *NFA) CloneInto(dst *NFA) {
	dst.Start, dst.Final = m.Start, m.Final
	dst.trans = append(dst.trans[:0], m.trans...)
	n := len(m.out)
	if cap(dst.out) < n {
		grown := make([][]Edge, cap(dst.out), n*2)
		copy(grown, dst.out[:cap(dst.out)])
		dst.out = grown
	}
	full := dst.out[:cap(dst.out)]
	for i := 0; i < n; i++ {
		full[i] = append(full[i][:0], m.out[i]...)
	}
	// Empty (but keep) the spare buffers so addState can hand them out.
	for i := n; i < len(full); i++ {
		full[i] = full[i][:0]
	}
	dst.out = full[:n]
}

// String renders the automaton for debugging and golden tests: one line
// per live transition, sorted by (from, to, label), with start/final
// marked.
func (m *NFA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "start=q%d final=q%d states=%d\n", m.Start, m.Final, m.NumStates())
	for from := range m.out {
		m.Out(from, func(_ int, t Trans) {
			fmt.Fprintf(&b, "q%d -%s-> q%d\n", t.From, t.Label, t.To)
		})
	}
	return b.String()
}

// Compile builds M(e) by the Thompson construction. Inverses of compound
// subexpressions are compiled by reversing them first, so inverse labels
// appear only on predicate transitions.
func Compile(e expr.Expr) *NFA {
	compiles.Add(1)
	m := &NFA{}
	s, f := m.compile(e)
	m.Start, m.Final = s, f
	return m
}

func (m *NFA) compile(e expr.Expr) (start, final int) {
	switch v := e.(type) {
	case expr.Pred:
		s, f := m.addState(), m.addState()
		m.AddTrans(s, Label{Pred: v.Name}, f)
		return s, f
	case expr.Ident:
		s, f := m.addState(), m.addState()
		m.AddTrans(s, Label{}, f)
		return s, f
	case expr.Empty:
		return m.addState(), m.addState()
	case expr.Inverse:
		if p, ok := v.E.(expr.Pred); ok {
			s, f := m.addState(), m.addState()
			m.AddTrans(s, Label{Pred: p.Name, Inv: true}, f)
			return s, f
		}
		return m.compile(expr.Reverse(v.E))
	case expr.Union:
		s, f := m.addState(), m.addState()
		for _, t := range v.Terms {
			ts, tf := m.compile(t)
			m.AddTrans(s, Label{}, ts)
			m.AddTrans(tf, Label{}, f)
		}
		return s, f
	case expr.Concat:
		s, f := m.compile(v.Terms[0])
		for _, t := range v.Terms[1:] {
			ts, tf := m.compile(t)
			m.AddTrans(f, Label{}, ts)
			f = tf
		}
		return s, f
	case expr.Star:
		s, f := m.addState(), m.addState()
		ts, tf := m.compile(v.E)
		m.AddTrans(s, Label{}, f)
		m.AddTrans(s, Label{}, ts)
		m.AddTrans(tf, Label{}, ts)
		m.AddTrans(tf, Label{}, f)
		return s, f
	}
	panic(fmt.Sprintf("automaton: unknown expression %T", e))
}

// Accepts reports whether the automaton accepts the word (a sequence of
// labels rendered as strings, e.g. "up", "flat", "down", with id
// transitions taken silently). It is used by tests to check language
// equivalence between expressions and automata.
func (m *NFA) Accepts(word []string) bool {
	cur := m.closure(map[int]bool{m.Start: true})
	for _, sym := range word {
		next := make(map[int]bool)
		for q := range cur {
			m.Out(q, func(_ int, t Trans) {
				if !t.Label.IsID() && t.Label.String() == sym {
					next[t.To] = true
				}
			})
		}
		cur = m.closure(next)
		if len(cur) == 0 {
			return false
		}
	}
	return cur[m.Final]
}

// closure extends a state set along id transitions.
func (m *NFA) closure(set map[int]bool) map[int]bool {
	stack := make([]int, 0, len(set))
	for q := range set {
		stack = append(stack, q)
	}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		m.Out(q, func(_ int, t Trans) {
			if t.Label.IsID() && !set[t.To] {
				set[t.To] = true
				stack = append(stack, t.To)
			}
		})
	}
	return set
}

// Words enumerates all label words of length <= maxLen accepted by the
// automaton, in lexicographic order; used by property tests comparing an
// expression against its automaton.
func (m *NFA) Words(maxLen int) []string {
	var out []string
	type item struct {
		states map[int]bool
		word   []string
	}
	queue := []item{{states: m.closure(map[int]bool{m.Start: true})}}
	seen := map[string]bool{}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if it.states[m.Final] {
			w := strings.Join(it.word, " ")
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
		if len(it.word) == maxLen {
			continue
		}
		// Collect outgoing symbols.
		syms := map[string]bool{}
		for q := range it.states {
			m.Out(q, func(_ int, t Trans) {
				if !t.Label.IsID() {
					syms[t.Label.String()] = true
				}
			})
		}
		for sym := range syms {
			next := make(map[int]bool)
			for q := range it.states {
				m.Out(q, func(_ int, t Trans) {
					if !t.Label.IsID() && t.Label.String() == sym {
						next[t.To] = true
					}
				})
			}
			queue = append(queue, item{states: m.closure(next), word: append(append([]string(nil), it.word...), sym)})
		}
	}
	return out
}
