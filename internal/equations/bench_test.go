package equations

import (
	"fmt"
	"testing"

	"chainlog/internal/ast"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
)

// BenchmarkTransformWorkedExample measures the Lemma 1 transformation on
// the paper's 12-rule program.
func BenchmarkTransformWorkedExample(b *testing.B) {
	st := symtab.NewTable()
	prog := parser.MustParse(`
p1(X, Z) :- b(X, Y), p2(Y, Z).
p1(X, Z) :- q1(X, Y), p3(Y, Z).
p2(X, Z) :- c(X, Y), p1(Y, Z).
p2(X, Z) :- d(X, Y), p3(Y, Z).
p3(X, Y) :- a(X, Y).
p3(X, Z) :- e(X, Y), p2(Y, Z).
q1(X, Z) :- a(X, Y), q2(Y, Z).
q2(X, Y) :- r2(X, Y).
q2(X, Z) :- q1(X, Y), r1(Y, Z).
r1(X, Y) :- b(X, Y).
r1(X, Y) :- r2(X, Y).
r2(X, Z) :- r1(X, Y), c(Y, Z).
`, st).Program
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Transform(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransformWidePrograms measures the transformation on
// synthetic right-linear programs of growing width (one SCC per layer).
func BenchmarkTransformWidePrograms(b *testing.B) {
	for _, k := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("layers=%d", k), func(b *testing.B) {
			prog := &ast.Program{}
			for i := 0; i < k; i++ {
				p := fmt.Sprintf("p%d", i)
				next := fmt.Sprintf("p%d", (i+1)%k)
				prog.Rules = append(prog.Rules,
					ast.Rule{
						Head: ast.Atom(p, ast.V("X"), ast.V("Y")),
						Body: []ast.Literal{ast.Atom(fmt.Sprintf("b%d", i), ast.V("X"), ast.V("Y"))},
					},
					ast.Rule{
						Head: ast.Atom(p, ast.V("X"), ast.V("Z")),
						Body: []ast.Literal{
							ast.Atom(fmt.Sprintf("b%d", i), ast.V("X"), ast.V("Y")),
							ast.Atom(next, ast.V("Y"), ast.V("Z")),
						},
					})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Transform(prog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
