package equations

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"chainlog/internal/ast"
	"chainlog/internal/expr"
	"chainlog/internal/parser"
	"chainlog/internal/rel"
	"chainlog/internal/symtab"
)

func transform(t *testing.T, src string) *System {
	t.Helper()
	st := symtab.NewTable()
	res, err := parser.Parse(src, st)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sys, err := Transform(res.Program)
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	return sys
}

func TestTransitiveClosureRightLinear(t *testing.T) {
	sys := transform(t, `
tc(X, Y) :- e(X, Y).
tc(X, Z) :- e(X, Y), tc(Y, Z).
`)
	// p = e ∪ e·p  ⇒  p = e*·e  (right recursion elimination; the paper's
	// left/right naming follows the grammar, Arden gives e*.e here).
	got := sys.Eq["tc"].String()
	if got != "e*.e" && got != "e.e*" {
		t.Fatalf("tc = %q", got)
	}
	if !sys.IsRegularFor("tc") {
		t.Fatal("tc should be regular")
	}
}

func TestLeftLinear(t *testing.T) {
	sys := transform(t, `
tc(X, Y) :- e(X, Y).
tc(X, Z) :- tc(X, Y), e(Y, Z).
`)
	got := sys.Eq["tc"].String()
	if got != "e.e*" && got != "e*.e" {
		t.Fatalf("tc = %q", got)
	}
}

func TestReflexiveTransitiveClosure(t *testing.T) {
	sys := transform(t, `
star(X, X).
star(X, Z) :- star(X, Y), e(Y, Z).
`)
	got := sys.Eq["star"].String()
	if got != "e*" && got != "id.e*" && got != "e*.id" {
		t.Fatalf("star = %q", got)
	}
}

func TestSameGenerationStaysRecursive(t *testing.T) {
	sys := transform(t, `
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
`)
	if got := sys.Eq["sg"].String(); got != "flat U up.sg.down" {
		t.Fatalf("sg = %q", got)
	}
	if sys.IsRegularFor("sg") {
		t.Fatal("sg must keep its two-sided recursion")
	}
	shape, ok := sys.LinearDecompose("sg")
	if !ok {
		t.Fatal("sg should decompose as e0 U e1.sg.e2")
	}
	if shape.E0.String() != "flat" || shape.E1.String() != "up" || shape.E2.String() != "down" {
		t.Fatalf("shape = %q %q %q", shape.E0, shape.E1, shape.E2)
	}
}

// The paper's worked example (Section 3). The final system must satisfy
// Lemma 1's statements: regular predicates (p1,p2,p3,r1,r2) eliminated
// from all right-hand sides, and the nonregular group {q1,q2} reduced to
// direct recursion in exactly one equation.
func TestPaperWorkedExample(t *testing.T) {
	sys := transform(t, `
p1(X, Z) :- b(X, Y), p2(Y, Z).
p1(X, Z) :- q1(X, Y), p3(Y, Z).
p2(X, Z) :- c(X, Y), p1(Y, Z).
p2(X, Z) :- d(X, Y), p3(Y, Z).
p3(X, Y) :- a(X, Y).
p3(X, Z) :- e(X, Y), p2(Y, Z).
q1(X, Z) :- a(X, Y), q2(Y, Z).
q2(X, Y) :- r2(X, Y).
q2(X, Z) :- q1(X, Y), r1(Y, Z).
r1(X, Y) :- b(X, Y).
r1(X, Y) :- r2(X, Y).
r2(X, Z) :- r1(X, Y), c(Y, Z).
`)
	t.Logf("final system:\n%s", sys.Render())

	regular := map[string]bool{"p1": true, "p2": true, "p3": true, "r1": true, "r2": true}
	for _, p := range sys.Order {
		e := sys.Eq[p]
		// Statement (3): no regular derived predicate occurs in any RHS.
		for q := range regular {
			if expr.ContainsPred(e, q) {
				t.Errorf("equation for %s still mentions regular predicate %s: %s", p, q, e)
			}
		}
	}
	// Lemma 1 statement (6): since each nonregular predicate has a single
	// recursive rule, every equation carries at most one occurrence of a
	// predicate mutually recursive to its left-hand side — the group
	// {q1, q2} reduces to direct recursion in one equation.
	if n := expr.CountPred(sys.Eq["q2"], "q2"); n != 1 {
		t.Errorf("q2 should have exactly one direct self-occurrence, got %d: %s", n, sys.Eq["q2"])
	}
	if expr.ContainsPred(sys.Eq["q2"], "q1") {
		t.Errorf("q2's equation should not mention q1: %s", sys.Eq["q2"])
	}

	// Semantic checks against the paper's stated final equations (the
	// algorithm's elimination choices are free, so syntactic forms may
	// differ; Lemma 1 statement (7) fixes the denotation). r1 ≡ b·c*,
	// r2 ≡ b·c*·c, and the whole system's solution must equal the
	// paper's system's solution on random data.
	st := symtab.NewTable()
	universe := make([]symtab.Sym, 5)
	for i := range universe {
		universe[i] = st.Intern(fmt.Sprintf("c%d", i))
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		env := rel.Env{}
		for _, b := range []string{"a", "b", "c", "d", "e"} {
			r := rel.New()
			for _, u := range universe {
				for _, v := range universe {
					if rng.Float64() < 0.2 {
						r.Add(u, v)
					}
				}
			}
			env[b] = r
		}
		if !rel.Equal(rel.Eval(sys.Eq["r1"], env, universe), rel.Eval(expr.MustParse("b.c*"), env, universe)) {
			t.Fatalf("r1 %q is not equivalent to b.c*", sys.Eq["r1"])
		}
		if !rel.Equal(rel.Eval(sys.Eq["r2"], env, universe), rel.Eval(expr.MustParse("b.c*.c"), env, universe)) {
			t.Fatalf("r2 %q is not equivalent to b.c*.c", sys.Eq["r2"])
		}
		// The paper's q2 equation, solved alongside ours.
		paper := &System{
			Order:   []string{"q2"},
			Eq:      map[string]expr.Expr{"q2": expr.MustParse("b.c*.c U a.q2.b.c*")},
			Derived: map[string]bool{"q2": true},
		}
		mineQ2 := &System{
			Order:   []string{"q2"},
			Eq:      map[string]expr.Expr{"q2": sys.Eq["q2"]},
			Derived: map[string]bool{"q2": true},
		}
		wantSol, ok1 := solveSystem(paper, env, universe, 100)
		gotSol, ok2 := solveSystem(mineQ2, env, universe, 100)
		if !ok1 || !ok2 || !rel.Equal(wantSol["q2"], gotSol["q2"]) {
			t.Fatalf("q2 %q is not equivalent to the paper's b.c*.c U a.q2.b.c*", sys.Eq["q2"])
		}
	}
}

func TestRejectNonBinaryChain(t *testing.T) {
	st := symtab.NewTable()
	res := parser.MustParse(`p(X, Z) :- a(X, Y), b(X, Z).`, st)
	if _, err := Transform(res.Program); err == nil {
		t.Fatal("non-chain rule accepted")
	}
	res = parser.MustParse(`
t(X, Z) :- t(X, Y), t(Y, Z).
t(X, Y) :- e(X, Y).
`, st)
	if _, err := Transform(res.Program); err == nil {
		t.Fatal("nonlinear program accepted")
	}
}

func TestLinearDecomposeEdgeShapes(t *testing.T) {
	// Right-linear residual recursion: e1 = Ident.
	sys := &System{
		Order:   []string{"p"},
		Eq:      map[string]expr.Expr{"p": expr.MustParse("a U p.b")},
		Derived: map[string]bool{"p": true},
	}
	shape, ok := sys.LinearDecompose("p")
	if !ok {
		t.Fatal("decompose failed")
	}
	if _, isID := shape.E1.(expr.Ident); !isID {
		t.Fatalf("E1 = %v", shape.E1)
	}
	// Two recursive terms: not decomposable.
	sys.Eq["p"] = expr.MustParse("a U b.p U p.c")
	if _, ok := sys.LinearDecompose("p"); ok {
		t.Fatal("two-term recursion decomposed")
	}
	// p under a star: not decomposable.
	sys.Eq["p"] = expr.MustParse("a U (b.p)*.c")
	if _, ok := sys.LinearDecompose("p"); ok {
		t.Fatal("starred recursion decomposed")
	}
}

func TestReferencedDerived(t *testing.T) {
	sys := transform(t, `
p(X, Z) :- a(X, Y), q(Y, Z).
p(X, Z) :- b(X, Y), p(Y, Z).
q(X, Z) :- c(X, Y), q(Y, Z).
q(X, Y) :- d(X, Y).
`)
	refs := sys.ReferencedDerived("p")
	if !refs["p"] {
		t.Fatal("p not in its own references")
	}
	// q is regular (right-linear) so it must have been substituted away.
	if refs["q"] {
		t.Fatalf("regular q should be eliminated: %s", sys.Render())
	}
}

// --- Lemma 1 statement (7): equivalence with the fixpoint semantics ---

// solveSystem computes the least solution of a (possibly recursive)
// equation system by Kleene iteration over materialized relations.
func solveSystem(sys *System, env rel.Env, universe []symtab.Sym, maxIter int) (map[string]*rel.Rel, bool) {
	cur := make(map[string]*rel.Rel)
	for _, p := range sys.Order {
		cur[p] = rel.New()
	}
	for i := 0; i < maxIter; i++ {
		changed := false
		for _, p := range sys.Order {
			full := rel.Env{}
			for k, v := range env {
				full[k] = v
			}
			for q, v := range cur {
				full[q] = v
			}
			next := rel.Eval(sys.Eq[p], full, universe)
			if !rel.Equal(next, cur[p]) {
				changed = true
				cur[p] = next
			}
		}
		if !changed {
			return cur, true
		}
	}
	return cur, false
}

// naiveFixpoint computes the program's semantics directly over relations.
func naiveFixpoint(prog *ast.Program, env rel.Env, universe []symtab.Sym, maxIter int) (map[string]*rel.Rel, bool) {
	cur := make(map[string]*rel.Rel)
	derived := prog.DerivedSet()
	for p := range derived {
		cur[p] = rel.New()
	}
	lookup := func(name string) *rel.Rel {
		if derived[name] {
			return cur[name]
		}
		if r, ok := env[name]; ok {
			return r
		}
		return rel.New()
	}
	for i := 0; i < maxIter; i++ {
		changed := false
		for _, r := range prog.Rules {
			var acc *rel.Rel
			if len(r.Body) == 0 {
				// identity rule p(X,X)
				acc = rel.New()
				for _, u := range universe {
					acc.Add(u, u)
				}
			} else {
				acc = lookup(r.Body[0].Pred)
				for _, l := range r.Body[1:] {
					acc = rel.Compose(acc, lookup(l.Pred))
				}
			}
			merged := rel.Union(cur[r.Head.Pred], acc)
			if !rel.Equal(merged, cur[r.Head.Pred]) {
				changed = true
				cur[r.Head.Pred] = merged
			}
		}
		if !changed {
			return cur, true
		}
	}
	return cur, false
}

// randomLinearChainProgram builds a random linear binary-chain program
// over base predicates b0,b1,b2 and derived predicates p0..p(k-1), with at
// most one derived occurrence per body.
func randomLinearChainProgram(rng *rand.Rand) *ast.Program {
	k := rng.Intn(3) + 1
	prog := &ast.Program{}
	derived := make([]string, k)
	for i := range derived {
		derived[i] = fmt.Sprintf("p%d", i)
	}
	base := []string{"b0", "b1", "b2"}
	vars := []string{"X", "Y", "Z", "W"}
	for i, p := range derived {
		nrules := rng.Intn(2) + 1
		if i == 0 {
			nrules++ // ensure the query predicate has rules
		}
		for rn := 0; rn < nrules; rn++ {
			blen := rng.Intn(3) + 1
			derivedAt := -1
			if rng.Intn(2) == 0 {
				derivedAt = rng.Intn(blen)
			}
			var body []ast.Literal
			for j := 0; j < blen; j++ {
				var pred string
				if j == derivedAt {
					pred = derived[rng.Intn(k)]
				} else {
					pred = base[rng.Intn(len(base))]
				}
				body = append(body, ast.Atom(pred, ast.V(vars[j]), ast.V(vars[j+1])))
			}
			prog.Rules = append(prog.Rules, ast.Rule{
				Head: ast.Atom(p, ast.V(vars[0]), ast.V(vars[blen])),
				Body: body,
			})
		}
	}
	return prog
}

// TestLemma1Equivalence is the Lemma 1 statement (7) property: for random
// linear binary-chain programs and random extensional databases, the least
// solution of the transformed equation system assigns every derived
// predicate the same relation the program's fixpoint semantics does.
func TestLemma1Equivalence(t *testing.T) {
	st := symtab.NewTable()
	universe := make([]symtab.Sym, 5)
	for i := range universe {
		universe[i] = st.Intern(fmt.Sprintf("c%d", i))
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := randomLinearChainProgram(rng)
		sys, err := Transform(prog)
		if err != nil {
			t.Logf("seed %d: transform failed: %v\n%s", seed, err, prog.Render(nil))
			return false
		}
		env := rel.Env{}
		for _, b := range []string{"b0", "b1", "b2"} {
			r := rel.New()
			for _, u := range universe {
				for _, v := range universe {
					if rng.Float64() < 0.18 {
						r.Add(u, v)
					}
				}
			}
			env[b] = r
		}
		want, ok1 := naiveFixpoint(prog, env, universe, 200)
		got, ok2 := solveSystem(sys, env, universe, 200)
		if !ok1 || !ok2 {
			t.Logf("seed %d: no convergence", seed)
			return false
		}
		for p := range prog.DerivedSet() {
			if !rel.Equal(want[p], got[p]) {
				t.Logf("seed %d: mismatch for %s\nprogram:\n%s\nsystem:\n%s\nwant %v\ngot  %v",
					seed, p, prog.Render(nil), sys.Render(), want[p].Pairs(), got[p].Pairs())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestRenderDeterministic(t *testing.T) {
	a := transform(t, paperSG)
	b := transform(t, paperSG)
	if a.Render() != b.Render() {
		t.Fatal("Render not deterministic")
	}
}

const paperSG = `
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
`
