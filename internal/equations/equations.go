// Package equations implements Lemma 1 of the paper: the transformation of
// a linear binary-chain Datalog program into a system of equations
//
//	p = e_p
//
// with exactly one equation per derived predicate, where each right-hand
// side is an expression over predicate symbols with operators ∪, · and *.
// The transformation is the paper's nine-step algorithm: it is "nothing
// more than a simple way to transform a regular grammar into an equivalent
// regular expression", performed SCC by SCC, with Arden's-lemma
// elimination of direct left and right recursion (step 4) and substitution
// of resolved predicates (steps 5 and 7). Nonregular predicates (such as
// q2 = r2 ∪ a·q2·rl in the paper's example) keep a single direct
// recursion in their equation; the evaluator handles those occurrences by
// expanding the automaton hierarchy EM(p,i).
package equations

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"chainlog/internal/analysis"
	"chainlog/internal/ast"
	"chainlog/internal/expr"
	"chainlog/internal/graph"
)

// System is the equation system produced by Transform.
type System struct {
	// Order lists the derived predicates in first-appearance order.
	Order []string
	// Eq maps each derived predicate to its right-hand side.
	Eq map[string]expr.Expr
	// Derived is the set of derived predicate names; predicate symbols in
	// right-hand sides not in this set are base relations.
	Derived map[string]bool
	// InitialMutual maps each derived predicate to its mutual-recursion
	// component index in the *initial* system (step 2), the reference
	// point for step 5.
	InitialMutual map[string]int
	// Iterations is the number of main-loop iterations the transformation
	// performed (for reporting).
	Iterations int
}

// MaxIterations bounds the step 3–8 loop; the algorithm terminates because
// every productive iteration reduces the count of distinct derived
// predicates in right-hand sides, so this is a defensive backstop only.
const MaxIterations = 10000

// transforms counts Transform calls process-wide; tests assert plan
// reuse ("compile once, bind many") by checking it stays flat across
// prepared runs.
var transforms atomic.Int64

// TransformCount returns the total number of Transform calls so far.
func TransformCount() int64 { return transforms.Load() }

// Transform runs the Lemma 1 algorithm. The program must be a linear
// binary-chain program; Transform verifies both properties.
func Transform(prog *ast.Program) (*System, error) {
	transforms.Add(1)
	info := analysis.Analyze(prog)
	if !info.BinaryChainProgram() {
		return nil, fmt.Errorf("equations: program is not a binary-chain program")
	}
	if !info.LinearProgram() {
		return nil, fmt.Errorf("equations: program is not linear")
	}

	sys := &System{
		Eq:            make(map[string]expr.Expr),
		Derived:       info.Derived,
		InitialMutual: make(map[string]int),
	}

	// Step 1: initial equations p = e1 ∪ ... ∪ em, ei the concatenation
	// of the body predicates of the i-th rule for p (Ident for the empty
	// body, i.e. the rule p(X,X) :- ).
	for _, r := range prog.Rules {
		p := r.Head.Pred
		if _, ok := sys.Eq[p]; !ok {
			sys.Order = append(sys.Order, p)
			sys.Eq[p] = expr.Empty{}
		}
		factors := make([]expr.Expr, 0, len(r.Body))
		for _, l := range r.Body {
			factors = append(factors, expr.Pred{Name: l.Pred})
		}
		sys.Eq[p] = expr.NewUnion(sys.Eq[p], expr.NewConcat(factors...))
	}

	// Step 2: mutual-recursion components of the initial system.
	initComp := sys.components()
	for p, c := range initComp {
		sys.InitialMutual[p] = c
	}

	// Steps 3–8, repeated until nothing changes (step 9).
	prev := ""
	for iter := 0; ; iter++ {
		if iter > MaxIterations {
			return nil, fmt.Errorf("equations: transformation did not converge after %d iterations", MaxIterations)
		}
		sys.Iterations = iter
		cur := sys.Render()
		if cur == prev {
			break
		}
		prev = cur

		// Steps 3+4: group one-sided recursive union terms and eliminate
		// direct left/right recursion with Arden's lemma.
		for _, p := range sys.Order {
			sys.Eq[p] = arden(p, sys.Eq[p])
		}

		// Step 5: substitute away predicates whose RHS no longer contains
		// anything mutually recursive to them in the initial system.
		for _, p := range sys.Order {
			e := sys.Eq[p]
			if containsInitialMutual(sys, p, e) {
				continue
			}
			for _, q := range sys.Order {
				if q == p {
					continue
				}
				sys.Eq[q] = expr.Substitute(sys.Eq[q], p, e)
			}
		}

		// Step 6: recompute mutual-recursion components of the current
		// system.
		comp := sys.components()
		groups := make(map[int][]string)
		for _, p := range sys.Order {
			groups[comp[p]] = append(groups[comp[p]], p)
		}

		// Step 7: within each maximal mutually recursive set, eliminate
		// one predicate whose equation does not mention itself,
		// preferring the one with the fewest derived-predicate
		// occurrences (the paper's suggested heuristic).
		for _, members := range sortedGroups(groups) {
			if len(members) < 2 {
				continue
			}
			best := ""
			bestCount := 0
			for _, p := range members {
				if expr.ContainsPred(sys.Eq[p], p) {
					continue
				}
				n := derivedOccurrences(sys, sys.Eq[p])
				if best == "" || n < bestCount {
					best, bestCount = p, n
				}
			}
			if best == "" {
				continue
			}
			for _, q := range members {
				if q == best {
					continue
				}
				sys.Eq[q] = expr.Substitute(sys.Eq[q], best, sys.Eq[best])
			}
		}

		// Step 8: distribute composition over union — but only over union
		// subexpressions that contain a predicate mutually recursive to
		// the left-hand side, so step 4 can see the recursion at the
		// edges of union terms on the next iteration. Distributing
		// non-recursive unions is not only unnecessary, it would break
		// Lemma 1 statement (6) by duplicating the remaining recursive
		// occurrence.
		comp = sys.components()
		for _, p := range sys.Order {
			sys.Eq[p] = sys.distributeMutual(sys.Eq[p], comp, comp[p])
		}
	}
	return sys, nil
}

// arden performs steps 3 and 4 on a single equation: it partitions the
// union terms of rhs into non-recursive terms e0, left-recursive terms
// p·e (eliminable when all recursion is left) and right-recursive terms
// e·p, and applies p = e0 ∪ p·e1 ⇒ p = e0·e1* (respectively
// p = e0 ∪ e1·p ⇒ p = e1*·e0). Terms with two-sided or nested occurrences
// of p are left in place (nonregular recursion, resolved by the
// evaluator's EM hierarchy). A bare term p is dropped: the least solution
// of p = e0 ∪ p is p = e0.
func arden(p string, rhs expr.Expr) expr.Expr {
	terms := expr.UnionTerms(rhs)
	var e0, leftTails, rightHeads, stuck []expr.Expr
	for _, t := range terms {
		if !expr.ContainsPred(t, p) {
			e0 = append(e0, t)
			continue
		}
		if pr, ok := t.(expr.Pred); ok && pr.Name == p {
			continue // degenerate p = ... ∪ p
		}
		factors := expr.ConcatTerms(t)
		if len(factors) >= 2 {
			first, last := factors[0], factors[len(factors)-1]
			rest := expr.NewConcat(factors[1:]...)
			if isPred(first, p) && !expr.ContainsPred(rest, p) {
				leftTails = append(leftTails, rest)
				continue
			}
			init := expr.NewConcat(factors[:len(factors)-1]...)
			if isPred(last, p) && !expr.ContainsPred(init, p) {
				rightHeads = append(rightHeads, init)
				continue
			}
		}
		stuck = append(stuck, t)
	}
	if len(stuck) > 0 || (len(leftTails) > 0 && len(rightHeads) > 0) {
		// Mixed or two-sided recursion: not eliminable here.
		return rhs
	}
	base := expr.NewUnion(e0...)
	switch {
	case len(leftTails) > 0:
		return expr.NewConcat(base, expr.NewStar(expr.NewUnion(leftTails...)))
	case len(rightHeads) > 0:
		return expr.NewConcat(expr.NewStar(expr.NewUnion(rightHeads...)), base)
	}
	return base
}

func isPred(e expr.Expr, name string) bool {
	p, ok := e.(expr.Pred)
	return ok && p.Name == name
}

// components computes the mutual-recursion components of the current
// system: SCCs of the graph with an edge p→q whenever q (derived) occurs
// in e_p.
func (s *System) components() map[string]int {
	g := graph.NewNamed()
	for _, p := range s.Order {
		g.Node(p)
	}
	for _, p := range s.Order {
		for _, q := range expr.Preds(s.Eq[p]) {
			if s.Derived[q] {
				g.AddEdge(p, q)
			}
		}
	}
	_, byName := g.SCCNames()
	return byName
}

// containsInitialMutual reports whether e contains a predicate that was
// mutually recursive to p in the initial system (step 5's condition).
func containsInitialMutual(s *System, p string, e expr.Expr) bool {
	cp, ok := s.InitialMutual[p]
	if !ok {
		return false
	}
	found := false
	expr.Walk(e, func(x expr.Expr) {
		pr, isP := x.(expr.Pred)
		if !isP || !s.Derived[pr.Name] {
			return
		}
		if cq, ok := s.InitialMutual[pr.Name]; ok && cq == cp {
			// Same initial component: mutually recursive to p in the
			// initial system iff the component has size >1 or it is p
			// itself with a self-loop; both cases block elimination, and
			// for a singleton non-recursive p the RHS cannot mention p
			// anyway, so the component test suffices.
			found = true
		}
	})
	return found
}

// distributeMutual implements step 8: inside e, any composition with a
// union factor containing a predicate of component pcomp is expanded over
// that factor's alternatives; union factors without such predicates stay
// folded.
func (s *System) distributeMutual(e expr.Expr, comp map[string]int, pcomp int) expr.Expr {
	hasMutual := func(x expr.Expr) bool {
		found := false
		expr.Walk(x, func(n expr.Expr) {
			if pr, ok := n.(expr.Pred); ok && s.Derived[pr.Name] && comp[pr.Name] == pcomp {
				found = true
			}
		})
		return found
	}
	switch v := e.(type) {
	case expr.Union:
		terms := make([]expr.Expr, len(v.Terms))
		for i, t := range v.Terms {
			terms[i] = s.distributeMutual(t, comp, pcomp)
		}
		return expr.NewUnion(terms...)
	case expr.Concat:
		// Expand only union factors that contain a mutually recursive
		// predicate; other factors are kept as single choices.
		alts := [][]expr.Expr{nil}
		for _, factor := range v.Terms {
			f := s.distributeMutual(factor, comp, pcomp)
			choices := []expr.Expr{f}
			if u, ok := f.(expr.Union); ok && hasMutual(f) {
				choices = u.Terms
			}
			if _, ok := f.(expr.Empty); ok {
				return expr.Empty{}
			}
			next := make([][]expr.Expr, 0, len(alts)*len(choices))
			for _, seq := range alts {
				for _, c := range choices {
					ns := make([]expr.Expr, len(seq), len(seq)+1)
					copy(ns, seq)
					ns = append(ns, c)
					next = append(next, ns)
				}
			}
			alts = next
		}
		terms := make([]expr.Expr, len(alts))
		for i, seq := range alts {
			terms[i] = expr.NewConcat(seq...)
		}
		return expr.NewUnion(terms...)
	case expr.Star:
		return expr.NewStar(s.distributeMutual(v.E, comp, pcomp))
	case expr.Inverse:
		return expr.NewInverse(s.distributeMutual(v.E, comp, pcomp))
	}
	return e
}

func derivedOccurrences(s *System, e expr.Expr) int {
	n := 0
	expr.Walk(e, func(x expr.Expr) {
		if pr, ok := x.(expr.Pred); ok && s.Derived[pr.Name] {
			n++
		}
	})
	return n
}

func sortedGroups(groups map[int][]string) [][]string {
	keys := make([]int, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([][]string, 0, len(keys))
	for _, k := range keys {
		members := groups[k]
		sort.Strings(members)
		out = append(out, members)
	}
	return out
}

// Render formats the system deterministically, one equation per line in
// Order, for golden tests and debugging.
func (s *System) Render() string {
	var b strings.Builder
	for _, p := range s.Order {
		b.WriteString(p)
		b.WriteString(" = ")
		b.WriteString(s.Eq[p].String())
		b.WriteByte('\n')
	}
	return b.String()
}

// EquationFor returns the right-hand side for p.
func (s *System) EquationFor(p string) (expr.Expr, bool) {
	e, ok := s.Eq[p]
	return e, ok
}

// ReferencedDerived returns the set of derived predicates transitively
// reachable from p's equation (including p); the evaluator needs only
// these equations.
func (s *System) ReferencedDerived(p string) map[string]bool {
	out := map[string]bool{p: true}
	stack := []string{p}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, r := range expr.Preds(s.Eq[q]) {
			if s.Derived[r] && !out[r] {
				out[r] = true
				stack = append(stack, r)
			}
		}
	}
	return out
}

// IsRegularFor reports whether the equation for p and all equations it
// references contain no derived predicates — the regular case, in which
// the evaluation algorithm needs a single iteration (Theorem 3).
func (s *System) IsRegularFor(p string) bool {
	e, ok := s.Eq[p]
	if !ok {
		return false
	}
	for _, q := range expr.Preds(e) {
		if s.Derived[q] {
			return false
		}
	}
	return true
}

// LinearShape is the decomposition of an equation of the linear form
// p = E0 ∪ E1·p·E2 used by Theorem 4, the counting and Henschen–Naqvi
// methods, and the cyclic-data iteration bound. E1 or E2 may be Ident for
// left-/right-linear shapes.
type LinearShape struct {
	E0, E1, E2 expr.Expr
}

// LinearDecompose attempts to view e_p as p = E0 ∪ E1·p·E2 with exactly
// one recursive union term containing exactly one occurrence of p and no
// other derived predicates.
func (s *System) LinearDecompose(p string) (LinearShape, bool) {
	e, ok := s.Eq[p]
	if !ok {
		return LinearShape{}, false
	}
	var e0 []expr.Expr
	var rec []expr.Expr
	for _, t := range expr.UnionTerms(e) {
		if expr.ContainsPred(t, p) {
			rec = append(rec, t)
		} else {
			e0 = append(e0, t)
		}
	}
	if len(rec) != 1 || expr.CountPred(rec[0], p) != 1 {
		return LinearShape{}, false
	}
	factors := expr.ConcatTerms(rec[0])
	at := -1
	for i, f := range factors {
		if isPred(f, p) {
			at = i
			break
		}
	}
	if at == -1 {
		return LinearShape{}, false // p occurs nested under * or ~
	}
	shape := LinearShape{
		E0: expr.NewUnion(e0...),
		E1: expr.NewConcat(factors[:at]...),
		E2: expr.NewConcat(factors[at+1:]...),
	}
	// The decomposition is usable by the specialized methods only when
	// E0, E1, E2 are themselves free of derived predicates.
	for _, part := range []expr.Expr{shape.E0, shape.E1, shape.E2} {
		for _, q := range expr.Preds(part) {
			if s.Derived[q] {
				return LinearShape{}, false
			}
		}
	}
	return shape, true
}
