package magic

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"chainlog/internal/adorn"
	"chainlog/internal/ast"
	"chainlog/internal/bottomup"
	"chainlog/internal/edb"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
	"chainlog/internal/workload"
)

type fixture struct {
	st    *symtab.Table
	store *edb.Store
	prog  *ast.Program
}

func load(t *testing.T, src string) *fixture {
	t.Helper()
	st := symtab.NewTable()
	res, err := parser.Parse(src, st)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	store := edb.NewStore(st)
	for _, f := range res.Facts {
		store.Insert(f.Pred, f.Args...)
	}
	return &fixture{st: st, store: store, prog: res.Program}
}

func TestRewriteStructure(t *testing.T) {
	fx := load(t, workload.SGProgram)
	q := parser.MustParseQuery("sg(john, Y)", fx.st)
	ap, err := adorn.Adorn(fx.prog, q)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Rewrite(ap)
	if err != nil {
		t.Fatal(err)
	}
	// Expected: 2 modified rules + 1 magic rule + 1 seed = 4.
	if len(rw.Program.Rules) != 4 {
		t.Fatalf("rewritten rules = %d:\n%s", len(rw.Program.Rules), rw.Program.Render(fx.st))
	}
	// The magic rule: m_sg_bf(X1) :- m_sg_bf(X), up(X, X1).
	var magicRule *ast.Rule
	for i, r := range rw.Program.Rules {
		if r.Head.Pred == "m_sg_bf" && len(r.Body) > 0 {
			magicRule = &rw.Program.Rules[i]
		}
	}
	if magicRule == nil {
		t.Fatal("no magic rule generated")
	}
	if len(magicRule.Body) != 2 || magicRule.Body[1].Pred != "up" {
		t.Fatalf("magic rule = %s", magicRule.Render(fx.st))
	}
	// Seed: m_sg_bf(john).
	seedFound := false
	for _, r := range rw.Program.Rules {
		if r.Head.Pred == "m_sg_bf" && len(r.Body) == 0 {
			seedFound = true
			if !r.Head.IsGround() {
				t.Fatal("seed not ground")
			}
		}
	}
	if !seedFound {
		t.Fatal("no seed rule")
	}
}

func TestMagicMatchesSeminaiveSG(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		st := symtab.NewTable()
		res := parser.MustParse(workload.SGProgram, st)
		store := edb.NewStore(st)
		n := 8
		sym := func(i int) symtab.Sym { return st.Intern(fmt.Sprintf("n%d", i)) }
		for k := 0; k < 16; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				store.Insert("up", sym(i), sym(j))
			case 1:
				store.Insert("down", sym(i), sym(j))
			default:
				store.Insert("flat", sym(i), sym(j))
			}
		}
		q := parser.MustParseQuery("sg(n0, Y)", st)
		got, _, err := Evaluate(res.Program, q, store)
		if err != nil {
			return false
		}
		idb, _, err := bottomup.Seminaive(res.Program, store)
		if err != nil {
			return false
		}
		want := bottomup.Answer(idb, q)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The whole point of magic sets: with a bound query, only facts reachable
// from the query constant are consulted — adding irrelevant facts must
// not grow the relevant set (unlike plain seminaive, which computes the
// full sg relation).
func TestMagicRestrictsRelevantFacts(t *testing.T) {
	fx := load(t, workload.SGProgram+`
up(a, b). flat(b, b). down(b, c).
`)
	q := parser.MustParseQuery("sg(a, Y)", fx.st)
	run := func() int64 {
		fx.store.Counters.Reset()
		if _, _, err := Evaluate(fx.prog, q, fx.store); err != nil {
			t.Fatal(err)
		}
		return fx.store.Counters.Snapshot().Retrieved
	}
	before := run()
	for i := 0; i < 40; i++ {
		fx.store.Insert("up", fx.st.Intern(fmt.Sprintf("x%d", i)), fx.st.Intern(fmt.Sprintf("x%d", i+1)))
		fx.store.Insert("flat", fx.st.Intern(fmt.Sprintf("x%d", i)), fx.st.Intern(fmt.Sprintf("x%d", i)))
	}
	after := run()
	// The magic program still scans the irrelevant up/flat tuples once
	// per probe of the magic join keyed on bound values — with indexes
	// the retrieved count stays flat.
	if after != before {
		t.Fatalf("facts consulted grew with irrelevant data: %d -> %d", before, after)
	}

	// Plain seminaive, by contrast, must consult the irrelevant facts.
	fx.store.Counters.Reset()
	if _, _, err := bottomup.Seminaive(fx.prog, fx.store); err != nil {
		t.Fatal(err)
	}
	if fx.store.Counters.Snapshot().Retrieved <= after {
		t.Fatalf("seminaive consulted %d <= magic %d; expected more", fx.store.Counters.Snapshot().Retrieved, after)
	}
}

// All-free queries degrade to plain seminaive (no magic predicates).
func TestAllFreeQuery(t *testing.T) {
	fx := load(t, workload.SGProgram+`
up(a, b). flat(b, b). down(b, c).
`)
	q := parser.MustParseQuery("sg(X, Y)", fx.st)
	got, _, err := Evaluate(fx.prog, q, fx.store)
	if err != nil {
		t.Fatal(err)
	}
	idb, _, err := bottomup.Seminaive(fx.prog, fx.store)
	if err != nil {
		t.Fatal(err)
	}
	want := bottomup.Answer(idb, q)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestMagicFlightProgram(t *testing.T) {
	fx := load(t, `
cnx(S, DT, D, AT) :- flight(S, DT, D, AT).
cnx(S, DT, D, AT) :- flight(S, DT, D1, AT1), AT1 < DT1, is_deptime(DT1), cnx(D1, DT1, D, AT).

flight(hel, 900, sto, 1000).
flight(sto, 1100, par, 1300).
flight(par, 1400, nyc, 2000).
is_deptime(900). is_deptime(1100). is_deptime(1400).
`)
	q := parser.MustParseQuery("cnx(hel, 900, D, AT)", fx.st)
	got, _, err := Evaluate(fx.prog, q, fx.store)
	if err != nil {
		t.Fatal(err)
	}
	idb, _, err := bottomup.Seminaive(fx.prog, fx.store)
	if err != nil {
		t.Fatal(err)
	}
	want := bottomup.Answer(idb, q)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if len(got) != 3 {
		t.Fatalf("answers = %v", got)
	}
}

func TestMagicBBQuery(t *testing.T) {
	fx := load(t, workload.SGProgram+`
up(john, p1). up(ann, p1). flat(p1, p1).
down(p1, john). down(p1, ann).
`)
	q := parser.MustParseQuery("sg(john, ann)", fx.st)
	got, _, err := Evaluate(fx.prog, q, fx.store)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("sg(john, ann) = %v", got)
	}
}

func TestMagicPredNames(t *testing.T) {
	p := adorn.Pred{Name: "sg", Adorn: "bf"}
	if MagicPredName(p) != "m_sg_bf" {
		t.Fatalf("MagicPredName = %s", MagicPredName(p))
	}
}
