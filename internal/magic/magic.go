// Package magic implements the magic-sets query optimization strategy
// [Bancilhon, Maier, Sagiv, Ullman 1986; Beeri, Ramakrishnan 1987] for
// linear adorned programs — one of the four strategies the paper's
// Section 3 comparison table measures against the graph-traversal
// algorithm.
//
// Given an adorned program (produced by internal/adorn with the same
// sideways-information-passing split the paper uses), the transformation
// produces:
//
//   - a magic predicate m_p^a per adorned predicate, holding the bound
//     argument tuples for which p^a must be computed;
//   - a magic rule m_q^d(Z̄^b) :- m_p^a(X̄^b), b1, ..., bi per adorned rule
//     with a derived body literal;
//   - modified rules p^a(X̄) :- m_p^a(X̄^b), body;
//   - a seed m_q0^a0(c̄) for the query constants.
//
// The rewritten program is evaluated with seminaive bottom-up evaluation.
// The paper's observation — that magic sets restricts the relevant facts
// but still materializes arc-sized (pair-at-a-time) intermediate results,
// costing Θ(n²) on sample (a) where the node-at-a-time traversal costs
// O(n) — is reproduced by experiment E1.
package magic

import (
	"context"
	"fmt"

	"chainlog/internal/adorn"
	"chainlog/internal/ast"
	"chainlog/internal/bottomup"
	"chainlog/internal/edb"
	"chainlog/internal/symtab"
)

// Rewritten is the magic-sets rewriting of an adorned program.
type Rewritten struct {
	// Program is the rewritten Datalog program (modified rules, magic
	// rules and the seed rule).
	Program *ast.Program
	// QueryPred is the renamed query predicate (p^a's key).
	QueryPred string
	// Query is the query literal over QueryPred.
	Query ast.Query
}

// MagicPredName returns the magic predicate name for an adorned predicate.
func MagicPredName(p adorn.Pred) string { return "m_" + p.Key() }

// Rewrite builds the magic-sets program for an adorned program.
func Rewrite(ap *adorn.Program) (*Rewritten, error) {
	out := &Rewritten{Program: &ast.Program{}}

	allFree := true
	for i := 0; i < len(ap.Query.Adorn); i++ {
		if ap.Query.Adorn[i] == 'b' {
			allFree = false
		}
	}

	for _, r := range ap.Rules {
		hp := r.HeadPred()
		head := ast.Atom(hp.Key(), r.Head.Args...)

		var body []ast.Literal
		if !allFree {
			body = append(body, ast.Atom(MagicPredName(hp), termSlice(adorn.BoundArgs(r.Head, r.HeadAdorn))...))
		}
		if r.Derived == nil {
			body = append(body, r.AllBody...)
			out.Program.Rules = append(out.Program.Rules, ast.Rule{Head: head, Body: body})
			continue
		}
		dp, _ := r.DerivedPred()
		body = append(body, r.In...)
		body = append(body, ast.Atom(dp.Key(), r.Derived.Args...))
		body = append(body, r.Out...)
		out.Program.Rules = append(out.Program.Rules, ast.Rule{Head: head, Body: body})

		if !allFree {
			// Magic rule: m_q^d(Z̄^b) :- m_p^a(X̄^b), b1..bi.
			mh := ast.Atom(MagicPredName(dp), termSlice(adorn.BoundArgs(*r.Derived, r.DerivedAdorn))...)
			mb := []ast.Literal{ast.Atom(MagicPredName(hp), termSlice(adorn.BoundArgs(r.Head, r.HeadAdorn))...)}
			mb = append(mb, r.In...)
			out.Program.Rules = append(out.Program.Rules, ast.Rule{Head: mh, Body: mb})
		}
	}

	// Seed: m_q0^a0(c̄) :- .
	if !allFree {
		var seedArgs []ast.Term
		for _, a := range ap.QueryLit.Args {
			if !a.IsVar() {
				seedArgs = append(seedArgs, a)
			}
		}
		out.Program.Rules = append(out.Program.Rules, ast.Rule{
			Head: ast.Atom(MagicPredName(ap.Query), seedArgs...),
		})
	}

	out.QueryPred = ap.Query.Key()
	out.Query = ast.Query{Literal: ast.Atom(out.QueryPred, ap.QueryLit.Args...)}
	return out, nil
}

// Answer runs the rewritten program to fixpoint with seminaive evaluation
// and returns the sorted answer rows (projections onto the query's free
// variables) together with the evaluation statistics.
func (rw *Rewritten) Answer(base *edb.Store) ([][]symtab.Sym, bottomup.Stats, error) {
	return rw.AnswerCtx(nil, base)
}

// AnswerCtx is Answer under a context; the seminaive fixpoint polls it
// between rule evaluations (see bottomup.SeminaiveCtx).
func (rw *Rewritten) AnswerCtx(ctx context.Context, base *edb.Store) ([][]symtab.Sym, bottomup.Stats, error) {
	idb, stats, err := bottomup.SeminaiveCtx(ctx, rw.Program, base)
	if err != nil {
		return nil, stats, err
	}
	return bottomup.Answer(idb, rw.Query), stats, nil
}

// Evaluate is the one-call convenience: adorn, rewrite, evaluate.
func Evaluate(prog *ast.Program, q ast.Query, base *edb.Store) ([][]symtab.Sym, bottomup.Stats, error) {
	return EvaluateCtx(nil, prog, q, base)
}

// EvaluateCtx is Evaluate under a context; see AnswerCtx.
func EvaluateCtx(ctx context.Context, prog *ast.Program, q ast.Query, base *edb.Store) ([][]symtab.Sym, bottomup.Stats, error) {
	ap, err := adorn.Adorn(prog, q)
	if err != nil {
		return nil, bottomup.Stats{}, fmt.Errorf("magic: %w", err)
	}
	rw, err := Rewrite(ap)
	if err != nil {
		return nil, bottomup.Stats{}, err
	}
	return rw.AnswerCtx(ctx, base)
}

func termSlice(ts []ast.Term) []ast.Term { return ts }
