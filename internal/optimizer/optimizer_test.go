package optimizer

import (
	"strings"
	"testing"

	"chainlog/internal/stats"
)

// sparseRel fabricates statistics for a binary relation of e edges over
// k distinct keys on each side.
func sparseRel(name string, e, k int) *stats.RelStats {
	return &stats.RelStats{Name: name, Arity: 2, Tuples: e, OutKeys: k, InKeys: k, MaxOut: max(1, e/k), MaxIn: max(1, e/k), Distinct: []int{k, k}}
}

// A selective query over a large sparse graph must pick the chain
// traversal: the bound seed explores a tiny reachable fringe while any
// fixpoint pays for the whole relation.
func TestChooseSelectiveSparsePicksChain(t *testing.T) {
	in := Input{
		Pred:           "tc",
		Adornment:      "bf",
		ChainAvailable: true,
		MagicAvailable: true,
		DirectChain:    true,
		Recursive:      true,
		Rels:           []*stats.RelStats{sparseRel("edge", 100000, 120000)},
		MaxProcs:       1,
	}
	d := Choose(in)
	if d.Strategy != StrategyChain {
		t.Fatalf("chose %s (cost %g), want chain; rejected: %+v", d.Strategy, d.Cost, d.Rejected)
	}
	if len(d.Rejected) != 2 {
		t.Fatalf("want 2 rejected alternatives, got %+v", d.Rejected)
	}
	if d.Sizes["edge"] != 100000 {
		t.Fatalf("decision sizes not recorded: %+v", d.Sizes)
	}
	if d.EstWork <= 0 {
		t.Fatalf("EstWork = %g, want > 0", d.EstWork)
	}
}

// An all-free query over a dense recursive graph must avoid restarting
// the traversal per active-domain constant: one bottom-up fixpoint
// shares all the work.
func TestChooseAllFreeSection4PicksFixpoint(t *testing.T) {
	// All-free over a Section 4 n-ary program: the chain route pays the
	// tuple-term overhead once per active-domain seed, and the domain
	// (airports plus every timestamp constant) is far larger than the
	// tuple-term key space, so one shared fixpoint wins.
	in := Input{
		Pred:           "cnx",
		Adornment:      "ffff",
		ChainAvailable: true,
		MagicAvailable: true,
		Recursive:      true,
		Rels: []*stats.RelStats{{
			Name: "flight", Arity: 4, Tuples: 90,
			Distinct: []int{30, 80, 30, 80},
		}},
		Domain:   500,
		MaxProcs: 1,
	}
	d := Choose(in)
	if d.Strategy == StrategyChain {
		t.Fatalf("all-free Section 4 query chose per-seed chain (cost %g); rejected: %+v", d.Cost, d.Rejected)
	}
}

func TestChooseAllFreeDenseBinaryPicksChain(t *testing.T) {
	// All-free over a dense supercritical binary graph: per-seed CSR
	// traversal does seeds*(nodes+edges) cheap probes, while the fixpoint
	// pays a hash-join attempt per (closure tuple, in-edge) pair — the
	// measured winner on this shape is the restarted traversal.
	in := Input{
		Pred:           "tc",
		Adornment:      "ff",
		ChainAvailable: true,
		MagicAvailable: true,
		DirectChain:    true,
		SharedAllFree:  true,
		Recursive:      true,
		Rels:           []*stats.RelStats{sparseRel("edge", 40000, 2000)},
		Domain:         2000,
		MaxProcs:       1,
	}
	d := Choose(in)
	if d.Strategy != StrategyChain {
		t.Fatalf("all-free dense binary query chose %s (cost %g); rejected: %+v", d.Strategy, d.Cost, d.Rejected)
	}
	// The non-regular variant restarts per seed, which must cost strictly
	// more than the condensed batch even when it still wins the contest.
	perSeed := in
	perSeed.SharedAllFree = false
	if p := Choose(perSeed); p.Strategy == StrategyChain && p.Cost <= d.Cost {
		t.Fatalf("per-seed restart cost %g not above shared-batch cost %g", p.Cost, d.Cost)
	}
}

// When no chain route compiles (nonlinear recursion), the contest is
// seminaive vs magic: bound queries push bindings with magic, all-free
// ones pay the rewriting for nothing.
func TestChooseNoChainRoute(t *testing.T) {
	bound := Input{
		Pred:           "tc",
		Adornment:      "bf",
		MagicAvailable: true,
		Recursive:      true,
		Rels:           []*stats.RelStats{sparseRel("edge", 3000, 2000)},
		MaxProcs:       1,
	}
	d := Choose(bound)
	if d.Strategy != StrategyMagic {
		t.Fatalf("bound nonlinear query chose %s (cost %g); rejected: %+v", d.Strategy, d.Cost, d.Rejected)
	}
	if len(d.Rejected) != 1 {
		t.Fatalf("chain must not be listed as an alternative when unavailable: %+v", d.Rejected)
	}
	free := bound
	free.Adornment = "ff"
	free.Domain = 2000
	if d := Choose(free); d.Strategy != StrategySeminaive {
		t.Fatalf("all-free nonlinear query chose %s; rejected: %+v", d.Strategy, d.Rejected)
	}
	// Nonlinear recursion: neither chain nor magic compiles, so the
	// fixpoint is the only alternative — whatever the statistics say.
	neither := bound
	neither.MagicAvailable = false
	if d := Choose(neither); d.Strategy != StrategySeminaive || len(d.Rejected) != 0 {
		t.Fatalf("with no other viable route, want seminaive with no rejected alternatives, got %s / %+v", d.Strategy, d.Rejected)
	}
}

// Parallel traversal is recommended only for big chain-strategy work
// when the caller left Parallelism to the engine.
func TestChooseParallelRecommendation(t *testing.T) {
	big := Input{
		Pred:           "tc",
		Adornment:      "bf",
		ChainAvailable: true,
		MagicAvailable: true,
		DirectChain:    true,
		Recursive:      true,
		Rels:           []*stats.RelStats{sparseRel("edge", 1<<22, 1<<20)},
		MaxProcs:       8,
	}
	if d := Choose(big); d.Strategy == StrategyChain && !d.Parallel {
		t.Fatalf("large traversal (EstWork %g) should recommend parallelism", d.EstWork)
	}
	small := big
	small.Rels = []*stats.RelStats{sparseRel("edge", 64, 64)}
	if d := Choose(small); d.Parallel {
		t.Fatal("tiny traversal should stay sequential")
	}
	pinned := big
	pinned.Parallelism = 4
	if d := Choose(pinned); d.Parallel {
		t.Fatal("caller-set Parallelism must not be overridden")
	}
}

// The cost model must be falsifiable: perturbing a constant far enough
// flips a decision, which is exactly what the plan-choice regression
// gate relies on to catch a mis-tuned model.
func TestConstantFlipFlipsDecision(t *testing.T) {
	in := Input{
		Pred:           "tc",
		Adornment:      "bf",
		ChainAvailable: true,
		MagicAvailable: true,
		DirectChain:    true,
		Recursive:      true,
		Rels:           []*stats.RelStats{sparseRel("edge", 100000, 120000)},
		MaxProcs:       1,
	}
	if d := Choose(in); d.Strategy != StrategyChain {
		t.Fatalf("baseline should choose chain, got %s", d.Strategy)
	}
	old := CostChainEdge
	defer func() { CostChainEdge = old }()
	CostChainEdge = 1e9
	if d := Choose(in); d.Strategy == StrategyChain {
		t.Fatal("inflating CostChainEdge did not flip the decision — the corpus gate could never catch a bad constant")
	}
}

// Runtime observations recalibrate the alternatives they cover: a route
// whose measured work dwarfs its model estimate loses the re-costing,
// and once re-chosen from an observation the expected work is the
// measurement itself (so the feedback trigger compares against reality).
func TestObservedRecalibration(t *testing.T) {
	in := Input{
		Pred:           "cnx2",
		Adornment:      "bff",
		MagicAvailable: true,
		Recursive:      true,
		Rels: []*stats.RelStats{{
			Name: "flight2", Arity: 3, Tuples: 80,
			Distinct: []int{80, 80, 1},
		}},
		MaxProcs: 1,
	}
	if d := Choose(in); d.Strategy != StrategyMagic {
		t.Fatalf("the model should pick magic for the bound query, got %s", d.Strategy)
	}
	// The cycle: the bound seed reaches everything, so magic measured a
	// full fixpoint's worth of retrievals.
	in.Observed = map[string]float64{StrategyMagic: 10000}
	d := Choose(in)
	if d.Strategy != StrategySeminaive {
		t.Fatalf("recalibrated magic should lose to the seminaive model cost, got %s (rejected %+v)", d.Strategy, d.Rejected)
	}
	if len(d.Rejected) != 1 || !strings.Contains(d.Rejected[0].Detail, "recalibrated from") {
		t.Fatalf("rejected magic should carry its measured cost: %+v", d.Rejected)
	}
	// An observation of the chosen route pins its expected work.
	in.Observed[StrategySeminaive] = 6500
	if d := Choose(in); d.EstWork != 6500 {
		t.Fatalf("EstWork = %g, want the observation 6500", d.EstWork)
	}
}

// Drift triggers need both the absolute and the relative floor.
func TestDrifted(t *testing.T) {
	d := &Decision{Sizes: map[string]int{"edge": 100, "label": 0}}
	cases := []struct {
		now  map[string]int
		want bool
	}{
		{map[string]int{"edge": 100, "label": 0}, false},
		{map[string]int{"edge": 104, "label": 0}, false}, // < DriftMinTuples absolute
		{map[string]int{"edge": 112, "label": 0}, false}, // 12 tuples but only 12% relative
		{map[string]int{"edge": 130, "label": 0}, true},  // 30 tuples, 30% relative
		{map[string]int{"edge": 60, "label": 0}, true},   // shrink counts too
		{map[string]int{"edge": 100, "label": 9}, true},  // new relation from zero
		{map[string]int{"edge": 100, "label": 3}, false}, // new but below absolute floor
	}
	for i, c := range cases {
		if got := d.Drifted(c.now); got != c.want {
			t.Errorf("case %d: Drifted(%v) = %v, want %v", i, c.now, got, c.want)
		}
	}
}

// Describe names the chosen and rejected routes — the text /v1/explain
// surfaces.
func TestDescribe(t *testing.T) {
	d := Choose(Input{
		Pred:           "tc",
		Adornment:      "bf",
		ChainAvailable: true,
		MagicAvailable: true,
		DirectChain:    true,
		Recursive:      true,
		Rels:           []*stats.RelStats{sparseRel("edge", 1000, 800)},
		MaxProcs:       1,
	})
	out := d.Describe()
	if !strings.Contains(out, "chosen: ") || !strings.Contains(out, "estimated cost") {
		t.Fatalf("Describe missing chosen line:\n%s", out)
	}
	if strings.Count(out, "rejected: ") != 2 {
		t.Fatalf("Describe should list both rejected alternatives:\n%s", out)
	}
}

// The branching-process reach estimate: subcritical graphs stop early,
// supercritical ones are capped by the key count.
func TestReach(t *testing.T) {
	if r := reach(0.5, 1000); r != 2 {
		t.Fatalf("reach(0.5) = %g, want 2", r)
	}
	if r := reach(3, 1000); r != 1000 {
		t.Fatalf("supercritical reach = %g, want 1000", r)
	}
	if r := reach(0.999999, 10); r != 10 {
		t.Fatalf("near-critical reach should cap at n, got %g", r)
	}
	if r := reach(2, 0); r != 0 {
		t.Fatalf("empty graph reach = %g", r)
	}
}
