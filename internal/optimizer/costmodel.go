package optimizer

// The cost model's coefficients, centralized so the plan-choice
// regression gate (testdata/planchoice + TestPlanChoiceCorpus) is
// falsifiable: perturbing any constant here far enough flips a corpus
// decision and fails the gate, exactly like editing a bench baseline.
// Units are abstract "retrieval-equivalents" — one warm CSR probe plus
// its bookkeeping ≈ 1.0 — calibrated against the benchmark suite, not
// wall-clock on any particular machine.
var (
	// CostChainNode is the charge per (state, term) node the chain
	// traversal constructs: a visited-set test, a CSR probe and the
	// frontier push.
	CostChainNode = 1.0

	// CostChainEdge is the charge per neighbor retrieved on the
	// traversal frontier (the FactsConsulted unit).
	CostChainEdge = 1.0

	// CostChainSeed is the per-seed restart overhead of an all-free
	// chain query, which traverses once per active-domain constant.
	CostChainSeed = 4.0

	// CostSeminaiveFact is the charge per fact the bottom-up fixpoint
	// consults or derives: hash-join probes and dedup dominate, so it is
	// a small multiple of a CSR probe.
	CostSeminaiveFact = 2.5

	// CostMagicFact is the charge per fact in the magic-rewritten
	// fixpoint: seminaive's bookkeeping plus the magic-predicate joins.
	CostMagicFact = 5.0

	// CostQSQFact is the charge per fact the QSQ-net evaluator consults.
	// Measured per-retrieval below CostSeminaiveFact: the net's rounds
	// are delta-pinned and its joins run against memoized answer tables,
	// where the whole-program fixpoint re-probes full relations each
	// round — on the carrier-cycle corpus case both consult ~the same
	// fact count and the net is ~1.4x faster wall-clock. It must stay
	// above the chain constants (the traversal is still the fast path
	// when it compiles) and below CostMagicFact (same restricted fact
	// set, no rewritten-predicate joins).
	CostQSQFact = 2.2

	// CostQSQNode is the per-node charge of the selective QSQ route on
	// top of its retrievals: every subquery the net opens pays an
	// input-table subsumption check and its answers pay table dedup —
	// several times a chain traversal's visited-set test. Outside the
	// direct binary-chain class it scales by CostSection4Node exactly
	// like the chain route's node charge, so on bound Section 4 queries
	// the model keeps the tuple-term traversal ahead of the net,
	// matching its ~2x measured wall-clock edge there.
	CostQSQNode = 4.0

	// CostSection4Node scales the chain-route charges when the query
	// needs the Section 4 n-ary-to-binary transformation: every
	// traversal step interns and decodes tuple terms instead of walking
	// a flat CSR.
	CostSection4Node = 6.0

	// CostStartup is the fixed per-run charge of any route (scratch
	// acquisition, automaton root expansion).
	CostStartup = 16.0

	// ParallelMinWork is the estimated chain-traversal work below which
	// frontier sharding is not worth the worker handoff: small queries
	// stay on the zero-allocation sequential path.
	ParallelMinWork = 1 << 16

	// FeedbackDeviation is the observed-vs-estimated work ratio past
	// which a plan is flagged for re-optimization at its next
	// fact-epoch refresh.
	FeedbackDeviation = 8.0

	// FeedbackMinWork floors the feedback trigger: tiny queries have
	// estimates of a few units where an 8x deviation is noise.
	FeedbackMinWork = int64(4096)

	// DriftFraction is the relative cardinality change of any input
	// relation that triggers re-optimization at the next fact-epoch
	// refresh (a plan chosen for yesterday's sizes).
	DriftFraction = 0.25

	// DriftMinTuples floors the drift trigger in absolute tuples, so a
	// handful of asserts on a toy relation does not thrash the choice.
	DriftMinTuples = 8
)

// reach estimates the nodes visited from one seed under mean branching
// factor d over a graph with n reachable keys: the expected total
// progeny of a subcritical branching process (d < 1), everything for a
// critical or supercritical one, always capped by the key count.
func reach(d float64, n float64) float64 {
	if n <= 0 {
		return 0
	}
	if d < 1 {
		r := 1 / (1 - d)
		if r > n {
			return n
		}
		return r
	}
	return n
}
