// Package optimizer chooses among the engine's answer-equivalent
// evaluation routes — the paper's chain traversal, bottom-up seminaive,
// the magic-sets rewriting, and the goal-directed QSQ net — by costing
// each against per-relation
// statistics (internal/stats). It deliberately enumerates only
// strategies that are defined for every query shape: the
// shape-restricted specializations (counting, Henschen–Naqvi, Hunt)
// remain explicit opt-ins, so an optimizer decision can never change a
// query's answer, only its speed.
//
// The package is pure decision logic over statistics snapshots; the
// chainlog package maps decisions onto compiled plans and feeds runtime
// observations back (see Decision.EstWork).
package optimizer

import (
	"fmt"
	"strings"

	"chainlog/internal/stats"
)

// Strategy names, as the root package's Strategy constants render them.
const (
	StrategyChain     = "chain"
	StrategySeminaive = "seminaive"
	StrategyMagic     = "magic"
	StrategyQSQNet    = "qsqnet"
)

// Input describes one query template to cost.
type Input struct {
	// Pred is the query predicate.
	Pred string
	// Adornment is the paper's b/f binding pattern, e.g. "bf" or "bbff".
	Adornment string
	// ChainAvailable reports that some chain-traversal route compiles for
	// this query — the direct binary automaton or the Section 4
	// transformation. When false (nonlinear recursion, mutual recursion,
	// non-chain binding patterns) the engine's "chain" strategy is only a
	// fallback that re-runs magic sets, so it is not a distinct
	// alternative and the optimizer costs seminaive against magic only.
	ChainAvailable bool
	// DirectChain reports that the direct binary-chain traversal route
	// is available (binary-chain program, bf/fb/ff adornment); otherwise
	// the chain alternative pays the Section 4 tuple-term overhead.
	DirectChain bool
	// SharedAllFree reports that the chain route's all-free enumeration
	// runs as one Tarjan-condensed batch sharing traversal work across
	// seeds (the solved equation is regular). Center-linear programs like
	// same-generation are chain-evaluable but not regular, so their
	// all-free route genuinely restarts per seed.
	SharedAllFree bool
	// MagicAvailable reports that the magic-sets rewriting accepts this
	// program/query (it rejects, e.g., rules with two derived body
	// literals); when false the magic alternative is not enumerated.
	MagicAvailable bool
	// QSQAvailable reports that the goal-directed QSQ net compiles for
	// this program/query. Unlike magic it accepts arbitrary Datalog
	// (nonlinear and mutual recursion included), so it is usually true
	// for derived queries; compile can still reject on structural
	// grounds (adornment/arity mismatch).
	QSQAvailable bool
	// Recursive reports whether the relevant program slice is recursive;
	// non-recursive queries are one join pass for every route.
	Recursive bool
	// Rels are the statistics of the extensional relations in the
	// query's relevant program slice.
	Rels []*stats.RelStats
	// Domain is the active-domain size bound used for all-free queries
	// (0 = derive from Rels).
	Domain int
	// Parallelism is Options.Parallelism as the caller set it (0 =
	// defaulted, letting the optimizer decide); MaxProcs is
	// runtime.GOMAXPROCS(0).
	Parallelism int
	MaxProcs    int
	// Observed maps strategy names to the measured extensional
	// retrievals per run (an EWMA of Stats.FactsConsulted) from earlier
	// runs of the same prepared query. An alternative with an observation
	// is re-costed from the measurement instead of the model, so a
	// re-optimization can flip away from a route whose estimate proved
	// wrong — and cannot flip back, because the bad route keeps its
	// measured cost.
	Observed map[string]float64
}

// Alternative is one costed candidate.
type Alternative struct {
	Strategy string  `json:"strategy"`
	Cost     float64 `json:"cost"`
	Detail   string  `json:"detail"`
}

// Decision is the optimizer's record for one prepared plan: what was
// chosen, what it is expected to cost, what was rejected and why, and
// the input cardinalities the choice was based on — the baseline the
// re-optimization triggers (drift, feedback) compare against.
type Decision struct {
	Strategy string
	Cost     float64
	// EstWork is the expected extensional retrievals per run, the unit
	// runtime feedback (Stats.FactsConsulted) is compared against.
	EstWork float64
	// Parallel recommends engine frontier sharding for the chosen plan.
	Parallel bool
	Reason   string
	Rejected []Alternative
	// Sizes records each input relation's live tuple count at decision
	// time; Drifted compares against it.
	Sizes map[string]int
}

// graphShape is the aggregate statistics the cost formulas consume.
type graphShape struct {
	edges          float64 // total tuples across input relations
	keys           float64 // max distinct-key count (graph node bound)
	dOut, dIn      float64 // mean out/in-degree across input relations
	maxOut, maxIn  float64
	selective      bool // at least one bound position in the adornment
	boundFirst     bool // the first argument is bound (forward start)
	freeEnumSeeds  float64
	nonBinaryEdges float64
}

// shape aggregates the relation statistics under the query adornment.
func shape(in Input) graphShape {
	g := graphShape{
		selective:  strings.Contains(in.Adornment, "b"),
		boundFirst: strings.HasPrefix(in.Adornment, "b"),
	}
	var outKeys, inKeys float64
	for _, r := range in.Rels {
		t := float64(r.Tuples)
		g.edges += t
		if r.Arity == 2 {
			outKeys += float64(r.OutKeys)
			inKeys += float64(r.InKeys)
			g.maxOut = max(g.maxOut, float64(r.MaxOut))
			g.maxIn = max(g.maxIn, float64(r.MaxIn))
			g.keys = max(g.keys, float64(max(r.OutKeys, r.InKeys)))
		} else {
			g.nonBinaryEdges += t
			// The first column plays the out-key role for the tuple-term
			// chain the Section 4 transformation builds. The in-key role
			// falls to the widest of the remaining columns: a carried-along
			// low-cardinality column (a label, a carrier) is not a chain
			// position, and letting it pose as the in key would fabricate a
			// massive fan-in.
			if len(r.Distinct) > 0 {
				outKeys += float64(r.Distinct[0])
				widest := 0
				for _, d := range r.Distinct[1:] {
					widest = max(widest, d)
				}
				inKeys += float64(widest)
				for _, d := range r.Distinct {
					g.keys = max(g.keys, float64(d))
				}
			}
		}
	}
	if outKeys > 0 {
		g.dOut = g.edges / outKeys
	}
	if inKeys > 0 {
		g.dIn = g.edges / inKeys
	}
	if in.Domain > 0 {
		g.freeEnumSeeds = float64(in.Domain)
	} else {
		g.freeEnumSeeds = g.keys
	}
	return g
}

// Choose costs every applicable alternative and returns the decision,
// cheapest first among Rejected. It never returns nil.
func Choose(in Input) *Decision {
	g := shape(in)
	alts := []Alternative{seminaiveAlternative(in, g)}
	if in.MagicAvailable {
		alts = append(alts, magicAlternative(in, g))
	}
	if in.QSQAvailable {
		alts = append(alts, qsqAlternative(in, g))
	}
	if in.ChainAvailable {
		alts = append([]Alternative{chainAlternative(in, g)}, alts...)
	}
	for i := range alts {
		if w, ok := in.Observed[alts[i].Strategy]; ok && w > 0 {
			alts[i].Cost = CostStartup + w*perFactCost(alts[i].Strategy, in)
			alts[i].Detail += fmt.Sprintf("; recalibrated from %.4g observed retrievals/run", w)
		}
	}
	best := 0
	for i := 1; i < len(alts); i++ {
		if alts[i].Cost < alts[best].Cost {
			best = i
		}
	}
	d := &Decision{
		Strategy: alts[best].Strategy,
		Cost:     alts[best].Cost,
		Reason:   alts[best].Detail,
		Sizes:    make(map[string]int, len(in.Rels)),
	}
	for i, a := range alts {
		if i != best {
			d.Rejected = append(d.Rejected, a)
		}
	}
	for _, r := range in.Rels {
		d.Sizes[r.Name] = r.Tuples
	}
	d.EstWork = estWork(d.Strategy, in, g)
	if w, ok := in.Observed[d.Strategy]; ok && w > 0 {
		// The chosen route has been measured: its expected work is the
		// measurement, so the feedback trigger compares future runs
		// against reality rather than the superseded model estimate.
		d.EstWork = w
	}
	if d.Strategy == StrategyChain && in.Parallelism == 0 && in.MaxProcs > 1 &&
		d.EstWork > float64(ParallelMinWork) {
		d.Parallel = true
	}
	return d
}

// perFactCost is the modeled cost of one extensional retrieval under
// each strategy — the conversion rate between observed FactsConsulted
// and the cost scale the alternatives are compared on. The chain rate
// depends on the route: on the Section 4 transformation every frontier
// step interns and decodes tuple terms, so a retrieval there costs a
// node's worth of work, not a flat CSR probe. The net's rate does not
// scale the same way — its per-retrieval work is a join against a
// memoized answer table regardless of tuple width, and the carrier
// cycle measures it below even seminaive's rate on an n-ary program.
func perFactCost(strategy string, in Input) float64 {
	switch strategy {
	case StrategyChain:
		if !in.DirectChain {
			return CostChainEdge * CostSection4Node
		}
		return CostChainEdge
	case StrategyMagic:
		return CostMagicFact
	case StrategyQSQNet:
		return CostQSQFact
	default:
		return CostSeminaiveFact
	}
}

// chainTraversal is the per-seed traversal cost in the bound direction.
func chainTraversal(g graphShape) (nodes, edges float64) {
	d, n := g.dOut, g.keys
	if g.selective && !g.boundFirst {
		// fb query: the traversal runs over the inverse adjacency.
		d, n = g.dIn, g.keys
	}
	r := reach(d, n)
	return r, r * d
}

// closureTuples bounds the derived relation of the recursive closure:
// reach per seed summed over all seed keys, capped by keys² pairs.
func closureTuples(g graphShape) float64 {
	derived := g.keys * reach(g.dOut, g.keys)
	if m := g.keys * g.keys; derived > m {
		derived = m
	}
	return derived
}

func chainAlternative(in Input, g graphShape) Alternative {
	nodes, edges := chainTraversal(g)
	perNode := CostChainNode
	detail := "direct traversal of the Lemma 1 automaton over CSR adjacency"
	if !in.DirectChain {
		perNode *= CostSection4Node
		detail = "Section 4 tuple-term chain traversal"
	}
	cost := CostStartup + nodes*perNode + edges*CostChainEdge
	if !g.selective {
		seeds := g.freeEnumSeeds
		if in.SharedAllFree {
			// Regular program: the all-free enumeration is one
			// Tarjan-condensed batch, so traversal work is shared across
			// seeds and the total is the closure itself at CSR prices.
			cost = CostStartup + seeds*CostChainSeed +
				closureTuples(g)*perNode + g.edges*CostChainEdge
			detail += ", one condensed batch over all seeds (all-free query)"
		} else {
			// Non-regular (e.g. center-linear) program: every seed
			// genuinely restarts the traversal.
			cost = CostStartup + seeds*(CostChainSeed+nodes*perNode+edges*CostChainEdge)
			detail += " restarted per active-domain constant (all-free query)"
		}
	}
	return Alternative{Strategy: StrategyChain, Cost: cost, Detail: detail}
}

// fixpointFacts estimates the facts a whole-program bottom-up fixpoint
// consults: the extensional input plus one hash-join attempt per
// (closure tuple, incoming edge of its head key) pair — each derived
// tuple is re-derived once per in-edge before dedup rejects it, so the
// closure size alone undercounts the dominant dense-graph term.
func fixpointFacts(in Input, g graphShape) float64 {
	if !in.Recursive {
		return g.edges
	}
	attemptsPerTuple := g.dIn
	if attemptsPerTuple < 1 {
		attemptsPerTuple = 1
	}
	return g.edges + closureTuples(g)*attemptsPerTuple
}

func seminaiveAlternative(in Input, g graphShape) Alternative {
	return Alternative{
		Strategy: StrategySeminaive,
		Cost:     CostStartup + fixpointFacts(in, g)*CostSeminaiveFact,
		Detail:   "bottom-up seminaive fixpoint over the whole program",
	}
}

func magicAlternative(in Input, g graphShape) Alternative {
	if !g.selective {
		// No bindings to push: magic degenerates to seminaive plus the
		// rewriting overhead.
		return Alternative{
			Strategy: StrategyMagic,
			Cost:     CostStartup + fixpointFacts(in, g)*CostMagicFact,
			Detail:   "magic-sets rewriting (no bindings to restrict by)",
		}
	}
	nodes, edges := chainTraversal(g)
	return Alternative{
		Strategy: StrategyMagic,
		Cost:     CostStartup + (nodes+edges)*CostMagicFact,
		Detail:   "magic-sets rewriting evaluated seminaively (falls back to seminaive if inapplicable)",
	}
}

func qsqAlternative(in Input, g graphShape) Alternative {
	if !g.selective {
		// No bindings to push: the net's subquery tables cannot prune and
		// the evaluation degenerates to the whole-program fixpoint — same
		// fact count as seminaive, cheaper per fact (delta-pinned rounds
		// against memoized answer tables).
		return Alternative{
			Strategy: StrategyQSQNet,
			Cost:     CostStartup + fixpointFacts(in, g)*CostQSQFact,
			Detail:   "goal-directed QSQ net (no bindings to restrict by)",
		}
	}
	// Bindings restrict the net to the goal-reachable subgraph — the same
	// restriction estimate as magic, at a lower per-fact price because no
	// rewritten magic predicates join along. Each node additionally pays
	// the net's table bookkeeping (input-table subsumption check, answer
	// dedup), and outside the direct binary-chain class the subqueries
	// carry n-ary tuples, so the node term scales the same way the chain
	// route's does — which keeps the tuple-term chain traversal ahead on
	// bound Section 4 queries, matching its ~2x measured wall-clock edge.
	nodes, edges := chainTraversal(g)
	perNode := CostQSQNode
	detail := "goal-directed QSQ net with memoized subquery tables"
	if !in.DirectChain {
		perNode *= CostSection4Node
		detail = "Section 4 n-ary QSQ net with memoized subquery tables"
	}
	return Alternative{
		Strategy: StrategyQSQNet,
		Cost:     CostStartup + nodes*perNode + edges*CostQSQFact,
		Detail:   detail,
	}
}

// estWork is the expected FactsConsulted of the chosen route, the
// baseline runtime feedback compares observations against.
func estWork(strategy string, in Input, g graphShape) float64 {
	switch strategy {
	case StrategyChain:
		_, edges := chainTraversal(g)
		if !g.selective {
			if in.SharedAllFree {
				return closureTuples(g) + g.edges
			}
			return g.freeEnumSeeds * edges
		}
		return edges
	case StrategyMagic, StrategyQSQNet:
		if g.selective {
			_, edges := chainTraversal(g)
			return edges
		}
	}
	return fixpointFacts(in, g)
}

// Drifted reports whether current relation cardinalities have moved far
// enough from the decision's recorded sizes (≥ DriftFraction relative
// and ≥ DriftMinTuples absolute on any relation) that the plan should
// be re-costed. New relations count as drift from zero.
func (d *Decision) Drifted(current map[string]int) bool {
	for name, now := range current {
		was := d.Sizes[name]
		delta := now - was
		if delta < 0 {
			delta = -delta
		}
		if delta < DriftMinTuples {
			continue
		}
		if was == 0 || float64(delta) >= DriftFraction*float64(was) {
			return true
		}
	}
	return false
}

// Describe renders the decision for explain output.
func (d *Decision) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chosen: %s, estimated cost %.4g (%s)", d.Strategy, d.Cost, d.Reason)
	if d.Parallel {
		b.WriteString(", parallel traversal")
	}
	for _, a := range d.Rejected {
		fmt.Fprintf(&b, "\nrejected: %s, estimated cost %.4g (%s)", a.Strategy, a.Cost, a.Detail)
	}
	return b.String()
}
