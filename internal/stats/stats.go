// Package stats maintains per-relation statistics for the cost-based
// plan optimizer: cardinalities, out/in-degree histograms read straight
// off the CSR offset arrays, and per-column distinct counts. Collection
// is nearly free — a degree histogram is one pass over an offset array
// the evaluator keeps current anyway — and results are cached per
// relation version, so a long-lived server recomputes only after the
// relation actually changed.
package stats

import (
	"fmt"
	"math/bits"
	"strings"
	"sync"

	"chainlog/internal/edb"
	"chainlog/internal/symtab"
)

// HistBuckets is the number of log2 degree buckets: bucket i counts
// keys whose degree d satisfies floor(log2(d)) == i, so bucket 0 is
// degree 1, bucket 1 degrees 2–3, and so on. 32 buckets cover any
// degree that fits an int32 neighbor count.
const HistBuckets = 32

// Hist is a logarithmic degree histogram.
type Hist struct {
	Buckets [HistBuckets]int64
}

// Add records one key of the given degree (non-positive ignored).
func (h *Hist) Add(degree int) {
	if degree <= 0 {
		return
	}
	b := bits.Len(uint(degree)) - 1
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.Buckets[b]++
}

// Keys returns the number of keys recorded.
func (h *Hist) Keys() int64 {
	var n int64
	for _, c := range h.Buckets {
		n += c
	}
	return n
}

// String renders the non-empty buckets compactly, e.g. "1:5 2-3:2".
func (h *Hist) String() string {
	var b strings.Builder
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		lo := 1 << i
		hi := 1<<(i+1) - 1
		if lo == hi {
			fmt.Fprintf(&b, "%d:%d", lo, c)
		} else {
			fmt.Fprintf(&b, "%d-%d:%d", lo, hi, c)
		}
	}
	if b.Len() == 0 {
		return "empty"
	}
	return b.String()
}

// RelStats is one relation's statistics snapshot.
type RelStats struct {
	Name    string
	Arity   int
	Version uint64
	// Tuples is the live tuple count.
	Tuples int
	// Binary relations only: distinct keys with at least one out/in
	// neighbor, the maximum degrees, and the log2 degree histograms.
	OutKeys, InKeys int
	MaxOut, MaxIn   int
	OutHist, InHist Hist
	// Distinct holds the per-column distinct counts. For binary
	// relations it is derived from the degree walks (free); for other
	// arities it is a hashing pass per column.
	Distinct []int
}

// AvgOut is the mean out-degree over keys that have successors
// (tuples per distinct first column); 0 for an empty relation.
func (s *RelStats) AvgOut() float64 {
	if s.OutKeys == 0 {
		return 0
	}
	return float64(s.Tuples) / float64(s.OutKeys)
}

// AvgIn is the mean in-degree over keys that have predecessors.
func (s *RelStats) AvgIn() float64 {
	if s.InKeys == 0 {
		return 0
	}
	return float64(s.Tuples) / float64(s.InKeys)
}

// Collect computes a fresh snapshot for a relation. Binary relations
// get their degree histograms from the CSR offset arrays (forcing the
// same refresh the next probe would); wider relations get tuple and
// per-column distinct counts only. A nil relation yields an empty
// snapshot, the correct estimate for a predicate with no facts yet.
func Collect(r *edb.Relation) *RelStats {
	s := &RelStats{}
	if r == nil {
		return s
	}
	s.Name = r.Name()
	s.Arity = r.Arity()
	s.Version = r.Version()
	s.Tuples = r.Len()
	if s.Arity == 2 {
		r.DegreeEach(false, func(_ symtab.Sym, d int) {
			s.OutKeys++
			if d > s.MaxOut {
				s.MaxOut = d
			}
			s.OutHist.Add(d)
		})
		r.DegreeEach(true, func(_ symtab.Sym, d int) {
			s.InKeys++
			if d > s.MaxIn {
				s.MaxIn = d
			}
			s.InHist.Add(d)
		})
		s.Distinct = []int{s.OutKeys, s.InKeys}
		return s
	}
	s.Distinct = make([]int, s.Arity)
	for c := 0; c < s.Arity; c++ {
		s.Distinct[c] = r.ColumnDistinct(c)
	}
	return s
}

// Collector caches RelStats per relation, keyed by name and validated
// by the relation's mutation version: a hit after fact churn recomputes
// exactly the relations that changed. Safe for concurrent use.
type Collector struct {
	mu    sync.Mutex
	cache map[string]*RelStats
}

// Stats returns the (possibly cached) statistics snapshot for r.
// Returned snapshots are shared and must be treated as immutable.
func (c *Collector) Stats(r *edb.Relation) *RelStats {
	if r == nil {
		return &RelStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.cache[r.Name()]; ok && s.Version == r.Version() && s.Tuples == r.Len() {
		return s
	}
	s := Collect(r)
	if c.cache == nil {
		c.cache = make(map[string]*RelStats)
	}
	c.cache[r.Name()] = s
	return s
}

// Invalidate drops every cached snapshot (e.g. after a store swap,
// where relation names may now denote different relations).
func (c *Collector) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	clear(c.cache)
}
