package stats

import (
	"math/rand"
	"testing"

	"chainlog/internal/edb"
	"chainlog/internal/symtab"
)

// bruteDegrees recomputes per-key degrees by scanning raw tuples,
// independent of the CSR machinery under test.
func bruteDegrees(r *edb.Relation, col int) map[symtab.Sym]int {
	deg := make(map[symtab.Sym]int)
	r.EachRaw(func(t []symtab.Sym) { deg[t[col]]++ })
	return deg
}

// bruteStats builds the snapshot a correct Collect must produce for a
// binary relation, from nothing but the raw tuple scan.
func bruteStats(r *edb.Relation) *RelStats {
	s := &RelStats{Name: r.Name(), Arity: 2, Version: r.Version(), Tuples: r.Len()}
	for _, d := range bruteDegrees(r, 0) {
		s.OutKeys++
		if d > s.MaxOut {
			s.MaxOut = d
		}
		s.OutHist.Add(d)
	}
	for _, d := range bruteDegrees(r, 1) {
		s.InKeys++
		if d > s.MaxIn {
			s.MaxIn = d
		}
		s.InHist.Add(d)
	}
	s.Distinct = []int{s.OutKeys, s.InKeys}
	return s
}

func sameStats(t *testing.T, got, want *RelStats) {
	t.Helper()
	if got.Tuples != want.Tuples || got.OutKeys != want.OutKeys || got.InKeys != want.InKeys ||
		got.MaxOut != want.MaxOut || got.MaxIn != want.MaxIn {
		t.Fatalf("stats mismatch:\n got %+v\nwant %+v", got, want)
	}
	if got.OutHist != want.OutHist || got.InHist != want.InHist {
		t.Fatalf("histogram mismatch:\n got out=%s in=%s\nwant out=%s in=%s",
			got.OutHist.String(), got.InHist.String(), want.OutHist.String(), want.InHist.String())
	}
	if len(got.Distinct) != 2 || got.Distinct[0] != want.Distinct[0] || got.Distinct[1] != want.Distinct[1] {
		t.Fatalf("distinct mismatch: got %v want %v", got.Distinct, want.Distinct)
	}
}

// Histograms computed off the CSR offset arrays must equal brute-force
// degree counts over random relations of assorted shapes.
func TestCollectMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		st := symtab.NewTable()
		store := edb.NewStore(st)
		n := 2 + rng.Intn(60)
		m := rng.Intn(6 * n)
		for i := 0; i < m; i++ {
			store.Insert("e", symtab.Sym(st.Intern(names(rng.Intn(n)))), symtab.Sym(st.Intern(names(rng.Intn(n)))))
		}
		r := store.Relation("e")
		if r == nil {
			continue
		}
		sameStats(t, Collect(r), bruteStats(r))
	}
}

func names(i int) string {
	return "n" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
}

// Collection must stay exact across the incremental CSR lifecycle:
// fresh build, small-overlay merges, removals with tombstones, and the
// compaction a large retract ratio forces.
func TestCollectSurvivesOverlayAndRebuild(t *testing.T) {
	st := symtab.NewTable()
	store := edb.NewStore(st)
	rng := rand.New(rand.NewSource(11))
	sym := func(i int) symtab.Sym { return symtab.Sym(st.Intern(names(i))) }

	var edges [][2]int
	insert := func(u, v int) {
		if store.Insert("e", sym(u), sym(v)) {
			edges = append(edges, [2]int{u, v})
		}
	}
	for i := 0; i < 200; i++ {
		insert(rng.Intn(40), rng.Intn(40))
	}
	r := store.Relation("e")
	// Force a CSR build, then mutate within (and past) the overlay
	// window, re-collecting after every phase.
	_ = r.Successors(sym(0))
	sameStats(t, Collect(r), bruteStats(r))

	// A handful of inserts: absorbed by the overlay or a merge.
	for i := 0; i < 5; i++ {
		insert(40+i, rng.Intn(40))
	}
	sameStats(t, Collect(r), bruteStats(r))

	// A bulk insert past any overlay window: full rebuild path.
	for i := 0; i < 300; i++ {
		insert(rng.Intn(80), rng.Intn(80))
	}
	sameStats(t, Collect(r), bruteStats(r))

	// Retract half: tombstones, then the compaction they trigger.
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	for _, e := range edges[:len(edges)/2] {
		store.Remove("e", sym(e[0]), sym(e[1]))
	}
	sameStats(t, Collect(r), bruteStats(r))
}

// Frozen (CSR-installed) relations must report exact statistics without
// being thawed: BuildBinary keeps the relation's version in lockstep
// with its CSRs, so DegreeEach reads them as-is.
func TestCollectFrozenRelation(t *testing.T) {
	st := symtab.NewTable()
	store := edb.NewStore(st)
	rng := rand.New(rand.NewSource(13))
	var edges [][2]symtab.Sym
	seen := make(map[[2]symtab.Sym]bool)
	for i := 0; i < 150; i++ {
		e := [2]symtab.Sym{symtab.Sym(st.Intern(names(rng.Intn(30)))), symtab.Sym(st.Intern(names(rng.Intn(30))))}
		if !seen[e] {
			seen[e] = true
			edges = append(edges, e)
		}
	}
	r, err := store.BuildBinary("f", edges)
	if err != nil {
		t.Fatal(err)
	}
	ver := r.Version()
	sameStats(t, Collect(r), bruteStats(r))
	if r.Version() != ver {
		t.Fatalf("collection moved the frozen relation's version: %d -> %d (thawed?)", ver, r.Version())
	}
}

// Collect on a wider-arity relation fills per-column distinct counts.
func TestCollectWideArity(t *testing.T) {
	st := symtab.NewTable()
	store := edb.NewStore(st)
	sym := func(s string) symtab.Sym { return symtab.Sym(st.Intern(s)) }
	store.Insert("t", sym("a"), sym("x"), sym("p"))
	store.Insert("t", sym("a"), sym("y"), sym("p"))
	store.Insert("t", sym("b"), sym("y"), sym("p"))
	s := Collect(store.Relation("t"))
	if s.Arity != 3 || s.Tuples != 3 {
		t.Fatalf("arity/tuples: %+v", s)
	}
	want := []int{2, 2, 1}
	for i, w := range want {
		if s.Distinct[i] != w {
			t.Fatalf("distinct[%d] = %d, want %d", i, s.Distinct[i], w)
		}
	}
}

// The collector returns cached snapshots while the relation version
// holds, recomputes after mutations, and drops everything on Invalidate.
func TestCollectorCaching(t *testing.T) {
	st := symtab.NewTable()
	store := edb.NewStore(st)
	sym := func(s string) symtab.Sym { return symtab.Sym(st.Intern(s)) }
	store.Insert("e", sym("a"), sym("b"))
	r := store.Relation("e")

	var c Collector
	s1 := c.Stats(r)
	if s2 := c.Stats(r); s2 != s1 {
		t.Fatal("unchanged relation should hit the cache")
	}
	store.Insert("e", sym("b"), sym("c"))
	s3 := c.Stats(r)
	if s3 == s1 || s3.Tuples != 2 {
		t.Fatalf("mutation should recompute: %+v", s3)
	}
	c.Invalidate()
	if s4 := c.Stats(r); s4 == s3 {
		t.Fatal("Invalidate should drop the cache")
	}
	if got := c.Stats(nil); got.Tuples != 0 || got.Name != "" {
		t.Fatalf("nil relation should yield the empty snapshot, got %+v", got)
	}
}

// The degree histogram places degrees in log2 buckets.
func TestHistBuckets(t *testing.T) {
	var h Hist
	for _, d := range []int{1, 2, 3, 4, 7, 8, 1 << 20, 0, -3} {
		h.Add(d)
	}
	if h.Keys() != 7 {
		t.Fatalf("Keys() = %d, want 7 (non-positive ignored)", h.Keys())
	}
	if h.Buckets[0] != 1 || h.Buckets[1] != 2 || h.Buckets[2] != 2 || h.Buckets[3] != 1 || h.Buckets[20] != 1 {
		t.Fatalf("bucket layout wrong: %s", h.String())
	}
}
