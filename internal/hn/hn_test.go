package hn

import (
	"reflect"
	"testing"
	"testing/quick"

	"chainlog/internal/chaineval"
	"chainlog/internal/counting"
	"chainlog/internal/equations"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
	"chainlog/internal/workload"
)

func sgShape(t *testing.T, st *symtab.Table) equations.LinearShape {
	t.Helper()
	res := parser.MustParse(workload.SGProgram, st)
	sys, err := equations.Transform(res.Program)
	if err != nil {
		t.Fatal(err)
	}
	shape, ok := sys.LinearDecompose("sg")
	if !ok {
		t.Fatal("sg does not decompose")
	}
	return shape
}

func TestHNMatchesCountingOnRandomTrees(t *testing.T) {
	f := func(seed int64) bool {
		st := symtab.NewTable()
		w := workload.RandomTree(st, 20, 0.4, seed)
		shape := sgShape(t, st)
		src := chaineval.StoreSource{Store: w.Store}
		a, _ := Evaluate(shape, src, w.Query, 0)
		b, _ := counting.Evaluate(shape, src, w.Query, 0)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHNCyclicBound(t *testing.T) {
	st := symtab.NewTable()
	w := workload.Cyclic(st, 3, 4)
	shape := sgShape(t, st)
	got, stats := Evaluate(shape, chaineval.StoreSource{Store: w.Store}, w.Query, 0)
	if !stats.BoundStopped {
		t.Fatal("cyclic run should stop via the bound")
	}
	if len(got) != 4 {
		t.Fatalf("answers = %d, want 4", len(got))
	}
}

// Ablation A2: on sample (c) Henschen–Naqvi re-walks the aligned down
// chain every level (quadratic terms touched), while the graph-traversal
// engine shares the spine (linear nodes). The asymmetry must show in the
// growth ratio.
func TestHNQuadraticOnSampleC(t *testing.T) {
	hnWork := func(n int) int {
		st := symtab.NewTable()
		w := workload.SampleC(st, n)
		shape := sgShape(t, st)
		_, stats := Evaluate(shape, chaineval.StoreSource{Store: w.Store}, w.Query, 0)
		return stats.TermsTouched
	}
	chainWork := func(n int) int {
		st := symtab.NewTable()
		w := workload.SampleC(st, n)
		res := parser.MustParse(workload.SGProgram, st)
		sys, _ := equations.Transform(res.Program)
		eng := chaineval.New(sys, chaineval.StoreSource{Store: w.Store}, chaineval.Options{})
		r, err := eng.Query("sg", w.Query)
		if err != nil {
			t.Fatal(err)
		}
		return r.Nodes
	}
	h1, h2 := hnWork(64), hnWork(128)
	c1, c2 := chainWork(64), chainWork(128)
	hRatio := float64(h2) / float64(h1)
	cRatio := float64(c2) / float64(c1)
	if hRatio < 3.0 {
		t.Errorf("HN growth ratio %.2f on sample (c): expected ~4 (quadratic)", hRatio)
	}
	if cRatio > 2.6 {
		t.Errorf("chain growth ratio %.2f on sample (c): expected ~2 (linear)", cRatio)
	}
}

func TestHNAcyclicIterations(t *testing.T) {
	st := symtab.NewTable()
	w := workload.SampleB(st, 10)
	shape := sgShape(t, st)
	_, stats := Evaluate(shape, chaineval.StoreSource{Store: w.Store}, w.Query, 0)
	if stats.Iterations != 10 {
		t.Fatalf("iterations = %d, want 10", stats.Iterations)
	}
	if stats.BoundStopped {
		t.Fatal("acyclic run hit the bound")
	}
}
