// Package hn implements the Henschen–Naqvi evaluation method [Henschen,
// Naqvi 1984] for linear equations p = e0 ∪ e1·p·e2 and queries p(a, Y),
// as characterized in the paper's comparison (Section 3):
//
//	answer = ⋃_{i ≥ 0} e2^i( e0( e1^i(a) ) )
//
// computed iteratively, set-at-a-time, with unary (node) intermediate
// results. The crucial difference from the paper's graph-traversal
// algorithm is that Henschen–Naqvi does not remember paths traversed in
// earlier iterations: the e2^i image is recomputed from scratch for every
// i. Sample (c) of Figure 7 makes this quadratic where the traversal
// algorithm — which shares the single automaton spine across iterations —
// stays linear (ablation A2).
package hn

import (
	"slices"

	"chainlog/internal/chaineval"
	"chainlog/internal/equations"
	"chainlog/internal/regimage"
	"chainlog/internal/symtab"
)

// Stats reports the method's node-at-a-time work.
type Stats struct {
	// Iterations is the number of levels i explored.
	Iterations int
	// SetOps is the number of image applications performed.
	SetOps int
	// TermsTouched sums the sizes of all intermediate sets — the
	// duplicated down-walk work shows up here.
	TermsTouched int
	// BoundStopped reports that the cyclic bound ended the loop.
	BoundStopped bool
}

// Evaluate runs Henschen–Naqvi. maxLevels > 0 overrides the automatic
// cyclic m·n bound.
func Evaluate(shape equations.LinearShape, src chaineval.Source, a symtab.Sym, maxLevels int) ([]symtab.Sym, Stats) {
	e0 := regimage.New(shape.E0, src)
	e1 := regimage.New(shape.E1, src)
	e2 := regimage.New(shape.E2, src)

	var stats Stats
	limit := maxLevels
	if limit <= 0 {
		d1 := e1.Closure([]symtab.Sym{a})
		d2 := e2.Closure(e0.ImageSet(d1))
		limit = max(1, len(d1)) * max(1, len(d2))
	}

	answers := make(map[symtab.Sym]bool)
	up := []symtab.Sym{a}
	for i := 0; len(up) > 0; i++ {
		if i >= limit {
			stats.BoundStopped = true
			break
		}
		stats.Iterations++
		stats.TermsTouched += len(up)

		// flat step, then i down steps recomputed from scratch — the
		// method's signature lack of memoization.
		cur := e0.ImageSet(up)
		stats.SetOps++
		stats.TermsTouched += len(cur)
		for k := 0; k < i && len(cur) > 0; k++ {
			cur = e2.ImageSet(cur)
			stats.SetOps++
			stats.TermsTouched += len(cur)
		}
		for _, v := range cur {
			answers[v] = true
		}

		up = e1.ImageSet(up)
		stats.SetOps++
	}

	out := make([]symtab.Sym, 0, len(answers))
	for s := range answers {
		out = append(out, s)
	}
	sortSyms(out)
	return out, stats
}

func sortSyms(s []symtab.Sym) {
	slices.Sort(s)
}
