// Package qsqnet implements Query-Subquery Net evaluation (Nguyen &
// Cao's QSQ-net formulation of QSQR) for arbitrary safe Datalog: a
// goal-directed, memoizing strategy that sits between the paper's
// chain traversal (fast, chain subset only) and whole-program
// bottom-up (general, binding-blind).
//
// The net is compiled once per (program, query adornment): one node
// per adorned intensional predicate, holding the predicate's rules
// with a fixed bound-first evaluation order, the statically known
// bound-argument mask of every body step, and — for intensional body
// steps — the adorned key of the subquery the step generates. Nodes
// are discovered by breadth-first search over (predicate, adornment)
// pairs from the query's own adornment, so only binding patterns the
// evaluation can actually reach are compiled; the set is finite
// (bounded by 2^arity per predicate) and the compiled Net depends only
// on the rules, never on the facts — it is the shareable part of a
// prepared plan.
//
// Evaluation memoizes two families of tables: input tables (one per
// adorned predicate, holding the bound-argument tuples of generated
// subqueries) and answer tables (one per intensional predicate,
// holding derived facts, shared across adornments — every entry is a
// true fact, so sharing only prunes repeated work). Termination is by
// subsumption under a fixed adornment: a subquery or answer equal to a
// memoized one is not reprocessed, and both table families are finite
// over the active domain. New answers propagate semi-naively: each
// round re-evaluates only (rule, input, delta-pinned step)
// combinations where the pinned intensional step ranges over the
// answers added since the previous round, so quiescent parts of the
// net cost nothing.
package qsqnet

import (
	"context"
	"fmt"
	"sort"

	"chainlog/internal/ast"
	"chainlog/internal/bottomup"
	"chainlog/internal/ctxpoll"
	"chainlog/internal/edb"
	"chainlog/internal/symtab"
)

// Stats reports the work one evaluation performed, in the same
// abstract units the other strategies use.
type Stats struct {
	// Rounds is the number of semi-naive propagation rounds.
	Rounds int
	// Subqueries is the number of distinct (adorned predicate, bound
	// tuple) subqueries memoized in the input tables.
	Subqueries int
	// Answers is the number of distinct facts derived into the answer
	// tables (across every predicate the goal touched).
	Answers int64
	// Firings is the number of successful rule instantiations.
	Firings int64
}

// Net is the compiled query-subquery net for one program and one root
// adornment. It is immutable after Compile and safe for concurrent
// Eval calls, each of which builds its own tables.
type Net struct {
	pred    string
	adorn   string
	nodes   []*node
	byKey   map[string]*node
	derived map[string]bool
	arities map[string]int
	// ansMasks lists, per intensional predicate, the statically known
	// bound-argument masks with which rule bodies probe its answer
	// table; Eval registers a hash index per mask.
	ansMasks map[string][]uint32
	// preds is the sorted set of intensional predicates reachable from
	// the root, the iteration order of the semi-naive rounds.
	preds []string
}

// Pred and Adornment identify the net's root goal.
func (n *Net) Pred() string      { return n.pred }
func (n *Net) Adornment() string { return n.adorn }

// Nodes reports the number of adorned-predicate nodes the net compiled
// (explain output).
func (n *Net) Nodes() int { return len(n.nodes) }

// node is one adorned intensional predicate: the input-table side of
// the net (subqueries with this binding pattern) plus the compiled
// rules that answer them.
type node struct {
	key   string
	pred  string
	adorn string
	rules []*crule
}

// argRef is a compiled literal argument: a constant, or a variable
// slot in the rule's substitution frame.
type argRef struct {
	slot int // -1 for a constant
	cnst symtab.Sym
}

// cstep is one body literal in the rule's fixed evaluation order.
type cstep struct {
	lit  ast.Literal
	args []argRef
	// builtin marks a comparison step (evaluated as a filter; all its
	// variables are bound by the time the order reaches it).
	builtin bool
	// intensional marks a step over a derived predicate, answered from
	// the answer tables; subKey is the adorned input table its
	// subqueries feed.
	intensional bool
	subKey      string
	subAdorn    string
	// mask has bit i set when argument i is statically bound at this
	// step (a constant, or a variable bound by the head input or an
	// earlier step). boundRefs lists the bound arguments in position
	// order, matching edb.Relation.MatchEach's calling convention.
	mask      uint32
	boundRefs []argRef
}

// crule is one rule compiled under a head adornment.
type crule struct {
	rule  ast.Rule
	nvars int
	// inBind maps the adornment's bound head positions onto the frame:
	// a slot to assign from the input tuple, or a constant the input
	// must equal.
	inBind []argRef
	// head builds the derived fact from the completed frame.
	head []argRef
	// steps is the body in fixed bound-first order.
	steps []cstep
}

// Compile builds the net for a query over pred with the given b/f
// adornment. The program's facts play no part: the net depends only on
// the rules, so a compiled net survives fact churn.
func Compile(prog *ast.Program, pred string, adornment string) (*Net, error) {
	arities, err := prog.Arities()
	if err != nil {
		return nil, fmt.Errorf("qsqnet: %w", err)
	}
	derived := prog.DerivedSet()
	if !derived[pred] {
		return nil, fmt.Errorf("qsqnet: %s is not an intensional predicate", pred)
	}
	if ar, ok := arities[pred]; ok && ar != len(adornment) {
		return nil, fmt.Errorf("qsqnet: adornment %s does not match %s/%d", adornment, pred, ar)
	}
	n := &Net{
		pred:     pred,
		adorn:    adornment,
		byKey:    map[string]*node{},
		derived:  derived,
		arities:  arities,
		ansMasks: map[string][]uint32{},
	}
	maskSeen := map[string]map[uint32]bool{}
	predSeen := map[string]bool{}

	queue := []*node{{key: adornedKey(pred, adornment), pred: pred, adorn: adornment}}
	n.byKey[queue[0].key] = queue[0]
	for len(queue) > 0 {
		nd := queue[0]
		queue = queue[1:]
		n.nodes = append(n.nodes, nd)
		if !predSeen[nd.pred] {
			predSeen[nd.pred] = true
			n.preds = append(n.preds, nd.pred)
		}
		for _, r := range prog.RulesFor(nd.pred) {
			cr, subs, err := compileRule(r, nd.adorn, derived, arities)
			if err != nil {
				return nil, err
			}
			if cr == nil {
				// Dead rule (not range-restricted, or an unsatisfiable
				// built-in): derives nothing under bottom-up semantics,
				// so the net drops it for answer-equivalence with the
				// general strategies.
				continue
			}
			nd.rules = append(nd.rules, cr)
			for si := range cr.steps {
				s := &cr.steps[si]
				if !s.intensional {
					continue
				}
				if maskSeen[s.lit.Pred] == nil {
					maskSeen[s.lit.Pred] = map[uint32]bool{}
				}
				if !maskSeen[s.lit.Pred][s.mask] {
					maskSeen[s.lit.Pred][s.mask] = true
					n.ansMasks[s.lit.Pred] = append(n.ansMasks[s.lit.Pred], s.mask)
				}
			}
			for _, sub := range subs {
				if n.byKey[sub.key] == nil {
					n.byKey[sub.key] = sub
					queue = append(queue, sub)
				}
			}
		}
	}
	sort.Strings(n.preds)
	return n, nil
}

func adornedKey(pred, adorn string) string { return pred + "^" + adorn }

// compileRule fixes a rule's evaluation order under a head adornment.
// It returns nil (no error) for rules bottom-up evaluation could never
// fire: a head variable appearing in no body atom (non-range-
// restricted — the input binding must not conjure answers the general
// strategies would not derive), or a built-in whose variables no atom
// binds. subs lists the adorned nodes of the rule's intensional steps.
func compileRule(r ast.Rule, adorn string, derived map[string]bool, arities map[string]int) (*crule, []*node, error) {
	if len(r.Head.Args) != len(adorn) {
		return nil, nil, fmt.Errorf("qsqnet: rule head %s/%d under adornment %s", r.Head.Pred, len(r.Head.Args), adorn)
	}
	slots := map[string]int{}
	slotOf := func(v string) int {
		s, ok := slots[v]
		if !ok {
			s = len(slots)
			slots[v] = s
		}
		return s
	}
	ref := func(t ast.Term) argRef {
		if t.IsVar() {
			return argRef{slot: slotOf(t.Var)}
		}
		return argRef{slot: -1, cnst: t.Const}
	}

	// Range restriction: every head variable must occur in a body atom,
	// or the rule derives nothing bottom-up.
	bodyVars := map[string]bool{}
	for _, l := range r.Body {
		if l.IsBuiltin() {
			continue
		}
		for _, a := range l.Args {
			if a.IsVar() {
				bodyVars[a.Var] = true
			}
		}
	}
	for _, a := range r.Head.Args {
		if a.IsVar() && !bodyVars[a.Var] {
			return nil, nil, nil
		}
	}

	cr := &crule{rule: r}
	bound := map[string]bool{}
	for i, c := range adorn {
		a := r.Head.Args[i]
		switch c {
		case 'b':
			cr.inBind = append(cr.inBind, ref(a))
			if a.IsVar() {
				bound[a.Var] = true
			}
		case 'f':
			// Free head position: nothing to bind.
		default:
			return nil, nil, fmt.Errorf("qsqnet: bad adornment %q", adorn)
		}
	}

	// Greedy bound-first order, mirroring the bottom-up evaluator's
	// runtime heuristic but resolved at compile time: ready built-ins
	// first (cheap filters), then the atom with the most bound
	// arguments, extensional before intensional on ties.
	type cand struct {
		idx int
		lit ast.Literal
	}
	var remaining []cand
	for i, l := range r.Body {
		remaining = append(remaining, cand{i, l})
	}
	var subs []*node
	for len(remaining) > 0 {
		pick := -1
		bestScore := -1
		for ci, c := range remaining {
			if c.lit.IsBuiltin() {
				ready := true
				for _, a := range c.lit.Args {
					if a.IsVar() && !bound[a.Var] {
						ready = false
						break
					}
				}
				if ready {
					pick = ci
					break
				}
				continue
			}
			score := 0
			for _, a := range c.lit.Args {
				if !a.IsVar() || bound[a.Var] {
					score++
				}
			}
			score *= 2
			if !derived[c.lit.Pred] {
				score++ // extensional atoms win ties: cheaper to probe
			}
			if score > bestScore {
				bestScore = score
				pick = ci
			}
		}
		if pick == -1 {
			// Only built-ins remain and none is ready: no atom binds
			// their variables, so the rule can never fire (unsafe).
			return nil, nil, nil
		}
		c := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)

		s := cstep{lit: c.lit, builtin: c.lit.IsBuiltin()}
		for i, a := range c.lit.Args {
			ar := ref(a)
			s.args = append(s.args, ar)
			if !a.IsVar() || bound[a.Var] {
				s.mask |= 1 << uint(i)
				s.boundRefs = append(s.boundRefs, ar)
			}
		}
		if !s.builtin && derived[c.lit.Pred] {
			s.intensional = true
			b := make([]byte, len(c.lit.Args))
			for i := range c.lit.Args {
				if s.mask&(1<<uint(i)) != 0 {
					b[i] = 'b'
				} else {
					b[i] = 'f'
				}
			}
			s.subAdorn = string(b)
			s.subKey = adornedKey(c.lit.Pred, s.subAdorn)
			subs = append(subs, &node{key: s.subKey, pred: c.lit.Pred, adorn: s.subAdorn})
		}
		for _, a := range c.lit.Args {
			if a.IsVar() {
				bound[a.Var] = true
			}
		}
		cr.steps = append(cr.steps, s)
	}
	for _, a := range r.Head.Args {
		cr.head = append(cr.head, ref(a))
	}
	cr.nvars = len(slots)
	return cr, subs, nil
}

// unbound marks an unassigned frame slot. symtab.None is a valid
// constant in no relation, so it doubles as the sentinel exactly as it
// does in the bottom-up evaluator's substitution map.
const unbound = symtab.None

// inputTable memoizes the subqueries of one adorned predicate: tuples
// of bound-argument values, deduplicated, with a processed-prefix mark.
type inputTable struct {
	rows [][]symtab.Sym
	seen map[string]bool
	mark int
}

func (t *inputTable) add(row []symtab.Sym) bool {
	k := packKey(row)
	if t.seen[k] {
		return false
	}
	t.seen[k] = true
	t.rows = append(t.rows, append([]symtab.Sym(nil), row...))
	return true
}

// answerTable memoizes the derived facts of one intensional predicate,
// in arrival order (the delta windows of the semi-naive rounds), with
// one hash index per statically registered probe mask.
type answerTable struct {
	rows [][]symtab.Sym
	seen map[string]bool
	idx  map[uint32]map[string][]int
	mark int // answers below mark have been propagated
}

func newAnswerTable(masks []uint32) *answerTable {
	t := &answerTable{seen: map[string]bool{}, idx: map[uint32]map[string][]int{}}
	for _, m := range masks {
		if m != 0 {
			t.idx[m] = map[string][]int{}
		}
	}
	return t
}

func (t *answerTable) add(row []symtab.Sym) bool {
	k := packKey(row)
	if t.seen[k] {
		return false
	}
	t.seen[k] = true
	i := len(t.rows)
	t.rows = append(t.rows, append([]symtab.Sym(nil), row...))
	for mask, buckets := range t.idx {
		bk := packMasked(t.rows[i], mask)
		buckets[bk] = append(buckets[bk], i)
	}
	return true
}

// lookup returns the indexes of rows matching the bound values under
// mask (all rows for mask 0).
func (t *answerTable) lookup(mask uint32, bound []symtab.Sym) []int {
	if mask == 0 {
		idxs := make([]int, len(t.rows))
		for i := range idxs {
			idxs[i] = i
		}
		return idxs
	}
	buckets, ok := t.idx[mask]
	if !ok {
		// Unregistered mask (root filtering only): linear scan.
		var out []int
		for i, r := range t.rows {
			if matchesMask(r, mask, bound) {
				out = append(out, i)
			}
		}
		return out
	}
	return buckets[packKey(bound)]
}

func matchesMask(row []symtab.Sym, mask uint32, bound []symtab.Sym) bool {
	k := 0
	for i := range row {
		if mask&(1<<uint(i)) != 0 {
			if row[i] != bound[k] {
				return false
			}
			k++
		}
	}
	return true
}

func packKey(row []symtab.Sym) string {
	b := make([]byte, 0, 4*len(row))
	for _, s := range row {
		v := uint32(s)
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// packMasked packs the masked positions of a full row — the same key
// packKey computes from the corresponding bound vector.
func packMasked(row []symtab.Sym, mask uint32) string {
	b := make([]byte, 0, 4*len(row))
	for i, s := range row {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		v := uint32(s)
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// pollEvery bounds how many join probes run between context polls: the
// same order of magnitude as the chain engine's node-visit poll
// stride, so a deadline cancels a runaway evaluation promptly without
// the poll dominating tight loops.
const pollEvery = 4096

// evalState is one Eval call's mutable state over an immutable Net.
type evalState struct {
	net   *Net
	store *edb.Store
	st    *symtab.Table
	ctx   context.Context
	in    map[string]*inputTable
	ans   map[string]*answerTable
	stats Stats
	ops   int
	err   error
}

// Eval answers the net's goal for one bound-argument vector (one value
// per 'b' in the root adornment, in position order), against the live
// extensional store. It returns every full tuple of the root predicate
// consistent with the bound arguments. The context is polled
// throughout; on cancellation the error wraps context.Cause.
func (n *Net) Eval(ctx context.Context, store *edb.Store, bound []symtab.Sym) ([][]symtab.Sym, Stats, error) {
	nb := 0
	for _, c := range n.adorn {
		if c == 'b' {
			nb++
		}
	}
	if len(bound) != nb {
		return nil, Stats{}, fmt.Errorf("qsqnet: goal %s^%s expects %d bound arguments, got %d", n.pred, n.adorn, nb, len(bound))
	}
	e := &evalState{
		net:   n,
		store: store,
		st:    store.SymTab(),
		ctx:   ctx,
		in:    map[string]*inputTable{},
		ans:   map[string]*answerTable{},
	}
	for _, nd := range n.nodes {
		e.in[nd.key] = &inputTable{seen: map[string]bool{}}
	}
	for _, p := range n.preds {
		if e.ans[p] == nil {
			e.ans[p] = newAnswerTable(n.ansMasks[p])
		}
	}
	e.addInput(adornedKey(n.pred, n.adorn), bound)

	if err := e.run(); err != nil {
		return nil, e.stats, err
	}

	// Project the root predicate's answers onto the goal: the shared
	// answer table can hold tuples derived for recursive subqueries
	// with other bindings, so filter by the goal's own bound values.
	var rootMask uint32
	for i, c := range n.adorn {
		if c == 'b' {
			rootMask |= 1 << uint(i)
		}
	}
	tbl := e.ans[n.pred]
	var out [][]symtab.Sym
	for _, row := range tbl.rows {
		if rootMask == 0 || matchesMask(row, rootMask, bound) {
			out = append(out, row)
		}
	}
	return out, e.stats, nil
}

// addInput memoizes a subquery tuple, returning whether it was new.
func (e *evalState) addInput(key string, row []symtab.Sym) bool {
	t := e.in[key]
	if t == nil {
		// A key outside the compiled net can only be the root; treat as
		// a bug loudly rather than dropping work silently.
		panic("qsqnet: subquery for uncompiled node " + key)
	}
	if t.add(row) {
		e.stats.Subqueries++
		return true
	}
	return false
}

// poll decrements the probe budget and checks the context; it reports
// false once the evaluation must stop (e.err is then set).
func (e *evalState) poll() bool {
	if e.err != nil {
		return false
	}
	e.ops++
	if e.ops%pollEvery != 0 {
		return true
	}
	if err := ctxpoll.Err(e.ctx); err != nil {
		e.err = fmt.Errorf("qsqnet: evaluation canceled: %w", err)
		return false
	}
	return true
}

// run drives the evaluation to fixpoint: process new subqueries, then
// propagate answer deltas through pinned re-evaluation, until a round
// adds nothing.
func (e *evalState) run() error {
	e.processInputs()
	for e.err == nil {
		e.stats.Rounds++
		if err := ctxpoll.Err(e.ctx); err != nil {
			return fmt.Errorf("qsqnet: evaluation canceled: %w", err)
		}
		// Snapshot this round's delta windows.
		type window struct{ lo, hi int }
		deltas := map[string]window{}
		any := false
		for _, p := range e.net.preds {
			t := e.ans[p]
			deltas[p] = window{t.mark, len(t.rows)}
			if t.mark < len(t.rows) {
				any = true
			}
		}
		if !any {
			return e.err
		}
		// Pinned passes: every (rule, processed input, intensional step
		// with a non-empty delta) combination re-evaluates with the
		// pinned step ranging over the delta only. Delta tuples are
		// already in the tables, so any derivation touching at least
		// one new answer is found with the other steps on full tables.
		for _, nd := range e.net.nodes {
			it := e.in[nd.key]
			for _, cr := range nd.rules {
				for si := range cr.steps {
					s := &cr.steps[si]
					if !s.intensional {
						continue
					}
					w := deltas[s.lit.Pred]
					if w.lo == w.hi {
						continue
					}
					for ri := 0; ri < it.mark; ri++ {
						if e.err != nil {
							return e.err
						}
						e.evalRule(nd, cr, it.rows[ri], si, w.lo, w.hi)
					}
				}
			}
		}
		// Advance the marks past the propagated windows; answers added
		// during this round form the next delta.
		for _, p := range e.net.preds {
			e.ans[p].mark = deltas[p].hi
		}
		// Subqueries generated by the pinned passes get their full
		// evaluation before the next delta snapshot.
		e.processInputs()
	}
	return e.err
}

// processInputs drains every input table's unprocessed suffix, fully
// evaluating each node's rules for each new subquery tuple. New
// subqueries generated along the way extend the same tables and are
// drained in the same call.
func (e *evalState) processInputs() {
	for changed := true; changed && e.err == nil; {
		changed = false
		for _, nd := range e.net.nodes {
			it := e.in[nd.key]
			for it.mark < len(it.rows) {
				if e.err != nil {
					return
				}
				changed = true
				row := it.rows[it.mark]
				it.mark++
				for _, cr := range nd.rules {
					e.evalRule(nd, cr, row, -1, 0, 0)
				}
			}
		}
	}
}

// evalRule enumerates the substitutions satisfying one compiled rule
// for one input tuple, emitting instantiated heads into the answer
// table. pin >= 0 restricts that intensional step to the answer rows
// in [pinLo, pinHi) — the semi-naive delta window.
func (e *evalState) evalRule(nd *node, cr *crule, input []symtab.Sym, pin, pinLo, pinHi int) {
	frame := make([]symtab.Sym, cr.nvars)
	for i := range frame {
		frame[i] = unbound
	}
	// Bind the head's bound positions from the input tuple; a repeated
	// variable or head constant constrains the input.
	for i, b := range cr.inBind {
		v := input[i]
		if b.slot < 0 {
			if b.cnst != v {
				return
			}
			continue
		}
		if frame[b.slot] != unbound && frame[b.slot] != v {
			return
		}
		frame[b.slot] = v
	}
	e.step(nd, cr, frame, 0, pin, pinLo, pinHi)
}

// valOf resolves an argument reference against the frame.
func valOf(frame []symtab.Sym, r argRef) symtab.Sym {
	if r.slot < 0 {
		return r.cnst
	}
	return frame[r.slot]
}

// step evaluates body position si onward under the frame.
func (e *evalState) step(nd *node, cr *crule, frame []symtab.Sym, si, pin, pinLo, pinHi int) {
	if e.err != nil {
		return
	}
	if si == len(cr.steps) {
		head := make([]symtab.Sym, len(cr.head))
		for i, r := range cr.head {
			head[i] = valOf(frame, r)
		}
		e.stats.Firings++
		if e.ans[nd.pred].add(head) {
			e.stats.Answers++
		}
		return
	}
	s := &cr.steps[si]
	if !e.poll() {
		return
	}

	if s.builtin {
		if bottomup.Compare(e.st, s.lit.Op, valOf(frame, s.args[0]), valOf(frame, s.args[1])) {
			e.step(nd, cr, frame, si+1, pin, pinLo, pinHi)
		}
		return
	}

	// unify binds the step's free arguments from a candidate tuple,
	// recursing on success; assignments are undone before returning so
	// the frame can be reused across candidates.
	unify := func(tuple []symtab.Sym) {
		var assigned []int
		ok := true
		for i, r := range s.args {
			v := tuple[i]
			if r.slot < 0 {
				if r.cnst != v {
					ok = false
					break
				}
				continue
			}
			if frame[r.slot] != unbound {
				if frame[r.slot] != v {
					ok = false
					break
				}
				continue
			}
			frame[r.slot] = v
			assigned = append(assigned, r.slot)
		}
		if ok {
			e.step(nd, cr, frame, si+1, pin, pinLo, pinHi)
		}
		for _, sl := range assigned {
			frame[sl] = unbound
		}
	}

	if !s.intensional {
		rel := e.store.Relation(s.lit.Pred)
		if rel == nil {
			return
		}
		bound := make([]symtab.Sym, len(s.boundRefs))
		for i, r := range s.boundRefs {
			bound[i] = valOf(frame, r)
		}
		rel.MatchEach(s.mask, bound, func(tuple []symtab.Sym) {
			if !e.poll() {
				return
			}
			unify(tuple)
		})
		return
	}

	// Intensional step: memoize the subquery (its answers are computed
	// by the node it feeds), then join against the answer table — the
	// delta window when this step is the pinned one, the index buckets
	// otherwise.
	bound := make([]symtab.Sym, len(s.boundRefs))
	for i, r := range s.boundRefs {
		bound[i] = valOf(frame, r)
	}
	e.addInput(s.subKey, bound)
	tbl := e.ans[s.lit.Pred]
	if si == pin {
		// The delta window restricted to this step's bound arguments:
		// index buckets hold row positions in ascending order, so the
		// window is a contiguous bucket slice.
		if s.mask == 0 {
			for i := pinLo; i < pinHi; i++ {
				if !e.poll() {
					return
				}
				unify(tbl.rows[i])
			}
			return
		}
		idxs := tbl.lookup(s.mask, bound)
		for _, i := range idxs[sort.SearchInts(idxs, pinLo):] {
			if i >= pinHi {
				break
			}
			if !e.poll() {
				return
			}
			unify(tbl.rows[i])
		}
		return
	}
	for _, i := range tbl.lookup(s.mask, bound) {
		if !e.poll() {
			return
		}
		unify(tbl.rows[i])
	}
}
