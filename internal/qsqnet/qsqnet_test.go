package qsqnet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"chainlog/internal/ast"
	"chainlog/internal/bottomup"
	"chainlog/internal/edb"
	"chainlog/internal/parser"
	"chainlog/internal/symtab"
)

// harness parses a program, loads its facts, and exposes oracle-checked
// evaluation of a concrete query.
type harness struct {
	t     *testing.T
	st    *symtab.Table
	prog  *ast.Program
	store *edb.Store
}

func newHarness(t *testing.T, src string) *harness {
	t.Helper()
	st := symtab.NewTable()
	res, err := parser.Parse(src, st)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	store := edb.NewStore(st)
	for _, f := range res.Facts {
		store.Insert(f.Pred, f.Args...)
	}
	return &harness{t: t, st: st, prog: res.Program, store: store}
}

func (h *harness) assert(pred string, names ...string) {
	syms := make([]symtab.Sym, len(names))
	for i, n := range names {
		syms[i] = h.st.Intern(n)
	}
	h.store.Insert(pred, syms...)
}

// eval runs the net for a concrete query text and returns the answer
// rows projected exactly as bottomup.Answer projects them.
func (h *harness) eval(query string) ([][]symtab.Sym, Stats, error) {
	h.t.Helper()
	q, err := parser.ParseQuery(query, h.st)
	if err != nil {
		h.t.Fatalf("parse query %q: %v", query, err)
	}
	net, err := Compile(h.prog, q.Pred, q.Adornment())
	if err != nil {
		return nil, Stats{}, err
	}
	var bound []symtab.Sym
	for _, a := range q.Args {
		if !a.IsVar() {
			bound = append(bound, a.Const)
		}
	}
	tuples, stats, err := net.Eval(context.Background(), h.store, bound)
	if err != nil {
		return nil, stats, err
	}
	// Project onto the query like the oracle does: load the tuples into
	// a store and reuse bottomup.Answer's filter/collapse/dedupe/sort.
	idb := edb.NewStore(h.st)
	for _, tp := range tuples {
		idb.Insert(q.Pred, tp...)
	}
	return bottomup.Answer(idb, q), stats, nil
}

// oracle computes the reference answer with the seminaive fixpoint.
func (h *harness) oracle(query string) [][]symtab.Sym {
	h.t.Helper()
	q, err := parser.ParseQuery(query, h.st)
	if err != nil {
		h.t.Fatalf("parse query %q: %v", query, err)
	}
	idb, _, err := bottomup.Seminaive(h.prog, h.store)
	if err != nil {
		h.t.Fatalf("seminaive: %v", err)
	}
	return bottomup.Answer(idb, q)
}

func (h *harness) check(query string) Stats {
	h.t.Helper()
	got, stats, err := h.eval(query)
	if err != nil {
		h.t.Fatalf("eval %q: %v", query, err)
	}
	want := h.oracle(query)
	if !reflect.DeepEqual(got, want) {
		h.t.Fatalf("%s:\n got %v\nwant %v", query, got, want)
	}
	return stats
}

func TestLinearTransitiveClosure(t *testing.T) {
	h := newHarness(t, `
tc(X, Y) :- e(X, Y).
tc(X, Z) :- e(X, Y), tc(Y, Z).
e(a, b). e(b, c). e(c, d). e(x, y).
`)
	for _, q := range []string{"tc(a, Y)", "tc(X, d)", "tc(X, Y)", "tc(a, d)", "tc(a, a)", "tc(X, X)"} {
		h.check(q)
	}
}

// The bound argument must prune: a goal at the tail of a long chain
// must not enumerate subqueries for the unreachable prefix.
func TestBoundArgumentPrunes(t *testing.T) {
	h := newHarness(t, `
tc(X, Y) :- e(X, Y).
tc(X, Z) :- e(X, Y), tc(Y, Z).
`)
	n := 200
	for i := 0; i < n; i++ {
		h.assert("e", fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1))
	}
	stats := h.check(fmt.Sprintf("tc(n%d, Y)", n-10))
	if stats.Subqueries > 20 {
		t.Fatalf("bound goal near the tail memoized %d subqueries; bindings did not prune", stats.Subqueries)
	}
}

// Nonlinear recursion (two intensional body literals) is exactly what
// the chain route and magic sets cannot compile; qsqnet must handle it.
func TestNonlinearTransitiveClosure(t *testing.T) {
	h := newHarness(t, `
tcn(X, Y) :- e(X, Y).
tcn(X, Z) :- tcn(X, Y), tcn(Y, Z).
e(a, b). e(b, c). e(c, d). e(d, a).
`)
	for _, q := range []string{"tcn(a, Y)", "tcn(X, c)", "tcn(X, Y)", "tcn(a, a)"} {
		h.check(q)
	}
}

func TestMutualRecursion(t *testing.T) {
	h := newHarness(t, `
p(X, Z) :- a(X, Y), q(Y, Z).
q(X, Y) :- b(X, Y).
q(X, Z) :- b(X, Y), p(Y, Z).
a(c0, c1). a(c2, c3). b(c1, c2). b(c3, c0). b(c3, c4).
`)
	for _, q := range []string{"p(c0, Y)", "q(c1, Y)", "p(X, Y)", "q(X, c0)", "p(c0, c4)"} {
		h.check(q)
	}
}

func TestSameGenerationWithBuiltins(t *testing.T) {
	h := newHarness(t, `
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, X1), sg(X1, Y1), down(Y1, Y).
cross(X, Y) :- sg(X, Y), X != Y.
flat(c1, c2). flat(c2, c2). up(a, c1). up(b, c2). down(c2, e). down(c2, f).
`)
	for _, q := range []string{"sg(a, Y)", "sg(X, Y)", "cross(a, Y)", "cross(X, X)", "sg(a, e)"} {
		h.check(q)
	}
}

// Termination on cyclic data with a repeated-variable rule: the
// subsumption check (memoized subqueries and answers) must close the
// loop, and the repeated variable must filter, not bind twice.
func TestCyclicRepeatedVariables(t *testing.T) {
	h := newHarness(t, `
loop(X, X) :- e(X, Y), tc(Y, X).
tc(X, Y) :- e(X, Y).
tc(X, Z) :- e(X, Y), tc(Y, Z).
e(a, b). e(b, c). e(c, a). e(c, d).
`)
	for _, q := range []string{"loop(a, Y)", "loop(X, X)", "loop(a, b)", "tc(a, Y)"} {
		h.check(q)
	}
}

// Non-range-restricted rules (the identity rule r(X,X).) derive
// nothing under bottom-up semantics; the net must not let the goal's
// own binding conjure answers the general strategies would not return.
func TestRangeRestrictionMatchesBottomUp(t *testing.T) {
	h := newHarness(t, `
r(X, X).
r(X, Y) :- e(X, Y).
e(a, b).
`)
	for _, q := range []string{"r(a, Y)", "r(X, Y)", "r(c, c)", "r(X, X)"} {
		h.check(q)
	}
}

// A goal with no answers must terminate cleanly at every adornment —
// including one whose subquery tree is entirely empty.
func TestZeroAnswerGoals(t *testing.T) {
	h := newHarness(t, `
tc(X, Y) :- e(X, Y).
tc(X, Z) :- e(X, Y), tc(Y, Z).
e(a, b).
`)
	for _, q := range []string{"tc(zzz, Y)", "tc(X, zzz)", "tc(b, a)"} {
		got, stats, err := h.eval(q)
		if err != nil {
			t.Fatalf("eval %q: %v", q, err)
		}
		if len(got) != 0 {
			t.Fatalf("%s: got %v, want empty", q, got)
		}
		if stats.Rounds == 0 {
			t.Fatalf("%s: evaluation reported zero rounds", q)
		}
		h.check(q)
	}
}

// An empty program (predicate with no rules reachable) and missing
// base relations must evaluate to nothing, not error.
func TestMissingBaseRelation(t *testing.T) {
	h := newHarness(t, `
p(X, Y) :- nosuchbase(X, Y).
`)
	got, _, err := h.eval("p(a, Y)")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestCompileErrors(t *testing.T) {
	h := newHarness(t, `
p(X, Y) :- e(X, Y).
e(a, b).
`)
	if _, err := Compile(h.prog, "e", "bf"); err == nil {
		t.Error("compiling an extensional goal must error")
	}
	if _, err := Compile(h.prog, "p", "bff"); err == nil {
		t.Error("adornment/arity mismatch must error")
	}
	net, err := Compile(h.prog, "p", "bf")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := net.Eval(context.Background(), h.store, nil); err == nil {
		t.Error("wrong bound-argument count must error")
	}
	if net.Pred() != "p" || net.Adornment() != "bf" || net.Nodes() == 0 {
		t.Errorf("net metadata: %s^%s nodes=%d", net.Pred(), net.Adornment(), net.Nodes())
	}
}

// Mid-evaluation deadline cancellation: a dense cyclic graph whose
// closure is expensive, a context that expires immediately, and the
// returned error must wrap the context's cause.
func TestDeadlineCancellation(t *testing.T) {
	h := newHarness(t, `
tcn(X, Y) :- e(X, Y).
tcn(X, Z) :- tcn(X, Y), tcn(Y, Z).
`)
	rng := rand.New(rand.NewSource(7))
	n := 300
	for i := 0; i < 4*n; i++ {
		h.assert("e", fmt.Sprintf("n%d", rng.Intn(n)), fmt.Sprintf("n%d", rng.Intn(n)))
	}
	net, err := Compile(h.prog, "tcn", "ff")
	if err != nil {
		t.Fatal(err)
	}
	cause := errors.New("request deadline blown")
	ctx, cancel := context.WithDeadlineCause(context.Background(), time.Now().Add(-time.Millisecond), cause)
	defer cancel()
	_, _, err = net.Eval(ctx, h.store, nil)
	if err == nil {
		t.Fatal("expired context did not cancel evaluation")
	}
	if !errors.Is(err, cause) {
		t.Fatalf("error %v does not wrap the cancellation cause", err)
	}
}

// Randomized differential check inside the package: random small graphs
// across the adornment space against the seminaive oracle.
func TestRandomizedAgainstSeminaive(t *testing.T) {
	progs := []string{
		`
tc(X, Y) :- e(X, Y).
tc(X, Z) :- e(X, Y), tc(Y, Z).
`, `
tcn(X, Y) :- e(X, Y).
tcn(X, Z) :- tcn(X, Y), tcn(Y, Z).
`, `
p(X, Z) :- e(X, Y), q(Y, Z).
q(X, Y) :- f(X, Y).
q(X, Z) :- f(X, Y), p(Y, Z).
`,
	}
	queries := [][]string{
		{"tc(c0, Y)", "tc(X, c1)", "tc(X, Y)", "tc(c2, c3)", "tc(X, X)"},
		{"tcn(c0, Y)", "tcn(X, c1)", "tcn(X, Y)", "tcn(c2, c3)"},
		{"p(c0, Y)", "q(X, c1)", "p(X, Y)", "q(c2, Y)"},
	}
	bases := [][]string{{"e"}, {"e"}, {"e", "f"}}
	for pi, src := range progs {
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(seed))
			h := newHarness(t, src)
			for k := 0; k < 12+rng.Intn(12); k++ {
				pred := bases[pi][rng.Intn(len(bases[pi]))]
				h.assert(pred, fmt.Sprintf("c%d", rng.Intn(6)), fmt.Sprintf("c%d", rng.Intn(6)))
			}
			for _, q := range queries[pi] {
				h.check(q)
			}
		}
	}
}
