package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"chainlog"
)

// chainServer boots a server over tc (transitive closure) on an
// edge-chain of n nodes — a traversal big enough that a short deadline
// fires mid-query.
func chainServer(t *testing.T, n int, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	db := chainlog.NewDB()
	if err := db.LoadProgram(`
		tc(X, Y) :- e(X, Y).
		tc(X, Z) :- e(X, Y), tc(Y, Z).
	`); err != nil {
		t.Fatal(err)
	}
	d := &chainlog.Delta{}
	for i := 0; i < n-1; i++ {
		d.Assert("e", fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1))
	}
	if res := db.Apply(d); res.Asserted != n-1 {
		t.Fatalf("seeded %d facts, want %d", res.Asserted, n-1)
	}
	cfg.DB = db
	cfg.Logf = t.Logf
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestDeadlineCancelsMidTraversal is the acceptance criterion: a
// deliberately huge traversal under a short request deadline returns 504
// well before sequential completion time, and the serving path stays
// fully usable afterwards.
func TestDeadlineCancelsMidTraversal(t *testing.T) {
	const n = 1 << 17
	_, ts := chainServer(t, n, Config{MaxNodes: -1, MaxTimeout: time.Minute})
	req := QueryRequest{Template: "tc(?, Y)", Args: []string{"n0"}, TimeoutMS: 30_000}

	// Baseline: the full traversal, timed end to end over HTTP.
	t0 := time.Now()
	status, qr := queryRows(t, ts.URL, req)
	fullDur := time.Since(t0)
	if status != http.StatusOK {
		t.Fatalf("full run: status %d", status)
	}
	if len(qr.Result.Rows) != n-1 {
		t.Fatalf("full run: %d rows, want %d", len(qr.Result.Rows), n-1)
	}

	// Short deadline: 504, and in a fraction of the full duration.
	short := req
	short.TimeoutMS = 2
	t0 = time.Now()
	status, _ = queryRows(t, ts.URL, short)
	shortDur := time.Since(t0)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("short-deadline status %d, want 504", status)
	}
	if shortDur >= fullDur/2 {
		t.Fatalf("short-deadline run took %v, not well before the full %v", shortDur, fullDur)
	}

	// The pooled evaluator state must be reusable: the same plan still
	// completes under a generous deadline.
	status, qr = queryRows(t, ts.URL, req)
	if status != http.StatusOK || len(qr.Result.Rows) != n-1 {
		t.Fatalf("post-timeout run: status %d, %d rows", status, len(qr.Result.Rows))
	}
}

// TestConcurrentQueryDeltaTraffic hammers the server with concurrent
// template queries, batch queries and delta mutations (run under -race
// in CI). Every answer must be one of the two valid snapshots: the base
// chain, or the base chain plus the churning edge.
func TestConcurrentQueryDeltaTraffic(t *testing.T) {
	_, ts, _ := newTestServer(t, familyProgram, Config{MaxInFlight: 128})
	base := [][]string{{"abe"}, {"homer"}, {"orville"}}
	churned := [][]string{{"abe"}, {"eve"}, {"homer"}, {"orville"}}

	const (
		queryWorkers = 4
		iters        = 60
	)
	var wg sync.WaitGroup
	errc := make(chan error, queryWorkers+2)

	for w := 0; w < queryWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var rows [][]string
				if w%2 == 0 {
					status, qr := queryRows(t, ts.URL, QueryRequest{Template: "ancestor(?, Y)", Args: []string{"bart"}})
					if status != http.StatusOK {
						errc <- fmt.Errorf("query status %d", status)
						return
					}
					rows = qr.Result.Rows
				} else {
					status, qr := queryRows(t, ts.URL, QueryRequest{Template: "ancestor(?, Y)", Batch: [][]string{{"bart"}, {"lisa"}}})
					if status != http.StatusOK {
						errc <- fmt.Errorf("batch status %d", status)
						return
					}
					rows = qr.Results[0].Rows
				}
				if !reflect.DeepEqual(rows, base) && !reflect.DeepEqual(rows, churned) {
					errc <- fmt.Errorf("rows %v is neither valid snapshot", rows)
					return
				}
			}
		}(w)
	}

	// Mutator: churn parent(orville, eve) through ordered deltas.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			op := "assert"
			if i%2 == 1 {
				op = "retract"
			}
			status, body := postJSON(t, ts.URL+"/v1/delta", DeltaRequest{Ops: []DeltaOp{{Op: op, Pred: "parent", Args: []string{"orville", "eve"}}}})
			if status != http.StatusOK {
				errc <- fmt.Errorf("delta status %d: %s", status, body)
				return
			}
		}
	}()

	// Scraper: /metrics must stay consistent under load.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				errc <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("metrics status %d", resp.StatusCode)
				return
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestBatchDeadline exercises the deadline through the batch route.
func TestBatchDeadline(t *testing.T) {
	const n = 1 << 16
	_, ts := chainServer(t, n, Config{MaxNodes: -1, MaxTimeout: time.Minute})
	status, body := postJSON(t, ts.URL+"/v1/query", QueryRequest{
		Template:  "tc(?, Y)",
		Batch:     [][]string{{"n0"}, {"n1"}},
		TimeoutMS: 2,
	})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("batch short-deadline status %d, want 504: %s", status, body)
	}
	if !strings.Contains(string(body), "deadline") {
		t.Fatalf("error body should name the deadline: %s", body)
	}
}

// TestDeadlineCancelsBottomUpStrategy pins that client-selectable
// non-chain strategies honor the request deadline too: the seminaive
// fixpoint (which derives the full O(n²) transitive closure) must
// return 504 promptly instead of running to completion.
func TestDeadlineCancelsBottomUpStrategy(t *testing.T) {
	const n = 1200
	_, ts := chainServer(t, n, Config{MaxNodes: -1, MaxTimeout: time.Minute})
	t0 := time.Now()
	status, body := postJSON(t, ts.URL+"/v1/query", QueryRequest{
		Query: "tc(n0, Y)", Strategy: "seminaive", TimeoutMS: 50,
	})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("seminaive short-deadline status %d, want 504: %.120s", status, body)
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("504 took %v; the fixpoint was not canceled promptly", elapsed)
	}
}
