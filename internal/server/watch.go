package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"chainlog"
)

// WatchLine is one NDJSON line of the GET /v1/watch feed. Three shapes
// share the struct:
//
//   - reset:     {"reset":true,"epoch":E,"gen":G,"vars":[...],"rows":[...]}
//     the full answer set at (E, G); sent on first connect, and whenever
//     the cursor cannot resume (stale generation after a rule load, or a
//     cursor older than the retained change ring).
//   - delta:     {"epoch":E,"added":[...],"removed":[...]}
//     the answer-set change committed at epoch E; at least one of
//     added/removed is non-empty.
//   - heartbeat: {"head":E,"gen":G}
//     the client is caught up through epoch E of generation G; (E, G) is
//     the resume cursor to send back as ?from=E&gen=G.
type WatchLine struct {
	Reset   bool       `json:"reset,omitempty"`
	Epoch   uint64     `json:"epoch,omitempty"`
	Gen     uint64     `json:"gen,omitempty"`
	Vars    []string   `json:"vars,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	Added   [][]string `json:"added,omitempty"`
	Removed [][]string `json:"removed,omitempty"`
	Head    uint64     `json:"head,omitempty"`
}

// watchKey identifies one shared materialized view: the prepared
// template plus its binding vector.
type watchKey string

// watchEntry is a refcounted live view: every subscriber of the same
// (template, args) shares one Materialized, so N watchers cost one
// maintenance pass per mutation, not N. After the last unsubscribe the
// view lingers for Config.WatchLinger, keeping its change ring warm so
// a reconnect within the window resumes instead of resetting.
type watchEntry struct {
	view   *chainlog.Materialized
	refs   int
	linger *time.Timer
}

// acquireView returns the shared live view for (template, args),
// materializing it on first subscription. The returned release func
// drops the reference; the last release closes the view.
func (s *Server) acquireView(r *http.Request, template string, args []string) (*chainlog.Materialized, func(), error) {
	key := watchKey(template + "\x00" + strings.Join(args, "\x00"))
	s.watchMu.Lock()
	if e, ok := s.watches[key]; ok {
		if e.linger != nil {
			e.linger.Stop()
			e.linger = nil
		}
		e.refs++
		s.watchMu.Unlock()
		s.watchSubs.Inc()
		return e.view, s.releaseView(key), nil
	}
	s.watchMu.Unlock()

	// Compile and materialize outside the registry lock; plan compilation
	// is single-flighted by the registry itself.
	ctx, cancel := s.requestContext(r, 0)
	defer cancel()
	opts := s.registry.base
	opts.MaxNodes = s.admitMaxNodes(0)
	p, err := s.registry.lookup(ctx, template, opts)
	if err != nil {
		return nil, nil, err
	}
	m, err := p.Materialize(args...)
	if err != nil {
		return nil, nil, err
	}
	s.watchMu.Lock()
	if e, ok := s.watches[key]; ok {
		// Lost a materialize race; share the winner's view.
		e.refs++
		s.watchMu.Unlock()
		m.Close()
		s.watchSubs.Inc()
		return e.view, s.releaseView(key), nil
	}
	s.watches[key] = &watchEntry{view: m, refs: 1}
	s.watchMu.Unlock()
	s.watchSubs.Inc()
	return m, s.releaseView(key), nil
}

func (s *Server) releaseView(key watchKey) func() {
	return func() {
		s.watchMu.Lock()
		if e := s.watches[key]; e != nil {
			e.refs--
			if e.refs == 0 {
				if s.cfg.WatchLinger < 0 {
					delete(s.watches, key)
					e.view.Close()
				} else {
					e.linger = time.AfterFunc(s.cfg.WatchLinger, func() {
						s.watchMu.Lock()
						defer s.watchMu.Unlock()
						if e := s.watches[key]; e != nil && e.refs == 0 {
							delete(s.watches, key)
							e.view.Close()
						}
					})
				}
			}
		}
		s.watchMu.Unlock()
		s.watchSubs.Dec()
	}
}

// handleWatch serves a live view of one prepared query as an NDJSON
// long-poll: a reset line (or, when ?from=E&gen=G resumes within the
// retained window, just the missed deltas), then answer deltas as they
// commit, heartbeats carrying the resume cursor, until the window
// elapses, the client leaves, or the server drains. The feed works on
// any role — replicas maintain their views from the applied WAL tail,
// so a watch on a replica streams the same epoch-stamped deltas the
// primary commits.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	template := q.Get("template")
	if template == "" {
		writeError(w, http.StatusBadRequest, "\"template\" is required")
		return
	}
	args := q["arg"]
	haveFrom, haveGen := q.Get("from") != "", q.Get("gen") != ""
	if haveFrom != haveGen {
		writeError(w, http.StatusBadRequest, "\"from\" and \"gen\" must be supplied together")
		return
	}
	var cur, gen uint64
	if haveFrom {
		var err error
		if cur, err = strconv.ParseUint(q.Get("from"), 10, 64); err != nil {
			writeError(w, http.StatusBadRequest, "malformed from=%q: %v", q.Get("from"), err)
			return
		}
		if gen, err = strconv.ParseUint(q.Get("gen"), 10, 64); err != nil {
			writeError(w, http.StatusBadRequest, "malformed gen=%q: %v", q.Get("gen"), err)
			return
		}
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	m, release, err := s.acquireView(r, template, args)
	if err != nil {
		writeError(w, httpStatusFor(err), "%v", err)
		return
	}
	defer release()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	reset := func() bool {
		rows, epoch, g := m.State()
		cur, gen = epoch, g
		return enc.Encode(WatchLine{Reset: true, Epoch: epoch, Gen: g, Vars: m.Vars(), Rows: rows}) == nil
	}
	if haveFrom {
		// Probe the cursor: a stale generation (rule load recomputed the
		// view) or a cursor behind the retained ring forces a snapshot
		// reset; a valid cursor replays only the missed deltas, which the
		// first drain below emits exactly once.
		if _, ok := m.Changes(cur, gen); !ok && !reset() {
			return
		}
	} else if !reset() {
		return
	}
	window := time.NewTimer(s.cfg.ReplicateWindow)
	defer window.Stop()
	for {
		if m.Closed() {
			return
		}
		// Grab the update channel before draining: a change committed
		// between the drain and the wait closes this channel, so it is
		// seen on the next loop instead of missed.
		ch := m.Updates()
		sets, ok := m.Changes(cur, gen)
		if !ok {
			if !reset() {
				return
			}
		} else {
			for _, cs := range sets {
				cur = cs.Epoch
				if err := enc.Encode(WatchLine{Epoch: cs.Epoch, Added: cs.Added, Removed: cs.Removed}); err != nil {
					return
				}
			}
		}
		if err := enc.Encode(WatchLine{Head: cur, Gen: gen}); err != nil {
			return
		}
		fl.Flush()
		select {
		case <-ch:
		case <-window.C:
			return // long-poll window over; the client reconnects with its cursor
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			return // do not hold Shutdown open for a long-poll window
		}
	}
}
