package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"chainlog"

	"chainlog/internal/wal"
)

// maxBodyBytes bounds request bodies; a query or delta body past 8 MiB
// is a client bug, not a workload.
const maxBodyBytes = 8 << 20

// QueryRequest is the body of POST /v1/query. Exactly one of Query
// (a concrete one-shot literal) or Template (a '?'-parameterized
// prepared-plan template) must be set; Template runs either Args (one
// vector) or Batch (many vectors, evaluated through the shared-traversal
// batch route).
type QueryRequest struct {
	Query    string     `json:"query,omitempty"`
	Template string     `json:"template,omitempty"`
	Args     []string   `json:"args,omitempty"`
	Batch    [][]string `json:"batch,omitempty"`

	// Strategy selects the evaluation method by name. Empty or "auto"
	// (the default) lets the cost-based optimizer choose and re-optimize
	// as facts churn; naming a strategy ("chain", "seminaive", "magic",
	// ...) pins it, bypassing the optimizer.
	Strategy string `json:"strategy,omitempty"`
	// TimeoutMS is the per-request evaluation deadline, clamped to the
	// server's MaxTimeout; 0 inherits DefaultTimeout.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// MaxNodes caps the interpretation graph, clamped to the server's
	// admission cap; 0 inherits the cap.
	MaxNodes int `json:"max_nodes,omitempty"`
	// Stats includes evaluation statistics in the response.
	Stats bool `json:"stats,omitempty"`
}

// QueryResult is one evaluated query.
type QueryResult struct {
	Vars []string   `json:"vars"`
	Rows [][]string `json:"rows"`
	// True reports, for fully bound queries (no free variables), whether
	// the fact holds.
	True  bool       `json:"true,omitempty"`
	Stats *StatsJSON `json:"stats,omitempty"`
}

// QueryResponse is the body of a successful POST /v1/query: Result for
// single evaluations, Results (in input order) for batch bodies.
type QueryResponse struct {
	Result  *QueryResult  `json:"result,omitempty"`
	Results []QueryResult `json:"results,omitempty"`
}

// StatsJSON mirrors chainlog.Stats for the wire.
type StatsJSON struct {
	Strategy       string `json:"strategy"`
	Iterations     int    `json:"iterations"`
	Nodes          int    `json:"nodes"`
	Expansions     int    `json:"expansions"`
	FactsConsulted int64  `json:"facts_consulted"`
	Lookups        int64  `json:"lookups"`
	Converged      bool   `json:"converged"`
}

// FactJSON is one ground fact on the wire.
type FactJSON struct {
	Pred string   `json:"pred"`
	Args []string `json:"args"`
}

// MutationRequest is the body of POST /v1/assert and POST /v1/retract.
type MutationRequest struct {
	Facts []FactJSON `json:"facts"`
}

// DeltaOp is one operation of an ordered POST /v1/delta batch.
type DeltaOp struct {
	// Op is "assert" or "retract".
	Op   string   `json:"op"`
	Pred string   `json:"pred"`
	Args []string `json:"args"`
}

// DeltaRequest is the body of POST /v1/delta.
type DeltaRequest struct {
	Ops []DeltaOp `json:"ops"`
}

// MutationResponse reports what a mutation endpoint changed (no-ops
// excluded, matching ApplyResult) and the fact epoch the database
// reached — the token a client sends back as X-Chainlog-Min-Epoch to
// get read-your-writes on a replica.
type MutationResponse struct {
	Asserted  int    `json:"asserted"`
	Retracted int    `json:"retracted"`
	Epoch     uint64 `json:"epoch"`
}

// errorResponse is every non-2xx JSON body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeBody strictly decodes a JSON body into v: unknown fields and
// trailing garbage are client errors.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "malformed body: %v", err)
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "malformed body: trailing data after JSON value")
		return false
	}
	return true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	switch {
	case req.Query == "" && req.Template == "":
		writeError(w, http.StatusBadRequest, "one of \"query\" or \"template\" is required")
		return
	case req.Query != "" && req.Template != "":
		writeError(w, http.StatusBadRequest, "\"query\" and \"template\" are mutually exclusive")
		return
	case req.Query != "" && (req.Args != nil || req.Batch != nil):
		writeError(w, http.StatusBadRequest, "\"args\"/\"batch\" require \"template\"")
		return
	case req.Args != nil && req.Batch != nil:
		writeError(w, http.StatusBadRequest, "\"args\" and \"batch\" are mutually exclusive")
		return
	case req.Batch != nil && len(req.Batch) == 0:
		writeError(w, http.StatusBadRequest, "\"batch\" must name at least one binding vector")
		return
	}
	strategy, err := chainlog.ParseStrategy(req.Strategy)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts := s.registry.base
	opts.Strategy = strategy
	opts.MaxNodes = s.admitMaxNodes(req.MaxNodes)

	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	// Read-your-writes: X-Chainlog-Min-Epoch makes the query wait (within
	// its deadline) until this node has applied at least that epoch, then
	// the response's X-Chainlog-Epoch proves what the evaluation saw.
	if hdr := r.Header.Get("X-Chainlog-Min-Epoch"); hdr != "" {
		min, err := strconv.ParseUint(hdr, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "malformed X-Chainlog-Min-Epoch %q: %v", hdr, err)
			return
		}
		if err := s.awaitEpoch(ctx, min); err != nil {
			writeError(w, httpStatusFor(err), "min epoch %d not reached (at %d): %v", min, s.db.FactEpoch(), err)
			return
		}
	}
	// The epoch is read before evaluation: the data the query sees is at
	// least this fresh, so the stamp is a sound read-your-writes token.
	w.Header().Set("X-Chainlog-Epoch", strconv.FormatUint(s.db.FactEpoch(), 10))

	if req.Query != "" {
		// One-shot literal: the DB's internal plan cache templateizes it,
		// so repeated shapes share plans here too.
		ans, err := s.db.QueryOptsCtx(ctx, req.Query, opts)
		if err != nil {
			writeError(w, httpStatusFor(err), "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, QueryResponse{Result: toResult(ans, req.Stats)})
		return
	}

	p, err := s.registry.lookup(ctx, req.Template, opts)
	if err != nil {
		writeError(w, httpStatusFor(err), "%v", err)
		return
	}
	if req.Batch != nil {
		start := time.Now()
		answers, err := p.RunBatchCtx(ctx, req.Batch)
		if err != nil {
			writeError(w, httpStatusFor(err), "%v", err)
			return
		}
		// Batch stats are aggregated, so one observation covers the batch.
		p.Observe(time.Since(start).Seconds(), answers[0].Stats.FactsConsulted)
		results := make([]QueryResult, len(answers))
		for i, ans := range answers {
			results[i] = *toResult(ans, req.Stats)
		}
		writeJSON(w, http.StatusOK, QueryResponse{Results: results})
		return
	}
	start := time.Now()
	ans, err := p.RunCtx(ctx, req.Args...)
	if err != nil {
		writeError(w, httpStatusFor(err), "%v", err)
		return
	}
	// Feed the measured latency (the same number the /metrics histograms
	// record) and the run's retrieval count back into the plan: the
	// optimizer's re-optimization trigger compares them to its estimate.
	p.Observe(time.Since(start).Seconds(), ans.Stats.FactsConsulted)
	writeJSON(w, http.StatusOK, QueryResponse{Result: toResult(ans, req.Stats)})
}

func toResult(ans *chainlog.Answer, withStats bool) *QueryResult {
	res := &QueryResult{Vars: ans.Vars, Rows: ans.Rows, True: ans.True}
	if res.Vars == nil {
		res.Vars = []string{}
	}
	if res.Rows == nil {
		res.Rows = [][]string{}
	}
	if withStats {
		res.Stats = &StatsJSON{
			Strategy:       ans.Stats.Strategy.String(),
			Iterations:     ans.Stats.Iterations,
			Nodes:          ans.Stats.Nodes,
			Expansions:     ans.Stats.Expansions,
			FactsConsulted: ans.Stats.FactsConsulted,
			Lookups:        ans.Stats.Lookups,
			Converged:      ans.Stats.Converged,
		}
	}
	return res
}

// checkFacts validates a mutation body's shape.
func checkFacts(w http.ResponseWriter, facts []FactJSON) bool {
	if len(facts) == 0 {
		writeError(w, http.StatusBadRequest, "\"facts\" must name at least one fact")
		return false
	}
	for i, f := range facts {
		if f.Pred == "" || len(f.Args) == 0 {
			writeError(w, http.StatusBadRequest, "facts[%d]: \"pred\" and \"args\" are required", i)
			return false
		}
	}
	return true
}

// finishMutation runs the commit path and renders the response with the
// reached epoch (header and body).
func (s *Server) finishMutation(w http.ResponseWriter, d *chainlog.Delta, ops []wal.Op) {
	res, epoch, err := s.commit(d, ops)
	if err != nil {
		s.writeCommitError(w, err)
		return
	}
	s.mutations.Add(uint64(res.Asserted + res.Retracted))
	w.Header().Set("X-Chainlog-Epoch", strconv.FormatUint(epoch, 10))
	writeJSON(w, http.StatusOK, MutationResponse{Asserted: res.Asserted, Retracted: res.Retracted, Epoch: epoch})
}

func (s *Server) handleAssert(w http.ResponseWriter, r *http.Request) {
	var req MutationRequest
	if !decodeBody(w, r, &req) || !checkFacts(w, req.Facts) {
		return
	}
	d := &chainlog.Delta{}
	ops := make([]wal.Op, 0, len(req.Facts))
	for _, f := range req.Facts {
		d.Assert(f.Pred, f.Args...)
		ops = append(ops, wal.Op{Pred: f.Pred, Args: f.Args})
	}
	s.finishMutation(w, d, ops)
}

func (s *Server) handleRetract(w http.ResponseWriter, r *http.Request) {
	var req MutationRequest
	if !decodeBody(w, r, &req) || !checkFacts(w, req.Facts) {
		return
	}
	d := &chainlog.Delta{}
	ops := make([]wal.Op, 0, len(req.Facts))
	for _, f := range req.Facts {
		d.Retract(f.Pred, f.Args...)
		ops = append(ops, wal.Op{Retract: true, Pred: f.Pred, Args: f.Args})
	}
	s.finishMutation(w, d, ops)
}

func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	var req DeltaRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, "\"ops\" must name at least one operation")
		return
	}
	d := &chainlog.Delta{}
	ops := make([]wal.Op, 0, len(req.Ops))
	for i, op := range req.Ops {
		if op.Pred == "" || len(op.Args) == 0 {
			writeError(w, http.StatusBadRequest, "ops[%d]: \"pred\" and \"args\" are required", i)
			return
		}
		switch op.Op {
		case "assert":
			d.Assert(op.Pred, op.Args...)
			ops = append(ops, wal.Op{Pred: op.Pred, Args: op.Args})
		case "retract":
			d.Retract(op.Pred, op.Args...)
			ops = append(ops, wal.Op{Retract: true, Pred: op.Pred, Args: op.Args})
		default:
			writeError(w, http.StatusBadRequest, "ops[%d]: unknown op %q (want \"assert\" or \"retract\")", i, op.Op)
			return
		}
	}
	s.finishMutation(w, d, ops)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	// An optional strategy pin mirrors the query endpoint, so the explain
	// output (adornment, plan choice, rejected alternatives) describes the
	// same route a pinned query would run.
	strategy, err := chainlog.ParseStrategy(r.URL.Query().Get("strategy"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out, err := s.db.ExplainOpts(r.URL.Query().Get("query"), chainlog.Options{Strategy: strategy})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WriteText(w)
}
