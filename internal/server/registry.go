package server

import (
	"context"
	"sync"

	"chainlog"

	"chainlog/internal/metrics"
)

// planKey identifies one prepared plan in the serving registry: the
// query template text plus the per-request options that affect plan
// compilation. Binding values are runtime parameters, so every request
// shape maps to exactly one key however many constants it is run for.
type planKey struct {
	template string
	strategy chainlog.Strategy
	maxNodes int
}

// planEntry is one registry slot. The goroutine that inserts the entry
// compiles the plan and closes ready; every other goroutine asking for
// the same key blocks on ready (or its request context) instead of
// compiling — single-flight coalescing, so a thundering herd of
// identical cold queries costs one Prepare.
type planEntry struct {
	ready chan struct{}
	plan  *chainlog.Prepared
	err   error
}

// maxRegistryEntries bounds the registry: the key includes
// client-supplied fields (template text, max_nodes), so an adversarial
// or misbehaving client could otherwise grow it without limit. At the
// bound the whole map is dropped — plans recompile on demand, so the
// cost of a reset is a brief compile burst, never wrong answers.
const maxRegistryEntries = 1024

// planRegistry is the server's concurrent prepared-plan cache on top of
// DB.Prepare. It is distinct from the DB's internal plan cache: keys are
// raw template strings (no parsing needed on the hit path), options are
// the server's admission-controlled subset, and misses are coalesced.
// Entries otherwise live until the registry is dropped — plans survive
// fact churn by design (the Prepared refreshes itself), and rule changes
// make the plans self-recompile on their next Run, so eviction is never
// needed for correctness, only for the memory bound above.
type planRegistry struct {
	db   *chainlog.DB
	base chainlog.Options // server-wide option defaults (parallelism etc.)

	mu      sync.Mutex
	entries map[planKey]*planEntry

	hits     *metrics.Counter
	misses   *metrics.Counter
	compiles *metrics.Counter
}

func newPlanRegistry(db *chainlog.DB, base chainlog.Options, reg *metrics.Registry) *planRegistry {
	return &planRegistry{
		db:      db,
		base:    base,
		entries: make(map[planKey]*planEntry),
		hits: reg.Counter("chainlogd_plan_cache_hits_total",
			"Queries served by an already-compiled plan in the serving registry.", ""),
		misses: reg.Counter("chainlogd_plan_cache_misses_total",
			"Queries that found no compiled plan in the serving registry.", ""),
		compiles: reg.Counter("chainlogd_plan_compiles_total",
			"Plan compilations performed (single-flight: a thundering herd of one shape compiles once).", ""),
	}
}

// size reports the number of registry entries (including in-flight
// compiles).
func (r *planRegistry) size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// lookup returns the compiled plan for a template, compiling it exactly
// once per key however many requests race on a cold shape. A waiter
// whose context expires before the compile finishes gets the context
// error; the compile itself continues and lands in the registry for the
// next request. Failed compiles are removed so a later request retries
// (the program may have gained the missing rules in between).
func (r *planRegistry) lookup(ctx context.Context, template string, opts chainlog.Options) (*chainlog.Prepared, error) {
	key := planKey{template: template, strategy: opts.Strategy, maxNodes: opts.MaxNodes}
	r.mu.Lock()
	e, ok := r.entries[key]
	if ok {
		r.mu.Unlock()
		r.hits.Inc()
		select {
		case <-e.ready:
			return e.plan, e.err
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		}
	}
	if len(r.entries) >= maxRegistryEntries {
		// In-flight compiles keep their own entry pointers; dropping the
		// map only forgets finished plans.
		r.entries = make(map[planKey]*planEntry)
	}
	e = &planEntry{ready: make(chan struct{})}
	r.entries[key] = e
	r.mu.Unlock()

	r.misses.Inc()
	r.compiles.Inc()
	e.plan, e.err = r.db.Prepare(template, opts)
	if e.err != nil {
		r.mu.Lock()
		delete(r.entries, key)
		r.mu.Unlock()
	}
	close(e.ready)
	return e.plan, e.err
}
